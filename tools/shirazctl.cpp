// shirazctl — operator CLI for the Shiraz library.
//
// Subcommands:
//   solve     compute the fair switch point for a light/heavy pair
//   stretch   Shiraz+ stretch-factor trade-off table (+ the optimum)
//   pairs     pair a catalog of applications and solve every pair
//   fit       fit a Weibull to a failure trace file, with bootstrap CIs
//   simulate  validate a switch point against the discrete-event simulator
//   predict   drive a failure predictor over synthetic gaps, report its stats
//   trace     run a traced campaign: ASCII timeline + Perfetto trace file
//   scenarios list/validate/describe the failure-scenario catalog
//   serve     run the query daemon on a Unix-domain socket (shiraz-serve-v1)
//   query     drive a running daemon: stdin request lines -> stdout responses
//             (subscribe stream lines print as they arrive)
//   metrics   snapshot a running daemon's metrics registry: aligned table,
//             --json (raw shiraz-metrics-v1 line), or --prometheus text
//
// Examples:
//   shirazctl solve --mtbf-hours=5 --delta-lw=18 --delta-hw=1800
//   shirazctl stretch --mtbf-hours=20 --delta-lw=72 --delta-hw=1800
//   shirazctl pairs --mtbf-hours=5 --strategy=extreme
//   shirazctl fit --trace=failures.txt
//   shirazctl simulate --mtbf-hours=5 --delta-lw=18 --delta-hw=1800 --k=26
//   shirazctl predict --predictor=oracle --precision=0.9 --recall=0.8
//   shirazctl trace --mtbf-hours=5 --t-total-hours=50 --out=trace.json
//   shirazctl scenarios --dir=testdata/scenarios
//   shirazctl scenarios --describe=markov-burst
//   shirazctl serve --socket=/tmp/shiraz.sock --threads=4
//   echo '{"op":"solve_k","delta_lw_s":18,"delta_hw_s":1800}' | \
//       shirazctl query --socket=/tmp/shiraz.sock
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "apps/catalog.h"
#include "common/cli.h"
#include "common/error.h"
#include "common/json_parse.h"
#include "common/table.h"
#include "core/pairing.h"
#include "core/shiraz_plus.h"
#include "core/switch_solver.h"
#include "obs/audit_sim.h"
#include "obs/perfetto.h"
#include "obs/timeline.h"
#include "predict/hazard.h"
#include "predict/oracle.h"
#include "predict/policies.h"
#include "predict/predictor.h"
#include "reliability/bootstrap.h"
#include "reliability/fitting.h"
#include "reliability/trace.h"
#include "reliability/weibull.h"
#include "scenario/scenario.h"
#include "serve/client.h"
#include "serve/server.h"
#include "sim/engine.h"
#include "sim/optimizer.h"

using namespace shiraz;

namespace {

core::ShirazModel model_from(const Flags& flags) {
  core::ModelConfig cfg;
  cfg.mtbf = hours(flags.get_double("mtbf-hours", 5.0));
  cfg.weibull_shape = flags.get_double("beta", 0.6);
  cfg.epsilon = flags.get_double("epsilon", 0.45);
  cfg.t_total = hours(flags.get_double("t-total-hours", 1000.0));
  return core::ShirazModel(cfg);
}

core::AppSpec lw_from(const Flags& flags) {
  return {"light", flags.get_double("delta-lw", 18.0), 1};
}
core::AppSpec hw_from(const Flags& flags) {
  return {"heavy", flags.get_double("delta-hw", 1800.0), 1};
}

int cmd_solve(const Flags& flags) {
  const core::ShirazModel model = model_from(flags);
  const core::AppSpec lw = lw_from(flags);
  const core::AppSpec hw = hw_from(flags);
  const core::SwitchSolution sol = solve_switch_point(model, lw, hw);
  if (!sol.beneficial()) {
    std::printf("No beneficial switch point (k = infinity): alternate the two "
                "applications at every failure.\n");
    return 0;
  }
  std::printf("Fair switch point: k = %d\n", *sol.k);
  std::printf("Schedule: after every failure run `light` (delta %.0f s) for %d "
              "checkpoints (%.2f h), then `heavy` (delta %.0f s) until the next "
              "failure.\n", lw.delta, *sol.k,
              as_hours(model.switch_time(lw, *sol.k)), hw.delta);
  std::printf("Expected gains over %.0f h vs switch-at-failure: light %+.1f h, "
              "heavy %+.1f h, total %+.1f h.\n",
              as_hours(model.config().t_total), as_hours(sol.delta_lw),
              as_hours(sol.delta_hw), as_hours(sol.delta_total));
  if (sol.region_lo) {
    std::printf("Region of interest (both apps gain): k in [%d, %d].\n",
                *sol.region_lo, *sol.region_hi);
  }
  return 0;
}

int cmd_stretch(const Flags& flags) {
  const core::ShirazModel model = model_from(flags);
  const core::AppSpec lw = lw_from(flags);
  const core::AppSpec hw = hw_from(flags);
  const auto max_stretch = static_cast<unsigned>(flags.get_count("max-stretch", 6));
  std::vector<unsigned> stretches;
  for (unsigned s = 1; s <= max_stretch; ++s) stretches.push_back(s);
  const auto outcomes = evaluate_shiraz_plus(model, lw, hw, stretches);
  Table table({"stretch", "ckpt-ovhd reduction", "useful-work change"});
  for (const auto& o : outcomes) {
    table.add_row({std::to_string(o.stretch) + "x", fmt_percent(o.io_reduction),
                   fmt_percent(o.useful_improvement)});
  }
  std::printf("%s", table.render().c_str());
  core::StretchOptimizerOptions opts;
  opts.max_stretch = max_stretch;
  opts.min_useful_improvement = flags.get_double("floor", 0.0);
  const core::StretchOutcome best = optimal_stretch(model, lw, hw, opts);
  std::printf("\nLargest stretch with useful-work improvement >= %s: %ux "
              "(ckpt overhead %s).\n", fmt_percent(opts.min_useful_improvement).c_str(),
              best.stretch, fmt_percent(best.io_reduction).c_str());
  return 0;
}

int cmd_pairs(const Flags& flags) {
  const core::ShirazModel model = model_from(flags);
  const auto strategy = flags.get("strategy", "extreme") == "random"
                            ? core::PairingStrategy::kRandom
                            : core::PairingStrategy::kExtreme;
  auto catalog = apps::table1_catalog();
  catalog.push_back(apps::AppProfile{"CoMD-class MD", 3.0, "Materials", "local"});
  Rng rng(flags.get_seed("seed", 1));
  auto pairs = core::make_pairs(catalog, strategy, rng);
  core::solve_pairs(model, pairs);
  Table table({"light", "heavy", "delta-factor", "k", "modeled pair gain (h)"});
  for (const auto& p : pairs) {
    table.add_row({p.light.name, p.heavy.name, fmt(p.delta_factor(), 0) + "x",
                   p.k ? std::to_string(*p.k) : "inf",
                   p.k ? fmt(as_hours(p.model_delta_total), 1) : "-"});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_fit(const Flags& flags) {
  const std::string path = flags.get("trace", "");
  SHIRAZ_REQUIRE(!path.empty(), "fit requires --trace=<file>");
  const auto trace = reliability::FailureTrace::load(path);
  const auto gaps = trace.inter_arrival_times();
  const auto fit = reliability::fit_weibull_mle(gaps);
  std::printf("%zu failures, observed MTBF %.2f h\n", trace.size(),
              as_hours(trace.observed_mtbf()));
  std::printf("Weibull MLE: beta = %.3f, scale = %.2f h\n", fit.shape,
              as_hours(fit.scale));
  const auto mtbf_ci = reliability::bootstrap_mtbf(gaps);
  const auto shape_ci = reliability::bootstrap_weibull_shape(gaps);
  std::printf("95%% bootstrap CIs: MTBF [%.2f, %.2f] h; beta [%.3f, %.3f]\n",
              as_hours(mtbf_ci.lower), as_hours(mtbf_ci.upper), shape_ci.lower,
              shape_ci.upper);
  if (shape_ci.upper < 1.0) {
    std::printf("beta < 1 with 95%% confidence: the hazard decays between "
                "failures — Shiraz applies.\n");
  }
  return 0;
}

int cmd_simulate(const Flags& flags) {
  const core::ShirazModel model = model_from(flags);
  const core::AppSpec lw = lw_from(flags);
  const core::AppSpec hw = hw_from(flags);
  int k = static_cast<int>(flags.get_int("k", -1));
  if (k < 0) {
    const auto sol = solve_switch_point(model, lw, hw);
    SHIRAZ_REQUIRE(sol.beneficial(), "no beneficial k; pass --k explicitly");
    k = *sol.k;
  }
  sim::EngineConfig ecfg;
  ecfg.t_total = model.config().t_total;
  const sim::Engine engine(
      reliability::Weibull::from_mtbf(model.config().weibull_shape,
                                      model.config().mtbf),
      ecfg);
  const sim::SimJob lwj = sim::SimJob::at_oci("light", lw.delta, model.config().mtbf);
  const sim::SimJob hwj = sim::SimJob::at_oci("heavy", hw.delta, model.config().mtbf);
  const auto reps = flags.get_count("reps", 32);
  const auto c = sim::simulate_switch_point(engine, lwj, hwj, k, reps,
                                            flags.get_seed("seed", 7));
  std::printf("Simulated (reps=%zu) at k = %d: light %+.1f h, heavy %+.1f h, "
              "total %+.1f h vs switch-at-failure.\n", reps, k,
              as_hours(c.delta_lw), as_hours(c.delta_hw), as_hours(c.delta_total));
  return 0;
}

int cmd_predict(const Flags& flags) {
  const Seconds mtbf = hours(flags.get_double("mtbf-hours", 5.0));
  const double beta = flags.get_double("beta", 0.6);
  const std::size_t gaps = flags.get_count("gaps", 2000);
  SHIRAZ_REQUIRE(gaps > 0, "predict requires --gaps >= 1");
  const std::string kind = flags.get("predictor", "oracle");

  std::unique_ptr<predict::Predictor> predictor;
  if (kind == "oracle") {
    predict::OracleConfig cfg;
    cfg.precision = flags.get_double("precision", 0.8);
    cfg.recall = flags.get_double("recall", 0.8);
    cfg.lead = minutes(flags.get_double("lead-minutes", 10.0));
    cfg.mtbf = mtbf;
    predictor = std::make_unique<predict::OraclePredictor>(cfg);
  } else if (kind == "hazard") {
    predict::HazardConfig cfg;
    cfg.estimator.prior_mtbf = mtbf;
    cfg.estimator.prior_shape = beta;
    cfg.threshold_per_hour = flags.get_double("threshold", 0.3);
    cfg.lead = minutes(flags.get_double("lead-minutes", 10.0));
    predictor = std::make_unique<predict::HazardThresholdPredictor>(cfg);
  } else {
    throw InvalidArgument("unknown --predictor '" + kind +
                          "' (expected oracle or hazard)");
  }

  // Feed the predictor synthetic inter-failure gaps exactly the way the
  // simulation engine arms it: one alarms_in_gap call per gap, alarm draws on
  // a stream forked off the failure stream.
  const reliability::Weibull failures = reliability::Weibull::from_mtbf(beta, mtbf);
  Rng fail_rng(flags.get_seed("seed", 20180718));
  Rng alarm_rng = fail_rng.fork(1);
  Seconds now = 0.0;
  for (std::size_t g = 0; g < gaps; ++g) {
    const Seconds gap = failures.sample(fail_rng);
    predictor->alarms_in_gap(now, gap, alarm_rng);
    now += gap;
  }

  const predict::PredictorStats& s = predictor->stats();
  std::printf("%s over %zu gaps (MTBF %.1f h, beta %.2f):\n",
              predictor->name().c_str(), s.gaps(), as_hours(mtbf), beta);
  Table table({"metric", "value"});
  table.add_row({"alarms", std::to_string(s.alarms())});
  table.add_row({"true alarms", std::to_string(s.true_alarms())});
  table.add_row({"false alarms", std::to_string(s.false_alarms())});
  table.add_row({"predicted failures", std::to_string(s.predicted_failures())});
  table.add_row({"missed failures", std::to_string(s.missed_failures())});
  table.add_row({"precision", fmt(s.precision(), 3)});
  table.add_row({"recall", fmt(s.recall(), 3)});
  std::printf("%s", table.render().c_str());
  if (s.true_alarms() > 0) {
    std::printf("\nActual lead time of true alarms (s):\n%s",
                s.lead_times().render().c_str());
  }
  return 0;
}

int cmd_trace(const Flags& flags) {
  const core::ShirazModel model = model_from(flags);
  const core::AppSpec lw = lw_from(flags);
  const core::AppSpec hw = hw_from(flags);
  int k = static_cast<int>(flags.get_int("k", -1));
  if (k < 0) {
    const auto sol = solve_switch_point(model, lw, hw);
    SHIRAZ_REQUIRE(sol.beneficial(), "no beneficial k; pass --k explicitly");
    k = *sol.k;
  }
  const std::size_t reps = flags.get_count("reps", 1);
  SHIRAZ_REQUIRE(reps >= 1, "trace requires --reps >= 1");
  const std::uint64_t seed = flags.get_seed("seed", 7);
  const std::string out = flags.get("out", "shiraz-trace.json");

  // --predict arms the oracle predictor and swaps in the predictive policy,
  // so the trace shows alarm deliveries and proactive checkpoint spans.
  std::optional<predict::OraclePredictor> oracle;
  std::unique_ptr<sim::Scheduler> policy;
  if (flags.get_bool("predict", false)) {
    predict::OracleConfig pcfg;
    pcfg.precision = flags.get_double("precision", 0.9);
    pcfg.recall = flags.get_double("recall", 0.8);
    pcfg.lead = minutes(flags.get_double("lead-minutes", 10.0));
    pcfg.mtbf = model.config().mtbf;
    oracle.emplace(pcfg);
    policy = std::make_unique<predict::PredictiveShirazScheduler>(k);
  } else {
    policy = std::make_unique<sim::ShirazPairScheduler>(k);
  }

  obs::EventRecorder recorder;
  sim::EngineConfig ecfg;
  ecfg.t_total = model.config().t_total;
  ecfg.sink = &recorder;
  const sim::Engine engine(
      reliability::Weibull::from_mtbf(model.config().weibull_shape,
                                      model.config().mtbf),
      ecfg);
  const sim::SimJob lwj = sim::SimJob::at_oci("light", lw.delta, model.config().mtbf);
  const sim::SimJob hwj = sim::SimJob::at_oci("heavy", hw.delta, model.config().mtbf);

  // Run repetition r on stream Rng(seed).fork(r) — the campaign contract —
  // audit each stream against its own reported result, and merge rep-stamped
  // into the Perfetto writer.
  const std::vector<std::string> names{"light", "heavy"};
  obs::PerfettoWriter writer(names);
  const Rng master(seed);
  for (std::size_t r = 0; r < reps; ++r) {
    recorder.clear();
    Rng rng = master.fork(r);
    const sim::SimResult res =
        engine.run({lwj, hwj}, *policy, rng, oracle ? &*oracle : nullptr);
    obs::InvariantAuditor auditor;
    for (const obs::Event& e : recorder.events()) auditor.on_event(e);
    obs::verify_against(auditor, res);  // throws AuditError on divergence
    for (obs::Event e : recorder.events()) {
      e.rep = static_cast<std::uint32_t>(r);
      writer.on_event(e);
    }
  }

  obs::TimelineOptions topts;
  topts.wall = model.config().t_total;
  topts.width = flags.get_count("width", 96);
  topts.app_names = names;
  std::printf("Repetition 0 of %zu (k = %d, seed %llu):\n\n%s", reps, k,
              static_cast<unsigned long long>(seed),
              obs::render_timeline(writer.events(), topts).c_str());

  writer.write(out);
  std::printf("\nWrote %s (%zu events, %zu rep%s) — audited against the "
              "reported totals; load in ui.perfetto.dev or chrome://tracing.\n",
              out.c_str(), writer.events().size(), reps, reps == 1 ? "" : "s");
  return 0;
}

void usage();

int cmd_scenarios(const Flags& flags) {
  const std::string dir = flags.get("dir", "testdata/scenarios");
  if (!std::filesystem::is_directory(dir)) {
    std::fprintf(stderr, "shirazctl: scenario directory '%s' does not exist\n",
                 dir.c_str());
    usage();
    return 2;
  }
  // load_dir IS the validation: every file either parses to a well-formed
  // regime or throws (caught in main -> exit 1 with the offending path).
  const std::vector<scenario::Scenario> all = scenario::load_dir(dir);

  const std::string describe = flags.get("describe", "");
  if (!describe.empty()) {
    for (const scenario::Scenario& s : all) {
      if (s.id != describe) continue;
      const auto regime = s.make_regime();
      std::printf("%s — %s\n\n%s\n\n", s.id.c_str(), s.title.c_str(),
                  s.description.c_str());
      Table table({"field", "value"});
      table.add_row({"source", s.source_path});
      table.add_row({"kind", s.kind});
      table.add_row({"regime", regime->name()});
      table.add_row({"horizon (h)", fmt(as_hours(s.horizon), 0)});
      table.add_row({"nominal MTBF (h)", fmt(as_hours(s.nominal_mtbf), 1)});
      table.add_row({"long-run mean gap (h)", fmt(as_hours(regime->mean_gap()), 2)});
      std::printf("%s", table.render().c_str());
      return 0;
    }
    throw InvalidArgument("no scenario with id '" + describe + "' in " + dir);
  }

  if (flags.get_bool("validate", false)) {
    for (const scenario::Scenario& s : all) {
      std::printf("OK %-20s %s\n", s.id.c_str(), s.source_path.c_str());
    }
    std::printf("%zu scenario%s valid (%s)\n", all.size(),
                all.size() == 1 ? "" : "s", scenario::kSchema);
    return 0;
  }

  Table table({"id", "kind", "horizon (h)", "nominal MTBF (h)", "mean gap (h)",
               "title"});
  for (const scenario::Scenario& s : all) {
    table.add_row({s.id, s.kind, fmt(as_hours(s.horizon), 0),
                   fmt(as_hours(s.nominal_mtbf), 1),
                   fmt(as_hours(s.make_regime()->mean_gap()), 2), s.title});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_serve(const Flags& flags) {
  const std::string socket = flags.get("socket", "");
  if (socket.empty()) {
    std::fprintf(stderr, "shirazctl: serve requires --socket=PATH\n");
    usage();
    return 2;
  }
  const std::int64_t threads = flags.get_int("threads", 4);
  if (threads < 1) {
    std::fprintf(stderr, "shirazctl: --threads must be >= 1 (got %lld)\n",
                 static_cast<long long>(threads));
    usage();
    return 2;
  }
  serve::ServerConfig cfg;
  cfg.socket_path = socket;
  cfg.threads = static_cast<std::size_t>(threads);
  cfg.service.max_whatif_reps = flags.get_count("max-whatif-reps", 256);
  try {
    serve::Server server(std::move(cfg));
    std::printf("shirazctl serve: listening on %s (%lld worker thread%s, %s)\n",
                socket.c_str(), static_cast<long long>(threads),
                threads == 1 ? "" : "s", serve::kProtocol);
    std::fflush(stdout);
    server.serve();  // returns when a shutdown request arrives
  } catch (const IoError& e) {
    // An unbindable socket (missing or unwritable directory, path too long)
    // is an operator mistake, not a runtime fault: usage + exit 2.
    std::fprintf(stderr, "shirazctl: %s\n", e.what());
    usage();
    return 2;
  }
  std::printf("shirazctl serve: shutdown complete\n");
  return 0;
}

int cmd_query(const Flags& flags) {
  const std::string socket = flags.get("socket", "");
  if (socket.empty()) {
    std::fprintf(stderr, "shirazctl: query requires --socket=PATH\n");
    usage();
    return 2;
  }
  if (!serve::wait_for_server(socket, flags.get_double("timeout-s", 10.0))) {
    std::fprintf(stderr, "shirazctl: no daemon answering on %s\n",
                 socket.c_str());
    return 1;
  }
  serve::Client client(socket);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    try {
      // Streaming form so a `subscribe` request prints its event lines as
      // they arrive, before the final response.
      const std::string response = client.request(
          line, [](const std::string& s) { std::printf("%s\n", s.c_str()); });
      std::printf("%s\n", response.c_str());
    } catch (const IoError& e) {
      // The daemon dropped the connection mid-exchange — the normal sight
      // after a `shutdown` request answered on this same connection. Name
      // the situation instead of surfacing a raw socket error.
      std::fprintf(stderr,
                   "shirazctl: server is shutting down — connection to %s "
                   "closed before a response arrived (%s)\n",
                   socket.c_str(), e.what());
      return 2;
    }
    std::fflush(stdout);
  }
  return 0;
}

int cmd_metrics(const Flags& flags) {
  const std::string socket = flags.get("socket", "");
  if (socket.empty()) {
    std::fprintf(stderr, "shirazctl: metrics requires --socket=PATH\n");
    usage();
    return 2;
  }
  if (!serve::wait_for_server(socket, flags.get_double("timeout-s", 10.0))) {
    std::fprintf(stderr, "shirazctl: no daemon answering on %s\n",
                 socket.c_str());
    return 1;
  }
  serve::Client client(socket);
  if (flags.get_bool("prometheus", false)) {
    const JsonValue doc = parse_json(
        client.request(R"({"op":"metrics","format":"prometheus"})"));
    SHIRAZ_REQUIRE(doc.at("ok").boolean, "daemon refused the metrics request");
    std::printf("%s", doc.at("body").string.c_str());
    return 0;
  }
  if (flags.get_bool("json", false)) {
    // The raw shiraz-metrics-v1 response line, for piping into jq and co.
    std::printf("%s\n", client.request(R"({"op":"metrics"})").c_str());
    return 0;
  }
  const JsonValue doc = parse_json(client.request(R"({"op":"metrics"})"));
  SHIRAZ_REQUIRE(doc.at("ok").boolean, "daemon refused the metrics request");
  const JsonValue& metrics = doc.at("snapshot").at("metrics");
  Table table({"metric", "type", "value", "help"});
  for (const JsonValuePtr& m : metrics.array) {
    const std::string type = m->at("type").string;
    std::string value;
    if (type == "histogram") {
      value = fmt(m->at("count").number, 0) + " obs, sum " +
              fmt(m->at("sum").number, 6);
    } else {
      value = fmt(m->at("value").number, type == "counter" ? 0 : 6);
    }
    table.add_row({m->at("name").string, type, value,
                   m->has("help") ? m->at("help").string : ""});
  }
  std::printf("%s (%zu metric%s)\n%s", doc.at("snapshot").at("schema").string.c_str(),
              metrics.array.size(), metrics.array.size() == 1 ? "" : "s",
              table.render().c_str());
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "shirazctl "
      "<solve|stretch|pairs|fit|simulate|predict|trace|scenarios|serve|query|"
      "metrics> [--flags]\n"
      "  common flags: --mtbf-hours=5 --beta=0.6 --epsilon=0.45 --t-total-hours=1000\n"
      "  solve/stretch/simulate: --delta-lw=18 --delta-hw=1800 [--k=] [--reps=]\n"
      "  stretch: --max-stretch=6 --floor=0.0\n"
      "  pairs: --strategy=extreme|random --seed=1\n"
      "  fit: --trace=<failure-trace file>\n"
      "  predict: --predictor=oracle|hazard --precision=0.8 --recall=0.8\n"
      "           --lead-minutes=10 --threshold=0.3 --gaps=2000 --seed=...\n"
      "  trace: --out=shiraz-trace.json --reps=1 --width=96 [--k=] [--predict\n"
      "         --precision=0.9 --recall=0.8 --lead-minutes=10] --seed=7\n"
      "  scenarios: --dir=testdata/scenarios [--validate] [--describe=<id>]\n"
      "  serve: --socket=PATH [--threads=4] [--max-whatif-reps=256]\n"
      "  query: --socket=PATH [--timeout-s=10]  (request lines on stdin)\n"
      "  metrics: --socket=PATH [--timeout-s=10] [--json|--prometheus]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    const Flags flags(argc - 1, argv + 1);
    if (command == "solve") return cmd_solve(flags);
    if (command == "stretch") return cmd_stretch(flags);
    if (command == "pairs") return cmd_pairs(flags);
    if (command == "fit") return cmd_fit(flags);
    if (command == "simulate") return cmd_simulate(flags);
    if (command == "predict") return cmd_predict(flags);
    if (command == "trace") return cmd_trace(flags);
    if (command == "scenarios") return cmd_scenarios(flags);
    if (command == "serve") return cmd_serve(flags);
    if (command == "query") return cmd_query(flags);
    if (command == "metrics") return cmd_metrics(flags);
    std::fprintf(stderr, "shirazctl: unknown command '%s'\n", command.c_str());
    usage();
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "shirazctl: %s\n", e.what());
    return 1;
  }
}
