// Batch scheduler walkthrough: submit a day of mixed jobs to the workload
// manager (the paper's Fig. 15 deployment) and compare the conventional
// policy against Shiraz pairing on the numbers a user feels: when does my job
// finish?
//
//   ./batch_scheduler [--mtbf-hours=5] [--reps=8] [--stretch=2]
#include <cstdio>

#include "common/cli.h"
#include "common/table.h"
#include "reliability/weibull.h"
#include "sched/manager.h"

using namespace shiraz;
using namespace shiraz::sched;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double mtbf_hours = flags.get_double("mtbf-hours", 5.0);
  const std::size_t reps = flags.get_count("reps", 8);
  const unsigned stretch = static_cast<unsigned>(flags.get_count("stretch", 2));

  // A morning's submissions: climate (heavy checkpoints) interleaved with
  // molecular dynamics (light checkpoints).
  std::vector<BatchJobSpec> jobs{
      {"climate-A", hours(250.0), 1800.0, hours(0.0)},
      {"md-A", hours(250.0), 15.0, hours(0.0)},
      {"climate-B", hours(300.0), 2400.0, hours(2.0)},
      {"md-B", hours(200.0), 20.0, hours(3.0)},
      {"fe-solver", hours(280.0), 600.0, hours(5.0)},
      {"md-C", hours(320.0), 10.0, hours(6.0)},
  };

  ManagerConfig cfg;
  cfg.horizon = hours(12'000.0);
  cfg.nominal_mtbf = hours(mtbf_hours);
  const auto failures = reliability::Weibull::from_mtbf(0.6, hours(mtbf_hours));
  const WorkloadManager manager(failures, cfg);

  const CampaignStats base =
      manager.run_many(jobs, Policy::kBaselineAlternate, reps, 42);
  const CampaignStats shiraz =
      manager.run_many(jobs, Policy::kShirazPairing, reps, 42);

  Table table({"job", "delta (s)", "turnaround base (h)", "turnaround shiraz (h)",
               "change"});
  for (const BatchJobSpec& spec : jobs) {
    const auto& b = base.job(spec.name);
    const auto& s = shiraz.job(spec.name);
    std::string change = "-";
    if (b.completed() && s.completed()) {
      change = fmt_percent((s.turnaround() - b.turnaround()) / b.turnaround());
    }
    table.add_row({spec.name, fmt(spec.checkpoint_cost, 0),
                   b.completed() ? fmt(as_hours(b.turnaround()), 1) : "unfinished",
                   s.completed() ? fmt(as_hours(s.turnaround()), 1) : "unfinished",
                   change});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nSystem view (averaged over %zu campaigns):\n", reps);
  std::printf("  makespan        %.1f h -> %.1f h\n", as_hours(base.makespan),
              as_hours(shiraz.makespan));
  std::printf("  lost work       %.1f h -> %.1f h\n", as_hours(base.total_lost()),
              as_hours(shiraz.total_lost()));
  std::printf("  checkpoint I/O  %.1f h -> %.1f h\n", as_hours(base.total_io()),
              as_hours(shiraz.total_io()));

  // Shiraz+ variant: trade part of the gain for I/O relief.
  ManagerConfig plus_cfg = cfg;
  plus_cfg.hw_stretch = stretch;
  const WorkloadManager plus_manager(failures, plus_cfg);
  const CampaignStats plus =
      plus_manager.run_many(jobs, Policy::kShirazPairing, reps, 42);
  std::printf("\nWith Shiraz+ (%ux stretch on the heavy member of each pair): "
              "checkpoint I/O %.1f h (%+.0f%% vs baseline), makespan %.1f h.\n",
              stretch, as_hours(plus.total_io()),
              100.0 * (plus.total_io() - base.total_io()) / base.total_io(),
              as_hours(plus.makespan));
  return 0;
}
