// Prototype emulation: run actual proxy applications (CoMD + miniFE) under
// the workload-manager runtime with real state serialization and injected
// failures — a miniature of the paper's Fig. 15 deployment, runnable on a
// laptop in a few seconds.
//
//   ./prototype_emulation [--seconds=4] [--seed=11] [--stretch=2]
#include <cstdio>

#include "apps/proxy_app.h"
#include "checkpoint/oci.h"
#include "common/cli.h"
#include "core/switch_solver.h"
#include "proto/backend.h"
#include "proto/checkpoint_store.h"
#include "proto/runtime.h"
#include "reliability/trace.h"
#include "reliability/weibull.h"

using namespace shiraz;
using namespace shiraz::proto;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const Seconds horizon = flags.get_double("seconds", 8.0);
  const std::uint64_t seed = flags.get_seed("seed", 11);
  const unsigned stretch = static_cast<unsigned>(flags.get_count("stretch", 2));

  RealBackend backend;
  CheckpointStore store = CheckpointStore::make_temporary("example");
  Runtime runtime(backend, store);

  // Calibrate checkpoint costs by writing real checkpoints (what the paper's
  // scheduler plug-in records per application).
  const apps::ProxyApp comd(apps::ProxyKind::kCoMD, 1);
  const apps::ProxyApp minife(apps::ProxyKind::kMiniFE, 1);
  const Seconds delta_lw = measure_checkpoint_cost(backend, comd, store).duration;
  const Seconds delta_hw = measure_checkpoint_cost(backend, minife, store).duration;
  std::printf("Calibrated checkpoint costs: CoMD %.2f ms, miniFE %.2f ms "
              "(%.0fx)\n", delta_lw * 1e3, delta_hw * 1e3, delta_hw / delta_lw);

  // Accelerated failure injection: MTBF = 30x the heavy checkpoint cost.
  const Seconds mtbf = 30.0 * delta_hw;
  Rng rng(seed);
  const auto trace = reliability::FailureTrace::generate(
      reliability::Weibull::from_mtbf(0.6, mtbf), horizon, rng);
  std::printf("Injecting %zu failures over %.1f s (virtual MTBF %.2f s).\n",
              trace.size(), horizon, mtbf);

  // The Shiraz model picks k* offline from the calibrated costs.
  core::ModelConfig cfg;
  cfg.mtbf = mtbf;
  cfg.t_total = horizon;
  const core::ShirazModel model(cfg);
  const core::SwitchSolution sol =
      solve_switch_point(model, core::AppSpec{"CoMD", delta_lw, 1},
                         core::AppSpec{"miniFE", delta_hw, 1});
  const int k = sol.k.value_or(0);
  std::printf("Model switch point: k = %d\n\n", k);

  auto jobs = [&](unsigned hw_stretch) {
    std::vector<ProtoJob> j;
    j.emplace_back("CoMD", apps::ProxyApp(apps::ProxyKind::kCoMD, 1),
                   checkpoint::optimal_interval(mtbf, delta_lw));
    j.emplace_back("miniFE", apps::ProxyApp(apps::ProxyKind::kMiniFE, 1),
                   checkpoint::optimal_interval(mtbf, delta_hw) * hw_stretch);
    return j;
  };

  const sim::AlternateAtFailure baseline;
  const sim::ShirazPairScheduler shiraz(k);
  const ProtoResult b = runtime.run(jobs(1), baseline, trace.times(), horizon);
  const ProtoResult s = runtime.run(jobs(1), shiraz, trace.times(), horizon);
  const ProtoResult p = runtime.run(jobs(stretch), shiraz, trace.times(), horizon);

  auto report = [&](const char* name, const ProtoResult& r) {
    std::printf("%-22s useful %.2f s | ckpt %.3f s | lost %.2f s | wrote %.0f MiB "
                "| %zu failures hit\n",
                name, r.total_useful(), r.total_io(),
                r.jobs[0].lost + r.jobs[1].lost, as_mib(r.total_bytes_written()),
                r.jobs[0].failures_hit + r.jobs[1].failures_hit);
  };
  report("baseline:", b);
  report("shiraz:", s);
  report(("shiraz+ (" + std::to_string(stretch) + "x):").c_str(), p);

  std::printf("\nShiraz vs baseline useful work: %+.1f%%; Shiraz+ changed "
              "checkpoint I/O by %+.1f%% and data movement by %+.1f%% "
              "(short runs are noisy — raise --seconds for stable numbers; the "
              "fig16_prototype bench runs the full campaign).\n",
              100.0 * (s.total_useful() - b.total_useful()) / b.total_useful(),
              100.0 * (p.total_io() - b.total_io()) / b.total_io(),
              100.0 * (static_cast<double>(p.total_bytes_written()) /
                           static_cast<double>(b.total_bytes_written()) -
                       1.0));
  return 0;
}
