// Quickstart: the 60-second tour of the Shiraz library.
//
// Two applications share a machine that fails with Weibull-distributed
// inter-arrival times. We (1) compute each app's optimal checkpoint interval,
// (2) ask the Shiraz model for the fair switch point k*, (3) verify the
// predicted gain with the discrete-event simulator, and (4) print the
// schedule a resource manager would enforce.
//
//   ./quickstart [--mtbf-hours=5] [--delta-lw=18] [--delta-hw=1800]
#include <cstdio>

#include "common/cli.h"
#include "core/switch_solver.h"
#include "reliability/weibull.h"
#include "sim/engine.h"

using namespace shiraz;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const Seconds mtbf = hours(flags.get_double("mtbf-hours", 5.0));
  const Seconds delta_lw = flags.get_double("delta-lw", 18.0);
  const Seconds delta_hw = flags.get_double("delta-hw", 1800.0);

  // --- 1. Per-application checkpoint intervals (Young/Daly) ---
  const Seconds oci_lw = checkpoint::optimal_interval(mtbf, delta_lw);
  const Seconds oci_hw = checkpoint::optimal_interval(mtbf, delta_hw);
  std::printf("System MTBF: %.1f h (Weibull, beta 0.6)\n", as_hours(mtbf));
  std::printf("light-weight app: delta = %5.0f s -> OCI = %.1f min\n", delta_lw,
              as_minutes(oci_lw));
  std::printf("heavy-weight app: delta = %5.0f s -> OCI = %.1f min\n", delta_hw,
              as_minutes(oci_hw));

  // --- 2. The Shiraz model picks the fair switch point ---
  core::ModelConfig cfg;
  cfg.mtbf = mtbf;
  cfg.t_total = hours(1000.0);
  const core::ShirazModel model(cfg);
  const core::AppSpec lw{"light", delta_lw, 1};
  const core::AppSpec hw{"heavy", delta_hw, 1};
  const core::SwitchSolution sol = solve_switch_point(model, lw, hw);
  if (!sol.beneficial()) {
    std::printf("\nShiraz: no beneficial switch point for this pair "
                "(k = infinity); fall back to alternating at failures.\n");
    return 0;
  }
  std::printf("\nShiraz schedule: after each failure run `light` for k* = %d "
              "checkpoints (%.2f h), then `heavy` until the next failure.\n",
              *sol.k, as_hours(model.switch_time(lw, *sol.k)));
  std::printf("Model prediction over 1000 h: light %+.1f h, heavy %+.1f h, "
              "total %+.1f h of extra useful work vs switching at failures.\n",
              as_hours(sol.delta_lw), as_hours(sol.delta_hw),
              as_hours(sol.delta_total));

  // --- 3. Verify with the discrete-event simulator ---
  sim::EngineConfig ecfg;
  ecfg.t_total = hours(1000.0);
  const sim::Engine engine(reliability::Weibull::from_mtbf(0.6, mtbf), ecfg);
  const std::vector<sim::SimJob> jobs{sim::SimJob::at_oci("light", delta_lw, mtbf),
                                      sim::SimJob::at_oci("heavy", delta_hw, mtbf)};
  const sim::SimResult base =
      engine.run_many(jobs, sim::AlternateAtFailure{}, 32, 7);
  const sim::SimResult shiraz =
      engine.run_many(jobs, sim::ShirazPairScheduler{*sol.k}, 32, 7);
  std::printf("Simulation (32 reps):               light %+.1f h, heavy %+.1f h, "
              "total %+.1f h.\n",
              as_hours(shiraz.apps[0].useful - base.apps[0].useful),
              as_hours(shiraz.apps[1].useful - base.apps[1].useful),
              as_hours(shiraz.total_useful() - base.total_useful()));

  // --- 4. What the machine actually did ---
  std::printf("\nUnder Shiraz the machine spent (averages over 1000 h):\n");
  for (const auto& app : shiraz.apps) {
    std::printf("  %-6s useful %.1f h | checkpoint %.1f h | lost %.1f h | "
                "%zu checkpoints, hit by %zu failures\n",
                app.name.c_str(), as_hours(app.useful), as_hours(app.io),
                as_hours(app.lost), app.checkpoints, app.failures_hit);
  }
  return 0;
}
