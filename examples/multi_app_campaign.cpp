// Multi-application campaign: schedule the paper's Table 1 workload mix on a
// failing machine for a year, comparing the baseline (switch at every
// failure) against Shiraz pair rotation — the scenario a batch-system
// operator cares about.
//
//   ./multi_app_campaign [--mtbf-hours=5] [--pairing=extreme|random]
//                        [--reps=24] [--seed=1]
#include <cstdio>

#include "apps/catalog.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/pairing.h"
#include "reliability/weibull.h"
#include "sim/engine.h"

using namespace shiraz;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const Seconds mtbf = hours(flags.get_double("mtbf-hours", 5.0));
  const std::string strategy_name = flags.get("pairing", "extreme");
  const std::size_t reps = flags.get_count("reps", 24);
  const std::uint64_t seed = flags.get_seed("seed", 1);

  // Build the mix: Table 1's nine applications plus a CoMD-class tenth.
  auto mix = apps::table1_catalog();
  mix.push_back(apps::AppProfile{"CoMD-class MD", 3.0, "Materials", "local"});

  // Pair them and let the model choose each pair's switch point.
  core::ModelConfig cfg;
  cfg.mtbf = mtbf;
  cfg.t_total = years(1.0);
  const core::ShirazModel model(cfg);
  Rng rng(seed);
  auto pairs = core::make_pairs(mix,
                                strategy_name == "random"
                                    ? core::PairingStrategy::kRandom
                                    : core::PairingStrategy::kExtreme,
                                rng);
  core::solve_pairs(model, pairs);

  std::printf("Pairing (%s), MTBF %.0f h:\n", strategy_name.c_str(), as_hours(mtbf));
  for (const auto& p : pairs) {
    std::printf("  [%4.0fx] %-50s + %-50s k=%s\n", p.delta_factor(),
                p.light.name.c_str(), p.heavy.name.c_str(),
                p.k ? std::to_string(*p.k).c_str() : "inf");
  }

  // Simulate a calendar year under both policies over common failure streams.
  std::vector<sim::SimJob> jobs;
  std::vector<std::optional<int>> ks;
  for (const auto& p : pairs) {
    jobs.push_back(sim::SimJob::at_oci(p.light.name, p.light.checkpoint_cost, mtbf));
    jobs.push_back(sim::SimJob::at_oci(p.heavy.name, p.heavy.checkpoint_cost, mtbf));
    ks.push_back(p.k);
  }
  sim::EngineConfig ecfg;
  ecfg.t_total = years(1.0);
  const sim::Engine engine(reliability::Weibull::from_mtbf(0.6, mtbf), ecfg);
  const sim::SimResult base =
      engine.run_many(jobs, sim::AlternateAtFailure{}, reps, seed);
  const sim::SimResult shiraz =
      engine.run_many(jobs, sim::PairRotationScheduler{ks}, reps, seed);

  Table table({"application", "baseline useful (h)", "shiraz useful (h)", "gain (h)"});
  double total = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double gain = as_hours(shiraz.apps[i].useful - base.apps[i].useful);
    total += gain;
    table.add_row({jobs[i].name, fmt(as_hours(base.apps[i].useful), 1),
                   fmt(as_hours(shiraz.apps[i].useful), 1), fmt(gain, 1)});
  }
  std::printf("\n%s", table.render().c_str());
  std::printf("\nTotal useful-work gain over the year: %.1f hours "
              "(checkpoint I/O %+.1f%%, lost work %+.1f%%).\n", total,
              100.0 * (shiraz.total_io() - base.total_io()) / base.total_io(),
              100.0 * (shiraz.total_lost() - base.total_lost()) / base.total_lost());
  return 0;
}
