// Failure-trace analysis: the reliability-engineering workflow behind the
// paper's Section 2 — generate (or load) a failure trace, fit a Weibull to
// its inter-arrival gaps, compare against the exponential null hypothesis,
// and report the weekly variability and hazard decay that motivate Shiraz.
//
//   ./trace_analysis [--mtbf-hours=8] [--beta=0.5] [--years=2]
//                    [--load=path/to/trace.txt] [--save=path/to/trace.txt]
#include <cstdio>

#include "common/cli.h"
#include "reliability/analytics.h"
#include "reliability/exponential.h"
#include "reliability/fitting.h"
#include "reliability/trace.h"
#include "reliability/weibull.h"

using namespace shiraz;
using namespace shiraz::reliability;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double beta = flags.get_double("beta", 0.5);
  const Seconds mtbf = hours(flags.get_double("mtbf-hours", 8.0));
  const std::uint64_t seed = flags.get_seed("seed", 3);

  FailureTrace trace;
  if (flags.has("load")) {
    trace = FailureTrace::load(flags.get("load", ""));
    std::printf("Loaded %zu failures from %s\n", trace.size(),
                flags.get("load", "").c_str());
  } else {
    Rng rng(seed);
    trace = FailureTrace::generate(Weibull::from_mtbf(beta, mtbf),
                                   years(flags.get_double("years", 2.0)), rng);
    std::printf("Generated %zu failures (Weibull beta=%.2f, MTBF %.1f h, "
                "seed %llu)\n", trace.size(), beta, as_hours(mtbf),
                static_cast<unsigned long long>(seed));
  }
  if (flags.has("save")) {
    trace.save(flags.get("save", ""));
    std::printf("Saved trace to %s\n", flags.get("save", "").c_str());
  }

  // --- Fit the inter-arrival distribution ---
  const auto gaps = trace.inter_arrival_times();
  const WeibullFit fit = fit_weibull_mle(gaps);
  const Weibull fitted = fit.distribution();
  const Exponential expo(trace.observed_mtbf());
  std::printf("\nObserved MTBF: %.2f h\n", as_hours(trace.observed_mtbf()));
  std::printf("Weibull MLE: beta = %.3f, scale = %.2f h  (KS %.4f)\n", fit.shape,
              as_hours(fit.scale), ks_statistic(gaps, fitted));
  std::printf("Exponential:                              (KS %.4f)\n",
              ks_statistic(gaps, expo));
  std::printf("=> %s fits better; beta < 1 means the hazard decays between "
              "failures.\n",
              ks_statistic(gaps, fitted) < ks_statistic(gaps, expo) ? "Weibull"
                                                                     : "Exponential");

  // --- Fig 2 style: how early do failures arrive? ---
  const auto cdf = interarrival_cdf_at_mtbf_fractions(trace, {0.25, 0.5, 1.0});
  std::printf("\nFraction of gaps shorter than 0.25/0.5/1.0 x MTBF: "
              "%.0f%% / %.0f%% / %.0f%%  (exponential would be 22%%/39%%/63%%)\n",
              100.0 * cdf[0], 100.0 * cdf[1], 100.0 * cdf[2]);

  // --- Hazard decay between failures (Fig 6's failure-rate curve) ---
  const auto hazard = empirical_hazard(trace, 2.0 * trace.observed_mtbf(), 8);
  std::printf("\nEmpirical hazard (per hour) over two MTBFs after a failure:\n  ");
  for (const double h : hazard) std::printf("%.3f ", h * kSecondsPerHour);
  std::printf("\n");

  // --- Fig 1 style: weekly variability ---
  const auto weekly = weekly_failure_counts(trace);
  const WeeklyVariability var = weekly_variability(weekly);
  std::printf("\nWeekly failures: mean %.1f, CV %.2f, longest stable run %zu of "
              "%zu weeks — no long stable eras to exploit coarsely; Shiraz works "
              "*within* each failure gap instead.\n",
              var.mean, var.cv, var.longest_stable_run, weekly.size());
  return 0;
}
