// Shiraz+ tuning: explore the throughput / checkpoint-I/O trade-off of
// stretching the heavy-weight application's checkpoint interval, for an
// operator deciding how hard to push I/O reduction on a congested parallel
// file system.
//
//   ./shiraz_plus_tuning [--mtbf-hours=5] [--delta-hw-hours=0.5]
//                        [--delta-factor=25] [--max-stretch=6]
#include <cstdio>

#include "common/cli.h"
#include "common/error.h"
#include "common/table.h"
#include "core/shiraz_plus.h"

using namespace shiraz;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const Seconds mtbf = hours(flags.get_double("mtbf-hours", 5.0));
  const Seconds delta_hw = hours(flags.get_double("delta-hw-hours", 0.5));
  const double factor = flags.get_double("delta-factor", 25.0);
  const unsigned max_stretch =
      static_cast<unsigned>(flags.get_count("max-stretch", 6));

  core::ModelConfig cfg;
  cfg.mtbf = mtbf;
  cfg.t_total = hours(1000.0);
  const core::ShirazModel model(cfg);
  const core::AppSpec lw{"light", delta_hw / factor, 1};
  const core::AppSpec hw{"heavy", delta_hw, 1};

  std::vector<unsigned> stretches;
  for (unsigned s = 1; s <= max_stretch; ++s) stretches.push_back(s);
  std::vector<core::StretchOutcome> outcomes;
  try {
    outcomes = evaluate_shiraz_plus(model, lw, hw, stretches);
  } catch (const Error& e) {
    std::printf("Shiraz finds no beneficial switch point for this pair: %s\n",
                e.what());
    return 1;
  }

  std::printf("MTBF %.0f h, heavy delta %.2f h, delta-factor %.0fx, fair switch "
              "point k = %d\n\n", as_hours(mtbf), as_hours(delta_hw), factor,
              outcomes.front().k);
  Table table({"stretch", "ckpt-ovhd reduction", "useful-work change",
               "heavy gain (h)", "verdict"});
  for (const core::StretchOutcome& o : outcomes) {
    std::string verdict;
    if (o.useful_improvement >= 0.0) {
      verdict = "free I/O savings";
    } else if (o.useful_improvement > -0.02) {
      verdict = "cheap (<2% throughput)";
    } else {
      verdict = "trades real throughput";
    }
    table.add_row({std::to_string(o.stretch) + "x", fmt_percent(o.io_reduction),
                   fmt_percent(o.useful_improvement), fmt(as_hours(o.delta_hw), 1),
                   verdict});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nRule of thumb from the paper: 2x is always free (it spends part "
              "of Shiraz's gain); 3-4x cut I/O by half or more for at most a few "
              "percent of throughput.\n");
  return 0;
}
