// The shirazctl serve daemon: a Unix-domain socket front end for Service.
//
// One accept thread hands each connection to a common::ThreadPool worker;
// the worker reads newline-delimited requests, answers each through
// Service::handle_line, and writes one response line per request, in order.
// A `shutdown` request (or Server::request_stop) stops the accept loop and
// shuts down every live connection's socket, so blocked reads return and
// workers drain promptly. request_stop only flips flags and shuts down file
// descriptors — it is safe to call from a pool worker (the shutdown op's
// path); the joins happen in wait() / the destructor on the owning thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "serve/service.h"

namespace shiraz::obs {
class Gauge;
}  // namespace shiraz::obs

namespace shiraz::serve {

struct ServerConfig {
  /// Path of the Unix-domain socket to bind. Required; at most ~100 bytes
  /// (sockaddr_un limit). A stale file at the path is unlinked first.
  std::string socket_path;
  /// Worker threads answering requests (concurrent connections served).
  std::size_t threads = 4;
  ServiceConfig service;
};

class Server {
 public:
  /// Binds and listens; throws IoError if the socket cannot be created
  /// (path too long, directory missing or unwritable, ...). Connections are
  /// accepted once serve_async() (or serve()) starts the accept loop.
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Starts the accept thread and returns immediately.
  void serve_async();

  /// serve_async() + wait(): runs until a shutdown request arrives.
  void serve();

  /// Blocks until the accept loop has stopped and all connections drained.
  void wait();

  /// Stops accepting, unblocks every live connection. Idempotent;
  /// async-signal-unsafe but thread-safe, callable from pool workers.
  void request_stop();

  const std::string& socket_path() const { return config_.socket_path; }
  Service& service() { return *service_; }

 private:
  void accept_loop();
  void handle_connection(int fd);
  void track(int fd);
  void untrack(int fd);

  ServerConfig config_;
  std::unique_ptr<Service> service_;
  obs::Gauge* connections_gauge_ = nullptr;  ///< owned by the service registry
  std::unique_ptr<common::ThreadPool> pool_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;               ///< guards conn_fds_
  std::set<int> conn_fds_;           ///< live connection sockets
  std::vector<std::future<void>> connections_;  ///< guarded by conn_mu_
};

}  // namespace shiraz::serve
