// The shiraz-serve-v1 wire protocol: newline-delimited JSON requests.
//
// A client sends one JSON object per line; the daemon answers one JSON
// object per line, in request order per connection. Parsing is strict in
// the scenario-loader tradition (common/json_parse.h): unknown fields,
// wrong types, and out-of-range values are rejected with a descriptive
// error — never coerced or ignored — so a typo'd field name can't silently
// query defaults.
//
// Operations:
//   solve_k         fair switch point for a (delta_LW, delta_HW) pair
//   oci             optimal checkpoint interval for one application
//   checkpoint_now  "checkpoint now or not": is the running segment past
//                   its OCI, and if not, how long until it is due
//   pair_whatif     replay-backed simulation campaign for a pair (baseline
//                   vs Shiraz at k), audited per repetition
//   subscribe       pair_whatif that additionally streams every audited
//                   repetition's rep-stamped event lines to the client
//                   before the final response (see DESIGN.md §11)
//   stats           cache hit/miss counters and per-op request counts
//   metrics         full shiraz-metrics-v1 registry snapshot, as embedded
//                   JSON or Prometheus text ("format":"prometheus")
//   shutdown        stop the daemon (administrative)
//
// Every response starts with "ok" (true/false); errors carry "error" and
// echo the request "id" when one was given. Responses to solve_k, oci,
// checkpoint_now, pair_whatif, and subscribe are pure functions of the
// request (the whatif seed is explicit), which is what lets the load bench
// compare daemon bytes against direct library calls. subscribe's stream
// lines are pure too: they render the deterministic audited event stream,
// so two daemons stream identical bytes for identical requests. Stream
// lines are distinguished from the response by their leading
// `{"stream":` prefix — a client reads lines until the first non-stream
// line, which is the response.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "checkpoint/oci.h"

namespace shiraz::serve {

/// Protocol identity, echoed by `stats` and documented in DESIGN.md §9.
inline constexpr const char* kProtocol = "shiraz-serve-v1";

/// Analytical-model parameters shared by solve_k and pair_whatif. Defaults
/// are the paper's Section 4 working point.
struct ModelParams {
  double mtbf_hours = 5.0;
  double beta = 0.6;
  double epsilon = 0.45;
  double t_total_hours = 1000.0;
  checkpoint::OciFormula formula = checkpoint::OciFormula::kYoung;
};

struct SolveKRequest {
  ModelParams model;
  double delta_lw_s = 0.0;  ///< required on the wire
  double delta_hw_s = 0.0;  ///< required on the wire
  unsigned stretch = 1;     ///< heavy-weight OCI stretch (Shiraz+)
};

struct OciRequest {
  double mtbf_hours = 5.0;
  checkpoint::OciFormula formula = checkpoint::OciFormula::kYoung;
  double delta_s = 0.0;  ///< required on the wire
};

struct CheckpointNowRequest {
  double mtbf_hours = 5.0;
  checkpoint::OciFormula formula = checkpoint::OciFormula::kYoung;
  double delta_s = 0.0;       ///< required on the wire
  double since_ckpt_s = 0.0;  ///< compute since the last checkpoint; required
};

struct PairWhatifRequest {
  SolveKRequest solve;
  /// Switch point to simulate; absent = solve the fair k first (error if no
  /// beneficial k exists).
  std::optional<int> k;
  std::uint64_t reps = 8;
  std::uint64_t seed = 1;
};

/// pair_whatif plus a live audit-event stream: the daemon writes one
/// `{"stream":"event",...}` line per audited event (repetition order,
/// rep-stamped) before the final response.
struct SubscribeRequest {
  PairWhatifRequest whatif;
};

struct StatsRequest {};

/// Full metrics-registry snapshot (obs/metrics.h, shiraz-metrics-v1).
struct MetricsRequest {
  /// false = embedded JSON snapshot; true = Prometheus text exposition in
  /// the response's "body" string (wire field "format": "json"/"prometheus").
  bool prometheus = false;
};

struct ShutdownRequest {};

struct Request {
  /// Echoed verbatim in the response when present.
  std::optional<double> id;
  std::variant<SolveKRequest, OciRequest, CheckpointNowRequest,
               PairWhatifRequest, SubscribeRequest, StatsRequest,
               MetricsRequest, ShutdownRequest>
      op;
};

/// Parses one request line. Throws InvalidArgument on malformed JSON, an
/// unknown op, a missing required field, an unknown field for the op, a
/// wrong type, or an out-of-range value. The service catches and turns the
/// message into an error response.
Request parse_request(const std::string& line);

/// The op name a Request parses from / renders to ("solve_k", ...).
const char* op_name(const Request& request);

/// Wire name of an OCI formula ("young", "daly", "daly-ho") and back.
const char* formula_name(checkpoint::OciFormula formula);
checkpoint::OciFormula formula_from_name(const std::string& name);

/// Renders the canonical error response: {"ok":false,"error":...} plus the
/// echoed id when present. Compact single-line form, no trailing newline.
std::string error_response(const std::string& message,
                           std::optional<double> id = std::nullopt);

}  // namespace shiraz::serve
