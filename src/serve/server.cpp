#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/error.h"
#include "obs/metrics.h"

namespace shiraz::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

/// Writes the whole buffer, riding out EINTR and partial writes. Returns
/// false if the peer vanished (EPIPE/ECONNRESET — not an error for us).
bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(ServerConfig config) : config_(std::move(config)) {
  SHIRAZ_REQUIRE(!config_.socket_path.empty(), "socket_path must be set");
  SHIRAZ_REQUIRE(config_.threads >= 1, "threads must be >= 1");
  service_ = std::make_unique<Service>(config_.service);
  connections_gauge_ = &service_->metrics()->gauge(
      "shiraz_serve_active_connections", "live client connections");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw IoError("socket path too long for sockaddr_un: " +
                  config_.socket_path);
  }
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket(AF_UNIX)");
  ::unlink(config_.socket_path.c_str());  // stale socket from a prior run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("bind(" + config_.socket_path + ")");
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
    errno = saved;
    throw_errno("listen(" + config_.socket_path + ")");
  }
  pool_ = std::make_unique<common::ThreadPool>(config_.threads);
}

Server::~Server() {
  request_stop();
  wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(config_.socket_path.c_str());
}

void Server::serve_async() {
  SHIRAZ_REQUIRE(!accept_thread_.joinable(), "serve_async called twice");
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::serve() {
  serve_async();
  wait();
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain connection futures; handle_connection never throws past its body.
  for (;;) {
    std::vector<std::future<void>> pending;
    {
      const std::lock_guard<std::mutex> lock(conn_mu_);
      pending.swap(connections_);
    }
    if (pending.empty()) break;
    for (auto& f : pending) f.wait();
  }
}

void Server::request_stop() {
  if (stopping_.exchange(true)) return;
  // shutdown() does not reliably wake a blocked accept() on a listening
  // AF_UNIX socket; a throwaway self-connect does. It must happen BEFORE
  // the shutdown below — connecting to an already-shut-down listener fails
  // with ECONNREFUSED and enqueues nothing, so accept() would sleep
  // forever. The accept loop sees stopping_ and closes what this hands it.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() < sizeof(addr.sun_path)) {
    std::memcpy(addr.sun_path, config_.socket_path.c_str(),
                config_.socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd >= 0) {
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
      ::close(fd);
    }
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  const std::lock_guard<std::mutex> lock(conn_mu_);
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void Server::track(int fd) {
  const std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.insert(fd);
  connections_gauge_->add(1.0);
}

void Server::untrack(int fd) {
  const std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.erase(fd);
  connections_gauge_->add(-1.0);
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (or broken) — stop accepting
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    track(fd);
    const std::lock_guard<std::mutex> lock(conn_mu_);
    // Prune finished connections so a long-lived daemon stays bounded.
    std::erase_if(connections_, [](std::future<void>& f) {
      return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
    });
    connections_.push_back(pool_->submit([this, fd] { handle_connection(fd); }));
  }
}

void Server::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed, or request_stop shut the socket down
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      // subscribe stream lines flow straight to the client as the request
      // executes; a vanished peer just stops the stream (the response write
      // below then fails the same way and closes the connection).
      bool stream_ok = true;
      const Service::StreamSink sink = [fd, &stream_ok](const std::string& s) {
        if (!stream_ok) return;
        const std::string framed = s + "\n";
        stream_ok = write_all(fd, framed.data(), framed.size());
      };
      const Service::Result result = service_->handle_line(line, sink);
      const std::string out = result.response + "\n";
      if (!stream_ok || !write_all(fd, out.data(), out.size())) {
        open = false;
        break;
      }
      if (result.shutdown) {
        request_stop();  // flags + fd shutdowns only — safe on a pool worker
        open = false;
        break;
      }
    }
    buffer.erase(0, start);
  }
  untrack(fd);
  ::close(fd);
}

}  // namespace shiraz::serve
