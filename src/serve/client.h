// A minimal blocking client for the shiraz-serve-v1 socket protocol.
//
// Used by `shirazctl query`, the load bench, and the real-binary tests.
// One request() sends one line and blocks for one response line; requests
// on a single Client are strictly ordered (the protocol answers in request
// order per connection).
#pragma once

#include <functional>
#include <string>

#include "common/units.h"

namespace shiraz::serve {

class Client {
 public:
  /// Connects to a listening daemon; throws IoError on failure.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;

  /// Sends one request line, returns the response line (no newline).
  /// Throws IoError if the connection drops mid-exchange.
  std::string request(const std::string& line);

  /// Receives subscribe stream lines (the `{"stream":...}` frames, no
  /// newline), in arrival order, before request() returns the response.
  using StreamHandler = std::function<void(const std::string&)>;

  /// request() for streaming ops: every line prefixed `{"stream":` goes to
  /// `on_stream`; the first other line is the response. Safe for
  /// non-streaming ops too (they emit no stream lines).
  std::string request(const std::string& line, const StreamHandler& on_stream);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned response
};

/// Polls until the socket accepts a connection (the daemon is up) or the
/// timeout expires. Returns true once connected.
bool wait_for_server(const std::string& socket_path,
                     Seconds timeout = 10.0);

}  // namespace shiraz::serve
