#include "serve/service.h"

#include <chrono>
#include <string_view>
#include <utility>
#include <vector>

#include <cmath>

#include "checkpoint/oci.h"
#include "common/error.h"
#include "common/json.h"
#include "common/json_parse.h"
#include "common/units.h"
#include "core/switch_solver.h"
#include "obs/audit_sim.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "reliability/weibull.h"
#include "sim/engine.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace shiraz::serve {

namespace {

core::SolverCacheKey cache_key(const SolveKRequest& r) {
  core::SolverCacheKey key;
  key.mtbf = hours(r.model.mtbf_hours);
  key.weibull_shape = r.model.beta;
  key.epsilon = r.model.epsilon;
  key.t_total = hours(r.model.t_total_hours);
  key.oci_formula = r.model.formula;
  key.delta_lw = r.delta_lw_s;
  key.delta_hw = r.delta_hw_s;
  key.hw_stretch = r.stretch;
  return key;
}

/// Errors still echo the request id when one was given, even when the
/// request itself failed to parse past the id (unknown op, bad field): a
/// second, lenient look at the line recovers it.
std::optional<double> best_effort_id(const std::string& line) {
  try {
    const JsonValue doc = parse_json(line);
    if (doc.type == JsonValue::Type::kObject && doc.has("id")) {
      const JsonValue& v = doc.at("id");
      if (v.type == JsonValue::Type::kNumber && std::isfinite(v.number)) {
        return v.number;
      }
    }
  } catch (const std::exception&) {
    // not JSON at all — no id to echo
  }
  return std::nullopt;
}

/// Response preamble shared by every success payload: fixed key order so
/// identical requests render identical bytes everywhere.
JsonWriter begin_response(const char* op, std::optional<double> id) {
  JsonWriter w(0);
  w.begin_object();
  w.kv("ok", true);
  w.kv("op", op);
  if (id) w.kv("id", *id);
  return w;
}

/// One subscribe stream line for a rep-stamped audit event. Pure function
/// of the event, so the stream is byte-identical across Service instances.
std::string render_stream_event(const obs::Event& e) {
  JsonWriter w(0);
  w.begin_object();
  w.kv("stream", "event");
  w.kv("rep", static_cast<std::uint64_t>(e.rep));
  w.kv("kind", obs::kind_name(e.kind));
  w.kv("t_s", e.time);
  w.kv("duration_s", e.duration);
  w.kv("app", static_cast<std::int64_t>(e.app));
  w.kv("value", e.value);
  w.end_object();
  return w.str();
}

}  // namespace

/// Registry handles resolved once; references stay valid for the registry's
/// lifetime (the service holds a shared_ptr to it).
struct Service::Instruments {
  obs::Counter& requests;
  obs::Counter& errors;
  obs::Counter& solve_k;
  obs::Counter& oci;
  obs::Counter& checkpoint_now;
  obs::Counter& pair_whatif;
  obs::Counter& subscribe;
  obs::Counter& stats;
  obs::Counter& metrics;
  obs::Counter& shutdown;
  obs::Counter& audited_reps;
  obs::Histogram& latency;

  explicit Instruments(obs::MetricsRegistry& reg)
      : requests(reg.counter("shiraz_serve_requests_total",
                             "request lines handled, errors included")),
        errors(reg.counter("shiraz_serve_errors_total",
                           "requests answered with an error response")),
        solve_k(reg.counter("shiraz_serve_op_solve_k_total",
                            "solve_k requests")),
        oci(reg.counter("shiraz_serve_op_oci_total", "oci requests")),
        checkpoint_now(reg.counter("shiraz_serve_op_checkpoint_now_total",
                                   "checkpoint_now requests")),
        pair_whatif(reg.counter("shiraz_serve_op_pair_whatif_total",
                                "pair_whatif requests")),
        subscribe(reg.counter("shiraz_serve_op_subscribe_total",
                              "subscribe requests")),
        stats(reg.counter("shiraz_serve_op_stats_total", "stats requests")),
        metrics(reg.counter("shiraz_serve_op_metrics_total",
                            "metrics requests")),
        shutdown(reg.counter("shiraz_serve_op_shutdown_total",
                             "shutdown requests")),
        audited_reps(reg.counter(
            "shiraz_serve_audited_reps_total",
            "whatif repetitions replayed through the InvariantAuditor")),
        latency(reg.histogram(
            "shiraz_serve_request_latency_seconds",
            {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0},
            "wall time from request line to response line")) {}
};

Service::Service(ServiceConfig config) : config_(std::move(config)) {
  // Registry resolution (see ServiceConfig::metrics): explicit > the shared
  // cache's > private. A private cache then counts into the same registry,
  // so the default daemon's snapshot includes the solver-cache counters.
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else if (config_.cache != nullptr) {
    metrics_ = config_.cache->metrics();
  } else {
    metrics_ = std::make_shared<obs::MetricsRegistry>();
  }
  cache_ = config_.cache != nullptr
               ? config_.cache
               : std::make_shared<const core::SolverCache>(metrics_);
  ins_ = std::make_unique<const Instruments>(*metrics_);
  SHIRAZ_REQUIRE(config_.max_whatif_reps >= 1,
                 "max_whatif_reps must be >= 1");
}

Service::~Service() = default;

Service::Result Service::handle_line(const std::string& line) {
  return handle_line(line, StreamSink{});
}

Service::Result Service::handle_line(const std::string& line,
                                     const StreamSink& stream) {
  const auto start = std::chrono::steady_clock::now();
  std::optional<double> id;
  bool counted = false;
  Result result;
  try {
    const Request request = parse_request(line);
    id = request.id;
    ins_->requests.add(1);
    struct Bump {
      const Instruments& ins;
      void operator()(const SolveKRequest&) const { ins.solve_k.add(1); }
      void operator()(const OciRequest&) const { ins.oci.add(1); }
      void operator()(const CheckpointNowRequest&) const {
        ins.checkpoint_now.add(1);
      }
      void operator()(const PairWhatifRequest&) const {
        ins.pair_whatif.add(1);
      }
      void operator()(const SubscribeRequest&) const { ins.subscribe.add(1); }
      void operator()(const StatsRequest&) const { ins.stats.add(1); }
      void operator()(const MetricsRequest&) const { ins.metrics.add(1); }
      void operator()(const ShutdownRequest&) const { ins.shutdown.add(1); }
    };
    std::visit(Bump{*ins_}, request.op);
    counted = true;
    bool shutdown = false;
    std::string response = dispatch(request, &shutdown, stream);
    result = Result{std::move(response), shutdown};
  } catch (const std::exception& e) {
    if (!id) id = best_effort_id(line);
    if (!counted) ins_->requests.add(1);
    ins_->errors.add(1);
    result = Result{error_response(e.what(), id), false};
  }
  ins_->latency.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return result;
}

std::string Service::dispatch(const Request& request, bool* shutdown,
                              const StreamSink& stream) {
  struct Visitor {
    Service& service;
    std::optional<double> id;
    bool* shutdown;
    const StreamSink& stream;
    std::string operator()(const SolveKRequest& r) const {
      return service.do_solve_k(r, id);
    }
    std::string operator()(const OciRequest& r) const {
      return service.do_oci(r, id);
    }
    std::string operator()(const CheckpointNowRequest& r) const {
      return service.do_checkpoint_now(r, id);
    }
    std::string operator()(const PairWhatifRequest& r) const {
      return service.do_whatif("pair_whatif", r, id, nullptr);
    }
    std::string operator()(const SubscribeRequest& r) const {
      return service.do_whatif("subscribe", r.whatif, id,
                               stream ? &stream : nullptr);
    }
    std::string operator()(const StatsRequest&) const {
      return service.do_stats(id);
    }
    std::string operator()(const MetricsRequest& r) const {
      return service.do_metrics(r, id);
    }
    std::string operator()(const ShutdownRequest&) const {
      *shutdown = true;
      JsonWriter w = begin_response("shutdown", id);
      w.kv("stopping", true);
      w.end_object();
      return w.str();
    }
  };
  return std::visit(Visitor{*this, request.id, shutdown, stream}, request.op);
}

std::string Service::do_solve_k(const SolveKRequest& r,
                                std::optional<double> id) {
  const core::CachedSolution sol = cache_->solve(cache_key(r));
  JsonWriter w = begin_response("solve_k", id);
  w.key("k");
  if (sol.k) w.value(*sol.k);
  else w.value_null();
  w.kv("beneficial", sol.beneficial());
  if (sol.k) {
    // switch-out wall-clock time: k light-weight segments (OCI + delta).
    const Seconds segment = checkpoint::segment_length(
        hours(r.model.mtbf_hours), r.delta_lw_s, r.model.formula);
    w.kv("switch_time_h", as_hours(static_cast<double>(*sol.k) * segment));
  }
  w.kv("delta_lw_h", as_hours(sol.delta_lw));
  w.kv("delta_hw_h", as_hours(sol.delta_hw));
  w.kv("delta_total_h", as_hours(sol.delta_total));
  w.end_object();
  return w.str();
}

std::string Service::do_oci(const OciRequest& r, std::optional<double> id) {
  const Seconds mtbf = hours(r.mtbf_hours);
  JsonWriter w = begin_response("oci", id);
  w.kv("formula", formula_name(r.formula));
  w.kv("oci_s", checkpoint::optimal_interval(mtbf, r.delta_s, r.formula));
  w.kv("segment_s", checkpoint::segment_length(mtbf, r.delta_s, r.formula));
  w.kv("waste_fraction", checkpoint::expected_waste_fraction(mtbf, r.delta_s));
  w.end_object();
  return w.str();
}

std::string Service::do_checkpoint_now(const CheckpointNowRequest& r,
                                       std::optional<double> id) {
  const Seconds oci =
      checkpoint::optimal_interval(hours(r.mtbf_hours), r.delta_s, r.formula);
  const bool due = r.since_ckpt_s >= oci;
  JsonWriter w = begin_response("checkpoint_now", id);
  w.kv("checkpoint", due);
  w.kv("oci_s", oci);
  w.kv("due_in_s", due ? 0.0 : oci - r.since_ckpt_s);
  w.end_object();
  return w.str();
}

std::string Service::do_whatif(const char* op, const PairWhatifRequest& r,
                               std::optional<double> id,
                               const StreamSink* stream) {
  SHIRAZ_REQUIRE(r.reps <= config_.max_whatif_reps,
                 "reps exceeds the daemon's max_whatif_reps limit (" +
                     std::to_string(config_.max_whatif_reps) + ")");
  const ModelParams& m = r.solve.model;
  const Seconds mtbf = hours(m.mtbf_hours);

  // The switch point: the caller's, or the fair k from the shared cache.
  int k = 0;
  double model_lw = 0.0;
  double model_hw = 0.0;
  if (r.k) {
    k = *r.k;
    core::ModelConfig mcfg;
    mcfg.mtbf = mtbf;
    mcfg.weibull_shape = m.beta;
    mcfg.epsilon = m.epsilon;
    mcfg.t_total = hours(m.t_total_hours);
    mcfg.oci_formula = m.formula;
    const core::ShirazModel model(mcfg);
    const core::SwitchCandidate c = core::evaluate_switch_point(
        model, core::AppSpec{"light", r.solve.delta_lw_s, 1},
        core::AppSpec{"heavy", r.solve.delta_hw_s, r.solve.stretch}, k);
    model_lw = c.delta_lw;
    model_hw = c.delta_hw;
  } else {
    const core::CachedSolution sol = cache_->solve(cache_key(r.solve));
    SHIRAZ_REQUIRE(sol.beneficial(),
                   "no beneficial switch point for this pair; pass 'k'");
    k = *sol.k;
    model_lw = sol.delta_lw;
    model_hw = sol.delta_hw;
  }

  // Replay-backed campaigns: sample each repetition's failure stream once
  // (TraceStore), replay it under both policies (common random numbers).
  // The engines and the trace store count into the service registry —
  // pure observation, so arming them never changes a response byte.
  sim::EngineConfig ecfg;
  ecfg.t_total = hours(m.t_total_hours);
  ecfg.metrics = metrics_.get();
  const sim::Engine engine(reliability::Weibull::from_mtbf(m.beta, mtbf), ecfg);
  const sim::SimJob lwj =
      sim::SimJob::at_oci("light", r.solve.delta_lw_s, mtbf, 1, m.formula);
  const sim::SimJob hw_base =
      sim::SimJob::at_oci("heavy", r.solve.delta_hw_s, mtbf, 1, m.formula);
  const sim::SimJob hw_shiraz = sim::SimJob::at_oci(
      "heavy", r.solve.delta_hw_s, mtbf, r.solve.stretch, m.formula);
  const std::size_t reps = static_cast<std::size_t>(r.reps);
  sim::TraceStore traces(engine, r.seed);
  traces.set_metrics(metrics_.get());
  sim::CampaignOptions copts;
  copts.traces = &traces;
  const sim::ShirazPairScheduler shiraz(k);
  const sim::SimResult base = engine.run_many(
      {lwj, hw_base}, sim::AlternateAtFailure{}, reps, r.seed, copts);
  const sim::SimResult sz =
      engine.run_many({lwj, hw_shiraz}, shiraz, reps, r.seed, copts);

  // Request audit: re-replay every repetition through a traced engine and
  // check the event stream against that repetition's own totals; forward
  // the audited stream to the request-audit log and — for subscribe — to
  // the client's stream, rep-stamped, in repetition order. A failed audit
  // throws (-> error response), so a divergence can never ship a silent
  // answer.
  std::uint64_t events = 0;
  obs::EventRecorder recorder;
  sim::EngineConfig tcfg = ecfg;
  tcfg.sink = &recorder;
  const sim::Engine traced(reliability::Weibull::from_mtbf(m.beta, mtbf), tcfg);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    recorder.clear();
    const sim::SimResult res =
        traced.replay({lwj, hw_shiraz}, shiraz, traces.trace(rep));
    obs::InvariantAuditor auditor;
    for (const obs::Event& e : recorder.events()) auditor.on_event(e);
    obs::verify_against(auditor, res);
    events += recorder.events().size();
    // Stream outside any lock: the sink writes to this connection's socket
    // and is only ever called from the thread handling this request.
    if (stream != nullptr) {
      for (obs::Event e : recorder.events()) {
        e.rep = static_cast<std::uint32_t>(rep);
        (*stream)(render_stream_event(e));
      }
    }
    ins_->audited_reps.add(1);
    if (config_.audit_log != nullptr) {
      const std::lock_guard<std::mutex> lock(mu_);
      for (obs::Event e : recorder.events()) {
        e.rep = static_cast<std::uint32_t>(rep);
        config_.audit_log->on_event(e);
      }
    }
  }

  JsonWriter w = begin_response(op, id);
  w.kv("k", k);
  w.kv("reps", r.reps);
  w.kv("seed", r.seed);
  w.key("model").begin_object();
  w.kv("delta_lw_h", as_hours(model_lw));
  w.kv("delta_hw_h", as_hours(model_hw));
  w.kv("delta_total_h", as_hours(model_lw + model_hw));
  w.end_object();
  // Same arithmetic as sim::simulate_switch_point's candidate: per-app
  // diffs, then their sum — so the numbers compare bit-exactly.
  const double sim_lw = sz.apps[0].useful - base.apps[0].useful;
  const double sim_hw = sz.apps[1].useful - base.apps[1].useful;
  w.key("sim").begin_object();
  w.kv("delta_lw_h", as_hours(sim_lw));
  w.kv("delta_hw_h", as_hours(sim_hw));
  w.kv("delta_total_h", as_hours(sim_lw + sim_hw));
  w.end_object();
  w.kv("audited_reps", r.reps);
  // The deterministic audit-event count (streamed or not) — subscribe
  // clients can check they received exactly this many stream lines.
  if (std::string_view(op) == "subscribe") w.kv("events", events);
  w.end_object();
  return w.str();
}

std::string Service::do_stats(std::optional<double> id) {
  const core::SolverCache::Stats cache_stats = cache_->stats();
  const std::size_t entries = cache_->size();
  const ServiceCounters c = counters();
  JsonWriter w = begin_response("stats", id);
  w.kv("protocol", kProtocol);
  w.key("cache").begin_object();
  w.kv("hits", cache_stats.hits);
  w.kv("misses", cache_stats.misses);
  w.kv("entries", static_cast<std::uint64_t>(entries));
  w.kv("hit_ratio", cache_stats.hit_ratio());
  w.end_object();
  w.key("requests").begin_object();
  w.kv("total", c.requests);
  w.kv("errors", c.errors);
  w.kv("solve_k", c.solve_k);
  w.kv("oci", c.oci);
  w.kv("checkpoint_now", c.checkpoint_now);
  w.kv("pair_whatif", c.pair_whatif);
  w.kv("subscribe", c.subscribe);
  w.kv("stats", c.stats);
  w.kv("metrics", c.metrics);
  w.kv("shutdown", c.shutdown);
  w.end_object();
  w.kv("audited_reps", c.audited_reps);
  // Full registry snapshot appended after the legacy fields, so historical
  // consumers of the prefix keys keep parsing unchanged values.
  w.key("metrics");
  obs::metrics_json(w, metrics_->snapshot());
  w.end_object();
  return w.str();
}

std::string Service::do_metrics(const MetricsRequest& r,
                                std::optional<double> id) {
  const obs::MetricsSnapshot snap = metrics_->snapshot();
  JsonWriter w = begin_response("metrics", id);
  w.kv("schema", obs::kMetricsSchema);
  if (r.prometheus) {
    w.kv("format", "prometheus");
    w.kv("body", obs::prometheus_render(snap));
  } else {
    w.kv("format", "json");
    w.key("snapshot");
    obs::metrics_json(w, snap);
  }
  w.end_object();
  return w.str();
}

ServiceCounters Service::counters() const {
  ServiceCounters c;
  c.requests = ins_->requests.value();
  c.errors = ins_->errors.value();
  c.solve_k = ins_->solve_k.value();
  c.oci = ins_->oci.value();
  c.checkpoint_now = ins_->checkpoint_now.value();
  c.pair_whatif = ins_->pair_whatif.value();
  c.subscribe = ins_->subscribe.value();
  c.stats = ins_->stats.value();
  c.metrics = ins_->metrics.value();
  c.shutdown = ins_->shutdown.value();
  c.audited_reps = ins_->audited_reps.value();
  return c;
}

}  // namespace shiraz::serve
