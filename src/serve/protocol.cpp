#include "serve/protocol.h"

#include <cmath>
#include <map>
#include <utility>

#include "common/error.h"
#include "common/json.h"
#include "common/json_parse.h"

namespace shiraz::serve {

namespace {

/// Strict field extraction: every getter consumes its key; finish() rejects
/// whatever the op did not consume, so unknown fields name themselves.
class Fields {
 public:
  Fields(const JsonValue& doc, std::string op) : op_(std::move(op)) {
    SHIRAZ_REQUIRE(doc.type == JsonValue::Type::kObject,
                   "request must be a JSON object");
    for (const auto& [key, value] : doc.object) fields_[key] = value.get();
  }

  bool take(const std::string& key) {
    const auto it = fields_.find(key);
    if (it == fields_.end()) return false;
    value_ = it->second;
    fields_.erase(it);
    return true;
  }

  double number(const std::string& key, double def) {
    if (!take(key)) return def;
    return as_number(key);
  }

  double require_number(const std::string& key) {
    SHIRAZ_REQUIRE(take(key), "op '" + op_ + "' requires field '" + key + "'");
    return as_number(key);
  }

  std::string string(const std::string& key, const std::string& def) {
    if (!take(key)) return def;
    SHIRAZ_REQUIRE(value_->type == JsonValue::Type::kString,
                   "field '" + key + "' must be a string");
    return value_->string;
  }

  /// A non-negative integer-valued number (ids, reps, seeds, stretch).
  std::uint64_t count(const std::string& key, std::uint64_t def) {
    if (!take(key)) return def;
    const double v = as_number(key);
    SHIRAZ_REQUIRE(v >= 0.0 && std::floor(v) == v && v <= 9.007199254740992e15,
                   "field '" + key + "' must be a non-negative integer");
    return static_cast<std::uint64_t>(v);
  }

  void finish() const {
    if (fields_.empty()) return;
    throw InvalidArgument("unknown field '" + fields_.begin()->first +
                          "' for op '" + op_ + "'");
  }

 private:
  double as_number(const std::string& key) const {
    SHIRAZ_REQUIRE(value_->type == JsonValue::Type::kNumber,
                   "field '" + key + "' must be a number");
    SHIRAZ_REQUIRE(std::isfinite(value_->number),
                   "field '" + key + "' must be finite");
    return value_->number;
  }

  std::string op_;
  std::map<std::string, const JsonValue*> fields_;
  const JsonValue* value_ = nullptr;
};

void require_positive(double v, const char* name) {
  SHIRAZ_REQUIRE(v > 0.0, std::string(name) + " must be positive");
}

ModelParams model_params(Fields& f) {
  ModelParams m;
  m.mtbf_hours = f.number("mtbf_hours", m.mtbf_hours);
  m.beta = f.number("beta", m.beta);
  m.epsilon = f.number("epsilon", m.epsilon);
  m.t_total_hours = f.number("t_total_hours", m.t_total_hours);
  m.formula = formula_from_name(f.string("formula", formula_name(m.formula)));
  require_positive(m.mtbf_hours, "mtbf_hours");
  require_positive(m.beta, "beta");
  SHIRAZ_REQUIRE(m.epsilon > 0.0 && m.epsilon <= 1.0,
                 "epsilon must be in (0, 1]");
  require_positive(m.t_total_hours, "t_total_hours");
  return m;
}

SolveKRequest solve_fields(Fields& f) {
  SolveKRequest r;
  r.model = model_params(f);
  r.delta_lw_s = f.require_number("delta_lw_s");
  r.delta_hw_s = f.require_number("delta_hw_s");
  require_positive(r.delta_lw_s, "delta_lw_s");
  require_positive(r.delta_hw_s, "delta_hw_s");
  SHIRAZ_REQUIRE(r.delta_lw_s <= r.delta_hw_s,
                 "delta_lw_s must not exceed delta_hw_s");
  const std::uint64_t stretch = f.count("stretch", 1);
  SHIRAZ_REQUIRE(stretch >= 1 && stretch <= 64, "stretch must be in [1, 64]");
  r.stretch = static_cast<unsigned>(stretch);
  return r;
}

PairWhatifRequest whatif_fields(Fields& f, const JsonValue& doc) {
  PairWhatifRequest r;
  r.solve = solve_fields(f);
  if (f.take("k")) {
    // re-read strictly as a positive integer
    const JsonValue& v = doc.at("k");
    SHIRAZ_REQUIRE(v.type == JsonValue::Type::kNumber &&
                       std::isfinite(v.number) &&
                       std::floor(v.number) == v.number && v.number >= 1.0 &&
                       v.number <= 1e6,
                   "field 'k' must be an integer in [1, 1e6]");
    r.k = static_cast<int>(v.number);
  }
  r.reps = f.count("reps", r.reps);
  SHIRAZ_REQUIRE(r.reps >= 1, "reps must be >= 1");
  r.seed = f.count("seed", r.seed);
  return r;
}

}  // namespace

const char* formula_name(checkpoint::OciFormula formula) {
  switch (formula) {
    case checkpoint::OciFormula::kYoung: return "young";
    case checkpoint::OciFormula::kDalyFirstOrder: return "daly";
    case checkpoint::OciFormula::kDalyHigherOrder: return "daly-ho";
  }
  throw InvalidArgument("unhandled OciFormula");
}

checkpoint::OciFormula formula_from_name(const std::string& name) {
  if (name == "young") return checkpoint::OciFormula::kYoung;
  if (name == "daly") return checkpoint::OciFormula::kDalyFirstOrder;
  if (name == "daly-ho") return checkpoint::OciFormula::kDalyHigherOrder;
  throw InvalidArgument("unknown formula '" + name +
                        "' (expected young, daly, or daly-ho)");
}

Request parse_request(const std::string& line) {
  const JsonValue doc = parse_json(line);
  SHIRAZ_REQUIRE(doc.type == JsonValue::Type::kObject,
                 "request must be a JSON object");
  SHIRAZ_REQUIRE(doc.has("op"), "request requires field 'op'");

  Request request;
  const std::string op = [&] {
    const JsonValue& v = doc.at("op");
    SHIRAZ_REQUIRE(v.type == JsonValue::Type::kString,
                   "field 'op' must be a string");
    return v.string;
  }();

  Fields f(doc, op);
  f.take("op");  // consumed above
  if (f.take("id")) {
    const JsonValue& v = doc.at("id");
    SHIRAZ_REQUIRE(v.type == JsonValue::Type::kNumber &&
                       std::isfinite(v.number),
                   "field 'id' must be a finite number");
    request.id = v.number;
  }

  if (op == "solve_k") {
    request.op = solve_fields(f);
  } else if (op == "oci" || op == "checkpoint_now") {
    const double mtbf_hours = f.number("mtbf_hours", 5.0);
    require_positive(mtbf_hours, "mtbf_hours");
    const auto formula = formula_from_name(f.string("formula", "young"));
    const double delta_s = f.require_number("delta_s");
    require_positive(delta_s, "delta_s");
    if (op == "oci") {
      request.op = OciRequest{mtbf_hours, formula, delta_s};
    } else {
      const double since = f.require_number("since_ckpt_s");
      SHIRAZ_REQUIRE(since >= 0.0, "since_ckpt_s must be >= 0");
      request.op = CheckpointNowRequest{mtbf_hours, formula, delta_s, since};
    }
  } else if (op == "pair_whatif") {
    request.op = whatif_fields(f, doc);
  } else if (op == "subscribe") {
    request.op = SubscribeRequest{whatif_fields(f, doc)};
  } else if (op == "stats") {
    request.op = StatsRequest{};
  } else if (op == "metrics") {
    const std::string format = f.string("format", "json");
    SHIRAZ_REQUIRE(format == "json" || format == "prometheus",
                   "field 'format' must be \"json\" or \"prometheus\"");
    request.op = MetricsRequest{format == "prometheus"};
  } else if (op == "shutdown") {
    request.op = ShutdownRequest{};
  } else {
    throw InvalidArgument(
        "unknown op '" + op +
        "' (expected solve_k, oci, checkpoint_now, pair_whatif, subscribe, "
        "stats, metrics, or shutdown)");
  }
  f.finish();
  return request;
}

const char* op_name(const Request& request) {
  struct Namer {
    const char* operator()(const SolveKRequest&) const { return "solve_k"; }
    const char* operator()(const OciRequest&) const { return "oci"; }
    const char* operator()(const CheckpointNowRequest&) const {
      return "checkpoint_now";
    }
    const char* operator()(const PairWhatifRequest&) const {
      return "pair_whatif";
    }
    const char* operator()(const SubscribeRequest&) const {
      return "subscribe";
    }
    const char* operator()(const StatsRequest&) const { return "stats"; }
    const char* operator()(const MetricsRequest&) const { return "metrics"; }
    const char* operator()(const ShutdownRequest&) const { return "shutdown"; }
  };
  return std::visit(Namer{}, request.op);
}

std::string error_response(const std::string& message,
                           std::optional<double> id) {
  JsonWriter w(0);
  w.begin_object();
  w.kv("ok", false);
  w.kv("error", message);
  if (id) w.kv("id", *id);
  w.end_object();
  return w.str();
}

}  // namespace shiraz::serve
