#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.h"

namespace shiraz::serve {

namespace {

int connect_once(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw IoError("socket path too long for sockaddr_un: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw IoError(std::string("socket(AF_UNIX): ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

}  // namespace

Client::Client(const std::string& socket_path) {
  fd_ = connect_once(socket_path);
  if (fd_ < 0) {
    throw IoError("connect(" + socket_path + "): " + std::strerror(errno));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

std::string Client::request(const std::string& line) {
  return request(line, StreamHandler{});
}

std::string Client::request(const std::string& line,
                            const StreamHandler& on_stream) {
  SHIRAZ_REQUIRE(fd_ >= 0, "request on a moved-from Client");
  std::string out = line;
  out.push_back('\n');
  const char* data = out.data();
  std::size_t len = out.size();
  while (len > 0) {
    const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("send: ") + std::strerror(errno));
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string received = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      // Stream frames precede the response (see serve/protocol.h).
      if (received.rfind("{\"stream\":", 0) == 0) {
        if (on_stream) on_stream(received);
        continue;
      }
      return received;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw IoError("connection closed before a response arrived");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool wait_for_server(const std::string& socket_path, Seconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout);
  for (;;) {
    const int fd = connect_once(socket_path);
    if (fd >= 0) {
      ::close(fd);
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace shiraz::serve
