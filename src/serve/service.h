// The serve request handler, independent of any transport.
//
// Service::handle_line maps one shiraz-serve-v1 request line to one response
// line. The socket daemon (serve/server.h), the load bench, and the
// in-process tests all call this same entry point, which is what makes
// "daemon response == direct library call" a byte-for-byte checkable
// contract: solve_k, oci, checkpoint_now, pair_whatif, and subscribe
// responses are pure functions of the request (the whatif seed is pinned),
// so two Service instances — whatever their cache or counter state — render
// identical bytes for identical requests. subscribe additionally streams
// the audited event lines through the caller-supplied StreamSink before the
// response lands; the stream renders the deterministic audit events, so it
// is byte-identical across instances too.
//
// Solves go through the shared core::SolverCache: hand the daemon the same
// cache instance as a sched::WorkloadManager and a 10k-job campaign and a
// live query hit the same memo table. pair_whatif runs replay-backed
// campaigns through sim::TraceStore and re-replays every repetition through
// obs::InvariantAuditor; the audited event stream is forwarded to the
// configured EventSink — the request-audit log.
//
// Telemetry lives on an obs::MetricsRegistry (shiraz_serve_* counters, a
// request-latency histogram, and — folded in via the shared registry — the
// solver cache's and the whatif engines' counters). The `metrics` op
// snapshots it as shiraz-metrics-v1 JSON or Prometheus text; `stats` keeps
// its legacy fields bit-for-bit and appends the same snapshot under a
// trailing "metrics" key.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "core/solver_cache.h"
#include "serve/protocol.h"

namespace shiraz::obs {
class Counter;
class EventSink;
class Histogram;
class MetricsRegistry;
}  // namespace shiraz::obs

namespace shiraz::serve {

struct ServiceConfig {
  /// Shared solver cache; null = the service owns a private one counting
  /// into the service registry.
  std::shared_ptr<const core::SolverCache> cache;
  /// Upper bound on pair_whatif repetitions per request (DoS guard).
  std::uint64_t max_whatif_reps = 256;
  /// When non-null, every audited pair_whatif repetition's event stream is
  /// forwarded here (rep-stamped, repetition order) — the request-audit
  /// log. The sink is called under an internal mutex, so a plain recorder
  /// is safe even with concurrent clients.
  obs::EventSink* audit_log = nullptr;
  /// Registry the service counts into. Resolution order: this when
  /// non-null, else the shared cache's registry, else a private one — so
  /// the default daemon's `metrics` snapshot folds the cache counters in.
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

/// Per-op request counters (exact), read back from the registry.
struct ServiceCounters {
  std::uint64_t requests = 0;  ///< total lines handled, errors included
  std::uint64_t errors = 0;
  std::uint64_t solve_k = 0;
  std::uint64_t oci = 0;
  std::uint64_t checkpoint_now = 0;
  std::uint64_t pair_whatif = 0;
  std::uint64_t subscribe = 0;
  std::uint64_t stats = 0;
  std::uint64_t metrics = 0;
  std::uint64_t shutdown = 0;
  /// pair_whatif/subscribe repetitions replayed through the InvariantAuditor.
  std::uint64_t audited_reps = 0;
};

class Service {
 public:
  struct Result {
    std::string response;  ///< one JSON line, no trailing newline
    bool shutdown = false; ///< the request asked the daemon to stop
  };

  /// Receives subscribe stream lines (no trailing newline), in order, from
  /// the thread handling the request, before handle_line returns.
  using StreamSink = std::function<void(const std::string&)>;

  explicit Service(ServiceConfig config = {});
  ~Service();  // out-of-line: Instruments is incomplete here

  /// Handles one request line; never throws — malformed input becomes an
  /// {"ok":false,...} response. Thread-safe: concurrent connections may
  /// call this simultaneously. Without a StreamSink, subscribe still
  /// answers (same response bytes) but its event lines go nowhere.
  Result handle_line(const std::string& line);
  Result handle_line(const std::string& line, const StreamSink& stream);

  /// handle_line for callers that don't route shutdown (bench, tests).
  std::string handle(const std::string& line) {
    return handle_line(line).response;
  }

  const std::shared_ptr<const core::SolverCache>& cache() const {
    return cache_;
  }
  /// The registry this service counts into (never null).
  const std::shared_ptr<obs::MetricsRegistry>& metrics() const {
    return metrics_;
  }
  ServiceCounters counters() const;

 private:
  std::string dispatch(const Request& request, bool* shutdown,
                       const StreamSink& stream);
  std::string do_solve_k(const SolveKRequest& r, std::optional<double> id);
  std::string do_oci(const OciRequest& r, std::optional<double> id);
  std::string do_checkpoint_now(const CheckpointNowRequest& r,
                                std::optional<double> id);
  /// Shared pair_whatif/subscribe body; `stream` null = no event streaming.
  std::string do_whatif(const char* op, const PairWhatifRequest& r,
                        std::optional<double> id, const StreamSink* stream);
  std::string do_stats(std::optional<double> id);
  std::string do_metrics(const MetricsRequest& r, std::optional<double> id);

  ServiceConfig config_;
  std::shared_ptr<const core::SolverCache> cache_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  /// Registry handles resolved once at construction.
  struct Instruments;
  std::unique_ptr<const Instruments> ins_;
  mutable std::mutex mu_;  ///< guards the audit_log sink
};

}  // namespace shiraz::serve
