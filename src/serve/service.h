// The serve request handler, independent of any transport.
//
// Service::handle_line maps one shiraz-serve-v1 request line to one response
// line. The socket daemon (serve/server.h), the load bench, and the
// in-process tests all call this same entry point, which is what makes
// "daemon response == direct library call" a byte-for-byte checkable
// contract: solve_k, oci, checkpoint_now, and pair_whatif responses are
// pure functions of the request (pair_whatif's randomness is pinned by its
// explicit seed), so two Service instances — whatever their cache or
// counter state — render identical bytes for identical requests.
//
// Solves go through the shared core::SolverCache: hand the daemon the same
// cache instance as a sched::WorkloadManager and a 10k-job campaign and a
// live query hit the same memo table. pair_whatif runs replay-backed
// campaigns through sim::TraceStore and re-replays every repetition through
// obs::InvariantAuditor; the audited event stream is forwarded to the
// configured EventSink — the request-audit log.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/solver_cache.h"
#include "serve/protocol.h"

namespace shiraz::obs {
class EventSink;
}  // namespace shiraz::obs

namespace shiraz::serve {

struct ServiceConfig {
  /// Shared solver cache; null = the service owns a private one.
  std::shared_ptr<const core::SolverCache> cache;
  /// Upper bound on pair_whatif repetitions per request (DoS guard).
  std::uint64_t max_whatif_reps = 256;
  /// When non-null, every audited pair_whatif repetition's event stream is
  /// forwarded here (rep-stamped, repetition order) — the request-audit
  /// log. The sink is called under an internal mutex, so a plain recorder
  /// is safe even with concurrent clients.
  obs::EventSink* audit_log = nullptr;
};

/// Per-op request counters (exact; taken under the service mutex).
struct ServiceCounters {
  std::uint64_t requests = 0;  ///< total lines handled, errors included
  std::uint64_t errors = 0;
  std::uint64_t solve_k = 0;
  std::uint64_t oci = 0;
  std::uint64_t checkpoint_now = 0;
  std::uint64_t pair_whatif = 0;
  std::uint64_t stats = 0;
  std::uint64_t shutdown = 0;
  /// pair_whatif repetitions replayed through the InvariantAuditor.
  std::uint64_t audited_reps = 0;
};

class Service {
 public:
  struct Result {
    std::string response;  ///< one JSON line, no trailing newline
    bool shutdown = false; ///< the request asked the daemon to stop
  };

  explicit Service(ServiceConfig config = {});

  /// Handles one request line; never throws — malformed input becomes an
  /// {"ok":false,...} response. Thread-safe: concurrent connections may
  /// call this simultaneously.
  Result handle_line(const std::string& line);

  /// handle_line for callers that don't route shutdown (bench, tests).
  std::string handle(const std::string& line) {
    return handle_line(line).response;
  }

  const std::shared_ptr<const core::SolverCache>& cache() const {
    return cache_;
  }
  ServiceCounters counters() const;

 private:
  std::string dispatch(const Request& request, bool* shutdown);
  std::string do_solve_k(const SolveKRequest& r, std::optional<double> id);
  std::string do_oci(const OciRequest& r, std::optional<double> id);
  std::string do_checkpoint_now(const CheckpointNowRequest& r,
                                std::optional<double> id);
  std::string do_pair_whatif(const PairWhatifRequest& r,
                             std::optional<double> id);
  std::string do_stats(std::optional<double> id);

  ServiceConfig config_;
  std::shared_ptr<const core::SolverCache> cache_;
  mutable std::mutex mu_;  ///< guards counters_ and the audit_log sink
  ServiceCounters counters_;
};

}  // namespace shiraz::serve
