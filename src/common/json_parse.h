// Minimal recursive-descent JSON parser — the read side of common/json.h.
//
// The library long shipped a writer only; the scenario catalog
// (src/scenario) made parsing a production concern, so the tests' former
// support/mini_json.h grew up into this header. It supports the full JSON
// grammar the JsonWriter can produce (objects, arrays, strings with escapes,
// numbers, booleans, null) and throws InvalidArgument with a byte offset on
// malformed input. Round-tripping writer output through this parser is the
// tested contract (tests/common/json_parse_test.cpp); documents the parser
// rejects are malformed by construction, never silently coerced.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace shiraz {

struct JsonValue;
using JsonValuePtr = std::shared_ptr<JsonValue>;

/// One parsed JSON value. Numbers are doubles (the writer emits shortest
/// round-trip doubles, so integral values up to 2^53 survive exactly).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValuePtr> array;
  // std::map: iteration order is key order — deterministic for consumers
  // that walk the object.
  std::map<std::string, JsonValuePtr> object;

  bool is_null() const { return type == Type::kNull; }
  bool has(const std::string& key) const { return object.count(key) != 0; }

  /// Member access; throws InvalidArgument when the key is absent or the
  /// index is out of range (strict: a missing field is a caller bug or a
  /// malformed document, never a default).
  const JsonValue& at(const std::string& key) const;
  const JsonValue& at(std::size_t i) const;
};

/// Parses exactly one JSON document (trailing bytes are an error). Throws
/// InvalidArgument naming the byte offset on any grammar violation.
JsonValue parse_json(const std::string& text);

}  // namespace shiraz
