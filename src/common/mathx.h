// Special functions and numerical helpers used by the reliability models.
#pragma once

#include <cstddef>
#include <functional>

namespace shiraz::mathx {

/// Machine-precision-ish comparison: |a - b| <= tol * max(1, |a|, |b|).
bool approx_equal(double a, double b, double tol = 1e-9);

/// Gamma function Γ(x) for x > 0.
double gamma_fn(double x);

/// Natural log of Γ(x) for x > 0.
double log_gamma(double x);

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0, x >= 0.
/// Series expansion for x < a + 1, continued fraction otherwise.
double reg_lower_incomplete_gamma(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double reg_upper_incomplete_gamma(double a, double x);

/// Error function (wraps std::erf; kept here so all special functions share a home).
double erf_fn(double x);

/// Adaptive Simpson integration of `f` over [a, b] to absolute tolerance `tol`.
double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol = 1e-10, int max_depth = 40);

/// Finds a root of `f` in [lo, hi] by bisection; requires f(lo) and f(hi) to
/// bracket zero. Returns the midpoint of the final bracket.
double bisect(const std::function<double(double)>& f, double lo, double hi,
              double tol = 1e-12, int max_iter = 200);

/// Newton-Raphson with bisection fallback bracket [lo, hi].
double newton(const std::function<double(double)>& f,
              const std::function<double(double)>& df, double x0, double lo, double hi,
              double tol = 1e-12, int max_iter = 100);

/// Kahan-compensated summation over a callable producing terms until it
/// returns false. Used by the model's "infinite" segment sums.
class KahanSum {
 public:
  void add(double term);
  double value() const { return sum_; }

 private:
  double sum_ = 0.0;
  double carry_ = 0.0;
};

}  // namespace shiraz::mathx
