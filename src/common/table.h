// Console table and CSV rendering for the bench harnesses.
//
// Every figure/table bench prints the paper's rows as an aligned ASCII table
// plus (optionally) a CSV block, so results are both human-readable and easy
// to re-plot.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace shiraz {

/// Column-aligned text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with column alignment and a separator under the header.
  std::string render() const;

  /// Renders as CSV (RFC-4180-ish quoting).
  std::string render_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` digits after the decimal point.
std::string fmt(double value, int digits = 2);

/// Formats a value as a signed percentage, e.g. "+12.3%".
std::string fmt_percent(double fraction, int digits = 1);

}  // namespace shiraz
