#include "common/thread_pool.h"

namespace shiraz::common {

ThreadPool::ThreadPool(std::size_t workers) {
  SHIRAZ_REQUIRE(workers >= 1, "thread pool needs at least one worker");
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Workers exit only once the queue is drained, so every submitted
      // future is fulfilled even when destruction races pending tasks.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace shiraz::common
