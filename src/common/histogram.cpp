#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace shiraz {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins + 1, 0) {
  SHIRAZ_REQUIRE(hi > lo, "histogram range must be non-empty");
  SHIRAZ_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++counts_.front();  // clamp underflow into the first bin
    return;
  }
  if (x >= hi_) {
    ++counts_.back();
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
  ++counts_[std::min(bin, counts_.size() - 2)];
}

void Histogram::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t bin) const {
  SHIRAZ_REQUIRE(bin < counts_.size(), "bin out of range");
  return lo_ + static_cast<double>(bin) * bin_width_;
}

double Histogram::bin_hi(std::size_t bin) const {
  SHIRAZ_REQUIRE(bin < counts_.size(), "bin out of range");
  return bin + 1 == counts_.size() ? hi_ : lo_ + static_cast<double>(bin + 1) * bin_width_;
}

std::size_t Histogram::count(std::size_t bin) const {
  SHIRAZ_REQUIRE(bin < counts_.size(), "bin out of range");
  return counts_[bin];
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double Histogram::cumulative_fraction(std::size_t bin) const {
  SHIRAZ_REQUIRE(bin < counts_.size(), "bin out of range");
  if (total_ == 0) return 0.0;
  std::size_t acc = 0;
  for (std::size_t i = 0; i <= bin; ++i) acc += counts_[i];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream os;
  const std::size_t peak =
      *std::max_element(counts_.begin(), counts_.end() - 1);
  for (std::size_t b = 0; b + 1 < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * width / std::max<std::size_t>(peak, 1);
    char label[64];
    std::snprintf(label, sizeof(label), "[%9.2f,%9.2f)", bin_lo(b), bin_hi(b));
    os << label << ' ' << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  if (overflow() > 0) os << ">= " << hi_ << " : " << overflow() << '\n';
  return os.str();
}

}  // namespace shiraz
