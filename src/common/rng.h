// Deterministic random number generation.
//
// Every stochastic component in the library (failure processes, Monte-Carlo
// campaigns, random pairing) draws from an explicitly seeded `Rng`. Benches and
// tests print or fix their seeds, so every reported number is reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace shiraz {

/// SplitMix64: tiny, high-quality seed expander (Steele et al., used to derive
/// independent sub-stream seeds from one master seed).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Seeded Mersenne-Twister wrapper with convenience draws.
///
/// `Rng` is cheap to fork: `fork(i)` derives an independent stream for
/// sub-component `i`, so parallel or repeated experiments never share state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(expand(seed)) {}

  std::uint64_t seed() const { return seed_; }

  /// Derives an independent generator for sub-stream `stream`.
  Rng fork(std::uint64_t stream) const {
    SplitMix64 mixer(seed_ ^ (0xa5a5a5a5a5a5a5a5ULL + stream * 0x9e3779b97f4a7c15ULL));
    return Rng(mixer.next());
  }

  /// Uniform double in [0, 1).
  double uniform() { return std::generate_canonical<double, 53>(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal draw.
  double normal() {
    std::normal_distribution<double> d(0.0, 1.0);
    return d(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  static std::mt19937_64 expand(std::uint64_t seed) {
    SplitMix64 mixer(seed);
    return std::mt19937_64(mixer.next());
  }

  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace shiraz
