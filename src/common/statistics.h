// Descriptive statistics used throughout the benches and the trace analytics.
#pragma once

#include <cstddef>
#include <vector>

namespace shiraz {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Linear-interpolated percentile of a sample, q in [0, 1]. Sorts a copy.
double percentile(std::vector<double> xs, double q);

/// Computes a full Summary of `xs`. Throws InvalidArgument when empty.
Summary summarize(const std::vector<double>& xs);

/// Half-width of the (approximately) 95% normal confidence interval of the mean.
double ci95_halfwidth(const RunningStats& stats);

/// Empirical CDF evaluated at `x` over sample `xs` (fraction of values <= x).
double empirical_cdf(const std::vector<double>& xs, double x);

}  // namespace shiraz
