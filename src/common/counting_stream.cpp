#include "common/counting_stream.h"

namespace shiraz {

CountingStreambuf::int_type CountingStreambuf::overflow(int_type ch) {
  if (traits_type::eq_int_type(ch, traits_type::eof())) {
    return traits_type::not_eof(ch);
  }
  const int_type result = inner_->sputc(traits_type::to_char_type(ch));
  if (!traits_type::eq_int_type(result, traits_type::eof())) ++written_;
  return result;
}

std::streamsize CountingStreambuf::xsputn(const char* s, std::streamsize n) {
  const std::streamsize accepted = inner_->sputn(s, n);
  if (accepted > 0) written_ += static_cast<Bytes>(accepted);
  return accepted;
}

int CountingStreambuf::sync() { return inner_->pubsync(); }

CountingStreambuf::int_type CountingStreambuf::underflow() {
  // Peek without consuming: the byte is not counted until uflow/xsgetn
  // actually moves it.
  return inner_->sgetc();
}

CountingStreambuf::int_type CountingStreambuf::uflow() {
  const int_type result = inner_->sbumpc();
  if (!traits_type::eq_int_type(result, traits_type::eof())) ++read_;
  return result;
}

std::streamsize CountingStreambuf::xsgetn(char* s, std::streamsize n) {
  const std::streamsize delivered = inner_->sgetn(s, n);
  if (delivered > 0) read_ += static_cast<Bytes>(delivered);
  return delivered;
}

}  // namespace shiraz
