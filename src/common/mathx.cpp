#include "common/mathx.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace shiraz::mathx {

bool approx_equal(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

double gamma_fn(double x) {
  SHIRAZ_REQUIRE(x > 0.0, "gamma_fn requires x > 0");
  return std::tgamma(x);
}

double log_gamma(double x) {
  SHIRAZ_REQUIRE(x > 0.0, "log_gamma requires x > 0");
  return std::lgamma(x);
}

namespace {

// Series representation of P(a, x), valid/efficient for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued-fraction representation of Q(a, x), valid/efficient for x >= a + 1.
double gamma_q_cf(double a, double x) {
  const double tiny = std::numeric_limits<double>::min() / 1e-30;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-16) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double reg_lower_incomplete_gamma(double a, double x) {
  SHIRAZ_REQUIRE(a > 0.0, "incomplete gamma requires a > 0");
  SHIRAZ_REQUIRE(x >= 0.0, "incomplete gamma requires x >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double reg_upper_incomplete_gamma(double a, double x) {
  return 1.0 - reg_lower_incomplete_gamma(a, x);
}

double erf_fn(double x) { return std::erf(x); }

namespace {

double simpson(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive_simpson_rec(const std::function<double(double)>& f, double a, double fa,
                            double b, double fb, double m, double fm, double whole,
                            double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(a, fa, m, fm, flm);
  const double right = simpson(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive_simpson_rec(f, a, fa, m, fm, lm, flm, left, 0.5 * tol, depth - 1) +
         adaptive_simpson_rec(f, m, fm, b, fb, rm, frm, right, 0.5 * tol, depth - 1);
}

}  // namespace

double integrate(const std::function<double(double)>& f, double a, double b, double tol,
                 int max_depth) {
  SHIRAZ_REQUIRE(std::isfinite(a) && std::isfinite(b), "integration bounds must be finite");
  if (a == b) return 0.0;
  const double sign = (a < b) ? 1.0 : -1.0;
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  const double m = 0.5 * (lo + hi);
  const double flo = f(lo);
  const double fhi = f(hi);
  const double fm = f(m);
  const double whole = simpson(lo, flo, hi, fhi, fm);
  return sign *
         adaptive_simpson_rec(f, lo, flo, hi, fhi, m, fm, whole, tol, max_depth);
}

double bisect(const std::function<double(double)>& f, double lo, double hi, double tol,
              int max_iter) {
  double flo = f(lo);
  double fhi = f(hi);
  SHIRAZ_REQUIRE(flo == 0.0 || fhi == 0.0 || (flo < 0.0) != (fhi < 0.0),
                 "bisect requires a bracketing interval");
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  for (int i = 0; i < max_iter && (hi - lo) > tol * std::max(1.0, std::fabs(lo)); ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if ((fmid < 0.0) == (flo < 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double newton(const std::function<double(double)>& f, const std::function<double(double)>& df,
              double x0, double lo, double hi, double tol, int max_iter) {
  double x = std::clamp(x0, lo, hi);
  for (int i = 0; i < max_iter; ++i) {
    const double fx = f(x);
    if (std::fabs(fx) < tol) return x;
    const double dfx = df(x);
    double next = (dfx != 0.0) ? x - fx / dfx : std::numeric_limits<double>::quiet_NaN();
    if (!std::isfinite(next) || next <= lo || next >= hi) {
      // Fall back to a bisection step inside the bracket.
      const double flo = f(lo);
      next = ((fx < 0.0) == (flo < 0.0)) ? 0.5 * (x + hi) : 0.5 * (lo + x);
    }
    if (std::fabs(next - x) < tol * std::max(1.0, std::fabs(x))) return next;
    x = next;
  }
  return x;
}

void KahanSum::add(double term) {
  const double y = term - carry_;
  const double t = sum_ + y;
  carry_ = (t - sum_) - y;
  sum_ = t;
}

}  // namespace shiraz::mathx
