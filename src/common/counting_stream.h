// A pass-through streambuf that counts the bytes flowing through it.
//
// The prototype backend's I/O accounting is byte-accurate because every
// checkpoint write and restore goes through a CountingStreambuf wrapped
// around the file stream: the counter observes exactly what the serializer
// pushed to (or pulled from) the underlying buffer, independent of machine
// load. Wall-clock durations jitter with the page cache and the scheduler;
// byte counts do not — which is why Fig 3 / Fig 16 normalize on bytes moved.
#pragma once

#include <streambuf>

#include "common/units.h"

namespace shiraz {

/// Wraps an existing `std::streambuf` and forwards every operation to it,
/// tallying bytes written and bytes read. The wrapper owns no buffer of its
/// own, so counts are exact (nothing sits unflushed inside the wrapper) and
/// the inner buffer's lifetime must outlive the counter.
class CountingStreambuf final : public std::streambuf {
 public:
  explicit CountingStreambuf(std::streambuf& inner) : inner_(&inner) {}

  /// Bytes successfully pushed to the inner buffer so far.
  Bytes bytes_written() const { return written_; }

  /// Bytes successfully consumed from the inner buffer so far. Peeks
  /// (`sgetc`) do not count; only consumed characters do.
  Bytes bytes_read() const { return read_; }

 protected:
  int_type overflow(int_type ch) override;
  std::streamsize xsputn(const char* s, std::streamsize n) override;
  int sync() override;
  int_type underflow() override;
  int_type uflow() override;
  std::streamsize xsgetn(char* s, std::streamsize n) override;

 private:
  std::streambuf* inner_;
  Bytes written_ = 0;
  Bytes read_ = 0;
};

}  // namespace shiraz
