// Minimal streaming JSON writer — no third-party dependencies.
//
// Backs the unified bench telemetry (`bench::BenchJson`, the `BENCH_*.json`
// artifacts CI trends) and the Perfetto trace export (`obs::PerfettoWriter`).
// The writer is strictly validating: emitting a value where the grammar does
// not allow one (value without a key inside an object, a second top-level
// value, unbalanced end_*) throws InvalidArgument, so malformed documents are
// impossible rather than merely unlikely. Doubles render in shortest
// round-trip form via std::to_chars; non-finite values (JSON has no NaN/inf)
// render as null.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace shiraz {

class JsonWriter {
 public:
  /// `indent` > 0 pretty-prints with that many spaces per nesting level;
  /// 0 emits the compact single-line form. Both parse identically.
  explicit JsonWriter(int indent = 2);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be directly inside an object and must be
  /// followed by exactly one value (or container).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value_null();

  /// key(k) + value(v) in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  /// The finished document. Throws unless exactly one complete top-level
  /// value has been written and every container is closed.
  const std::string& str() const;

  /// JSON string-escapes `s` (quotes, backslash, control characters).
  /// Returns the escaped body without surrounding quotes.
  static std::string escape(std::string_view s);

 private:
  enum class Ctx : std::uint8_t { kObject, kArray };
  struct Level {
    Ctx ctx;
    bool first = true;
  };

  /// Comma/indent bookkeeping shared by every value and container opening.
  void begin_value();
  void newline_indent();

  std::string out_;
  std::vector<Level> stack_;
  bool have_key_ = false;
  bool done_ = false;
  int indent_;
};

}  // namespace shiraz
