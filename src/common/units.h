// Time-unit helpers.
//
// The simulator and the analytical model both span time scales from sub-second
// checkpoint latencies to multi-year campaigns, so time is represented as
// `double` seconds everywhere. These helpers keep unit conversions explicit at
// call sites (`hours(5)`, `as_hours(t)`) instead of scattering magic constants.
#pragma once

namespace shiraz {

/// Seconds, the canonical time representation across the library.
using Seconds = double;

inline constexpr double kSecondsPerMinute = 60.0;
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kSecondsPerDay = 24.0 * kSecondsPerHour;
inline constexpr double kSecondsPerWeek = 7.0 * kSecondsPerDay;
/// One calendar year as the paper uses it ("8,700 hours", Section 5).
inline constexpr double kHoursPerYear = 8700.0;
inline constexpr double kSecondsPerYear = kHoursPerYear * kSecondsPerHour;

constexpr Seconds seconds(double s) { return s; }
constexpr Seconds minutes(double m) { return m * kSecondsPerMinute; }
constexpr Seconds hours(double h) { return h * kSecondsPerHour; }
constexpr Seconds days(double d) { return d * kSecondsPerDay; }
constexpr Seconds weeks(double w) { return w * kSecondsPerWeek; }
constexpr Seconds years(double y) { return y * kSecondsPerYear; }

constexpr double as_minutes(Seconds s) { return s / kSecondsPerMinute; }
constexpr double as_hours(Seconds s) { return s / kSecondsPerHour; }
constexpr double as_days(Seconds s) { return s / kSecondsPerDay; }
constexpr double as_weeks(Seconds s) { return s / kSecondsPerWeek; }
constexpr double as_years(Seconds s) { return s / kSecondsPerYear; }

/// Bytes, used by the proxy applications and the checkpoint cost models.
using Bytes = unsigned long long;

inline constexpr Bytes kKiB = 1024ULL;
inline constexpr Bytes kMiB = 1024ULL * kKiB;
inline constexpr Bytes kGiB = 1024ULL * kMiB;

constexpr Bytes kib(double n) { return static_cast<Bytes>(n * static_cast<double>(kKiB)); }
constexpr Bytes mib(double n) { return static_cast<Bytes>(n * static_cast<double>(kMiB)); }
constexpr Bytes gib(double n) { return static_cast<Bytes>(n * static_cast<double>(kGiB)); }

constexpr double as_mib(Bytes b) { return static_cast<double>(b) / static_cast<double>(kMiB); }
constexpr double as_gib(Bytes b) { return static_cast<double>(b) / static_cast<double>(kGiB); }

}  // namespace shiraz
