#include "common/json_parse.h"

#include <cctype>
#include <cstdlib>

#include "common/error.h"

namespace shiraz {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      v.type = JsonValue::Type::kString;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return v;
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[key] = std::make_shared<JsonValue>(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(std::make_shared<JsonValue>(parse_value()));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const unsigned long cp =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // The writer only emits \u00XX for control characters; decode the
          // BMP subset as UTF-8 so round-trip comparisons see original bytes.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue& JsonValue::at(const std::string& key) const {
  auto it = object.find(key);
  if (it == object.end()) throw InvalidArgument("json: missing key '" + key + "'");
  return *it->second;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  if (i >= array.size()) {
    throw InvalidArgument("json: array index " + std::to_string(i) +
                          " out of range (size " + std::to_string(array.size()) +
                          ")");
  }
  return *array[i];
}

JsonValue parse_json(const std::string& text) { return Parser(text).parse(); }

}  // namespace shiraz
