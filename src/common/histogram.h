// Fixed-bin histogram used by the failure-trace analytics (Figs 1 & 2).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace shiraz {

/// Equal-width histogram over [lo, hi) with an overflow bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t bin_count() const { return counts_.size() - 1; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  /// Count in bin `bin` (bin == bin_count() addresses the overflow bin).
  std::size_t count(std::size_t bin) const;
  std::size_t overflow() const { return counts_.back(); }
  std::size_t total() const { return total_; }

  /// Fraction of all samples in bin `bin`.
  double fraction(std::size_t bin) const;
  /// Cumulative fraction of samples in bins [0, bin].
  double cumulative_fraction(std::size_t bin) const;

  /// Renders an ASCII bar chart (one row per bin), for bench output.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;  // last element = overflow
  std::size_t total_ = 0;
};

}  // namespace shiraz
