// Minimal `--key=value` flag parser for the bench and example binaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace shiraz {

/// Parses flags of the form `--name=value` (or bare `--name` for booleans).
/// Unknown positional arguments raise InvalidArgument so typos surface early,
/// and the numeric getters reject malformed or out-of-range values
/// (`--jobs=abc`, `--reps=-3`) instead of silently reading 0.
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  double get_double(const std::string& name, double def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  /// Non-negative counts (reps, jobs, samples): get_int plus a >= 0 check.
  std::size_t get_count(const std::string& name, std::size_t def) const;
  std::uint64_t get_seed(const std::string& name, std::uint64_t def) const;
  bool get_bool(const std::string& name, bool def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace shiraz
