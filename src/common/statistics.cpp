#include "common/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace shiraz {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

double percentile(std::vector<double> xs, double q) {
  SHIRAZ_REQUIRE(!xs.empty(), "percentile of empty sample");
  SHIRAZ_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Summary summarize(const std::vector<double>& xs) {
  SHIRAZ_REQUIRE(!xs.empty(), "summarize of empty sample");
  RunningStats stats;
  for (double x : xs) stats.add(x);
  Summary s;
  s.count = xs.size();
  s.mean = stats.mean();
  s.stddev = stats.stddev();
  s.min = stats.min();
  s.max = stats.max();
  s.p25 = percentile(xs, 0.25);
  s.median = percentile(xs, 0.50);
  s.p75 = percentile(xs, 0.75);
  s.p95 = percentile(xs, 0.95);
  return s;
}

double ci95_halfwidth(const RunningStats& stats) {
  if (stats.count() < 2) return 0.0;
  return 1.96 * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
}

double empirical_cdf(const std::vector<double>& xs, double x) {
  SHIRAZ_REQUIRE(!xs.empty(), "empirical_cdf of empty sample");
  const auto below =
      std::count_if(xs.begin(), xs.end(), [x](double v) { return v <= x; });
  return static_cast<double>(below) / static_cast<double>(xs.size());
}

}  // namespace shiraz
