#include "common/cli.h"

#include <cerrno>
#include <cstdlib>
#include <string>

#include "common/error.h"

namespace shiraz {

namespace {

/// Shared checks for the strto* family: the value must be non-empty, fully
/// consumed, and in range — otherwise `--jobs=abc` silently reads as 0.
void require_consumed(const std::string& name, const std::string& text,
                      const char* end) {
  SHIRAZ_REQUIRE(!text.empty() && end == text.c_str() + text.size(),
                 "flag --" + name + " has malformed numeric value: '" + text + "'");
  SHIRAZ_REQUIRE(errno != ERANGE,
                 "flag --" + name + " is out of range: '" + text + "'");
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    SHIRAZ_REQUIRE(arg.rfind("--", 0) == 0, "expected --name=value, got: " + arg);
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::get(const std::string& name, const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

double Flags::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  require_consumed(name, it->second, end);
  return value;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  errno = 0;
  char* end = nullptr;
  const std::int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  require_consumed(name, it->second, end);
  return value;
}

std::size_t Flags::get_count(const std::string& name, std::size_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::int64_t value = get_int(name, 0);
  SHIRAZ_REQUIRE(value >= 0, "flag --" + name + " must be non-negative, got: " +
                                 it->second);
  return static_cast<std::size_t>(value);
}

std::uint64_t Flags::get_seed(const std::string& name, std::uint64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  // strtoull happily wraps "-1" to 2^64-1; a negative seed is always a typo.
  SHIRAZ_REQUIRE(it->second.find('-') == std::string::npos,
                 "flag --" + name + " must be non-negative, got: " + it->second);
  errno = 0;
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(it->second.c_str(), &end, 10);
  require_consumed(name, it->second, end);
  return value;
}

bool Flags::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw InvalidArgument("flag --" + name + " expects a boolean, got: '" + v + "'");
}

}  // namespace shiraz
