#include "common/cli.h"

#include <cstdlib>
#include <string>

#include "common/error.h"

namespace shiraz {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    SHIRAZ_REQUIRE(arg.rfind("--", 0) == 0, "expected --name=value, got: " + arg);
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::get(const std::string& name, const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

double Flags::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

std::uint64_t Flags::get_seed(const std::string& name, std::uint64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

bool Flags::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace shiraz
