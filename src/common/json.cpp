#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace shiraz {

JsonWriter::JsonWriter(int indent) : indent_(indent) {
  SHIRAZ_REQUIRE(indent >= 0, "indent must be non-negative");
}

void JsonWriter::newline_indent() {
  if (indent_ == 0) return;
  out_.push_back('\n');
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::begin_value() {
  SHIRAZ_REQUIRE(!done_, "document already complete");
  if (stack_.empty()) {
    // Top level: exactly one value, no key.
    SHIRAZ_REQUIRE(!have_key_, "dangling key at top level");
    return;
  }
  Level& top = stack_.back();
  if (top.ctx == Ctx::kObject) {
    SHIRAZ_REQUIRE(have_key_, "object member needs a key before its value");
    have_key_ = false;
    return;  // key() already handled comma/indent
  }
  if (!top.first) out_.push_back(',');
  top.first = false;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view k) {
  SHIRAZ_REQUIRE(!done_, "document already complete");
  SHIRAZ_REQUIRE(!stack_.empty() && stack_.back().ctx == Ctx::kObject,
                 "key() outside an object");
  SHIRAZ_REQUIRE(!have_key_, "two keys in a row");
  Level& top = stack_.back();
  if (!top.first) out_.push_back(',');
  top.first = false;
  newline_indent();
  out_.push_back('"');
  out_.append(escape(k));
  out_.append(indent_ > 0 ? "\": " : "\":");
  have_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  begin_value();
  out_.push_back('{');
  stack_.push_back({Ctx::kObject});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  SHIRAZ_REQUIRE(!stack_.empty() && stack_.back().ctx == Ctx::kObject,
                 "end_object() without matching begin_object()");
  SHIRAZ_REQUIRE(!have_key_, "object ends with a dangling key");
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_.push_back('}');
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value();
  out_.push_back('[');
  stack_.push_back({Ctx::kArray});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  SHIRAZ_REQUIRE(!stack_.empty() && stack_.back().ctx == Ctx::kArray,
                 "end_array() without matching begin_array()");
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_.push_back(']');
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  begin_value();
  out_.push_back('"');
  out_.append(escape(v));
  out_.push_back('"');
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return value_null();  // JSON has no NaN/inf
  begin_value();
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  SHIRAZ_REQUIRE(ec == std::errc(), "double does not fit the buffer");
  out_.append(buf, ptr);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  begin_value();
  out_.append(std::to_string(v));
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  begin_value();
  out_.append(std::to_string(v));
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  begin_value();
  out_.append(v ? "true" : "false");
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  begin_value();
  out_.append("null");
  if (stack_.empty()) done_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  SHIRAZ_REQUIRE(done_ && stack_.empty(), "document is incomplete");
  return out_;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\b': out.append("\\b"); break;
      case '\f': out.append("\\f"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);  // UTF-8 passes through untouched
        }
    }
  }
  return out;
}

}  // namespace shiraz
