// Error handling: a library-wide exception type and precondition macros.
//
// Following the C++ Core Guidelines (E.2, I.6), programming errors and violated
// preconditions throw rather than abort, so tests can assert on them and
// callers embedding the library can recover.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace shiraz {

/// Base class for all exceptions raised by the shiraz library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad argument, bad state).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An I/O operation (trace file, checkpoint file) failed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid_argument(const char* expr, const char* file, int line,
                                                const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": requirement `" << expr << "` failed";
  if (!msg.empty()) os << ": " << msg;
  throw InvalidArgument(os.str());
}
}  // namespace detail

}  // namespace shiraz

/// Validates a precondition; throws shiraz::InvalidArgument when violated.
#define SHIRAZ_REQUIRE(expr, msg)                                                \
  do {                                                                           \
    if (!(expr)) {                                                               \
      ::shiraz::detail::throw_invalid_argument(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                            \
  } while (false)
