// Minimal ASCII line plots for the bench harnesses.
//
// The paper's figures are curves (Delta-useful vs k, CDFs, hazard decay);
// the benches print the underlying tables, and this helper renders a quick
// visual of up to three series so the *shape* of each figure is visible
// directly in the terminal output.
#pragma once

#include <string>
#include <vector>

namespace shiraz {

struct Series {
  std::string label;
  std::vector<double> ys;
  char glyph = '*';
};

struct PlotOptions {
  std::size_t width = 72;
  std::size_t height = 16;
  /// Label for the x axis (indices of the series are mapped onto it).
  std::string x_label;
  std::string y_label;
  /// Draw a horizontal rule at y = 0 when the range spans it.
  bool zero_line = true;
};

/// Renders the series onto a character canvas. All series share the y scale;
/// x is the sample index (series may have different lengths). Returns a
/// multi-line string ending in a legend.
std::string render_plot(const std::vector<Series>& series,
                        const PlotOptions& options = {});

}  // namespace shiraz
