#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace shiraz {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SHIRAZ_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  SHIRAZ_REQUIRE(cells.size() == headers_.size(), "row arity must match header");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << row[c]
         << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

namespace {
std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::render_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_quote(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_percent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", digits, fraction * 100.0);
  return buf;
}

}  // namespace shiraz
