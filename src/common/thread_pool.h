// Fixed-size worker pool for embarrassingly parallel campaign work.
//
// The simulator's Monte-Carlo loops fork one independent RNG stream per
// repetition, so repetitions can run on any worker in any order and still
// produce bit-identical output as long as results are merged in repetition
// order — parallel_for_indexed writes fn(i) results into caller-owned slots,
// which keeps that property trivial.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/error.h"

namespace shiraz::common {

/// Fixed set of worker threads draining one task queue. submit() returns a
/// std::future carrying the task's result or exception; the destructor drains
/// the queue and joins every worker (RAII — no detached threads). Tasks may
/// submit further tasks, but must not block on a future of a task queued
/// behind them (the classic pool self-deadlock).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Enqueues `fn` and returns its future. An exception thrown by `fn` is
  /// captured and rethrown from future::get() in the caller.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    // shared_ptr keeps the queue entry copyable, as std::function requires.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      SHIRAZ_REQUIRE(!stopping_, "submit on a stopping ThreadPool");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Borrows `external` when non-null, otherwise owns a freshly spawned pool of
/// `workers` threads. Lets sweep hot paths hoist thread construction out of
/// per-candidate loops: the caller spawns one pool and every campaign in the
/// sweep borrows it, instead of each campaign spawning (and joining) its own.
class PoolHandle {
 public:
  PoolHandle(ThreadPool* external, std::size_t workers) : external_(external) {
    if (external_ == nullptr) owned_.emplace(workers);
  }

  ThreadPool& get() { return external_ != nullptr ? *external_ : *owned_; }

 private:
  ThreadPool* external_;
  std::optional<ThreadPool> owned_;
};

/// Runs fn(0) .. fn(n-1) on the pool and blocks until all have finished.
/// Rethrows the lowest-index task exception after every task completed (so
/// captured references stay valid for still-running tasks). n == 0 is a no-op.
template <typename Fn>
void parallel_for_indexed(ThreadPool& pool, std::size_t n, Fn&& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace shiraz::common
