#include "common/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace shiraz {

std::string render_plot(const std::vector<Series>& series, const PlotOptions& options) {
  SHIRAZ_REQUIRE(!series.empty(), "nothing to plot");
  SHIRAZ_REQUIRE(options.width >= 8 && options.height >= 4, "canvas too small");
  std::size_t max_len = 0;
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  for (const Series& s : series) {
    SHIRAZ_REQUIRE(!s.ys.empty(), "empty series: " + s.label);
    max_len = std::max(max_len, s.ys.size());
    for (const double y : s.ys) {
      SHIRAZ_REQUIRE(std::isfinite(y), "non-finite sample in series " + s.label);
      lo = first ? y : std::min(lo, y);
      hi = first ? y : std::max(hi, y);
      first = false;
    }
  }
  if (hi == lo) {
    hi += 1.0;
    lo -= 1.0;
  }

  std::vector<std::string> canvas(options.height, std::string(options.width, ' '));
  auto to_row = [&](double y) {
    const double frac = (y - lo) / (hi - lo);
    const auto row = static_cast<std::size_t>(
        std::lround((1.0 - frac) * static_cast<double>(options.height - 1)));
    return std::min(row, options.height - 1);
  };
  if (options.zero_line && lo < 0.0 && hi > 0.0) {
    const std::size_t zero_row = to_row(0.0);
    canvas[zero_row].assign(options.width, '-');
  }
  for (const Series& s : series) {
    for (std::size_t i = 0; i < s.ys.size(); ++i) {
      const std::size_t col =
          s.ys.size() == 1
              ? 0
              : i * (options.width - 1) / (s.ys.size() - 1);
      canvas[to_row(s.ys[i])][col] = s.glyph;
    }
  }

  std::ostringstream os;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%11.2f |", hi);
  os << buf << canvas.front() << '\n';
  for (std::size_t r = 1; r + 1 < options.height; ++r) {
    os << "            |" << canvas[r] << '\n';
  }
  std::snprintf(buf, sizeof(buf), "%11.2f |", lo);
  os << buf << canvas.back() << '\n';
  os << "            +" << std::string(options.width, '-') << '\n';
  if (!options.x_label.empty() || !options.y_label.empty()) {
    os << "             x: " << options.x_label;
    if (!options.y_label.empty()) os << "   y: " << options.y_label;
    os << '\n';
  }
  os << "             ";
  for (std::size_t i = 0; i < series.size(); ++i) {
    os << (i ? "   " : "") << series[i].glyph << " = " << series[i].label;
  }
  os << '\n';
  return os.str();
}

}  // namespace shiraz
