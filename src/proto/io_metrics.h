// Byte-accurate I/O accounting for the prototype runtime.
//
// The paper's Fig. 3 and Section 5 prototype claims (the 30x miniFE:CoMD
// checkpoint-cost ratio, the 4x Shiraz+ data-movement reduction) are
// fundamentally bytes-moved claims; related checkpoint-interval work models
// cost as volume/bandwidth rather than raw latency. Every backend I/O
// operation therefore returns an IoResult carrying both the wall-clock (or
// modeled) duration and the exact byte count, and IoCounters aggregates them
// per job and campaign-wide.
#pragma once

#include <cstddef>

#include "common/json.h"
#include "common/units.h"

namespace shiraz::proto {

/// The outcome of one checkpoint write or restore.
struct IoResult {
  Seconds duration = 0.0;
  Bytes bytes = 0;

  /// Effective bandwidth of this operation; 0 when the duration is 0 (e.g.
  /// a restart-from-scratch that touched no file).
  double bandwidth_bps() const {
    return duration > 0.0 ? static_cast<double>(bytes) / duration : 0.0;
  }
};

/// Aggregated I/O accounting over many operations.
struct IoCounters {
  std::size_t writes = 0;
  std::size_t restores = 0;
  Bytes bytes_written = 0;
  Bytes bytes_read = 0;
  Seconds write_seconds = 0.0;
  Seconds read_seconds = 0.0;

  void record_write(const IoResult& io) {
    ++writes;
    bytes_written += io.bytes;
    write_seconds += io.duration;
  }

  void record_restore(const IoResult& io) {
    ++restores;
    bytes_read += io.bytes;
    read_seconds += io.duration;
  }

  /// Effective write bandwidth over every recorded write; 0 when nothing
  /// was written.
  double effective_write_bandwidth_bps() const {
    return write_seconds > 0.0 ? static_cast<double>(bytes_written) / write_seconds : 0.0;
  }

  /// Effective read bandwidth over every recorded restore; 0 when nothing
  /// was read.
  double effective_read_bandwidth_bps() const {
    return read_seconds > 0.0 ? static_cast<double>(bytes_read) / read_seconds : 0.0;
  }

  IoCounters& operator+=(const IoCounters& other) {
    writes += other.writes;
    restores += other.restores;
    bytes_written += other.bytes_written;
    bytes_read += other.bytes_read;
    write_seconds += other.write_seconds;
    read_seconds += other.read_seconds;
    return *this;
  }

  /// Emits the counters as one JSON object (an in-progress `w` positioned
  /// where a value is expected — e.g. after key()). Byte counts are exact
  /// integers, never floats, so trend diffs are bit-stable; used by the
  /// prototype benches' --json telemetry.
  void write_json(JsonWriter& w) const {
    w.begin_object();
    w.kv("writes", static_cast<std::uint64_t>(writes));
    w.kv("restores", static_cast<std::uint64_t>(restores));
    w.kv("bytes_written", static_cast<std::uint64_t>(bytes_written));
    w.kv("bytes_read", static_cast<std::uint64_t>(bytes_read));
    w.kv("write_seconds", write_seconds);
    w.kv("read_seconds", read_seconds);
    w.kv("effective_write_bandwidth_bps", effective_write_bandwidth_bps());
    w.kv("effective_read_bandwidth_bps", effective_read_bandwidth_bps());
    w.end_object();
  }

  /// Counter delta since an earlier snapshot of the same counters (used by
  /// benches to attribute a shared store's traffic to one campaign).
  IoCounters since(const IoCounters& snapshot) const {
    IoCounters d;
    d.writes = writes - snapshot.writes;
    d.restores = restores - snapshot.restores;
    d.bytes_written = bytes_written - snapshot.bytes_written;
    d.bytes_read = bytes_read - snapshot.bytes_read;
    d.write_seconds = write_seconds - snapshot.write_seconds;
    d.read_seconds = read_seconds - snapshot.read_seconds;
    return d;
  }
};

}  // namespace shiraz::proto
