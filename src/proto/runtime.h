// The prototype workload-manager runtime (paper Fig. 15).
//
// Executes proxy applications through an ExecutionBackend, checkpoints them
// into a CheckpointStore, injects failures from a pre-generated trace, and
// consults a sim::Scheduler policy at gap starts and checkpoint completions —
// the *same* policy objects the discrete-event simulator uses, so the
// scheduling logic evaluated on "real" execution is identical to the modeled
// one. Time is virtual and accumulates from the durations the backend
// reports (real wall-clock under RealBackend, modeled under SyntheticBackend).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/proxy_app.h"
#include "common/units.h"
#include "proto/backend.h"
#include "proto/checkpoint_store.h"
#include "sim/scheduler.h"

namespace shiraz::proto {

/// One job under the workload manager.
struct ProtoJob {
  std::string name;
  apps::ProxyApp app;
  /// Compute interval between checkpoints (already stretched for Shiraz+).
  Seconds interval = 0.0;

  ProtoJob(std::string job_name, apps::ProxyApp job_app, Seconds ckpt_interval)
      : name(std::move(job_name)), app(std::move(job_app)), interval(ckpt_interval) {}
};

struct ProtoJobStats {
  std::string name;
  Seconds useful = 0.0;
  Seconds io = 0.0;
  Seconds lost = 0.0;
  Seconds restart = 0.0;
  std::size_t checkpoints = 0;
  std::size_t failures_hit = 0;
  std::size_t restores = 0;
  std::uint64_t steps = 0;
  /// Byte-accurate I/O accounting: every write the backend performed for
  /// this job (committed *and* torn) and every restore, with exact byte
  /// counts from the counting stream. `io_counters.writes` can exceed
  /// `checkpoints` when failures tear in-flight writes.
  IoCounters io_counters;

  Bytes bytes_written() const { return io_counters.bytes_written; }
  Bytes bytes_read() const { return io_counters.bytes_read; }
};

struct ProtoResult {
  std::vector<ProtoJobStats> jobs;
  Seconds wall = 0.0;
  Seconds idle = 0.0;
  Seconds truncated = 0.0;
  std::size_t failures = 0;

  Seconds total_useful() const;
  Seconds total_io() const;
  /// Campaign-wide I/O counters: the sum of every job's per-write and
  /// per-restore IoResult, so totals reconcile exactly with backend traffic.
  IoCounters total_io_counters() const;
  Bytes total_bytes_written() const;
  Bytes total_bytes_read() const;
  const ProtoJobStats& job(const std::string& name) const;
};

class Runtime {
 public:
  Runtime(ExecutionBackend& backend, CheckpointStore& store);

  /// Runs the campaign until `horizon` (virtual seconds), injecting failures
  /// at the absolute times in `failure_times` (sorted). Jobs are mutated
  /// (their apps advance / roll back); pass copies to reuse a job set.
  ProtoResult run(std::vector<ProtoJob> jobs, const sim::Scheduler& policy,
                  const std::vector<Seconds>& failure_times, Seconds horizon);

 private:
  ExecutionBackend& backend_;
  CheckpointStore& store_;
};

/// Measures the checkpoint cost of `app` through `backend` by writing
/// `samples` real checkpoints and taking the median duration — the
/// calibration step the paper's scheduler plug-in performs ("maintains
/// records of the checkpointing overhead for different applications").
/// Returns the median duration together with the exact bytes one checkpoint
/// moves (identical across samples: byte counts are load-independent).
/// Every probe write is recorded against `store`'s counters.
IoResult measure_checkpoint_cost(ExecutionBackend& backend, const apps::ProxyApp& app,
                                 CheckpointStore& store, std::size_t samples = 3);

}  // namespace shiraz::proto
