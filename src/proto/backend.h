// Execution backends for the prototype runtime.
//
// The paper's prototype (Fig. 15) runs real applications under DMTCP and
// kills them with injected errors. Our in-process equivalent executes proxy
// applications (src/apps) and checkpoints them by serializing their state:
//
//  * RealBackend — actually runs the compute kernel and writes checkpoint
//    files to disk, measuring wall-clock durations and counting the bytes
//    that actually moved. This is what the Fig. 3 and Fig. 16 benches use:
//    the measured checkpoint-cost ratios emerge from real I/O, not from
//    assumed constants.
//  * SyntheticBackend — returns modeled durations without touching the disk
//    or the CPU-heavy kernel; used by tests that need deterministic timing.
//
// Both return an IoResult per operation: durations are load-sensitive (page
// cache, scheduler), byte counts are exact every run — the stable metric.
#pragma once

#include <filesystem>
#include <string>

#include "apps/proxy_app.h"
#include "common/units.h"
#include "proto/io_metrics.h"

namespace shiraz::proto {

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Runs one compute step; returns its (virtual) duration in seconds.
  virtual Seconds run_step(apps::ProxyApp& app) = 0;

  /// Writes a full application checkpoint to `path`; returns its duration
  /// and the exact number of bytes written.
  virtual IoResult write_checkpoint(const apps::ProxyApp& app,
                                    const std::filesystem::path& path) = 0;

  /// Restores the application from `path`; returns the restore duration and
  /// the exact number of bytes read.
  virtual IoResult restore_checkpoint(apps::ProxyApp& app,
                                      const std::filesystem::path& path) = 0;

  virtual std::string name() const = 0;
};

/// Real execution: wall-clock timed kernel steps and real file I/O, with
/// bytes counted through a CountingStreambuf wrapped around the file stream.
class RealBackend final : public ExecutionBackend {
 public:
  enum class Durability {
    /// Writes land in the OS page cache (the default). Fast, but durations
    /// are dominated by open/flush overhead rather than device I/O.
    kPageCache,
    /// fsync(2) each checkpoint before the write is considered complete, so
    /// durations reflect real device I/O at the price of much slower writes.
    kFsync,
  };

  explicit RealBackend(Durability durability = Durability::kPageCache)
      : durability_(durability) {}

  Durability durability() const { return durability_; }

  Seconds run_step(apps::ProxyApp& app) override;
  IoResult write_checkpoint(const apps::ProxyApp& app,
                            const std::filesystem::path& path) override;
  IoResult restore_checkpoint(apps::ProxyApp& app,
                              const std::filesystem::path& path) override;
  std::string name() const override { return "RealBackend"; }

 private:
  Durability durability_;
};

/// Deterministic modeled execution for tests: durations derive from state
/// size and configured rates; the kernel and the filesystem are not touched.
/// Byte counts report the state size that a real write would serialize.
class SyntheticBackend final : public ExecutionBackend {
 public:
  struct Rates {
    /// Virtual duration of one compute step.
    Seconds step_duration = 0.01;
    /// Modeled checkpoint write bandwidth, bytes/second.
    double write_bandwidth_bps = 1.0e9;
    /// Fixed per-checkpoint latency, seconds.
    Seconds fixed_latency = 0.001;
    /// Modeled restore bandwidth, bytes/second.
    double read_bandwidth_bps = 2.0e9;
  };

  explicit SyntheticBackend(const Rates& rates);

  Seconds run_step(apps::ProxyApp& app) override;
  IoResult write_checkpoint(const apps::ProxyApp& app,
                            const std::filesystem::path& path) override;
  IoResult restore_checkpoint(apps::ProxyApp& app,
                              const std::filesystem::path& path) override;
  std::string name() const override { return "SyntheticBackend"; }

 private:
  Rates rates_;
};

}  // namespace shiraz::proto
