// Execution backends for the prototype runtime.
//
// The paper's prototype (Fig. 15) runs real applications under DMTCP and
// kills them with injected errors. Our in-process equivalent executes proxy
// applications (src/apps) and checkpoints them by serializing their state:
//
//  * RealBackend — actually runs the compute kernel and writes checkpoint
//    files to disk, measuring wall-clock durations. This is what the Fig. 3
//    and Fig. 16 benches use: the measured checkpoint-cost ratios emerge from
//    real I/O, not from assumed constants.
//  * SyntheticBackend — returns modeled durations without touching the disk
//    or the CPU-heavy kernel; used by tests that need deterministic timing.
#pragma once

#include <filesystem>
#include <string>

#include "apps/proxy_app.h"
#include "common/units.h"

namespace shiraz::proto {

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Runs one compute step; returns its (virtual) duration in seconds.
  virtual Seconds run_step(apps::ProxyApp& app) = 0;

  /// Writes a full application checkpoint to `path`; returns its duration.
  virtual Seconds write_checkpoint(const apps::ProxyApp& app,
                                   const std::filesystem::path& path) = 0;

  /// Restores the application from `path`; returns the restore duration.
  virtual Seconds restore_checkpoint(apps::ProxyApp& app,
                                     const std::filesystem::path& path) = 0;

  virtual std::string name() const = 0;
};

/// Real execution: wall-clock timed kernel steps and real file I/O.
class RealBackend final : public ExecutionBackend {
 public:
  Seconds run_step(apps::ProxyApp& app) override;
  Seconds write_checkpoint(const apps::ProxyApp& app,
                           const std::filesystem::path& path) override;
  Seconds restore_checkpoint(apps::ProxyApp& app,
                             const std::filesystem::path& path) override;
  std::string name() const override { return "RealBackend"; }
};

/// Deterministic modeled execution for tests: durations derive from state
/// size and configured rates; the kernel and the filesystem are not touched.
class SyntheticBackend final : public ExecutionBackend {
 public:
  struct Rates {
    /// Virtual duration of one compute step.
    Seconds step_duration = 0.01;
    /// Modeled checkpoint write bandwidth, bytes/second.
    double write_bandwidth_bps = 1.0e9;
    /// Fixed per-checkpoint latency, seconds.
    Seconds fixed_latency = 0.001;
    /// Modeled restore bandwidth, bytes/second.
    double read_bandwidth_bps = 2.0e9;
  };

  explicit SyntheticBackend(const Rates& rates);

  Seconds run_step(apps::ProxyApp& app) override;
  Seconds write_checkpoint(const apps::ProxyApp& app,
                           const std::filesystem::path& path) override;
  Seconds restore_checkpoint(apps::ProxyApp& app,
                             const std::filesystem::path& path) override;
  std::string name() const override { return "SyntheticBackend"; }

 private:
  Rates rates_;
};

}  // namespace shiraz::proto
