// Checkpoint file management for the prototype runtime.
//
// Owns a directory of checkpoint files, names them per job, and cleans up on
// destruction (RAII), so benches and tests never leak files into the
// workspace.
#pragma once

#include <filesystem>
#include <string>

namespace shiraz::proto {

class CheckpointStore {
 public:
  /// Creates (or reuses) `dir`. When `owned` is true the whole directory is
  /// removed on destruction.
  explicit CheckpointStore(std::filesystem::path dir, bool owned = true);

  /// Creates a store under the system temp directory with a unique suffix.
  static CheckpointStore make_temporary(const std::string& tag);

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;
  CheckpointStore(CheckpointStore&& other) noexcept;
  CheckpointStore& operator=(CheckpointStore&&) = delete;
  ~CheckpointStore();

  const std::filesystem::path& dir() const { return dir_; }

  /// Canonical (committed) checkpoint path for a job.
  std::filesystem::path path_for(const std::string& job_name) const;

  /// Staging path for an in-flight checkpoint write. A checkpoint only
  /// becomes visible to restores after commit_pending(); a failure during the
  /// write discards the staging file and the previous committed checkpoint
  /// survives — the two-phase commit real checkpoint libraries implement.
  std::filesystem::path pending_path_for(const std::string& job_name) const;

  /// Atomically promotes the staged checkpoint to the committed one.
  /// No-op when no staged file exists (synthetic backends write no files).
  void commit_pending(const std::string& job_name) const;

  /// Drops the staged checkpoint if present.
  void discard_pending(const std::string& job_name) const;

  /// Whether a committed checkpoint exists for the job.
  bool has_checkpoint(const std::string& job_name) const;

  /// Removes the job's committed checkpoint if present.
  void remove(const std::string& job_name) const;

  /// Total bytes currently stored.
  std::uintmax_t bytes_stored() const;

 private:
  std::filesystem::path dir_;
  bool owned_;
};

}  // namespace shiraz::proto
