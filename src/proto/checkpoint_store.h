// Checkpoint file management for the prototype runtime.
//
// Owns a directory of checkpoint files, names them per job, and cleans up on
// destruction (RAII), so benches and tests never leak files into the
// workspace.
#pragma once

#include <filesystem>
#include <string>

#include "proto/io_metrics.h"

namespace shiraz::proto {

class CheckpointStore {
 public:
  /// Creates (or reuses) `dir`. When `owned` is true the whole directory is
  /// removed on destruction.
  explicit CheckpointStore(std::filesystem::path dir, bool owned = true);

  /// Creates a store under the system temp directory with a unique suffix.
  static CheckpointStore make_temporary(const std::string& tag);

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;
  CheckpointStore(CheckpointStore&& other) noexcept;
  CheckpointStore& operator=(CheckpointStore&&) = delete;
  ~CheckpointStore();

  const std::filesystem::path& dir() const { return dir_; }

  /// Canonical (committed) checkpoint path for a job.
  std::filesystem::path path_for(const std::string& job_name) const;

  /// Staging path for an in-flight checkpoint write. A checkpoint only
  /// becomes visible to restores after commit_pending(); a failure during the
  /// write discards the staging file and the previous committed checkpoint
  /// survives — the two-phase commit real checkpoint libraries implement.
  std::filesystem::path pending_path_for(const std::string& job_name) const;

  /// Atomically promotes the staged checkpoint to the committed one.
  /// No-op when no staged file exists (synthetic backends write no files).
  void commit_pending(const std::string& job_name) const;

  /// Drops the staged checkpoint if present.
  void discard_pending(const std::string& job_name) const;

  /// Whether a committed checkpoint exists for the job.
  bool has_checkpoint(const std::string& job_name) const;

  /// Removes the job's committed checkpoint if present.
  void remove(const std::string& job_name) const;

  /// Total bytes currently stored.
  std::uintmax_t bytes_stored() const;

  /// Records one checkpoint write against this store's lifetime counters.
  /// Callers (Runtime, measure_checkpoint_cost) report every backend
  /// operation here so benches can reconcile campaign-wide traffic.
  void record_write(const IoResult& io) { counters_.record_write(io); }

  /// Records one restore against this store's lifetime counters.
  void record_restore(const IoResult& io) { counters_.record_restore(io); }

  /// Cumulative I/O recorded against this store since construction (or the
  /// last reset). Unlike bytes_stored(), this counts traffic, not residency:
  /// overwritten and discarded checkpoints still appear here.
  const IoCounters& counters() const { return counters_; }

  void reset_counters() { counters_ = IoCounters{}; }

 private:
  std::filesystem::path dir_;
  bool owned_;
  IoCounters counters_;
};

}  // namespace shiraz::proto
