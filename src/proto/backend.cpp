#include "proto/backend.h"

#include <chrono>
#include <fstream>

#include "common/counting_stream.h"
#include "common/error.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define SHIRAZ_HAVE_FSYNC 1
#endif

namespace shiraz::proto {

namespace {

using SteadyClock = std::chrono::steady_clock;

double elapsed_seconds(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

// Forces the file's data to the device so the surrounding timing covers real
// device I/O, not just a page-cache copy.
void fsync_path(const std::filesystem::path& path) {
#ifdef SHIRAZ_HAVE_FSYNC
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) throw IoError("cannot reopen checkpoint for fsync: " + path.string());
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw IoError("fsync failed for checkpoint: " + path.string());
#else
  (void)path;  // no portable durability primitive; page-cache semantics apply
#endif
}

}  // namespace

Seconds RealBackend::run_step(apps::ProxyApp& app) {
  const auto start = SteadyClock::now();
  app.step();
  return elapsed_seconds(start);
}

IoResult RealBackend::write_checkpoint(const apps::ProxyApp& app,
                                       const std::filesystem::path& path) {
  // Writes to exactly the path it is given; the caller (CheckpointStore's
  // pending/commit protocol) decides when the checkpoint becomes visible.
  const auto start = SteadyClock::now();
  Bytes bytes = 0;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("cannot open checkpoint file: " + path.string());
    CountingStreambuf counter(*out.rdbuf());
    std::ostream counted(&counter);
    app.serialize(counted);
    counted.flush();
    if (!counted || !out) throw IoError("failed writing checkpoint: " + path.string());
    bytes = counter.bytes_written();
  }
  if (durability_ == Durability::kFsync) fsync_path(path);
  return {elapsed_seconds(start), bytes};
}

IoResult RealBackend::restore_checkpoint(apps::ProxyApp& app,
                                         const std::filesystem::path& path) {
  const auto start = SteadyClock::now();
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open checkpoint file: " + path.string());
  CountingStreambuf counter(*in.rdbuf());
  std::istream counted(&counter);
  app.deserialize(counted);
  return {elapsed_seconds(start), counter.bytes_read()};
}

SyntheticBackend::SyntheticBackend(const Rates& rates) : rates_(rates) {
  SHIRAZ_REQUIRE(rates.step_duration > 0.0, "step duration must be positive");
  SHIRAZ_REQUIRE(rates.write_bandwidth_bps > 0.0, "write bandwidth must be positive");
  SHIRAZ_REQUIRE(rates.read_bandwidth_bps > 0.0, "read bandwidth must be positive");
  SHIRAZ_REQUIRE(rates.fixed_latency >= 0.0, "latency must be non-negative");
}

Seconds SyntheticBackend::run_step(apps::ProxyApp&) {
  // Deliberately does not run the kernel: tests that use this backend verify
  // scheduling/accounting logic, and modeled time keeps them deterministic.
  return rates_.step_duration;
}

IoResult SyntheticBackend::write_checkpoint(const apps::ProxyApp& app,
                                            const std::filesystem::path&) {
  const Bytes bytes = app.state_bytes();
  return {rates_.fixed_latency + static_cast<double>(bytes) / rates_.write_bandwidth_bps,
          bytes};
}

IoResult SyntheticBackend::restore_checkpoint(apps::ProxyApp& app,
                                              const std::filesystem::path&) {
  const Bytes bytes = app.state_bytes();
  return {static_cast<double>(bytes) / rates_.read_bandwidth_bps, bytes};
}

}  // namespace shiraz::proto
