#include "proto/backend.h"

#include <chrono>
#include <fstream>

#include "common/error.h"

namespace shiraz::proto {

namespace {

using SteadyClock = std::chrono::steady_clock;

double elapsed_seconds(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

}  // namespace

Seconds RealBackend::run_step(apps::ProxyApp& app) {
  const auto start = SteadyClock::now();
  app.step();
  return elapsed_seconds(start);
}

Seconds RealBackend::write_checkpoint(const apps::ProxyApp& app,
                                      const std::filesystem::path& path) {
  // Writes to exactly the path it is given; the caller (CheckpointStore's
  // pending/commit protocol) decides when the checkpoint becomes visible.
  const auto start = SteadyClock::now();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("cannot open checkpoint file: " + path.string());
    app.serialize(out);
    out.flush();
    if (!out) throw IoError("failed writing checkpoint: " + path.string());
  }
  return elapsed_seconds(start);
}

Seconds RealBackend::restore_checkpoint(apps::ProxyApp& app,
                                        const std::filesystem::path& path) {
  const auto start = SteadyClock::now();
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open checkpoint file: " + path.string());
  app.deserialize(in);
  return elapsed_seconds(start);
}

SyntheticBackend::SyntheticBackend(const Rates& rates) : rates_(rates) {
  SHIRAZ_REQUIRE(rates.step_duration > 0.0, "step duration must be positive");
  SHIRAZ_REQUIRE(rates.write_bandwidth_bps > 0.0, "write bandwidth must be positive");
  SHIRAZ_REQUIRE(rates.read_bandwidth_bps > 0.0, "read bandwidth must be positive");
  SHIRAZ_REQUIRE(rates.fixed_latency >= 0.0, "latency must be non-negative");
}

Seconds SyntheticBackend::run_step(apps::ProxyApp&) {
  // Deliberately does not run the kernel: tests that use this backend verify
  // scheduling/accounting logic, and modeled time keeps them deterministic.
  return rates_.step_duration;
}

Seconds SyntheticBackend::write_checkpoint(const apps::ProxyApp& app,
                                           const std::filesystem::path&) {
  return rates_.fixed_latency +
         static_cast<double>(app.state_bytes()) / rates_.write_bandwidth_bps;
}

Seconds SyntheticBackend::restore_checkpoint(apps::ProxyApp& app,
                                             const std::filesystem::path&) {
  return static_cast<double>(app.state_bytes()) / rates_.read_bandwidth_bps;
}

}  // namespace shiraz::proto
