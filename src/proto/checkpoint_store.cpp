#include "proto/checkpoint_store.h"

#include <chrono>
#include <system_error>

#include "common/error.h"

namespace shiraz::proto {

namespace fs = std::filesystem;

CheckpointStore::CheckpointStore(fs::path dir, bool owned)
    : dir_(std::move(dir)), owned_(owned) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw IoError("cannot create checkpoint dir " + dir_.string() + ": " + ec.message());
}

CheckpointStore CheckpointStore::make_temporary(const std::string& tag) {
  const auto stamp = std::chrono::steady_clock::now().time_since_epoch().count();
  const fs::path dir = fs::temp_directory_path() /
                       ("shiraz-ckpt-" + tag + "-" + std::to_string(stamp));
  return CheckpointStore(dir, /*owned=*/true);
}

CheckpointStore::CheckpointStore(CheckpointStore&& other) noexcept
    : dir_(std::move(other.dir_)), owned_(other.owned_), counters_(other.counters_) {
  other.owned_ = false;
  other.counters_ = IoCounters{};
}

CheckpointStore::~CheckpointStore() {
  if (!owned_) return;
  std::error_code ec;
  fs::remove_all(dir_, ec);  // best-effort cleanup; never throw from a dtor
}

fs::path CheckpointStore::path_for(const std::string& job_name) const {
  std::string sanitized;
  sanitized.reserve(job_name.size());
  for (const char c : job_name) {
    sanitized += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' || c == '_')
                     ? c
                     : '_';
  }
  return dir_ / (sanitized + ".ckpt");
}

fs::path CheckpointStore::pending_path_for(const std::string& job_name) const {
  return path_for(job_name).string() + ".pending";
}

void CheckpointStore::commit_pending(const std::string& job_name) const {
  std::error_code ec;
  const fs::path pending = pending_path_for(job_name);
  if (fs::exists(pending, ec)) {
    fs::rename(pending, path_for(job_name), ec);
    if (ec) throw IoError("cannot commit checkpoint for " + job_name + ": " + ec.message());
  }
}

void CheckpointStore::discard_pending(const std::string& job_name) const {
  std::error_code ec;
  fs::remove(pending_path_for(job_name), ec);
}

bool CheckpointStore::has_checkpoint(const std::string& job_name) const {
  std::error_code ec;
  return fs::exists(path_for(job_name), ec);
}

void CheckpointStore::remove(const std::string& job_name) const {
  std::error_code ec;
  fs::remove(path_for(job_name), ec);
}

std::uintmax_t CheckpointStore::bytes_stored() const {
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.is_regular_file(ec)) total += entry.file_size(ec);
  }
  return total;
}

}  // namespace shiraz::proto
