#include "proto/runtime.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace shiraz::proto {

namespace {
constexpr Seconds kInf = std::numeric_limits<double>::infinity();
}

Seconds ProtoResult::total_useful() const {
  Seconds t = 0.0;
  for (const auto& j : jobs) t += j.useful;
  return t;
}

Seconds ProtoResult::total_io() const {
  Seconds t = 0.0;
  for (const auto& j : jobs) t += j.io;
  return t;
}

IoCounters ProtoResult::total_io_counters() const {
  IoCounters total;
  for (const auto& j : jobs) total += j.io_counters;
  return total;
}

Bytes ProtoResult::total_bytes_written() const {
  return total_io_counters().bytes_written;
}

Bytes ProtoResult::total_bytes_read() const { return total_io_counters().bytes_read; }

const ProtoJobStats& ProtoResult::job(const std::string& name) const {
  for (const auto& j : jobs) {
    if (j.name == name) return j;
  }
  throw InvalidArgument("no job named " + name + " in result");
}

Runtime::Runtime(ExecutionBackend& backend, CheckpointStore& store)
    : backend_(backend), store_(store) {}

ProtoResult Runtime::run(std::vector<ProtoJob> jobs, const sim::Scheduler& policy,
                         const std::vector<Seconds>& failure_times, Seconds horizon) {
  SHIRAZ_REQUIRE(!jobs.empty(), "need at least one job");
  SHIRAZ_REQUIRE(horizon > 0.0, "horizon must be positive");
  SHIRAZ_REQUIRE(std::is_sorted(failure_times.begin(), failure_times.end()),
                 "failure times must be sorted");
  for (const ProtoJob& j : jobs) {
    SHIRAZ_REQUIRE(j.interval > 0.0, "job interval must be positive");
  }

  ProtoResult res;
  res.jobs.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) res.jobs[i].name = jobs[i].name;

  // Pristine copies for restart-from-scratch (no checkpoint yet).
  std::vector<apps::ProxyApp> pristine;
  pristine.reserve(jobs.size());
  for (const ProtoJob& j : jobs) pristine.push_back(j.app);

  std::vector<std::size_t> ckpts_gap(jobs.size(), 0);
  std::vector<bool> needs_restore(jobs.size(), false);
  // Tracked logically rather than via the filesystem so synthetic backends
  // (which write no files) see the same recovery semantics as real ones.
  std::vector<bool> has_committed_ckpt(jobs.size(), false);
  std::vector<Seconds> unsealed(jobs.size(), 0.0);  // compute since last ckpt

  Seconds now = 0.0;
  Seconds gap_start = 0.0;
  std::size_t fail_idx = 0;
  auto next_fail = [&]() {
    return fail_idx < failure_times.size() ? failure_times[fail_idx] : kInf;
  };

  Seconds last_gap_length = 0.0;
  auto make_ctx = [&](std::size_t current) {
    sim::SchedContext ctx;
    ctx.now = now;
    ctx.gap_start = gap_start;
    ctx.num_apps = jobs.size();
    ctx.current = current;
    ctx.checkpoints_this_gap = &ckpts_gap;
    ctx.failures_so_far = res.failures;
    ctx.last_gap_length = last_gap_length;
    return ctx;
  };

  policy.reset();
  sim::Decision decision = policy.on_gap_start(make_ctx(0));
  auto handle_failure = [&](std::optional<std::size_t> hit) {
    ++res.failures;
    ++fail_idx;
    if (hit) {
      ++res.jobs[*hit].failures_hit;
      res.jobs[*hit].lost += unsealed[*hit];
      unsealed[*hit] = 0.0;
      needs_restore[*hit] = true;
    }
    last_gap_length = now - gap_start;
    gap_start = now;
    std::fill(ckpts_gap.begin(), ckpts_gap.end(), 0);
    decision = policy.on_gap_start(make_ctx(0));
  };

  while (now < horizon) {
    if (!decision.app) {
      const Seconds until = std::min(next_fail(), horizon);
      res.idle += until - now;
      now = until;
      if (now >= horizon) break;
      handle_failure(std::nullopt);
      continue;
    }
    const std::size_t ai = *decision.app;
    SHIRAZ_REQUIRE(ai < jobs.size(), "policy chose an unknown job");
    const Seconds start_time = gap_start + decision.not_before_elapsed;
    if (start_time > now) {
      const Seconds until = std::min({start_time, next_fail(), horizon});
      res.idle += until - now;
      now = until;
      if (now >= horizon) break;
      if (next_fail() <= start_time && now >= next_fail()) {
        handle_failure(std::nullopt);
        continue;
      }
    }

    ProtoJob& job = jobs[ai];
    ProtoJobStats& stats = res.jobs[ai];

    // Roll the job back to its last checkpoint if a failure wiped its
    // in-memory state since it last ran.
    if (needs_restore[ai]) {
      Seconds dur;
      if (has_committed_ckpt[ai]) {
        const IoResult io = backend_.restore_checkpoint(job.app, store_.path_for(job.name));
        stats.io_counters.record_restore(io);
        store_.record_restore(io);
        dur = io.duration;
        ++stats.restores;
      } else {
        job.app = pristine[ai];  // restart from scratch
        dur = 0.0;
      }
      stats.restart += dur;
      now += dur;
      needs_restore[ai] = false;
      if (now >= next_fail()) {  // failure struck during the restore
        needs_restore[ai] = true;
        handle_failure(ai);
        continue;
      }
      if (now >= horizon) break;
    }

    // Compute phase: run kernel steps until the interval is filled.
    bool interrupted = false;
    Seconds accumulated = 0.0;
    while (accumulated < job.interval) {
      const Seconds dur = backend_.run_step(job.app);
      now += dur;
      accumulated += dur;
      unsealed[ai] += dur;
      ++stats.steps;
      if (now >= next_fail()) {
        handle_failure(ai);
        interrupted = true;
        break;
      }
      if (now >= horizon) {
        res.truncated += unsealed[ai];
        unsealed[ai] = 0.0;
        interrupted = true;
        break;
      }
    }
    if (interrupted) continue;

    // Checkpoint phase: write to the staging path, commit only if no failure
    // struck during the write (so a torn write rolls back to the previous
    // committed checkpoint).
    const IoResult write =
        backend_.write_checkpoint(job.app, store_.pending_path_for(job.name));
    // Counted whether or not the write commits: a torn write still moved
    // bytes, and the data-movement totals must reconcile with the sum of
    // per-write IoResults.
    stats.io_counters.record_write(write);
    store_.record_write(write);
    now += write.duration;
    if (now >= next_fail()) {
      store_.discard_pending(job.name);
      res.jobs[ai].lost += write.duration;  // unsealed compute is added by handle_failure
      handle_failure(ai);
      continue;
    }
    store_.commit_pending(job.name);
    has_committed_ckpt[ai] = true;
    stats.useful += unsealed[ai];
    unsealed[ai] = 0.0;
    stats.io += write.duration;
    ++stats.checkpoints;
    ++ckpts_gap[ai];
    if (now >= horizon) break;
    decision = policy.on_checkpoint(make_ctx(ai));
  }

  res.wall = std::max(now, horizon);
  return res;
}

IoResult measure_checkpoint_cost(ExecutionBackend& backend, const apps::ProxyApp& app,
                                 CheckpointStore& store, std::size_t samples) {
  SHIRAZ_REQUIRE(samples >= 1, "need at least one sample");
  std::vector<Seconds> durations;
  durations.reserve(samples);
  const std::string probe_name = "calib-" + app.name();
  Bytes bytes = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const IoResult io = backend.write_checkpoint(app, store.path_for(probe_name));
    store.record_write(io);
    durations.push_back(io.duration);
    bytes = io.bytes;  // identical across samples: the state does not change
  }
  store.remove(probe_name);
  std::sort(durations.begin(), durations.end());
  return {durations[durations.size() / 2], bytes};
}

}  // namespace shiraz::proto
