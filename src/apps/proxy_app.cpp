#include "apps/proxy_app.h"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/counting_stream.h"
#include "common/error.h"

namespace shiraz::apps {

namespace {

// Element counts per (kind, config). Sized so serialized state reproduces the
// cost ratios the paper reports: miniFE config-1 is 30x CoMD config-1
// (Section 5 prototype) and the full spread exceeds 40x (Fig. 3).
struct Sizing {
  std::size_t primary;
  std::size_t secondary;
  std::size_t indices;
};

Sizing sizing_for(ProxyKind kind, int config) {
  // Per-kind growth across configs 1..3. CoMD problem size scales linearly
  // with atom count; SNAP and miniFE inputs grow more gently so the overall
  // spread tops out just above the 40x the paper measures.
  auto scaled = [config](std::size_t base, double growth) {
    return static_cast<std::size_t>(
        static_cast<double>(base) * (1.0 + growth * static_cast<double>(config - 1)));
  };
  switch (kind) {
    case ProxyKind::kCoMD:
      // positions+velocities (primary), forces (secondary), cell lists.
      return {scaled(60'000, 1.0), scaled(30'000, 1.0), scaled(20'000, 1.0)};
    case ProxyKind::kSNAP:
      // angular flux moments grow with quadrature order.
      return {scaled(400'000, 0.5), scaled(150'000, 0.5), scaled(40'000, 0.5)};
    case ProxyKind::kMiniFE:
      // CSR matrix values + solver vectors dominate. Sized so the *measured*
      // checkpoint-time ratio to CoMD config-1 lands near the 30x the paper's
      // DMTCP experiment reports (fixed per-file I/O overhead compresses the
      // time ratio below the ~39x byte ratio).
      return {scaled(2'600'000, 0.25), scaled(1'100'000, 0.25), scaled(400'000, 0.25)};
  }
  throw InvalidArgument("unknown proxy kind");
}

// "SHIRAZP" in byte order P,Z,A,R,I,H,S (little-endian uint64). The seed
// shipped a 13-hex-digit constant (0x5348495241501) that encoded no such
// string; checkpoints written with it are rejected by the magic check below.
constexpr std::uint64_t kMagic = 0x53484952415A50ULL;

}  // namespace

std::string to_string(ProxyKind kind) {
  switch (kind) {
    case ProxyKind::kCoMD:
      return "CoMD";
    case ProxyKind::kSNAP:
      return "SNAP";
    case ProxyKind::kMiniFE:
      return "miniFE";
  }
  throw InvalidArgument("unknown proxy kind");
}

ProxyApp::ProxyApp(ProxyKind kind, int config) : kind_(kind), config_(config) {
  SHIRAZ_REQUIRE(config >= 1 && config <= 3, "proxy config must be 1..3");
  const Sizing s = sizing_for(kind, config);
  primary_.assign(s.primary, 0.0);
  secondary_.assign(s.secondary, 0.0);
  indices_.assign(s.indices, 0);
  // Deterministic non-trivial initial state.
  for (std::size_t i = 0; i < primary_.size(); ++i) {
    primary_[i] = std::sin(static_cast<double>(i) * 1e-3) + 1.5;
  }
  for (std::size_t i = 0; i < secondary_.size(); ++i) {
    secondary_[i] = std::cos(static_cast<double>(i) * 1e-3);
  }
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    indices_[i] = static_cast<std::uint32_t>((i * 2654435761ULL) % s.primary);
  }
}

std::string ProxyApp::name() const {
  return to_string(kind_) + "-config" + std::to_string(config_);
}

void ProxyApp::step() {
  // A gather + stencil update: touches all three buffers, keeps the state
  // evolving deterministically so checkpoint integrity is checkable.
  const std::size_t n = primary_.size();
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    const std::size_t j = indices_[i] % n;
    secondary_[i % secondary_.size()] += 1e-6 * primary_[j];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double left = primary_[(i + n - 1) % n];
    const double right = primary_[(i + 1) % n];
    primary_[i] = 0.5 * primary_[i] + 0.25 * (left + right) +
                  1e-9 * static_cast<double>(steps_ + 1);
  }
  ++steps_;
}

Bytes ProxyApp::state_bytes() const {
  return sizeof(std::uint64_t) * 4 +  // magic, kind, config, steps
         primary_.size() * sizeof(double) + secondary_.size() * sizeof(double) +
         indices_.size() * sizeof(std::uint32_t) +
         sizeof(std::uint64_t) * 3;  // buffer lengths
}

std::uint64_t ProxyApp::checksum() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix_bytes = [&h](const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;
    }
  };
  mix_bytes(&steps_, sizeof(steps_));
  mix_bytes(primary_.data(), primary_.size() * sizeof(double));
  mix_bytes(secondary_.data(), secondary_.size() * sizeof(double));
  mix_bytes(indices_.data(), indices_.size() * sizeof(std::uint32_t));
  return h;
}

namespace {

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  const std::uint64_t n = v.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
}

template <typename T>
void read_vec(std::istream& in, std::vector<T>& v) {
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) throw shiraz::IoError("truncated proxy checkpoint (length)");
  v.resize(n);
  in.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(T)));
  if (!in) throw shiraz::IoError("truncated proxy checkpoint (payload)");
}

}  // namespace

void ProxyApp::serialize(std::ostream& out) const {
  // Serialization runs through its own counting wrapper so the
  // state_bytes()-vs-serialized-bytes invariant is enforced on every write,
  // wherever the destination stream came from.
  CountingStreambuf counter(*out.rdbuf());
  std::ostream counted(&counter);
  const std::uint64_t kind = static_cast<std::uint64_t>(kind_);
  const std::uint64_t config = static_cast<std::uint64_t>(config_);
  counted.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  counted.write(reinterpret_cast<const char*>(&kind), sizeof(kind));
  counted.write(reinterpret_cast<const char*>(&config), sizeof(config));
  counted.write(reinterpret_cast<const char*>(&steps_), sizeof(steps_));
  write_vec(counted, primary_);
  write_vec(counted, secondary_);
  write_vec(counted, indices_);
  if (!counted) throw IoError("failed writing proxy checkpoint");
  SHIRAZ_REQUIRE(counter.bytes_written() == state_bytes(),
                 "serialized checkpoint size must equal state_bytes()");
}

void ProxyApp::deserialize(std::istream& in) {
  std::uint64_t magic = 0;
  std::uint64_t kind = 0;
  std::uint64_t config = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kMagic) throw IoError("bad proxy checkpoint magic");
  in.read(reinterpret_cast<char*>(&kind), sizeof(kind));
  in.read(reinterpret_cast<char*>(&config), sizeof(config));
  in.read(reinterpret_cast<char*>(&steps_), sizeof(steps_));
  if (!in) throw IoError("truncated proxy checkpoint (header)");
  if (kind != static_cast<std::uint64_t>(kind_) ||
      config != static_cast<std::uint64_t>(config_)) {
    throw IoError("proxy checkpoint belongs to a different application");
  }
  read_vec(in, primary_);
  read_vec(in, secondary_);
  read_vec(in, indices_);
}

std::vector<ProxyApp> fig3_proxy_suite() {
  std::vector<ProxyApp> suite;
  for (const ProxyKind kind : {ProxyKind::kCoMD, ProxyKind::kSNAP, ProxyKind::kMiniFE}) {
    for (int config = 1; config <= 3; ++config) suite.emplace_back(kind, config);
  }
  return suite;
}

}  // namespace shiraz::apps
