// The paper's Table 1: measured checkpoint costs of real HPC workloads.
#pragma once

#include <cstddef>
#include <vector>

#include "apps/profile.h"

namespace shiraz::apps {

/// Returns the nine Table 1 applications (checkpoint durations 1.5 s - 2700 s).
std::vector<AppProfile> table1_catalog();

/// The N applications with the smallest checkpoint cost (used by the paper's
/// 40-job "conservative" experiment, which draws its 35 light jobs from the
/// three least heavy Table 1 applications).
std::vector<AppProfile> lightest(const std::vector<AppProfile>& catalog, std::size_t n);

/// The N applications with the largest checkpoint cost.
std::vector<AppProfile> heaviest(const std::vector<AppProfile>& catalog, std::size_t n);

/// Ratio of heaviest to lightest checkpoint cost in `catalog`.
double delta_factor_span(const std::vector<AppProfile>& catalog);

}  // namespace shiraz::apps
