// Proxy applications for the prototype experiments.
//
// The paper's prototype checkpoints real proxy apps (CoMD, SNAP, miniFE) with
// DMTCP on a cluster. Offline substitute (see DESIGN.md): in-process models
// that hold realistically proportioned state and run a deterministic compute
// kernel over it. A "system-level checkpoint" serializes the full state —
// real bytes, real I/O — so measured checkpoint costs scale with state size
// exactly as the DMTCP measurements in the paper's Fig. 3 do (the 30x
// miniFE:CoMD cost ratio of Section 5 is reproduced by construction).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"

namespace shiraz::apps {

enum class ProxyKind {
  kCoMD,    ///< molecular-dynamics-like: particle positions/velocities/forces
  kSNAP,    ///< discrete-ordinates-transport-like: angular flux moments
  kMiniFE,  ///< implicit-finite-element-like: matrix + solver vectors
};

std::string to_string(ProxyKind kind);

/// A deterministic, serializable stand-in for one scientific application.
class ProxyApp {
 public:
  /// Creates a proxy of `kind` at configuration `config` (1..3; larger config
  /// = larger state, mirroring the paper's Fig. 3 input-dependent costs).
  ProxyApp(ProxyKind kind, int config);

  ProxyKind kind() const { return kind_; }
  int config() const { return config_; }
  std::string name() const;

  /// Advances the simulation by one timestep; deterministic given history.
  void step();

  /// Number of completed steps (the proxy's "useful work" metric).
  std::uint64_t steps_completed() const { return steps_; }

  /// Total size of the serialized state.
  Bytes state_bytes() const;

  /// FNV-1a digest of the state, for checkpoint-integrity assertions.
  std::uint64_t checksum() const;

  /// Writes the full application state (header + buffers).
  void serialize(std::ostream& out) const;

  /// Restores the full application state; throws IoError on malformed input.
  void deserialize(std::istream& in);

 private:
  ProxyKind kind_;
  int config_;
  std::uint64_t steps_ = 0;
  // State buffers; semantics depend on kind (positions/fluxes/matrix values),
  // but all kinds advance them with the same cache-touching kernel.
  std::vector<double> primary_;
  std::vector<double> secondary_;
  std::vector<std::uint32_t> indices_;
};

/// The nine (kind, config) combinations of the paper's Fig. 3, in the order
/// CoMD 1-3, SNAP 1-3, miniFE 1-3.
std::vector<ProxyApp> fig3_proxy_suite();

}  // namespace shiraz::apps
