#include "apps/catalog.h"

#include <algorithm>

#include "common/error.h"

namespace shiraz::apps {

std::vector<AppProfile> table1_catalog() {
  // Values transcribed from the paper's Table 1.
  return {
      {"CESM climate change simulation", seconds(1.5), "Climate", "Titan (OLCF)"},
      {"20th Century Reanalysis", seconds(2.0), "Climate", "Hopper/Franklin (NERSC)"},
      {"Molecular simulation in energy biosciences", seconds(6.0), "Chemistry",
       "Jaguar (ORNL), Hopper (NERSC)"},
      {"Predictions of transcription factor binding sites", seconds(50.0), "Biology",
       "Carver/Euclid (NERSC)"},
      {"Chombo-crunch", seconds(70.0), "Subsurface flow", "Cori (NERSC)"},
      {"Climate science for a sustainable energy future", seconds(150.0), "Climate",
       "Hopper (NERSC)"},
      {"Laser plasma interactions", seconds(1800.0), "Plasma physics", "Hopper (NERSC)"},
      {"Plasma based accelerators", seconds(2000.0), "Plasma physics", "Hopper (NERSC)"},
      {"Plasma science studies", seconds(2700.0), "Plasma physics", "Hopper (NERSC)"},
  };
}

namespace {
std::vector<AppProfile> sorted_by_cost(std::vector<AppProfile> catalog) {
  std::sort(catalog.begin(), catalog.end(),
            [](const AppProfile& a, const AppProfile& b) {
              return a.checkpoint_cost < b.checkpoint_cost;
            });
  return catalog;
}
}  // namespace

std::vector<AppProfile> lightest(const std::vector<AppProfile>& catalog, std::size_t n) {
  SHIRAZ_REQUIRE(n <= catalog.size(), "not enough applications in catalog");
  auto sorted = sorted_by_cost(catalog);
  sorted.resize(n);
  return sorted;
}

std::vector<AppProfile> heaviest(const std::vector<AppProfile>& catalog, std::size_t n) {
  SHIRAZ_REQUIRE(n <= catalog.size(), "not enough applications in catalog");
  auto sorted = sorted_by_cost(catalog);
  sorted.erase(sorted.begin(), sorted.end() - static_cast<long>(n));
  std::reverse(sorted.begin(), sorted.end());
  return sorted;
}

double delta_factor_span(const std::vector<AppProfile>& catalog) {
  SHIRAZ_REQUIRE(!catalog.empty(), "empty catalog");
  const auto [mn, mx] = std::minmax_element(
      catalog.begin(), catalog.end(), [](const AppProfile& a, const AppProfile& b) {
        return a.checkpoint_cost < b.checkpoint_cost;
      });
  SHIRAZ_REQUIRE(mn->checkpoint_cost > 0.0, "zero checkpoint cost in catalog");
  return mx->checkpoint_cost / mn->checkpoint_cost;
}

}  // namespace shiraz::apps
