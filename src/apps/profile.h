// Application profiles: the per-application facts Shiraz schedules on.
#pragma once

#include <string>

#include "common/units.h"

namespace shiraz::apps {

/// One schedulable application as Shiraz sees it: a name and a checkpoint
/// cost. The catalog additionally records provenance (machine/domain from the
/// paper's Table 1) for reporting.
struct AppProfile {
  std::string name;
  /// Wall-clock cost of writing one checkpoint (the paper's delta).
  Seconds checkpoint_cost = 0.0;
  std::string domain;
  std::string machine;
};

}  // namespace shiraz::apps
