#include "checkpoint/oci.h"

#include <cmath>

#include "common/error.h"

namespace shiraz::checkpoint {

Seconds optimal_interval(Seconds mtbf, Seconds delta, OciFormula formula) {
  SHIRAZ_REQUIRE(mtbf > 0.0, "MTBF must be positive");
  SHIRAZ_REQUIRE(delta > 0.0, "checkpoint cost must be positive");
  const double base = std::sqrt(2.0 * mtbf * delta);
  switch (formula) {
    case OciFormula::kYoung:
      return base;
    case OciFormula::kDalyFirstOrder:
      SHIRAZ_REQUIRE(base > delta, "delta too large for first-order Daly formula");
      return base - delta;
    case OciFormula::kDalyHigherOrder: {
      SHIRAZ_REQUIRE(delta < 2.0 * mtbf, "Daly higher-order requires delta < 2M");
      const double r = delta / (2.0 * mtbf);
      const double oci = base * (1.0 + std::sqrt(r) / 3.0 + r / 9.0) - delta;
      SHIRAZ_REQUIRE(oci > 0.0, "non-positive higher-order OCI");
      return oci;
    }
  }
  throw InvalidArgument("unknown OCI formula");
}

Seconds segment_length(Seconds mtbf, Seconds delta, OciFormula formula) {
  return optimal_interval(mtbf, delta, formula) + delta;
}

double expected_waste_fraction(Seconds mtbf, Seconds delta) {
  SHIRAZ_REQUIRE(mtbf > 0.0, "MTBF must be positive");
  SHIRAZ_REQUIRE(delta >= 0.0, "checkpoint cost must be non-negative");
  return std::sqrt(2.0 * delta / mtbf);
}

}  // namespace shiraz::checkpoint
