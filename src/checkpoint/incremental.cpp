#include "checkpoint/incremental.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "checkpoint/oci.h"

namespace shiraz::checkpoint {

namespace {
void validate(const IncrementalSpec& spec) {
  SHIRAZ_REQUIRE(spec.delta_full > 0.0, "full checkpoint cost must be positive");
  SHIRAZ_REQUIRE(spec.delta_meta >= 0.0, "metadata cost must be non-negative");
  SHIRAZ_REQUIRE(spec.dirty_halflife > 0.0, "dirty half-life must be positive");
  SHIRAZ_REQUIRE(spec.full_every >= 1, "full_every must be >= 1");
  SHIRAZ_REQUIRE(spec.replay_cost_per_increment >= 0.0,
                 "replay cost must be non-negative");
}
}  // namespace

double dirty_fraction(const IncrementalSpec& spec, Seconds tau) {
  validate(spec);
  SHIRAZ_REQUIRE(tau >= 0.0, "interval must be non-negative");
  return 1.0 - std::exp(-tau / spec.dirty_halflife);
}

Seconds incremental_cost(const IncrementalSpec& spec, Seconds tau) {
  return spec.delta_meta + spec.delta_full * dirty_fraction(spec, tau);
}

Seconds average_checkpoint_cost(const IncrementalSpec& spec, Seconds tau) {
  validate(spec);
  const double n = static_cast<double>(spec.full_every);
  if (spec.full_every == 1) return spec.delta_full;
  return (spec.delta_full + (n - 1.0) * incremental_cost(spec, tau)) / n;
}

Seconds average_replay_cost(const IncrementalSpec& spec) {
  validate(spec);
  const double n = static_cast<double>(spec.full_every);
  // A failure lands uniformly inside the full-checkpoint cycle: on average
  // (n - 1) / 2 increments sit between the last full checkpoint and the
  // recovery point.
  return spec.replay_cost_per_increment * (n - 1.0) / 2.0;
}

double incremental_waste_rate(const IncrementalSpec& spec, Seconds tau, Seconds mtbf) {
  validate(spec);
  SHIRAZ_REQUIRE(tau > 0.0, "interval must be positive");
  SHIRAZ_REQUIRE(mtbf > 0.0, "MTBF must be positive");
  return average_checkpoint_cost(spec, tau) / tau +
         (tau / 2.0 + average_replay_cost(spec)) / mtbf;
}

IncrementalPlan optimize_incremental(const IncrementalSpec& spec, Seconds mtbf,
                                     int max_full_every) {
  validate(spec);
  SHIRAZ_REQUIRE(max_full_every >= 1, "max_full_every must be >= 1");
  IncrementalPlan best;
  best.waste_rate = std::numeric_limits<double>::infinity();
  for (int n = 1; n <= max_full_every; ++n) {
    IncrementalSpec candidate = spec;
    candidate.full_every = n;
    // The waste rate is quasi-convex in tau; scan a geometric grid around the
    // classic OCI seeded with the *full* cost (an upper bound on the average).
    const Seconds seed = optimal_interval(mtbf, spec.delta_full, OciFormula::kYoung);
    for (double factor = 1.0 / 16.0; factor <= 4.0; factor *= 1.059) {
      const Seconds tau = seed * factor;
      const double waste = incremental_waste_rate(candidate, tau, mtbf);
      if (waste < best.waste_rate) {
        best.waste_rate = waste;
        best.interval = tau;
        best.full_every = n;
        best.effective_delta = average_checkpoint_cost(candidate, tau);
      }
    }
  }
  return best;
}

}  // namespace shiraz::checkpoint
