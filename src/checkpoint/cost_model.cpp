#include "checkpoint/cost_model.h"

#include "common/error.h"

namespace shiraz::checkpoint {

Seconds checkpoint_cost(Bytes state, const StorageSpec& storage) {
  SHIRAZ_REQUIRE(storage.write_bandwidth_bps > 0.0, "write bandwidth must be positive");
  SHIRAZ_REQUIRE(storage.fixed_latency >= 0.0, "latency must be non-negative");
  return storage.fixed_latency +
         static_cast<double>(state) / storage.write_bandwidth_bps;
}

Seconds restart_read_cost(Bytes state, const StorageSpec& storage) {
  SHIRAZ_REQUIRE(storage.read_bandwidth_bps > 0.0, "read bandwidth must be positive");
  return static_cast<double>(state) / storage.read_bandwidth_bps;
}

Bytes data_moved(Bytes state, unsigned long long num_checkpoints) {
  return state * num_checkpoints;
}

}  // namespace shiraz::checkpoint
