#include "checkpoint/multilevel.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace shiraz::checkpoint {

namespace {
void validate(const TwoLevelSpec& spec) {
  SHIRAZ_REQUIRE(spec.delta_local > 0.0, "local checkpoint cost must be positive");
  SHIRAZ_REQUIRE(spec.delta_pfs >= 0.0, "PFS flush cost must be non-negative");
  SHIRAZ_REQUIRE(spec.mtbf_light > 0.0, "light-failure MTBF must be positive");
  SHIRAZ_REQUIRE(spec.mtbf_heavy > 0.0, "heavy-failure MTBF must be positive");
  SHIRAZ_REQUIRE(spec.restart_light >= 0.0 && spec.restart_heavy >= 0.0,
                 "restart latencies must be non-negative");
}
}  // namespace

Seconds TwoLevelPlan::effective_delta(const TwoLevelSpec& spec) const {
  return spec.delta_local + spec.delta_pfs / static_cast<double>(pfs_every);
}

double two_level_waste_rate(const TwoLevelSpec& spec, Seconds tau, int n) {
  validate(spec);
  SHIRAZ_REQUIRE(tau > 0.0, "interval must be positive");
  SHIRAZ_REQUIRE(n >= 1, "flush period must be >= 1");
  const double dn = static_cast<double>(n);
  const double ckpt = (spec.delta_local + spec.delta_pfs / dn) / tau;
  const double light = (tau / 2.0 + spec.restart_light) / spec.mtbf_light;
  const double heavy = (dn * tau / 2.0 + spec.restart_heavy) / spec.mtbf_heavy;
  return ckpt + light + heavy;
}

Seconds optimal_two_level_interval(const TwoLevelSpec& spec, int n) {
  validate(spec);
  SHIRAZ_REQUIRE(n >= 1, "flush period must be >= 1");
  const double dn = static_cast<double>(n);
  const double numerator = spec.delta_local + spec.delta_pfs / dn;
  const double denominator = 1.0 / (2.0 * spec.mtbf_light) + dn / (2.0 * spec.mtbf_heavy);
  return std::sqrt(numerator / denominator);
}

TwoLevelPlan optimize_two_level(const TwoLevelSpec& spec, int max_n) {
  validate(spec);
  SHIRAZ_REQUIRE(max_n >= 1, "max_n must be >= 1");
  TwoLevelPlan best;
  best.waste_rate = std::numeric_limits<double>::infinity();
  for (int n = 1; n <= max_n; ++n) {
    const Seconds tau = optimal_two_level_interval(spec, n);
    const double waste = two_level_waste_rate(spec, tau, n);
    if (waste < best.waste_rate) {
      best.interval = tau;
      best.pfs_every = n;
      best.waste_rate = waste;
    }
  }
  return best;
}

double single_level_waste_rate(const TwoLevelSpec& spec) {
  // Everything goes to the PFS every time: an effective single-level cost of
  // delta_local + delta_pfs, recovering both failure classes.
  TwoLevelSpec merged = spec;
  merged.delta_local = spec.delta_local + spec.delta_pfs;
  merged.delta_pfs = 0.0;
  const Seconds tau = optimal_two_level_interval(merged, 1);
  return two_level_waste_rate(merged, tau, 1);
}

}  // namespace shiraz::checkpoint
