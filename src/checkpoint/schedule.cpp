#include "checkpoint/schedule.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/mathx.h"
#include "checkpoint/oci.h"

namespace shiraz::checkpoint {

EquidistantSchedule::EquidistantSchedule(Seconds interval) : interval_(interval) {
  SHIRAZ_REQUIRE(interval > 0.0, "interval must be positive");
}

std::string EquidistantSchedule::name() const {
  std::ostringstream os;
  os << "Equidistant(" << interval_ << "s)";
  return os.str();
}

IntervalSchedulePtr EquidistantSchedule::clone() const {
  return std::make_unique<EquidistantSchedule>(*this);
}

StretchedSchedule::StretchedSchedule(Seconds base_interval, unsigned factor)
    : base_interval_(base_interval), factor_(factor) {
  SHIRAZ_REQUIRE(base_interval > 0.0, "interval must be positive");
  SHIRAZ_REQUIRE(factor >= 1, "stretch factor must be >= 1");
}

Seconds StretchedSchedule::next_interval(Seconds) const {
  return base_interval_ * static_cast<double>(factor_);
}

std::optional<Seconds> StretchedSchedule::period() const {
  // The identical product next_interval computes, so hoisting is bit-exact.
  return base_interval_ * static_cast<double>(factor_);
}

std::string StretchedSchedule::name() const {
  std::ostringstream os;
  os << "Stretched(" << base_interval_ << "s x" << factor_ << ")";
  return os.str();
}

IntervalSchedulePtr StretchedSchedule::clone() const {
  return std::make_unique<StretchedSchedule>(*this);
}

LazySchedule::LazySchedule(Seconds delta, Seconds mtbf, double weibull_shape)
    : delta_(delta),
      scale_(mtbf / mathx::gamma_fn(1.0 + 1.0 / weibull_shape)),
      shape_(weibull_shape),
      floor_interval_(optimal_interval(mtbf, delta, OciFormula::kYoung)) {
  SHIRAZ_REQUIRE(delta > 0.0, "checkpoint cost must be positive");
  SHIRAZ_REQUIRE(mtbf > 0.0, "MTBF must be positive");
  SHIRAZ_REQUIRE(weibull_shape > 0.0 && weibull_shape <= 1.0,
                 "lazy checkpointing targets decreasing-hazard shapes (0,1]");
}

Seconds LazySchedule::next_interval(Seconds elapsed_since_restart) const {
  // Evaluate the hazard a floor-interval ahead of `elapsed` so the very first
  // interval (t = 0, where a beta < 1 Weibull hazard diverges) is finite.
  const Seconds t = std::max(elapsed_since_restart + floor_interval_, floor_interval_);
  const double hazard =
      shape_ / scale_ * std::pow(t / scale_, shape_ - 1.0);
  const Seconds tau = std::sqrt(2.0 * delta_ / hazard);
  return std::max(tau, floor_interval_);
}

std::string LazySchedule::name() const {
  std::ostringstream os;
  os << "Lazy(delta=" << delta_ << "s, beta=" << shape_ << ")";
  return os.str();
}

IntervalSchedulePtr LazySchedule::clone() const {
  return std::make_unique<LazySchedule>(*this);
}

}  // namespace shiraz::checkpoint
