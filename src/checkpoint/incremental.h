// Incremental checkpointing (Ferreira et al. FGCS'14, Nicolae & Cappello
// HPDC'13 — related work the paper lists as composable with Shiraz): only the
// pages dirtied since the last checkpoint are written, shrinking the average
// checkpoint cost; periodically a full checkpoint bounds the recovery chain.
//
// Model: a full checkpoint costs delta_full. Between checkpoints the
// application dirties a fraction of its state that grows with the compute
// interval and saturates:  dirty(tau) = 1 - exp(-tau / t_half), so an
// incremental checkpoint costs  delta_full * dirty(tau) + delta_meta.
// Every n-th checkpoint is full (restart replays at most n-1 increments).
#pragma once

#include "common/units.h"

namespace shiraz::checkpoint {

struct IncrementalSpec {
  /// Cost of writing the full application state.
  Seconds delta_full = 0.0;
  /// Fixed per-checkpoint metadata/indexing cost of an incremental write.
  Seconds delta_meta = 0.0;
  /// Interval after which roughly 63% of the state has been re-dirtied.
  Seconds dirty_halflife = 0.0;
  /// Every n-th checkpoint is a full one (n >= 1; n == 1 disables increments).
  int full_every = 4;
  /// Extra restart cost per incremental checkpoint replayed on recovery.
  Seconds replay_cost_per_increment = 0.0;
};

/// Fraction of state dirtied after computing for `tau` seconds.
double dirty_fraction(const IncrementalSpec& spec, Seconds tau);

/// Cost of one incremental checkpoint taken after a compute interval `tau`.
Seconds incremental_cost(const IncrementalSpec& spec, Seconds tau);

/// Average per-checkpoint cost of the schedule (one full every n, the rest
/// incremental), for compute interval `tau` — the effective delta a
/// single-level scheduler like Shiraz sees.
Seconds average_checkpoint_cost(const IncrementalSpec& spec, Seconds tau);

/// Average extra restart latency from replaying increments ((n-1)/2 expected).
Seconds average_replay_cost(const IncrementalSpec& spec);

/// First-order waste rate of running at compute interval tau with this
/// incremental schedule on a machine with the given MTBF:
///   W = avg_ckpt/ (tau) + (tau/2 + avg_replay)/M.
double incremental_waste_rate(const IncrementalSpec& spec, Seconds tau, Seconds mtbf);

/// Scans compute intervals (geometric grid around the classic OCI computed
/// from the average cost) and full-checkpoint periods to minimize the waste
/// rate; returns the best (tau, full_every) pair embedded in a copy of spec.
struct IncrementalPlan {
  Seconds interval = 0.0;
  int full_every = 1;
  double waste_rate = 0.0;
  /// Effective per-checkpoint cost at the optimum.
  Seconds effective_delta = 0.0;
};

IncrementalPlan optimize_incremental(const IncrementalSpec& spec, Seconds mtbf,
                                     int max_full_every = 32);

}  // namespace shiraz::checkpoint
