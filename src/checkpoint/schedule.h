// Checkpoint interval schedules.
//
// A schedule answers one question for the simulator: "given how long this
// application has been running since the last failure/restart, how long is the
// next compute interval before it checkpoints?" Equidistant schedules cover
// the baseline and Shiraz; a stretched schedule covers Shiraz+; the Lazy
// schedule implements the Tiwari et al. (DSN'14) comparator discussed in the
// paper's related work.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/units.h"

namespace shiraz::checkpoint {

class IntervalSchedule {
 public:
  virtual ~IntervalSchedule() = default;

  /// Length of the next compute interval when `elapsed_since_restart` seconds
  /// have passed since the last failure (or job start).
  virtual Seconds next_interval(Seconds elapsed_since_restart) const = 0;

  /// The constant interval when this schedule is periodic (the same value for
  /// every elapsed time), else nullopt. A non-null period MUST equal every
  /// next_interval() return bit for bit — consumers (sim::flat_replay, the
  /// sweep hoists in sim/optimizer.cpp) substitute it for the virtual call
  /// and rely on exact equality to stay bit-identical to the event loop.
  virtual std::optional<Seconds> period() const { return std::nullopt; }

  virtual std::string name() const = 0;
  virtual std::unique_ptr<IntervalSchedule> clone() const = 0;
};

using IntervalSchedulePtr = std::unique_ptr<IntervalSchedule>;

/// Fixed, equidistant checkpoint intervals (the paper's default; both Shiraz
/// and Shiraz+ deliberately keep checkpoints equidistant — Section 6).
class EquidistantSchedule final : public IntervalSchedule {
 public:
  explicit EquidistantSchedule(Seconds interval);

  Seconds interval() const { return interval_; }
  Seconds next_interval(Seconds) const override { return interval_; }
  std::optional<Seconds> period() const override { return interval_; }
  std::string name() const override;
  IntervalSchedulePtr clone() const override;

 private:
  Seconds interval_;
};

/// Equidistant intervals stretched by an integer factor — Shiraz+'s
/// heavy-weight application schedule (paper Fig. 8).
class StretchedSchedule final : public IntervalSchedule {
 public:
  StretchedSchedule(Seconds base_interval, unsigned factor);

  unsigned factor() const { return factor_; }
  Seconds next_interval(Seconds) const override;
  std::optional<Seconds> period() const override;
  std::string name() const override;
  IntervalSchedulePtr clone() const override;

 private:
  Seconds base_interval_;
  unsigned factor_;
};

/// Lazy checkpointing (Tiwari, Gupta, Vazhkudai — DSN'14): the interval grows
/// with elapsed time as the Weibull hazard decays,
///   tau(t) = sqrt(2 * delta / h(t)),  h(t) = (beta/lambda) * (t/lambda)^(beta-1),
/// floored at the classic OCI so the schedule never checkpoints more often
/// than the equidistant optimum.
class LazySchedule final : public IntervalSchedule {
 public:
  LazySchedule(Seconds delta, Seconds mtbf, double weibull_shape);

  Seconds next_interval(Seconds elapsed_since_restart) const override;
  std::string name() const override;
  IntervalSchedulePtr clone() const override;

 private:
  Seconds delta_;
  Seconds scale_;
  double shape_;
  Seconds floor_interval_;
};

}  // namespace shiraz::checkpoint
