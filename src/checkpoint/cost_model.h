// Checkpoint cost models.
//
// The analytical model only needs a scalar cost delta per application, but the
// prototype and the Fig 3 experiment derive that scalar from application state
// size and storage characteristics, so both views live here.
#pragma once

#include "common/units.h"

namespace shiraz::checkpoint {

/// Storage subsystem characteristics seen by a checkpoint write.
struct StorageSpec {
  /// Sustained write bandwidth available to one job (bytes/second).
  double write_bandwidth_bps = 50.0e9;
  /// Fixed per-checkpoint latency (metadata, barriers, drain), seconds.
  Seconds fixed_latency = 1.0;
  /// Read bandwidth for restart (bytes/second).
  double read_bandwidth_bps = 80.0e9;
};

/// Computes the wall-clock cost of writing one checkpoint of `state` bytes.
Seconds checkpoint_cost(Bytes state, const StorageSpec& storage);

/// Computes the wall-clock cost of reading one checkpoint of `state` bytes
/// during restart.
Seconds restart_read_cost(Bytes state, const StorageSpec& storage);

/// Total bytes moved by `num_checkpoints` checkpoints of `state` bytes — the
/// data-movement metric Shiraz+ reduces.
Bytes data_moved(Bytes state, unsigned long long num_checkpoints);

}  // namespace shiraz::checkpoint
