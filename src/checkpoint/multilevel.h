// Two-level checkpointing (Moody et al. SC'10; Di et al. IPDPS'14; Benoit et
// al. ToC'17 — the related-work family the paper notes "can be used in
// conjunction with Shiraz").
//
// Level 1 writes cheap local/burst-buffer checkpoints that recover *light*
// failures (process crash, node soft error); every n-th checkpoint is also
// flushed to the parallel file system, recovering *heavy* failures (node
// loss, PFS-visible corruption). The model optimizes the base interval tau
// and the flush period n against the first-order waste rate
//
//   W(tau, n) = (d1 + d2/n)/tau + (tau/2 + r1)/M1 + (n*tau/2 + r2)/M2
//
// and exposes the effective per-segment cost (d1 + d2/n) that a scheduler
// like Shiraz sees — the integration point the ablation bench exercises.
#pragma once

#include "common/units.h"

namespace shiraz::checkpoint {

struct TwoLevelSpec {
  /// Cost of a level-1 (local / burst buffer) checkpoint.
  Seconds delta_local = 0.0;
  /// Additional cost of flushing a checkpoint to the PFS.
  Seconds delta_pfs = 0.0;
  /// Mean time between failures recoverable from a level-1 checkpoint.
  Seconds mtbf_light = 0.0;
  /// Mean time between failures that need the PFS copy.
  Seconds mtbf_heavy = 0.0;
  /// Restart latencies per failure class.
  Seconds restart_light = 0.0;
  Seconds restart_heavy = 0.0;
};

struct TwoLevelPlan {
  /// Compute interval between (level-1) checkpoints.
  Seconds interval = 0.0;
  /// Every n-th checkpoint is flushed to the PFS.
  int pfs_every = 1;
  /// Expected waste rate (fraction of wall-clock lost to resilience).
  double waste_rate = 0.0;

  /// The per-segment checkpoint cost a single-level scheduler (e.g. the
  /// Shiraz model) should be fed: delta_local + delta_pfs / pfs_every.
  Seconds effective_delta(const TwoLevelSpec& spec) const;
};

/// First-order expected waste rate of schedule (tau, n) under `spec`.
double two_level_waste_rate(const TwoLevelSpec& spec, Seconds tau, int n);

/// Optimal interval for a fixed flush period n (closed form).
Seconds optimal_two_level_interval(const TwoLevelSpec& spec, int n);

/// Full optimization: scans n in [1, max_n] with the closed-form tau*(n).
TwoLevelPlan optimize_two_level(const TwoLevelSpec& spec, int max_n = 64);

/// Waste rate of the single-level alternative (every checkpoint goes to the
/// PFS; n = 1) at its own optimal interval — the comparison baseline.
double single_level_waste_rate(const TwoLevelSpec& spec);

}  // namespace shiraz::checkpoint
