// Optimal checkpoint interval (OCI) formulas.
//
// The paper's Eq. 1 prints Daly's `sqrt(2*M*delta) - delta`, but every derived
// number in its evaluation (switch times of 6.6 h and 25.2 h, Table 2 optimal
// k values) is consistent with the *compute interval* `sqrt(2*M*delta)` and a
// segment length of `OCI + delta`. We expose both conventions plus Daly's
// higher-order formula, and the Shiraz model defaults to the convention that
// reproduces the paper's numbers (see DESIGN.md, "OCI convention").
#pragma once

#include "common/units.h"

namespace shiraz::checkpoint {

enum class OciFormula {
  /// Young's first-order formula: OCI = sqrt(2*M*delta). Matches the paper's
  /// reported numbers; the library default.
  kYoung,
  /// Daly's first-order variant as printed in the paper's Eq. 1:
  /// OCI = sqrt(2*M*delta) - delta.
  kDalyFirstOrder,
  /// Daly's higher-order estimate (Daly 2006, Eq. 20), valid for delta < 2M:
  /// OCI = sqrt(2*M*delta) * [1 + 1/3*sqrt(delta/(2M)) + 1/9*(delta/(2M))] - delta.
  kDalyHigherOrder,
};

/// Computes the optimal compute interval between checkpoints for an
/// application with checkpoint cost `delta` on a system with MTBF `mtbf`.
Seconds optimal_interval(Seconds mtbf, Seconds delta,
                         OciFormula formula = OciFormula::kYoung);

/// Segment length = compute interval + checkpoint cost. One "segment" is the
/// unit of forward progress in both the analytical model and the simulator.
Seconds segment_length(Seconds mtbf, Seconds delta,
                       OciFormula formula = OciFormula::kYoung);

/// First-order expected waste fraction at the optimum, sqrt(2*delta/M) — a
/// useful sanity metric for tests and benches.
double expected_waste_fraction(Seconds mtbf, Seconds delta);

}  // namespace shiraz::checkpoint
