// The workload manager (paper Fig. 15): jobs arrive in a queue, the machine
// runs one job at a time with checkpoint/restart under injected failures, and
// a scheduling policy decides who occupies the machine.
//
// Two policies, matching the paper's comparison:
//  * kBaselineAlternate — the conventional fair scheduler: the two oldest
//    eligible jobs share the machine, switching at every failure;
//  * kShirazPairing — the same two jobs are run as a Shiraz pair: after each
//    failure the lighter-checkpoint job runs for the model's fair k
//    checkpoints, then the heavier one runs until the next failure. The
//    switch point is re-solved whenever the pair changes (a job completes or
//    a new one arrives into an idle slot) and memoized in a shared
//    core::SolverCache keyed by the full model signature, so a 10k-job
//    stream drawn from a small catalog pays for each distinct
//    (delta_LW, delta_HW) solve once — across repetitions, policies, and
//    any other consumer (e.g. the `shirazctl serve` daemon) sharing the
//    cache.
//
// Which two jobs share the machine is the queue's pairing decision
// (ManagerConfig::slot_fill): FCFS reproduces the paper's random pairing —
// whoever is oldest gets the free slot — while kContrast picks the eligible
// job whose checkpoint cost contrasts most with the current occupant's, the
// workload-manager form of the paper's extreme pairing.
//
// Jobs are finite: a job completes when its accumulated *useful* work reaches
// its requirement; the final partial interval is not checkpointed. Completion
// latency (turnaround) is the per-job metric, system useful work per time the
// throughput metric — the two quantities the paper's evaluation tracks. The
// campaign ends when the queue drains or the horizon hits, and every run
// satisfies useful + io + lost + idle == elapsed == min(makespan, horizon).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "checkpoint/oci.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/analytical_model.h"
#include "core/solver_cache.h"
#include "reliability/distribution.h"
#include "sched/batch_job.h"
#include "sched/distribution.h"
#include "sched/stats.h"

namespace shiraz::obs {
class MetricsRegistry;
}  // namespace shiraz::obs

namespace shiraz::sched {

enum class Policy { kBaselineAlternate, kShirazPairing };

/// How a freed machine slot is filled from the eligible pending jobs.
enum class SlotFill {
  /// Oldest eligible job — the paper's random pairing (queue order decides).
  kFcfs,
  /// The eligible job whose checkpoint cost contrasts most (largest
  /// |log delta ratio|) with the job already on the machine — the paper's
  /// extreme pairing, applied at slot-fill time. Falls back to FCFS when the
  /// eligible backlog has a single job; ties break in queue order.
  kContrast,
};

struct ManagerConfig {
  /// Hard stop for the campaign.
  Seconds horizon = hours(10'000.0);
  /// Nominal system MTBF used for OCI computation and switch-point solving
  /// (the failure distribution itself is passed to the constructor).
  Seconds nominal_mtbf = hours(5.0);
  double weibull_shape = 0.6;
  double epsilon = 0.45;
  checkpoint::OciFormula oci_formula = checkpoint::OciFormula::kYoung;
  /// Heavy-weight OCI stretch applied when pairing (1 = plain Shiraz;
  /// >= 2 = Shiraz+). Ignored by the baseline policy.
  unsigned hw_stretch = 1;
  /// Downtime charged (as lost time, to the job the failure hit) after each
  /// failure before the post-failure segment — the manager analogue of
  /// sim::EngineConfig::restart_cost. Default 0 keeps historical outputs
  /// bit-identical. Failures on an idle machine restart nothing.
  Seconds restart_cost = 0.0;
  /// Slot-fill discipline (the pairing strategy, see SlotFill).
  SlotFill slot_fill = SlotFill::kFcfs;
  /// Testing/ablation hook: > 0 forces every Shiraz pair to this switch
  /// point instead of solving the model. 0 (default) solves.
  int fixed_pair_k = 0;
  /// > 0 routes switch-point solves through Monte-Carlo simulation instead
  /// of the analytical model: each distinct (delta_LW, delta_HW) pair runs
  /// sim::find_fair_k_by_simulation with this many repetitions against the
  /// manager's *real* failure distribution — the flat replay kernel
  /// (sim/kernel.h) makes this cheap enough for in-campaign use. Solutions
  /// are memoized per signature (thread-safe, shared across run() calls and
  /// repetitions) and the solve draws from its own seed, so arming it never
  /// perturbs the campaign's failure streams; results stay bit-identical
  /// for every CampaignRunOptions::workers value. Precedence:
  /// fixed_pair_k > sim solve > analytical cache.
  std::size_t sim_solve_reps = 0;
  /// Failure-stream seed for sim-backed solves.
  std::uint64_t sim_solve_seed = 20180909;
  /// Upper bound of the sim-backed k scan (the analytical solver's default
  /// bound is far larger, but each sim candidate costs real replays; the
  /// paper's fair points sit well inside 64 at these signatures).
  int sim_solve_max_k = 64;
  /// When non-null, campaigns count into this registry (obs/metrics.h):
  /// jobs submitted/completed per run and the solve route each pair-change
  /// took (fixed / sim-backed / analytical cache). Pure observation — no
  /// campaign decision reads a metric — so arming it never changes a
  /// reported number; counters are commutative u64 sums, so totals are
  /// CampaignRunOptions::workers-invariant.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Repetition-sharding knobs for run_many / run_distribution. Results are
/// bit-identical for every worker count: repetition r always draws from
/// Rng(seed).fork(r) and merges in repetition order (the PR 2 contract).
struct CampaignRunOptions {
  /// Worker threads (<= 1 runs the serial loop inline).
  std::size_t workers = 1;
  /// Borrowed pool; when null and workers > 1, a private pool is spawned.
  common::ThreadPool* pool = nullptr;
};

class WorkloadManager {
 public:
  /// With no explicit cache, the manager owns a private SolverCache — the
  /// historical behavior, except the memo now persists across run() calls
  /// and repetitions (bit-identical: cached solutions equal fresh solves).
  WorkloadManager(const reliability::Distribution& failure_dist,
                  const ManagerConfig& config);

  /// Shares `cache` with other consumers (other managers, the serve
  /// daemon): a signature any of them solved is a hit for all. The cache is
  /// thread-safe, so parallel repetitions populate it concurrently.
  WorkloadManager(const reliability::Distribution& failure_dist,
                  const ManagerConfig& config,
                  std::shared_ptr<const core::SolverCache> cache);

  /// The cache this manager consults (never null).
  const std::shared_ptr<const core::SolverCache>& solver_cache() const {
    return cache_;
  }

  /// The cache key this manager's config produces for a checkpoint-cost
  /// pair — the exact signature run() solves, exposed so callers (tests,
  /// the serve daemon) can prime or inspect the shared cache.
  core::SolverCacheKey cache_key(Seconds delta_lw, Seconds delta_hw) const;

  /// Runs one campaign over `jobs` (any submit-time order) under `policy`.
  CampaignStats run(const std::vector<BatchJobSpec>& jobs, Policy policy,
                    Rng& rng) const;

  /// Averages `reps` campaigns over independent failure streams.
  CampaignStats run_many(const std::vector<BatchJobSpec>& jobs, Policy policy,
                         std::size_t reps, std::uint64_t seed,
                         const CampaignRunOptions& options = {}) const;

  /// Like run_many, but additionally keeps the per-(job, rep) turnaround /
  /// slowdown and per-rep makespan samples and reports exact
  /// p50/p95/p99/max over them (result.mean is the run_many view).
  CampaignDistribution run_distribution(const std::vector<BatchJobSpec>& jobs,
                                        Policy policy, std::size_t reps,
                                        std::uint64_t seed,
                                        const CampaignRunOptions& options = {}) const;

  const ManagerConfig& config() const { return config_; }

 private:
  struct SimSolveMemo;  // mutex + signature map, shared so managers stay copyable

  std::vector<CampaignStats> run_reps(const std::vector<BatchJobSpec>& jobs,
                                      Policy policy, std::size_t reps,
                                      std::uint64_t seed,
                                      const CampaignRunOptions& options) const;

  /// Memoized sim-backed switch-point solve (sim_solve_reps > 0); nullopt
  /// means no beneficial switch point, i.e. alternate at every failure.
  std::optional<int> sim_solve_k(Seconds delta_lw, Seconds delta_hw) const;

  reliability::DistributionPtr failure_dist_;
  ManagerConfig config_;
  std::shared_ptr<const core::SolverCache> cache_;
  std::shared_ptr<SimSolveMemo> sim_memo_;
};

}  // namespace shiraz::sched
