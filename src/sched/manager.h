// The workload manager (paper Fig. 15): jobs arrive in a queue, the machine
// runs one job at a time with checkpoint/restart under injected failures, and
// a scheduling policy decides who occupies the machine.
//
// Two policies, matching the paper's comparison:
//  * kBaselineAlternate — the conventional fair scheduler: the two oldest
//    eligible jobs share the machine, switching at every failure;
//  * kShirazPairing — the same two jobs are run as a Shiraz pair: after each
//    failure the lighter-checkpoint job runs for the model's fair k
//    checkpoints, then the heavier one runs until the next failure. The
//    switch point is re-solved whenever the pair changes (a job completes or
//    a new one arrives into an idle slot).
//
// Jobs are finite: a job completes when its accumulated *useful* work reaches
// its requirement; the final partial interval is not checkpointed. Completion
// latency (turnaround) is the per-job metric, system useful work per time the
// throughput metric — the two quantities the paper's evaluation tracks.
#pragma once

#include <optional>
#include <vector>

#include "checkpoint/oci.h"
#include "common/rng.h"
#include "core/analytical_model.h"
#include "reliability/distribution.h"
#include "sched/batch_job.h"
#include "sched/stats.h"

namespace shiraz::sched {

enum class Policy { kBaselineAlternate, kShirazPairing };

struct ManagerConfig {
  /// Hard stop for the campaign.
  Seconds horizon = hours(10'000.0);
  /// Nominal system MTBF used for OCI computation and switch-point solving
  /// (the failure distribution itself is passed to the constructor).
  Seconds nominal_mtbf = hours(5.0);
  double weibull_shape = 0.6;
  double epsilon = 0.45;
  checkpoint::OciFormula oci_formula = checkpoint::OciFormula::kYoung;
  /// Heavy-weight OCI stretch applied when pairing (1 = plain Shiraz;
  /// >= 2 = Shiraz+). Ignored by the baseline policy.
  unsigned hw_stretch = 1;
};

class WorkloadManager {
 public:
  WorkloadManager(const reliability::Distribution& failure_dist,
                  const ManagerConfig& config);

  /// Runs one campaign over `jobs` (any submit-time order) under `policy`.
  CampaignStats run(const std::vector<BatchJobSpec>& jobs, Policy policy,
                    Rng& rng) const;

  /// Averages `reps` campaigns over independent failure streams.
  CampaignStats run_many(const std::vector<BatchJobSpec>& jobs, Policy policy,
                         std::size_t reps, std::uint64_t seed) const;

  const ManagerConfig& config() const { return config_; }

 private:
  reliability::DistributionPtr failure_dist_;
  ManagerConfig config_;
};

}  // namespace shiraz::sched
