// Distributional campaign statistics: at fleet scale the interesting numbers
// are tails, not means. CampaignDistribution keeps the exact per-(job, rep)
// turnaround and slowdown samples and the per-rep makespan samples, and
// reports p50/p95/p99/max over them — the SLO view of a campaign — plus the
// completion rate the mean-of-means accounting used to silently drop.
#pragma once

#include <cstddef>
#include <vector>

#include "sched/batch_job.h"
#include "sched/stats.h"

namespace shiraz::sched {

/// Exact order statistics of one sample set. Percentiles are
/// linear-interpolated (common/statistics.h); all zero when count == 0.
struct DistSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Summarizes `samples` (consumed; sorted internally).
DistSummary summarize_samples(std::vector<double> samples);

struct CampaignDistribution {
  std::size_t reps = 0;
  std::size_t job_count = 0;
  /// Completed (job, repetition) samples over job_count * reps.
  double completion_rate = 0.0;
  /// Seconds, one sample per completed (job, repetition) pair.
  DistSummary turnaround;
  /// Turnaround / the job's work requirement (dimensionless, >= 1 plus
  /// checkpoint overhead), same sample set as `turnaround`.
  DistSummary slowdown;
  /// Seconds, one sample per repetition.
  DistSummary makespan;
  /// Rep-order mean of the same repetitions (mean_of_reps).
  CampaignStats mean;
};

/// Builds the distribution from per-repetition campaign stats. Samples are
/// collected in (rep, job) order, so the result is identical for any worker
/// count as long as `per_rep` is merged in repetition order.
CampaignDistribution build_distribution(const std::vector<BatchJobSpec>& jobs,
                                        const std::vector<CampaignStats>& per_rep);

}  // namespace shiraz::sched
