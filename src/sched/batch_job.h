// Batch jobs as the workload manager sees them (paper Fig. 15's job queue).
#pragma once

#include <string>

#include "common/units.h"

namespace shiraz::sched {

/// A finite job submitted to the machine.
struct BatchJobSpec {
  std::string name;
  /// Total useful work the job must accumulate to complete.
  Seconds work = 0.0;
  /// Cost of one checkpoint (the paper's delta).
  Seconds checkpoint_cost = 0.0;
  /// Arrival time of the job at the queue.
  Seconds submit_time = 0.0;
};

/// Per-job outcome of a campaign.
struct BatchJobRecord {
  std::string name;
  Seconds submit_time = 0.0;
  /// First time the job ran (negative = never started).
  Seconds start_time = -1.0;
  /// Completion time (negative = still unfinished at the horizon).
  Seconds completion_time = -1.0;
  Seconds useful = 0.0;
  Seconds io = 0.0;
  Seconds lost = 0.0;
  std::size_t checkpoints = 0;
  std::size_t failures_hit = 0;

  bool completed() const { return completion_time >= 0.0; }
  bool started() const { return start_time >= 0.0; }
  /// Submit-to-completion latency (only valid when completed()).
  Seconds turnaround() const { return completion_time - submit_time; }
};

}  // namespace shiraz::sched
