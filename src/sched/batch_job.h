// Batch jobs as the workload manager sees them (paper Fig. 15's job queue).
#pragma once

#include <cstddef>
#include <string>

#include "common/units.h"

namespace shiraz::sched {

/// A finite job submitted to the machine.
struct BatchJobSpec {
  std::string name;
  /// Total useful work the job must accumulate to complete.
  Seconds work = 0.0;
  /// Cost of one checkpoint (the paper's delta).
  Seconds checkpoint_cost = 0.0;
  /// Arrival time of the job at the queue.
  Seconds submit_time = 0.0;
};

/// Per-job outcome of a campaign. A single run holds exact values; the
/// rep-averaged view from `run_many` holds means — counts are therefore
/// doubles (0.4 mean failures is 0.4, not 0), and start/completion times are
/// means over the repetitions where the job started/completed
/// (`started_reps`/`completed_reps` say how many that was).
struct BatchJobRecord {
  std::string name;
  Seconds submit_time = 0.0;
  /// First time the job ran (negative = never started). Averaged over the
  /// repetitions where the job started.
  Seconds start_time = -1.0;
  /// Completion time (negative = unfinished at the horizon in every rep).
  /// Averaged over the repetitions where the job completed.
  Seconds completion_time = -1.0;
  Seconds useful = 0.0;
  Seconds io = 0.0;
  Seconds lost = 0.0;
  double checkpoints = 0.0;
  double failures_hit = 0.0;
  /// Repetitions in which the job started / completed (1 or 0 for one run).
  std::size_t started_reps = 0;
  std::size_t completed_reps = 0;

  bool completed() const { return completion_time >= 0.0; }
  bool started() const { return start_time >= 0.0; }
  /// Submit-to-completion latency (only valid when completed()).
  Seconds turnaround() const { return completion_time - submit_time; }
};

}  // namespace shiraz::sched
