#include "sched/stats.h"

#include <algorithm>

#include "common/error.h"

namespace shiraz::sched {

std::size_t CampaignStats::completed_count() const {
  return static_cast<std::size_t>(
      std::count_if(jobs.begin(), jobs.end(),
                    [](const BatchJobRecord& j) { return j.completed(); }));
}

Seconds CampaignStats::total_useful() const {
  Seconds t = 0.0;
  for (const auto& j : jobs) t += j.useful;
  return t;
}

Seconds CampaignStats::total_io() const {
  Seconds t = 0.0;
  for (const auto& j : jobs) t += j.io;
  return t;
}

Seconds CampaignStats::total_lost() const {
  Seconds t = 0.0;
  for (const auto& j : jobs) t += j.lost;
  return t;
}

Seconds CampaignStats::mean_turnaround() const {
  Seconds sum = 0.0;
  std::size_t n = 0;
  for (const auto& j : jobs) {
    if (j.completed()) {
      sum += j.turnaround();
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

Seconds CampaignStats::max_turnaround() const {
  Seconds best = 0.0;
  for (const auto& j : jobs) {
    if (j.completed()) best = std::max(best, j.turnaround());
  }
  return best;
}

const BatchJobRecord& CampaignStats::job(const std::string& name) const {
  for (const auto& j : jobs) {
    if (j.name == name) return j;
  }
  throw InvalidArgument("no job named " + name + " in campaign stats");
}

}  // namespace shiraz::sched
