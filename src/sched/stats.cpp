#include "sched/stats.h"

#include <algorithm>

#include "common/error.h"

namespace shiraz::sched {

std::size_t CampaignStats::completed_count() const {
  return static_cast<std::size_t>(
      std::count_if(jobs.begin(), jobs.end(),
                    [](const BatchJobRecord& j) { return j.completed(); }));
}

double CampaignStats::completion_rate() const {
  if (jobs.empty() || reps == 0) return 0.0;
  std::size_t completed = 0;
  for (const auto& j : jobs) completed += j.completed_reps;
  return static_cast<double>(completed) /
         static_cast<double>(jobs.size() * reps);
}

Seconds CampaignStats::total_useful() const {
  Seconds t = 0.0;
  for (const auto& j : jobs) t += j.useful;
  return t;
}

Seconds CampaignStats::total_io() const {
  Seconds t = 0.0;
  for (const auto& j : jobs) t += j.io;
  return t;
}

Seconds CampaignStats::total_lost() const {
  Seconds t = 0.0;
  for (const auto& j : jobs) t += j.lost;
  return t;
}

Seconds CampaignStats::mean_turnaround() const {
  Seconds sum = 0.0;
  std::size_t n = 0;
  for (const auto& j : jobs) {
    if (j.completed()) {
      sum += j.turnaround();
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

Seconds CampaignStats::max_turnaround() const {
  Seconds best = 0.0;
  for (const auto& j : jobs) {
    if (j.completed()) best = std::max(best, j.turnaround());
  }
  return best;
}

const BatchJobRecord& CampaignStats::job(const std::string& name) const {
  for (const auto& j : jobs) {
    if (j.name == name) return j;
  }
  throw InvalidArgument("no job named " + name + " in campaign stats");
}

CampaignStats mean_of_reps(const std::vector<CampaignStats>& per_rep) {
  SHIRAZ_REQUIRE(!per_rep.empty(), "no repetitions to average");
  const std::size_t nj = per_rep.front().jobs.size();
  const double n = static_cast<double>(per_rep.size());

  CampaignStats out;
  out.horizon = per_rep.front().horizon;
  out.reps = per_rep.size();
  out.jobs.resize(nj);
  std::vector<Seconds> start_sum(nj, 0.0);
  std::vector<Seconds> completion_sum(nj, 0.0);

  for (const CampaignStats& rep : per_rep) {
    SHIRAZ_REQUIRE(rep.jobs.size() == nj, "mismatched job lists across reps");
    for (std::size_t j = 0; j < nj; ++j) {
      BatchJobRecord& acc = out.jobs[j];
      const BatchJobRecord& one = rep.jobs[j];
      acc.useful += one.useful;
      acc.io += one.io;
      acc.lost += one.lost;
      acc.checkpoints += one.checkpoints;
      acc.failures_hit += one.failures_hit;
      if (one.started()) {
        start_sum[j] += one.start_time;
        ++acc.started_reps;
      }
      if (one.completed()) {
        completion_sum[j] += one.completion_time;
        ++acc.completed_reps;
      }
    }
    out.failures += rep.failures;
    out.idle += rep.idle;
    out.makespan += rep.makespan;
    out.elapsed += rep.elapsed;
  }

  for (std::size_t j = 0; j < nj; ++j) {
    BatchJobRecord& acc = out.jobs[j];
    acc.name = per_rep.front().jobs[j].name;
    acc.submit_time = per_rep.front().jobs[j].submit_time;
    acc.useful /= n;
    acc.io /= n;
    acc.lost /= n;
    acc.checkpoints /= n;
    acc.failures_hit /= n;
    acc.start_time = acc.started_reps == 0
                         ? -1.0
                         : start_sum[j] / static_cast<double>(acc.started_reps);
    acc.completion_time =
        acc.completed_reps == 0
            ? -1.0
            : completion_sum[j] / static_cast<double>(acc.completed_reps);
  }
  out.failures /= n;
  out.idle /= n;
  out.makespan /= n;
  out.elapsed /= n;
  return out;
}

}  // namespace shiraz::sched
