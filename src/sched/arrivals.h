// Seeded arrival-stream generation for fleet-scale campaigns.
//
// The 40-job demos hand-wrote their queues; a 10k-job campaign needs a
// workload *generator*: a heterogeneous job catalog (classes with a work
// requirement, a checkpoint cost, and a sampling weight) plus an arrival
// process. Two regimes are supported and deliberately load-matched — both
// produce the same long-run arrival rate, so comparing them isolates the
// effect of burstiness on tail turnaround:
//
//  * kPoisson — exponential inter-arrival gaps with mean `mean_interarrival`;
//  * kBursty  — an on/off (interrupted-Poisson) process: exponential on- and
//    off-phase durations, arrivals only during on-phases at a rate scaled up
//    by (mean_on + mean_off) / mean_on so the long-run rate matches Poisson.
//
// Generation is a pure function of (catalog, config, count, rng): one gap
// draw, one class draw, one work-jitter draw per job, in that order, so a
// given seed always produces the identical job stream.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sched/batch_job.h"

namespace shiraz::sched {

enum class ArrivalRegime { kPoisson, kBursty };

const char* to_string(ArrivalRegime regime);

/// One class of jobs in the fleet catalog.
struct JobClass {
  std::string name;
  /// Nominal useful-work requirement of one job of this class.
  Seconds work = 0.0;
  /// Checkpoint cost (the paper's delta) of jobs of this class.
  Seconds checkpoint_cost = 0.0;
  /// Relative sampling weight (> 0).
  double weight = 1.0;
  /// Per-job work is drawn uniformly from [1 - jitter, 1 + jitter] * work,
  /// so no two jobs of a class are exactly alike. Must be in [0, 1).
  double work_jitter = 0.25;
};

struct ArrivalConfig {
  ArrivalRegime regime = ArrivalRegime::kPoisson;
  /// Long-run mean inter-arrival gap (both regimes match it).
  Seconds mean_interarrival = hours(10.0);
  /// Bursty regime only: mean on-phase (arrivals flowing) and off-phase
  /// (queue silent) durations, both exponential.
  Seconds mean_on = hours(12.0);
  Seconds mean_off = hours(36.0);
};

/// The default nine-class fleet catalog: Table 1's checkpoint-cost spread
/// (1.5 s - 2700 s) crossed with a work mix skewed toward short jobs — the
/// short-job-heavy traffic the restart-economics literature describes —
/// while the heavy-checkpoint plasma classes run long.
std::vector<JobClass> fleet_catalog();

/// Generates `count` jobs with arrival times from `config` and specs drawn
/// from `catalog` by weight. Jobs are returned in submit-time order, named
/// "<class>#<index>". Throws InvalidArgument on an empty catalog or
/// non-positive parameters.
std::vector<BatchJobSpec> generate_arrivals(const std::vector<JobClass>& catalog,
                                            const ArrivalConfig& config,
                                            std::size_t count, Rng& rng);

}  // namespace shiraz::sched
