#include "sched/distribution.h"

#include <algorithm>

#include "common/error.h"
#include "common/statistics.h"

namespace shiraz::sched {

DistSummary summarize_samples(std::vector<double> samples) {
  DistSummary out;
  out.count = samples.size();
  if (samples.empty()) return out;
  double sum = 0.0;
  for (const double x : samples) sum += x;
  out.mean = sum / static_cast<double>(samples.size());
  out.max = *std::max_element(samples.begin(), samples.end());
  std::sort(samples.begin(), samples.end());
  out.p50 = percentile(samples, 0.50);
  out.p95 = percentile(samples, 0.95);
  out.p99 = percentile(samples, 0.99);
  return out;
}

CampaignDistribution build_distribution(
    const std::vector<BatchJobSpec>& jobs,
    const std::vector<CampaignStats>& per_rep) {
  SHIRAZ_REQUIRE(!per_rep.empty(), "no repetitions to summarize");
  CampaignDistribution dist;
  dist.reps = per_rep.size();
  dist.job_count = jobs.size();

  std::vector<double> turnaround;
  std::vector<double> slowdown;
  std::vector<double> makespan;
  turnaround.reserve(jobs.size() * per_rep.size());
  slowdown.reserve(jobs.size() * per_rep.size());
  makespan.reserve(per_rep.size());

  for (const CampaignStats& rep : per_rep) {
    SHIRAZ_REQUIRE(rep.jobs.size() == jobs.size(),
                   "mismatched job lists across reps");
    makespan.push_back(rep.makespan);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const BatchJobRecord& rec = rep.jobs[j];
      if (!rec.completed()) continue;
      turnaround.push_back(rec.turnaround());
      slowdown.push_back(rec.turnaround() / jobs[j].work);
    }
  }

  const std::size_t total = jobs.size() * per_rep.size();
  dist.completion_rate =
      total == 0 ? 0.0
                 : static_cast<double>(turnaround.size()) /
                       static_cast<double>(total);
  dist.turnaround = summarize_samples(std::move(turnaround));
  dist.slowdown = summarize_samples(std::move(slowdown));
  dist.makespan = summarize_samples(std::move(makespan));
  dist.mean = mean_of_reps(per_rep);
  return dist;
}

}  // namespace shiraz::sched
