#include "sched/arrivals.h"

#include <cmath>

#include "common/error.h"

namespace shiraz::sched {

namespace {

/// One exponential gap with the given mean (inverse-CDF on a uniform draw;
/// log1p keeps precision for small u).
Seconds exponential_gap(Rng& rng, Seconds mean) {
  return -mean * std::log1p(-rng.uniform());
}

}  // namespace

const char* to_string(ArrivalRegime regime) {
  return regime == ArrivalRegime::kPoisson ? "poisson" : "bursty";
}

std::vector<JobClass> fleet_catalog() {
  // Checkpoint costs are Table 1's nine applications; work sizes and weights
  // add the fleet dimension: frequent short jobs at the light end, rarer
  // long-running campaigns at the heavy-checkpoint end.
  return {
      {"cesm", hours(2.0), seconds(1.5), 3.0, 0.25},
      {"reanalysis", hours(4.0), seconds(2.0), 2.0, 0.25},
      {"molsim", hours(8.0), seconds(6.0), 2.0, 0.25},
      {"tfbind", hours(1.0), seconds(50.0), 3.0, 0.25},
      {"chombo", hours(6.0), seconds(70.0), 1.5, 0.25},
      {"climate-sef", hours(12.0), seconds(150.0), 1.0, 0.25},
      {"lpi", hours(24.0), seconds(1800.0), 0.7, 0.25},
      {"pba", hours(30.0), seconds(2000.0), 0.5, 0.25},
      {"plasma", hours(40.0), seconds(2700.0), 0.3, 0.25},
  };
}

std::vector<BatchJobSpec> generate_arrivals(const std::vector<JobClass>& catalog,
                                            const ArrivalConfig& config,
                                            std::size_t count, Rng& rng) {
  SHIRAZ_REQUIRE(!catalog.empty(), "empty job catalog");
  SHIRAZ_REQUIRE(config.mean_interarrival > 0.0,
                 "mean inter-arrival must be positive");
  double total_weight = 0.0;
  for (const JobClass& c : catalog) {
    SHIRAZ_REQUIRE(c.work > 0.0, "job class work must be positive: " + c.name);
    SHIRAZ_REQUIRE(c.checkpoint_cost > 0.0,
                   "job class checkpoint cost must be positive: " + c.name);
    SHIRAZ_REQUIRE(c.weight > 0.0, "job class weight must be positive: " + c.name);
    SHIRAZ_REQUIRE(c.work_jitter >= 0.0 && c.work_jitter < 1.0,
                   "work jitter must be in [0, 1): " + c.name);
    total_weight += c.weight;
  }

  // Bursty arrivals during an on-phase come `on_fraction` times faster than
  // the long-run rate, so on/off averaging restores `mean_interarrival`.
  Seconds on_gap_mean = config.mean_interarrival;
  if (config.regime == ArrivalRegime::kBursty) {
    SHIRAZ_REQUIRE(config.mean_on > 0.0 && config.mean_off > 0.0,
                   "bursty phase durations must be positive");
    const double on_fraction =
        config.mean_on / (config.mean_on + config.mean_off);
    on_gap_mean = config.mean_interarrival * on_fraction;
  }

  std::vector<BatchJobSpec> jobs;
  jobs.reserve(count);
  Seconds now = 0.0;
  Seconds on_remaining = config.regime == ArrivalRegime::kBursty
                             ? exponential_gap(rng, config.mean_on)
                             : 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    Seconds gap = exponential_gap(rng, on_gap_mean);
    if (config.regime == ArrivalRegime::kBursty) {
      // Walk the gap across as many on/off cycles as it spans: off-phases
      // advance the clock but never host an arrival.
      while (gap >= on_remaining) {
        gap -= on_remaining;
        now += on_remaining + exponential_gap(rng, config.mean_off);
        on_remaining = exponential_gap(rng, config.mean_on);
      }
      on_remaining -= gap;
    }
    now += gap;

    const double pick = rng.uniform() * total_weight;
    std::size_t cls = 0;
    double cumulative = 0.0;
    for (std::size_t c = 0; c < catalog.size(); ++c) {
      cumulative += catalog[c].weight;
      if (pick < cumulative) {
        cls = c;
        break;
      }
    }
    const JobClass& klass = catalog[cls];
    const double scale =
        rng.uniform(1.0 - klass.work_jitter, 1.0 + klass.work_jitter);
    jobs.push_back({klass.name + "#" + std::to_string(i), klass.work * scale,
                    klass.checkpoint_cost, now});
  }
  return jobs;
}

}  // namespace shiraz::sched
