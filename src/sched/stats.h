// Campaign-level statistics for workload-manager runs.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.h"
#include "sched/batch_job.h"

namespace shiraz::sched {

struct CampaignStats {
  std::vector<BatchJobRecord> jobs;
  /// Completion time of the last finished job (horizon if any job is cut off).
  Seconds makespan = 0.0;
  Seconds horizon = 0.0;
  std::size_t failures = 0;
  Seconds idle = 0.0;

  std::size_t completed_count() const;
  Seconds total_useful() const;
  Seconds total_io() const;
  Seconds total_lost() const;
  /// Mean turnaround across completed jobs; 0 when none completed.
  Seconds mean_turnaround() const;
  Seconds max_turnaround() const;

  const BatchJobRecord& job(const std::string& name) const;
};

}  // namespace shiraz::sched
