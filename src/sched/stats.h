// Campaign-level statistics for workload-manager runs.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.h"
#include "sched/batch_job.h"

namespace shiraz::sched {

struct CampaignStats {
  std::vector<BatchJobRecord> jobs;
  /// Completion time of the last finished job (horizon if any job is cut off).
  Seconds makespan = 0.0;
  Seconds horizon = 0.0;
  /// Simulated span: the campaign ends when the queue drains or the horizon
  /// hits, so elapsed == min(makespan, horizon) for a single run (mean of
  /// that across reps in the averaged view). The accounting invariant is
  /// total_useful() + total_io() + total_lost() + idle == elapsed.
  Seconds elapsed = 0.0;
  double failures = 0.0;
  Seconds idle = 0.0;
  /// Repetitions averaged into this view (1 for a single run).
  std::size_t reps = 1;

  /// Jobs that completed in at least one repetition.
  std::size_t completed_count() const;
  /// Fraction of (job, repetition) samples that completed.
  double completion_rate() const;
  Seconds total_useful() const;
  Seconds total_io() const;
  Seconds total_lost() const;
  /// Mean turnaround across jobs that completed at least once (each job
  /// contributing its mean over the reps it completed in); 0 when none did.
  Seconds mean_turnaround() const;
  Seconds max_turnaround() const;

  const BatchJobRecord& job(const std::string& name) const;
};

/// Rep-order mean of per-repetition campaign stats: time fields and counts
/// average over all reps; start/completion times average over the reps where
/// the job started/completed (see BatchJobRecord). Throws on empty input or
/// mismatched job lists.
CampaignStats mean_of_reps(const std::vector<CampaignStats>& per_rep);

}  // namespace shiraz::sched
