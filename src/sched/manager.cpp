#include "sched/manager.h"

#include <algorithm>
#include <limits>
#include <map>

#include "common/error.h"
#include "core/switch_solver.h"

namespace shiraz::sched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

WorkloadManager::WorkloadManager(const reliability::Distribution& failure_dist,
                                 const ManagerConfig& config)
    : failure_dist_(failure_dist.clone()), config_(config) {
  SHIRAZ_REQUIRE(config.horizon > 0.0, "horizon must be positive");
  SHIRAZ_REQUIRE(config.nominal_mtbf > 0.0, "nominal MTBF must be positive");
  SHIRAZ_REQUIRE(config.hw_stretch >= 1, "stretch must be >= 1");
}

CampaignStats WorkloadManager::run(const std::vector<BatchJobSpec>& jobs,
                                   Policy policy, Rng& rng) const {
  SHIRAZ_REQUIRE(!jobs.empty(), "no jobs submitted");
  for (const BatchJobSpec& job : jobs) {
    SHIRAZ_REQUIRE(job.work > 0.0, "job work must be positive: " + job.name);
    SHIRAZ_REQUIRE(job.checkpoint_cost > 0.0,
                   "job checkpoint cost must be positive: " + job.name);
    SHIRAZ_REQUIRE(job.submit_time >= 0.0, "negative submit time: " + job.name);
  }

  CampaignStats stats;
  stats.horizon = config_.horizon;
  stats.jobs.resize(jobs.size());
  std::vector<Seconds> remaining(jobs.size());
  std::vector<Seconds> interval(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    stats.jobs[i].name = jobs[i].name;
    stats.jobs[i].submit_time = jobs[i].submit_time;
    remaining[i] = jobs[i].work;
    interval[i] = checkpoint::optimal_interval(
        config_.nominal_mtbf, jobs[i].checkpoint_cost, config_.oci_formula);
  }

  // Pending jobs in FCFS (submit-time) order.
  std::vector<std::size_t> pending(jobs.size());
  for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = i;
  std::stable_sort(pending.begin(), pending.end(), [&](std::size_t a, std::size_t b) {
    return jobs[a].submit_time < jobs[b].submit_time;
  });

  std::vector<std::size_t> active;  // at most two machine-sharing jobs
  std::vector<std::size_t> ckpts_in_gap(jobs.size(), 0);
  std::optional<int> pair_k;  // Shiraz switch point; nullopt = alternate
  std::map<std::pair<std::size_t, std::size_t>, std::optional<int>> k_cache;
  std::size_t gap_index = 0;

  Seconds now = 0.0;
  Seconds next_fail = failure_dist_->sample(rng);

  auto light_of_pair = [&]() {
    return jobs[active[0]].checkpoint_cost <= jobs[active[1]].checkpoint_cost
               ? active[0]
               : active[1];
  };
  auto heavy_of_pair = [&]() {
    return jobs[active[0]].checkpoint_cost <= jobs[active[1]].checkpoint_cost
               ? active[1]
               : active[0];
  };

  auto resolve_pair = [&]() {
    if (policy != Policy::kShirazPairing || active.size() < 2) {
      pair_k = std::nullopt;
      return;
    }
    const std::size_t lw = light_of_pair();
    const std::size_t hw = heavy_of_pair();
    const auto key = std::make_pair(lw, hw);
    const auto cached = k_cache.find(key);
    if (cached != k_cache.end()) {
      pair_k = cached->second;
      return;
    }
    core::ModelConfig mcfg;
    mcfg.mtbf = config_.nominal_mtbf;
    mcfg.weibull_shape = config_.weibull_shape;
    mcfg.epsilon = config_.epsilon;
    mcfg.t_total = config_.horizon;
    mcfg.oci_formula = config_.oci_formula;
    const core::ShirazModel model(mcfg);
    core::SolverOptions opts;
    opts.keep_sweep = false;
    const core::SwitchSolution sol = core::solve_switch_point(
        model, core::AppSpec{jobs[lw].name, jobs[lw].checkpoint_cost, 1},
        core::AppSpec{jobs[hw].name, jobs[hw].checkpoint_cost, config_.hw_stretch},
        opts);
    pair_k = sol.k;
    k_cache[key] = pair_k;
  };

  // Fills free machine slots from the eligible pending jobs; returns true
  // when the active set changed (which resets the within-gap switch state).
  auto activate = [&]() {
    bool changed = false;
    while (active.size() < 2 && !pending.empty() &&
           jobs[pending.front()].submit_time <= now) {
      const std::size_t job = pending.front();
      pending.erase(pending.begin());
      active.push_back(job);
      if (!stats.jobs[job].started()) stats.jobs[job].start_time = now;
      changed = true;
    }
    if (changed) {
      std::fill(ckpts_in_gap.begin(), ckpts_in_gap.end(), 0);
      resolve_pair();
    }
    return changed;
  };

  auto next_arrival = [&]() {
    return pending.empty() ? kInf : jobs[pending.front()].submit_time;
  };

  // Which active job runs right now, given the within-gap state.
  auto pick_current = [&]() -> std::size_t {
    if (active.size() == 1) return active[0];
    if (policy == Policy::kShirazPairing && pair_k) {
      const std::size_t lw = light_of_pair();
      if (*pair_k > 0 && ckpts_in_gap[lw] < static_cast<std::size_t>(*pair_k)) {
        return lw;
      }
      return heavy_of_pair();
    }
    // Baseline (and non-beneficial pairs): alternate at every failure.
    return active[gap_index % active.size()];
  };

  auto handle_failure = [&](std::optional<std::size_t> hit) {
    ++stats.failures;
    ++gap_index;
    if (hit) ++stats.jobs[*hit].failures_hit;
    next_fail = now + failure_dist_->sample(rng);
    std::fill(ckpts_in_gap.begin(), ckpts_in_gap.end(), 0);
  };

  activate();
  while (now < config_.horizon) {
    if (active.empty()) {
      const Seconds until = std::min({next_arrival(), next_fail, config_.horizon});
      stats.idle += until - now;
      now = until;
      if (now >= config_.horizon) break;
      if (now >= next_fail) handle_failure(std::nullopt);
      activate();
      continue;
    }

    const std::size_t job = pick_current();
    BatchJobRecord& rec = stats.jobs[job];

    // Shiraz+ stretches the *heavy* member of an active pair; everyone else
    // runs at their OCI.
    Seconds job_interval = interval[job];
    if (policy == Policy::kShirazPairing && config_.hw_stretch > 1 &&
        active.size() == 2 && pair_k && job == heavy_of_pair()) {
      job_interval *= static_cast<double>(config_.hw_stretch);
    }

    // One segment: compute (capped by the remaining work) then checkpoint
    // (skipped on the completing segment — a finishing job just ends).
    const bool completing = remaining[job] <= job_interval;
    const Seconds run_time = completing ? remaining[job] : job_interval;
    const Seconds delta = completing ? 0.0 : jobs[job].checkpoint_cost;
    const Seconds seg_end = now + run_time + delta;

    if (config_.horizon <= std::min(seg_end, next_fail)) {
      rec.lost += config_.horizon - now;  // work in flight at the horizon
      now = config_.horizon;
      break;
    }
    if (next_fail < seg_end) {
      rec.lost += next_fail - now;
      now = next_fail;
      handle_failure(job);
      activate();
      continue;
    }

    now = seg_end;
    rec.useful += run_time;
    remaining[job] -= run_time;
    if (completing) {
      rec.completion_time = now;
      stats.makespan = std::max(stats.makespan, now);
      active.erase(std::find(active.begin(), active.end(), job));
      std::fill(ckpts_in_gap.begin(), ckpts_in_gap.end(), 0);
      activate();
      resolve_pair();
    } else {
      rec.io += delta;
      ++rec.checkpoints;
      ++ckpts_in_gap[job];
      activate();  // a new arrival may fill an empty second slot
    }
  }

  // Jobs cut off by the horizon stretch the makespan to the horizon.
  for (const BatchJobRecord& rec : stats.jobs) {
    if (!rec.completed()) stats.makespan = config_.horizon;
  }
  return stats;
}

CampaignStats WorkloadManager::run_many(const std::vector<BatchJobSpec>& jobs,
                                        Policy policy, std::size_t reps,
                                        std::uint64_t seed) const {
  SHIRAZ_REQUIRE(reps >= 1, "need at least one repetition");
  Rng master(seed);
  CampaignStats acc;
  for (std::size_t r = 0; r < reps; ++r) {
    Rng rng = master.fork(r);
    const CampaignStats one = run(jobs, policy, rng);
    if (r == 0) {
      acc = one;
      continue;
    }
    for (std::size_t i = 0; i < acc.jobs.size(); ++i) {
      acc.jobs[i].useful += one.jobs[i].useful;
      acc.jobs[i].io += one.jobs[i].io;
      acc.jobs[i].lost += one.jobs[i].lost;
      acc.jobs[i].checkpoints += one.jobs[i].checkpoints;
      acc.jobs[i].failures_hit += one.jobs[i].failures_hit;
      // Average latencies only over runs where the job completed in both.
      if (acc.jobs[i].completed() && one.jobs[i].completed()) {
        acc.jobs[i].completion_time += one.jobs[i].completion_time;
      } else {
        acc.jobs[i].completion_time = -1.0;
      }
    }
    acc.failures += one.failures;
    acc.idle += one.idle;
    acc.makespan += one.makespan;
  }
  const double n = static_cast<double>(reps);
  for (auto& rec : acc.jobs) {
    rec.useful /= n;
    rec.io /= n;
    rec.lost /= n;
    rec.checkpoints = static_cast<std::size_t>(static_cast<double>(rec.checkpoints) / n);
    rec.failures_hit =
        static_cast<std::size_t>(static_cast<double>(rec.failures_hit) / n);
    if (rec.completed()) rec.completion_time /= n;
  }
  acc.failures = static_cast<std::size_t>(static_cast<double>(acc.failures) / n);
  acc.idle /= n;
  acc.makespan /= n;
  return acc;
}

}  // namespace shiraz::sched
