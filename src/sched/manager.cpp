#include "sched/manager.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <numeric>
#include <optional>
#include <utility>

#include "common/error.h"
#include "obs/metrics.h"
#include "sim/engine.h"
#include "sim/job.h"
#include "sim/optimizer.h"

namespace shiraz::sched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Resolved registry handles for one run(); null registry = all null.
/// Counters are pure observers of decisions already taken — no campaign
/// branch reads them — and u64 sums commute, so totals are worker-invariant.
struct ManagerCounters {
  obs::Counter* submitted = nullptr;
  obs::Counter* completed = nullptr;
  obs::Counter* solve_fixed = nullptr;
  obs::Counter* solve_sim = nullptr;
  obs::Counter* solve_analytical = nullptr;

  explicit ManagerCounters(obs::MetricsRegistry* registry) {
    if (registry == nullptr) return;
    submitted = &registry->counter("shiraz_sched_jobs_submitted_total",
                                   "jobs submitted across campaigns");
    completed = &registry->counter("shiraz_sched_jobs_completed_total",
                                   "jobs completed across campaigns");
    solve_fixed = &registry->counter("shiraz_sched_solve_fixed_total",
                                     "pair solves short-circuited by fixed_pair_k");
    solve_sim = &registry->counter("shiraz_sched_solve_sim_total",
                                   "pair solves routed through simulation");
    solve_analytical = &registry->counter(
        "shiraz_sched_solve_analytical_total",
        "pair solves routed through the analytical cache");
  }
};
}

/// Memo for sim-backed switch-point solves: one entry per distinct
/// (delta_LW, delta_HW) signature (the other solve inputs are fixed by the
/// manager's config). The solve is deterministic, so a racing duplicate
/// compute lands on identical bits and first-insert-wins is safe.
struct WorkloadManager::SimSolveMemo {
  std::mutex mu;
  std::map<std::pair<Seconds, Seconds>, std::optional<int>> k_by_pair;
};

WorkloadManager::WorkloadManager(const reliability::Distribution& failure_dist,
                                 const ManagerConfig& config)
    : WorkloadManager(failure_dist, config,
                      std::make_shared<core::SolverCache>()) {}

WorkloadManager::WorkloadManager(const reliability::Distribution& failure_dist,
                                 const ManagerConfig& config,
                                 std::shared_ptr<const core::SolverCache> cache)
    : failure_dist_(failure_dist.clone()), config_(config),
      cache_(std::move(cache)),
      sim_memo_(std::make_shared<SimSolveMemo>()) {
  SHIRAZ_REQUIRE(config.horizon > 0.0, "horizon must be positive");
  SHIRAZ_REQUIRE(config.nominal_mtbf > 0.0, "nominal MTBF must be positive");
  SHIRAZ_REQUIRE(config.hw_stretch >= 1, "stretch must be >= 1");
  SHIRAZ_REQUIRE(config.restart_cost >= 0.0, "restart cost must be >= 0");
  SHIRAZ_REQUIRE(config.fixed_pair_k >= 0, "fixed pair k must be >= 0");
  SHIRAZ_REQUIRE(config.sim_solve_max_k >= 1, "sim solve max k must be >= 1");
  SHIRAZ_REQUIRE(cache_ != nullptr, "solver cache must not be null");
}

std::optional<int> WorkloadManager::sim_solve_k(Seconds delta_lw,
                                                Seconds delta_hw) const {
  const std::pair<Seconds, Seconds> sig(delta_lw, delta_hw);
  {
    const std::lock_guard<std::mutex> lock(sim_memo_->mu);
    const auto it = sim_memo_->k_by_pair.find(sig);
    if (it != sim_memo_->k_by_pair.end()) return it->second;
  }
  // The same model signature the analytical path solves, evaluated by
  // simulation against the real failure distribution instead of the nominal
  // Weibull model. The solve's failure streams come from sim_solve_seed —
  // disjoint from the campaign's own Rng — and the engine's flat replay
  // kernel (free restarts/switches, periodic OCI schedules) batches the
  // whole k scan, so the solve costs milliseconds, not campaigns.
  sim::EngineConfig ecfg;
  ecfg.t_total = config_.horizon;
  const sim::Engine engine(*failure_dist_, ecfg);
  const sim::SimJob lw = sim::SimJob::at_oci("lw", delta_lw, config_.nominal_mtbf,
                                             1, config_.oci_formula);
  const sim::SimJob hw = sim::SimJob::at_oci("hw", delta_hw, config_.nominal_mtbf,
                                             config_.hw_stretch,
                                             config_.oci_formula);
  const sim::SimSwitchSolution sol = sim::find_fair_k_by_simulation(
      engine, lw, hw, 1, config_.sim_solve_max_k, config_.sim_solve_reps,
      config_.sim_solve_seed, /*workers=*/1);
  const std::lock_guard<std::mutex> lock(sim_memo_->mu);
  return sim_memo_->k_by_pair.try_emplace(sig, sol.k).first->second;
}

core::SolverCacheKey WorkloadManager::cache_key(Seconds delta_lw,
                                                Seconds delta_hw) const {
  core::SolverCacheKey key;
  key.mtbf = config_.nominal_mtbf;
  key.weibull_shape = config_.weibull_shape;
  key.epsilon = config_.epsilon;
  key.t_total = config_.horizon;
  key.oci_formula = config_.oci_formula;
  key.delta_lw = delta_lw;
  key.delta_hw = delta_hw;
  key.hw_stretch = config_.hw_stretch;
  return key;
}

CampaignStats WorkloadManager::run(const std::vector<BatchJobSpec>& jobs,
                                   Policy policy, Rng& rng) const {
  SHIRAZ_REQUIRE(!jobs.empty(), "no jobs submitted");
  for (const BatchJobSpec& job : jobs) {
    SHIRAZ_REQUIRE(job.work > 0.0, "job work must be positive: " + job.name);
    SHIRAZ_REQUIRE(job.checkpoint_cost > 0.0,
                   "job checkpoint cost must be positive: " + job.name);
    SHIRAZ_REQUIRE(job.submit_time >= 0.0, "negative submit time: " + job.name);
  }

  const ManagerCounters counters(config_.metrics);
  if (counters.submitted != nullptr) counters.submitted->add(jobs.size());

  CampaignStats stats;
  stats.horizon = config_.horizon;
  stats.jobs.resize(jobs.size());
  std::vector<Seconds> remaining(jobs.size());
  std::vector<Seconds> interval(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    stats.jobs[i].name = jobs[i].name;
    stats.jobs[i].submit_time = jobs[i].submit_time;
    remaining[i] = jobs[i].work;
    interval[i] = checkpoint::optimal_interval(
        config_.nominal_mtbf, jobs[i].checkpoint_cost, config_.oci_formula);
  }

  // Pending jobs as a submit-sorted arrival list walked by a head cursor;
  // `taken` marks positions activated out of order (contrast slot-fill), so
  // queue operations stay O(1) amortized at 10k-job scale.
  const std::size_t n = jobs.size();
  std::vector<std::size_t> arrivals(n);
  std::iota(arrivals.begin(), arrivals.end(), std::size_t{0});
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [&](std::size_t a, std::size_t b) {
                     return jobs[a].submit_time < jobs[b].submit_time;
                   });
  std::vector<char> taken(n, 0);
  std::size_t head = 0;
  auto advance_head = [&]() {
    while (head < n && taken[head] != 0) ++head;
  };

  std::vector<std::size_t> active;  // at most two machine-sharing jobs
  active.reserve(2);
  std::optional<int> pair_k;  // Shiraz switch point; nullopt = alternate
  std::size_t gap_index = 0;
  // Checkpoints the pair's light member took in the current gap (the only
  // count the k-switch consults). Reset on failures and active-set changes.
  std::size_t gap_ckpts = 0;

  Seconds now = 0.0;
  Seconds next_fail = failure_dist_->sample(rng);

  auto light_of_pair = [&]() {
    return jobs[active[0]].checkpoint_cost <= jobs[active[1]].checkpoint_cost
               ? active[0]
               : active[1];
  };
  auto heavy_of_pair = [&]() {
    return jobs[active[0]].checkpoint_cost <= jobs[active[1]].checkpoint_cost
               ? active[1]
               : active[0];
  };

  auto resolve_pair = [&]() {
    if (policy != Policy::kShirazPairing || active.size() < 2) {
      pair_k = std::nullopt;
      return;
    }
    if (config_.fixed_pair_k > 0) {
      pair_k = config_.fixed_pair_k;
      if (counters.solve_fixed != nullptr) counters.solve_fixed->add(1);
      return;
    }
    const std::size_t lw = light_of_pair();
    const std::size_t hw = heavy_of_pair();
    if (config_.sim_solve_reps > 0) {
      // Simulation-backed solve on the flat replay kernel, memoized per
      // signature (see sim_solve_k).
      pair_k = sim_solve_k(jobs[lw].checkpoint_cost, jobs[hw].checkpoint_cost);
      if (counters.solve_sim != nullptr) counters.solve_sim->add(1);
      return;
    }
    // The shared memo table: every distinct signature across this run, all
    // repetitions, and any co-owner of the cache is solved exactly once.
    pair_k = cache_
                 ->solve(cache_key(jobs[lw].checkpoint_cost,
                                   jobs[hw].checkpoint_cost))
                 .k;
    if (counters.solve_analytical != nullptr) counters.solve_analytical->add(1);
  };

  auto take = [&](std::size_t pos) {
    const std::size_t job = arrivals[pos];
    taken[pos] = 1;
    active.push_back(job);
    if (!stats.jobs[job].started()) stats.jobs[job].start_time = now;
    advance_head();
  };

  // The eligible arrival position that should fill the second machine slot,
  // given the occupant: FCFS takes the oldest, contrast the one maximizing
  // the checkpoint-cost ratio against the occupant (ties in queue order).
  auto pick_second = [&]() -> std::optional<std::size_t> {
    advance_head();
    if (head >= n || jobs[arrivals[head]].submit_time > now) return std::nullopt;
    if (config_.slot_fill == SlotFill::kFcfs) return head;
    const double occupant = jobs[active[0]].checkpoint_cost;
    std::size_t best = head;
    double best_contrast = -1.0;
    for (std::size_t p = head; p < n; ++p) {
      if (taken[p] != 0) continue;
      if (jobs[arrivals[p]].submit_time > now) break;
      const double contrast =
          std::abs(std::log(jobs[arrivals[p]].checkpoint_cost / occupant));
      if (contrast > best_contrast) {
        best_contrast = contrast;
        best = p;
      }
    }
    return best;
  };

  // Fills free machine slots from the eligible pending jobs; returns true
  // when the active set changed (which resets the within-gap switch state).
  auto activate = [&]() {
    bool changed = false;
    advance_head();
    if (active.empty() && head < n && jobs[arrivals[head]].submit_time <= now) {
      take(head);
      changed = true;
    }
    if (active.size() == 1) {
      if (const auto pos = pick_second()) {
        take(*pos);
        changed = true;
      }
    }
    if (changed) {
      gap_ckpts = 0;
      resolve_pair();
    }
    return changed;
  };

  auto next_arrival = [&]() {
    return head < n ? jobs[arrivals[head]].submit_time : kInf;
  };

  // Which active job runs right now, given the within-gap state.
  auto pick_current = [&]() -> std::size_t {
    if (active.size() == 1) return active[0];
    if (policy == Policy::kShirazPairing && pair_k) {
      if (*pair_k > 0 && gap_ckpts < static_cast<std::size_t>(*pair_k)) {
        return light_of_pair();
      }
      return heavy_of_pair();
    }
    // Baseline (and non-beneficial pairs): alternate at every failure.
    return active[gap_index % active.size()];
  };

  auto handle_failure = [&](std::optional<std::size_t> hit) {
    stats.failures += 1.0;
    ++gap_index;
    gap_ckpts = 0;
    next_fail = now + failure_dist_->sample(rng);
    if (hit) {
      stats.jobs[*hit].failures_hit += 1.0;
      // Restart downtime before the post-failure segment, charged as lost
      // time to the job that must roll back. An idle machine (hit == nullopt)
      // restarts nothing.
      if (config_.restart_cost > 0.0) {
        const Seconds until =
            std::min(now + config_.restart_cost, config_.horizon);
        stats.jobs[*hit].lost += until - now;
        now = until;
      }
    }
  };

  activate();
  while (now < config_.horizon) {
    if (active.empty()) {
      advance_head();
      if (head == n) break;  // queue drained: no work will ever arrive again
      const Seconds until = std::min({next_arrival(), next_fail, config_.horizon});
      stats.idle += until - now;
      now = until;
      if (now >= config_.horizon) break;
      if (now >= next_fail) handle_failure(std::nullopt);
      activate();
      continue;
    }

    const std::size_t job = pick_current();
    BatchJobRecord& rec = stats.jobs[job];

    // A failure due now (at a segment boundary, or during restart downtime)
    // hits whoever would run next, destroying nothing in flight.
    if (next_fail <= now) {
      handle_failure(job);
      activate();
      continue;
    }

    // Shiraz+ stretches the *heavy* member of an active pair; everyone else
    // runs at their OCI.
    Seconds job_interval = interval[job];
    if (policy == Policy::kShirazPairing && config_.hw_stretch > 1 &&
        active.size() == 2 && pair_k && job == heavy_of_pair()) {
      job_interval *= static_cast<double>(config_.hw_stretch);
    }

    // One segment: compute (capped by the remaining work) then checkpoint
    // (skipped on the completing segment — a finishing job just ends).
    const bool completing = remaining[job] <= job_interval;
    const Seconds run_time = completing ? remaining[job] : job_interval;
    const Seconds delta = completing ? 0.0 : jobs[job].checkpoint_cost;
    const Seconds seg_end = now + run_time + delta;

    if (config_.horizon <= std::min(seg_end, next_fail)) {
      rec.lost += config_.horizon - now;  // work in flight at the horizon
      now = config_.horizon;
      break;
    }
    if (next_fail < seg_end) {
      rec.lost += next_fail - now;
      now = next_fail;
      handle_failure(job);
      activate();
      continue;
    }

    now = seg_end;
    rec.useful += run_time;
    remaining[job] -= run_time;
    if (completing) {
      rec.completion_time = now;
      stats.makespan = std::max(stats.makespan, now);
      active.erase(std::find(active.begin(), active.end(), job));
      gap_ckpts = 0;
      activate();
      resolve_pair();
    } else {
      rec.io += delta;
      rec.checkpoints += 1.0;
      if (active.size() == 2 && job == light_of_pair()) ++gap_ckpts;
      activate();  // a new arrival may fill an empty second slot
    }
  }

  stats.elapsed = std::min(now, config_.horizon);
  // Jobs cut off by the horizon stretch the makespan to the horizon.
  std::uint64_t completed = 0;
  for (BatchJobRecord& rec : stats.jobs) {
    if (rec.started()) rec.started_reps = 1;
    if (rec.completed()) {
      rec.completed_reps = 1;
      ++completed;
    } else {
      stats.makespan = config_.horizon;
    }
  }
  if (counters.completed != nullptr) counters.completed->add(completed);
  return stats;
}

std::vector<CampaignStats> WorkloadManager::run_reps(
    const std::vector<BatchJobSpec>& jobs, Policy policy, std::size_t reps,
    std::uint64_t seed, const CampaignRunOptions& options) const {
  SHIRAZ_REQUIRE(reps >= 1, "need at least one repetition");
  std::vector<CampaignStats> per_rep(reps);
  const Rng master(seed);
  auto run_one = [&](std::size_t r) {
    Rng rng = master.fork(r);
    per_rep[r] = run(jobs, policy, rng);
  };
  if (options.workers <= 1 || reps == 1) {
    for (std::size_t r = 0; r < reps; ++r) run_one(r);
  } else {
    common::PoolHandle pool(options.pool, std::min(options.workers, reps));
    common::parallel_for_indexed(pool.get(), reps, run_one);
  }
  return per_rep;
}

CampaignStats WorkloadManager::run_many(const std::vector<BatchJobSpec>& jobs,
                                        Policy policy, std::size_t reps,
                                        std::uint64_t seed,
                                        const CampaignRunOptions& options) const {
  return mean_of_reps(run_reps(jobs, policy, reps, seed, options));
}

CampaignDistribution WorkloadManager::run_distribution(
    const std::vector<BatchJobSpec>& jobs, Policy policy, std::size_t reps,
    std::uint64_t seed, const CampaignRunOptions& options) const {
  return build_distribution(jobs, run_reps(jobs, policy, reps, seed, options));
}

}  // namespace shiraz::sched
