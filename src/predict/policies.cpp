#include "predict/policies.h"

#include <sstream>

namespace shiraz::predict {

sim::AlarmAction checkpoint_on_credible_alarm(const sim::SchedContext& ctx) {
  if (ctx.alarm_lead < ctx.current_delta) return sim::AlarmAction::ignore();
  // Start the write so it completes exactly at the claimed failure time:
  // every second of compute up to the write start is sealed, and an accurate
  // alarm loses nothing (the engine treats a write finishing at the failure
  // instant as sealed).
  return sim::AlarmAction::checkpoint_after(ctx.alarm_lead - ctx.current_delta);
}

std::string PredictiveShirazScheduler::name() const {
  std::ostringstream os;
  os << "PredictiveShiraz(k=" << k() << ")";
  return os.str();
}

}  // namespace shiraz::predict
