// Honest failure predictor built on the repo's online Weibull estimator.
//
// Shiraz's own premise (paper Section 2) is that failures recur: with Weibull
// shape < 1 the hazard rate is highest right after a failure and decays until
// the next one. This predictor operationalizes that as alarms: it keeps the
// adaptive module's sliding-window Weibull MLE of the observed gaps and, at
// the start of each new gap, raises alarms on a fixed evaluation grid while
// the fitted hazard still exceeds a threshold. Unlike the oracle it never
// looks at the gap's true length before emitting — only after, as the next
// training sample — so its realized precision/recall are genuine measurements.
#pragma once

#include <memory>

#include "adaptive/online_estimator.h"
#include "predict/predictor.h"

namespace shiraz::predict {

struct HazardConfig {
  /// Sliding-window Weibull MLE configuration (prior MTBF/shape, window).
  adaptive::EstimatorConfig estimator;
  /// Alarm while the fitted hazard (failures per hour) is at or above this.
  /// With shape < 1 the hazard decays monotonically within a gap, so raising
  /// the threshold can only shorten the alarmed prefix of each gap.
  double threshold_per_hour = 0.3;
  /// Spacing of the evaluation grid within a gap.
  Seconds eval_period = minutes(10.0);
  /// Claimed time-to-failure attached to every alarm.
  Seconds lead = minutes(10.0);
  /// Cap on alarms per gap (the hazard of a fresh Weibull fit with shape < 1
  /// diverges at 0, so the first grid point almost always alarms).
  std::size_t max_alarms_per_gap = 4;
};

class HazardThresholdPredictor final : public Predictor {
 public:
  explicit HazardThresholdPredictor(const HazardConfig& config);

  const HazardConfig& config() const { return config_; }
  /// Current fit (prior until the estimator warms up).
  adaptive::FailureEstimate estimate() const { return estimator_.estimate(); }

  std::string name() const override;
  std::unique_ptr<sim::AlarmSource> clone() const override {
    return std::make_unique<HazardThresholdPredictor>(*this);
  }

 protected:
  std::vector<sim::Alarm> emit(Seconds gap_start, Seconds gap_length,
                               Rng& rng) const override;
  void on_reset() const override { estimator_.reset(); }

 private:
  HazardConfig config_;
  mutable adaptive::OnlineWeibullEstimator estimator_;  ///< run state
};

}  // namespace shiraz::predict
