#include "predict/prediction_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "reliability/weibull.h"

namespace shiraz::predict {

PredictionModel::PredictionModel(const PredictionModelConfig& config)
    : config_(config) {
  SHIRAZ_REQUIRE(config.mtbf > 0.0, "MTBF must be positive");
  SHIRAZ_REQUIRE(config.weibull_shape > 0.0, "Weibull shape must be positive");
  SHIRAZ_REQUIRE(config.epsilon > 0.0 && config.epsilon < 1.0,
                 "epsilon must be in (0, 1)");
  SHIRAZ_REQUIRE(config.t_total > 0.0, "horizon must be positive");
}

PredictionEstimate PredictionModel::single_app(Seconds delta,
                                               const PredictorSpec& spec) const {
  SHIRAZ_REQUIRE(delta > 0.0, "checkpoint cost must be positive");
  SHIRAZ_REQUIRE(spec.precision > 0.0 && spec.precision <= 1.0,
                 "precision must be in (0, 1]");
  SHIRAZ_REQUIRE(spec.recall >= 0.0 && spec.recall <= 1.0,
                 "recall must be in [0, 1]");
  SHIRAZ_REQUIRE(spec.lead >= 0.0, "lead must be non-negative");

  const Seconds tau =
      checkpoint::optimal_interval(config_.mtbf, delta, config_.oci_formula);
  const Seconds seg = tau + delta;
  const double failures = config_.t_total / config_.mtbf;
  // Fraction of gaps too short for even an instant proactive write: the
  // truthful (clamped) alarm lead in such a gap is below delta, so the
  // policy ignores the alarm.
  const double short_gap =
      reliability::Weibull::from_mtbf(config_.weibull_shape, config_.mtbf)
          .cdf(delta);

  double lost_per_failure = config_.epsilon * seg;
  double proactive_per_failure = 0.0;
  if (spec.lead >= delta && spec.recall > 0.0) {
    const double write_frac = delta / seg;
    // A true alarm aims its proactive write to complete exactly at the
    // failure; the simulator keeps at most one pending proactive and a later
    // alarm replaces it, so a false alarm landing *after* the true one aims
    // the pending past the failure and spoils the rescue.
    const double false_rate =
        spec.recall * (1.0 - spec.precision) / (spec.precision * config_.mtbf);
    const double spoiled = 1.0 - std::exp(-false_rate * spec.lead);
    const double predicted_long = spec.recall * (1.0 - short_gap);
    // Rescued failures: write completes at the failure instant — lossless —
    // unless it collides with a scheduled write window (probability
    // write_frac); then the scheduled write seals the segment instead and
    // only the fresh compute after it (at most delta, delta/2 on average)
    // is lost.
    const double handled = predicted_long * (1.0 - spoiled);
    // Predicted but the gap is shorter than delta: nothing can be sealed;
    // the whole short gap (at most delta of work) is lost.
    const double short_pred = spec.recall * short_gap;
    lost_per_failure = handled * write_frac * (delta / 2.0) +
                       predicted_long * spoiled * config_.epsilon * seg +
                       short_pred * (delta / 2.0) +
                       (1.0 - spec.recall) * config_.epsilon * seg;
    // Proactive writes: one per rescue that escapes the write-window
    // collision, plus the acted-on false alarms — recall * (1-p)/p per
    // failure by the oracle's construction, same collision discount.
    const double false_per_failure =
        spec.recall * (1.0 - spec.precision) / spec.precision;
    proactive_per_failure =
        (handled + false_per_failure) * (1.0 - write_frac) * delta;
  }

  PredictionEstimate est;
  est.lost = failures * lost_per_failure;
  est.proactive_io = failures * proactive_per_failure;
  // Every executed proactive write cuts a segment short: the compute it seals
  // (on average half an interval, the alarm being uniform over the cycle)
  // becomes useful work that never pays a *scheduled* checkpoint, so it must
  // not go through the tau:delta ratio split below.
  const double sealed_tails =
      delta > 0.0 ? est.proactive_io / delta * (tau / 2.0) : 0.0;
  // Whatever the failures and proactive writes leave behind is spent walking
  // regular segments: tau useful + delta I/O per segment.
  const double available = std::max(
      0.0, config_.t_total - est.lost - est.proactive_io - sealed_tails);
  est.useful = sealed_tails + available * (tau / seg);
  est.io = available * (delta / seg) + est.proactive_io;
  return est;
}

Seconds optimal_interval_with_recall(Seconds mtbf, Seconds delta, double recall) {
  SHIRAZ_REQUIRE(mtbf > 0.0, "MTBF must be positive");
  SHIRAZ_REQUIRE(delta > 0.0, "checkpoint cost must be positive");
  SHIRAZ_REQUIRE(recall >= 0.0 && recall < 1.0,
                 "recall must be in [0, 1) — a perfect predictor needs no "
                 "periodic checkpoints");
  return std::sqrt(2.0 * mtbf * delta / (1.0 - recall));
}

}  // namespace shiraz::predict
