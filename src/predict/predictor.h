// Failure predictors: concrete sim::AlarmSource implementations.
//
// The base class owns the bookkeeping every predictor needs — sanitizing the
// emitted alarms and scoring them against the gap-ending failure into a
// PredictorStats — so concrete predictors only implement emit(): "given this
// gap, which alarms fire?". Stats live in a mutable member following the
// AlarmSource run-state idiom (reset() wipes them, clone() copies them), which
// is why even the stateless-looking NullPredictor overrides clone().
#pragma once

#include <memory>
#include <vector>

#include "predict/stats.h"
#include "sim/alarm.h"

namespace shiraz::predict {

/// Abstract predictor. alarms_in_gap is final: it delegates alarm generation
/// to emit(), then classifies each alarm as true/false against the known
/// gap-ending failure and folds the outcome into stats().
class Predictor : public sim::AlarmSource {
 public:
  /// An alarm is scored true when the failure arrives within its claimed lead
  /// window, stretched by this relative slack plus one second of absolute
  /// slack (floating-point clamping at gap edges must not flip a genuine
  /// prediction to false).
  static constexpr double kLeadSlackRel = 0.05;
  static constexpr Seconds kLeadSlackAbs = 1.0;

  /// Emits, sanitizes (drops alarms outside the gap or with negative lead),
  /// sorts by time, scores against the failure at gap_start + gap_length, and
  /// records the gap into stats().
  std::vector<sim::Alarm> alarms_in_gap(Seconds gap_start, Seconds gap_length,
                                        Rng& rng) const final;

  void reset() const final;

  /// Realized quality over the current run. After a parallel campaign the
  /// caller's instance holds the last repetition's stats (the engine runs it
  /// for the final repetition), matching the serial path bit for bit.
  const PredictorStats& stats() const { return stats_; }

 protected:
  explicit Predictor(const PredictorStats& initial = PredictorStats())
      : stats_(initial) {}

  /// Produces the alarms for one gap; may be unsorted and may overshoot the
  /// gap (the base class filters). `rng` is the dedicated prediction stream.
  virtual std::vector<sim::Alarm> emit(Seconds gap_start, Seconds gap_length,
                                       Rng& rng) const = 0;

  /// Hook for per-run predictor state (e.g. the hazard predictor's online
  /// estimator); called by reset() after the stats are wiped.
  virtual void on_reset() const {}

 private:
  mutable PredictorStats stats_;
};

/// Emits no alarms ever. With this source, any prediction-aware policy must
/// reproduce its non-predictive counterpart bit for bit (tested invariant) —
/// the null case of the composition.
class NullPredictor final : public Predictor {
 public:
  NullPredictor() = default;

  std::string name() const override { return "Null"; }
  std::unique_ptr<sim::AlarmSource> clone() const override {
    return std::make_unique<NullPredictor>(*this);
  }

 protected:
  std::vector<sim::Alarm> emit(Seconds, Seconds, Rng&) const override {
    return {};
  }
};

}  // namespace shiraz::predict
