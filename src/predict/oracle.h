// Oracle predictor: thins the true failure sequence to a target quality.
//
// The simulator tells an AlarmSource each gap's true length, and the oracle
// exploits that to place alarms with *configured* precision and recall — the
// standard way to study "what is a predictor of quality (p, r, lead) worth?"
// without committing to a prediction method (Aupy et al., JPDC 2014; Gainaru
// et al., IJHPCA 2013). Honest predictors (hazard.h) ignore the gap length.
#pragma once

#include <memory>

#include "predict/predictor.h"

namespace shiraz::predict {

struct OracleConfig {
  /// Target fraction of alarms that are true predictions, in (0, 1].
  double precision = 0.8;
  /// Target fraction of failures that receive a true alarm, in [0, 1].
  double recall = 0.8;
  /// True alarms fire this long before the failure (clamped to the gap start
  /// for gaps shorter than the lead; the claimed lead stays truthful).
  Seconds lead = minutes(10.0);
  /// Expected inter-failure gap of the system under study; sets the false
  /// alarm rate so the *realized* precision matches the target.
  Seconds mtbf = hours(5.0);
};

/// Emits one true alarm per failure with probability `recall`, plus false
/// alarms as a Poisson stream whose rate  recall * (1 - precision) /
/// (precision * mtbf)  makes the long-run true:false ratio p : (1-p). All
/// draws come from the engine's dedicated prediction stream, so campaigns are
/// bit-identical for every --jobs value and the failure sequence is untouched.
class OraclePredictor final : public Predictor {
 public:
  explicit OraclePredictor(const OracleConfig& config);

  const OracleConfig& config() const { return config_; }

  std::string name() const override;
  std::unique_ptr<sim::AlarmSource> clone() const override {
    return std::make_unique<OraclePredictor>(*this);
  }

 protected:
  std::vector<sim::Alarm> emit(Seconds gap_start, Seconds gap_length,
                               Rng& rng) const override;

 private:
  OracleConfig config_;
  double false_rate_;  ///< false alarms per second
};

}  // namespace shiraz::predict
