#include "predict/stats.h"

#include "common/error.h"

namespace shiraz::predict {

PredictorStats::PredictorStats(Seconds max_lead, std::size_t bins)
    : max_lead_(max_lead), bins_(bins), lead_times_(0.0, max_lead, bins) {
  SHIRAZ_REQUIRE(max_lead > 0.0, "lead-time histogram needs a positive range");
}

void PredictorStats::record_gap(std::size_t true_alarms, std::size_t false_alarms,
                                const std::vector<Seconds>& true_leads) {
  ++gaps_;
  true_alarms_ += true_alarms;
  false_alarms_ += false_alarms;
  if (true_alarms > 0) ++predicted_failures_;
  lead_times_.add_all(true_leads);
}

void PredictorStats::reset() { *this = PredictorStats(max_lead_, bins_); }

double PredictorStats::precision() const {
  const std::size_t total = alarms();
  return total == 0 ? 1.0 : static_cast<double>(true_alarms_) / static_cast<double>(total);
}

double PredictorStats::recall() const {
  return gaps_ == 0 ? 1.0
                    : static_cast<double>(predicted_failures_) / static_cast<double>(gaps_);
}

}  // namespace shiraz::predict
