#include "predict/hazard.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "reliability/weibull.h"

namespace shiraz::predict {

HazardThresholdPredictor::HazardThresholdPredictor(const HazardConfig& config)
    : Predictor(PredictorStats(2.0 * std::max(config.lead, minutes(1.0)))),
      config_(config),
      estimator_(config.estimator) {
  SHIRAZ_REQUIRE(config.threshold_per_hour > 0.0,
                 "hazard threshold must be positive");
  SHIRAZ_REQUIRE(config.eval_period > 0.0, "evaluation period must be positive");
  SHIRAZ_REQUIRE(config.lead >= 0.0, "claimed lead must be non-negative");
  SHIRAZ_REQUIRE(config.max_alarms_per_gap > 0,
                 "need room for at least one alarm per gap");
}

std::vector<sim::Alarm> HazardThresholdPredictor::emit(Seconds gap_start,
                                                       Seconds gap_length,
                                                       Rng&) const {
  std::vector<sim::Alarm> out;
  const adaptive::FailureEstimate est = estimator_.estimate();
  const reliability::Weibull fit =
      reliability::Weibull::from_mtbf(est.shape, est.mtbf);
  const double threshold = config_.threshold_per_hour / hours(1.0);

  // Walk the evaluation grid from the gap start; with shape < 1 the fitted
  // hazard decays monotonically, so stopping at the first sub-threshold point
  // alarms exactly the prefix of the gap the fit deems risky. The hazard is
  // sampled at each interval's midpoint: the analytic hazard diverges at 0
  // for shape < 1 but pdf(0) is clamped to 0, so the left edge of the first
  // interval would read as perfectly safe.
  for (std::size_t j = 0; out.size() < config_.max_alarms_per_gap; ++j) {
    const Seconds offset = static_cast<double>(j) * config_.eval_period;
    if (offset >= gap_length) break;
    if (fit.hazard(offset + 0.5 * config_.eval_period) < threshold) break;
    out.push_back({gap_start + offset, config_.lead});
  }

  // Only now does the true gap length become training data — the honesty
  // boundary between this predictor and the oracle.
  estimator_.observe(gap_length);
  return out;
}

std::string HazardThresholdPredictor::name() const {
  std::ostringstream os;
  os << "HazardThreshold(" << config_.threshold_per_hour << "/h)";
  return os.str();
}

}  // namespace shiraz::predict
