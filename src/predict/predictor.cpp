#include "predict/predictor.h"

#include <algorithm>

namespace shiraz::predict {

std::vector<sim::Alarm> Predictor::alarms_in_gap(Seconds gap_start,
                                                 Seconds gap_length,
                                                 Rng& rng) const {
  std::vector<sim::Alarm> out = emit(gap_start, gap_length, rng);
  const Seconds fail = gap_start + gap_length;
  std::erase_if(out, [&](const sim::Alarm& a) {
    return a.time < gap_start || a.time >= fail || a.lead < 0.0;
  });
  std::sort(out.begin(), out.end(),
            [](const sim::Alarm& a, const sim::Alarm& b) { return a.time < b.time; });

  std::size_t true_alarms = 0;
  std::vector<Seconds> true_leads;
  for (const sim::Alarm& a : out) {
    const Seconds actual = fail - a.time;
    if (actual <= a.lead * (1.0 + kLeadSlackRel) + kLeadSlackAbs) {
      ++true_alarms;
      true_leads.push_back(actual);
    }
  }
  stats_.record_gap(true_alarms, out.size() - true_alarms, true_leads);
  return out;
}

void Predictor::reset() const {
  stats_.reset();
  on_reset();
}

}  // namespace shiraz::predict
