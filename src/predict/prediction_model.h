// First-order analytical model of checkpointing under an imperfect predictor.
//
// Extends the repo's epsilon-style waste accounting (core/analytical_model.h)
// to a single application guarded by a predictor of quality (precision p,
// recall r, lead l), in the spirit of Aupy, Robert, Vivien & Zaidouni (JPDC
// 2014): a predicted failure whose alarm arrives at least one checkpoint cost
// ahead can be made lossless by a proactive checkpoint timed to complete at
// the predicted moment; everything else pays the usual epsilon * segment.
// Validated against the discrete-event simulator in
// tests/predict/prediction_model_test.cpp (waste within 5%).
#pragma once

#include "checkpoint/oci.h"
#include "common/units.h"

namespace shiraz::predict {

/// System-wide parameters, mirroring core::ModelConfig.
struct PredictionModelConfig {
  Seconds mtbf = hours(5.0);
  double weibull_shape = 0.6;
  /// Average fraction of a segment lost per unhandled failure (paper's 0.45).
  double epsilon = 0.45;
  Seconds t_total = hours(1000.0);
  checkpoint::OciFormula oci_formula = checkpoint::OciFormula::kYoung;
};

/// Predictor quality as the model sees it (matches OracleConfig's targets).
struct PredictorSpec {
  double precision = 1.0;  ///< in (0, 1]
  double recall = 1.0;     ///< in [0, 1]
  Seconds lead = 0.0;      ///< alarm-to-failure distance for true alarms
};

/// Expected execution decomposition over t_total, all in seconds.
struct PredictionEstimate {
  double useful = 0.0;
  double io = 0.0;            ///< scheduled + proactive checkpoint writes
  double lost = 0.0;
  double proactive_io = 0.0;  ///< proactive share, already included in io

  double waste() const { return io + lost; }
};

class PredictionModel {
 public:
  explicit PredictionModel(const PredictionModelConfig& config);

  const PredictionModelConfig& config() const { return config_; }

  /// Expected decomposition for one app with checkpoint cost `delta` running
  /// at its OCI the whole campaign, guarded by `spec` with checkpoint-on-alarm
  /// (the ProactiveCkptScheduler policy). recall = 0 or lead < delta
  /// degenerates to the non-predictive estimate.
  PredictionEstimate single_app(Seconds delta, const PredictorSpec& spec) const;

 private:
  PredictionModelConfig config_;
};

/// Aupy et al.'s first-order optimal compute interval when a predictor
/// removes fraction `recall` of the failures: sqrt(2 * M * delta / (1 - r)).
/// Requires recall < 1 (a perfect predictor needs no periodic checkpoints).
Seconds optimal_interval_with_recall(Seconds mtbf, Seconds delta, double recall);

}  // namespace shiraz::predict
