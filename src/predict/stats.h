// Realized quality of a failure predictor over one simulation run.
//
// The Predictor base class (predictor.h) classifies every emitted alarm
// against the gap-ending failure it was asked about and accumulates the
// outcome here, so benches and shirazctl can report the precision/recall a
// predictor actually achieved — which for the oracle should track its
// configured targets, and for honest predictors is the headline result.
#pragma once

#include <cstddef>
#include <vector>

#include "common/histogram.h"
#include "common/units.h"

namespace shiraz::predict {

/// Counters accumulated per simulation run (reset() clears them). A "true"
/// alarm is one whose claimed lead window covers the gap-ending failure; see
/// Predictor::alarms_in_gap for the exact tolerance.
class PredictorStats {
 public:
  /// `max_lead` / `bins` size the lead-time histogram (actual time-to-failure
  /// of every true alarm; longer leads land in the overflow bin).
  explicit PredictorStats(Seconds max_lead = hours(1.0), std::size_t bins = 12);

  /// Records one armed gap: the alarms the predictor emitted for it had
  /// `true_alarms` hits (with the given actual leads) and `false_alarms`
  /// misses. Called by the Predictor base class only.
  void record_gap(std::size_t true_alarms, std::size_t false_alarms,
                  const std::vector<Seconds>& true_leads);

  /// Drops all counters (new run).
  void reset();

  std::size_t gaps() const { return gaps_; }
  /// Gap-ending failures observed == gaps() (the last gap of a run may end at
  /// the horizon instead of a failure; the one-gap overcount is deliberate —
  /// the predictor cannot know the horizon — and vanishes over long runs).
  std::size_t failures() const { return gaps_; }
  std::size_t true_alarms() const { return true_alarms_; }
  std::size_t false_alarms() const { return false_alarms_; }
  std::size_t alarms() const { return true_alarms_ + false_alarms_; }
  /// Failures covered by at least one true alarm.
  std::size_t predicted_failures() const { return predicted_failures_; }
  std::size_t missed_failures() const { return gaps_ - predicted_failures_; }

  /// true_alarms / alarms; 1 when no alarm fired (vacuously, nothing cried
  /// wolf). Never NaN.
  double precision() const;
  /// predicted_failures / failures; 1 when no failure was observed. Never NaN.
  double recall() const;

  /// Actual time-to-failure of every true alarm.
  const Histogram& lead_times() const { return lead_times_; }

 private:
  Seconds max_lead_;
  std::size_t bins_;
  std::size_t gaps_ = 0;
  std::size_t true_alarms_ = 0;
  std::size_t false_alarms_ = 0;
  std::size_t predicted_failures_ = 0;
  Histogram lead_times_;
};

}  // namespace shiraz::predict
