// Prediction-aware scheduling policies.
//
// Both policies wrap a non-predictive scheduler and add exactly one behavior:
// on a credible alarm (claimed lead covers the running app's checkpoint cost)
// they order a proactive checkpoint timed to *complete* at the predicted
// failure, so a correct prediction loses zero work while a pessimistic one
// merely writes delta early. Run with a NullPredictor they reproduce their
// wrapped policy bit for bit (tested invariant): the composition is strictly
// additive.
#pragma once

#include "sim/scheduler.h"

namespace shiraz::predict {

/// Shared alarm response: checkpoint-on-alarm with the write aimed at the
/// predicted failure (start = alarm + lead - delta); alarms whose lead cannot
/// cover a write are ignored.
sim::AlarmAction checkpoint_on_credible_alarm(const sim::SchedContext& ctx);

/// Baseline alternation (sim::AlternateAtFailure) + checkpoint-on-alarm: the
/// paper's Fig. 4 policy made prediction-aware. The single-app case is the
/// setting the analytical model (prediction_model.h) describes.
class ProactiveCkptScheduler final : public sim::Scheduler {
 public:
  sim::Decision on_gap_start(const sim::SchedContext& ctx) const override {
    return base_.on_gap_start(ctx);
  }
  sim::Decision on_checkpoint(const sim::SchedContext& ctx) const override {
    return base_.on_checkpoint(ctx);
  }
  sim::AlarmAction on_alarm(const sim::SchedContext& ctx) const override {
    return checkpoint_on_credible_alarm(ctx);
  }
  std::string name() const override { return "ProactiveCkpt"; }

 private:
  sim::AlternateAtFailure base_;
};

/// Shiraz's k-switch (sim::ShirazPairScheduler) + checkpoint-on-alarm: the
/// co-scheduling gain and the prediction gain compose. Proactive checkpoints
/// do not count toward the per-gap checkpoint tally (see AlarmAction), so the
/// k-th-checkpoint switch fires exactly where plain Shiraz would switch.
class PredictiveShirazScheduler final : public sim::Scheduler {
 public:
  explicit PredictiveShirazScheduler(int k) : base_(k) {}

  int k() const { return base_.k(); }
  sim::Decision on_gap_start(const sim::SchedContext& ctx) const override {
    return base_.on_gap_start(ctx);
  }
  sim::Decision on_checkpoint(const sim::SchedContext& ctx) const override {
    return base_.on_checkpoint(ctx);
  }
  sim::AlarmAction on_alarm(const sim::SchedContext& ctx) const override {
    return checkpoint_on_credible_alarm(ctx);
  }
  std::string name() const override;

 private:
  sim::ShirazPairScheduler base_;
};

}  // namespace shiraz::predict
