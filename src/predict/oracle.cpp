#include "predict/oracle.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace shiraz::predict {

OraclePredictor::OraclePredictor(const OracleConfig& config)
    : Predictor(PredictorStats(2.0 * std::max(config.lead, minutes(1.0)))),
      config_(config),
      false_rate_(config.recall * (1.0 - config.precision) /
                  (config.precision * config.mtbf)) {
  SHIRAZ_REQUIRE(config.precision > 0.0 && config.precision <= 1.0,
                 "oracle precision must be in (0, 1]");
  SHIRAZ_REQUIRE(config.recall >= 0.0 && config.recall <= 1.0,
                 "oracle recall must be in [0, 1]");
  SHIRAZ_REQUIRE(config.lead >= 0.0, "oracle lead must be non-negative");
  SHIRAZ_REQUIRE(config.mtbf > 0.0, "oracle mtbf must be positive");
}

std::vector<sim::Alarm> OraclePredictor::emit(Seconds gap_start, Seconds gap_length,
                                              Rng& rng) const {
  std::vector<sim::Alarm> out;
  const Seconds fail = gap_start + gap_length;

  // One true alarm per failure, kept with probability `recall`. The draw
  // happens unconditionally so the stream advances identically across recall
  // settings.
  const bool hit = rng.uniform() < config_.recall;
  if (hit) {
    const Seconds t = std::max(gap_start, fail - config_.lead);
    out.push_back({t, fail - t});
  }

  // False alarms: exponential inter-arrivals via inversion (portable across
  // standard libraries, unlike std::poisson_distribution). Each claims the
  // configured lead; the claimed failure never materializes — unless the
  // alarm happens to land within `lead` of the real failure, in which case
  // the base class rightly scores it true (realized precision runs a hair
  // above target; the tests budget for it).
  if (false_rate_ > 0.0) {
    Seconds t = gap_start;
    for (;;) {
      t += -std::log1p(-rng.uniform()) / false_rate_;
      if (t >= fail) break;
      out.push_back({t, config_.lead});
    }
  }
  return out;
}

std::string OraclePredictor::name() const {
  std::ostringstream os;
  os << "Oracle(p=" << config_.precision << ",r=" << config_.recall
     << ",lead=" << config_.lead << "s)";
  return os.str();
}

}  // namespace shiraz::predict
