// Simulation metrics: the same useful/io/lost decomposition the analytical
// model predicts, plus event counts for deeper assertions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.h"

namespace shiraz::sim {

struct AppMetrics {
  std::string name;
  Seconds useful = 0.0;   ///< compute time sealed by a completed checkpoint
  Seconds io = 0.0;       ///< time spent writing completed checkpoints
  Seconds lost = 0.0;     ///< compute/partial-checkpoint time wiped by failures
  Seconds restart = 0.0;  ///< downtime charged to this app after its failures
  std::size_t checkpoints = 0;   ///< scheduled checkpoints completed
  /// Alarm-triggered checkpoints completed (prediction-aware policies only;
  /// their io is included in `io` but they do not count toward `checkpoints`
  /// or the per-gap counts Shiraz's k-switch logic reads).
  std::size_t proactive_checkpoints = 0;
  std::size_t failures_hit = 0;  ///< failures that struck while this app ran

  Seconds busy() const { return useful + io + lost + restart; }
};

struct SimResult {
  std::vector<AppMetrics> apps;
  Seconds wall = 0.0;             ///< simulated horizon
  Seconds idle = 0.0;             ///< time no app was running
  Seconds truncated = 0.0;        ///< partial segment cut off by the horizon
  std::size_t failures = 0;       ///< total failures over the horizon
  std::size_t switches = 0;       ///< within-gap application switches
  std::size_t alarms = 0;         ///< failure alarms delivered to the policy
  std::size_t proactive_checkpoints = 0;  ///< Σ apps[i].proactive_checkpoints

  Seconds total_useful() const;
  Seconds total_io() const;
  Seconds total_lost() const;
  /// Σ busy + idle + truncated; equals `wall` up to rounding (tested invariant).
  Seconds accounted() const;

  const AppMetrics& app(const std::string& name) const;
};

/// Element-wise mean of several results (same app layout required).
SimResult average(const std::vector<SimResult>& results);

/// Mean and spread of one scalar metric across campaign repetitions.
/// Well-defined for a single repetition: stddev and ci95 are exactly 0 (a
/// degenerate interval), never NaN.
struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;  ///< unbiased sample standard deviation
  double ci95 = 0.0;    ///< 95% normal confidence half-width of the mean
  double min = 0.0;
  double max = 0.0;
};

/// Per-application spread across repetitions (seconds, like AppMetrics).
struct AppSummary {
  std::string name;
  MetricSummary useful;
  MetricSummary io;
  MetricSummary lost;
  MetricSummary restart;
};

/// Variance-aware aggregate of a Monte-Carlo campaign: the element-wise mean
/// (bit-identical to average(), so existing point-estimate consumers are
/// unchanged) plus the per-repetition spread of every headline metric.
/// All spreads are accumulated in repetition order, so the summary is
/// identical no matter how many workers produced the repetitions.
struct CampaignSummary {
  std::size_t reps = 0;
  SimResult mean;  ///< == average(per_rep)
  std::vector<AppSummary> apps;
  MetricSummary total_useful;  ///< per-rep sum over apps, seconds
  MetricSummary total_io;
  MetricSummary total_lost;
  MetricSummary idle;
  MetricSummary failures;  ///< per-rep event counts
  MetricSummary switches;

  const AppSummary& app(const std::string& name) const;
};

/// Aggregates per-repetition results into a CampaignSummary. Throws when
/// `per_rep` is empty; a single repetition yields zero spread (see
/// MetricSummary).
CampaignSummary summarize_campaign(const std::vector<SimResult>& per_rep);

}  // namespace shiraz::sim
