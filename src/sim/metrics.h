// Simulation metrics: the same useful/io/lost decomposition the analytical
// model predicts, plus event counts for deeper assertions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.h"

namespace shiraz::sim {

struct AppMetrics {
  std::string name;
  Seconds useful = 0.0;   ///< compute time sealed by a completed checkpoint
  Seconds io = 0.0;       ///< time spent writing completed checkpoints
  Seconds lost = 0.0;     ///< compute/partial-checkpoint time wiped by failures
  Seconds restart = 0.0;  ///< downtime charged to this app after its failures
  std::size_t checkpoints = 0;
  std::size_t failures_hit = 0;  ///< failures that struck while this app ran

  Seconds busy() const { return useful + io + lost + restart; }
};

struct SimResult {
  std::vector<AppMetrics> apps;
  Seconds wall = 0.0;             ///< simulated horizon
  Seconds idle = 0.0;             ///< time no app was running
  Seconds truncated = 0.0;        ///< partial segment cut off by the horizon
  std::size_t failures = 0;       ///< total failures over the horizon
  std::size_t switches = 0;       ///< within-gap application switches

  Seconds total_useful() const;
  Seconds total_io() const;
  Seconds total_lost() const;
  /// Σ busy + idle + truncated; equals `wall` up to rounding (tested invariant).
  Seconds accounted() const;

  const AppMetrics& app(const std::string& name) const;
};

/// Element-wise mean of several results (same app layout required).
SimResult average(const std::vector<SimResult>& results);

}  // namespace shiraz::sim
