// A simulated application: checkpoint cost plus an interval schedule.
#pragma once

#include <memory>
#include <string>

#include "checkpoint/oci.h"
#include "checkpoint/schedule.h"
#include "common/units.h"

namespace shiraz::sim {

struct SimJob {
  std::string name;
  /// Checkpoint cost delta (seconds).
  Seconds delta = 0.0;
  /// Compute-interval schedule; shared so job lists are copyable across
  /// repetitions (schedules are immutable).
  std::shared_ptr<const checkpoint::IntervalSchedule> schedule;

  /// Convenience factory: equidistant checkpoints at the OCI for `mtbf`,
  /// optionally stretched by an integer factor (Shiraz+).
  static SimJob at_oci(std::string name, Seconds delta, Seconds mtbf,
                       unsigned stretch = 1,
                       checkpoint::OciFormula formula = checkpoint::OciFormula::kYoung);

  /// Convenience factory: Lazy Checkpointing schedule (Tiwari et al. DSN'14).
  static SimJob lazy(std::string name, Seconds delta, Seconds mtbf,
                     double weibull_shape);
};

}  // namespace shiraz::sim
