// Simulation-side switch-point search and policy comparison.
//
// The paper's Table 2 checks that the model's fair switch point matches the
// one found by "extensive simulation". This module implements that search:
// for each candidate k it simulates Shiraz and the baseline over the same
// failure streams (common random numbers) and applies the same fairness
// criterion the model uses — both apps gain, and the gains are as equal as
// possible.
#pragma once

#include <optional>
#include <vector>

#include "sim/engine.h"

namespace shiraz::sim {

/// Improvements of Shiraz(k) over the baseline, measured by simulation.
struct SimSwitchCandidate {
  int k = 0;
  double delta_lw = 0.0;
  double delta_hw = 0.0;
  double delta_total = 0.0;
};

struct SimSwitchSolution {
  std::optional<int> k;
  double delta_lw = 0.0;
  double delta_hw = 0.0;
  double delta_total = 0.0;
  std::vector<SimSwitchCandidate> sweep;

  bool beneficial() const { return k.has_value(); }
};

/// Baseline-vs-Shiraz comparison for a light/heavy pair at one k. `workers`
/// parallelizes each campaign's repetitions (see Engine::run_many); the
/// result is bit-identical for every worker count. Samples the failure
/// streams once and replays them across both campaigns.
SimSwitchCandidate simulate_switch_point(const Engine& engine, const SimJob& lw,
                                         const SimJob& hw, int k, std::size_t reps,
                                         std::uint64_t seed,
                                         std::size_t workers = 1);

/// Variant with a precomputed baseline: the baseline campaign is
/// policy-independent across a k sweep (common random numbers), so callers
/// simulate it once and pass it to every candidate, along with shared
/// campaign plumbing (trace store, pool) via `opts`.
SimSwitchCandidate simulate_switch_point(const Engine& engine, const SimJob& lw,
                                         const SimJob& hw, int k,
                                         const SimResult& baseline,
                                         std::size_t reps, std::uint64_t seed,
                                         const CampaignOptions& opts = {});

/// Scans k in [k_lo, k_hi] and returns the simulated fair switch point. Each
/// candidate's baseline+Shiraz campaign pair dispatches its repetitions onto
/// `workers` threads; the sweep and the chosen k are worker-count-invariant.
/// Internally samples each repetition's failure stream once (TraceStore) and
/// spawns one thread pool, replaying both across the baseline and every
/// candidate; when the engine models free restarts and switches the whole
/// range is evaluated in one replayed pass (replay_pair_sweep). All of this
/// is bit-identical to the historical per-candidate campaigns.
SimSwitchSolution find_fair_k_by_simulation(const Engine& engine, const SimJob& lw,
                                            const SimJob& hw, int k_lo, int k_hi,
                                            std::size_t reps, std::uint64_t seed,
                                            std::size_t workers = 1);

/// Mean useful work per app of ShirazPairScheduler(k) over one trace store.
struct SweepUseful {
  double lw = 0.0;
  double hw = 0.0;
};

/// One-pass replayed evaluation of the whole candidate range: element i holds
/// the campaign-mean useful work of ShirazPairScheduler(k_lo + i) over
/// repetitions [0, reps) of `traces`, bit-identical to running each candidate
/// through Engine::run_many over the same store (enforced by
/// tests/sim/trace_replay_test.cpp). Every candidate runs the light-weight
/// app identically until its k-th checkpoint, so each gap's light-weight
/// prefix is simulated once and shared across the range; only the (short)
/// heavy-weight tails are per-candidate. Requires the free-restart,
/// free-switch engine configuration the paper's model assumes
/// (restart_cost == 0 and switch_cost == 0) and k_lo >= 1.
std::vector<SweepUseful> replay_pair_sweep(const Engine& engine, const SimJob& lw,
                                           const SimJob& hw, int k_lo, int k_hi,
                                           std::size_t reps, const TraceStore& traces,
                                           std::size_t workers = 1,
                                           common::ThreadPool* pool = nullptr);

}  // namespace shiraz::sim
