// Simulation-side switch-point search and policy comparison.
//
// The paper's Table 2 checks that the model's fair switch point matches the
// one found by "extensive simulation". This module implements that search:
// for each candidate k it simulates Shiraz and the baseline over the same
// failure streams (common random numbers) and applies the same fairness
// criterion the model uses — both apps gain, and the gains are as equal as
// possible.
#pragma once

#include <optional>
#include <vector>

#include "sim/engine.h"

namespace shiraz::sim {

/// Improvements of Shiraz(k) over the baseline, measured by simulation.
struct SimSwitchCandidate {
  int k = 0;
  double delta_lw = 0.0;
  double delta_hw = 0.0;
  double delta_total = 0.0;
};

struct SimSwitchSolution {
  std::optional<int> k;
  double delta_lw = 0.0;
  double delta_hw = 0.0;
  double delta_total = 0.0;
  std::vector<SimSwitchCandidate> sweep;

  bool beneficial() const { return k.has_value(); }
};

/// Baseline-vs-Shiraz comparison for a light/heavy pair at one k. `workers`
/// parallelizes each campaign's repetitions (see Engine::run_many); the
/// result is bit-identical for every worker count.
SimSwitchCandidate simulate_switch_point(const Engine& engine, const SimJob& lw,
                                         const SimJob& hw, int k, std::size_t reps,
                                         std::uint64_t seed,
                                         std::size_t workers = 1);

/// Scans k in [k_lo, k_hi] and returns the simulated fair switch point. Each
/// candidate's baseline+Shiraz campaign pair dispatches its repetitions onto
/// `workers` threads; the sweep and the chosen k are worker-count-invariant.
SimSwitchSolution find_fair_k_by_simulation(const Engine& engine, const SimJob& lw,
                                            const SimJob& hw, int k_lo, int k_hi,
                                            std::size_t reps, std::uint64_t seed,
                                            std::size_t workers = 1);

}  // namespace shiraz::sim
