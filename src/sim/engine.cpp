#include "sim/engine.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "sim/kernel.h"
#include "sim/trace.h"

namespace shiraz::sim {

namespace {
void validate_config(const EngineConfig& config) {
  SHIRAZ_REQUIRE(config.t_total > 0.0, "horizon must be positive");
  SHIRAZ_REQUIRE(config.restart_cost >= 0.0, "restart cost must be non-negative");
  SHIRAZ_REQUIRE(config.switch_cost >= 0.0, "switch cost must be non-negative");
}

/// Sub-stream id for the prediction RNG: Rng::fork derives from the seed (not
/// the generator state), so alarm draws never perturb the failure sequence.
constexpr std::uint64_t kAlarmStream = 0x70726564696374ULL;  // "predict"

/// Resolved handles for the engine's registry counters. Metrics are pure
/// observers of finished results: every increment derives from a SimResult
/// the run already produced, never the other way around, and campaigns apply
/// them in repetition order — the event-stream merge contract.
struct SimCounters {
  obs::Counter* reps;
  obs::Counter* kernel;
  obs::Counter* event_loop;
  obs::Counter* gaps;

  explicit SimCounters(obs::MetricsRegistry& registry)
      : reps(&registry.counter("shiraz_sim_reps_total",
                               "simulator repetitions evaluated")),
        kernel(&registry.counter("shiraz_sim_kernel_replays_total",
                                 "repetitions dispatched to the flat kernel")),
        event_loop(&registry.counter("shiraz_sim_event_loop_runs_total",
                                     "repetitions run through the event loop")),
        gaps(&registry.counter("shiraz_sim_gaps_total",
                               "inter-failure gaps consumed")) {}

  void note(const SimResult& res, bool used_kernel) {
    reps->add(1);
    (used_kernel ? kernel : event_loop)->add(1);
    // Every run consumes one gap per failure plus the final draw that
    // crosses the horizon.
    gaps->add(static_cast<std::uint64_t>(res.failures) + 1);
  }
};
}  // namespace

Engine::Engine(const reliability::Distribution& failure_dist, const EngineConfig& config)
    : dist_(failure_dist.clone()), config_(config) {
  validate_config(config);
  // shared_ptr keeps the lambda copyable, as std::function requires; the
  // engine keeps its own handle so trace stores can batch-sample directly.
  gap_sampler_ = [dist = dist_](Rng& rng, Seconds) { return dist->sample(rng); };
}

Engine::Engine(GapSampler sampler, const EngineConfig& config)
    : gap_sampler_(std::move(sampler)), config_(config) {
  validate_config(config);
  SHIRAZ_REQUIRE(gap_sampler_ != nullptr, "gap sampler must be callable");
}

SimResult Engine::run(const std::vector<SimJob>& jobs, const Scheduler& scheduler,
                      Rng& rng, const AlarmSource* alarms) const {
  const SimResult res = run_impl(jobs, scheduler, rng, nullptr, alarms, config_.sink);
  if (config_.metrics != nullptr) {
    SimCounters(*config_.metrics).note(res, /*used_kernel=*/false);
  }
  return res;
}

SimResult Engine::replay(const std::vector<SimJob>& jobs, const Scheduler& scheduler,
                         const FailureTrace& trace) const {
  // Without an alarm source no RNG stream is consumed at all.
  Rng unused(0);
  return replay(jobs, scheduler, trace, unused, nullptr);
}

SimResult Engine::replay(const std::vector<SimJob>& jobs, const Scheduler& scheduler,
                         const FailureTrace& trace, Rng& rng,
                         const AlarmSource* alarms) const {
  SHIRAZ_REQUIRE(trace.horizon() >= config_.t_total,
                 "trace horizon does not cover the engine horizon");
  bool used_kernel = false;
  const SimResult res =
      run_impl(jobs, scheduler, rng, &trace, alarms, config_.sink, &used_kernel);
  if (config_.metrics != nullptr) {
    SimCounters(*config_.metrics).note(res, used_kernel);
  }
  return res;
}

SimResult Engine::run_impl(const std::vector<SimJob>& jobs, const Scheduler& scheduler,
                           Rng& rng, const FailureTrace* trace,
                           const AlarmSource* alarms, obs::EventSink* sink,
                           bool* used_kernel) const {
  SHIRAZ_REQUIRE(!jobs.empty(), "need at least one job");
  for (const SimJob& job : jobs) {
    SHIRAZ_REQUIRE(job.delta > 0.0, "job checkpoint cost must be positive");
    SHIRAZ_REQUIRE(job.schedule != nullptr, "job needs an interval schedule");
  }
  if (used_kernel != nullptr) *used_kernel = false;

  // Closed-form-eligible replays take the flat kernel (sim/kernel.h): the
  // same result, bit for bit, from a batched pass over the trace's
  // structure-of-arrays buffers instead of the per-event walk below.
  // Ineligible configurations — live runs, alarms, sinks, costs, aperiodic
  // schedules, stateful policies — fall through to the event loop.
  if (trace != nullptr && config_.flat_kernel) {
    SimResult flat;
    if (try_flat_replay(config_, jobs, scheduler, alarms, sink, *trace, &flat)) {
      if (used_kernel != nullptr) *used_kernel = true;
      return flat;
    }
  }

  SimResult res;
  res.wall = config_.t_total;
  res.apps.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) res.apps[i].name = jobs[i].name;

  const Seconds horizon = config_.t_total;
  constexpr Seconds kNever = std::numeric_limits<Seconds>::infinity();

  // Event narration. Sinks are pure observers (no RNG, no simulator state),
  // so the traced and untraced runs are bit-identical; a null sink costs one
  // pointer compare per would-be event. Event::rep stays 0 here — campaign
  // merges stamp it.
  const auto emit = [&](obs::EventKind kind, Seconds time, Seconds duration,
                        std::int32_t app, Seconds value = 0.0) {
    if (sink == nullptr) return;
    obs::Event e;
    e.kind = kind;
    e.time = time;
    e.duration = duration;
    e.app = app;
    e.value = value;
    sink->on_event(e);
  };
  const auto app_id = [](std::size_t i) { return static_cast<std::int32_t>(i); };
  std::vector<std::size_t> ckpts_gap(jobs.size(), 0);
  Seconds now = 0.0;
  Seconds gap_start = 0.0;

  // Failure clock: live runs sample the next gap and add it to the clock;
  // replays read the trace's cached prefix sums (FailureTrace::fail_time),
  // which the trace built with the same sequential additions — at every
  // failure the clock sits exactly on the previous failure time, so
  // `at + gap` and the cached sum are the same double (bit-identity
  // regression-tested in trace_replay_test).
  std::size_t trace_cursor = 0;
  auto next_fail_time = [&](Seconds at) {
    return trace != nullptr ? trace->fail_time(trace_cursor++)
                            : at + gap_sampler_(rng, at);
  };
  Seconds next_fail = next_fail_time(0.0);

  // Prediction state: the alarms of the currently armed gap (sorted, filtered
  // to [gap_start, min(next_fail, horizon))), a cursor over them, and at most
  // one pending proactive checkpoint (a later alarm replaces it). With no
  // alarm source the whole machinery is skipped — including the fork, which
  // derives from the seed rather than generator state, so skipping it cannot
  // perturb the failure sequence (regression-tested in trace_replay_test).
  std::optional<Rng> alarm_rng;
  if (alarms != nullptr) alarm_rng.emplace(rng.fork(kAlarmStream));
  std::vector<Alarm> gap_alarms;
  std::size_t alarm_next = 0;
  std::optional<Seconds> pending_ckpt;
  auto arm_alarms = [&]() {
    if (alarms == nullptr) return;
    gap_alarms.clear();
    alarm_next = 0;
    pending_ckpt.reset();
    gap_alarms = alarms->alarms_in_gap(gap_start, next_fail - gap_start, *alarm_rng);
    const Seconds cutoff = std::min(next_fail, horizon);
    std::erase_if(gap_alarms, [&](const Alarm& a) {
      return a.time < gap_start || a.time >= cutoff;
    });
    std::sort(gap_alarms.begin(), gap_alarms.end(),
              [](const Alarm& a, const Alarm& b) { return a.time < b.time; });
  };

  Seconds last_gap_length = 0.0;
  auto make_ctx = [&](std::size_t current, Seconds at) {
    SchedContext ctx;
    ctx.now = at;
    ctx.gap_start = gap_start;
    ctx.num_apps = jobs.size();
    ctx.current = current;
    ctx.checkpoints_this_gap = &ckpts_gap;
    ctx.failures_so_far = res.failures;
    ctx.last_gap_length = last_gap_length;
    return ctx;
  };

  // Handles the failure at `now`; charges nothing (time already charged by
  // the caller), re-arms the failure clock and the gap's alarms, applies the
  // restart downtime, and asks the scheduler who runs next.
  if (alarms != nullptr) alarms->reset();
  scheduler.reset();
  arm_alarms();
  Decision decision = scheduler.on_gap_start(make_ctx(0, now));
  auto handle_failure = [&](std::optional<std::size_t> hit) {
    ++res.failures;
    if (hit) ++res.apps[*hit].failures_hit;
    emit(obs::EventKind::kFailure, now, 0.0, hit ? app_id(*hit) : obs::kNoApp);
    last_gap_length = now - gap_start;
    gap_start = now;
    next_fail = next_fail_time(now);
    std::fill(ckpts_gap.begin(), ckpts_gap.end(), 0);
    arm_alarms();
    decision = scheduler.on_gap_start(make_ctx(0, now));
    if (config_.restart_cost > 0.0 && decision.app) {
      // Non-preemptible restart window charged to the resuming app. A failure
      // striking inside it is handled by the main loop (the window is modeled
      // as part of the app's first interval start offset).
      const Seconds end = std::min({now + config_.restart_cost, next_fail, horizon});
      res.apps[*decision.app].restart += end - now;
      emit(obs::EventKind::kRestart, now, end - now, app_id(*decision.app));
      now = end;
    }
  };
  // Alarms that fire while nothing runs are dropped: there is no in-flight
  // compute to protect.
  auto drop_alarms_before = [&](Seconds t) {
    while (alarm_next < gap_alarms.size() && gap_alarms[alarm_next].time < t) {
      emit(obs::EventKind::kAlarmExpired, gap_alarms[alarm_next].time, 0.0,
           obs::kNoApp, gap_alarms[alarm_next].lead);
      ++alarm_next;
    }
  };

  while (now < horizon) {
    // Resolve idling (no app, or an app with a delayed start).
    if (!decision.app) {
      const Seconds until = std::min(next_fail, horizon);
      drop_alarms_before(until);
      res.idle += until - now;
      now = until;
      if (now >= horizon) break;
      handle_failure(std::nullopt);
      continue;
    }
    const std::size_t ai = *decision.app;
    SHIRAZ_REQUIRE(ai < jobs.size(), "scheduler chose an unknown app");
    const Seconds start_time = gap_start + decision.not_before_elapsed;
    if (start_time > now) {
      const Seconds until = std::min({start_time, next_fail, horizon});
      drop_alarms_before(until);
      res.idle += until - now;
      now = until;
      if (now >= horizon) break;
      if (next_fail <= start_time && now >= next_fail) {
        handle_failure(std::nullopt);  // failure struck while still idle
        continue;
      }
    }

    // Run one segment (compute interval + checkpoint write) of app `ai`,
    // interruptible by alarms and by a pending proactive checkpoint. With no
    // alarm source the interrupt times stay at infinity and the segment
    // resolves through exactly the prediction-free three-way comparison.
    const SimJob& job = jobs[ai];
    const Seconds tau = job.schedule->next_interval(now - gap_start);
    SHIRAZ_REQUIRE(tau > 0.0, "schedule produced a non-positive interval");
    const Seconds seg_start = now;
    const Seconds write_start = now + tau;
    const Seconds seg_end = write_start + job.delta;

    for (;;) {
      const Seconds resolve_at = std::min({seg_end, next_fail, horizon});
      // Alarms delivered late (their time fell inside a restart window) fire
      // as soon as the app is back on the machine.
      const Seconds alarm_at =
          alarm_next < gap_alarms.size()
              ? std::max(gap_alarms[alarm_next].time, seg_start)
              : kNever;
      const Seconds pending_at =
          pending_ckpt ? std::max(*pending_ckpt, seg_start) : kNever;

      if (alarm_at < resolve_at && alarm_at <= pending_at) {
        SchedContext ctx = make_ctx(ai, alarm_at);
        ctx.alarm_lead = gap_alarms[alarm_next].lead;
        ctx.current_delta = job.delta;
        const AlarmAction action = scheduler.on_alarm(ctx);
        emit(obs::EventKind::kAlarmDelivered, alarm_at, 0.0, app_id(ai),
             gap_alarms[alarm_next].lead);
        ++alarm_next;
        ++res.alarms;
        if (action.take_checkpoint) {
          pending_ckpt = alarm_at + std::max(0.0, action.checkpoint_delay);
        }
        continue;
      }
      if (pending_at < resolve_at) {
        if (pending_at >= write_start) {
          // The scheduled write is already sealing this segment; the
          // proactive checkpoint would be redundant.
          pending_ckpt.reset();
          continue;
        }
        // Proactive write [pending_at, pending_at + delta) sealing the
        // compute done since the segment started.
        const Seconds proactive_end = pending_at + job.delta;
        pending_ckpt.reset();
        if (horizon <= std::min(proactive_end, next_fail)) {
          res.truncated += horizon - now;
          emit(obs::EventKind::kHorizonTruncated, now, horizon - now, app_id(ai));
          now = horizon;
          break;
        }
        if (next_fail < proactive_end) {
          // Failure wipes the in-flight segment (compute + partial write).
          res.apps[ai].lost += next_fail - now;
          emit(obs::EventKind::kSegmentWiped, now, next_fail - now, app_id(ai));
          now = next_fail;
          handle_failure(ai);
          break;
        }
        res.apps[ai].useful += pending_at - seg_start;
        res.apps[ai].io += job.delta;
        ++res.apps[ai].proactive_checkpoints;
        ++res.proactive_checkpoints;
        emit(obs::EventKind::kProactiveCheckpoint, proactive_end, job.delta,
             app_id(ai), pending_at - seg_start);
        now = proactive_end;
        // The decision is unchanged: the app resumes its regular schedule.
        break;
      }

      if (horizon <= std::min(seg_end, next_fail)) {
        // Horizon cuts the segment: neither checkpointed nor failure-wiped.
        res.truncated += horizon - now;
        if (horizon > write_start) {
          emit(obs::EventKind::kCheckpointBegin, write_start, 0.0, app_id(ai));
        }
        emit(obs::EventKind::kHorizonTruncated, now, horizon - now, app_id(ai));
        now = horizon;
        break;
      }
      if (next_fail < seg_end) {
        // Failure wipes the in-flight segment (compute + partial checkpoint).
        res.apps[ai].lost += next_fail - now;
        if (next_fail > write_start) {
          emit(obs::EventKind::kCheckpointBegin, write_start, 0.0, app_id(ai));
        }
        emit(obs::EventKind::kSegmentWiped, now, next_fail - now, app_id(ai));
        now = next_fail;
        handle_failure(ai);
        break;
      }
      // Segment completes: the interval becomes useful work, sealed by delta
      // of checkpoint I/O.
      res.apps[ai].useful += tau;
      res.apps[ai].io += job.delta;
      ++res.apps[ai].checkpoints;
      ++ckpts_gap[ai];
      emit(obs::EventKind::kCheckpointBegin, write_start, 0.0, app_id(ai));
      emit(obs::EventKind::kCheckpointCommit, seg_end, job.delta, app_id(ai), tau);
      now = seg_end;
      decision = scheduler.on_checkpoint(make_ctx(ai, now));
      // A within-gap hand-off (Shiraz's switch) may cost drain/launch
      // downtime, charged to the incoming application.
      if (decision.app && *decision.app != ai) {
        ++res.switches;
        Seconds switch_end = now;
        if (config_.switch_cost > 0.0) {
          switch_end = std::min({now + config_.switch_cost, next_fail, horizon});
          res.apps[*decision.app].restart += switch_end - now;
        }
        emit(obs::EventKind::kAppSwitch, now, switch_end - now,
             app_id(*decision.app), static_cast<double>(ai));
        now = switch_end;
      }
      break;
    }
  }
  return res;
}

SimResult Engine::run_many(const std::vector<SimJob>& jobs, const Scheduler& scheduler,
                           std::size_t reps, std::uint64_t seed,
                           std::size_t workers, const AlarmSource* alarms) const {
  CampaignOptions opts;
  opts.workers = workers;
  opts.alarms = alarms;
  return run_campaign(jobs, scheduler, reps, seed, opts).mean;
}

SimResult Engine::run_many(const std::vector<SimJob>& jobs, const Scheduler& scheduler,
                           std::size_t reps, std::uint64_t seed,
                           const CampaignOptions& opts) const {
  return run_campaign(jobs, scheduler, reps, seed, opts).mean;
}

CampaignSummary Engine::run_campaign(const std::vector<SimJob>& jobs,
                                     const Scheduler& scheduler, std::size_t reps,
                                     std::uint64_t seed, std::size_t workers,
                                     const AlarmSource* alarms) const {
  CampaignOptions opts;
  opts.workers = workers;
  opts.alarms = alarms;
  return run_campaign(jobs, scheduler, reps, seed, opts);
}

CampaignSummary Engine::run_campaign(const std::vector<SimJob>& jobs,
                                     const Scheduler& scheduler, std::size_t reps,
                                     std::uint64_t seed,
                                     const CampaignOptions& opts) const {
  SHIRAZ_REQUIRE(reps >= 1, "need at least one repetition");
  const TraceStore* traces = opts.traces;
  if (traces != nullptr) {
    SHIRAZ_REQUIRE(traces->seed() == seed,
                   "trace store was built for a different seed");
    SHIRAZ_REQUIRE(traces->horizon() >= config_.t_total,
                   "trace store horizon does not cover the engine horizon");
    // Materialize up front so parallel repetitions only read the cache.
    traces->ensure(reps);
  }
  const AlarmSource* alarms = opts.alarms;
  obs::EventSink* sink = opts.sink != nullptr ? opts.sink : config_.sink;
  obs::MetricsRegistry* metrics =
      opts.metrics != nullptr ? opts.metrics : config_.metrics;
  const Rng master(seed);
  std::vector<SimResult> results(reps);
  // Traced campaigns buffer per repetition: repetitions may run on any worker
  // in any order, so each records privately and the buffers merge — stamped
  // with their repetition id — after the runs. The serial path goes through
  // the same buffers, so the delivered stream is identical for every worker
  // count.
  std::vector<obs::EventRecorder> recorders(sink != nullptr ? reps : 0);
  // Metrics follow the same shape: each repetition notes its dispatch route
  // privately and the increments apply in repetition order after the runs,
  // so the registry's mutation order is worker-count-invariant too.
  std::vector<std::uint8_t> kernel_reps(metrics != nullptr ? reps : 0, 0);

  auto run_rep = [&](std::size_t r, const Scheduler& policy,
                     const AlarmSource* source) {
    Rng rng = master.fork(r);
    const FailureTrace* trace = traces != nullptr ? &traces->trace(r) : nullptr;
    bool used_kernel = false;
    results[r] = run_impl(jobs, policy, rng, trace, source,
                          sink != nullptr ? &recorders[r] : nullptr,
                          &used_kernel);
    if (metrics != nullptr) kernel_reps[r] = used_kernel ? 1 : 0;
  };
  auto merge_events = [&] {
    if (sink == nullptr) return;
    for (std::size_t r = 0; r < reps; ++r) {
      for (obs::Event e : recorders[r].events()) {
        e.rep = static_cast<std::uint32_t>(r);
        sink->on_event(e);
      }
    }
  };
  auto merge_metrics = [&] {
    if (metrics == nullptr) return;
    SimCounters counters(*metrics);
    for (std::size_t r = 0; r < reps; ++r) {
      counters.note(results[r], kernel_reps[r] != 0);
    }
  };

  if ((opts.workers <= 1 && opts.pool == nullptr) || reps == 1) {
    for (std::size_t r = 0; r < reps; ++r) run_rep(r, scheduler, alarms);
    merge_events();
    merge_metrics();
    return summarize_campaign(results);
  }

  // Stateful policies and alarm sources get a private clone per repetition
  // (cloned up front, on this thread, so no worker ever copies an instance
  // another worker is mutating). The caller's instances run the last
  // repetition: reset() wipes run state at every run start, so the serial
  // path's post-campaign observable state is also exactly the last
  // repetition's — diagnostics like the adaptive scheduler's final k and a
  // predictor's stats stay worker-count-invariant.
  std::vector<std::unique_ptr<Scheduler>> clones(reps);
  if (std::unique_ptr<Scheduler> probe = scheduler.clone()) {
    clones[0] = std::move(probe);
    for (std::size_t r = 1; r + 1 < reps; ++r) clones[r] = scheduler.clone();
  }
  std::vector<std::unique_ptr<AlarmSource>> alarm_clones(reps);
  if (alarms != nullptr) {
    if (std::unique_ptr<AlarmSource> probe = alarms->clone()) {
      alarm_clones[0] = std::move(probe);
      for (std::size_t r = 1; r + 1 < reps; ++r) alarm_clones[r] = alarms->clone();
    }
  }

  common::PoolHandle pool(opts.pool, std::min(opts.workers, reps));
  common::parallel_for_indexed(pool.get(), reps, [&](std::size_t r) {
    const Scheduler& policy = clones[r] ? *clones[r] : scheduler;
    const AlarmSource* source = alarm_clones[r] ? alarm_clones[r].get() : alarms;
    run_rep(r, policy, source);
  });
  merge_events();
  merge_metrics();
  return summarize_campaign(results);
}

}  // namespace shiraz::sim
