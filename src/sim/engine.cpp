#include "sim/engine.h"

#include <algorithm>
#include <memory>

#include "common/error.h"
#include "common/thread_pool.h"

namespace shiraz::sim {

namespace {
void validate_config(const EngineConfig& config) {
  SHIRAZ_REQUIRE(config.t_total > 0.0, "horizon must be positive");
  SHIRAZ_REQUIRE(config.restart_cost >= 0.0, "restart cost must be non-negative");
  SHIRAZ_REQUIRE(config.switch_cost >= 0.0, "switch cost must be non-negative");
}
}  // namespace

Engine::Engine(const reliability::Distribution& failure_dist, const EngineConfig& config)
    : config_(config) {
  validate_config(config);
  // shared_ptr keeps the lambda copyable, as std::function requires.
  gap_sampler_ = [dist = std::shared_ptr<const reliability::Distribution>(
                      failure_dist.clone())](Rng& rng, Seconds) {
    return dist->sample(rng);
  };
}

Engine::Engine(GapSampler sampler, const EngineConfig& config)
    : gap_sampler_(std::move(sampler)), config_(config) {
  validate_config(config);
  SHIRAZ_REQUIRE(gap_sampler_ != nullptr, "gap sampler must be callable");
}

SimResult Engine::run(const std::vector<SimJob>& jobs, const Scheduler& scheduler,
                      Rng& rng) const {
  SHIRAZ_REQUIRE(!jobs.empty(), "need at least one job");
  for (const SimJob& job : jobs) {
    SHIRAZ_REQUIRE(job.delta > 0.0, "job checkpoint cost must be positive");
    SHIRAZ_REQUIRE(job.schedule != nullptr, "job needs an interval schedule");
  }

  SimResult res;
  res.wall = config_.t_total;
  res.apps.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) res.apps[i].name = jobs[i].name;

  const Seconds horizon = config_.t_total;
  std::vector<std::size_t> ckpts_gap(jobs.size(), 0);
  Seconds now = 0.0;
  Seconds gap_start = 0.0;
  Seconds next_fail = gap_sampler_(rng, 0.0);

  Seconds last_gap_length = 0.0;
  auto make_ctx = [&](std::size_t current) {
    SchedContext ctx;
    ctx.now = now;
    ctx.gap_start = gap_start;
    ctx.num_apps = jobs.size();
    ctx.current = current;
    ctx.checkpoints_this_gap = &ckpts_gap;
    ctx.failures_so_far = res.failures;
    ctx.last_gap_length = last_gap_length;
    return ctx;
  };

  // Handles the failure at `now`; charges nothing (time already charged by
  // the caller), re-arms the failure clock, applies the restart downtime, and
  // asks the scheduler who runs next.
  scheduler.reset();
  Decision decision = scheduler.on_gap_start(make_ctx(0));
  auto handle_failure = [&](std::optional<std::size_t> hit) {
    ++res.failures;
    if (hit) ++res.apps[*hit].failures_hit;
    last_gap_length = now - gap_start;
    gap_start = now;
    next_fail = now + gap_sampler_(rng, now);
    std::fill(ckpts_gap.begin(), ckpts_gap.end(), 0);
    decision = scheduler.on_gap_start(make_ctx(0));
    if (config_.restart_cost > 0.0 && decision.app) {
      // Non-preemptible restart window charged to the resuming app. A failure
      // striking inside it is handled by the main loop (the window is modeled
      // as part of the app's first interval start offset).
      const Seconds end = std::min({now + config_.restart_cost, next_fail, horizon});
      res.apps[*decision.app].restart += end - now;
      now = end;
    }
  };

  while (now < horizon) {
    // Resolve idling (no app, or an app with a delayed start).
    if (!decision.app) {
      const Seconds until = std::min(next_fail, horizon);
      res.idle += until - now;
      now = until;
      if (now >= horizon) break;
      handle_failure(std::nullopt);
      continue;
    }
    const std::size_t ai = *decision.app;
    SHIRAZ_REQUIRE(ai < jobs.size(), "scheduler chose an unknown app");
    const Seconds start_time = gap_start + decision.not_before_elapsed;
    if (start_time > now) {
      const Seconds until = std::min({start_time, next_fail, horizon});
      res.idle += until - now;
      now = until;
      if (now >= horizon) break;
      if (next_fail <= start_time && now >= next_fail) {
        handle_failure(std::nullopt);  // failure struck while still idle
        continue;
      }
    }

    // Run one segment (compute interval + checkpoint write) of app `ai`.
    const SimJob& job = jobs[ai];
    const Seconds tau = job.schedule->next_interval(now - gap_start);
    SHIRAZ_REQUIRE(tau > 0.0, "schedule produced a non-positive interval");
    const Seconds seg_end = now + tau + job.delta;

    if (horizon <= std::min(seg_end, next_fail)) {
      // Horizon cuts the segment: neither checkpointed nor failure-wiped.
      res.truncated += horizon - now;
      now = horizon;
      break;
    }
    if (next_fail < seg_end) {
      // Failure wipes the in-flight segment (compute + partial checkpoint).
      res.apps[ai].lost += next_fail - now;
      now = next_fail;
      handle_failure(ai);
      continue;
    }
    // Segment completes: the interval becomes useful work, sealed by delta of
    // checkpoint I/O.
    res.apps[ai].useful += tau;
    res.apps[ai].io += job.delta;
    ++res.apps[ai].checkpoints;
    ++ckpts_gap[ai];
    now = seg_end;
    decision = scheduler.on_checkpoint(make_ctx(ai));
    // A within-gap hand-off (Shiraz's switch) may cost drain/launch downtime,
    // charged to the incoming application.
    if (decision.app && *decision.app != ai) {
      ++res.switches;
      if (config_.switch_cost > 0.0) {
        const Seconds end =
            std::min({now + config_.switch_cost, next_fail, horizon});
        res.apps[*decision.app].restart += end - now;
        now = end;
      }
    }
  }
  return res;
}

SimResult Engine::run_many(const std::vector<SimJob>& jobs, const Scheduler& scheduler,
                           std::size_t reps, std::uint64_t seed,
                           std::size_t workers) const {
  return run_campaign(jobs, scheduler, reps, seed, workers).mean;
}

CampaignSummary Engine::run_campaign(const std::vector<SimJob>& jobs,
                                     const Scheduler& scheduler, std::size_t reps,
                                     std::uint64_t seed,
                                     std::size_t workers) const {
  SHIRAZ_REQUIRE(reps >= 1, "need at least one repetition");
  const Rng master(seed);
  std::vector<SimResult> results(reps);

  if (workers <= 1 || reps == 1) {
    for (std::size_t r = 0; r < reps; ++r) {
      Rng rng = master.fork(r);
      results[r] = run(jobs, scheduler, rng);
    }
    return summarize_campaign(results);
  }

  // Stateful policies get a private clone per repetition (cloned up front, on
  // this thread, so no worker ever copies an instance another worker is
  // mutating). The caller's instance runs the last repetition: reset() wipes
  // run state at every run start, so the serial path's post-campaign
  // observable state is also exactly the last repetition's — diagnostics like
  // the adaptive scheduler's final k stay worker-count-invariant.
  std::vector<std::unique_ptr<Scheduler>> clones(reps);
  if (std::unique_ptr<Scheduler> probe = scheduler.clone()) {
    clones[0] = std::move(probe);
    for (std::size_t r = 1; r + 1 < reps; ++r) clones[r] = scheduler.clone();
  }

  common::ThreadPool pool(std::min(workers, reps));
  common::parallel_for_indexed(pool, reps, [&](std::size_t r) {
    Rng rng = master.fork(r);
    const Scheduler& policy = clones[r] ? *clones[r] : scheduler;
    results[r] = run(jobs, policy, rng);
  });
  return summarize_campaign(results);
}

}  // namespace shiraz::sim
