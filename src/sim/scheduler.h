// Scheduling policies for the discrete-event simulator.
//
// The engine consults the scheduler at three kinds of points — right after a
// failure (gap start), right after a completed checkpoint, and when a failure
// alarm fires (only when the engine runs with an AlarmSource; see alarm.h).
// The first two are sufficient for every policy in the paper: the baseline
// alternates at failures, Shiraz switches at the light-weight app's k-th
// checkpoint, the naive strategy switches at a wall-clock threshold (rounded
// up to the next checkpoint boundary), and the multi-application scheme
// rotates pairs at failures. The alarm hook powers the prediction-aware
// policies in src/predict, which respond with proactive checkpoints.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"

namespace shiraz::sim {

/// Read-only view of the engine state offered to scheduling decisions.
struct SchedContext {
  Seconds now = 0.0;        ///< absolute simulated time
  Seconds gap_start = 0.0;  ///< time of the most recent failure (0 at start)
  std::size_t num_apps = 0;
  /// Index of the app whose checkpoint just completed (on_checkpoint only).
  std::size_t current = 0;
  /// Per-app checkpoints completed since gap_start.
  const std::vector<std::size_t>* checkpoints_this_gap = nullptr;
  std::size_t failures_so_far = 0;
  /// Length of the inter-failure gap that just ended (only meaningful inside
  /// on_gap_start after a failure; 0 at campaign start). Lets adaptive
  /// policies learn the failure process online.
  Seconds last_gap_length = 0.0;
  /// Claimed time-to-failure of the alarm being delivered (on_alarm only).
  Seconds alarm_lead = 0.0;
  /// Checkpoint cost of app `current` (on_alarm only), so prediction-aware
  /// policies can tell whether the lead time covers a proactive write.
  Seconds current_delta = 0.0;

  Seconds elapsed_in_gap() const { return now - gap_start; }
};

/// What to run next.
struct Decision {
  /// App index to run; empty = idle until the next failure.
  std::optional<std::size_t> app;
  /// Earliest elapsed-time-since-gap-start at which the app may start
  /// (used by the validation's delayed-start case); 0 = immediately.
  Seconds not_before_elapsed = 0.0;

  static Decision run(std::size_t index) { return Decision{index, 0.0}; }
  static Decision run_after(std::size_t index, Seconds elapsed) {
    return Decision{index, elapsed};
  }
  static Decision idle() { return Decision{std::nullopt, 0.0}; }
};

/// Response to a failure alarm (Scheduler::on_alarm). A proactive checkpoint
/// seals the running app's in-flight compute with an unscheduled write of its
/// checkpoint cost; `checkpoint_delay` lets the policy aim the write to
/// complete right at the predicted failure (start = alarm time + delay). The
/// app keeps computing until the write starts and resumes its regular
/// schedule afterwards. Proactive checkpoints do not count toward
/// checkpoints_this_gap, so Shiraz's k-switch logic is unaffected.
struct AlarmAction {
  bool take_checkpoint = false;
  /// Seconds after the alarm at which the proactive write starts.
  Seconds checkpoint_delay = 0.0;

  static AlarmAction ignore() { return {}; }
  static AlarmAction checkpoint_after(Seconds delay) { return {true, delay}; }
};

/// A scheduling policy. The engine calls reset() at the start of every run,
/// so stateful policies (e.g. the adaptive online-estimating Shiraz variant)
/// can be reused across Monte-Carlo repetitions; the policies in this header
/// are stateless and derive all decisions from the SchedContext.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Called once per simulation run before any decision; clears run state.
  /// Const because engines hold policies by const reference across runs;
  /// stateful policies keep their run state in mutable members.
  virtual void reset() const {}

  /// Called at campaign start and immediately after every failure.
  virtual Decision on_gap_start(const SchedContext& ctx) const = 0;

  /// Called when app `ctx.current` completes a checkpoint.
  virtual Decision on_checkpoint(const SchedContext& ctx) const = 0;

  /// Called when a failure alarm fires while app `ctx.current` runs (only
  /// when the engine was given an AlarmSource; ctx.alarm_lead carries the
  /// claimed time-to-failure and ctx.current_delta the running app's
  /// checkpoint cost). Default: ignore the alarm.
  virtual AlarmAction on_alarm(const SchedContext&) const {
    return AlarmAction::ignore();
  }

  /// Copy hook for parallel Monte-Carlo dispatch: policies with mutable run
  /// state MUST override this to return a private copy, so each concurrent
  /// repetition mutates its own instance. Stateless policies (everything in
  /// this header) return nullptr, meaning "share me freely across threads".
  virtual std::unique_ptr<Scheduler> clone() const { return nullptr; }

  virtual std::string name() const = 0;
};

/// Baseline (paper Fig. 4): rotate through all apps, switching at every
/// failure; between failures the chosen app keeps running.
class AlternateAtFailure final : public Scheduler {
 public:
  Decision on_gap_start(const SchedContext& ctx) const override;
  Decision on_checkpoint(const SchedContext& ctx) const override;
  std::string name() const override { return "AlternateAtFailure"; }
};

/// Shiraz for one pair (paper Fig. 6): app 0 (light-weight) runs from each
/// failure until it completes k checkpoints, then app 1 (heavy-weight) runs
/// until the next failure. k == 0 degenerates to heavy-weight-only.
class ShirazPairScheduler final : public Scheduler {
 public:
  explicit ShirazPairScheduler(int k);

  int k() const { return k_; }
  Decision on_gap_start(const SchedContext& ctx) const override;
  Decision on_checkpoint(const SchedContext& ctx) const override;
  std::string name() const override;

 private:
  int k_;
};

/// Validation case 1 (paper Section 4, "first application"): app 0 runs from
/// each failure until it completes `count` checkpoints, then the machine is
/// idle (whatever runs afterwards is irrelevant to the measured app).
class FirstAppScheduler final : public Scheduler {
 public:
  explicit FirstAppScheduler(std::size_t count);

  Decision on_gap_start(const SchedContext& ctx) const override;
  Decision on_checkpoint(const SchedContext& ctx) const override;
  std::string name() const override { return "FirstApp"; }

 private:
  std::size_t count_;
};

/// Validation case 2 ("second application"): app 0 is switched in `t_start`
/// seconds after each failure and runs until the next failure.
class SecondAppScheduler final : public Scheduler {
 public:
  explicit SecondAppScheduler(Seconds t_start);

  Decision on_gap_start(const SchedContext& ctx) const override;
  Decision on_checkpoint(const SchedContext& ctx) const override;
  std::string name() const override { return "SecondApp"; }

 private:
  Seconds t_start_;
};

/// The naive strategy Section 5 debunks: switch light -> heavy at a fixed
/// wall-clock threshold after each failure (e.g. MTBF/2), at the first
/// checkpoint boundary past the threshold.
class NaiveTimeSwitchScheduler final : public Scheduler {
 public:
  explicit NaiveTimeSwitchScheduler(Seconds threshold);

  Decision on_gap_start(const SchedContext& ctx) const override;
  Decision on_checkpoint(const SchedContext& ctx) const override;
  std::string name() const override;

 private:
  Seconds threshold_;
};

/// N-application within-gap chain (extension; see core/multi_switch.h): apps
/// are ordered by ascending checkpoint cost; after each failure app 0 runs
/// for ks[0] checkpoints, then app 1 for ks[1], ..., and the last app runs
/// until the next failure. A zero count skips that app's turn in the gap.
class MultiSwitchScheduler final : public Scheduler {
 public:
  /// ks has one entry per app except the last (which always runs to failure).
  explicit MultiSwitchScheduler(std::vector<int> ks);

  const std::vector<int>& ks() const { return ks_; }
  Decision on_gap_start(const SchedContext& ctx) const override;
  Decision on_checkpoint(const SchedContext& ctx) const override;
  std::string name() const override { return "MultiSwitch"; }

 private:
  /// First app at-or-after `from` whose turn is non-empty (the last app's
  /// turn is always non-empty).
  std::size_t next_runnable(std::size_t from) const;

  std::vector<int> ks_;
};

/// Multi-application Shiraz (paper Section 5): the app list is organized as
/// consecutive pairs (lw0, hw0, lw1, hw1, ...); one pair runs between two
/// failures under Shiraz with its own k, and pairs rotate at every failure.
/// Pairs whose k is absent (no beneficial switch) alternate fairly instead:
/// their light and heavy member take turns leading across rotations.
class PairRotationScheduler final : public Scheduler {
 public:
  /// ks[i] is the switch point for pair i (apps 2i and 2i+1); std::nullopt
  /// marks a pair that falls back to baseline alternation.
  explicit PairRotationScheduler(std::vector<std::optional<int>> ks);

  const std::vector<std::optional<int>>& ks() const { return ks_; }
  Decision on_gap_start(const SchedContext& ctx) const override;
  Decision on_checkpoint(const SchedContext& ctx) const override;
  std::string name() const override { return "PairRotation"; }

 private:
  std::vector<std::optional<int>> ks_;
};

}  // namespace shiraz::sim
