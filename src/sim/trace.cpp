#include "sim/trace.h"

#include "reliability/regimes.h"

namespace shiraz::sim {

FailureTrace::FailureTrace(std::vector<Seconds> gaps, Seconds horizon)
    : gaps_(std::move(gaps)), horizon_(horizon) {
  SHIRAZ_REQUIRE(horizon_ > 0.0, "trace horizon must be positive");
  SHIRAZ_REQUIRE(!gaps_.empty(), "trace needs at least one gap");
  // Prefix-sum the failure times with the same sequential additions a live
  // run performs (its clock sits on fail_{i-1} exactly when it adds gap_i),
  // so fail_time(i) replays bit-identically to the engine's `now + gap`.
  fail_times_.resize(gaps_.size());
  Seconds t = 0.0;
  for (std::size_t i = 0; i < gaps_.size(); ++i) {
    t += gaps_[i];
    fail_times_[i] = t;
  }
  // The gaps must be exactly the draws a live run consumes: the running sum
  // crosses the horizon at the last gap and not before.
  if (gaps_.size() >= 2) {
    SHIRAZ_REQUIRE(fail_times_[gaps_.size() - 2] < horizon_,
                   "trace has draws past the horizon");
  }
  SHIRAZ_REQUIRE(fail_times_.back() >= horizon_,
                 "trace stops short of the horizon");
}

TraceStore::TraceStore(const Engine& engine, std::uint64_t seed)
    : TraceStore(engine, seed, engine.config().t_total) {}

TraceStore::TraceStore(const Engine& engine, std::uint64_t seed, Seconds horizon)
    : sampler_(engine.gap_sampler()),
      dist_(engine.failure_distribution()),
      seed_(seed),
      horizon_(horizon) {
  SHIRAZ_REQUIRE(horizon_ > 0.0, "trace horizon must be positive");
}

TraceStore::TraceStore(const reliability::FailureRegime& regime,
                       std::uint64_t seed, Seconds horizon)
    : regime_(regime.clone()), seed_(seed), horizon_(horizon) {
  SHIRAZ_REQUIRE(horizon_ > 0.0, "trace horizon must be positive");
}

void TraceStore::ensure(std::size_t reps) const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (traces_.size() < reps) traces_.resize(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    if (!traces_[r]) traces_[r] = materialize(r);
  }
}

const FailureTrace& TraceStore::trace(std::size_t rep) const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (traces_.size() <= rep) traces_.resize(rep + 1);
  if (!traces_[rep]) traces_[rep] = materialize(rep);
  return *traces_[rep];
}

std::size_t TraceStore::materialized() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const std::unique_ptr<FailureTrace>& t : traces_) {
    if (t) ++n;
  }
  return n;
}

std::size_t TraceStore::total_gaps() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const std::unique_ptr<FailureTrace>& t : traces_) {
    if (t) n += t->size();
  }
  return n;
}

std::unique_ptr<FailureTrace> TraceStore::materialize(std::size_t rep) const {
  // The stream campaigns assign to repetition `rep` (see Engine::run_campaign).
  Rng rng = Rng(seed_).fork(rep);
  std::vector<Seconds> gaps;
  if (regime_ != nullptr) {
    regime_->sample_gaps(rng, horizon_, gaps);
  } else if (dist_ != nullptr) {
    dist_->sample_gaps(rng, horizon_, gaps);
  } else {
    // Non-stationary sampler: feed it the same policy-independent failure
    // times (prefix sums of the gaps) a live run passes as gap_start.
    Seconds t = 0.0;
    while (t < horizon_) {
      const Seconds gap = sampler_(rng, t);
      gaps.push_back(gap);
      t += gap;
    }
  }
  return std::make_unique<FailureTrace>(std::move(gaps), horizon_);
}

}  // namespace shiraz::sim
