#include "sim/trace.h"

#include "obs/metrics.h"
#include "reliability/regimes.h"

namespace shiraz::sim {

FailureTrace::FailureTrace(std::vector<Seconds> gaps, Seconds horizon)
    : gaps_(std::move(gaps)), horizon_(horizon) {
  SHIRAZ_REQUIRE(horizon_ > 0.0, "trace horizon must be positive");
  SHIRAZ_REQUIRE(!gaps_.empty(), "trace needs at least one gap");
  // Prefix-sum the failure times with the same sequential additions a live
  // run performs (its clock sits on fail_{i-1} exactly when it adds gap_i),
  // so fail_time(i) replays bit-identically to the engine's `now + gap`.
  fail_times_.resize(gaps_.size());
  Seconds t = 0.0;
  for (std::size_t i = 0; i < gaps_.size(); ++i) {
    t += gaps_[i];
    fail_times_[i] = t;
  }
  // The gaps must be exactly the draws a live run consumes: the running sum
  // crosses the horizon at the last gap and not before.
  if (gaps_.size() >= 2) {
    SHIRAZ_REQUIRE(fail_times_[gaps_.size() - 2] < horizon_,
                   "trace has draws past the horizon");
  }
  SHIRAZ_REQUIRE(fail_times_.back() >= horizon_,
                 "trace stops short of the horizon");
}

TraceStore::TraceStore(const Engine& engine, std::uint64_t seed)
    : TraceStore(engine, seed, engine.config().t_total) {}

TraceStore::TraceStore(const Engine& engine, std::uint64_t seed, Seconds horizon)
    : sampler_(engine.gap_sampler()),
      dist_(engine.failure_distribution()),
      seed_(seed),
      horizon_(horizon) {
  SHIRAZ_REQUIRE(horizon_ > 0.0, "trace horizon must be positive");
}

TraceStore::TraceStore(const reliability::FailureRegime& regime,
                       std::uint64_t seed, Seconds horizon)
    : regime_(regime.clone()), seed_(seed), horizon_(horizon) {
  SHIRAZ_REQUIRE(horizon_ > 0.0, "trace horizon must be positive");
}

void TraceStore::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    traces_metric_ = gaps_metric_ = hits_metric_ = nullptr;
    resident_metric_ = nullptr;
    return;
  }
  traces_metric_ = &registry->counter("shiraz_trace_traces_materialized_total",
                                      "failure traces materialized");
  gaps_metric_ = &registry->counter("shiraz_trace_gaps_materialized_total",
                                    "inter-failure gaps materialized");
  hits_metric_ = &registry->counter("shiraz_trace_replay_hits_total",
                                    "trace lookups served from the cache");
  resident_metric_ = &registry->gauge("shiraz_trace_resident_bytes",
                                      "bytes held by materialized traces");
}

void TraceStore::note_materialized(const FailureTrace& trace) const {
  if (traces_metric_ == nullptr) return;
  traces_metric_->add(1);
  gaps_metric_->add(trace.size());
  // Each trace holds its gaps plus the prefix-summed failure times.
  resident_metric_->add(static_cast<double>(2 * sizeof(Seconds) * trace.size()));
}

void TraceStore::ensure(std::size_t reps) const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (traces_.size() < reps) traces_.resize(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    if (!traces_[r]) {
      traces_[r] = materialize(r);
      note_materialized(*traces_[r]);
    }
  }
}

const FailureTrace& TraceStore::trace(std::size_t rep) const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (traces_.size() <= rep) traces_.resize(rep + 1);
  if (!traces_[rep]) {
    traces_[rep] = materialize(rep);
    note_materialized(*traces_[rep]);
  } else if (hits_metric_ != nullptr) {
    hits_metric_->add(1);
  }
  return *traces_[rep];
}

std::size_t TraceStore::materialized() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const std::unique_ptr<FailureTrace>& t : traces_) {
    if (t) ++n;
  }
  return n;
}

std::size_t TraceStore::total_gaps() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const std::unique_ptr<FailureTrace>& t : traces_) {
    if (t) n += t->size();
  }
  return n;
}

std::unique_ptr<FailureTrace> TraceStore::materialize(std::size_t rep) const {
  // The stream campaigns assign to repetition `rep` (see Engine::run_campaign).
  Rng rng = Rng(seed_).fork(rep);
  std::vector<Seconds> gaps;
  if (regime_ != nullptr) {
    regime_->sample_gaps(rng, horizon_, gaps);
  } else if (dist_ != nullptr) {
    dist_->sample_gaps(rng, horizon_, gaps);
  } else {
    // Non-stationary sampler: feed it the same policy-independent failure
    // times (prefix sums of the gaps) a live run passes as gap_start.
    Seconds t = 0.0;
    while (t < horizon_) {
      const Seconds gap = sampler_(rng, t);
      gaps.push_back(gap);
      t += gap;
    }
  }
  return std::make_unique<FailureTrace>(std::move(gaps), horizon_);
}

}  // namespace shiraz::sim
