#include "sim/metrics.h"

#include "common/error.h"
#include "common/statistics.h"

namespace shiraz::sim {

Seconds SimResult::total_useful() const {
  Seconds t = 0.0;
  for (const auto& a : apps) t += a.useful;
  return t;
}

Seconds SimResult::total_io() const {
  Seconds t = 0.0;
  for (const auto& a : apps) t += a.io;
  return t;
}

Seconds SimResult::total_lost() const {
  Seconds t = 0.0;
  for (const auto& a : apps) t += a.lost;
  return t;
}

Seconds SimResult::accounted() const {
  Seconds t = idle + truncated;
  for (const auto& a : apps) t += a.busy();
  return t;
}

const AppMetrics& SimResult::app(const std::string& name) const {
  for (const auto& a : apps) {
    if (a.name == name) return a;
  }
  throw InvalidArgument("no app named " + name + " in result");
}

SimResult average(const std::vector<SimResult>& results) {
  SHIRAZ_REQUIRE(!results.empty(), "cannot average zero results");
  SimResult mean = results.front();
  const double n = static_cast<double>(results.size());
  for (std::size_t r = 1; r < results.size(); ++r) {
    const SimResult& x = results[r];
    SHIRAZ_REQUIRE(x.apps.size() == mean.apps.size(), "result layouts differ");
    for (std::size_t i = 0; i < x.apps.size(); ++i) {
      mean.apps[i].useful += x.apps[i].useful;
      mean.apps[i].io += x.apps[i].io;
      mean.apps[i].lost += x.apps[i].lost;
      mean.apps[i].restart += x.apps[i].restart;
      mean.apps[i].checkpoints += x.apps[i].checkpoints;
      mean.apps[i].proactive_checkpoints += x.apps[i].proactive_checkpoints;
      mean.apps[i].failures_hit += x.apps[i].failures_hit;
    }
    mean.idle += x.idle;
    mean.truncated += x.truncated;
    mean.failures += x.failures;
    mean.switches += x.switches;
    mean.alarms += x.alarms;
    mean.proactive_checkpoints += x.proactive_checkpoints;
    mean.wall += x.wall;
  }
  for (auto& a : mean.apps) {
    a.useful /= n;
    a.io /= n;
    a.lost /= n;
    a.restart /= n;
    a.checkpoints = static_cast<std::size_t>(static_cast<double>(a.checkpoints) / n);
    a.proactive_checkpoints =
        static_cast<std::size_t>(static_cast<double>(a.proactive_checkpoints) / n);
    a.failures_hit = static_cast<std::size_t>(static_cast<double>(a.failures_hit) / n);
  }
  mean.idle /= n;
  mean.truncated /= n;
  mean.wall /= n;
  mean.failures = static_cast<std::size_t>(static_cast<double>(mean.failures) / n);
  mean.switches = static_cast<std::size_t>(static_cast<double>(mean.switches) / n);
  mean.alarms = static_cast<std::size_t>(static_cast<double>(mean.alarms) / n);
  mean.proactive_checkpoints =
      static_cast<std::size_t>(static_cast<double>(mean.proactive_checkpoints) / n);
  return mean;
}

namespace {
MetricSummary to_summary(const RunningStats& stats) {
  MetricSummary s;
  s.mean = stats.mean();
  s.stddev = stats.stddev();
  s.ci95 = ci95_halfwidth(stats);
  s.min = stats.min();
  s.max = stats.max();
  return s;
}
}  // namespace

const AppSummary& CampaignSummary::app(const std::string& name) const {
  for (const auto& a : apps) {
    if (a.name == name) return a;
  }
  throw InvalidArgument("no app named " + name + " in campaign summary");
}

CampaignSummary summarize_campaign(const std::vector<SimResult>& per_rep) {
  SHIRAZ_REQUIRE(!per_rep.empty(), "cannot summarize zero repetitions");
  const std::size_t num_apps = per_rep.front().apps.size();
  struct AppAccum {
    RunningStats useful, io, lost, restart;
  };
  std::vector<AppAccum> app_accum(num_apps);
  RunningStats total_useful, total_io, total_lost, idle, failures, switches;
  for (const SimResult& r : per_rep) {
    SHIRAZ_REQUIRE(r.apps.size() == num_apps, "result layouts differ");
    for (std::size_t i = 0; i < num_apps; ++i) {
      app_accum[i].useful.add(r.apps[i].useful);
      app_accum[i].io.add(r.apps[i].io);
      app_accum[i].lost.add(r.apps[i].lost);
      app_accum[i].restart.add(r.apps[i].restart);
    }
    total_useful.add(r.total_useful());
    total_io.add(r.total_io());
    total_lost.add(r.total_lost());
    idle.add(r.idle);
    failures.add(static_cast<double>(r.failures));
    switches.add(static_cast<double>(r.switches));
  }

  CampaignSummary s;
  s.reps = per_rep.size();
  s.mean = average(per_rep);
  s.apps.resize(num_apps);
  for (std::size_t i = 0; i < num_apps; ++i) {
    s.apps[i].name = per_rep.front().apps[i].name;
    s.apps[i].useful = to_summary(app_accum[i].useful);
    s.apps[i].io = to_summary(app_accum[i].io);
    s.apps[i].lost = to_summary(app_accum[i].lost);
    s.apps[i].restart = to_summary(app_accum[i].restart);
  }
  s.total_useful = to_summary(total_useful);
  s.total_io = to_summary(total_io);
  s.total_lost = to_summary(total_lost);
  s.idle = to_summary(idle);
  s.failures = to_summary(failures);
  s.switches = to_summary(switches);
  return s;
}

}  // namespace shiraz::sim
