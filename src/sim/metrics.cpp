#include "sim/metrics.h"

#include "common/error.h"

namespace shiraz::sim {

Seconds SimResult::total_useful() const {
  Seconds t = 0.0;
  for (const auto& a : apps) t += a.useful;
  return t;
}

Seconds SimResult::total_io() const {
  Seconds t = 0.0;
  for (const auto& a : apps) t += a.io;
  return t;
}

Seconds SimResult::total_lost() const {
  Seconds t = 0.0;
  for (const auto& a : apps) t += a.lost;
  return t;
}

Seconds SimResult::accounted() const {
  Seconds t = idle + truncated;
  for (const auto& a : apps) t += a.busy();
  return t;
}

const AppMetrics& SimResult::app(const std::string& name) const {
  for (const auto& a : apps) {
    if (a.name == name) return a;
  }
  throw InvalidArgument("no app named " + name + " in result");
}

SimResult average(const std::vector<SimResult>& results) {
  SHIRAZ_REQUIRE(!results.empty(), "cannot average zero results");
  SimResult mean = results.front();
  const double n = static_cast<double>(results.size());
  for (std::size_t r = 1; r < results.size(); ++r) {
    const SimResult& x = results[r];
    SHIRAZ_REQUIRE(x.apps.size() == mean.apps.size(), "result layouts differ");
    for (std::size_t i = 0; i < x.apps.size(); ++i) {
      mean.apps[i].useful += x.apps[i].useful;
      mean.apps[i].io += x.apps[i].io;
      mean.apps[i].lost += x.apps[i].lost;
      mean.apps[i].restart += x.apps[i].restart;
      mean.apps[i].checkpoints += x.apps[i].checkpoints;
      mean.apps[i].failures_hit += x.apps[i].failures_hit;
    }
    mean.idle += x.idle;
    mean.truncated += x.truncated;
    mean.failures += x.failures;
    mean.switches += x.switches;
    mean.wall += x.wall;
  }
  for (auto& a : mean.apps) {
    a.useful /= n;
    a.io /= n;
    a.lost /= n;
    a.restart /= n;
    a.checkpoints = static_cast<std::size_t>(static_cast<double>(a.checkpoints) / n);
    a.failures_hit = static_cast<std::size_t>(static_cast<double>(a.failures_hit) / n);
  }
  mean.idle /= n;
  mean.truncated /= n;
  mean.wall /= n;
  mean.failures = static_cast<std::size_t>(static_cast<double>(mean.failures) / n);
  mean.switches = static_cast<std::size_t>(static_cast<double>(mean.switches) / n);
  return mean;
}

}  // namespace shiraz::sim
