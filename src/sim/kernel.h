// Flat replay kernel: batched structure-of-arrays campaign evaluation.
//
// For closed-form-eligible configurations — free restarts and switches,
// periodic schedules, no alarm source, no event sink, and a scheduler whose
// per-gap behavior is a fixed phase plan — a campaign over a materialized
// FailureTrace is fully determined by the trace's gap/prefix-sum arrays.
// flat_replay() walks those arrays directly: no virtual next_interval per
// segment, no SchedContext construction, no per-event emit checks, no
// per-gap checkpoint-count vectors — just the engine's three comparisons and
// its accumulator additions per segment.
//
// Bit-identity contract (the same one sim/optimizer.cpp's sweep documents):
// the kernel performs the engine's useful/io/lost/truncated additions on the
// same doubles in the same chronological order, resolves every segment with
// the engine's exact comparison structure (`write_start = now + tau;
// seg_end = write_start + delta`; truncate iff horizon <= min(seg_end,
// next_fail); fail iff next_fail < seg_end), and reads failure times from
// FailureTrace::fail_times() — prefix sums built with the additions a live
// run performs. The result therefore equals Engine::replay bit for bit
// (enforced by tests/sim/kernel_test.cpp and micro_engine_throughput
// --check); Engine::run_impl dispatches here automatically when
// EngineConfig::flat_kernel is set and eligibility holds.
#pragma once

#include <vector>

#include "sim/engine.h"

namespace shiraz::sim {

struct SweepUseful;

/// Why a configuration can(not) take the flat kernel. `reason` points at a
/// static string ("" when eligible) so the check is allocation-free — it runs
/// once per replayed repetition.
struct KernelEligibility {
  bool eligible = false;
  const char* reason = "";

  explicit operator bool() const { return eligible; }
};

/// Checks every eligibility rule the kernel relies on:
///  * config models free restarts and switches (restart_cost == switch_cost
///    == 0) and has no engine-level event sink;
///  * no alarm source and no campaign sink (pass the call-site values);
///  * every job schedule is periodic (IntervalSchedule::period() non-null);
///  * the scheduler is exactly (typeid, not is-a — subclasses may override
///    hooks) AlternateAtFailure, ShirazPairScheduler, MultiSwitchScheduler,
///    or PairRotationScheduler, with an app count the policy accepts.
/// Anything else falls back to the event loop, which preserves both behavior
/// and error messages (e.g. a pair policy given three apps still throws the
/// policy's own InvalidArgument).
KernelEligibility flat_kernel_eligibility(const EngineConfig& config,
                                          const std::vector<SimJob>& jobs,
                                          const Scheduler& scheduler,
                                          const AlarmSource* alarms,
                                          const obs::EventSink* sink);

/// Replays one repetition through the flat kernel. Requires eligibility (see
/// flat_kernel_eligibility) and a trace whose horizon covers the config's;
/// returns exactly what Engine::replay returns for the same inputs.
SimResult flat_replay(const EngineConfig& config, const std::vector<SimJob>& jobs,
                      const Scheduler& scheduler, const FailureTrace& trace);

/// The engine's dispatch entry: checks eligibility and, when it holds, runs
/// the kernel into `*out` in one pass — the phase plan is built exactly once
/// per repetition (flat_kernel_eligibility followed by flat_replay would
/// build it twice). Returns false untouched when ineligible, so the caller
/// falls back to the event loop.
bool try_flat_replay(const EngineConfig& config, const std::vector<SimJob>& jobs,
                     const Scheduler& scheduler, const AlarmSource* alarms,
                     const obs::EventSink* sink, const FailureTrace& trace,
                     SimResult* out);

/// One repetition of the shared-prefix k sweep on the kernel: the flat
/// counterpart of sim/optimizer.cpp's sweep_one_rep for periodic schedules,
/// with the light-weight interval hoisted to `tau_lw` (== the LW schedule's
/// period) and the heavy-weight to `tau_hw`. Accumulates, per candidate
/// k in [k_lo, k_lo + acc.size()), the useful-work additions ShirazPair(k)
/// performs over `trace` — bit-identical to the event loop's (the hoisted
/// period equals every next_interval return by the period() contract).
void flat_pair_sweep_rep(Seconds tau_lw, Seconds delta_lw, Seconds tau_hw,
                         Seconds delta_hw, int k_lo, Seconds horizon,
                         const FailureTrace& trace,
                         std::vector<SweepUseful>& acc);

}  // namespace shiraz::sim
