#include "sim/kernel.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <typeinfo>
#include <vector>

#include "common/error.h"
#include "sim/optimizer.h"
#include "sim/trace.h"

namespace shiraz::sim {

namespace {

constexpr std::size_t kUnbounded = std::numeric_limits<std::size_t>::max();

/// One scheduler phase inside a gap: run `app` until it completes `budget`
/// checkpoints (kUnbounded = until the gap ends).
struct KernelPhase {
  std::size_t app = 0;
  std::size_t budget = kUnbounded;
};

/// The scheduler's behavior flattened into per-gap phase plans. Every
/// supported policy is gap-local: which apps run, in what order, and for how
/// many checkpoints depends only on the failure count at gap start, cycling
/// with period plans.size(). Plan `f % plans.size()` governs the gap opened
/// by failure number f (the campaign opens with f == 0).
struct FlatPlan {
  std::vector<std::vector<KernelPhase>> plans;
};

/// Flattens `scheduler` for `num_apps` apps, or returns a static reason why
/// it cannot. Matches exact dynamic types: a subclass may override any hook,
/// so an is-a match would be unsound.
const char* build_plan(std::size_t num_apps, const Scheduler& scheduler,
                       FlatPlan* out) {
  const std::type_info& type = typeid(scheduler);
  if (type == typeid(AlternateAtFailure)) {
    // Gap f runs app f % n until the next failure.
    out->plans.resize(num_apps);
    for (std::size_t i = 0; i < num_apps; ++i) {
      out->plans[i] = {KernelPhase{i, kUnbounded}};
    }
    return nullptr;
  }
  if (type == typeid(ShirazPairScheduler)) {
    if (num_apps != 2) return "ShirazPairScheduler needs exactly two apps";
    const int k = static_cast<const ShirazPairScheduler&>(scheduler).k();
    out->plans.resize(1);
    if (k == 0) {
      out->plans[0] = {KernelPhase{1, kUnbounded}};
    } else {
      out->plans[0] = {KernelPhase{0, static_cast<std::size_t>(k)},
                       KernelPhase{1, kUnbounded}};
    }
    return nullptr;
  }
  if (type == typeid(MultiSwitchScheduler)) {
    const std::vector<int>& ks =
        static_cast<const MultiSwitchScheduler&>(scheduler).ks();
    if (num_apps != ks.size() + 1) {
      return "MultiSwitchScheduler app count must be one more than its ks";
    }
    // Zero counts skip that app's turn (Scheduler::next_runnable semantics);
    // the last app always runs to the gap's end.
    std::vector<KernelPhase> plan;
    for (std::size_t i = 0; i < ks.size(); ++i) {
      if (ks[i] > 0) plan.push_back({i, static_cast<std::size_t>(ks[i])});
    }
    plan.push_back({ks.size(), kUnbounded});
    out->plans = {std::move(plan)};
    return nullptr;
  }
  if (type == typeid(PairRotationScheduler)) {
    const std::vector<std::optional<int>>& ks =
        static_cast<const PairRotationScheduler&>(scheduler).ks();
    if (num_apps != 2 * ks.size()) {
      return "PairRotationScheduler app count must be 2 * pairs";
    }
    // Rotation r picks pair r % P; pairs without a k alternate their lead
    // across rotations via (r / P) % 2, so the whole cycle has period 2P.
    const std::size_t pairs = ks.size();
    out->plans.resize(2 * pairs);
    for (std::size_t r = 0; r < 2 * pairs; ++r) {
      const std::size_t pair = r % pairs;
      const std::size_t lw = 2 * pair;
      const std::size_t hw = lw + 1;
      std::vector<KernelPhase>& plan = out->plans[r];
      if (!ks[pair]) {
        plan = {KernelPhase{(r / pairs) % 2 == 0 ? lw : hw, kUnbounded}};
      } else if (*ks[pair] == 0) {
        plan = {KernelPhase{hw, kUnbounded}};
      } else {
        plan = {KernelPhase{lw, static_cast<std::size_t>(*ks[pair])},
                KernelPhase{hw, kUnbounded}};
      }
    }
    return nullptr;
  }
  return "scheduler has no flat phase-plan form";
}

/// Eligibility rules + plan construction in one pass (the plan is the last
/// and most expensive rule, so the engine's per-repetition dispatch builds
/// it exactly once). Returns nullptr and fills `*out` when eligible.
const char* check_and_plan(const EngineConfig& config,
                           const std::vector<SimJob>& jobs,
                           const Scheduler& scheduler, const AlarmSource* alarms,
                           const obs::EventSink* sink, FlatPlan* out) {
  if (config.restart_cost != 0.0) return "restart cost is not free";
  if (config.switch_cost != 0.0) return "switch cost is not free";
  if (config.sink != nullptr || sink != nullptr) {
    return "an event sink observes the run";
  }
  if (alarms != nullptr) return "an alarm source is armed";
  if (jobs.empty()) return "no jobs";
  for (const SimJob& job : jobs) {
    if (job.schedule == nullptr) return "job has no interval schedule";
    if (!job.schedule->period()) return "job schedule is not periodic";
  }
  return build_plan(jobs.size(), scheduler, out);
}

/// The kernel proper: one repetition over a prebuilt phase plan.
SimResult run_flat(const EngineConfig& config, const std::vector<SimJob>& jobs,
                   const Scheduler& scheduler, const FlatPlan& flat,
                   const FailureTrace& trace) {
  SHIRAZ_REQUIRE(trace.horizon() >= config.t_total,
                 "trace horizon does not cover the engine horizon");
  for (const SimJob& job : jobs) {
    SHIRAZ_REQUIRE(job.delta > 0.0, "job checkpoint cost must be positive");
    SHIRAZ_REQUIRE(*job.schedule->period() > 0.0,
                   "schedule produced a non-positive interval");
  }
  scheduler.reset();  // the engine contract; eligible policies are stateless

  const std::size_t cycle = flat.plans.size();

  // Per-app constants, hoisted once (structure-of-arrays view of the jobs).
  const std::size_t napps = jobs.size();
  std::vector<Seconds> taus(napps);
  std::vector<Seconds> deltas(napps);
  for (std::size_t i = 0; i < napps; ++i) {
    taus[i] = *jobs[i].schedule->period();
    deltas[i] = jobs[i].delta;
  }

  SimResult res;
  res.wall = config.t_total;
  res.apps.resize(napps);
  for (std::size_t i = 0; i < napps; ++i) res.apps[i].name = jobs[i].name;

  const Seconds horizon = config.t_total;
  // Raw prefix-sum array: the FailureTrace invariant (every entry before the
  // last is < horizon, the last is >= horizon) guarantees the cursor below
  // never advances past the end — a new entry is read only after a failure
  // strictly before the horizon.
  const Seconds* fail_times = trace.fail_times().data();
  std::size_t cursor = 0;
  Seconds now = 0.0;
  Seconds next_fail = fail_times[cursor++];

  // Tracks res.failures % cycle without the per-gap division — failures
  // advance by exactly one per gap.
  std::size_t plan_idx = 0;
  for (;;) {
    const std::vector<KernelPhase>& plan = flat.plans[plan_idx];
    std::size_t phase = 0;
    std::size_t ai = plan[0].app;
    Seconds tau = taus[ai];
    Seconds delta = deltas[ai];
    AppMetrics* am = &res.apps[ai];
    std::size_t done_in_phase = 0;
    for (;;) {
      // The engine's exact segment resolution: compute [now, write_start),
      // checkpoint write [write_start, seg_end), three-way compare.
      const Seconds write_start = now + tau;
      const Seconds seg_end = write_start + delta;
      if (horizon <= seg_end && horizon <= next_fail) {
        res.truncated += horizon - now;
        return res;  // `now = horizon` in the engine; nothing reads it after
      }
      if (next_fail < seg_end) {
        am->lost += next_fail - now;
        now = next_fail;
        ++res.failures;
        ++am->failures_hit;
        next_fail = fail_times[cursor++];
        if (++plan_idx == cycle) plan_idx = 0;
        break;  // next gap: re-plan from the new failure count
      }
      am->useful += tau;
      am->io += delta;
      ++am->checkpoints;
      now = seg_end;
      if (++done_in_phase >= plan[phase].budget) {
        ++phase;
        const std::size_t next_app = plan[phase].app;
        if (next_app != ai) ++res.switches;  // free hand-off (switch_cost 0)
        ai = next_app;
        tau = taus[ai];
        delta = deltas[ai];
        am = &res.apps[ai];
        done_in_phase = 0;
      }
    }
  }
}

}  // namespace

KernelEligibility flat_kernel_eligibility(const EngineConfig& config,
                                          const std::vector<SimJob>& jobs,
                                          const Scheduler& scheduler,
                                          const AlarmSource* alarms,
                                          const obs::EventSink* sink) {
  FlatPlan plan;
  if (const char* reason =
          check_and_plan(config, jobs, scheduler, alarms, sink, &plan)) {
    return KernelEligibility{false, reason};
  }
  return KernelEligibility{true, ""};
}

SimResult flat_replay(const EngineConfig& config, const std::vector<SimJob>& jobs,
                      const Scheduler& scheduler, const FailureTrace& trace) {
  FlatPlan flat;
  const char* reason =
      check_and_plan(config, jobs, scheduler, nullptr, nullptr, &flat);
  SHIRAZ_REQUIRE(reason == nullptr,
                 std::string("flat_replay on an ineligible configuration: ") +
                     reason);
  return run_flat(config, jobs, scheduler, flat, trace);
}

bool try_flat_replay(const EngineConfig& config, const std::vector<SimJob>& jobs,
                     const Scheduler& scheduler, const AlarmSource* alarms,
                     const obs::EventSink* sink, const FailureTrace& trace,
                     SimResult* out) {
  SHIRAZ_REQUIRE(out != nullptr, "try_flat_replay needs an output slot");
  FlatPlan flat;
  if (check_and_plan(config, jobs, scheduler, alarms, sink, &flat) != nullptr) {
    return false;
  }
  *out = run_flat(config, jobs, scheduler, flat, trace);
  return true;
}

void flat_pair_sweep_rep(Seconds tau_lw, Seconds delta_lw, Seconds tau_hw,
                         Seconds delta_hw, int k_lo, Seconds horizon,
                         const FailureTrace& trace,
                         std::vector<SweepUseful>& acc) {
  const std::size_t n = acc.size();
  const int k_hi = k_lo + static_cast<int>(n) - 1;
  const std::size_t k_lo_sz = static_cast<std::size_t>(k_lo);
  const std::size_t k_hi_sz = static_cast<std::size_t>(k_hi);
  // Completed light-weight segment end times of the current gap, shared by
  // every candidate that has not switched yet (the intervals are all tau_lw).
  // A flat scratch buffer indexed by a count — the prefix loop is the hottest
  // code in the sweep and a push_back capacity check per segment shows up.
  std::vector<Seconds> seg_end_buf(k_hi_sz);
  Seconds* const seg_end_at = seg_end_buf.data();

  // Candidate k's engine accumulator performs only `useful += tau` additions
  // of one constant per app, so its final value is a pure function of the
  // ADDITION COUNT: n sequential adds of tau starting from 0.0, exactly the
  // sequence the event loop interleaves across gaps. The hot loop therefore
  // only counts completed segments per candidate (integer adds, no FP
  // dependency chains), and one shared iterated-sum pass at the end converts
  // counts back to the engine's doubles.
  std::vector<std::size_t> lw_segments(n, 0);
  std::vector<std::size_t> hw_segments(n, 0);

  const Seconds* fail_times = trace.fail_times().data();
  std::size_t cursor = 0;
  Seconds gap_start = 0.0;
  Seconds next_fail = fail_times[cursor++];
  for (;;) {
    // Light-weight prefix: the engine's comparisons verbatim, with the
    // periodic interval hoisted out of the loop.
    std::size_t completed = 0;
    Seconds now = gap_start;
    while (completed < k_hi_sz) {
      const Seconds seg_end = now + tau_lw + delta_lw;
      if (horizon <= seg_end && horizon <= next_fail) break;
      if (next_fail < seg_end) break;
      seg_end_at[completed++] = seg_end;
      now = seg_end;
    }

    // Candidates split into two branch-free ranges: k <= completed switched
    // (credit k, walk the heavy-weight tail); the rest were still
    // light-weight when the gap ended (credit every completed segment).
    const std::size_t switched =
        completed < k_lo_sz ? 0 : std::min(n, completed - k_lo_sz + 1);
    for (std::size_t i = 0; i < switched; ++i) {
      const std::size_t k = k_lo_sz + i;
      lw_segments[i] += k;
      Seconds t = seg_end_at[k - 1];
      for (;;) {
        const Seconds seg_end = t + tau_hw + delta_hw;
        if (horizon <= seg_end && horizon <= next_fail) break;
        if (next_fail < seg_end) break;
        ++hw_segments[i];
        t = seg_end;
      }
    }
    for (std::size_t i = switched; i < n; ++i) lw_segments[i] += completed;

    if (next_fail >= horizon) break;
    gap_start = next_fail;
    next_fail = fail_times[cursor++];
  }

  // Replay the engine's accumulator additions once, shared across the range:
  // running_lw after m iterations equals m sequential `+= tau_lw` from 0.0 —
  // the exact double every candidate with m credited segments ends at. A
  // multiplication would round differently and break bit-identity.
  const std::size_t max_lw = *std::max_element(lw_segments.begin(), lw_segments.end());
  const std::size_t max_hw = *std::max_element(hw_segments.begin(), hw_segments.end());
  std::vector<Seconds> lw_sum(max_lw + 1, 0.0);
  std::vector<Seconds> hw_sum(max_hw + 1, 0.0);
  for (std::size_t m = 1; m <= max_lw; ++m) lw_sum[m] = lw_sum[m - 1] + tau_lw;
  for (std::size_t m = 1; m <= max_hw; ++m) hw_sum[m] = hw_sum[m - 1] + tau_hw;
  for (std::size_t i = 0; i < n; ++i) {
    acc[i].lw += lw_sum[lw_segments[i]];
    acc[i].hw += hw_sum[hw_segments[i]];
  }
}

}  // namespace shiraz::sim
