// Failure alarms: the simulator-facing contract of a failure predictor.
//
// An AlarmSource is consulted by the engine every time it arms a new
// inter-failure gap and returns the alarms that will fire inside that gap —
// true predictions placed ahead of the gap-ending failure plus any false
// alarms. The engine delivers each alarm to the scheduling policy through
// Scheduler::on_alarm, which may respond with a proactive checkpoint (see
// AlarmAction in scheduler.h). Concrete predictors live in src/predict; the
// interface lives here so the simulator does not depend on that module.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace shiraz::sim {

/// One predicted failure.
struct Alarm {
  /// Absolute simulated time at which the alarm fires.
  Seconds time = 0.0;
  /// Claimed time-to-failure at `time`. For a true prediction the failure
  /// arrives `lead` seconds after the alarm; a false alarm's claimed failure
  /// never materializes.
  Seconds lead = 0.0;
};

/// Produces the alarms for one inter-failure gap. Called once per armed gap
/// with the gap's true length, which lets oracle-style predictors thin the
/// real failure sequence to a configured precision/recall; honest predictors
/// must derive alarms from previously observed gaps only.
///
/// Follows the Scheduler mutability idiom: engines hold sources by const
/// pointer across runs, so stateful sources keep run state in mutable members,
/// reset() wipes it at the start of every run, and clone() returns a private
/// copy for each parallel Monte-Carlo repetition (nullptr = stateless, share
/// freely across worker threads).
class AlarmSource {
 public:
  virtual ~AlarmSource() = default;

  /// Called once per simulation run before any gap; clears run state.
  virtual void reset() const {}

  /// Alarms for the gap starting at `gap_start` whose failure arrives
  /// `gap_length` seconds later. Alarms outside [gap_start, gap_start +
  /// gap_length) are discarded by the engine. `rng` is a dedicated prediction
  /// stream forked off the repetition's RNG, so drawing from it never
  /// perturbs the failure sequence.
  virtual std::vector<Alarm> alarms_in_gap(Seconds gap_start, Seconds gap_length,
                                           Rng& rng) const = 0;

  /// Copy hook for parallel Monte-Carlo dispatch, mirroring
  /// Scheduler::clone(): sources with mutable run state MUST return a private
  /// copy; nullptr means "share me freely across threads".
  virtual std::unique_ptr<AlarmSource> clone() const { return nullptr; }

  virtual std::string name() const = 0;
};

}  // namespace shiraz::sim
