#include "sim/optimizer.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace shiraz::sim {

SimSwitchCandidate simulate_switch_point(const Engine& engine, const SimJob& lw,
                                         const SimJob& hw, int k, std::size_t reps,
                                         std::uint64_t seed, std::size_t workers) {
  const std::vector<SimJob> jobs{lw, hw};
  const AlternateAtFailure baseline_policy;
  const ShirazPairScheduler shiraz_policy(k);
  // Same seed => same failure streams for both policies (the engine draws
  // failures identically regardless of policy), so the difference is pure
  // policy effect.
  const SimResult base = engine.run_many(jobs, baseline_policy, reps, seed, workers);
  const SimResult sz = engine.run_many(jobs, shiraz_policy, reps, seed, workers);
  SimSwitchCandidate c;
  c.k = k;
  c.delta_lw = sz.apps[0].useful - base.apps[0].useful;
  c.delta_hw = sz.apps[1].useful - base.apps[1].useful;
  c.delta_total = c.delta_lw + c.delta_hw;
  return c;
}

SimSwitchSolution find_fair_k_by_simulation(const Engine& engine, const SimJob& lw,
                                            const SimJob& hw, int k_lo, int k_hi,
                                            std::size_t reps, std::uint64_t seed,
                                            std::size_t workers) {
  SHIRAZ_REQUIRE(k_lo >= 1 && k_hi >= k_lo, "invalid k range");
  const std::vector<SimJob> jobs{lw, hw};
  const AlternateAtFailure baseline_policy;
  const SimResult base = engine.run_many(jobs, baseline_policy, reps, seed, workers);

  SimSwitchSolution sol;
  // Same fairness criterion the model solver applies: the k nearest the
  // Delta_LW = Delta_HW crossing, accepted only when the total gain there is
  // material (see core::solve_switch_point).
  double best_gap = std::numeric_limits<double>::infinity();
  SimSwitchCandidate best;
  bool have_candidate = false;
  for (int k = k_lo; k <= k_hi; ++k) {
    const ShirazPairScheduler policy(k);
    const SimResult sz = engine.run_many(jobs, policy, reps, seed, workers);
    SimSwitchCandidate c;
    c.k = k;
    c.delta_lw = sz.apps[0].useful - base.apps[0].useful;
    c.delta_hw = sz.apps[1].useful - base.apps[1].useful;
    c.delta_total = c.delta_lw + c.delta_hw;
    sol.sweep.push_back(c);
    const double gap = std::fabs(c.delta_lw - c.delta_hw);
    if (gap < best_gap) {
      best_gap = gap;
      best = c;
      have_candidate = true;
    }
  }
  const double materiality = 1e-4 * (base.apps[0].useful + base.apps[1].useful);
  if (have_candidate && best.delta_total > materiality) {
    sol.k = best.k;
    sol.delta_lw = best.delta_lw;
    sol.delta_hw = best.delta_hw;
    sol.delta_total = best.delta_total;
  }
  return sol;
}

}  // namespace shiraz::sim
