#include "sim/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/error.h"
#include "common/thread_pool.h"
#include "sim/kernel.h"
#include "sim/trace.h"

namespace shiraz::sim {

namespace {

SimSwitchCandidate candidate_from(int k, double lw_useful, double hw_useful,
                                  const SimResult& base) {
  SimSwitchCandidate c;
  c.k = k;
  c.delta_lw = lw_useful - base.apps[0].useful;
  c.delta_hw = hw_useful - base.apps[1].useful;
  c.delta_total = c.delta_lw + c.delta_hw;
  return c;
}

/// One repetition of the shared-prefix k sweep. Mirrors Engine::run for
/// ShirazPairScheduler under the free-restart/free-switch configuration and
/// accumulates, per candidate, exactly the useful-work additions the engine
/// performs in exactly its chronological order — the per-app accumulators see
/// the same doubles added in the same sequence, so the per-repetition totals
/// are bit-identical to engine replays of the same trace.
void sweep_one_rep(const SimJob& lw, const SimJob& hw, int k_lo, int k_hi,
                   Seconds horizon, const FailureTrace& trace,
                   std::vector<SweepUseful>& acc) {
  const std::size_t n = acc.size();
  // Periodic schedules answer next_interval identically for every elapsed
  // time (the period() contract: bit-equal to each virtual call), so the
  // dispatch hoists out of the per-segment loops. Aperiodic schedules keep
  // the per-segment call.
  const std::optional<Seconds> lw_period = lw.schedule->period();
  const std::optional<Seconds> hw_period = hw.schedule->period();
  // Completed light-weight segments of the current gap: interval lengths and
  // segment-end times, shared by every candidate that has not switched yet.
  std::vector<Seconds> seg_tau;
  std::vector<Seconds> seg_end_at;
  seg_tau.reserve(static_cast<std::size_t>(k_hi));
  seg_end_at.reserve(static_cast<std::size_t>(k_hi));

  std::size_t cursor = 0;
  Seconds gap_start = 0.0;
  Seconds next_fail = trace.fail_time(cursor++);
  for (;;) {
    // Light-weight prefix: segments complete until the gap ends (failure or
    // horizon) or every candidate has switched (k_hi checkpoints). The
    // three-way resolution matches the engine's comparisons verbatim.
    seg_tau.clear();
    seg_end_at.clear();
    Seconds now = gap_start;
    while (static_cast<int>(seg_tau.size()) < k_hi) {
      const Seconds tau =
          lw_period ? *lw_period : lw.schedule->next_interval(now - gap_start);
      const Seconds seg_end = now + tau + lw.delta;
      if (horizon <= std::min(seg_end, next_fail)) break;
      if (next_fail < seg_end) break;
      seg_tau.push_back(tau);
      seg_end_at.push_back(seg_end);
      now = seg_end;
    }
    const std::size_t completed = seg_tau.size();

    // Per candidate: useful light-weight work up to its switch point, then
    // its heavy-weight tail until the gap ends. The tail re-runs per
    // candidate, but it is short (the k-th checkpoint sits deep in the gap
    // by design) while the prefix — the bulk of the event work — is shared.
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = static_cast<std::size_t>(k_lo) + i;
      const std::size_t credited = std::min(k, completed);
      for (std::size_t j = 0; j < credited; ++j) acc[i].lw += seg_tau[j];
      if (k > completed) continue;  // still light-weight when the gap ended
      Seconds t = seg_end_at[k - 1];
      for (;;) {
        const Seconds tau =
            hw_period ? *hw_period : hw.schedule->next_interval(t - gap_start);
        const Seconds seg_end = t + tau + hw.delta;
        if (horizon <= std::min(seg_end, next_fail)) break;
        if (next_fail < seg_end) break;
        acc[i].hw += tau;
        t = seg_end;
      }
    }

    if (next_fail >= horizon) break;
    gap_start = next_fail;
    next_fail = trace.fail_time(cursor++);
  }
}

}  // namespace

SimSwitchCandidate simulate_switch_point(const Engine& engine, const SimJob& lw,
                                         const SimJob& hw, int k, std::size_t reps,
                                         std::uint64_t seed, std::size_t workers) {
  // Same seed => same failure streams for both policies (the engine draws
  // failures identically regardless of policy), so the difference is pure
  // policy effect; the store makes the sharing explicit and samples once.
  TraceStore traces(engine, seed);
  traces.ensure(reps);
  CampaignOptions opts;
  opts.workers = workers;
  opts.traces = &traces;
  const std::vector<SimJob> jobs{lw, hw};
  const AlternateAtFailure baseline_policy;
  const SimResult base = engine.run_many(jobs, baseline_policy, reps, seed, opts);
  return simulate_switch_point(engine, lw, hw, k, base, reps, seed, opts);
}

SimSwitchCandidate simulate_switch_point(const Engine& engine, const SimJob& lw,
                                         const SimJob& hw, int k,
                                         const SimResult& baseline,
                                         std::size_t reps, std::uint64_t seed,
                                         const CampaignOptions& opts) {
  const std::vector<SimJob> jobs{lw, hw};
  const ShirazPairScheduler shiraz_policy(k);
  const SimResult sz = engine.run_many(jobs, shiraz_policy, reps, seed, opts);
  return candidate_from(k, sz.apps[0].useful, sz.apps[1].useful, baseline);
}

SimSwitchSolution find_fair_k_by_simulation(const Engine& engine, const SimJob& lw,
                                            const SimJob& hw, int k_lo, int k_hi,
                                            std::size_t reps, std::uint64_t seed,
                                            std::size_t workers) {
  SHIRAZ_REQUIRE(k_lo >= 1 && k_hi >= k_lo, "invalid k range");
  const std::vector<SimJob> jobs{lw, hw};

  // Sample every repetition's failure stream once and spawn threads once:
  // the baseline and all candidates replay the same store on the same pool.
  TraceStore traces(engine, seed);
  traces.ensure(reps);
  std::optional<common::ThreadPool> pool;
  if (workers > 1 && reps > 1) pool.emplace(std::min(workers, reps));
  CampaignOptions opts;
  opts.workers = workers;
  opts.traces = &traces;
  opts.pool = pool ? &*pool : nullptr;

  const AlternateAtFailure baseline_policy;
  const SimResult base = engine.run_many(jobs, baseline_policy, reps, seed, opts);

  SimSwitchSolution sol;
  // Same fairness criterion the model solver applies: the k nearest the
  // Delta_LW = Delta_HW crossing, accepted only when the total gain there is
  // material (see core::solve_switch_point).
  double best_gap = std::numeric_limits<double>::infinity();
  SimSwitchCandidate best;
  bool have_candidate = false;
  auto consider = [&](const SimSwitchCandidate& c) {
    sol.sweep.push_back(c);
    const double gap = std::fabs(c.delta_lw - c.delta_hw);
    if (gap < best_gap) {
      best_gap = gap;
      best = c;
      have_candidate = true;
    }
  };

  if (engine.config().restart_cost == 0.0 && engine.config().switch_cost == 0.0) {
    // Free restarts and switches (the paper's model setting): one replayed
    // pass evaluates the whole range, sharing each gap's light-weight prefix
    // across candidates — bit-identical to the per-candidate campaigns.
    const std::vector<SweepUseful> sweep = replay_pair_sweep(
        engine, lw, hw, k_lo, k_hi, reps, traces, workers, opts.pool);
    for (int k = k_lo; k <= k_hi; ++k) {
      const SweepUseful& u = sweep[static_cast<std::size_t>(k - k_lo)];
      consider(candidate_from(k, u.lw, u.hw, base));
    }
  } else {
    for (int k = k_lo; k <= k_hi; ++k) {
      consider(simulate_switch_point(engine, lw, hw, k, base, reps, seed, opts));
    }
  }

  const double materiality = 1e-4 * (base.apps[0].useful + base.apps[1].useful);
  if (have_candidate && best.delta_total > materiality) {
    sol.k = best.k;
    sol.delta_lw = best.delta_lw;
    sol.delta_hw = best.delta_hw;
    sol.delta_total = best.delta_total;
  }
  return sol;
}

std::vector<SweepUseful> replay_pair_sweep(const Engine& engine, const SimJob& lw,
                                           const SimJob& hw, int k_lo, int k_hi,
                                           std::size_t reps, const TraceStore& traces,
                                           std::size_t workers,
                                           common::ThreadPool* pool) {
  SHIRAZ_REQUIRE(k_lo >= 1 && k_hi >= k_lo, "invalid k range");
  SHIRAZ_REQUIRE(reps >= 1, "need at least one repetition");
  SHIRAZ_REQUIRE(
      engine.config().restart_cost == 0.0 && engine.config().switch_cost == 0.0,
      "replay_pair_sweep models free restarts and switches");
  SHIRAZ_REQUIRE(lw.delta > 0.0 && hw.delta > 0.0,
                 "job checkpoint cost must be positive");
  SHIRAZ_REQUIRE(lw.schedule != nullptr && hw.schedule != nullptr,
                 "job needs an interval schedule");
  SHIRAZ_REQUIRE(traces.horizon() >= engine.config().t_total,
                 "trace store horizon does not cover the engine horizon");
  traces.ensure(reps);

  const Seconds horizon = engine.config().t_total;
  const std::size_t n = static_cast<std::size_t>(k_hi - k_lo + 1);
  std::vector<std::vector<SweepUseful>> per_rep(reps, std::vector<SweepUseful>(n));
  // Periodic pairs take the flat kernel's sweep (hoisted intervals, cached
  // failure prefix sums — sim/kernel.h) unless the engine opted out of the
  // kernel; both paths perform identical accumulator additions, so the
  // output is the same bits either way.
  const std::optional<Seconds> lw_period = lw.schedule->period();
  const std::optional<Seconds> hw_period = hw.schedule->period();
  const bool flat =
      engine.config().flat_kernel && lw_period.has_value() && hw_period.has_value();
  auto one_rep = [&](std::size_t r) {
    if (flat) {
      flat_pair_sweep_rep(*lw_period, lw.delta, *hw_period, hw.delta, k_lo,
                          horizon, traces.trace(r), per_rep[r]);
    } else {
      sweep_one_rep(lw, hw, k_lo, k_hi, horizon, traces.trace(r), per_rep[r]);
    }
  };
  if ((workers <= 1 && pool == nullptr) || reps == 1) {
    for (std::size_t r = 0; r < reps; ++r) one_rep(r);
  } else {
    common::PoolHandle handle(pool, std::min(workers, reps));
    common::parallel_for_indexed(handle.get(), reps, one_rep);
  }

  // Merge in repetition order with sim::average's exact accumulation (sum in
  // order, then divide), so the means match run_many's bit for bit.
  std::vector<SweepUseful> mean = per_rep.front();
  const double dn = static_cast<double>(reps);
  for (std::size_t r = 1; r < reps; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      mean[i].lw += per_rep[r][i].lw;
      mean[i].hw += per_rep[r][i].hw;
    }
  }
  for (SweepUseful& u : mean) {
    u.lw /= dn;
    u.hw /= dn;
  }
  return mean;
}

}  // namespace shiraz::sim
