// The discrete-event checkpoint/restart simulator (paper Section 4).
//
// One machine runs one application at a time. Failures arrive as a renewal
// process drawn from any reliability::Distribution. The running application
// computes for an interval given by its schedule, then writes a checkpoint;
// a failure striking before the checkpoint completes wipes the whole segment
// (compute plus partial write) back to the last completed checkpoint. The
// Scheduler decides who runs at each failure and after each checkpoint.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "reliability/distribution.h"
#include "sim/alarm.h"
#include "sim/job.h"
#include "sim/metrics.h"
#include "sim/scheduler.h"

namespace shiraz::common {
class ThreadPool;
}  // namespace shiraz::common

namespace shiraz::obs {
class EventSink;
class MetricsRegistry;
}  // namespace shiraz::obs

namespace shiraz::sim {

class FailureTrace;
class TraceStore;

struct EngineConfig {
  /// Simulated horizon.
  Seconds t_total = hours(1000.0);
  /// Downtime after each failure before anything can run again (the paper's
  /// model folds restart into epsilon; 0 reproduces the model exactly).
  Seconds restart_cost = 0.0;
  /// Downtime charged when the running application changes *within* a gap
  /// (drain + launch of the other job). The paper assumes free switches;
  /// bench/abl_switch_cost probes how much of Shiraz's gain that assumption
  /// is worth. Charged to the incoming application's restart time.
  Seconds switch_cost = 0.0;
  /// When non-null, every run narrates itself as a typed event stream (see
  /// obs/event.h). Sinks are pure observers — no RNG access — so arming one
  /// is bit-identical to an untraced run; a null sink costs one pointer
  /// compare per would-be event. Single runs stream events as they happen;
  /// run_campaign buffers per repetition and merges in repetition order.
  obs::EventSink* sink = nullptr;
  /// Dispatch trace replays of closed-form-eligible configurations (free
  /// restarts/switches, periodic schedules, no alarms, no sink, a flat
  /// phase-plan scheduler — see sim/kernel.h) to the flat replay kernel.
  /// The kernel is bit-identical to the event loop (tests/sim/kernel_test),
  /// so this is purely a speed knob; false forces the event loop everywhere
  /// (benchmarking, differential testing).
  bool flat_kernel = true;
  /// When non-null, every run counts into this registry (obs/metrics.h):
  /// repetitions evaluated, kernel-vs-event-loop dispatch, gaps consumed.
  /// Metrics are pure observers with the same contract as `sink` — no RNG
  /// access, no control-flow influence — so arming them is bit-identical to
  /// an unarmed run (gated by bench/micro_metrics_overhead --check); a null
  /// registry costs one pointer compare per repetition. Campaigns buffer the
  /// per-repetition increments and apply them in repetition order, so the
  /// registry's mutation order is worker-count-invariant too.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Samples the next inter-failure gap given the RNG and the absolute time of
/// the gap's start — the hook for non-stationary failure processes (e.g. an
/// aging system whose MTBF shrinks over the campaign).
using GapSampler = std::function<Seconds(Rng& rng, Seconds gap_start)>;

/// Shared campaign plumbing for sweeps that run many campaigns over the same
/// repetitions (see run_many/run_campaign overloads below). Defaults
/// reproduce the plain positional overloads.
struct CampaignOptions {
  /// Repetitions dispatch onto this many threads (1 = inline serial loop).
  std::size_t workers = 1;
  /// Consulted once per armed gap when non-null (see run()).
  const AlarmSource* alarms = nullptr;
  /// When non-null, repetition r replays `traces->trace(r)` instead of
  /// sampling gaps — bit-identical output, one sampling pass amortized over
  /// every campaign sharing the store. Must have been built for the same
  /// seed and a horizon covering this engine's (both SHIRAZ_REQUIREd).
  const TraceStore* traces = nullptr;
  /// When non-null, parallel repetitions borrow this pool instead of
  /// spawning (and joining) a fresh one per campaign.
  common::ThreadPool* pool = nullptr;
  /// Campaign event sink (overrides EngineConfig::sink for this campaign).
  /// Events buffer per repetition and are delivered rep by rep — stamped with
  /// Event::rep — after the runs, so the merged stream is identical for every
  /// worker count.
  obs::EventSink* sink = nullptr;
  /// Campaign metrics registry (overrides EngineConfig::metrics). Same
  /// purity and rep-order-merge contract as EngineConfig::metrics.
  obs::MetricsRegistry* metrics = nullptr;
};

class Engine {
 public:
  Engine(const reliability::Distribution& failure_dist, const EngineConfig& config);

  /// Non-stationary variant: gaps come from `sampler` instead of a fixed
  /// distribution.
  Engine(GapSampler sampler, const EngineConfig& config);

  /// Runs one campaign. `jobs` index positions are the app indices the
  /// scheduler sees. The RNG drives only the failure process, so two runs
  /// with the same seed see identical failure times regardless of policy —
  /// common-random-numbers variance reduction for policy comparisons.
  ///
  /// `alarms`, when non-null, is consulted once per armed gap and its alarms
  /// are delivered to the scheduler via on_alarm (see alarm.h); predictors
  /// draw from a dedicated stream forked off `rng`, so the failure sequence
  /// is identical with and without an alarm source, and a source emitting no
  /// alarms reproduces the prediction-free run bit for bit.
  SimResult run(const std::vector<SimJob>& jobs, const Scheduler& scheduler,
                Rng& rng, const AlarmSource* alarms = nullptr) const;

  /// Replays one campaign from a materialized failure trace instead of
  /// sampling: the engine walks the trace with a cursor and reconstructs
  /// failure times with the same `now + gap` additions the live run
  /// performs, so the result is bit-identical to run() with the RNG the
  /// trace was sampled from. The trace's horizon must cover the engine's.
  SimResult replay(const std::vector<SimJob>& jobs, const Scheduler& scheduler,
                   const FailureTrace& trace) const;

  /// Replay with an alarm source: `rng` seeds only the prediction stream,
  /// which forks off the seed exactly as in run() (never off generator
  /// state), so a replayed predictive campaign matches its sampled
  /// counterpart bit for bit.
  SimResult replay(const std::vector<SimJob>& jobs, const Scheduler& scheduler,
                   const FailureTrace& trace, Rng& rng,
                   const AlarmSource* alarms) const;

  /// Runs `reps` campaigns with independent failure streams forked from
  /// `seed` and returns the element-wise average. `workers` > 1 dispatches
  /// repetitions onto a thread pool; repetition `r` always draws from stream
  /// `Rng(seed).fork(r)` and results merge in repetition order, so the output
  /// is bit-identical for every worker count (workers == 1 runs inline and
  /// reproduces the historical serial loop exactly).
  SimResult run_many(const std::vector<SimJob>& jobs, const Scheduler& scheduler,
                     std::size_t reps, std::uint64_t seed,
                     std::size_t workers = 1,
                     const AlarmSource* alarms = nullptr) const;

  /// run_many with shared campaign plumbing: an optional trace store to
  /// replay (repetition r replays trace r — bit-identical to sampling) and
  /// an optional borrowed pool. Sweeps pass the same CampaignOptions to
  /// every campaign so the failure streams are sampled once and the threads
  /// spawned once.
  SimResult run_many(const std::vector<SimJob>& jobs, const Scheduler& scheduler,
                     std::size_t reps, std::uint64_t seed,
                     const CampaignOptions& opts) const;

  /// run_many plus per-repetition spread: mean, stddev, 95% CI and range of
  /// every headline metric (see CampaignSummary). Same determinism guarantee.
  /// Stateful schedulers and alarm sources (clone() != nullptr) get a private
  /// copy per parallel repetition; the caller's instances run the last
  /// repetition so post-campaign diagnostics (and predictor stats) match the
  /// serial path.
  CampaignSummary run_campaign(const std::vector<SimJob>& jobs,
                               const Scheduler& scheduler, std::size_t reps,
                               std::uint64_t seed, std::size_t workers = 1,
                               const AlarmSource* alarms = nullptr) const;

  /// run_campaign with shared campaign plumbing (see CampaignOptions).
  CampaignSummary run_campaign(const std::vector<SimJob>& jobs,
                               const Scheduler& scheduler, std::size_t reps,
                               std::uint64_t seed,
                               const CampaignOptions& opts) const;

  const EngineConfig& config() const { return config_; }

  /// The gap sampler driving the failure process (trace materialization).
  const GapSampler& gap_sampler() const { return gap_sampler_; }

  /// The distribution behind the sampler when the engine was constructed
  /// from one, else nullptr — lets TraceStore take the batched
  /// Distribution::sample_gaps entry point instead of the per-draw hook.
  std::shared_ptr<const reliability::Distribution> failure_distribution() const {
    return dist_;
  }

 private:
  /// `used_kernel`, when non-null, reports whether the flat replay kernel
  /// (rather than the event loop) produced the result — telemetry only.
  SimResult run_impl(const std::vector<SimJob>& jobs, const Scheduler& scheduler,
                     Rng& rng, const FailureTrace* trace,
                     const AlarmSource* alarms, obs::EventSink* sink,
                     bool* used_kernel = nullptr) const;

  GapSampler gap_sampler_;
  std::shared_ptr<const reliability::Distribution> dist_;
  EngineConfig config_;
};

}  // namespace shiraz::sim
