#include "sim/scheduler.h"

#include <sstream>

#include "common/error.h"

namespace shiraz::sim {

Decision AlternateAtFailure::on_gap_start(const SchedContext& ctx) const {
  SHIRAZ_REQUIRE(ctx.num_apps >= 1, "no apps to schedule");
  return Decision::run(ctx.failures_so_far % ctx.num_apps);
}

Decision AlternateAtFailure::on_checkpoint(const SchedContext& ctx) const {
  return Decision::run(ctx.current);
}

ShirazPairScheduler::ShirazPairScheduler(int k) : k_(k) {
  SHIRAZ_REQUIRE(k >= 0, "switch point must be non-negative");
}

Decision ShirazPairScheduler::on_gap_start(const SchedContext& ctx) const {
  SHIRAZ_REQUIRE(ctx.num_apps == 2, "ShirazPairScheduler schedules exactly two apps");
  return Decision::run(k_ == 0 ? 1 : 0);
}

Decision ShirazPairScheduler::on_checkpoint(const SchedContext& ctx) const {
  if (ctx.current == 0 &&
      (*ctx.checkpoints_this_gap)[0] >= static_cast<std::size_t>(k_)) {
    return Decision::run(1);
  }
  return Decision::run(ctx.current);
}

std::string ShirazPairScheduler::name() const {
  std::ostringstream os;
  os << "ShirazPair(k=" << k_ << ")";
  return os.str();
}

FirstAppScheduler::FirstAppScheduler(std::size_t count) : count_(count) {}

Decision FirstAppScheduler::on_gap_start(const SchedContext&) const {
  return count_ == 0 ? Decision::idle() : Decision::run(0);
}

Decision FirstAppScheduler::on_checkpoint(const SchedContext& ctx) const {
  if ((*ctx.checkpoints_this_gap)[0] >= count_) return Decision::idle();
  return Decision::run(ctx.current);
}

SecondAppScheduler::SecondAppScheduler(Seconds t_start) : t_start_(t_start) {
  SHIRAZ_REQUIRE(t_start >= 0.0, "start offset must be non-negative");
}

Decision SecondAppScheduler::on_gap_start(const SchedContext&) const {
  return Decision::run_after(0, t_start_);
}

Decision SecondAppScheduler::on_checkpoint(const SchedContext& ctx) const {
  return Decision::run(ctx.current);
}

NaiveTimeSwitchScheduler::NaiveTimeSwitchScheduler(Seconds threshold)
    : threshold_(threshold) {
  SHIRAZ_REQUIRE(threshold >= 0.0, "threshold must be non-negative");
}

Decision NaiveTimeSwitchScheduler::on_gap_start(const SchedContext& ctx) const {
  SHIRAZ_REQUIRE(ctx.num_apps == 2, "NaiveTimeSwitch schedules exactly two apps");
  return Decision::run(threshold_ == 0.0 ? 1 : 0);
}

Decision NaiveTimeSwitchScheduler::on_checkpoint(const SchedContext& ctx) const {
  if (ctx.current == 0 && ctx.elapsed_in_gap() >= threshold_) return Decision::run(1);
  return Decision::run(ctx.current);
}

std::string NaiveTimeSwitchScheduler::name() const {
  std::ostringstream os;
  os << "NaiveTimeSwitch(t=" << threshold_ << "s)";
  return os.str();
}

MultiSwitchScheduler::MultiSwitchScheduler(std::vector<int> ks) : ks_(std::move(ks)) {
  SHIRAZ_REQUIRE(!ks_.empty(), "need at least two apps (one switch count)");
  for (const int k : ks_) SHIRAZ_REQUIRE(k >= 0, "switch counts must be non-negative");
}

std::size_t MultiSwitchScheduler::next_runnable(std::size_t from) const {
  std::size_t i = from;
  while (i < ks_.size() && ks_[i] == 0) ++i;
  return i;  // ks_.size() is the last app, which always runs
}

Decision MultiSwitchScheduler::on_gap_start(const SchedContext& ctx) const {
  SHIRAZ_REQUIRE(ctx.num_apps == ks_.size() + 1,
                 "app count must be one more than the switch-count vector");
  return Decision::run(next_runnable(0));
}

Decision MultiSwitchScheduler::on_checkpoint(const SchedContext& ctx) const {
  const std::size_t i = ctx.current;
  if (i < ks_.size() &&
      (*ctx.checkpoints_this_gap)[i] >= static_cast<std::size_t>(ks_[i])) {
    return Decision::run(next_runnable(i + 1));
  }
  return Decision::run(i);
}

PairRotationScheduler::PairRotationScheduler(std::vector<std::optional<int>> ks)
    : ks_(std::move(ks)) {
  SHIRAZ_REQUIRE(!ks_.empty(), "need at least one pair");
  for (const auto& k : ks_) {
    SHIRAZ_REQUIRE(!k || *k >= 0, "switch points must be non-negative");
  }
}

Decision PairRotationScheduler::on_gap_start(const SchedContext& ctx) const {
  SHIRAZ_REQUIRE(ctx.num_apps == 2 * ks_.size(), "app count must be 2 * pairs");
  const std::size_t rotation = ctx.failures_so_far;
  const std::size_t pair = rotation % ks_.size();
  const std::size_t lw = 2 * pair;
  const std::size_t hw = lw + 1;
  const auto& k = ks_[pair];
  if (!k) {
    // Baseline alternation within the pair: lead alternates across rotations.
    return Decision::run((rotation / ks_.size()) % 2 == 0 ? lw : hw);
  }
  return Decision::run(*k == 0 ? hw : lw);
}

Decision PairRotationScheduler::on_checkpoint(const SchedContext& ctx) const {
  const std::size_t pair = ctx.current / 2;
  const std::size_t lw = 2 * pair;
  const std::size_t hw = lw + 1;
  const auto& k = ks_[pair];
  if (k && ctx.current == lw &&
      (*ctx.checkpoints_this_gap)[lw] >= static_cast<std::size_t>(*k)) {
    return Decision::run(hw);
  }
  return Decision::run(ctx.current);
}

}  // namespace shiraz::sim
