// Failure-trace memoization: sample each failure stream once, replay it
// everywhere.
//
// Engine::run draws failures identically for a given seed regardless of
// policy (common random numbers), yet a switch-point sweep re-derives that
// identical stream draw by draw — a std::function call, a virtual
// Distribution::sample and a pow/log1p inverse transform per gap, times reps,
// times every candidate k. A FailureTrace materializes one repetition's
// inter-failure gaps up to the horizon in a single batched pass
// (reliability::Distribution::sample_gaps hoists the per-draw dispatch); a
// TraceStore caches one trace per repetition, keyed by (seed, rep), so every
// campaign over the same seed replays plain arrays instead.
//
// Replay is bit-identical to live sampling (tests/sim/trace_replay_test.cpp):
// the trace stores gaps, the engine reconstructs failure times with the same
// `now + gap` additions it performs live, and alarm RNGs fork from the seed —
// not from generator state — so prediction runs replay unchanged too.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "sim/engine.h"

namespace shiraz::reliability {
class FailureRegime;
}  // namespace shiraz::reliability

namespace shiraz::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace shiraz::obs

namespace shiraz::sim {

/// One repetition's inter-failure gaps, materialized up to a horizon. The
/// last gap is the first whose running sum crosses the horizon — exactly the
/// draws a live Engine::run consumes, no more and no fewer.
///
/// Alongside the gaps, the constructor caches the absolute failure times as
/// prefix sums computed with the same sequential additions a live run
/// performs (`fail_i = fail_{i-1} + gap_i`, starting from 0): at every
/// failure the engine's clock sits exactly on the previous failure time, so
/// `now + gap` and the cached prefix sum are the same double. Consumers
/// (engine replay, the sweep/kernel paths) read fail_time() instead of
/// re-deriving running sums per campaign.
class FailureTrace {
 public:
  FailureTrace(std::vector<Seconds> gaps, Seconds horizon);

  /// The i-th gap; replay cursors walk this in order.
  Seconds gap(std::size_t i) const {
    SHIRAZ_REQUIRE(i < gaps_.size(), "failure trace exhausted before the horizon");
    return gaps_[i];
  }

  /// Absolute time of the i-th failure (prefix sum of gaps [0, i]) —
  /// bit-identical to the `now + gap` reconstruction a live run performs.
  Seconds fail_time(std::size_t i) const {
    SHIRAZ_REQUIRE(i < fail_times_.size(),
                   "failure trace exhausted before the horizon");
    return fail_times_[i];
  }

  /// Structure-of-arrays views for batched consumers (sim/kernel.cpp). The
  /// invariants hold: fail_times().back() >= horizon() and every earlier
  /// entry is < horizon(), so a replay that only advances while the next
  /// failure precedes the horizon never runs off the end.
  const std::vector<Seconds>& gaps() const { return gaps_; }
  const std::vector<Seconds>& fail_times() const { return fail_times_; }

  std::size_t size() const { return gaps_.size(); }
  Seconds horizon() const { return horizon_; }

 private:
  std::vector<Seconds> gaps_;
  std::vector<Seconds> fail_times_;
  Seconds horizon_;
};

/// Lazily materialized per-repetition traces for one (engine, seed) pair.
/// Repetition r samples with `Rng(seed).fork(r)` — the stream Engine
/// campaigns assign to repetition r — via the engine's distribution's batched
/// sample_gaps when the engine was built from a Distribution, or its
/// GapSampler otherwise (non-stationary processes memoize just as well: the
/// gap-start argument is the same policy-independent prefix sum either way).
///
/// Thread-safe; campaigns call ensure() up front so parallel repetitions only
/// read. Slots are stable (unique_ptr), so returned references survive later
/// growth.
class TraceStore {
 public:
  /// Traces for `engine`'s failure process up to `engine.config().t_total`.
  TraceStore(const Engine& engine, std::uint64_t seed);

  /// Same, with an explicit horizon (e.g. to share one store across engines
  /// that differ only in costs, or to pre-sample past the longest horizon).
  TraceStore(const Engine& engine, std::uint64_t seed, Seconds horizon);

  /// Traces for a correlated failure regime (src/reliability/regimes.h):
  /// repetition r materializes via `regime.sample_gaps(Rng(seed).fork(r))`,
  /// the exact draw pass a regime sampler performs live, so replay stays
  /// bit-identical for non-renewal processes too. This is the ONLY safe way
  /// to run a stateful regime through a parallel campaign — the live
  /// cursor adapter is serial-only (see FailureRegime::sampler).
  TraceStore(const reliability::FailureRegime& regime, std::uint64_t seed,
             Seconds horizon);

  std::uint64_t seed() const { return seed_; }
  Seconds horizon() const { return horizon_; }

  /// Arms telemetry: subsequent materializations and lookups count into
  /// `registry` (shiraz_trace_* counters plus a resident-bytes gauge).
  /// Metrics are pure observers — they never change which traces exist or
  /// what they contain — so arming them is bit-identical to an unarmed
  /// store. Pass nullptr to disarm. Not thread-safe against concurrent
  /// ensure()/trace() calls; arm before the campaigns start.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Materializes repetitions [0, reps) that are not yet cached.
  void ensure(std::size_t reps) const;

  /// The trace of repetition `rep`, materializing it on first use.
  const FailureTrace& trace(std::size_t rep) const;

  /// How many repetitions are currently materialized (laziness observable).
  std::size_t materialized() const;

  /// Total gaps across materialized repetitions (throughput accounting).
  std::size_t total_gaps() const;

 private:
  std::unique_ptr<FailureTrace> materialize(std::size_t rep) const;
  /// Counts one freshly materialized trace (call with mu_ held).
  void note_materialized(const FailureTrace& trace) const;

  GapSampler sampler_;
  std::shared_ptr<const reliability::Distribution> dist_;
  std::shared_ptr<const reliability::FailureRegime> regime_;
  std::uint64_t seed_;
  Seconds horizon_;
  mutable std::mutex mu_;
  mutable std::vector<std::unique_ptr<FailureTrace>> traces_;
  obs::Counter* traces_metric_ = nullptr;   ///< traces materialized
  obs::Counter* gaps_metric_ = nullptr;     ///< gaps materialized
  obs::Counter* hits_metric_ = nullptr;     ///< trace() calls served cached
  obs::Gauge* resident_metric_ = nullptr;   ///< bytes held by cached traces
};

}  // namespace shiraz::sim
