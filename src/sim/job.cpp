#include "sim/job.h"

namespace shiraz::sim {

SimJob SimJob::at_oci(std::string name, Seconds delta, Seconds mtbf, unsigned stretch,
                      checkpoint::OciFormula formula) {
  const Seconds oci = checkpoint::optimal_interval(mtbf, delta, formula);
  SimJob job;
  job.name = std::move(name);
  job.delta = delta;
  if (stretch == 1) {
    job.schedule = std::make_shared<checkpoint::EquidistantSchedule>(oci);
  } else {
    job.schedule = std::make_shared<checkpoint::StretchedSchedule>(oci, stretch);
  }
  return job;
}

SimJob SimJob::lazy(std::string name, Seconds delta, Seconds mtbf, double weibull_shape) {
  SimJob job;
  job.name = std::move(name);
  job.delta = delta;
  job.schedule = std::make_shared<checkpoint::LazySchedule>(delta, mtbf, weibull_shape);
  return job;
}

}  // namespace shiraz::sim
