#include "reliability/cfdr.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "common/error.h"

namespace shiraz::reliability {

std::string to_string(FailureCategory category) {
  switch (category) {
    case FailureCategory::kHardware:
      return "hardware";
    case FailureCategory::kSoftware:
      return "software";
    case FailureCategory::kNetwork:
      return "network";
    case FailureCategory::kEnvironment:
      return "environment";
    case FailureCategory::kUnknown:
      return "unknown";
  }
  throw InvalidArgument("unknown failure category");
}

FailureCategory category_from_string(const std::string& text) {
  if (text == "hardware") return FailureCategory::kHardware;
  if (text == "software") return FailureCategory::kSoftware;
  if (text == "network") return FailureCategory::kNetwork;
  if (text == "environment") return FailureCategory::kEnvironment;
  if (text == "unknown") return FailureCategory::kUnknown;
  throw InvalidArgument("unknown failure category: " + text);
}

RecordSet::RecordSet(std::vector<FailureRecord> records)
    : records_(std::move(records)) {
  for (const FailureRecord& r : records_) {
    SHIRAZ_REQUIRE(r.timestamp >= 0.0, "negative record timestamp");
    SHIRAZ_REQUIRE(!r.node.empty(), "record with empty node id");
  }
  std::stable_sort(records_.begin(), records_.end(),
                   [](const FailureRecord& a, const FailureRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
}

RecordSet RecordSet::filter_category(FailureCategory category) const {
  std::vector<FailureRecord> out;
  std::copy_if(records_.begin(), records_.end(), std::back_inserter(out),
               [&](const FailureRecord& r) { return r.category == category; });
  return RecordSet(std::move(out));
}

RecordSet RecordSet::filter_node(const std::string& node) const {
  std::vector<FailureRecord> out;
  std::copy_if(records_.begin(), records_.end(), std::back_inserter(out),
               [&](const FailureRecord& r) { return r.node == node; });
  return RecordSet(std::move(out));
}

RecordSet RecordSet::merge(const RecordSet& other) const {
  std::vector<FailureRecord> out = records_;
  out.insert(out.end(), other.records_.begin(), other.records_.end());
  return RecordSet(std::move(out));
}

std::vector<std::string> RecordSet::nodes() const {
  std::set<std::string> unique;
  for (const FailureRecord& r : records_) unique.insert(r.node);
  return {unique.begin(), unique.end()};
}

FailureTrace RecordSet::to_trace(Seconds horizon) const {
  std::vector<Seconds> times;
  times.reserve(records_.size());
  for (const FailureRecord& r : records_) times.push_back(r.timestamp);
  FailureTrace trace(std::move(times));
  if (horizon > 0.0) trace.set_horizon(horizon);
  return trace;
}

void RecordSet::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open record CSV for writing: " + path);
  out.precision(17);
  out << "timestamp_seconds,node,category\n";
  for (const FailureRecord& r : records_) {
    out << r.timestamp << ',' << r.node << ',' << to_string(r.category) << '\n';
  }
  if (!out) throw IoError("failed writing record CSV: " + path);
}

RecordSet RecordSet::load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open record CSV for reading: " + path);
  std::string line;
  SHIRAZ_REQUIRE(static_cast<bool>(std::getline(in, line)), "empty record CSV");
  SHIRAZ_REQUIRE(line == "timestamp_seconds,node,category",
                 "unexpected record CSV header: " + line);
  std::vector<FailureRecord> records;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string ts;
    std::string node;
    std::string category;
    if (!std::getline(row, ts, ',') || !std::getline(row, node, ',') ||
        !std::getline(row, category)) {
      throw IoError("malformed record CSV at line " + std::to_string(line_no));
    }
    FailureRecord rec;
    try {
      rec.timestamp = std::stod(ts);
    } catch (const std::exception&) {
      throw IoError("bad timestamp in record CSV at line " + std::to_string(line_no));
    }
    rec.node = node;
    rec.category = category_from_string(category);
    records.push_back(std::move(rec));
  }
  return RecordSet(std::move(records));
}

}  // namespace shiraz::reliability
