// Bootstrap confidence intervals for failure-process parameters.
//
// Production traces are short relative to the tail of the gap distribution;
// point estimates of the MTBF and the Weibull shape can be badly misleading.
// Percentile-bootstrap intervals quantify that uncertainty — the honest input
// band for Shiraz's sensitivity analysis (see bench/abl_adaptive).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.h"

namespace shiraz::reliability {

struct Interval {
  double lower = 0.0;
  double point = 0.0;
  double upper = 0.0;

  double width() const { return upper - lower; }
  bool contains(double x) const { return x >= lower && x <= upper; }
};

struct BootstrapOptions {
  std::size_t resamples = 1000;
  /// Two-sided confidence level (0.95 = 95%).
  double confidence = 0.95;
  std::uint64_t seed = 1;
};

/// Percentile-bootstrap CI for the mean of the gap sample (the MTBF).
Interval bootstrap_mtbf(const std::vector<Seconds>& gaps,
                        const BootstrapOptions& options = {});

/// Percentile-bootstrap CI for the Weibull MLE shape parameter.
Interval bootstrap_weibull_shape(const std::vector<Seconds>& gaps,
                                 const BootstrapOptions& options = {});

}  // namespace shiraz::reliability
