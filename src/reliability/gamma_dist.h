// Gamma inter-arrival distribution.
//
// Another decreasing-hazard family (for shape < 1); exercises the fitting and
// analytics code against a second sub-exponential alternative.
#pragma once

#include <string>

#include "reliability/distribution.h"

namespace shiraz::reliability {

class GammaDist final : public Distribution {
 public:
  /// shape k, scale theta; mean = k * theta.
  GammaDist(double shape, Seconds scale);

  static GammaDist from_mtbf(double shape, Seconds mtbf);

  double shape() const { return shape_; }
  Seconds scale() const { return scale_; }

  Seconds sample(Rng& rng) const override;
  double cdf(Seconds t) const override;
  double pdf(Seconds t) const override;
  Seconds mean() const override { return shape_ * scale_; }
  Seconds quantile(double u) const override;
  std::string name() const override;
  DistributionPtr clone() const override;

 private:
  double shape_;
  Seconds scale_;
};

}  // namespace shiraz::reliability
