#include "reliability/weibull.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/mathx.h"

namespace shiraz::reliability {

Weibull::Weibull(double shape, Seconds scale) : shape_(shape), scale_(scale) {
  SHIRAZ_REQUIRE(shape > 0.0, "Weibull shape must be positive");
  SHIRAZ_REQUIRE(scale > 0.0, "Weibull scale must be positive");
}

Weibull Weibull::from_mtbf(double shape, Seconds mtbf) {
  SHIRAZ_REQUIRE(shape > 0.0, "Weibull shape must be positive");
  SHIRAZ_REQUIRE(mtbf > 0.0, "MTBF must be positive");
  const double scale = mtbf / mathx::gamma_fn(1.0 + 1.0 / shape);
  return Weibull(shape, scale);
}

Seconds Weibull::sample(Rng& rng) const {
  // Inverse-transform sampling: T = lambda * (-ln(1 - U))^(1/beta).
  return quantile(rng.uniform());
}

double Weibull::cdf(Seconds t) const {
  if (t <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(t / scale_, shape_));
}

double Weibull::pdf(Seconds t) const {
  if (t <= 0.0) return 0.0;
  const double z = t / scale_;
  return shape_ / scale_ * std::pow(z, shape_ - 1.0) * std::exp(-std::pow(z, shape_));
}

Seconds Weibull::mean() const { return scale_ * mathx::gamma_fn(1.0 + 1.0 / shape_); }

Seconds Weibull::quantile(double u) const {
  SHIRAZ_REQUIRE(u >= 0.0 && u < 1.0, "quantile u must be in [0,1)");
  return scale_ * std::pow(-std::log1p(-u), 1.0 / shape_);
}

std::string Weibull::name() const {
  std::ostringstream os;
  os << "Weibull(beta=" << shape_ << ", mtbf=" << as_hours(mean()) << "h)";
  return os.str();
}

DistributionPtr Weibull::clone() const { return std::make_unique<Weibull>(*this); }

void Weibull::sample_gaps(Rng& rng, Seconds horizon,
                          std::vector<Seconds>& out) const {
  const double inv_shape = 1.0 / shape_;
  Seconds t = 0.0;
  while (t < horizon) {
    const Seconds gap = scale_ * std::pow(-std::log1p(-rng.uniform()), inv_shape);
    out.push_back(gap);
    t += gap;
  }
}

}  // namespace shiraz::reliability
