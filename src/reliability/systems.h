// Catalog of virtual HPC systems used across benches.
//
// Parameters mirror the paper's working points: MTBF of 20 h for a petascale
// system and 5 h for a projected exascale system (Section 5), with Weibull
// shape beta in the 0.4-0.7 band reported for production machines (Section 2).
// The Fig 1/Fig 2 benches additionally use a set of "trace systems" standing in
// for the CFDR production systems (documented substitution, see DESIGN.md).
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "reliability/weibull.h"

namespace shiraz::reliability {

struct SystemSpec {
  std::string name;
  Seconds mtbf = 0.0;
  double weibull_shape = 0.6;
  double power_megawatts = 0.0;

  Weibull failure_distribution() const {
    return Weibull::from_mtbf(weibull_shape, mtbf);
  }
};

/// Paper's petascale working point: MTBF 20 h, 10 MW.
SystemSpec petascale_system();

/// Paper's projected exascale working point: MTBF 5 h, 20 MW.
SystemSpec exascale_system();

/// Four virtual production systems (varying MTBF / beta) for the Fig 1 and
/// Fig 2 trace analytics.
std::vector<SystemSpec> trace_systems();

}  // namespace shiraz::reliability
