#include "reliability/distribution.h"

#include <limits>

namespace shiraz::reliability {

double Distribution::hazard(Seconds t) const {
  const double s = survival(t);
  if (s <= 0.0) return std::numeric_limits<double>::infinity();
  return pdf(t) / s;
}

void Distribution::sample_gaps(Rng& rng, Seconds horizon,
                               std::vector<Seconds>& out) const {
  Seconds t = 0.0;
  while (t < horizon) {
    const Seconds gap = sample(rng);
    out.push_back(gap);
    t += gap;
  }
}

}  // namespace shiraz::reliability
