#include "reliability/distribution.h"

#include <limits>

namespace shiraz::reliability {

double Distribution::hazard(Seconds t) const {
  const double s = survival(t);
  if (s <= 0.0) return std::numeric_limits<double>::infinity();
  return pdf(t) / s;
}

}  // namespace shiraz::reliability
