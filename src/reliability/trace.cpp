#include "reliability/trace.h"

#include <algorithm>
#include <fstream>

#include "common/error.h"

namespace shiraz::reliability {

FailureTrace::FailureTrace(std::vector<Seconds> times) : times_(std::move(times)) {
  SHIRAZ_REQUIRE(std::is_sorted(times_.begin(), times_.end()),
                 "failure trace timestamps must be sorted");
  for (const double t : times_) SHIRAZ_REQUIRE(t >= 0.0, "negative failure timestamp");
  horizon_ = times_.empty() ? 0.0 : times_.back();
}

FailureTrace FailureTrace::generate(const Distribution& dist, Seconds horizon, Rng& rng) {
  SHIRAZ_REQUIRE(horizon > 0.0, "trace horizon must be positive");
  std::vector<Seconds> times;
  Seconds t = 0.0;
  while (true) {
    t += dist.sample(rng);
    if (t >= horizon) break;
    times.push_back(t);
  }
  FailureTrace trace(std::move(times));
  trace.horizon_ = horizon;
  return trace;
}

void FailureTrace::set_horizon(Seconds horizon) {
  SHIRAZ_REQUIRE(horizon >= (times_.empty() ? 0.0 : times_.back()),
                 "horizon must cover all failures");
  horizon_ = horizon;
}

std::vector<Seconds> FailureTrace::inter_arrival_times() const {
  std::vector<Seconds> gaps;
  gaps.reserve(times_.size());
  Seconds prev = 0.0;
  for (const Seconds t : times_) {
    gaps.push_back(t - prev);
    prev = t;
  }
  return gaps;
}

Seconds FailureTrace::observed_mtbf() const {
  SHIRAZ_REQUIRE(!times_.empty(), "observed_mtbf of empty trace");
  return horizon_ / static_cast<double>(times_.size());
}

void FailureTrace::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open trace file for writing: " + path);
  out.precision(17);
  out << "# shiraz failure trace; horizon_seconds=" << horizon_ << '\n';
  for (const Seconds t : times_) out << t << '\n';
  if (!out) throw IoError("failed writing trace file: " + path);
}

FailureTrace FailureTrace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open trace file for reading: " + path);
  std::vector<Seconds> times;
  Seconds horizon = 0.0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.front() == '#') {
      const auto pos = line.find("horizon_seconds=");
      if (pos != std::string::npos) horizon = std::stod(line.substr(pos + 16));
      continue;
    }
    times.push_back(std::stod(line));
  }
  FailureTrace trace(std::move(times));
  if (horizon > 0.0) trace.set_horizon(horizon);
  return trace;
}

}  // namespace shiraz::reliability
