#include "reliability/bathtub.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace shiraz::reliability {

namespace {

/// Mean of the distribution: integral of S(t) over [0, inf). Simpson's rule
/// with a fixed node count over [0, T] where S(T) < 1e-14; the scheme is
/// deterministic so mean() is bit-stable across processes.
Seconds integrate_mean(const BathtubWeibull& d) {
  // S(t) <= exp(-(t/s2)^b2): pick T where the wear-out term alone kills the
  // survival mass (H >= 32 means S <= 1.3e-14).
  const Seconds tail = d.wear_scale() * std::pow(32.0, 1.0 / d.wear_shape());
  const int steps = 40'000;  // even, for Simpson
  const double h = tail / steps;
  double acc = 1.0;  // S(0) = 1
  for (int i = 1; i < steps; ++i) {
    const double w = (i % 2 == 1) ? 4.0 : 2.0;
    acc += w * (1.0 - d.cdf(i * h));
  }
  acc += 1.0 - d.cdf(tail);
  return acc * h / 3.0;
}

}  // namespace

BathtubWeibull::BathtubWeibull(double infant_shape, Seconds infant_scale,
                               double wear_shape, Seconds wear_scale)
    : b1_(infant_shape), s1_(infant_scale), b2_(wear_shape), s2_(wear_scale) {
  SHIRAZ_REQUIRE(b1_ > 0.0 && b1_ < 1.0,
                 "bathtub infant shape must be in (0, 1) for a decreasing arm");
  SHIRAZ_REQUIRE(b2_ > 1.0, "bathtub wear shape must exceed 1 for an increasing arm");
  SHIRAZ_REQUIRE(s1_ > 0.0, "bathtub infant scale must be positive");
  SHIRAZ_REQUIRE(s2_ > 0.0, "bathtub wear scale must be positive");
  mean_ = integrate_mean(*this);
}

double BathtubWeibull::cumulative_hazard(Seconds t) const {
  return std::pow(t / s1_, b1_) + std::pow(t / s2_, b2_);
}

Seconds BathtubWeibull::sample(Rng& rng) const { return quantile(rng.uniform()); }

double BathtubWeibull::cdf(Seconds t) const {
  if (t <= 0.0) return 0.0;
  return 1.0 - std::exp(-cumulative_hazard(t));
}

double BathtubWeibull::pdf(Seconds t) const {
  if (t <= 0.0) return 0.0;
  const double h = b1_ / s1_ * std::pow(t / s1_, b1_ - 1.0) +
                   b2_ / s2_ * std::pow(t / s2_, b2_ - 1.0);
  return h * std::exp(-cumulative_hazard(t));
}

Seconds BathtubWeibull::mean() const { return mean_; }

Seconds BathtubWeibull::quantile(double u) const {
  SHIRAZ_REQUIRE(u >= 0.0 && u < 1.0, "quantile u must be in [0,1)");
  if (u == 0.0) return 0.0;
  const double target = -std::log1p(-u);  // solve H(t) = target, H monotone
  // Bracket: each arm alone reaching `target` bounds t from above.
  double hi = std::min(s1_ * std::pow(target, 1.0 / b1_),
                       s2_ * std::pow(target, 1.0 / b2_));
  double lo = 0.0;
  if (cumulative_hazard(hi) < target) {  // numeric safety; expand once
    lo = hi;
    hi *= 2.0;
  }
  // Safeguarded Newton: h(t) = H'(t) > 0, fall back to bisection when the
  // step leaves the bracket. Fixed 80-iteration cap; converges in ~10.
  double t = 0.5 * (lo + hi);
  for (int i = 0; i < 80; ++i) {
    const double f = cumulative_hazard(t) - target;
    if (f > 0.0) hi = t;
    else lo = t;
    const double deriv = b1_ / s1_ * std::pow(t / s1_, b1_ - 1.0) +
                         b2_ / s2_ * std::pow(t / s2_, b2_ - 1.0);
    double next = t - f / deriv;
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (next == t) break;
    t = next;
  }
  return t;
}

std::string BathtubWeibull::name() const {
  std::ostringstream os;
  os << "BathtubWeibull(b1=" << b1_ << ", s1=" << as_hours(s1_) << "h, b2=" << b2_
     << ", s2=" << as_hours(s2_) << "h)";
  return os.str();
}

DistributionPtr BathtubWeibull::clone() const {
  return std::make_unique<BathtubWeibull>(*this);
}

void BathtubWeibull::sample_gaps(Rng& rng, Seconds horizon,
                                 std::vector<Seconds>& out) const {
  Seconds t = 0.0;
  while (t < horizon) {
    const Seconds gap = quantile(rng.uniform());
    out.push_back(gap);
    t += gap;
  }
}

}  // namespace shiraz::reliability
