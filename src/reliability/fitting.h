// Fitting failure distributions to observed inter-arrival samples.
//
// Used by the trace analytics to recover the Weibull shape parameter beta from
// (synthetic or recorded) failure logs — the "How to accurately identify and
// quantify changing reliability characteristics" question from the paper's
// introduction.
#pragma once

#include <vector>

#include "common/units.h"
#include "reliability/weibull.h"

namespace shiraz::reliability {

struct WeibullFit {
  double shape = 0.0;
  Seconds scale = 0.0;
  /// Maximized log-likelihood of the fit.
  double log_likelihood = 0.0;

  Weibull distribution() const { return Weibull(shape, scale); }
};

/// Maximum-likelihood Weibull fit. Solves the standard profile-likelihood
/// shape equation by Newton iteration, then recovers the scale in closed form.
/// Requires at least two strictly positive samples.
WeibullFit fit_weibull_mle(const std::vector<Seconds>& samples);

/// Kolmogorov-Smirnov statistic of `samples` against a reference distribution.
double ks_statistic(std::vector<Seconds> samples, const Distribution& dist);

/// Log-likelihood of samples under `dist`.
double log_likelihood(const std::vector<Seconds>& samples, const Distribution& dist);

}  // namespace shiraz::reliability
