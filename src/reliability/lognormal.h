// Lognormal inter-arrival distribution.
//
// Schroeder & Gibson found lognormal to be a competitive fit for some systems'
// repair and inter-arrival times; included so trace generation and fitting can
// be exercised against a non-Weibull alternative.
#pragma once

#include <string>

#include "reliability/distribution.h"

namespace shiraz::reliability {

class Lognormal final : public Distribution {
 public:
  /// Parameters of the underlying normal: ln T ~ N(mu, sigma^2).
  Lognormal(double mu, double sigma);

  /// Derives (mu, sigma) from a target mean and coefficient of variation.
  static Lognormal from_mean_cv(Seconds mean, double cv);

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

  Seconds sample(Rng& rng) const override;
  double cdf(Seconds t) const override;
  double pdf(Seconds t) const override;
  Seconds mean() const override;
  Seconds quantile(double u) const override;
  std::string name() const override;
  DistributionPtr clone() const override;

 private:
  double mu_;
  double sigma_;
};

}  // namespace shiraz::reliability
