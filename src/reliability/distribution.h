// Failure inter-arrival time distributions.
//
// HPC failure studies (Schroeder & Gibson TDSC'10, Tiwari et al. DSN'14, and
// the Shiraz paper's Section 2) model inter-arrival times between node/system
// failures with Weibull distributions whose shape parameter beta < 1, i.e. a
// hazard rate that is highest right after a failure and decays until the next
// one. This interface abstracts the distribution so the simulator, the trace
// generator, and the analytical model can share one failure process notion.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace shiraz::reliability {

/// A continuous, non-negative inter-arrival time distribution.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one inter-arrival time (seconds).
  virtual Seconds sample(Rng& rng) const = 0;

  /// P(T <= t).
  virtual double cdf(Seconds t) const = 0;

  /// Density f(t).
  virtual double pdf(Seconds t) const = 0;

  /// Mean inter-arrival time (the MTBF when used as a failure process).
  virtual Seconds mean() const = 0;

  /// Inverse CDF; quantile(u) for u in [0, 1).
  virtual Seconds quantile(double u) const = 0;

  /// Human-readable name with parameters, e.g. "Weibull(beta=0.6, mtbf=5h)".
  virtual std::string name() const = 0;

  /// Deep copy (distributions are cheap value-like objects).
  virtual std::unique_ptr<Distribution> clone() const = 0;

  /// Appends inter-arrival gaps to `out` until their running sum reaches
  /// `horizon` (the final gap is the first one crossing it). Draws exactly
  /// the values the equivalent sample() loop would draw, in the same order —
  /// the contract trace replay relies on (see sim/trace.h). Overrides exist
  /// to batch the per-draw virtual dispatch and hoist loop-invariant
  /// parameter work; they must preserve bit-identical output.
  virtual void sample_gaps(Rng& rng, Seconds horizon,
                           std::vector<Seconds>& out) const;

  /// Survival S(t) = 1 - cdf(t).
  double survival(Seconds t) const { return 1.0 - cdf(t); }

  /// Hazard rate h(t) = f(t) / S(t); +inf-safe for S(t) == 0.
  double hazard(Seconds t) const;
};

using DistributionPtr = std::unique_ptr<Distribution>;

}  // namespace shiraz::reliability
