// Trace analytics backing the paper's motivation figures.
//
//  * Figure 1: failures per week over the system lifetime — shows there are no
//    long distinctly-stable eras to exploit at coarse granularity.
//  * Figure 2: the inter-arrival time distribution — shows most gaps are far
//    shorter than the MTBF (temporal recurrence), the property Shiraz exploits
//    at the granularity of a single failure gap.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.h"
#include "reliability/trace.h"

namespace shiraz::reliability {

/// Failure counts bucketed per calendar week (Fig 1 series).
std::vector<std::size_t> weekly_failure_counts(const FailureTrace& trace);

/// Summary of week-to-week variability.
struct WeeklyVariability {
  double mean = 0.0;
  double stddev = 0.0;
  double cv = 0.0;           ///< coefficient of variation (stddev / mean)
  std::size_t max_week = 0;  ///< largest weekly count
  /// Longest run of consecutive weeks whose count stays within +-25% of the
  /// lifetime mean — the "distinct stable period" the naive strategy needs.
  std::size_t longest_stable_run = 0;
};

WeeklyVariability weekly_variability(const std::vector<std::size_t>& counts);

/// Points of the empirical CDF of inter-arrival gaps, evaluated at fractions
/// of the observed MTBF (Fig 2 series): result[i] = P(gap <= fractions[i]*MTBF).
std::vector<double> interarrival_cdf_at_mtbf_fractions(
    const FailureTrace& trace, const std::vector<double>& fractions);

/// Nonparametric hazard-rate estimate over [0, window], from the gaps of a
/// trace, using `bins` equal-width bins:
///   h(bin) = (#gaps ending in bin) / (sum of exposure time in bin).
std::vector<double> empirical_hazard(const FailureTrace& trace, Seconds window,
                                     std::size_t bins);

}  // namespace shiraz::reliability
