// Correlated failure regimes — processes the Weibull renewal model can't
// express.
//
// Shiraz's analysis assumes i.i.d. renewal gaps; real fleets fail in bursts
// (a flaky power rail), cascades (one rack outage felling its neighbours),
// superpositions of heterogeneous node pools, and slowly drifting hazard
// shapes. A FailureRegime generalizes reliability::Distribution to such
// processes: instead of one i.i.d. draw at a time, a regime generates the
// WHOLE gap sequence of one campaign repetition in a single deterministic
// pass over the RNG. That batch pass is exactly the contract
// sim::TraceStore replay needs — same seed, same gaps, policy-independent —
// so every regime drops into the existing replay/--jobs-bit-identity
// machinery unchanged (DESIGN.md §8; tests/sim/regime_replay_test.cpp).
//
// Regimes with a well-defined per-draw form (Markov modulation with explicit
// phase state, the drifting Weibull's pure (rng, gap_start) function) expose
// it publicly, and the property tests pin per-draw vs batch bit-identity;
// the merge-based regimes (pools, cascades) are batch-only by nature.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "reliability/distribution.h"
#include "reliability/weibull.h"

namespace shiraz::reliability {

/// A failure process over one campaign repetition, possibly carrying state
/// across gaps or depending on absolute time.
class FailureRegime {
 public:
  virtual ~FailureRegime() = default;

  /// Appends inter-failure gaps to `out` until their running sum reaches
  /// `horizon` (the final gap is the first crossing it) — the same stopping
  /// contract as Distribution::sample_gaps, and the entry point
  /// sim::TraceStore materializes repetitions through. Deterministic: equal
  /// RNG state and horizon give bit-equal gap vectors.
  virtual void sample_gaps(Rng& rng, Seconds horizon,
                           std::vector<Seconds>& out) const = 0;

  /// Long-run mean gap (exact where closed-form; see each regime's note).
  virtual Seconds mean_gap() const = 0;

  /// Human-readable name with parameters.
  virtual std::string name() const = 0;

  virtual std::unique_ptr<FailureRegime> clone() const = 0;

  /// Live-sampling adapter matching the sim::GapSampler signature
  /// `Seconds(Rng&, Seconds gap_start)`: the first draw of a run
  /// (gap_start == 0) materializes the full sequence through sample_gaps —
  /// consuming exactly the draws a TraceStore materialization would, so a
  /// live serial run is bit-identical to replaying the store — and later
  /// draws walk the buffer. The closure carries a cursor, so it is for
  /// SERIAL use only: parallel campaigns must replay from a sim::TraceStore
  /// built over the same regime (regimes that override this with a pure
  /// stateless function say so). The alarm RNG forks off the seed, never
  /// generator state, so the up-front draw burst cannot perturb prediction.
  virtual std::function<Seconds(Rng&, Seconds)> sampler(Seconds horizon) const;
};

using FailureRegimePtr = std::unique_ptr<FailureRegime>;

/// Adapter: any renewal Distribution as a regime (the control rows of the
/// scenario catalog). mean_gap is exact.
class RenewalRegime final : public FailureRegime {
 public:
  explicit RenewalRegime(DistributionPtr dist);

  const Distribution& distribution() const { return *dist_; }

  void sample_gaps(Rng& rng, Seconds horizon,
                   std::vector<Seconds>& out) const override;
  Seconds mean_gap() const override { return dist_->mean(); }
  std::string name() const override;
  FailureRegimePtr clone() const override;

 private:
  DistributionPtr dist_;
};

/// Markov-modulated gaps: a two-phase (calm/burst) Markov chain over failure
/// events. Each failure first resolves a phase transition, then draws the
/// next gap from the current phase's Weibull — so a machine that enters the
/// burst phase emits a run of short gaps before recovering, producing the
/// positive gap autocorrelation and over-dispersed failure counts no renewal
/// process has. Exactly two uniforms are consumed per gap (transition, gap),
/// which makes the per-draw form below trivially replayable.
class MarkovBurstRegime final : public FailureRegime {
 public:
  struct Config {
    Seconds calm_mtbf = 0.0;      ///< mean gap while calm
    double calm_shape = 0.7;      ///< Weibull beta while calm
    Seconds burst_mtbf = 0.0;     ///< mean gap while bursting (<< calm)
    double burst_shape = 1.0;     ///< Weibull beta while bursting
    double p_calm_to_burst = 0.0; ///< per-failure transition probability
    double p_burst_to_calm = 0.0; ///< per-failure recovery probability
  };

  enum class Phase { kCalm, kBurst };

  explicit MarkovBurstRegime(const Config& config);

  const Config& config() const { return config_; }

  /// Per-draw form with explicit state: resolves one phase transition, then
  /// draws one gap. sample_gaps is bit-identical to looping this from
  /// Phase::kCalm (pinned in tests/reliability/regimes_test.cpp).
  Seconds next_gap(Rng& rng, Phase& phase) const;

  void sample_gaps(Rng& rng, Seconds horizon,
                   std::vector<Seconds>& out) const override;
  /// Exact: the phase chain is per-gap, so the stationary mix of the two
  /// phase means is the long-run mean gap.
  Seconds mean_gap() const override;
  std::string name() const override;
  FailureRegimePtr clone() const override;

 private:
  Config config_;
  Weibull calm_;
  Weibull burst_;
};

/// Spatially correlated node-group outages, seen from the system's failure
/// clock: primary (group-level) outages arrive as a Weibull renewal process,
/// and each felled group drags `group_size_mean` neighbours down with it at
/// short exponential offsets (a Neyman–Scott cluster process). The merged
/// event stream is non-renewal: failures arrive in tight clusters separated
/// by long quiet spells.
class ClusterOutageRegime final : public FailureRegime {
 public:
  struct Config {
    Seconds primary_mtbf = 0.0;  ///< mean gap between group-level outages
    double primary_shape = 0.7;  ///< Weibull beta of the primary process
    double group_size_mean = 0.0;///< mean follow-on failures per outage (geometric)
    Seconds spread = 0.0;        ///< mean offset of a follow-on failure (exponential)
  };

  explicit ClusterOutageRegime(const Config& config);

  const Config& config() const { return config_; }

  void sample_gaps(Rng& rng, Seconds horizon,
                   std::vector<Seconds>& out) const override;
  /// Long-run approximation primary_mtbf / (1 + group_size_mean); edge
  /// effects at the horizon make finite-sample means slightly larger.
  Seconds mean_gap() const override;
  std::string name() const override;
  FailureRegimePtr clone() const override;

 private:
  Config config_;
  Weibull primary_;
};

/// Heterogeneous MTBF pools: the superposition of independent Weibull
/// renewal streams, one per node pool (old racks fail often, new racks
/// rarely). Superposing non-Poisson renewals yields a non-renewal system
/// process. Pools are sampled in declaration order off one RNG stream and
/// their event times merged, so the output is deterministic.
class HeterogeneousPoolsRegime final : public FailureRegime {
 public:
  struct Pool {
    double shape = 0.7;    ///< Weibull beta of this pool's stream
    Seconds mtbf = 0.0;    ///< this pool's mean gap
  };

  explicit HeterogeneousPoolsRegime(std::vector<Pool> pools);

  const std::vector<Pool>& pools() const { return pools_; }

  void sample_gaps(Rng& rng, Seconds horizon,
                   std::vector<Seconds>& out) const override;
  /// Exact long-run rate sum: 1 / sum_i (1 / mtbf_i).
  Seconds mean_gap() const override;
  std::string name() const override;
  FailureRegimePtr clone() const override;

 private:
  std::vector<Pool> pools_;
  std::vector<Weibull> streams_;
};

/// Non-stationary Weibull whose shape (and optionally MTBF) drifts linearly
/// over [0, ramp], then holds: gap at absolute time t draws from
/// Weibull(beta(t), scale chosen so the mean is mtbf(t)). The per-draw form
/// is a pure function of (rng, gap_start) — the existing sim::GapSampler
/// contract verbatim — so sampler() is stateless and thread-safe.
class DriftingWeibullRegime final : public FailureRegime {
 public:
  struct Config {
    double beta_start = 0.0;
    double beta_end = 0.0;
    Seconds mtbf_start = 0.0;
    Seconds mtbf_end = 0.0;
    Seconds ramp = 0.0;  ///< drift completes at this absolute time
  };

  explicit DriftingWeibullRegime(const Config& config);

  const Config& config() const { return config_; }

  /// Shape and MTBF at absolute time `t` (clamped linear ramp).
  double beta_at(Seconds t) const;
  Seconds mtbf_at(Seconds t) const;

  /// Pure per-draw form: one uniform, inverse-transformed through the
  /// Weibull current at `gap_start`.
  Seconds gap_at(Rng& rng, Seconds gap_start) const;

  void sample_gaps(Rng& rng, Seconds horizon,
                   std::vector<Seconds>& out) const override;
  /// Time-average of mtbf(t) over the ramp — an approximation (gap-start
  /// times do not sample the ramp uniformly); display only.
  Seconds mean_gap() const override;
  std::string name() const override;
  FailureRegimePtr clone() const override;

  /// Stateless, thread-safe override of the live adapter (gap_at is pure).
  std::function<Seconds(Rng&, Seconds)> sampler(Seconds horizon) const override;

 private:
  Config config_;
};

/// Index of dispersion of failure counts in consecutive `window`-second
/// windows: var(count) / mean(count). 1 for Poisson; renewal processes tend
/// to the gap CV^2 for wide windows; bursty/clustered regimes exceed their
/// same-mean renewal counterpart (the "clustering factor" the scenario
/// tests and the matrix bench report). Requires the gaps to span at least
/// two windows.
double count_index_of_dispersion(const std::vector<Seconds>& gaps, Seconds window);

/// Lag-1 autocorrelation of successive gap lengths: ~0 for any renewal
/// process, positive under Markov modulation (short gaps follow short gaps).
/// Requires at least three gaps.
double gap_lag1_autocorrelation(const std::vector<Seconds>& gaps);

}  // namespace shiraz::reliability
