#include "reliability/analytics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/statistics.h"

namespace shiraz::reliability {

std::vector<std::size_t> weekly_failure_counts(const FailureTrace& trace) {
  const Seconds horizon = trace.horizon();
  SHIRAZ_REQUIRE(horizon > 0.0, "trace has no horizon");
  const auto weeks_total =
      static_cast<std::size_t>(std::ceil(horizon / kSecondsPerWeek));
  std::vector<std::size_t> counts(std::max<std::size_t>(weeks_total, 1), 0);
  for (const Seconds t : trace.times()) {
    const auto w = static_cast<std::size_t>(t / kSecondsPerWeek);
    ++counts[std::min(w, counts.size() - 1)];
  }
  return counts;
}

WeeklyVariability weekly_variability(const std::vector<std::size_t>& counts) {
  SHIRAZ_REQUIRE(!counts.empty(), "no weekly counts");
  RunningStats stats;
  for (const std::size_t c : counts) stats.add(static_cast<double>(c));
  WeeklyVariability v;
  v.mean = stats.mean();
  v.stddev = stats.stddev();
  v.cv = v.mean > 0.0 ? v.stddev / v.mean : 0.0;
  v.max_week = static_cast<std::size_t>(stats.max());
  std::size_t run = 0;
  for (const std::size_t c : counts) {
    const bool stable = std::fabs(static_cast<double>(c) - v.mean) <= 0.25 * v.mean;
    run = stable ? run + 1 : 0;
    v.longest_stable_run = std::max(v.longest_stable_run, run);
  }
  return v;
}

std::vector<double> interarrival_cdf_at_mtbf_fractions(
    const FailureTrace& trace, const std::vector<double>& fractions) {
  const auto gaps = trace.inter_arrival_times();
  SHIRAZ_REQUIRE(!gaps.empty(), "trace has no gaps");
  const Seconds mtbf = trace.observed_mtbf();
  std::vector<double> cdf;
  cdf.reserve(fractions.size());
  for (const double f : fractions) {
    cdf.push_back(empirical_cdf(gaps, f * mtbf));
  }
  return cdf;
}

std::vector<double> empirical_hazard(const FailureTrace& trace, Seconds window,
                                     std::size_t bins) {
  SHIRAZ_REQUIRE(window > 0.0, "hazard window must be positive");
  SHIRAZ_REQUIRE(bins > 0, "hazard needs at least one bin");
  const auto gaps = trace.inter_arrival_times();
  SHIRAZ_REQUIRE(!gaps.empty(), "trace has no gaps");
  const Seconds width = window / static_cast<double>(bins);
  std::vector<double> events(bins, 0.0);
  std::vector<double> exposure(bins, 0.0);
  for (const Seconds g : gaps) {
    for (std::size_t b = 0; b < bins; ++b) {
      const Seconds lo = static_cast<double>(b) * width;
      const Seconds hi = lo + width;
      if (g <= lo) break;
      exposure[b] += std::min(g, hi) - lo;
      if (g > lo && g <= hi) events[b] += 1.0;
    }
  }
  std::vector<double> hazard(bins, 0.0);
  for (std::size_t b = 0; b < bins; ++b) {
    hazard[b] = exposure[b] > 0.0 ? events[b] / exposure[b] : 0.0;
  }
  return hazard;
}

}  // namespace shiraz::reliability
