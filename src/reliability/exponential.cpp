#include "reliability/exponential.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace shiraz::reliability {

Exponential::Exponential(Seconds mean) : mean_(mean) {
  SHIRAZ_REQUIRE(mean > 0.0, "Exponential mean must be positive");
}

Seconds Exponential::sample(Rng& rng) const { return quantile(rng.uniform()); }

double Exponential::cdf(Seconds t) const {
  if (t <= 0.0) return 0.0;
  return 1.0 - std::exp(-t / mean_);
}

double Exponential::pdf(Seconds t) const {
  if (t < 0.0) return 0.0;
  return std::exp(-t / mean_) / mean_;
}

Seconds Exponential::quantile(double u) const {
  SHIRAZ_REQUIRE(u >= 0.0 && u < 1.0, "quantile u must be in [0,1)");
  return -mean_ * std::log1p(-u);
}

std::string Exponential::name() const {
  std::ostringstream os;
  os << "Exponential(mtbf=" << as_hours(mean_) << "h)";
  return os.str();
}

DistributionPtr Exponential::clone() const { return std::make_unique<Exponential>(*this); }

void Exponential::sample_gaps(Rng& rng, Seconds horizon,
                              std::vector<Seconds>& out) const {
  Seconds t = 0.0;
  while (t < horizon) {
    const Seconds gap = -mean_ * std::log1p(-rng.uniform());
    out.push_back(gap);
    t += gap;
  }
}

}  // namespace shiraz::reliability
