#include "reliability/fitting.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/mathx.h"

namespace shiraz::reliability {

namespace {

// Profile-likelihood equation for the Weibull shape parameter beta:
//   g(beta) = sum(x^b ln x)/sum(x^b) - 1/b - mean(ln x) = 0.
// Strictly increasing in beta over (0, inf), so bisection is safe.
double shape_equation(const std::vector<Seconds>& xs, double beta) {
  double sum_xb = 0.0;
  double sum_xb_lnx = 0.0;
  double sum_lnx = 0.0;
  for (const double x : xs) {
    const double lnx = std::log(x);
    const double xb = std::pow(x, beta);
    sum_xb += xb;
    sum_xb_lnx += xb * lnx;
    sum_lnx += lnx;
  }
  return sum_xb_lnx / sum_xb - 1.0 / beta - sum_lnx / static_cast<double>(xs.size());
}

}  // namespace

WeibullFit fit_weibull_mle(const std::vector<Seconds>& samples) {
  SHIRAZ_REQUIRE(samples.size() >= 2, "Weibull MLE needs at least two samples");
  for (const double x : samples) {
    SHIRAZ_REQUIRE(x > 0.0, "Weibull MLE requires strictly positive samples");
  }
  // Degenerate case: all samples identical -> the equation has no finite root.
  const double first = samples.front();
  const bool all_equal =
      std::all_of(samples.begin(), samples.end(),
                  [&](double x) { return mathx::approx_equal(x, first, 1e-12); });
  SHIRAZ_REQUIRE(!all_equal, "Weibull MLE undefined for a constant sample");

  // Bracket the root of the (monotone) shape equation.
  double lo = 1e-3;
  double hi = 1.0;
  while (shape_equation(samples, hi) < 0.0 && hi < 1e3) hi *= 2.0;
  while (shape_equation(samples, lo) > 0.0 && lo > 1e-9) lo *= 0.5;
  const double beta =
      mathx::bisect([&](double b) { return shape_equation(samples, b); }, lo, hi, 1e-12);

  double sum_xb = 0.0;
  for (const double x : samples) sum_xb += std::pow(x, beta);
  const double scale =
      std::pow(sum_xb / static_cast<double>(samples.size()), 1.0 / beta);

  WeibullFit fit;
  fit.shape = beta;
  fit.scale = scale;
  fit.log_likelihood = log_likelihood(samples, Weibull(beta, scale));
  return fit;
}

double ks_statistic(std::vector<Seconds> samples, const Distribution& dist) {
  SHIRAZ_REQUIRE(!samples.empty(), "KS statistic of empty sample");
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = dist.cdf(samples[i]);
    const double above = (static_cast<double>(i) + 1.0) / n - f;
    const double below = f - static_cast<double>(i) / n;
    d = std::max({d, above, below});
  }
  return d;
}

double log_likelihood(const std::vector<Seconds>& samples, const Distribution& dist) {
  double ll = 0.0;
  for (const double x : samples) {
    const double p = dist.pdf(x);
    SHIRAZ_REQUIRE(p > 0.0, "sample outside the support of the distribution");
    ll += std::log(p);
  }
  return ll;
}

}  // namespace shiraz::reliability
