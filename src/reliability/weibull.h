// Weibull inter-arrival distribution — the paper's failure model.
#pragma once

#include <string>

#include "reliability/distribution.h"

namespace shiraz::reliability {

/// Weibull(shape beta, scale lambda):
///   S(t) = exp(-(t/lambda)^beta),  mean = lambda * Gamma(1 + 1/beta).
///
/// For beta < 1 the hazard rate decreases between failures — the temporal
/// recurrence property Shiraz exploits (paper Section 2).
class Weibull final : public Distribution {
 public:
  /// Constructs from shape and scale directly.
  Weibull(double shape, Seconds scale);

  /// Constructs from shape and the desired mean (MTBF), deriving the scale as
  /// lambda = M / Gamma(1 + 1/beta) — exactly the paper's Eq. 2 note.
  static Weibull from_mtbf(double shape, Seconds mtbf);

  double shape() const { return shape_; }
  Seconds scale() const { return scale_; }

  Seconds sample(Rng& rng) const override;
  double cdf(Seconds t) const override;
  double pdf(Seconds t) const override;
  Seconds mean() const override;
  Seconds quantile(double u) const override;
  std::string name() const override;
  DistributionPtr clone() const override;

  /// Batched draw: hoists 1/beta out of the loop and skips the per-draw
  /// virtual dispatch. `1.0 / shape_` is the identical division quantile()
  /// performs, so the gaps are bit-identical to repeated sample() calls.
  void sample_gaps(Rng& rng, Seconds horizon,
                   std::vector<Seconds>& out) const override;

 private:
  double shape_;
  Seconds scale_;
};

}  // namespace shiraz::reliability
