#include "reliability/systems.h"

namespace shiraz::reliability {

SystemSpec petascale_system() {
  return SystemSpec{.name = "Petascale (MTBF 20h)",
                    .mtbf = hours(20.0),
                    .weibull_shape = 0.6,
                    .power_megawatts = 10.0};
}

SystemSpec exascale_system() {
  return SystemSpec{.name = "Exascale (MTBF 5h)",
                    .mtbf = hours(5.0),
                    .weibull_shape = 0.6,
                    .power_megawatts = 20.0};
}

std::vector<SystemSpec> trace_systems() {
  // Names indicate the role, not a claim of matching any particular machine's
  // trace; MTBF/beta values span the band the paper's Section 2 cites.
  return {
      SystemSpec{"TraceSys-A (leadership, MTBF 8h, beta 0.5)", hours(8.0), 0.5, 9.0},
      SystemSpec{"TraceSys-B (capacity, MTBF 16h, beta 0.6)", hours(16.0), 0.6, 6.0},
      SystemSpec{"TraceSys-C (capability, MTBF 26h, beta 0.7)", hours(26.0), 0.7, 8.0},
      SystemSpec{"TraceSys-D (aging, MTBF 40h, beta 0.4)", hours(40.0), 0.4, 4.0},
  };
}

}  // namespace shiraz::reliability
