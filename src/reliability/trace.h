// Failure traces: ordered sequences of failure timestamps for one system.
//
// The paper's Figures 1 and 2 analyze production traces (CFDR/LANL). Those are
// not redistributable, so this module also provides synthetic generation from
// renewal processes over any Distribution — the documented substitution in
// DESIGN.md.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "reliability/distribution.h"

namespace shiraz::reliability {

/// An ordered list of absolute failure times on one system, starting at t = 0.
class FailureTrace {
 public:
  FailureTrace() = default;
  explicit FailureTrace(std::vector<Seconds> times);

  /// Generates a renewal-process trace covering [0, horizon).
  static FailureTrace generate(const Distribution& dist, Seconds horizon, Rng& rng);

  const std::vector<Seconds>& times() const { return times_; }
  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }
  Seconds horizon() const { return horizon_; }
  void set_horizon(Seconds horizon);

  /// Gaps between consecutive failures (size() - 1 entries, plus the initial
  /// gap from t = 0 to the first failure).
  std::vector<Seconds> inter_arrival_times() const;

  /// Observed mean time between failures.
  Seconds observed_mtbf() const;

  /// Serializes to a simple one-timestamp-per-line text format (seconds).
  void save(const std::string& path) const;
  static FailureTrace load(const std::string& path);

 private:
  std::vector<Seconds> times_;
  Seconds horizon_ = 0.0;
};

}  // namespace shiraz::reliability
