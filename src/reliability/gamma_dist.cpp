#include "reliability/gamma_dist.h"

#include <cmath>
#include <random>
#include <sstream>

#include "common/error.h"
#include "common/mathx.h"

namespace shiraz::reliability {

GammaDist::GammaDist(double shape, Seconds scale) : shape_(shape), scale_(scale) {
  SHIRAZ_REQUIRE(shape > 0.0, "Gamma shape must be positive");
  SHIRAZ_REQUIRE(scale > 0.0, "Gamma scale must be positive");
}

GammaDist GammaDist::from_mtbf(double shape, Seconds mtbf) {
  SHIRAZ_REQUIRE(shape > 0.0, "Gamma shape must be positive");
  SHIRAZ_REQUIRE(mtbf > 0.0, "MTBF must be positive");
  return GammaDist(shape, mtbf / shape);
}

Seconds GammaDist::sample(Rng& rng) const {
  std::gamma_distribution<double> d(shape_, scale_);
  return d(rng.engine());
}

double GammaDist::cdf(Seconds t) const {
  if (t <= 0.0) return 0.0;
  return mathx::reg_lower_incomplete_gamma(shape_, t / scale_);
}

double GammaDist::pdf(Seconds t) const {
  if (t <= 0.0) return 0.0;
  return std::exp((shape_ - 1.0) * std::log(t) - t / scale_ -
                  mathx::log_gamma(shape_) - shape_ * std::log(scale_));
}

Seconds GammaDist::quantile(double u) const {
  SHIRAZ_REQUIRE(u >= 0.0 && u < 1.0, "quantile u must be in [0,1)");
  if (u == 0.0) return 0.0;
  // The CDF is strictly increasing; bracket generously above the mean.
  Seconds hi = mean();
  while (cdf(hi) < u) hi *= 2.0;
  return mathx::bisect([&](double t) { return cdf(t) - u; }, 0.0, hi, 1e-12);
}

std::string GammaDist::name() const {
  std::ostringstream os;
  os << "Gamma(k=" << shape_ << ", mtbf=" << as_hours(mean()) << "h)";
  return os.str();
}

DistributionPtr GammaDist::clone() const { return std::make_unique<GammaDist>(*this); }

}  // namespace shiraz::reliability
