// Bathtub-hazard inter-arrival distribution (additive Weibull).
//
// The paper's Weibull model has a monotone hazard; real components show the
// classic bathtub: infant mortality right after a repair, a flat useful-life
// floor, then wear-out. The additive-Weibull form (Xie & Lai 1996) captures
// all three with one closed-form survival function:
//
//   H(t) = (t / s1)^b1 + (t / s2)^b2,   b1 < 1 < b2
//   S(t) = exp(-H(t)),  h(t) = b1/s1 (t/s1)^{b1-1} + b2/s2 (t/s2)^{b2-1}
//
// The b1 term dominates early (decreasing hazard), the b2 term late
// (increasing hazard), so h is non-monotone with an interior minimum — the
// shape the scenario catalog's hazard-sanity tests pin. As a renewal
// process this models a machine whose repair resets the bathtub each gap.
#pragma once

#include <string>

#include "reliability/distribution.h"

namespace shiraz::reliability {

class BathtubWeibull final : public Distribution {
 public:
  /// `infant_shape` (b1) must be in (0, 1); `wear_shape` (b2) must exceed 1;
  /// both scales positive. Violations throw InvalidArgument.
  BathtubWeibull(double infant_shape, Seconds infant_scale, double wear_shape,
                 Seconds wear_scale);

  double infant_shape() const { return b1_; }
  Seconds infant_scale() const { return s1_; }
  double wear_shape() const { return b2_; }
  Seconds wear_scale() const { return s2_; }

  Seconds sample(Rng& rng) const override;
  double cdf(Seconds t) const override;
  double pdf(Seconds t) const override;
  /// Numeric (fixed-scheme Simpson) integral of S(t); computed once at
  /// construction, so repeated calls are cheap and bit-stable.
  Seconds mean() const override;
  /// Inverts H(t) = -log1p(-u) by safeguarded Newton iteration; the scheme is
  /// a pure function of `u`, so equal inputs give bit-equal outputs — the
  /// property sample()/sample_gaps bit-identity rests on.
  Seconds quantile(double u) const override;
  std::string name() const override;
  DistributionPtr clone() const override;

  /// Batched draw: one quantile inversion per gap, exactly the draws the
  /// equivalent sample() loop performs.
  void sample_gaps(Rng& rng, Seconds horizon,
                   std::vector<Seconds>& out) const override;

 private:
  /// Cumulative hazard H(t).
  double cumulative_hazard(Seconds t) const;

  double b1_;
  Seconds s1_;
  double b2_;
  Seconds s2_;
  Seconds mean_;
};

}  // namespace shiraz::reliability
