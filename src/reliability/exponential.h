// Exponential inter-arrival distribution (constant hazard rate).
//
// The memoryless baseline against which the Weibull temporal-recurrence effect
// is contrasted: with exponential failures, there is no "reliability zone" to
// exploit and Shiraz's optimal switch point degenerates.
#pragma once

#include <string>

#include "reliability/distribution.h"

namespace shiraz::reliability {

class Exponential final : public Distribution {
 public:
  explicit Exponential(Seconds mean);

  Seconds sample(Rng& rng) const override;
  double cdf(Seconds t) const override;
  double pdf(Seconds t) const override;
  Seconds mean() const override { return mean_; }
  Seconds quantile(double u) const override;
  std::string name() const override;
  DistributionPtr clone() const override;

  /// Batched draw without the per-draw virtual dispatch; bit-identical to
  /// repeated sample() calls (same closed-form inverse transform).
  void sample_gaps(Rng& rng, Seconds horizon,
                   std::vector<Seconds>& out) const override;

 private:
  Seconds mean_;
};

}  // namespace shiraz::reliability
