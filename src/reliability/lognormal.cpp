#include "reliability/lognormal.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/mathx.h"

namespace shiraz::reliability {

Lognormal::Lognormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  SHIRAZ_REQUIRE(sigma > 0.0, "Lognormal sigma must be positive");
}

Lognormal Lognormal::from_mean_cv(Seconds mean, double cv) {
  SHIRAZ_REQUIRE(mean > 0.0, "Lognormal mean must be positive");
  SHIRAZ_REQUIRE(cv > 0.0, "Lognormal cv must be positive");
  const double sigma2 = std::log1p(cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return Lognormal(mu, std::sqrt(sigma2));
}

Seconds Lognormal::sample(Rng& rng) const { return std::exp(mu_ + sigma_ * rng.normal()); }

double Lognormal::cdf(Seconds t) const {
  if (t <= 0.0) return 0.0;
  return 0.5 * (1.0 + mathx::erf_fn((std::log(t) - mu_) / (sigma_ * std::sqrt(2.0))));
}

double Lognormal::pdf(Seconds t) const {
  if (t <= 0.0) return 0.0;
  const double z = (std::log(t) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (t * sigma_ * std::sqrt(2.0 * M_PI));
}

Seconds Lognormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

Seconds Lognormal::quantile(double u) const {
  SHIRAZ_REQUIRE(u >= 0.0 && u < 1.0, "quantile u must be in [0,1)");
  if (u == 0.0) return 0.0;
  // Invert the CDF numerically; the CDF is strictly increasing.
  const Seconds hi_guess = std::exp(mu_ + 8.0 * sigma_);
  return mathx::bisect([&](double t) { return cdf(t) - u; }, 0.0, hi_guess, 1e-12);
}

std::string Lognormal::name() const {
  std::ostringstream os;
  os << "Lognormal(mu=" << mu_ << ", sigma=" << sigma_ << ")";
  return os.str();
}

DistributionPtr Lognormal::clone() const { return std::make_unique<Lognormal>(*this); }

}  // namespace shiraz::reliability
