#include "reliability/regimes.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace shiraz::reliability {

namespace {

/// Shared horizon-crossing walk: converts a sorted absolute event-time list
/// into gaps obeying the sample_gaps stopping contract (all-but-last prefix
/// sums < horizon, last crossing it). The merge-based regimes generate event
/// times past the horizon, then hand the sorted list here.
void event_times_to_gaps(const std::vector<Seconds>& times, Seconds horizon,
                         std::vector<Seconds>& out) {
  Seconds prev = 0.0;
  for (const Seconds t : times) {
    if (t <= prev) continue;  // drop coincident / out-of-order duplicates
    out.push_back(t - prev);
    prev = t;
    if (t >= horizon) return;
  }
  // The caller over-samples past the horizon, so falling off the end means
  // the generator under-produced — a regime bug, not a data condition.
  throw Error("regime event stream ended before the horizon");
}

}  // namespace

std::function<Seconds(Rng&, Seconds)> FailureRegime::sampler(Seconds horizon) const {
  SHIRAZ_REQUIRE(horizon > 0.0, "regime sampler horizon must be positive");
  struct Cursor {
    std::vector<Seconds> gaps;
    std::size_t next = 0;
  };
  auto cursor = std::make_shared<Cursor>();
  FailureRegimePtr self = clone();
  return [cursor, horizon,
          regime = std::shared_ptr<const FailureRegime>(std::move(self))](
             Rng& rng, Seconds gap_start) -> Seconds {
    if (gap_start == 0.0) {  // first draw of a (re)run: materialize afresh
      cursor->gaps.clear();
      cursor->next = 0;
      regime->sample_gaps(rng, horizon, cursor->gaps);
    }
    SHIRAZ_REQUIRE(cursor->next < cursor->gaps.size(),
                   "regime sampler drawn past its horizon — serial-only "
                   "adapter misused (replay a sim::TraceStore instead)");
    return cursor->gaps[cursor->next++];
  };
}

// ---------------------------------------------------------------------------
// RenewalRegime

RenewalRegime::RenewalRegime(DistributionPtr dist) : dist_(std::move(dist)) {
  SHIRAZ_REQUIRE(dist_ != nullptr, "RenewalRegime requires a distribution");
}

void RenewalRegime::sample_gaps(Rng& rng, Seconds horizon,
                                std::vector<Seconds>& out) const {
  dist_->sample_gaps(rng, horizon, out);
}

std::string RenewalRegime::name() const {
  return "Renewal[" + dist_->name() + "]";
}

FailureRegimePtr RenewalRegime::clone() const {
  return std::make_unique<RenewalRegime>(dist_->clone());
}

// ---------------------------------------------------------------------------
// MarkovBurstRegime

MarkovBurstRegime::MarkovBurstRegime(const Config& config)
    : config_(config),
      calm_(Weibull::from_mtbf(config.calm_shape, config.calm_mtbf)),
      burst_(Weibull::from_mtbf(config.burst_shape, config.burst_mtbf)) {
  SHIRAZ_REQUIRE(config.calm_mtbf > 0.0, "markov-burst calm MTBF must be positive");
  SHIRAZ_REQUIRE(config.burst_mtbf > 0.0, "markov-burst burst MTBF must be positive");
  SHIRAZ_REQUIRE(config.burst_mtbf < config.calm_mtbf,
                 "markov-burst burst MTBF must be shorter than calm MTBF");
  SHIRAZ_REQUIRE(config.p_calm_to_burst > 0.0 && config.p_calm_to_burst < 1.0,
                 "markov-burst p_calm_to_burst must be in (0, 1)");
  SHIRAZ_REQUIRE(config.p_burst_to_calm > 0.0 && config.p_burst_to_calm < 1.0,
                 "markov-burst p_burst_to_calm must be in (0, 1)");
}

Seconds MarkovBurstRegime::next_gap(Rng& rng, Phase& phase) const {
  const double u = rng.uniform();  // always one transition draw per gap
  if (phase == Phase::kCalm) {
    if (u < config_.p_calm_to_burst) phase = Phase::kBurst;
  } else {
    if (u < config_.p_burst_to_calm) phase = Phase::kCalm;
  }
  const Weibull& w = (phase == Phase::kCalm) ? calm_ : burst_;
  return w.quantile(rng.uniform());
}

void MarkovBurstRegime::sample_gaps(Rng& rng, Seconds horizon,
                                    std::vector<Seconds>& out) const {
  Phase phase = Phase::kCalm;
  Seconds t = 0.0;
  while (t < horizon) {
    const Seconds gap = next_gap(rng, phase);
    out.push_back(gap);
    t += gap;
  }
}

Seconds MarkovBurstRegime::mean_gap() const {
  const double pi_burst =
      config_.p_calm_to_burst / (config_.p_calm_to_burst + config_.p_burst_to_calm);
  return (1.0 - pi_burst) * config_.calm_mtbf + pi_burst * config_.burst_mtbf;
}

std::string MarkovBurstRegime::name() const {
  std::ostringstream os;
  os << "MarkovBurst(calm=" << as_hours(config_.calm_mtbf)
     << "h@b=" << config_.calm_shape << ", burst=" << as_hours(config_.burst_mtbf)
     << "h@b=" << config_.burst_shape << ", p_cb=" << config_.p_calm_to_burst
     << ", p_bc=" << config_.p_burst_to_calm << ")";
  return os.str();
}

FailureRegimePtr MarkovBurstRegime::clone() const {
  return std::make_unique<MarkovBurstRegime>(*this);
}

// ---------------------------------------------------------------------------
// ClusterOutageRegime

ClusterOutageRegime::ClusterOutageRegime(const Config& config)
    : config_(config),
      primary_(Weibull::from_mtbf(config.primary_shape, config.primary_mtbf)) {
  SHIRAZ_REQUIRE(config.primary_mtbf > 0.0,
                 "cluster-outage primary MTBF must be positive");
  SHIRAZ_REQUIRE(config.group_size_mean >= 0.0,
                 "cluster-outage group size mean must be non-negative");
  SHIRAZ_REQUIRE(config.spread > 0.0, "cluster-outage spread must be positive");
  SHIRAZ_REQUIRE(config.spread < config.primary_mtbf,
                 "cluster-outage spread must be shorter than the primary MTBF");
}

void ClusterOutageRegime::sample_gaps(Rng& rng, Seconds horizon,
                                      std::vector<Seconds>& out) const {
  // Primary outages: Weibull renewal walked past the horizon so clusters
  // seeded just inside it still contribute their tails.
  const double p_geo = 1.0 / (1.0 + config_.group_size_mean);  // P(size = k) geometric
  std::vector<Seconds> times;
  Seconds t = 0.0;
  while (t < horizon) {
    t += primary_.quantile(rng.uniform());
    times.push_back(t);
    // Follow-on failures: geometric count (mean group_size_mean), each at an
    // independent exponential offset after the primary. Draw order is fixed
    // (count, then offsets), so the stream is deterministic.
    while (rng.uniform() >= p_geo) {
      const Seconds offset = -config_.spread * std::log1p(-rng.uniform());
      times.push_back(t + offset);
    }
  }
  // The final primary lands at or past the horizon (loop condition), so the
  // sorted stream always crosses it regardless of where follow-ons fall.
  std::sort(times.begin(), times.end());
  event_times_to_gaps(times, horizon, out);
}

Seconds ClusterOutageRegime::mean_gap() const {
  return config_.primary_mtbf / (1.0 + config_.group_size_mean);
}

std::string ClusterOutageRegime::name() const {
  std::ostringstream os;
  os << "ClusterOutage(primary=" << as_hours(config_.primary_mtbf)
     << "h@b=" << config_.primary_shape << ", group=" << config_.group_size_mean
     << ", spread=" << as_hours(config_.spread) << "h)";
  return os.str();
}

FailureRegimePtr ClusterOutageRegime::clone() const {
  return std::make_unique<ClusterOutageRegime>(*this);
}

// ---------------------------------------------------------------------------
// HeterogeneousPoolsRegime

HeterogeneousPoolsRegime::HeterogeneousPoolsRegime(std::vector<Pool> pools)
    : pools_(std::move(pools)) {
  SHIRAZ_REQUIRE(pools_.size() >= 2,
                 "hetero-pools needs at least two pools (one pool is a renewal)");
  streams_.reserve(pools_.size());
  for (const Pool& p : pools_) {
    SHIRAZ_REQUIRE(p.mtbf > 0.0, "hetero-pools pool MTBF must be positive");
    streams_.push_back(Weibull::from_mtbf(p.shape, p.mtbf));
  }
}

void HeterogeneousPoolsRegime::sample_gaps(Rng& rng, Seconds horizon,
                                           std::vector<Seconds>& out) const {
  // Each pool's renewal stream is sampled to the horizon in declaration
  // order off the single RNG — a fixed draw order, so the superposition is
  // as deterministic as any single stream.
  std::vector<Seconds> times;
  std::vector<Seconds> gaps;
  for (const Weibull& w : streams_) {
    gaps.clear();
    w.sample_gaps(rng, horizon, gaps);
    Seconds t = 0.0;
    for (const Seconds g : gaps) {
      t += g;
      times.push_back(t);
    }
  }
  std::sort(times.begin(), times.end());
  event_times_to_gaps(times, horizon, out);
}

Seconds HeterogeneousPoolsRegime::mean_gap() const {
  double rate = 0.0;
  for (const Pool& p : pools_) rate += 1.0 / p.mtbf;
  return 1.0 / rate;
}

std::string HeterogeneousPoolsRegime::name() const {
  std::ostringstream os;
  os << "HeteroPools(";
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    if (i != 0) os << ", ";
    os << as_hours(pools_[i].mtbf) << "h@b=" << pools_[i].shape;
  }
  os << ")";
  return os.str();
}

FailureRegimePtr HeterogeneousPoolsRegime::clone() const {
  return std::make_unique<HeterogeneousPoolsRegime>(*this);
}

// ---------------------------------------------------------------------------
// DriftingWeibullRegime

DriftingWeibullRegime::DriftingWeibullRegime(const Config& config)
    : config_(config) {
  SHIRAZ_REQUIRE(config.beta_start > 0.0 && config.beta_end > 0.0,
                 "drifting-weibull shapes must be positive");
  SHIRAZ_REQUIRE(config.mtbf_start > 0.0 && config.mtbf_end > 0.0,
                 "drifting-weibull MTBFs must be positive");
  SHIRAZ_REQUIRE(config.ramp > 0.0, "drifting-weibull ramp must be positive");
}

double DriftingWeibullRegime::beta_at(Seconds t) const {
  const double frac = std::clamp(t / config_.ramp, 0.0, 1.0);
  return config_.beta_start + frac * (config_.beta_end - config_.beta_start);
}

Seconds DriftingWeibullRegime::mtbf_at(Seconds t) const {
  const double frac = std::clamp(t / config_.ramp, 0.0, 1.0);
  return config_.mtbf_start + frac * (config_.mtbf_end - config_.mtbf_start);
}

Seconds DriftingWeibullRegime::gap_at(Rng& rng, Seconds gap_start) const {
  const double beta = beta_at(gap_start);
  const Seconds scale = mtbf_at(gap_start) / std::tgamma(1.0 + 1.0 / beta);
  // Inverse transform, identical algebra to Weibull::quantile.
  return scale * std::pow(-std::log1p(-rng.uniform()), 1.0 / beta);
}

void DriftingWeibullRegime::sample_gaps(Rng& rng, Seconds horizon,
                                        std::vector<Seconds>& out) const {
  Seconds t = 0.0;
  while (t < horizon) {
    const Seconds gap = gap_at(rng, t);
    out.push_back(gap);
    t += gap;
  }
}

Seconds DriftingWeibullRegime::mean_gap() const {
  return 0.5 * (config_.mtbf_start + config_.mtbf_end);
}

std::string DriftingWeibullRegime::name() const {
  std::ostringstream os;
  os << "DriftingWeibull(b=" << config_.beta_start << "->" << config_.beta_end
     << ", mtbf=" << as_hours(config_.mtbf_start) << "h->"
     << as_hours(config_.mtbf_end) << "h over " << as_hours(config_.ramp) << "h)";
  return os.str();
}

FailureRegimePtr DriftingWeibullRegime::clone() const {
  return std::make_unique<DriftingWeibullRegime>(*this);
}

std::function<Seconds(Rng&, Seconds)> DriftingWeibullRegime::sampler(
    Seconds horizon) const {
  SHIRAZ_REQUIRE(horizon > 0.0, "regime sampler horizon must be positive");
  // gap_at is a pure function of (rng, gap_start): no cursor, safe for
  // parallel campaigns exactly like a plain Distribution-backed sampler.
  return [self = *this](Rng& rng, Seconds gap_start) {
    return self.gap_at(rng, gap_start);
  };
}

// ---------------------------------------------------------------------------
// Statistics

double count_index_of_dispersion(const std::vector<Seconds>& gaps, Seconds window) {
  SHIRAZ_REQUIRE(window > 0.0, "dispersion window must be positive");
  Seconds total = 0.0;
  for (const Seconds g : gaps) total += g;
  const auto n_windows = static_cast<std::size_t>(total / window);
  SHIRAZ_REQUIRE(n_windows >= 2, "gaps must span at least two dispersion windows");
  std::vector<double> counts(n_windows, 0.0);
  Seconds t = 0.0;
  for (const Seconds g : gaps) {
    t += g;
    const auto w = static_cast<std::size_t>(t / window);
    if (w < n_windows) counts[w] += 1.0;
  }
  double mean = 0.0;
  for (const double c : counts) mean += c;
  mean /= static_cast<double>(n_windows);
  SHIRAZ_REQUIRE(mean > 0.0, "dispersion windows contain no failures");
  double var = 0.0;
  for (const double c : counts) var += (c - mean) * (c - mean);
  var /= static_cast<double>(n_windows);
  return var / mean;
}

double gap_lag1_autocorrelation(const std::vector<Seconds>& gaps) {
  SHIRAZ_REQUIRE(gaps.size() >= 3, "lag-1 autocorrelation needs at least 3 gaps");
  const std::size_t n = gaps.size();
  double mean = 0.0;
  for (const Seconds g : gaps) mean += g;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (const Seconds g : gaps) var += (g - mean) * (g - mean);
  SHIRAZ_REQUIRE(var > 0.0, "lag-1 autocorrelation undefined for constant gaps");
  double cov = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    cov += (gaps[i] - mean) * (gaps[i + 1] - mean);
  }
  return cov / var;
}

}  // namespace shiraz::reliability
