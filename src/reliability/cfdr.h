// CFDR-style failure records.
//
// The Computer Failure Data Repository traces the paper analyzes carry, per
// event, a timestamp, the failing component, and a failure category. This
// module reads/writes a compatible CSV schema and projects record sets onto
// the system-wide FailureTrace the rest of the library consumes — so a site
// with real logs can feed them to Shiraz unchanged.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "reliability/trace.h"

namespace shiraz::reliability {

enum class FailureCategory {
  kHardware,
  kSoftware,
  kNetwork,
  kEnvironment,
  kUnknown,
};

std::string to_string(FailureCategory category);
FailureCategory category_from_string(const std::string& text);

struct FailureRecord {
  /// Seconds since the trace epoch.
  Seconds timestamp = 0.0;
  /// Identifier of the failing node/component.
  std::string node;
  FailureCategory category = FailureCategory::kUnknown;
};

class RecordSet {
 public:
  RecordSet() = default;
  explicit RecordSet(std::vector<FailureRecord> records);

  const std::vector<FailureRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Records of one category only.
  RecordSet filter_category(FailureCategory category) const;

  /// Records of one node only.
  RecordSet filter_node(const std::string& node) const;

  /// Union of two record sets (timestamps re-sorted).
  RecordSet merge(const RecordSet& other) const;

  /// Distinct node identifiers.
  std::vector<std::string> nodes() const;

  /// System-wide failure trace: every record is an application-killing event
  /// (the paper's definition: failures that force a restart from checkpoint).
  FailureTrace to_trace(Seconds horizon = 0.0) const;

  /// CSV round-trip: `timestamp_seconds,node,category` with a header line.
  void save_csv(const std::string& path) const;
  static RecordSet load_csv(const std::string& path);

 private:
  std::vector<FailureRecord> records_;  // kept sorted by timestamp
};

}  // namespace shiraz::reliability
