#include "reliability/bootstrap.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "reliability/fitting.h"

namespace shiraz::reliability {

namespace {

template <typename Statistic>
Interval percentile_bootstrap(const std::vector<Seconds>& gaps,
                              const BootstrapOptions& options, Statistic statistic) {
  SHIRAZ_REQUIRE(gaps.size() >= 4, "bootstrap needs at least four gaps");
  SHIRAZ_REQUIRE(options.resamples >= 10, "too few bootstrap resamples");
  SHIRAZ_REQUIRE(options.confidence > 0.0 && options.confidence < 1.0,
                 "confidence must be in (0,1)");

  Interval ci;
  ci.point = statistic(gaps);

  Rng rng(options.seed);
  std::vector<double> stats;
  stats.reserve(options.resamples);
  std::vector<Seconds> resample(gaps.size());
  for (std::size_t b = 0; b < options.resamples; ++b) {
    for (std::size_t i = 0; i < gaps.size(); ++i) {
      resample[i] =
          gaps[static_cast<std::size_t>(rng.uniform_int(0, gaps.size() - 1))];
    }
    try {
      stats.push_back(statistic(resample));
    } catch (const Error&) {
      // Degenerate resample (e.g. all-identical gaps for the MLE); skip it.
    }
  }
  SHIRAZ_REQUIRE(stats.size() >= options.resamples / 2,
                 "too many degenerate bootstrap resamples");
  const double alpha = 1.0 - options.confidence;
  ci.lower = percentile(stats, alpha / 2.0);
  ci.upper = percentile(stats, 1.0 - alpha / 2.0);
  return ci;
}

}  // namespace

Interval bootstrap_mtbf(const std::vector<Seconds>& gaps,
                        const BootstrapOptions& options) {
  return percentile_bootstrap(gaps, options, [](const std::vector<Seconds>& xs) {
    RunningStats stats;
    for (const Seconds x : xs) stats.add(x);
    return stats.mean();
  });
}

Interval bootstrap_weibull_shape(const std::vector<Seconds>& gaps,
                                 const BootstrapOptions& options) {
  return percentile_bootstrap(gaps, options, [](const std::vector<Seconds>& xs) {
    return fit_weibull_mle(xs).shape;
  });
}

}  // namespace shiraz::reliability
