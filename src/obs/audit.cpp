#include "obs/audit.h"

#include <cmath>
#include <sstream>

namespace shiraz::obs {

namespace {

[[noreturn]] void fail(const std::string& quantity, double got, double want) {
  std::ostringstream os;
  os << "event stream diverges from reported result: " << quantity
     << " = " << got << " from events, " << want << " reported";
  throw AuditError(os.str());
}

[[noreturn]] void fail_count(const std::string& quantity, std::size_t got,
                             std::size_t want) {
  std::ostringstream os;
  os << "event stream diverges from reported result: " << quantity << " = "
     << got << " from events, " << want << " reported";
  throw AuditError(os.str());
}

}  // namespace

InvariantAuditor::InvariantAuditor(double tolerance_seconds)
    : tolerance_(tolerance_seconds) {
  SHIRAZ_REQUIRE(tolerance_seconds >= 0.0, "tolerance must be non-negative");
}

InvariantAuditor::AppTotals& InvariantAuditor::app(std::int32_t index) {
  SHIRAZ_REQUIRE(index >= 0, "event kind requires an application index");
  const auto i = static_cast<std::size_t>(index);
  if (i >= apps_.size()) apps_.resize(i + 1);
  return apps_[i];
}

void InvariantAuditor::on_event(const Event& e) {
  ++events_seen_;
  switch (e.kind) {
    case EventKind::kFailure:
      ++failures_;
      if (e.app != kNoApp) ++app(e.app).failures_hit;
      break;
    case EventKind::kRestart:
      app(e.app).restart += e.duration;
      break;
    case EventKind::kCheckpointBegin:
      ++checkpoint_begins_;
      break;
    case EventKind::kCheckpointCommit: {
      AppTotals& a = app(e.app);
      a.useful += e.value;
      a.io += e.duration;
      ++a.checkpoints;
      break;
    }
    case EventKind::kSegmentWiped:
      app(e.app).lost += e.duration;
      break;
    case EventKind::kProactiveCheckpoint: {
      AppTotals& a = app(e.app);
      a.useful += e.value;
      a.io += e.duration;
      ++a.proactive_checkpoints;
      break;
    }
    case EventKind::kAppSwitch:
      ++switches_;
      app(e.app).restart += e.duration;
      break;
    case EventKind::kAlarmDelivered:
      ++alarms_delivered_;
      break;
    case EventKind::kAlarmExpired:
      break;
    case EventKind::kHorizonTruncated:
      truncated_ += e.duration;
      break;
  }
}

void InvariantAuditor::verify(const ExpectedTotals& expected) const {
  SHIRAZ_REQUIRE(expected.wall > 0.0, "expected totals need a positive wall");
  // The stream may legitimately never mention a trailing app that saw no
  // events, so only require that it names no app beyond the layout.
  if (apps_.size() > expected.apps.size()) {
    fail_count("application count", apps_.size(), expected.apps.size());
  }

  const auto near = [&](double a, double b) {
    return std::abs(a - b) <= tolerance_;
  };

  double busy = 0.0;
  std::size_t proactive_total = 0;
  for (std::size_t i = 0; i < expected.apps.size(); ++i) {
    const ExpectedTotals::App& want = expected.apps[i];
    const AppTotals got = i < apps_.size() ? apps_[i] : AppTotals{};
    const std::string tag = "app " + std::to_string(i) + " ";
    if (!near(got.useful, want.useful)) fail(tag + "useful", got.useful, want.useful);
    if (!near(got.io, want.io)) fail(tag + "io", got.io, want.io);
    if (!near(got.lost, want.lost)) fail(tag + "lost", got.lost, want.lost);
    if (!near(got.restart, want.restart)) {
      fail(tag + "restart", got.restart, want.restart);
    }
    if (got.checkpoints != want.checkpoints) {
      fail_count(tag + "checkpoints", got.checkpoints, want.checkpoints);
    }
    if (got.proactive_checkpoints != want.proactive_checkpoints) {
      fail_count(tag + "proactive checkpoints", got.proactive_checkpoints,
                 want.proactive_checkpoints);
    }
    if (got.failures_hit != want.failures_hit) {
      fail_count(tag + "failures hit", got.failures_hit, want.failures_hit);
    }
    busy += want.useful + want.io + want.lost + want.restart;
    proactive_total += got.proactive_checkpoints;
  }

  if (failures_ != expected.failures) {
    fail_count("failures", failures_, expected.failures);
  }
  if (switches_ != expected.switches) {
    fail_count("switches", switches_, expected.switches);
  }
  if (alarms_delivered_ != expected.alarms) {
    fail_count("alarms delivered", alarms_delivered_, expected.alarms);
  }
  if (proactive_total != expected.proactive_checkpoints) {
    fail_count("proactive checkpoints (total)", proactive_total,
               expected.proactive_checkpoints);
  }
  if (!near(truncated_, expected.truncated)) {
    fail("truncated", truncated_, expected.truncated);
  }

  // Every scheduled commit was preceded by exactly one write start; wiped
  // writes leave extra begins, so begins can only exceed commits.
  std::size_t commits = 0;
  for (const AppTotals& a : apps_) commits += a.checkpoints;
  if (checkpoint_begins_ < commits) {
    fail_count("checkpoint begins", checkpoint_begins_, commits);
  }

  // The reported decomposition must tile the horizon: busy + idle + truncated
  // == wall — the accounted() invariant, recomputed from first principles —
  // and the event-derived busy time implies the same idle the run reported.
  const double accounted = busy + expected.idle + expected.truncated;
  if (std::abs(accounted - expected.wall) > tolerance_) {
    fail("accounted horizon", accounted, expected.wall);
  }
  double busy_events = 0.0;
  for (const AppTotals& a : apps_) {
    busy_events += a.useful + a.io + a.lost + a.restart;
  }
  const double idle_events = expected.wall - busy_events - truncated_;
  if (std::abs(idle_events - expected.idle) > tolerance_) {
    fail("idle", idle_events, expected.idle);
  }
}

void InvariantAuditor::clear() {
  apps_.clear();
  truncated_ = 0.0;
  failures_ = switches_ = alarms_delivered_ = checkpoint_begins_ = 0;
  events_seen_ = 0;
}

}  // namespace shiraz::obs
