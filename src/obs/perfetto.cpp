#include "obs/perfetto.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

#include "common/error.h"
#include "common/json.h"

namespace shiraz::obs {

namespace {

constexpr double kMicrosPerSecond = 1e6;

std::string app_label(const std::vector<std::string>& names, std::int32_t app) {
  const auto i = static_cast<std::size_t>(app);
  if (i < names.size()) return names[i];
  return "app " + std::to_string(app);
}

/// Opens one traceEvents entry with the fields every event shares. pid is
/// rep + 1, tid 0 is the per-rep failure/alarm instant track and tid app + 1
/// the application track. Caller adds event-specific fields and closes.
void open_entry(JsonWriter& w, const char* name, const char* ph,
                std::uint32_t rep, std::int32_t tid, double ts_us) {
  w.begin_object();
  w.kv("name", name);
  w.kv("ph", ph);
  w.kv("pid", static_cast<std::int64_t>(rep) + 1);
  w.kv("tid", static_cast<std::int64_t>(tid));
  w.kv("ts", ts_us);
}

void span(JsonWriter& w, const char* name, const Event& e, double start,
          double dur) {
  open_entry(w, name, "X", e.rep, e.app + 1, start * kMicrosPerSecond);
  w.kv("dur", dur * kMicrosPerSecond);
  w.end_object();
}

void instant(JsonWriter& w, const char* name, const Event& e, std::int32_t tid) {
  open_entry(w, name, "i", e.rep, tid, e.time * kMicrosPerSecond);
  w.kv("s", "t");  // thread-scoped instant
  w.end_object();
}

void metadata(JsonWriter& w, const char* kind, std::int64_t pid,
              std::int64_t tid, const std::string& label) {
  w.begin_object();
  w.kv("name", kind);
  w.kv("ph", "M");
  w.kv("pid", pid);
  if (tid >= 0) w.kv("tid", tid);
  w.key("args").begin_object().kv("name", label).end_object();
  w.end_object();
}

}  // namespace

std::string perfetto_trace_json(const std::vector<Event>& events,
                                const std::vector<std::string>& app_names) {
  // Name every (rep, track) pair that actually occurs.
  std::set<std::uint32_t> reps;
  std::set<std::pair<std::uint32_t, std::int32_t>> app_tracks;
  bool any_instants = false;
  for (const Event& e : events) {
    reps.insert(e.rep);
    if (e.app != kNoApp) app_tracks.insert({e.rep, e.app});
    if (e.kind == EventKind::kFailure || e.kind == EventKind::kAlarmDelivered ||
        e.kind == EventKind::kAlarmExpired) {
      any_instants = true;
    }
  }

  JsonWriter w(0);  // compact: traces are large and machine-consumed
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  for (const std::uint32_t rep : reps) {
    const std::int64_t pid = static_cast<std::int64_t>(rep) + 1;
    metadata(w, "process_name", pid, -1, "rep " + std::to_string(rep));
    if (any_instants) metadata(w, "thread_name", pid, 0, "failures/alarms");
  }
  for (const auto& [rep, app] : app_tracks) {
    metadata(w, "thread_name", static_cast<std::int64_t>(rep) + 1, app + 1,
             app_label(app_names, app));
  }

  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kFailure: {
        open_entry(w, "failure", "i", e.rep, 0, e.time * kMicrosPerSecond);
        w.kv("s", "p");  // process-scoped: spans all tracks of the rep
        if (e.app != kNoApp) {
          w.key("args").begin_object().kv("hit", app_label(app_names, e.app))
              .end_object();
        }
        w.end_object();
        break;
      }
      case EventKind::kRestart:
        span(w, "restart", e, e.time, e.duration);
        break;
      case EventKind::kCheckpointBegin:
        // Redundant with the commit/wipe spans; skip to keep traces lean.
        break;
      case EventKind::kCheckpointCommit:
        span(w, "compute", e, e.time - e.duration - e.value, e.value);
        span(w, "checkpoint", e, e.time - e.duration, e.duration);
        break;
      case EventKind::kSegmentWiped:
        span(w, "lost", e, e.time, e.duration);
        break;
      case EventKind::kProactiveCheckpoint:
        span(w, "compute", e, e.time - e.duration - e.value, e.value);
        span(w, "proactive checkpoint", e, e.time - e.duration, e.duration);
        break;
      case EventKind::kAppSwitch:
        if (e.duration > 0.0) {
          span(w, "switch-in", e, e.time, e.duration);
        } else {
          instant(w, "switch-in", e, e.app + 1);
        }
        break;
      case EventKind::kAlarmDelivered: {
        open_entry(w, "alarm", "i", e.rep, 0, e.time * kMicrosPerSecond);
        w.kv("s", "t");
        w.key("args").begin_object().kv("lead_s", e.value).end_object();
        w.end_object();
        break;
      }
      case EventKind::kAlarmExpired:
        instant(w, "alarm (expired)", e, 0);
        break;
      case EventKind::kHorizonTruncated:
        if (e.app != kNoApp) {
          span(w, "truncated", e, e.time, e.duration);
        } else {
          instant(w, "truncated", e, 0);
        }
        break;
    }
  }

  w.end_array();
  w.end_object();
  return w.str();
}

void write_perfetto_trace(const std::string& path,
                          const std::vector<Event>& events,
                          const std::vector<std::string>& app_names) {
  const std::string doc = perfetto_trace_json(events, app_names);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw IoError("cannot open " + path + " for writing");
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const int close_err = std::fclose(f);
  if (written != doc.size() || close_err != 0) {
    throw IoError("short write to " + path);
  }
}

}  // namespace shiraz::obs
