#include "obs/event.h"

namespace shiraz::obs {

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kFailure: return "failure";
    case EventKind::kRestart: return "restart";
    case EventKind::kCheckpointBegin: return "checkpoint-begin";
    case EventKind::kCheckpointCommit: return "checkpoint-commit";
    case EventKind::kSegmentWiped: return "segment-wiped";
    case EventKind::kProactiveCheckpoint: return "proactive-checkpoint";
    case EventKind::kAppSwitch: return "app-switch";
    case EventKind::kAlarmDelivered: return "alarm-delivered";
    case EventKind::kAlarmExpired: return "alarm-expired";
    case EventKind::kHorizonTruncated: return "horizon-truncated";
  }
  return "unknown";
}

}  // namespace shiraz::obs
