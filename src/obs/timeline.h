// ASCII timeline rendering of an obs::Event stream.
//
// Renders one repetition of a traced run as fixed-width character lanes —
// one lane per application plus an event lane for failures and alarms — so a
// schedule can be eyeballed in a terminal or a test log without loading the
// Perfetto trace in a browser. `shirazctl trace` prints this next to the
// trace file it writes.
//
//   events   |        !     |                          |
//   lw       ==C==C==xr==C==C==C==C==xr==C==C==C==C==~
//   hw       .....=====C....=====C.....
//
// Legend: '=' compute, 'C' checkpoint write, 'P' proactive write, 'x' lost
// (wiped) work, 'r' restart, 's' switch-in, '~' horizon-truncated, '.' idle;
// event lane: '|' failure, '!' alarm delivered, ':' alarm expired.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "obs/event.h"

namespace shiraz::obs {

struct TimelineOptions {
  /// Number of character cells the horizon maps onto.
  std::size_t width = 96;
  /// Horizon (seconds). Events past it are clamped into the last cell.
  Seconds wall = 0.0;
  /// Lane labels; apps beyond the list are labelled "app N".
  std::vector<std::string> app_names;
  /// Repetition to render — campaign streams interleave many.
  std::uint32_t rep = 0;
  /// Append the legend and a time-scale line after the lanes.
  bool legend = true;
};

/// Renders the events of `opts.rep` as one string (trailing newline
/// included). Requires opts.wall > 0 and opts.width >= 8.
std::string render_timeline(const std::vector<Event>& events,
                            const TimelineOptions& opts);

}  // namespace shiraz::obs
