// Fleet-wide metrics registry: typed counters, gauges, and fixed-bin
// histograms with the same purity contract as obs::EventSink.
//
// Arming a MetricsRegistry is a pure observation: no instrumented component
// ever touches an RNG or changes a control-flow decision because metrics are
// on, so every bench and test output stays bit-identical with the registry
// armed — for every --jobs value (regression-tested in
// tests/obs/metrics_campaign_test.cpp and gated by
// bench/micro_metrics_overhead --check).
//
// Concurrency model. Counters and histograms are sharded: writers hit a
// per-thread cache-line-padded atomic shard with a relaxed add, and readers
// sum the shards. Unsigned sums are commutative, so a counter's value is
// exact and independent of thread interleaving; the sim engine additionally
// buffers its per-repetition increments and applies them in repetition order
// on the campaign thread (mirroring the event-stream merge), so even the
// order of registry mutations is worker-count-invariant there. Histogram
// *bucket counts* carry the same exactness guarantee; the floating-point
// `sum` is exact in the values it accumulates but its rounding may depend on
// which shard each racing writer landed on — deterministic consumers compare
// counts, not sums.
//
// Exposition. snapshot() returns a name-sorted value copy; metrics_json
// renders the shiraz-metrics-v1 document (DESIGN.md §11) and
// prometheus_render the Prometheus text format, both deterministic functions
// of the snapshot. Metric names are validated against the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*) at registration, so every registered metric is
// exposable.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace shiraz {
class JsonWriter;
}  // namespace shiraz

namespace shiraz::obs {

/// Schema identity of the JSON exposition, embedded in every snapshot
/// document (the serve `metrics` op, the extended `stats` op).
inline constexpr const char* kMetricsSchema = "shiraz-metrics-v1";

/// Writer shards per metric. Small on purpose: contention only matters for
/// the handful of hot counters, and value() walks every shard.
inline constexpr std::size_t kMetricShards = 8;

/// Index of the calling thread's shard (stable per thread, round-robin
/// assigned on first use).
std::size_t metric_shard_index() noexcept;

/// Monotonically increasing event count. Thread-safe; add() is a relaxed
/// atomic increment on the caller's shard, value() the exact sum.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[metric_shard_index()].count.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.count.load(std::memory_order_relaxed);
    return total;
  }
  /// Zeroes every shard (cache clear(), test isolation). Not atomic with
  /// respect to racing add()s — quiesce writers first.
  void reset() noexcept {
    for (Shard& s : shards_) s.count.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Last-write-wins instantaneous value (entries resident, bytes cached,
/// connections open). set() stores; add() is a CAS loop so concurrent deltas
/// never lose updates.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double dv) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + dv,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bin distribution with Prometheus `le` semantics: bucket i counts
/// observations v <= edges[i] that exceeded every earlier edge; the final
/// implicit bucket (+Inf) catches v > edges.back(). Bucket counts are exact
/// under any interleaving (sharded u64, see file comment); `sum` is the
/// floating-point total of everything observed.
class Histogram {
 public:
  /// `upper_edges` must be non-empty, finite, and strictly increasing.
  explicit Histogram(std::vector<double> upper_edges);

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  const std::vector<double>& edges() const noexcept { return edges_; }
  /// Per-bucket (non-cumulative) counts; size edges().size() + 1, the last
  /// entry being the +Inf overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> edges_;
  std::array<Shard, kMetricShards> shards_;
};

/// One metric's state, copied out of the registry. `count`/`value` double as
/// (counter value, unused), (unused, gauge value), and (total count, sum) for
/// histograms, which additionally carry their edges and per-bucket counts.
struct MetricsSnapshot {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::uint64_t count = 0;
    double value = 0.0;
    std::vector<double> edges;
    std::vector<std::uint64_t> buckets;
  };

  std::vector<Entry> entries;  ///< sorted by name
};

/// Get-or-create registry of named metrics. Returned references stay valid
/// for the registry's lifetime (map nodes are stable). Re-registering a name
/// with a different type — or a histogram with different edges — throws
/// InvalidArgument; names must match the Prometheus grammar.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  Histogram& histogram(std::string_view name, std::vector<double> upper_edges,
                       std::string_view help = "");

  /// Name-sorted value copy of every registered metric — the input to both
  /// renderers. Deterministic given quiesced writers.
  MetricsSnapshot snapshot() const;

  /// Zeroes every metric (keeps registrations). Quiesce writers first.
  void reset();

  std::size_t size() const;

 private:
  struct Slot {
    std::string help;
    MetricsSnapshot::Kind kind = MetricsSnapshot::Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Slot& slot(std::string_view name, std::string_view help,
             MetricsSnapshot::Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Slot, std::less<>> slots_;
};

/// True iff `name` matches the Prometheus metric-name grammar.
bool valid_metric_name(std::string_view name) noexcept;

/// Writes the shiraz-metrics-v1 object — {"schema":...,"metrics":[...]} — as
/// the writer's next value (top level, or after key()). This is how the
/// serve layer embeds a snapshot inside a response line.
void metrics_json(JsonWriter& w, const MetricsSnapshot& snap);

/// The standalone compact shiraz-metrics-v1 document.
std::string metrics_json(const MetricsSnapshot& snap);

/// Prometheus text exposition format: # HELP / # TYPE preambles, counters
/// with the _total convention left to the caller's naming, histograms as
/// cumulative _bucket{le="..."} series plus _sum and _count.
std::string prometheus_render(const MetricsSnapshot& snap);

}  // namespace shiraz::obs
