// Invariant auditing: replay an event stream against the run's reported
// aggregates.
//
// The simulator's SimResult is a sum over thousands of per-event
// contributions; the InvariantAuditor recomputes every headline aggregate
// (useful/io/lost/restart per app, idle, truncation, failure / checkpoint /
// switch / alarm counts, accounted() == wall) independently from the event
// stream and throws AuditError on any divergence. Arming it as the engine's
// sink turns any traced test into an accounting audit: a bug that, say,
// double-charges a wiped segment now fails loudly instead of nudging a mean.
//
// The auditor expects the events of ONE run (rep ids are ignored); call
// clear() between runs when looping repetitions. The SimResult-facing
// convenience wrapper lives in obs/audit_sim.h so this module stays below
// sim in the dependency order.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.h"
#include "obs/event.h"

namespace shiraz::obs {

/// The event stream disagrees with the reported aggregates (or is internally
/// inconsistent). The message names the first diverging quantity.
class AuditError : public Error {
 public:
  explicit AuditError(const std::string& what) : Error(what) {}
};

/// The aggregates a run reported, in plain values so the auditor does not
/// depend on sim::SimResult (see obs/audit_sim.h for the bridge).
struct ExpectedTotals {
  struct App {
    double useful = 0.0;
    double io = 0.0;
    double lost = 0.0;
    double restart = 0.0;
    std::size_t checkpoints = 0;
    std::size_t proactive_checkpoints = 0;
    std::size_t failures_hit = 0;
  };
  std::vector<App> apps;
  double wall = 0.0;
  double idle = 0.0;
  double truncated = 0.0;
  std::size_t failures = 0;
  std::size_t switches = 0;
  std::size_t alarms = 0;
  std::size_t proactive_checkpoints = 0;
};

class InvariantAuditor final : public EventSink {
 public:
  /// `tolerance_seconds` bounds the permitted drift between event-derived and
  /// reported time sums. The engine accumulates both in the same order, so
  /// agreement is typically exact; the default absorbs only representation
  /// noise, never a modeling bug.
  explicit InvariantAuditor(double tolerance_seconds = 1e-6);

  void on_event(const Event& event) override;

  /// Throws AuditError unless every aggregate recomputed from the stream
  /// matches `expected` (time sums within the tolerance, counts exactly) and
  /// the expected decomposition itself satisfies accounted() == wall.
  void verify(const ExpectedTotals& expected) const;

  /// Forgets the recorded stream so the auditor can audit the next run.
  void clear();

  std::size_t events_seen() const { return events_seen_; }

 private:
  struct AppTotals {
    double useful = 0.0;
    double io = 0.0;
    double lost = 0.0;
    double restart = 0.0;
    std::size_t checkpoints = 0;
    std::size_t proactive_checkpoints = 0;
    std::size_t failures_hit = 0;
  };

  AppTotals& app(std::int32_t index);

  double tolerance_;
  std::vector<AppTotals> apps_;
  double truncated_ = 0.0;
  std::size_t failures_ = 0;
  std::size_t switches_ = 0;
  std::size_t alarms_delivered_ = 0;
  std::size_t checkpoint_begins_ = 0;
  std::size_t events_seen_ = 0;
};

}  // namespace shiraz::obs
