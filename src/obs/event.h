// Structured event tracing for the discrete-event simulator.
//
// The engine optionally narrates every run as a typed obs::Event stream —
// failures, checkpoint begin/commit/wipe, proactive writes, app switches,
// restart/switch downtime, alarm delivery/expiry, and horizon truncation —
// through an EventSink armed via sim::EngineConfig::sink (single runs) or
// sim::CampaignOptions::sink (campaigns). Sinks are pure observers: they
// never touch the RNG, so an armed sink is bit-identical to an untraced run
// (regression-tested in tests/obs/event_trace_test.cpp), and a null sink
// costs one pointer compare per would-be event. Parallel campaigns buffer
// events per repetition and merge them in repetition order, so the stream is
// identical for every `--jobs` value.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace shiraz::obs {

/// `Event::app` when no application is involved (failure while idle, alarm
/// expiring with nothing running).
inline constexpr std::int32_t kNoApp = -1;

enum class EventKind : std::uint8_t {
  /// A failure struck at `time`; `app` is the application it hit (kNoApp if
  /// the machine was idle).
  kFailure,
  /// Post-failure restart downtime charged to `app`: span [time, time+duration].
  kRestart,
  /// App `app` started writing a scheduled checkpoint at `time`.
  kCheckpointBegin,
  /// App `app` committed a scheduled checkpoint at `time`; the write span is
  /// [time-duration, time] and `value` is the compute it sealed (seconds).
  kCheckpointCommit,
  /// A failure wiped app `app`'s in-flight segment: span [time, time+duration]
  /// of compute (plus any partial write) was lost.
  kSegmentWiped,
  /// App `app` committed an alarm-triggered proactive checkpoint at `time`;
  /// write span [time-duration, time], `value` = compute sealed (seconds).
  kProactiveCheckpoint,
  /// Within-gap hand-off to `app` at `time`; `duration` is the switch
  /// downtime charged to the incoming app (0 under the paper's free-switch
  /// assumption) and `value` holds the outgoing app index.
  kAppSwitch,
  /// A failure alarm was delivered to the policy while `app` ran; `value` is
  /// the claimed time-to-failure (lead, seconds).
  kAlarmDelivered,
  /// An alarm fired while nothing ran and was dropped; `value` is its lead.
  kAlarmExpired,
  /// The horizon cut app `app`'s in-flight segment: span [time, time+duration]
  /// ended neither checkpointed nor failure-wiped.
  kHorizonTruncated,
};

/// Human-readable kind name (e.g. "failure", "checkpoint-commit").
const char* kind_name(EventKind kind);

/// One simulator event. Spans start at `time` or end there — see the per-kind
/// comments; instants have duration 0. `value` is kind-specific payload.
struct Event {
  EventKind kind{};
  Seconds time = 0.0;
  Seconds duration = 0.0;
  std::int32_t app = kNoApp;
  /// Campaign repetition that produced the event (0 for single runs); stamped
  /// by the campaign merge, so streams are comparable across worker counts.
  std::uint32_t rep = 0;
  Seconds value = 0.0;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Receives the event stream. Implementations must not access any RNG (the
/// engine's determinism guarantee depends on it) and are called from the
/// thread that runs the repetition only when armed per-run; campaign merges
/// call from the campaign thread in repetition order.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const Event& event) = 0;
};

/// In-memory sink: records the stream for later rendering or auditing.
class EventRecorder final : public EventSink {
 public:
  void on_event(const Event& event) override { events_.push_back(event); }

  const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

}  // namespace shiraz::obs
