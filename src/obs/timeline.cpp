#include "obs/timeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace shiraz::obs {

namespace {

/// Later paints win only when their glyph outranks what is already in the
/// cell, so a one-cell checkpoint write is not erased by the surrounding
/// compute span and losses stay visible over everything else.
int rank(char glyph) {
  switch (glyph) {
    case ' ': return -1;
    case '.': return 0;
    case '=': return 1;
    case '~': return 2;
    case 's': return 3;
    case 'C': return 4;
    case 'P': return 5;
    case 'r': return 6;
    case 'x': return 7;
    default: return 8;
  }
}

class Lane {
 public:
  Lane(std::size_t width, Seconds wall, char fill)
      : cells_(width, fill), wall_(wall) {}

  void paint(Seconds from, Seconds to, char glyph) {
    if (to < from) return;
    std::size_t lo = cell(from);
    std::size_t hi = cell(to);
    for (std::size_t i = lo; i <= hi; ++i) {
      if (rank(glyph) > rank(cells_[i])) cells_[i] = glyph;
    }
  }

  void mark(Seconds at, char glyph) { paint(at, at, glyph); }

  const std::string& str() const { return cells_; }

 private:
  std::size_t cell(Seconds t) const {
    const double frac = std::clamp(t / wall_, 0.0, 1.0);
    const auto i = static_cast<std::size_t>(frac * static_cast<double>(cells_.size()));
    return std::min(i, cells_.size() - 1);
  }

  std::string cells_;
  Seconds wall_;
};

std::string label(const TimelineOptions& opts, std::size_t app) {
  if (app < opts.app_names.size()) return opts.app_names[app];
  return "app " + std::to_string(app);
}

}  // namespace

std::string render_timeline(const std::vector<Event>& events,
                            const TimelineOptions& opts) {
  SHIRAZ_REQUIRE(opts.wall > 0.0, "timeline needs a positive wall");
  SHIRAZ_REQUIRE(opts.width >= 8, "timeline needs at least 8 columns");

  std::size_t n_apps = 0;
  for (const Event& e : events) {
    if (e.rep == opts.rep && e.app != kNoApp) {
      n_apps = std::max(n_apps, static_cast<std::size_t>(e.app) + 1);
    }
  }

  Lane event_lane(opts.width, opts.wall, ' ');
  std::vector<Lane> lanes(n_apps, Lane(opts.width, opts.wall, '.'));

  for (const Event& e : events) {
    if (e.rep != opts.rep) continue;
    switch (e.kind) {
      case EventKind::kFailure:
        event_lane.mark(e.time, '|');
        break;
      case EventKind::kRestart:
        lanes[static_cast<std::size_t>(e.app)].paint(e.time, e.time + e.duration, 'r');
        break;
      case EventKind::kCheckpointBegin:
        break;
      case EventKind::kCheckpointCommit: {
        Lane& l = lanes[static_cast<std::size_t>(e.app)];
        l.paint(e.time - e.duration - e.value, e.time - e.duration, '=');
        l.paint(e.time - e.duration, e.time, 'C');
        break;
      }
      case EventKind::kSegmentWiped:
        lanes[static_cast<std::size_t>(e.app)].paint(e.time, e.time + e.duration, 'x');
        break;
      case EventKind::kProactiveCheckpoint: {
        Lane& l = lanes[static_cast<std::size_t>(e.app)];
        l.paint(e.time - e.duration - e.value, e.time - e.duration, '=');
        l.paint(e.time - e.duration, e.time, 'P');
        break;
      }
      case EventKind::kAppSwitch:
        if (e.duration > 0.0) {
          lanes[static_cast<std::size_t>(e.app)].paint(e.time, e.time + e.duration, 's');
        } else {
          lanes[static_cast<std::size_t>(e.app)].mark(e.time, 's');
        }
        break;
      case EventKind::kAlarmDelivered:
        event_lane.mark(e.time, '!');
        break;
      case EventKind::kAlarmExpired:
        event_lane.mark(e.time, ':');
        break;
      case EventKind::kHorizonTruncated:
        if (e.app != kNoApp) {
          lanes[static_cast<std::size_t>(e.app)].paint(e.time, e.time + e.duration, '~');
        }
        break;
    }
  }

  std::size_t name_width = 6;  // "events"
  for (std::size_t i = 0; i < n_apps; ++i) {
    name_width = std::max(name_width, label(opts, i).size());
  }

  std::ostringstream os;
  const auto row = [&](const std::string& name, const std::string& cells) {
    os << name << std::string(name_width - name.size() + 2, ' ') << cells
       << '\n';
  };
  row("events", event_lane.str());
  for (std::size_t i = 0; i < n_apps; ++i) row(label(opts, i), lanes[i].str());

  if (opts.legend) {
    char right[32];
    std::snprintf(right, sizeof right, "%gh", as_hours(opts.wall));
    const std::size_t rlen = std::string(right).size();
    std::ostringstream scale;
    scale << "0h";
    const std::size_t pad = opts.width > 2 + rlen ? opts.width - 2 - rlen : 1;
    scale << std::string(pad, ' ') << right;
    row("", scale.str());
    os << "legend: = compute  C checkpoint  P proactive  x lost  r restart"
          "  s switch  ~ truncated  . idle  | failure  ! alarm  : expired\n";
  }
  return os.str();
}

}  // namespace shiraz::obs
