#include "obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/json.h"

namespace shiraz::obs {

namespace {

/// Shortest round-trip decimal form, matching JsonWriter's double rendering
/// so the two expositions agree on every value.
std::string format_double(double v) {
  if (!std::isfinite(v)) {
    if (std::isnan(v)) return "NaN";
    return v > 0 ? "+Inf" : "-Inf";
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  SHIRAZ_REQUIRE(ec == std::errc(), "double formatting failed");
  return std::string(buf, ptr);
}

const char* kind_label(MetricsSnapshot::Kind kind) {
  switch (kind) {
    case MetricsSnapshot::Kind::kCounter: return "counter";
    case MetricsSnapshot::Kind::kGauge: return "gauge";
    case MetricsSnapshot::Kind::kHistogram: return "histogram";
  }
  throw InvalidArgument("unhandled metric kind");
}

}  // namespace

std::size_t metric_shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

bool valid_metric_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  return std::all_of(name.begin() + 1, name.end(), [&](char c) {
    return head(c) || (c >= '0' && c <= '9');
  });
}

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)) {
  SHIRAZ_REQUIRE(!edges_.empty(), "histogram needs at least one bucket edge");
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    SHIRAZ_REQUIRE(std::isfinite(edges_[i]), "histogram edges must be finite");
    SHIRAZ_REQUIRE(i == 0 || edges_[i - 1] < edges_[i],
                   "histogram edges must be strictly increasing");
  }
  for (Shard& s : shards_) {
    s.buckets = std::vector<std::atomic<std::uint64_t>>(edges_.size() + 1);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double v) noexcept {
  // First edge >= v is the bucket (le semantics); past the last edge lands
  // in the +Inf overflow slot.
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  const std::size_t bin = static_cast<std::size_t>(it - edges_.begin());
  Shard& s = shards_[metric_shard_index()];
  s.buckets[bin].fetch_add(1, std::memory_order_relaxed);
  double cur = s.sum.load(std::memory_order_relaxed);
  while (!s.sum.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    for (const auto& b : s.buckets) total += b.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const noexcept {
  double total = 0.0;
  for (const Shard& s : shards_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(edges_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      out[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Histogram::reset() noexcept {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry::Slot& MetricsRegistry::slot(std::string_view name,
                                             std::string_view help,
                                             MetricsSnapshot::Kind kind) {
  SHIRAZ_REQUIRE(valid_metric_name(name),
                 "invalid metric name '" + std::string(name) +
                     "' (expected [a-zA-Z_:][a-zA-Z0-9_:]*)");
  const auto it = slots_.find(name);
  if (it == slots_.end()) {
    Slot& s = slots_[std::string(name)];
    s.help = std::string(help);
    s.kind = kind;
    return s;
  }
  SHIRAZ_REQUIRE(it->second.kind == kind,
                 "metric '" + std::string(name) +
                     "' already registered with a different type");
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slot(name, help, MetricsSnapshot::Kind::kCounter);
  if (s.counter == nullptr) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slot(name, help, MetricsSnapshot::Kind::kGauge);
  if (s.gauge == nullptr) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_edges,
                                      std::string_view help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slot(name, help, MetricsSnapshot::Kind::kHistogram);
  if (s.histogram == nullptr) {
    s.histogram = std::make_unique<Histogram>(std::move(upper_edges));
  } else {
    SHIRAZ_REQUIRE(s.histogram->edges() == upper_edges,
                   "histogram '" + std::string(name) +
                       "' already registered with different edges");
  }
  return *s.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.entries.reserve(slots_.size());
  for (const auto& [name, s] : slots_) {  // std::map: already name-sorted
    MetricsSnapshot::Entry e;
    e.name = name;
    e.help = s.help;
    e.kind = s.kind;
    switch (s.kind) {
      case MetricsSnapshot::Kind::kCounter:
        e.count = s.counter->value();
        break;
      case MetricsSnapshot::Kind::kGauge:
        e.value = s.gauge->value();
        break;
      case MetricsSnapshot::Kind::kHistogram:
        e.count = s.histogram->count();
        e.value = s.histogram->sum();
        e.edges = s.histogram->edges();
        e.buckets = s.histogram->bucket_counts();
        break;
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, s] : slots_) {
    (void)name;
    if (s.counter != nullptr) s.counter->reset();
    if (s.gauge != nullptr) s.gauge->reset();
    if (s.histogram != nullptr) s.histogram->reset();
  }
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

void metrics_json(JsonWriter& w, const MetricsSnapshot& snap) {
  w.begin_object();
  w.kv("schema", kMetricsSchema);
  w.key("metrics").begin_array();
  for (const MetricsSnapshot::Entry& e : snap.entries) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("type", kind_label(e.kind));
    if (!e.help.empty()) w.kv("help", e.help);
    switch (e.kind) {
      case MetricsSnapshot::Kind::kCounter:
        w.kv("value", e.count);
        break;
      case MetricsSnapshot::Kind::kGauge:
        w.kv("value", e.value);
        break;
      case MetricsSnapshot::Kind::kHistogram:
        w.kv("count", e.count);
        w.kv("sum", e.value);
        w.key("edges").begin_array();
        for (const double edge : e.edges) w.value(edge);
        w.end_array();
        w.key("buckets").begin_array();
        for (const std::uint64_t b : e.buckets) w.value(b);
        w.end_array();
        break;
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string metrics_json(const MetricsSnapshot& snap) {
  JsonWriter w(0);
  metrics_json(w, snap);
  return w.str();
}

std::string prometheus_render(const MetricsSnapshot& snap) {
  std::string out;
  for (const MetricsSnapshot::Entry& e : snap.entries) {
    if (!e.help.empty()) out += "# HELP " + e.name + " " + e.help + "\n";
    out += "# TYPE " + e.name + " " + kind_label(e.kind) + "\n";
    switch (e.kind) {
      case MetricsSnapshot::Kind::kCounter:
        out += e.name + " " + std::to_string(e.count) + "\n";
        break;
      case MetricsSnapshot::Kind::kGauge:
        out += e.name + " " + format_double(e.value) + "\n";
        break;
      case MetricsSnapshot::Kind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < e.edges.size(); ++i) {
          cumulative += e.buckets[i];
          out += e.name + "_bucket{le=\"" + format_double(e.edges[i]) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += e.buckets.back();
        out += e.name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
               "\n";
        out += e.name + "_sum " + format_double(e.value) + "\n";
        out += e.name + "_count " + std::to_string(e.count) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace shiraz::obs
