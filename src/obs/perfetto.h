// Chrome/Perfetto trace_event JSON export of an obs::Event stream.
//
// The emitted document follows the Trace Event Format's JSON Object Format
// ({"traceEvents": [...]}) using only complete ("X"), instant ("i") and
// metadata ("M") events, which both chrome://tracing and ui.perfetto.dev
// load. Each campaign repetition renders as one process (pid = rep + 1);
// within it, every application gets its own named track (tid = app + 1)
// carrying compute / checkpoint / lost / restart spans, and track 0 carries
// the failure and alarm instants. Timestamps are simulated microseconds.
#pragma once

#include <string>
#include <vector>

#include "obs/event.h"

namespace shiraz::obs {

/// Renders `events` as a complete trace_event JSON document. `app_names`
/// labels the per-app tracks (apps beyond the list are named "app N").
std::string perfetto_trace_json(const std::vector<Event>& events,
                                const std::vector<std::string>& app_names = {});

/// perfetto_trace_json + write to `path`; throws IoError when the file
/// cannot be written.
void write_perfetto_trace(const std::string& path,
                          const std::vector<Event>& events,
                          const std::vector<std::string>& app_names = {});

/// Sink form: record a run (or a merged campaign stream), then render() or
/// write() the trace.
class PerfettoWriter final : public EventSink {
 public:
  explicit PerfettoWriter(std::vector<std::string> app_names = {})
      : app_names_(std::move(app_names)) {}

  void on_event(const Event& event) override { events_.push_back(event); }

  std::string render() const { return perfetto_trace_json(events_, app_names_); }
  void write(const std::string& path) const {
    write_perfetto_trace(path, events_, app_names_);
  }

  const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
  std::vector<std::string> app_names_;
};

}  // namespace shiraz::obs
