// Bridge between the InvariantAuditor and sim::SimResult.
//
// Header-only so shiraz_obs stays below shiraz_sim in the library dependency
// order (the engine emits obs events; obs must not link the engine). Any
// translation unit using these helpers links shiraz_sim anyway — tests,
// benches, and tools all do.
#pragma once

#include "obs/audit.h"
#include "sim/metrics.h"

namespace shiraz::obs {

/// Flattens a SimResult into the auditor's expected-value form.
inline ExpectedTotals expected_totals(const sim::SimResult& result) {
  ExpectedTotals e;
  e.apps.reserve(result.apps.size());
  for (const sim::AppMetrics& a : result.apps) {
    ExpectedTotals::App app;
    app.useful = a.useful;
    app.io = a.io;
    app.lost = a.lost;
    app.restart = a.restart;
    app.checkpoints = a.checkpoints;
    app.proactive_checkpoints = a.proactive_checkpoints;
    app.failures_hit = a.failures_hit;
    e.apps.push_back(app);
  }
  e.wall = result.wall;
  e.idle = result.idle;
  e.truncated = result.truncated;
  e.failures = result.failures;
  e.switches = result.switches;
  e.alarms = result.alarms;
  e.proactive_checkpoints = result.proactive_checkpoints;
  return e;
}

/// Audits `auditor`'s recorded stream against `result`; throws AuditError on
/// any divergence.
inline void verify_against(const InvariantAuditor& auditor,
                           const sim::SimResult& result) {
  auditor.verify(expected_totals(result));
}

}  // namespace shiraz::obs
