#include "adaptive/adaptive_scheduler.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace shiraz::adaptive {

AdaptiveShirazScheduler::AdaptiveShirazScheduler(core::AppSpec light,
                                                 core::AppSpec heavy,
                                                 const AdaptiveConfig& config)
    : light_(std::move(light)), heavy_(std::move(heavy)), config_(config),
      estimator_(config.estimator) {
  SHIRAZ_REQUIRE(light_.delta > 0.0 && heavy_.delta > 0.0,
                 "checkpoint costs must be positive");
  SHIRAZ_REQUIRE(config.resolve_threshold >= 0.0, "threshold must be non-negative");
  reset();
}

void AdaptiveShirazScheduler::reset() const {
  estimator_.reset();
  solved_estimate_ = FailureEstimate{};
  resolves_ = 0;
  k_ = 0;
  maybe_resolve();  // solve once against the prior
}

void AdaptiveShirazScheduler::maybe_resolve() const {
  const FailureEstimate est = estimator_.estimate();
  if (resolves_ > 0) {
    const double drift = std::fabs(est.mtbf - solved_estimate_.mtbf) /
                         solved_estimate_.mtbf;
    const bool warmed_up_since =
        solved_estimate_.samples == 0 && est.samples > 0;
    if (drift < config_.resolve_threshold && !warmed_up_since) return;
  }
  core::ModelConfig mcfg;
  mcfg.mtbf = est.mtbf;
  mcfg.weibull_shape = est.shape;
  mcfg.epsilon = config_.epsilon;
  mcfg.t_total = config_.model_horizon;
  const core::ShirazModel model(mcfg);
  core::SolverOptions opts;
  opts.keep_sweep = false;
  const core::SwitchSolution sol =
      core::solve_switch_point(model, light_, heavy_, opts);
  k_ = sol.k.value_or(0);
  solved_estimate_ = est;
  ++resolves_;
}

sim::Decision AdaptiveShirazScheduler::on_gap_start(const sim::SchedContext& ctx) const {
  SHIRAZ_REQUIRE(ctx.num_apps == 2, "adaptive scheduler drives exactly two apps");
  if (ctx.last_gap_length > 0.0) {
    estimator_.observe(ctx.last_gap_length);
    maybe_resolve();
  }
  // k == 0 means "no beneficial switch at the current estimate": fall back to
  // fair alternation at failures.
  if (k_ == 0) return sim::Decision::run(ctx.failures_so_far % 2);
  return sim::Decision::run(0);
}

sim::Decision AdaptiveShirazScheduler::on_checkpoint(const sim::SchedContext& ctx) const {
  if (k_ == 0) return sim::Decision::run(ctx.current);
  if (ctx.current == 0 &&
      (*ctx.checkpoints_this_gap)[0] >= static_cast<std::size_t>(k_)) {
    return sim::Decision::run(1);
  }
  return sim::Decision::run(ctx.current);
}

std::string AdaptiveShirazScheduler::name() const {
  std::ostringstream os;
  os << "AdaptiveShiraz(k=" << k_ << ", resolves=" << resolves_ << ")";
  return os.str();
}

}  // namespace shiraz::adaptive
