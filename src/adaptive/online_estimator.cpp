#include "adaptive/online_estimator.h"

#include <vector>

#include "common/error.h"

namespace shiraz::adaptive {

OnlineWeibullEstimator::OnlineWeibullEstimator(const EstimatorConfig& config)
    : config_(config) {
  SHIRAZ_REQUIRE(config.window >= 2, "window must hold at least two gaps");
  SHIRAZ_REQUIRE(config.min_samples >= 2, "need at least two samples for an MLE");
  SHIRAZ_REQUIRE(config.min_samples <= config.window,
                 "min_samples cannot exceed the window");
  SHIRAZ_REQUIRE(config.prior_mtbf > 0.0, "prior MTBF must be positive");
  SHIRAZ_REQUIRE(config.prior_shape > 0.0, "prior shape must be positive");
}

void OnlineWeibullEstimator::observe(Seconds gap) {
  SHIRAZ_REQUIRE(gap > 0.0, "gaps must be positive");
  gaps_.push_back(gap);
  if (gaps_.size() > config_.window) gaps_.pop_front();
}

FailureEstimate OnlineWeibullEstimator::estimate() const {
  FailureEstimate est;
  est.mtbf = config_.prior_mtbf;
  est.shape = config_.prior_shape;
  if (gaps_.size() < config_.min_samples) return est;

  const std::vector<Seconds> window(gaps_.begin(), gaps_.end());
  try {
    const reliability::WeibullFit fit = reliability::fit_weibull_mle(window);
    est.mtbf = fit.distribution().mean();
    est.shape = fit.shape;
    est.samples = window.size();
  } catch (const Error&) {
    // Degenerate window (e.g. identical gaps): keep the prior.
  }
  return est;
}

void OnlineWeibullEstimator::reset() { gaps_.clear(); }

}  // namespace shiraz::adaptive
