// Online estimation of the failure process (the introduction's challenge #1:
// "timely and accurate identification of time periods with varying failure
// rates").
//
// Maintains a sliding window of recent inter-failure gaps and exposes the
// current Weibull MLE (shape + MTBF). Until enough gaps arrive it falls back
// to the configured prior — the system's spec-sheet MTBF and the literature
// beta — so consumers always have a usable estimate.
#pragma once

#include <cstddef>
#include <deque>

#include "common/units.h"
#include "reliability/fitting.h"

namespace shiraz::adaptive {

struct EstimatorConfig {
  /// Number of most-recent gaps the estimate is computed from.
  std::size_t window = 64;
  /// Minimum gaps before the MLE replaces the prior.
  std::size_t min_samples = 8;
  /// Prior used before warm-up (and blended during it).
  Seconds prior_mtbf = hours(20.0);
  double prior_shape = 0.6;
};

struct FailureEstimate {
  Seconds mtbf = 0.0;
  double shape = 0.0;
  std::size_t samples = 0;  ///< gaps the estimate is based on (0 = pure prior)
};

class OnlineWeibullEstimator {
 public:
  explicit OnlineWeibullEstimator(const EstimatorConfig& config);

  /// Records one observed inter-failure gap.
  void observe(Seconds gap);

  /// Current best estimate (prior until min_samples gaps arrive).
  FailureEstimate estimate() const;

  /// Drops all observed gaps (new campaign).
  void reset();

  std::size_t observed() const { return gaps_.size(); }

 private:
  EstimatorConfig config_;
  std::deque<Seconds> gaps_;
};

}  // namespace shiraz::adaptive
