// Adaptive Shiraz: re-derives the fair switch point online as the failure
// process is learned (and as it drifts).
//
// The paper solves for k with the system's nominal MTBF/beta. On a real
// machine those numbers drift — systems age, firmware changes, workloads
// move. This scheduler wraps the Shiraz pair policy around an
// OnlineWeibullEstimator: at every failure it records the observed gap,
// refreshes the (MTBF, beta) estimate, and re-solves for k when the estimate
// has moved materially since the last solve. The paper's static Shiraz is the
// special case where the estimate never changes.
#pragma once

#include "adaptive/online_estimator.h"
#include "core/switch_solver.h"
#include "sim/scheduler.h"

namespace shiraz::adaptive {

struct AdaptiveConfig {
  EstimatorConfig estimator;
  /// Lost-work fraction and campaign length fed to the model when re-solving.
  double epsilon = 0.45;
  Seconds model_horizon = hours(1000.0);
  /// Re-solve only when the estimated MTBF moved by more than this fraction
  /// since the last solve (hysteresis; re-solving is cheap but not free).
  double resolve_threshold = 0.10;
};

/// Drop-in sim::Scheduler for a light/heavy pair (app 0 = light, app 1 =
/// heavy), usable with both the simulator engine and the prototype runtime.
class AdaptiveShirazScheduler final : public sim::Scheduler {
 public:
  AdaptiveShirazScheduler(core::AppSpec light, core::AppSpec heavy,
                          const AdaptiveConfig& config);

  void reset() const override;
  sim::Decision on_gap_start(const sim::SchedContext& ctx) const override;
  sim::Decision on_checkpoint(const sim::SchedContext& ctx) const override;
  /// Stateful (mutable estimator/k), so parallel repetitions each get a copy.
  std::unique_ptr<sim::Scheduler> clone() const override {
    return std::make_unique<AdaptiveShirazScheduler>(*this);
  }
  std::string name() const override;

  /// The switch point currently in force (0 while no beneficial switch).
  int current_k() const { return k_; }
  /// Number of times the controller re-solved for k this run.
  std::size_t resolves() const { return resolves_; }
  /// The estimate the current k was solved against.
  FailureEstimate current_estimate() const { return solved_estimate_; }

 private:
  void maybe_resolve() const;

  core::AppSpec light_;
  core::AppSpec heavy_;
  AdaptiveConfig config_;
  // Run state; mutable because the engine holds policies by const reference
  // (see sim::Scheduler::reset).
  mutable OnlineWeibullEstimator estimator_;
  mutable FailureEstimate solved_estimate_;
  mutable int k_ = 0;
  mutable std::size_t resolves_ = 0;
};

}  // namespace shiraz::adaptive
