// Scenario catalog: versioned on-disk failure-regime descriptions.
//
// A scenario is one JSON document (`shiraz-scenario-v1`) naming a failure
// regime and its parameters plus the campaign horizon and the nominal MTBF a
// scheduler would assume when configuring itself (the catalog's whole point:
// schedulers plan against the nominal renewal model while the regime throws
// correlated failures at them). The shipped corpus lives in
// testdata/scenarios/*.json; `shirazctl scenarios` lists/validates it and
// bench/exp_scenario_matrix sweeps every (scheduler x scenario) cell through
// the invariant auditor (DESIGN.md §8).
//
// Parsing is strict: unknown keys, missing keys, out-of-range values, wrong
// schema versions and duplicate ids all throw InvalidArgument — a corpus
// file either parses to exactly one well-formed regime or is rejected.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "common/units.h"
#include "reliability/regimes.h"

namespace shiraz::scenario {

/// Schema tag every scenario document must carry.
inline constexpr const char* kSchema = "shiraz-scenario-v1";

/// Renewal Weibull — the control rows of the catalog.
struct WeibullSpec {
  double shape = 0.0;
  Seconds mtbf = 0.0;
};

/// Additive-Weibull bathtub hazard (reliability::BathtubWeibull).
struct BathtubSpec {
  double infant_shape = 0.0;
  Seconds infant_scale = 0.0;
  double wear_shape = 0.0;
  Seconds wear_scale = 0.0;
};

/// The regime parameters, typed at load time. The correlated kinds reuse the
/// regime classes' own Config structs so a spec can never drift from what
/// the regime accepts.
using RegimeSpec =
    std::variant<WeibullSpec, BathtubSpec, reliability::MarkovBurstRegime::Config,
                 reliability::ClusterOutageRegime::Config,
                 std::vector<reliability::HeterogeneousPoolsRegime::Pool>,
                 reliability::DriftingWeibullRegime::Config>;

/// One catalog entry.
struct Scenario {
  std::string id;           ///< lowercase [a-z0-9-], unique within a corpus
  std::string title;        ///< one-line human label
  std::string description;  ///< what the regime models and why it is here
  std::string kind;         ///< "weibull", "markov-burst", ... (see parse())
  Seconds horizon = 0.0;    ///< campaign length the scenario is meant to run
  Seconds nominal_mtbf = 0.0;  ///< MTBF schedulers assume when planning
  RegimeSpec spec;
  std::string source_path;  ///< file it came from; empty when parsed inline

  /// Instantiates the failure regime the spec describes.
  reliability::FailureRegimePtr make_regime() const;
};

/// Parses one scenario document. Accepted kinds: "weibull", "bathtub",
/// "markov-burst", "cluster-outage", "hetero-pools", "drifting-weibull".
/// Throws InvalidArgument on any schema violation (unknown/missing keys,
/// wrong schema tag, bad id charset, out-of-range parameters).
Scenario parse(const std::string& json_text);

/// Reads and parses one scenario file, recording its path.
Scenario load(const std::string& path);

/// Loads every *.json in `dir`, sorted by id; rejects duplicate ids and an
/// empty or missing directory.
std::vector<Scenario> load_dir(const std::string& dir);

}  // namespace shiraz::scenario
