#include "scenario/scenario.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/json_parse.h"
#include "reliability/bathtub.h"
#include "reliability/weibull.h"

namespace shiraz::scenario {

namespace fs = std::filesystem;

namespace {

/// Strictness backbone: every object in a scenario document lists its legal
/// keys here, so a typo'd or stale field is a hard parse error instead of a
/// silently ignored knob.
void check_keys(const JsonValue& obj, const char* what,
                std::initializer_list<const char*> allowed) {
  SHIRAZ_REQUIRE(obj.type == JsonValue::Type::kObject,
                 std::string("scenario: ") + what + " must be a JSON object");
  for (const auto& [key, value] : obj.object) {
    (void)value;
    const bool known =
        std::any_of(allowed.begin(), allowed.end(),
                    [&key](const char* k) { return key == k; });
    SHIRAZ_REQUIRE(known, "scenario: unknown key '" + key + "' in " + what);
  }
}

double number(const JsonValue& obj, const std::string& key) {
  const JsonValue& v = obj.at(key);
  SHIRAZ_REQUIRE(v.type == JsonValue::Type::kNumber,
                 "scenario: '" + key + "' must be a number");
  return v.number;
}

double positive(const JsonValue& obj, const std::string& key) {
  const double v = number(obj, key);
  SHIRAZ_REQUIRE(v > 0.0, "scenario: '" + key + "' must be positive");
  return v;
}

Seconds hours_field(const JsonValue& obj, const std::string& key) {
  return hours(positive(obj, key));
}

std::string text(const JsonValue& obj, const std::string& key) {
  const JsonValue& v = obj.at(key);
  SHIRAZ_REQUIRE(v.type == JsonValue::Type::kString,
                 "scenario: '" + key + "' must be a string");
  SHIRAZ_REQUIRE(!v.string.empty(), "scenario: '" + key + "' must be non-empty");
  return v.string;
}

void check_id(const std::string& id) {
  const bool ok = !id.empty() &&
                  std::all_of(id.begin(), id.end(), [](char c) {
                    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                           c == '-';
                  }) &&
                  id.front() != '-' && id.back() != '-';
  SHIRAZ_REQUIRE(ok, "scenario: id '" + id + "' must match [a-z0-9-] and not "
                     "start or end with '-'");
}

RegimeSpec parse_spec(const std::string& kind, const JsonValue& params) {
  if (kind == "weibull") {
    check_keys(params, "weibull params", {"shape", "mtbf_hours"});
    return WeibullSpec{positive(params, "shape"),
                       hours_field(params, "mtbf_hours")};
  }
  if (kind == "bathtub") {
    check_keys(params, "bathtub params",
               {"infant_shape", "infant_scale_hours", "wear_shape",
                "wear_scale_hours"});
    return BathtubSpec{positive(params, "infant_shape"),
                       hours_field(params, "infant_scale_hours"),
                       positive(params, "wear_shape"),
                       hours_field(params, "wear_scale_hours")};
  }
  if (kind == "markov-burst") {
    check_keys(params, "markov-burst params",
               {"calm_mtbf_hours", "calm_shape", "burst_mtbf_hours",
                "burst_shape", "p_calm_to_burst", "p_burst_to_calm"});
    reliability::MarkovBurstRegime::Config c;
    c.calm_mtbf = hours_field(params, "calm_mtbf_hours");
    c.calm_shape = positive(params, "calm_shape");
    c.burst_mtbf = hours_field(params, "burst_mtbf_hours");
    c.burst_shape = positive(params, "burst_shape");
    c.p_calm_to_burst = positive(params, "p_calm_to_burst");
    c.p_burst_to_calm = positive(params, "p_burst_to_calm");
    return c;
  }
  if (kind == "cluster-outage") {
    check_keys(params, "cluster-outage params",
               {"primary_mtbf_hours", "primary_shape", "group_size_mean",
                "spread_hours"});
    reliability::ClusterOutageRegime::Config c;
    c.primary_mtbf = hours_field(params, "primary_mtbf_hours");
    c.primary_shape = positive(params, "primary_shape");
    c.group_size_mean = positive(params, "group_size_mean");
    c.spread = hours_field(params, "spread_hours");
    return c;
  }
  if (kind == "hetero-pools") {
    check_keys(params, "hetero-pools params", {"pools"});
    const JsonValue& arr = params.at("pools");
    SHIRAZ_REQUIRE(arr.type == JsonValue::Type::kArray,
                   "scenario: 'pools' must be an array");
    std::vector<reliability::HeterogeneousPoolsRegime::Pool> pools;
    for (std::size_t i = 0; i < arr.array.size(); ++i) {
      const JsonValue& p = arr.at(i);
      check_keys(p, "pool entry", {"shape", "mtbf_hours"});
      pools.push_back({positive(p, "shape"), hours_field(p, "mtbf_hours")});
    }
    SHIRAZ_REQUIRE(pools.size() >= 2,
                   "scenario: 'pools' needs at least two entries");
    return pools;
  }
  if (kind == "drifting-weibull") {
    check_keys(params, "drifting-weibull params",
               {"beta_start", "beta_end", "mtbf_start_hours", "mtbf_end_hours",
                "ramp_hours"});
    reliability::DriftingWeibullRegime::Config c;
    c.beta_start = positive(params, "beta_start");
    c.beta_end = positive(params, "beta_end");
    c.mtbf_start = hours_field(params, "mtbf_start_hours");
    c.mtbf_end = hours_field(params, "mtbf_end_hours");
    c.ramp = hours_field(params, "ramp_hours");
    return c;
  }
  throw InvalidArgument("scenario: unknown kind '" + kind + "'");
}

}  // namespace

reliability::FailureRegimePtr Scenario::make_regime() const {
  struct Maker {
    reliability::FailureRegimePtr operator()(const WeibullSpec& s) const {
      return std::make_unique<reliability::RenewalRegime>(
          std::make_unique<reliability::Weibull>(
              reliability::Weibull::from_mtbf(s.shape, s.mtbf)));
    }
    reliability::FailureRegimePtr operator()(const BathtubSpec& s) const {
      return std::make_unique<reliability::RenewalRegime>(
          std::make_unique<reliability::BathtubWeibull>(
              s.infant_shape, s.infant_scale, s.wear_shape, s.wear_scale));
    }
    reliability::FailureRegimePtr operator()(
        const reliability::MarkovBurstRegime::Config& c) const {
      return std::make_unique<reliability::MarkovBurstRegime>(c);
    }
    reliability::FailureRegimePtr operator()(
        const reliability::ClusterOutageRegime::Config& c) const {
      return std::make_unique<reliability::ClusterOutageRegime>(c);
    }
    reliability::FailureRegimePtr operator()(
        const std::vector<reliability::HeterogeneousPoolsRegime::Pool>& p) const {
      return std::make_unique<reliability::HeterogeneousPoolsRegime>(p);
    }
    reliability::FailureRegimePtr operator()(
        const reliability::DriftingWeibullRegime::Config& c) const {
      return std::make_unique<reliability::DriftingWeibullRegime>(c);
    }
  };
  return std::visit(Maker{}, spec);
}

Scenario parse(const std::string& json_text) {
  const JsonValue doc = parse_json(json_text);
  check_keys(doc, "scenario document",
             {"schema", "id", "title", "description", "kind", "horizon_hours",
              "nominal_mtbf_hours", "params"});
  const std::string schema = text(doc, "schema");
  SHIRAZ_REQUIRE(schema == kSchema, "scenario: unsupported schema '" + schema +
                                        "' (expected " + kSchema + ")");
  Scenario s;
  s.id = text(doc, "id");
  check_id(s.id);
  s.title = text(doc, "title");
  s.description = text(doc, "description");
  s.kind = text(doc, "kind");
  s.horizon = hours_field(doc, "horizon_hours");
  s.nominal_mtbf = hours_field(doc, "nominal_mtbf_hours");
  s.spec = parse_spec(s.kind, doc.at("params"));
  // Constructing the regime validates the cross-field constraints the
  // per-field checks above can't see (burst < calm, spread < primary, ...).
  (void)s.make_regime();
  return s;
}

Scenario load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SHIRAZ_REQUIRE(in.good(), "scenario: cannot read '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    Scenario s = parse(buf.str());
    s.source_path = path;
    return s;
  } catch (const InvalidArgument& e) {
    throw InvalidArgument(path + ": " + e.what());
  }
}

std::vector<Scenario> load_dir(const std::string& dir) {
  SHIRAZ_REQUIRE(fs::is_directory(dir),
                 "scenario: '" + dir + "' is not a directory");
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  SHIRAZ_REQUIRE(!paths.empty(), "scenario: no *.json files in '" + dir + "'");
  std::sort(paths.begin(), paths.end());
  std::vector<Scenario> out;
  out.reserve(paths.size());
  for (const std::string& p : paths) out.push_back(load(p));
  std::sort(out.begin(), out.end(),
            [](const Scenario& a, const Scenario& b) { return a.id < b.id; });
  for (std::size_t i = 1; i < out.size(); ++i) {
    SHIRAZ_REQUIRE(out[i - 1].id != out[i].id,
                   "scenario: duplicate id '" + out[i].id + "' (" +
                       out[i - 1].source_path + ", " + out[i].source_path + ")");
  }
  return out;
}

}  // namespace shiraz::scenario
