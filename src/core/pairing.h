// Multi-application scaling (paper Section 5, "Shiraz in multi-application
// environment"): make pairs of applications with different checkpointing
// overheads, run one pair between two failures using Shiraz, and rotate to
// the next pair at every failure.
//
// Two pairing strategies from the paper:
//  * extreme pairing — heaviest with lightest, second-heaviest with
//    second-lightest, ... (maximizes the average delta-factor; the paper's
//    provably optimal strategy);
//  * random pairing — shuffle, then pair adjacent entries (the paper's
//    "easier to implement" strategy, used for its Fig. 14 results).
#pragma once

#include <vector>

#include "apps/profile.h"
#include "common/rng.h"
#include "core/analytical_model.h"
#include "core/switch_solver.h"

namespace shiraz::core {

/// One scheduled pair: light-weight member, heavy-weight member, and the fair
/// switch point Shiraz computed for them (absent when the pair gains nothing
/// and falls back to baseline alternation).
struct AppPair {
  apps::AppProfile light;
  apps::AppProfile heavy;
  std::optional<int> k;
  double model_delta_total = 0.0;  ///< modeled pair gain, seconds of useful work

  double delta_factor() const {
    return heavy.checkpoint_cost / light.checkpoint_cost;
  }
};

enum class PairingStrategy { kExtreme, kRandom };

/// Pairs up an even-sized application list. Each pair is ordered so that
/// `light` has the smaller checkpoint cost.
std::vector<AppPair> make_pairs(std::vector<apps::AppProfile> catalog,
                                PairingStrategy strategy, Rng& rng);

/// Computes the fair switch point for every pair under `model`.
void solve_pairs(const ShirazModel& model, std::vector<AppPair>& pairs,
                 const SolverOptions& options = {});

/// Average of the pairs' delta-factors — the quantity extreme pairing
/// maximizes (paper's stated intuition).
double average_delta_factor(const std::vector<AppPair>& pairs);

}  // namespace shiraz::core
