#include "core/analytical_model.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/mathx.h"

namespace shiraz::core {

namespace {
constexpr double kTailCutoff = 1e-12;  // stop summing once survival mass is gone
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Components& Components::operator+=(const Components& o) {
  useful += o.useful;
  io += o.io;
  lost += o.lost;
  return *this;
}

ShirazModel::ShirazModel(const ModelConfig& config)
    : config_(config), failures_(config.mtbf, config.weibull_shape) {
  SHIRAZ_REQUIRE(config.epsilon >= 0.0 && config.epsilon <= 1.0,
                 "epsilon must be a fraction in [0,1]");
  SHIRAZ_REQUIRE(config.t_total > 0.0, "campaign length must be positive");
}

Seconds ShirazModel::interval(const AppSpec& app) const {
  SHIRAZ_REQUIRE(app.stretch >= 1, "stretch factor must be >= 1");
  return checkpoint::optimal_interval(config_.mtbf, app.delta, config_.oci_formula) *
         static_cast<double>(app.stretch);
}

Seconds ShirazModel::segment(const AppSpec& app) const {
  return interval(app) + app.delta;
}

Seconds ShirazModel::switch_time(const AppSpec& lw, int k) const {
  SHIRAZ_REQUIRE(k >= 0, "switch point must be non-negative");
  return static_cast<double>(k) * segment(lw);
}

Components ShirazModel::first_app(const AppSpec& app, Seconds t_switch,
                                  Seconds t_total) const {
  SHIRAZ_REQUIRE(t_switch >= 0.0, "switch time must be non-negative");
  const Seconds seg = segment(app);
  const Seconds oci = interval(app);
  const double gaps = failures_.gaps(t_total);

  // Number of whole segments the app can complete before switch-out. The
  // switch happens at a checkpoint boundary, so t_switch is a multiple of seg
  // in Shiraz; for validation sweeps any t_switch is allowed and the app
  // simply completes floor(t_switch/seg) segments.
  const double k_whole = std::floor(t_switch / seg + 1e-9);

  Components out;
  mathx::KahanSum useful;
  mathx::KahanSum io;
  // Gaps ending while the app is running its (i+1)-th segment credit i
  // completed segments and hit the app with a failure.
  double s_prev = failures_.survival(0.0);
  for (double i = 1.0; i <= k_whole; ++i) {
    const double s_i = failures_.survival(i * seg);
    const double fail_count = gaps * (s_prev - s_i);  // gaps in ((i-1)seg, i*seg)
    useful.add((i - 1.0) * oci * fail_count);
    io.add((i - 1.0) * app.delta * fail_count);
    s_prev = s_i;
    if (s_i < kTailCutoff) break;
  }
  const double s_switch = failures_.survival(t_switch);
  if (std::isfinite(t_switch)) {
    // Gaps ending in (k_whole*seg, t_switch): app completed k_whole segments.
    if (t_switch > k_whole * seg) {
      const double fail_count = gaps * (s_prev - s_switch);
      useful.add(k_whole * oci * fail_count);
      io.add(k_whole * app.delta * fail_count);
    }
    // Tail: gaps longer than t_switch — the app completed all k_whole segments
    // and was switched out cleanly (the Eq. 10 tail credit; see DESIGN.md).
    useful.add(k_whole * oci * gaps * s_switch);
    io.add(k_whole * app.delta * gaps * s_switch);
  }

  out.useful = useful.value();
  out.io = io.value();
  // Failures hit this app only while it is running: gaps shorter than t_switch.
  const double failures_hit = gaps * (1.0 - s_switch);
  out.lost = config_.epsilon * seg * failures_hit;
  return out;
}

Components ShirazModel::second_app(const AppSpec& app, Seconds t_start,
                                   Seconds t_total) const {
  SHIRAZ_REQUIRE(t_start >= 0.0, "start time must be non-negative");
  const Seconds seg = segment(app);
  const Seconds oci = interval(app);
  const double gaps = failures_.gaps(t_total);

  Components out;
  mathx::KahanSum useful;
  mathx::KahanSum io;
  // Gaps ending in (t_start + j*seg, t_start + (j+1)*seg) credit j completed
  // segments, j = 1, 2, ... (j = 0 contributes nothing).
  double s_prev = failures_.survival(t_start + seg);
  for (double j = 1.0; j < 1e9; ++j) {
    const double s_j = failures_.survival(t_start + (j + 1.0) * seg);
    const double fail_count = gaps * (s_prev - s_j);
    useful.add(j * oci * fail_count);
    io.add(j * app.delta * fail_count);
    s_prev = s_j;
    if (s_j < kTailCutoff) break;
  }
  out.useful = useful.value();
  out.io = io.value();
  // Every gap longer than t_start ends with a failure that hits this app.
  out.lost = config_.epsilon * seg * gaps * failures_.survival(t_start);
  return out;
}

Components ShirazModel::window_app(const AppSpec& app, Seconds t_start, int k,
                                   Seconds t_total) const {
  SHIRAZ_REQUIRE(t_start >= 0.0, "start time must be non-negative");
  SHIRAZ_REQUIRE(k >= 0, "checkpoint count must be non-negative");
  const Seconds seg = segment(app);
  const Seconds oci = interval(app);
  const double gaps = failures_.gaps(t_total);
  const Seconds t_end = t_start + static_cast<double>(k) * seg;

  Components out;
  mathx::KahanSum useful;
  mathx::KahanSum io;
  // Gaps ending in (t_start + j*seg, t_start + (j+1)*seg), j < k, credit j
  // completed segments and hit the app with a failure.
  double s_prev = failures_.survival(t_start);
  for (int j = 0; j < k; ++j) {
    const double s_j = failures_.survival(t_start + (j + 1.0) * seg);
    const double fail_count = gaps * (s_prev - s_j);
    useful.add(static_cast<double>(j) * oci * fail_count);
    io.add(static_cast<double>(j) * app.delta * fail_count);
    s_prev = s_j;
    if (s_j < kTailCutoff) break;
  }
  // Gaps outlasting the window: the app completed all k segments and yielded.
  const double s_end = failures_.survival(t_end);
  useful.add(static_cast<double>(k) * oci * gaps * s_end);
  io.add(static_cast<double>(k) * app.delta * gaps * s_end);
  out.useful = useful.value();
  out.io = io.value();
  // Failures hit the app only while its window is live.
  out.lost = config_.epsilon * seg * gaps *
             (failures_.survival(t_start) - s_end);
  return out;
}

Components ShirazModel::baseline(const AppSpec& app) const {
  // Switching at every failure is switching out at t = infinity, with the app
  // exposed for half the campaign (paper: "in the baseline case
  // T_total = T_total/2").
  return first_app(app, kInf, config_.t_total / 2.0);
}

PairOutcome ShirazModel::shiraz(const AppSpec& lw, const AppSpec& hw, int k) const {
  SHIRAZ_REQUIRE(k >= 0, "switch point must be non-negative");
  const Seconds t_k = switch_time(lw, k);
  PairOutcome out;
  out.lw = first_app(lw, t_k, config_.t_total);
  out.hw = second_app(hw, t_k, config_.t_total);
  return out;
}

PairOutcome ShirazModel::baseline_pair(const AppSpec& lw, const AppSpec& hw) const {
  PairOutcome out;
  out.lw = baseline(lw);
  out.hw = baseline(hw);
  return out;
}

}  // namespace shiraz::core
