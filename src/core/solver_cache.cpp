#include "core/solver_cache.h"

#include "core/switch_solver.h"

namespace shiraz::core {

struct SolverCache::Entry {
  std::once_flag once;
  CachedSolution solution;
};

CachedSolution SolverCache::solve(const SolverCacheKey& key) const {
  std::shared_ptr<Entry> entry;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = entries_.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<Entry>();
      ++stats_.misses;
    } else {
      ++stats_.hits;
    }
    entry = it->second;
  }
  // The solve runs outside the map lock so distinct keys solve concurrently;
  // call_once serializes same-key callers onto one computation. A throwing
  // solve (invalid parameters) propagates to the caller and leaves the flag
  // unset, so every caller of a bad key gets the exception.
  std::call_once(entry->once, [&] {
    ModelConfig mcfg;
    mcfg.mtbf = key.mtbf;
    mcfg.weibull_shape = key.weibull_shape;
    mcfg.epsilon = key.epsilon;
    mcfg.t_total = key.t_total;
    mcfg.oci_formula = key.oci_formula;
    const ShirazModel model(mcfg);
    SolverOptions opts;
    opts.keep_sweep = false;
    const SwitchSolution sol =
        solve_switch_point(model, AppSpec{"lw", key.delta_lw, 1},
                           AppSpec{"hw", key.delta_hw, key.hw_stretch}, opts);
    entry->solution =
        CachedSolution{sol.k, sol.delta_lw, sol.delta_hw, sol.delta_total};
  });
  return entry->solution;
}

SolverCache::Stats SolverCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t SolverCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void SolverCache::clear() const {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  stats_ = Stats{};
}

}  // namespace shiraz::core
