#include "core/solver_cache.h"

#include "core/switch_solver.h"
#include "obs/metrics.h"

namespace shiraz::core {

struct SolverCache::Entry {
  std::once_flag once;
  CachedSolution solution;
};

SolverCache::SolverCache() : SolverCache(nullptr) {}

SolverCache::SolverCache(std::shared_ptr<obs::MetricsRegistry> metrics)
    : metrics_(metrics != nullptr ? std::move(metrics)
                                  : std::make_shared<obs::MetricsRegistry>()) {
  hits_ = &metrics_->counter("shiraz_solver_cache_hits_total",
                             "switch-point solves served from the memo table");
  misses_ = &metrics_->counter("shiraz_solver_cache_misses_total",
                               "switch-point solves computed fresh");
  entries_gauge_ = &metrics_->gauge("shiraz_solver_cache_entries",
                                    "distinct signatures memoized");
}

CachedSolution SolverCache::solve(const SolverCacheKey& key) const {
  std::shared_ptr<Entry> entry;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = entries_.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<Entry>();
      misses_->add(1);
      entries_gauge_->set(static_cast<double>(entries_.size()));
    } else {
      hits_->add(1);
    }
    entry = it->second;
  }
  // The solve runs outside the map lock so distinct keys solve concurrently;
  // call_once serializes same-key callers onto one computation. A throwing
  // solve (invalid parameters) propagates to the caller and leaves the flag
  // unset, so every caller of a bad key gets the exception.
  std::call_once(entry->once, [&] {
    ModelConfig mcfg;
    mcfg.mtbf = key.mtbf;
    mcfg.weibull_shape = key.weibull_shape;
    mcfg.epsilon = key.epsilon;
    mcfg.t_total = key.t_total;
    mcfg.oci_formula = key.oci_formula;
    const ShirazModel model(mcfg);
    SolverOptions opts;
    opts.keep_sweep = false;
    const SwitchSolution sol =
        solve_switch_point(model, AppSpec{"lw", key.delta_lw, 1},
                           AppSpec{"hw", key.delta_hw, key.hw_stretch}, opts);
    entry->solution =
        CachedSolution{sol.k, sol.delta_lw, sol.delta_hw, sol.delta_total};
  });
  return entry->solution;
}

SolverCache::Stats SolverCache::stats() const {
  // The counters are only ever bumped under mu_ (see solve()), so holding it
  // here keeps hits/misses mutually consistent — the historical contract.
  const std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_->value(), misses_->value()};
}

std::size_t SolverCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void SolverCache::clear() const {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_->reset();
  misses_->reset();
  entries_gauge_->set(0.0);
}

}  // namespace shiraz::core
