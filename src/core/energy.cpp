#include "core/energy.h"

#include "common/error.h"

namespace shiraz::core {

EnergySavings energy_savings(double useful_gain_hours_per_year,
                             const EnergyModelConfig& config) {
  SHIRAZ_REQUIRE(config.system_power_megawatts > 0.0, "power must be positive");
  SHIRAZ_REQUIRE(config.dollars_per_kwh >= 0.0, "price must be non-negative");
  EnergySavings s;
  s.megawatt_hours_per_year = useful_gain_hours_per_year * config.system_power_megawatts;
  // 1 MWh = 1000 kWh.
  s.dollars_per_year = s.megawatt_hours_per_year * 1000.0 * config.dollars_per_kwh;
  s.dollars_over_lifetime = s.dollars_per_year * config.system_lifetime_years;
  return s;
}

double burst_buffer_cost(const BurstBufferConfig& config) {
  SHIRAZ_REQUIRE(config.gigabytes_per_dollar > 0.0, "GB/$ must be positive");
  const double gigabytes = config.capacity_petabytes * 1.0e6;  // 1 PB = 1e6 GB
  return gigabytes / config.gigabytes_per_dollar;
}

double burst_buffer_payback_fraction(double savings_dollars,
                                     const BurstBufferConfig& config) {
  return savings_dollars / burst_buffer_cost(config);
}

}  // namespace shiraz::core
