#include "core/switch_solver.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace shiraz::core {

SwitchCandidate evaluate_switch_point(const ShirazModel& model, const AppSpec& lw,
                                      const AppSpec& hw, int k) {
  const PairOutcome base = model.baseline_pair(lw, hw);
  const PairOutcome sz = model.shiraz(lw, hw, k);
  SwitchCandidate c;
  c.k = k;
  c.delta_lw = sz.lw.useful - base.lw.useful;
  c.delta_hw = sz.hw.useful - base.hw.useful;
  c.delta_total = c.delta_lw + c.delta_hw;
  return c;
}

SwitchSolution solve_switch_point(const ShirazModel& model, const AppSpec& lw,
                                  const AppSpec& hw, const SolverOptions& options) {
  SHIRAZ_REQUIRE(options.max_k >= 1, "max_k must be at least 1");
  const PairOutcome base = model.baseline_pair(lw, hw);

  SwitchSolution sol;
  double best_gap = std::numeric_limits<double>::infinity();
  SwitchCandidate best;
  bool have_candidate = false;

  // Delta_LW(k) is non-decreasing and Delta_HW(k) non-increasing, so their
  // difference crosses zero exactly once. The fair switch point is the
  // integer k nearest that crossing (the paper solves the continuous equality
  // Delta_LW = Delta_HW numerically and k is integral); at that k one app can
  // sit a hair below zero when the crossing falls between integers. A single
  // forward scan finds both the crossing and the region of interest. Stop
  // early once LW's switch time is so deep in the Weibull tail that nothing
  // changes anymore.
  const double tail_time_limit = 64.0 * model.config().mtbf;
  bool crossed = false;
  for (int k = 1; k <= options.max_k; ++k) {
    const PairOutcome sz = model.shiraz(lw, hw, k);
    SwitchCandidate c;
    c.k = k;
    c.delta_lw = sz.lw.useful - base.lw.useful;
    c.delta_hw = sz.hw.useful - base.hw.useful;
    c.delta_total = c.delta_lw + c.delta_hw;
    if (options.keep_sweep) sol.sweep.push_back(c);

    if (c.delta_lw >= 0.0 && c.delta_hw >= 0.0 && c.delta_total > 0.0) {
      if (!sol.region_lo) sol.region_lo = k;
      sol.region_hi = k;
    }

    const double gap = std::fabs(c.delta_lw - c.delta_hw);
    if (gap < best_gap) {
      best_gap = gap;
      best = c;
      have_candidate = true;
    }
    if (c.delta_lw - c.delta_hw > 0.0) crossed = true;
    // Past the crossing the gap only widens; keep scanning only if the
    // caller wants the full sweep (for plotting the Delta curves).
    if (crossed && !options.keep_sweep) break;
    if (model.switch_time(lw, k) > tail_time_limit) break;
  }

  // "Shiraz will return k = infinity if no system throughput improvement can
  // be achieved" — no crossing found, or no *material* gain to split at the
  // crossing (identical apps produce a numerically-zero delta that must not
  // count as a benefit).
  const double materiality =
      1e-4 * (base.lw.useful + base.hw.useful);
  if (have_candidate && crossed && best.delta_total > materiality) {
    sol.k = best.k;
    sol.delta_lw = best.delta_lw;
    sol.delta_hw = best.delta_hw;
    sol.delta_total = best.delta_total;
  }
  return sol;
}

}  // namespace shiraz::core
