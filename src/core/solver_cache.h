// Shared memoized switch-point solver cache.
//
// Solving the fair switch point is a pure function of the model signature —
// (MTBF, Weibull shape, epsilon, horizon, OCI formula) plus the pair's
// (delta_LW, delta_HW, HW stretch) — so every consumer that re-solves the
// same signature should pay for it once, whether the signature arrives from
// a 10k-job workload-manager campaign or from a live `shirazctl serve`
// query. SolverCache is that shared memo table: thread-safe, with exact
// hit/miss accounting.
//
// Concurrency contract: the map is guarded by one mutex, but solves run
// outside it — a key's first caller inserts an entry (counted as the miss)
// and racing callers for the same key block on the entry's std::once_flag
// until the solve lands. Hits + misses therefore always equals the number
// of solve() calls, and misses equals the number of distinct keys ever
// requested, under any interleaving (tests/core/solver_cache_test.cpp
// hammers this under TSan). Cached solutions are bit-identical to calling
// core::solve_switch_point directly: the value is computed once by the
// deterministic solver and only ever copied out.
//
// Accounting lives on an obs::MetricsRegistry (shiraz_solver_cache_*
// counters plus an entries gauge) rather than bespoke members: pass a shared
// registry to fold the cache into a process-wide snapshot (the serve daemon
// does), or let the default constructor own a private one — either way the
// Stats contract above is unchanged because the counters are bumped under
// the same map lock the old members were.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <tuple>

#include "checkpoint/oci.h"
#include "common/units.h"

namespace shiraz::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace shiraz::obs

namespace shiraz::core {

/// Everything the fair-switch-point solve depends on. Keys compare by exact
/// double equality — the same convention the workload manager's historical
/// per-pair memo used: a catalog-drawn fleet revisits identical bits.
struct SolverCacheKey {
  Seconds mtbf = 0.0;
  double weibull_shape = 0.0;
  double epsilon = 0.0;
  Seconds t_total = 0.0;
  checkpoint::OciFormula oci_formula = checkpoint::OciFormula::kYoung;
  Seconds delta_lw = 0.0;
  Seconds delta_hw = 0.0;
  /// Heavy-weight OCI stretch (1 = plain Shiraz, >= 2 = Shiraz+).
  unsigned hw_stretch = 1;

  friend bool operator<(const SolverCacheKey& a, const SolverCacheKey& b) {
    return std::tie(a.mtbf, a.weibull_shape, a.epsilon, a.t_total,
                    a.oci_formula, a.delta_lw, a.delta_hw, a.hw_stretch) <
           std::tie(b.mtbf, b.weibull_shape, b.epsilon, b.t_total,
                    b.oci_formula, b.delta_lw, b.delta_hw, b.hw_stretch);
  }
  friend bool operator==(const SolverCacheKey&, const SolverCacheKey&) = default;
};

/// The memoized slice of a SwitchSolution: the fair k (empty = the paper's
/// "k = infinity", no beneficial switch) and the modeled gains at it.
struct CachedSolution {
  std::optional<int> k;
  double delta_lw = 0.0;
  double delta_hw = 0.0;
  double delta_total = 0.0;

  bool beneficial() const { return k.has_value(); }
  friend bool operator==(const CachedSolution&, const CachedSolution&) = default;
};

class SolverCache {
 public:
  /// Owns a private MetricsRegistry — per-instance accounting, the
  /// historical behavior.
  SolverCache();

  /// Counts into `metrics` (null falls back to a private registry). Sharing
  /// one registry across caches merges their counters; stats() then reports
  /// the merged totals, so keep one cache per shared registry when the
  /// per-instance exactness contract matters.
  explicit SolverCache(std::shared_ptr<obs::MetricsRegistry> metrics);

  /// Exact concurrency-safe counters: hits + misses == solve() calls and
  /// misses == distinct keys requested, under any thread interleaving.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    std::uint64_t lookups() const { return hits + misses; }
    double hit_ratio() const {
      return lookups() == 0 ? 0.0
                            : static_cast<double>(hits) /
                                  static_cast<double>(lookups());
    }
  };

  /// The memoized solve. The first caller of a key computes it via
  /// core::solve_switch_point (validating the key's parameters exactly as a
  /// direct ShirazModel construction would — invalid keys throw
  /// InvalidArgument out of that first call); concurrent callers of the
  /// same key wait for that solve instead of duplicating it.
  CachedSolution solve(const SolverCacheKey& key) const;

  Stats stats() const;
  std::size_t size() const;
  void clear() const;

  /// The registry this cache counts into (never null).
  const std::shared_ptr<obs::MetricsRegistry>& metrics() const {
    return metrics_;
  }

 private:
  struct Entry;

  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Gauge* entries_gauge_ = nullptr;
  mutable std::mutex mu_;
  mutable std::map<SolverCacheKey, std::shared_ptr<Entry>> entries_;
};

}  // namespace shiraz::core
