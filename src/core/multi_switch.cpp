#include "core/multi_switch.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "core/switch_solver.h"

namespace shiraz::core {

Components chain_baseline(const ShirazModel& model, const AppSpec& app,
                          std::size_t n_apps) {
  SHIRAZ_REQUIRE(n_apps >= 1, "need at least one app");
  return model.first_app(app, std::numeric_limits<double>::infinity(),
                         model.config().t_total / static_cast<double>(n_apps));
}

std::vector<double> evaluate_chain(const ShirazModel& model,
                                   const std::vector<AppSpec>& apps,
                                   const std::vector<int>& ks) {
  SHIRAZ_REQUIRE(apps.size() >= 2, "chain needs at least two apps");
  SHIRAZ_REQUIRE(ks.size() == apps.size() - 1, "need one switch count per yield");
  const Seconds t_total = model.config().t_total;

  std::vector<double> deltas;
  deltas.reserve(apps.size());
  Seconds t_start = 0.0;
  for (std::size_t i = 0; i + 1 < apps.size(); ++i) {
    SHIRAZ_REQUIRE(ks[i] >= 0, "switch counts must be non-negative");
    const Components run = model.window_app(apps[i], t_start, ks[i], t_total);
    const Components base = chain_baseline(model, apps[i], apps.size());
    deltas.push_back(run.useful - base.useful);
    t_start += static_cast<double>(ks[i]) * model.segment(apps[i]);
  }
  const Components last = model.second_app(apps.back(), t_start, t_total);
  const Components last_base = chain_baseline(model, apps.back(), apps.size());
  deltas.push_back(last.useful - last_base.useful);
  return deltas;
}

namespace {

double min_of(const std::vector<double>& xs) {
  return *std::min_element(xs.begin(), xs.end());
}

}  // namespace

ChainSolution solve_chain(const ShirazModel& model, const std::vector<AppSpec>& apps,
                          const ChainSolverOptions& options) {
  SHIRAZ_REQUIRE(apps.size() >= 2, "chain needs at least two apps");
  SHIRAZ_REQUIRE(std::is_sorted(apps.begin(), apps.end(),
                                [](const AppSpec& a, const AppSpec& b) {
                                  return a.delta < b.delta;
                                }),
                 "apps must be sorted by ascending checkpoint cost");
  SHIRAZ_REQUIRE(options.max_k >= 1 && options.max_passes >= 1, "bad options");

  // Seed: solve each app against the heaviest as a pair; the pairwise fair k
  // is a good starting magnitude for the earlier switch counts.
  std::vector<int> ks(apps.size() - 1, 0);
  SolverOptions pair_opts;
  pair_opts.keep_sweep = false;
  for (std::size_t i = 0; i + 1 < apps.size(); ++i) {
    const SwitchSolution sol =
        solve_switch_point(model, apps[i], apps.back(), pair_opts);
    // Later chain members start deeper in the gap than a pair's light member
    // would, so scale the seed down with the position.
    ks[i] = sol.k ? std::max(1, *sol.k / static_cast<int>(apps.size() - 1)) : 0;
    ks[i] = std::min(ks[i], options.max_k);
  }

  // Hill-climb on the max-min objective. Single-coordinate moves are not
  // enough: raising an early switch count pushes every later app deeper into
  // the gap, so the escape direction is often a *joint* move (e.g. raise all
  // counts together, or trade between adjacent positions). The neighborhood
  // therefore includes per-coordinate steps, all-coordinate steps, and
  // suffix steps (everything from position i onward).
  std::vector<double> deltas = evaluate_chain(model, apps, ks);
  double best = min_of(deltas);
  auto try_move = [&](std::vector<int> trial) {
    for (const int k : trial) {
      if (k < 0 || k > options.max_k) return false;
    }
    const std::vector<double> trial_deltas = evaluate_chain(model, apps, trial);
    const double trial_min = min_of(trial_deltas);
    if (trial_min > best + 1e-9) {
      ks = std::move(trial);
      deltas = trial_deltas;
      best = trial_min;
      return true;
    }
    return false;
  };
  const int steps[] = {+1, -1, +2, -2, +4, -4, +8, -8, +16, -16};
  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    for (std::size_t i = 0; i < ks.size(); ++i) {
      for (const int step : steps) {
        std::vector<int> trial = ks;
        trial[i] += step;
        improved |= try_move(std::move(trial));
      }
    }
    for (const int step : steps) {
      // Suffix moves: shift the tail of the chain as one block.
      for (std::size_t from = 0; from < ks.size(); ++from) {
        std::vector<int> trial = ks;
        for (std::size_t i = from; i < trial.size(); ++i) trial[i] += step;
        improved |= try_move(std::move(trial));
      }
    }
    if (!improved) break;
  }

  ChainSolution sol;
  sol.ks = ks;
  sol.deltas = deltas;
  sol.min_delta = best;
  sol.total_delta = 0.0;
  for (const double d : deltas) sol.total_delta += d;
  // Benefit criterion mirrors the pair solver's tolerance: the total gain
  // must be material, and no app may sit more than a few percent below its
  // baseline (integer switch counts leave the crossing slightly off-balance,
  // exactly as the paper's own k = 6 exascale point does for the pair case).
  double base_total = 0.0;
  for (const AppSpec& app : apps) {
    base_total += chain_baseline(model, app, apps.size()).useful;
  }
  const double per_app_base = base_total / static_cast<double>(apps.size());
  sol.beneficial =
      best > -0.05 * per_app_base && sol.total_delta > 1e-4 * base_total;
  return sol;
}

}  // namespace shiraz::core
