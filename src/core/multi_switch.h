// N-application within-gap scheduling — the natural generalization of
// Shiraz's two-application switch (an extension beyond the paper, which
// scales to many applications by *pairing*; see pairing.h for the paper's
// scheme).
//
// Applications are ordered by ascending checkpoint cost. After each failure,
// app 0 (the lightest) runs for k_0 checkpoints, then app 1 for k_1, ..., and
// the heaviest app runs until the next failure — each app occupying a
// progressively lower-hazard region of the gap. The solver picks the switch
// counts k_0..k_{n-2} by max-min fairness against the round-robin baseline
// (every app exposed for t_total/n): hill-climbing on the vector of switch
// counts, seeded from the pairwise solution. For n = 2 this reproduces the
// paper's fair switch point.
#pragma once

#include <vector>

#include "core/analytical_model.h"

namespace shiraz::core {

struct ChainSolution {
  /// Switch counts for apps 0..n-2 (the last app runs to the failure).
  std::vector<int> ks;
  /// Useful-work improvement per app vs the round-robin baseline (seconds).
  std::vector<double> deltas;
  double min_delta = 0.0;
  double total_delta = 0.0;
  /// False when no switch vector beats the baseline for every app.
  bool beneficial = false;
};

struct ChainSolverOptions {
  /// Upper bound per switch count during the search.
  int max_k = 2048;
  /// Hill-climb iterations (each sweeps every coordinate).
  int max_passes = 64;
};

/// Baseline components for an app that alternates with n-1 peers at failures.
Components chain_baseline(const ShirazModel& model, const AppSpec& app,
                          std::size_t n_apps);

/// Evaluates a specific switch-count vector; deltas[i] is app i's gain.
std::vector<double> evaluate_chain(const ShirazModel& model,
                                   const std::vector<AppSpec>& apps,
                                   const std::vector<int>& ks);

/// Solves for the max-min-fair switch counts. `apps` must be sorted by
/// ascending checkpoint cost and contain at least two entries.
ChainSolution solve_chain(const ShirazModel& model, const std::vector<AppSpec>& apps,
                          const ChainSolverOptions& options = {});

}  // namespace shiraz::core
