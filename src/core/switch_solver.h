// Optimal switch-point solver (paper Section 3, "Where is optimal point?").
//
// For a light-weight/heavy-weight pair, the light-weight improvement
// Delta_LW(k) grows with k while the heavy-weight improvement Delta_HW(k)
// shrinks, both measured against the switch-at-every-failure baseline. Shiraz
// picks the *fair* switch point: the k where the two improvements are equal
// (and non-negative), splitting the total throughput gain evenly. If no k
// yields a positive gain for both, Shiraz reports "no beneficial switch"
// (k = infinity in the paper's formulation).
#pragma once

#include <optional>
#include <vector>

#include "core/analytical_model.h"

namespace shiraz::core {

/// Improvement of one candidate switch point over the baseline (seconds).
struct SwitchCandidate {
  int k = 0;
  double delta_lw = 0.0;    ///< LW useful-work gain vs baseline
  double delta_hw = 0.0;    ///< HW useful-work gain vs baseline
  double delta_total = 0.0; ///< delta_lw + delta_hw
};

struct SwitchSolution {
  /// The fair optimal switch point; empty when no switch point helps
  /// (the paper's "Shiraz will return k = infinity" case).
  std::optional<int> k;
  /// Improvements at k (seconds of useful work over the campaign).
  double delta_lw = 0.0;
  double delta_hw = 0.0;
  double delta_total = 0.0;
  /// Region of interest: all k with delta_lw >= 0 and delta_hw >= 0 and
  /// delta_total > 0 (paper Fig. 10's shaded band). Empty when none.
  std::optional<int> region_lo;
  std::optional<int> region_hi;
  /// The full sweep, for benches that plot Delta curves (Figs. 10-12).
  std::vector<SwitchCandidate> sweep;

  bool beneficial() const { return k.has_value(); }
};

struct SolverOptions {
  /// Upper bound of the k scan. The switch time k*segment(LW) rarely needs to
  /// exceed a few MTBFs; the default covers the paper's largest case
  /// (delta-factor 1000 at petascale, k* = 161) with a wide margin.
  int max_k = 4096;
  /// Keep the full sweep in the solution (costs memory; benches want it).
  bool keep_sweep = true;
};

/// Evaluates the improvement of Shiraz over baseline at a single k.
SwitchCandidate evaluate_switch_point(const ShirazModel& model, const AppSpec& lw,
                                      const AppSpec& hw, int k);

/// Finds the fair optimal switch point by scanning k = 1..max_k.
SwitchSolution solve_switch_point(const ShirazModel& model, const AppSpec& lw,
                                  const AppSpec& hw, const SolverOptions& options = {});

}  // namespace shiraz::core
