// The Shiraz analytical model (paper Section 3, Eqs. 1-15).
//
// Decomposes an application's expected execution into three components —
// useful work, checkpoint I/O, and lost work — under three scheduling shapes:
//
//  * baseline:   the app alternates with a peer at every failure (each app is
//                exposed for half the campaign);
//  * first-app:  the app runs from each failure until a fixed switch-out time
//                (Shiraz's light-weight role; validation case 1 in Section 4);
//  * second-app: the app runs from a fixed switch-in time until the next
//                failure (Shiraz's heavy-weight role; validation case 2).
//
// Two deliberate departures from the equations as printed, both required to
// match the discrete-event simulation (see DESIGN.md "Faithfulness notes"):
//  * the light-weight app is credited k*OCI for gaps longer than the switch
//    time (the printed Eq. 10 drops that tail);
//  * the default OCI convention is sqrt(2*M*delta) with segment length
//    OCI + delta, which is the convention the paper's own numbers follow.
#pragma once

#include <string>

#include "checkpoint/oci.h"
#include "common/units.h"
#include "core/failure_math.h"

namespace shiraz::core {

/// One application as the model sees it.
struct AppSpec {
  std::string name;
  /// Checkpoint cost delta (seconds).
  Seconds delta = 0.0;
  /// Checkpoint-interval stretch factor (1 = run at the OCI; >1 = Shiraz+'s
  /// stretched interval for the heavy-weight app).
  unsigned stretch = 1;
};

/// Expected execution-time components, all in seconds.
struct Components {
  double useful = 0.0;
  double io = 0.0;
  double lost = 0.0;

  Components& operator+=(const Components& o);
};

/// Model-wide parameters (paper Section 4 defaults).
struct ModelConfig {
  Seconds mtbf = hours(5.0);
  double weibull_shape = 0.6;
  /// Average fraction of a segment lost per failure (paper's epsilon = 0.45).
  double epsilon = 0.45;
  Seconds t_total = hours(1000.0);
  checkpoint::OciFormula oci_formula = checkpoint::OciFormula::kYoung;
};

/// Joint outcome of running a light-weight / heavy-weight pair under Shiraz
/// with a given switch point k.
struct PairOutcome {
  Components lw;
  Components hw;

  double total_useful() const { return lw.useful + hw.useful; }
  double total_io() const { return lw.io + hw.io; }
  double total_lost() const { return lw.lost + hw.lost; }
};

class ShirazModel {
 public:
  explicit ShirazModel(const ModelConfig& config);

  const ModelConfig& config() const { return config_; }
  const FailureWindowModel& failures() const { return failures_; }

  /// The app's compute interval between checkpoints (OCI * stretch).
  Seconds interval(const AppSpec& app) const;
  /// interval + delta: the forward-progress unit.
  Seconds segment(const AppSpec& app) const;

  /// Baseline components (Eqs. 4-9): the app alternates at every failure and
  /// is exposed for t_total/2.
  Components baseline(const AppSpec& app) const;

  /// Components for an app that runs from each failure until switch-out at
  /// `t_switch` (seconds since the failure), exposed over `t_total`.
  Components first_app(const AppSpec& app, Seconds t_switch, Seconds t_total) const;

  /// Components for an app that is switched in `t_start` seconds after each
  /// failure and runs until the next failure, exposed over `t_total`.
  Components second_app(const AppSpec& app, Seconds t_start, Seconds t_total) const;

  /// General middle-of-the-gap primitive: the app is switched in `t_start`
  /// seconds after each failure, runs for `k` checkpoints, then yields. The
  /// first-app case is window_app(app, 0, k, ...) and the second-app case is
  /// the k -> infinity limit. Powers the N-application chain (multi_switch.h).
  Components window_app(const AppSpec& app, Seconds t_start, int k,
                        Seconds t_total) const;

  /// Shiraz with switch point k: `lw` runs for k checkpoints after each
  /// failure, then `hw` runs until the next failure (Eqs. 10-15).
  PairOutcome shiraz(const AppSpec& lw, const AppSpec& hw, int k) const;

  /// Baseline outcome for the pair (both apps switched at every failure).
  PairOutcome baseline_pair(const AppSpec& lw, const AppSpec& hw) const;

  /// The switch-out wall-clock time for a given k: k * segment(lw).
  Seconds switch_time(const AppSpec& lw, int k) const;

 private:
  ModelConfig config_;
  FailureWindowModel failures_;
};

}  // namespace shiraz::core
