// Expected-failure-count window math (paper Eqs. 2-3).
//
// Failures form a renewal process whose inter-arrival gaps follow a Weibull
// distribution with shape beta and scale lambda = M / Gamma(1 + 1/beta). Over
// a campaign of length T_total there are ~T_total/M gaps, and the expected
// number of gaps whose *length* falls in a window (t1, t2) is
//
//   Failnum(t1, t2) = T_total/M * (e^{-(t1/lambda)^beta} - e^{-(t2/lambda)^beta})
//
// which is Eq. 2. Everything in the analytical model reduces to sums of this
// quantity over checkpoint-segment windows.
#pragma once

#include "common/units.h"

namespace shiraz::core {

class FailureWindowModel {
 public:
  /// Builds the model from the system MTBF and the Weibull shape beta.
  FailureWindowModel(Seconds mtbf, double shape);

  Seconds mtbf() const { return mtbf_; }
  double shape() const { return shape_; }
  Seconds scale() const { return scale_; }

  /// Weibull survival S(t) = exp(-(t/lambda)^beta).
  double survival(Seconds t) const;

  /// Expected number of inter-failure gaps with length in (t1, t2), over a
  /// campaign of `t_total` (Eq. 2). Pass t2 = +infinity for the upper tail.
  double failures_in_window(Seconds t_total, Seconds t1, Seconds t2) const;

  /// Expected total number of failures in `t_total` (Eq. 3).
  double total_failures(Seconds t_total) const;

  /// Expected number of gaps per campaign (t_total / M) — the renewal count
  /// that the window expression scales.
  double gaps(Seconds t_total) const { return t_total / mtbf_; }

 private:
  Seconds mtbf_;
  double shape_;
  Seconds scale_;
};

}  // namespace shiraz::core
