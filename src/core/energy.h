// Energy and monetary savings model (paper Section 5, "energy savings").
//
// Shiraz converts lost work into useful work; at the whole-system level every
// recovered hour is an hour of machine power that produces science instead of
// being thrown away. The paper monetizes this at a conservative $0.1/kWh and
// projects the savings over a 5-year system lifetime, then asks what fraction
// of an SSD burst-buffer deployment those savings would fund.
#pragma once

#include "common/units.h"

namespace shiraz::core {

struct EnergyModelConfig {
  double system_power_megawatts = 10.0;
  /// Electricity price in dollars per kilowatt-hour (paper: $0.1).
  double dollars_per_kwh = 0.1;
  double system_lifetime_years = 5.0;
};

struct EnergySavings {
  double megawatt_hours_per_year = 0.0;
  double dollars_per_year = 0.0;
  double dollars_over_lifetime = 0.0;
};

/// Savings from `useful_gain_per_year` hours of recovered useful work per
/// year of operation.
EnergySavings energy_savings(double useful_gain_hours_per_year,
                             const EnergyModelConfig& config);

struct BurstBufferConfig {
  /// Capacity of the storage deployment being priced (paper: 1 PB).
  double capacity_petabytes = 1.0;
  /// Deployed capacity per dollar of *total* cost (paper: 0.2 GB/USD, which
  /// already folds in the pessimistic 3x packaging/assembly/firmware
  /// multiplier over raw hardware — 1 PB prices at $5M total).
  double gigabytes_per_dollar = 0.2;
};

/// Total deployment cost of the burst buffer, dollars.
double burst_buffer_cost(const BurstBufferConfig& config);

/// Fraction of the burst-buffer cost covered by `savings_dollars`.
double burst_buffer_payback_fraction(double savings_dollars,
                                     const BurstBufferConfig& config);

}  // namespace shiraz::core
