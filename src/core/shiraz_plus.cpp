#include "core/shiraz_plus.h"

#include "common/error.h"

namespace shiraz::core {

std::vector<StretchOutcome> evaluate_shiraz_plus(const ShirazModel& model,
                                                 const AppSpec& lw, const AppSpec& hw,
                                                 const std::vector<unsigned>& stretches,
                                                 const SolverOptions& options) {
  SHIRAZ_REQUIRE(hw.stretch == 1 && lw.stretch == 1,
                 "pass unstretched specs; stretching is applied per factor");
  SolverOptions solve_opts = options;
  solve_opts.keep_sweep = false;
  const SwitchSolution shiraz = solve_switch_point(model, lw, hw, solve_opts);
  SHIRAZ_REQUIRE(shiraz.beneficial(),
                 "Shiraz+ requires a beneficial Shiraz switch point for the pair");
  const int k = *shiraz.k;

  const PairOutcome base = model.baseline_pair(lw, hw);
  std::vector<StretchOutcome> outcomes;
  outcomes.reserve(stretches.size());
  for (const unsigned stretch : stretches) {
    SHIRAZ_REQUIRE(stretch >= 1, "stretch factor must be >= 1");
    AppSpec hw_stretched = hw;
    hw_stretched.stretch = stretch;
    StretchOutcome o;
    o.stretch = stretch;
    o.k = k;
    o.baseline = base;
    o.shiraz_plus = model.shiraz(lw, hw_stretched, k);
    o.delta_lw = o.shiraz_plus.lw.useful - base.lw.useful;
    o.delta_hw = o.shiraz_plus.hw.useful - base.hw.useful;
    o.useful_improvement =
        (o.shiraz_plus.total_useful() - base.total_useful()) / base.total_useful();
    o.io_reduction = (base.total_io() - o.shiraz_plus.total_io()) / base.total_io();
    outcomes.push_back(o);
  }
  return outcomes;
}

StretchOutcome optimal_stretch(const ShirazModel& model, const AppSpec& lw,
                               const AppSpec& hw,
                               const StretchOptimizerOptions& options) {
  SHIRAZ_REQUIRE(options.max_stretch >= 1, "max_stretch must be >= 1");
  std::vector<unsigned> stretches;
  for (unsigned s = 1; s <= options.max_stretch; ++s) stretches.push_back(s);
  const std::vector<StretchOutcome> outcomes =
      evaluate_shiraz_plus(model, lw, hw, stretches, options.solver);

  // useful_improvement(stretch) is monotone non-increasing: walk up and keep
  // the last factor that clears the floor.
  StretchOutcome best = outcomes.front();
  for (const StretchOutcome& o : outcomes) {
    if (o.useful_improvement >= options.min_useful_improvement) {
      best = o;
    } else {
      break;
    }
  }
  return best;
}

}  // namespace shiraz::core
