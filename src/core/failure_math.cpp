#include "core/failure_math.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/mathx.h"

namespace shiraz::core {

FailureWindowModel::FailureWindowModel(Seconds mtbf, double shape)
    : mtbf_(mtbf), shape_(shape),
      scale_(mtbf / mathx::gamma_fn(1.0 + 1.0 / shape)) {
  SHIRAZ_REQUIRE(mtbf > 0.0, "MTBF must be positive");
  SHIRAZ_REQUIRE(shape > 0.0, "Weibull shape must be positive");
}

double FailureWindowModel::survival(Seconds t) const {
  if (t <= 0.0) return 1.0;
  if (std::isinf(t)) return 0.0;
  return std::exp(-std::pow(t / scale_, shape_));
}

double FailureWindowModel::failures_in_window(Seconds t_total, Seconds t1,
                                              Seconds t2) const {
  SHIRAZ_REQUIRE(t_total >= 0.0, "campaign length must be non-negative");
  SHIRAZ_REQUIRE(t2 >= t1, "window must be ordered");
  return gaps(t_total) * (survival(t1) - survival(t2));
}

double FailureWindowModel::total_failures(Seconds t_total) const {
  SHIRAZ_REQUIRE(t_total >= 0.0, "campaign length must be non-negative");
  return gaps(t_total) * (1.0 - survival(t_total));
}

}  // namespace shiraz::core
