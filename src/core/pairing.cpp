#include "core/pairing.h"

#include <algorithm>

#include "common/error.h"

namespace shiraz::core {

std::vector<AppPair> make_pairs(std::vector<apps::AppProfile> catalog,
                                PairingStrategy strategy, Rng& rng) {
  SHIRAZ_REQUIRE(catalog.size() >= 2, "need at least two applications to pair");
  SHIRAZ_REQUIRE(catalog.size() % 2 == 0, "need an even number of applications");

  std::vector<AppPair> pairs;
  pairs.reserve(catalog.size() / 2);
  switch (strategy) {
    case PairingStrategy::kExtreme: {
      std::sort(catalog.begin(), catalog.end(),
                [](const apps::AppProfile& a, const apps::AppProfile& b) {
                  return a.checkpoint_cost < b.checkpoint_cost;
                });
      for (std::size_t i = 0; i < catalog.size() / 2; ++i) {
        AppPair p;
        p.light = catalog[i];
        p.heavy = catalog[catalog.size() - 1 - i];
        pairs.push_back(std::move(p));
      }
      break;
    }
    case PairingStrategy::kRandom: {
      std::shuffle(catalog.begin(), catalog.end(), rng.engine());
      for (std::size_t i = 0; i + 1 < catalog.size(); i += 2) {
        AppPair p;
        p.light = catalog[i];
        p.heavy = catalog[i + 1];
        if (p.light.checkpoint_cost > p.heavy.checkpoint_cost) {
          std::swap(p.light, p.heavy);
        }
        pairs.push_back(std::move(p));
      }
      break;
    }
  }
  return pairs;
}

void solve_pairs(const ShirazModel& model, std::vector<AppPair>& pairs,
                 const SolverOptions& options) {
  SolverOptions opts = options;
  opts.keep_sweep = false;
  for (AppPair& pair : pairs) {
    const AppSpec lw{pair.light.name, pair.light.checkpoint_cost, 1};
    const AppSpec hw{pair.heavy.name, pair.heavy.checkpoint_cost, 1};
    const SwitchSolution sol = solve_switch_point(model, lw, hw, opts);
    pair.k = sol.k;
    pair.model_delta_total = sol.delta_total;
  }
}

double average_delta_factor(const std::vector<AppPair>& pairs) {
  SHIRAZ_REQUIRE(!pairs.empty(), "no pairs");
  double sum = 0.0;
  for (const AppPair& p : pairs) sum += p.delta_factor();
  return sum / static_cast<double>(pairs.size());
}

}  // namespace shiraz::core
