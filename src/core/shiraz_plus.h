// Shiraz+ (paper Section 3, Fig. 8; evaluated in Fig. 13):
//
// Operating at Shiraz's fair switch point, the heavy-weight application sees
// an effectively higher MTBF (it only runs in the low-hazard part of each
// gap), so it can afford a checkpoint interval *larger* than its OCI. Shiraz+
// stretches the heavy-weight interval by an integer factor (2x-4x), trading
// part of Shiraz's throughput gain for a large cut in checkpoint I/O. The
// light-weight schedule is left untouched (paper's two reasons: its I/O is
// small, and changing it would perturb the switch point).
#pragma once

#include <vector>

#include "core/analytical_model.h"
#include "core/switch_solver.h"

namespace shiraz::core {

/// Outcome of one stretch factor, all improvements relative to the
/// switch-at-every-failure baseline for the pair.
struct StretchOutcome {
  unsigned stretch = 1;
  int k = 0;  ///< the Shiraz switch point in force (computed at stretch = 1)
  /// System-level relative changes vs the baseline pair.
  double useful_improvement = 0.0;  ///< (useful_sz+ - useful_base) / useful_base
  double io_reduction = 0.0;        ///< (io_base - io_sz+) / io_base
  /// Per-app useful-work change vs baseline (seconds).
  double delta_lw = 0.0;
  double delta_hw = 0.0;
  /// Raw components for deeper reporting.
  PairOutcome shiraz_plus;
  PairOutcome baseline;
};

/// Evaluates Shiraz+ for each stretch factor in `stretches`, holding the
/// switch point at the Shiraz (stretch = 1) fair optimum — exactly the
/// paper's methodology ("Shiraz+ operates at the optimal switching point
/// determined by Shiraz").
std::vector<StretchOutcome> evaluate_shiraz_plus(const ShirazModel& model,
                                                 const AppSpec& lw, const AppSpec& hw,
                                                 const std::vector<unsigned>& stretches,
                                                 const SolverOptions& options = {});

struct StretchOptimizerOptions {
  /// Largest stretch factor considered.
  unsigned max_stretch = 16;
  /// The throughput floor: smallest acceptable useful-work improvement over
  /// the baseline (0 = "no degradation", the paper's implicit constraint).
  double min_useful_improvement = 0.0;
  SolverOptions solver;
};

/// The optimization problem the paper leaves as future work ("determining the
/// new checkpointing interval for the heavy-weight application"): the largest
/// integer stretch factor whose system-level useful work stays at or above
/// the configured floor. Useful-work improvement decreases monotonically in
/// the stretch factor, so the answer is the last factor above the floor;
/// returns the stretch-1 outcome when even 2x dips below it.
StretchOutcome optimal_stretch(const ShirazModel& model, const AppSpec& lw,
                               const AppSpec& hw,
                               const StretchOptimizerOptions& options = {});

}  // namespace shiraz::core
