#include "apps/catalog.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace shiraz::apps {
namespace {

TEST(Catalog, HasNineTable1Applications) {
  EXPECT_EQ(table1_catalog().size(), 9u);
}

TEST(Catalog, CostsSpanTheTable1Range) {
  const auto catalog = table1_catalog();
  const auto light = lightest(catalog, 1);
  const auto heavy = heaviest(catalog, 1);
  EXPECT_DOUBLE_EQ(light.front().checkpoint_cost, 1.5);
  EXPECT_DOUBLE_EQ(heavy.front().checkpoint_cost, 2700.0);
}

TEST(Catalog, DeltaFactorSpanIs1800x) {
  EXPECT_NEAR(delta_factor_span(table1_catalog()), 2700.0 / 1.5, 1e-9);
}

TEST(Catalog, LightestReturnsAscendingOrder) {
  const auto light = lightest(table1_catalog(), 3);
  ASSERT_EQ(light.size(), 3u);
  EXPECT_DOUBLE_EQ(light[0].checkpoint_cost, 1.5);
  EXPECT_DOUBLE_EQ(light[1].checkpoint_cost, 2.0);
  EXPECT_DOUBLE_EQ(light[2].checkpoint_cost, 6.0);
}

TEST(Catalog, HeaviestReturnsDescendingOrder) {
  const auto heavy = heaviest(table1_catalog(), 3);
  ASSERT_EQ(heavy.size(), 3u);
  EXPECT_DOUBLE_EQ(heavy[0].checkpoint_cost, 2700.0);
  EXPECT_DOUBLE_EQ(heavy[1].checkpoint_cost, 2000.0);
  EXPECT_DOUBLE_EQ(heavy[2].checkpoint_cost, 1800.0);
}

TEST(Catalog, SelectionRejectsOversizedRequests) {
  EXPECT_THROW(lightest(table1_catalog(), 10), InvalidArgument);
  EXPECT_THROW(heaviest(table1_catalog(), 10), InvalidArgument);
}

TEST(Catalog, EveryEntryDocumented) {
  for (const AppProfile& app : table1_catalog()) {
    EXPECT_FALSE(app.name.empty());
    EXPECT_FALSE(app.domain.empty());
    EXPECT_FALSE(app.machine.empty());
    EXPECT_GT(app.checkpoint_cost, 0.0);
  }
}

TEST(Catalog, DeltaFactorSpanRejectsEmpty) {
  EXPECT_THROW(delta_factor_span({}), InvalidArgument);
}

}  // namespace
}  // namespace shiraz::apps
