#include "apps/proxy_app.h"

#include <cstring>
#include <sstream>

#include <gtest/gtest.h>

#include "common/counting_stream.h"
#include "common/error.h"

namespace shiraz::apps {
namespace {

TEST(ProxyApp, StepAdvancesDeterministically) {
  ProxyApp a(ProxyKind::kCoMD, 1);
  ProxyApp b(ProxyKind::kCoMD, 1);
  for (int i = 0; i < 5; ++i) {
    a.step();
    b.step();
  }
  EXPECT_EQ(a.steps_completed(), 5u);
  EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(ProxyApp, StateEvolvesEveryStep) {
  ProxyApp app(ProxyKind::kCoMD, 1);
  const auto before = app.checksum();
  app.step();
  EXPECT_NE(app.checksum(), before);
  const auto after_one = app.checksum();
  app.step();
  EXPECT_NE(app.checksum(), after_one);
}

TEST(ProxyApp, SerializeDeserializeRoundTripsExactly) {
  ProxyApp app(ProxyKind::kSNAP, 2);
  for (int i = 0; i < 3; ++i) app.step();
  std::stringstream buffer;
  app.serialize(buffer);

  ProxyApp restored(ProxyKind::kSNAP, 2);
  restored.deserialize(buffer);
  EXPECT_EQ(restored.steps_completed(), 3u);
  EXPECT_EQ(restored.checksum(), app.checksum());
}

TEST(ProxyApp, RestoreRollsBackForwardProgress) {
  ProxyApp app(ProxyKind::kCoMD, 1);
  app.step();
  std::stringstream ckpt;
  app.serialize(ckpt);
  const auto at_ckpt = app.checksum();

  app.step();
  app.step();
  EXPECT_EQ(app.steps_completed(), 3u);

  app.deserialize(ckpt);
  EXPECT_EQ(app.steps_completed(), 1u);
  EXPECT_EQ(app.checksum(), at_ckpt);
}

TEST(ProxyApp, DeserializeRejectsWrongApp) {
  ProxyApp comd(ProxyKind::kCoMD, 1);
  std::stringstream buffer;
  comd.serialize(buffer);
  ProxyApp snap(ProxyKind::kSNAP, 1);
  EXPECT_THROW(snap.deserialize(buffer), IoError);
}

TEST(ProxyApp, DeserializeRejectsGarbage) {
  ProxyApp app(ProxyKind::kCoMD, 1);
  std::stringstream garbage("not a checkpoint at all");
  EXPECT_THROW(app.deserialize(garbage), IoError);
}

TEST(ProxyApp, DeserializeRejectsTruncation) {
  ProxyApp app(ProxyKind::kCoMD, 1);
  std::stringstream buffer;
  app.serialize(buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(app.deserialize(truncated), IoError);
}

TEST(ProxyApp, StateBytesMatchesSerializedSize) {
  for (const ProxyApp& app : fig3_proxy_suite()) {
    std::stringstream buffer;
    app.serialize(buffer);
    EXPECT_EQ(static_cast<Bytes>(buffer.str().size()), app.state_bytes()) << app.name();
  }
}

TEST(ProxyApp, StateBytesMatchesCountingStreamForAllNineApps) {
  // The byte-accounting invariant underlying the prototype's IoResult: for
  // every Fig 3 app, the counting stream observes exactly state_bytes()
  // bytes of serialized checkpoint.
  for (const ProxyApp& app : fig3_proxy_suite()) {
    std::ostringstream sink;
    CountingStreambuf counter(*sink.rdbuf());
    std::ostream counted(&counter);
    app.serialize(counted);
    EXPECT_EQ(counter.bytes_written(), app.state_bytes()) << app.name();
    EXPECT_EQ(static_cast<Bytes>(sink.str().size()), counter.bytes_written())
        << app.name();
  }
}

TEST(ProxyApp, RejectsCheckpointWrittenWithLegacyBrokenMagic) {
  // Regression: the seed shipped kMagic = 0x5348495241501 — a 13-hex-digit
  // constant that does not encode the claimed "SHIRAZP" (0x53484952415A50).
  // A checkpoint carrying the old magic must be rejected up front.
  ProxyApp app(ProxyKind::kCoMD, 1);
  std::stringstream buffer;
  app.serialize(buffer);
  std::string bytes = buffer.str();
  const std::uint64_t legacy_magic = 0x5348495241501ULL;
  std::memcpy(bytes.data(), &legacy_magic, sizeof(legacy_magic));
  std::stringstream corrupted(bytes);
  try {
    app.deserialize(corrupted);
    FAIL() << "a legacy-magic checkpoint must be rejected";
  } catch (const IoError& e) {
    EXPECT_STREQ(e.what(), "bad proxy checkpoint magic");
  }
}

TEST(ProxyApp, ConfigGrowsState) {
  for (const ProxyKind kind : {ProxyKind::kCoMD, ProxyKind::kSNAP, ProxyKind::kMiniFE}) {
    const ProxyApp c1(kind, 1);
    const ProxyApp c2(kind, 2);
    const ProxyApp c3(kind, 3);
    EXPECT_LT(c1.state_bytes(), c2.state_bytes()) << to_string(kind);
    EXPECT_LT(c2.state_bytes(), c3.state_bytes()) << to_string(kind);
  }
}

TEST(ProxyApp, Fig3CostRatiosMatchPaper) {
  // Section 5: miniFE-to-CoMD checkpoint ratio ~30x at config 1 (measured in
  // time; the byte ratio sits near 39x because fixed per-file I/O overhead
  // compresses small-file times upward).
  const ProxyApp comd(ProxyKind::kCoMD, 1);
  const ProxyApp minife(ProxyKind::kMiniFE, 1);
  const double ratio = static_cast<double>(minife.state_bytes()) /
                       static_cast<double>(comd.state_bytes());
  EXPECT_NEAR(ratio, 39.0, 3.0);

  // Fig 3: overall spread exceeds 40x (heaviest miniFE vs lightest CoMD).
  const ProxyApp minife3(ProxyKind::kMiniFE, 3);
  const double spread = static_cast<double>(minife3.state_bytes()) /
                        static_cast<double>(comd.state_bytes());
  EXPECT_GT(spread, 45.0);
  EXPECT_LT(spread, 70.0);
}

TEST(ProxyApp, SuiteHasAllNineCombinations) {
  const auto suite = fig3_proxy_suite();
  ASSERT_EQ(suite.size(), 9u);
  EXPECT_EQ(suite[0].name(), "CoMD-config1");
  EXPECT_EQ(suite[8].name(), "miniFE-config3");
}

TEST(ProxyApp, RejectsBadConfig) {
  EXPECT_THROW(ProxyApp(ProxyKind::kCoMD, 0), InvalidArgument);
  EXPECT_THROW(ProxyApp(ProxyKind::kCoMD, 4), InvalidArgument);
}

}  // namespace
}  // namespace shiraz::apps
