#include "core/failure_math.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "reliability/weibull.h"

namespace shiraz::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(FailureWindow, ScaleDerivedFromMtbfAsInEq2) {
  // lambda = M / Gamma(1 + 1/beta); checked against the Weibull whose mean is M.
  const FailureWindowModel m(hours(5.0), 0.6);
  const reliability::Weibull w = reliability::Weibull::from_mtbf(0.6, hours(5.0));
  EXPECT_NEAR(m.scale(), w.scale(), 1e-6);
}

TEST(FailureWindow, SurvivalMatchesWeibull) {
  const FailureWindowModel m(hours(5.0), 0.6);
  const reliability::Weibull w = reliability::Weibull::from_mtbf(0.6, hours(5.0));
  for (double t = 600.0; t < hours(40.0); t *= 2.0) {
    EXPECT_NEAR(m.survival(t), w.survival(t), 1e-12);
  }
  EXPECT_DOUBLE_EQ(m.survival(0.0), 1.0);
  EXPECT_DOUBLE_EQ(m.survival(kInf), 0.0);
}

TEST(FailureWindow, WindowsPartitionTotalMass) {
  // Summing adjacent windows must reproduce the enclosing window (Eq 2 is a
  // telescoping difference of survivals).
  const FailureWindowModel m(hours(5.0), 0.6);
  const double t_total = hours(1000.0);
  const double whole = m.failures_in_window(t_total, 0.0, hours(10.0));
  double parts = 0.0;
  for (int i = 0; i < 10; ++i) {
    parts += m.failures_in_window(t_total, hours(i), hours(i + 1));
  }
  EXPECT_NEAR(parts, whole, 1e-9);
}

TEST(FailureWindow, FullWindowEqualsGapCount) {
  const FailureWindowModel m(hours(5.0), 0.6);
  const double t_total = hours(1000.0);
  EXPECT_NEAR(m.failures_in_window(t_total, 0.0, kInf), t_total / hours(5.0), 1e-9);
}

TEST(FailureWindow, TotalFailuresNearGapCountForLongCampaigns) {
  // Eq 3: for T_total >> M the truncation factor vanishes.
  const FailureWindowModel m(hours(5.0), 0.6);
  EXPECT_NEAR(m.total_failures(hours(1000.0)), 200.0, 0.01);
  // For short campaigns it matters.
  EXPECT_LT(m.total_failures(hours(2.0)), 2.0 / 5.0);
}

TEST(FailureWindow, EarlyWindowsHoldMoreMassThanLateOnes) {
  // The decreasing-hazard property at the heart of Shiraz: equal-width
  // windows right after a failure catch more failures than windows near the
  // MTBF.
  const FailureWindowModel m(hours(5.0), 0.6);
  const double t_total = hours(1000.0);
  const double early = m.failures_in_window(t_total, 0.0, hours(1.0));
  const double late = m.failures_in_window(t_total, hours(4.0), hours(5.0));
  EXPECT_GT(early, 2.0 * late);
}

TEST(FailureWindow, ExponentialShapeHasMemorylessWindows) {
  const FailureWindowModel m(hours(5.0), 1.0);
  const double t_total = hours(1000.0);
  const double w1 = m.failures_in_window(t_total, 0.0, hours(1.0));
  const double w2 = m.failures_in_window(t_total, hours(1.0), hours(2.0));
  // Ratio of consecutive equal windows is exactly e^{-1/5} for beta = 1.
  EXPECT_NEAR(w2 / w1, std::exp(-1.0 / 5.0), 1e-9);
}

TEST(FailureWindow, MonteCarloGapLengthsMatchWindowCounts) {
  // Empirical check of Eq 2: generate gaps, bucket them by length, compare
  // to the model's expected counts.
  const double beta = 0.6;
  const Seconds mtbf = hours(5.0);
  const FailureWindowModel m(mtbf, beta);
  const reliability::Weibull w = reliability::Weibull::from_mtbf(beta, mtbf);
  Rng rng(31);
  const int gaps = 200'000;
  const double t_total = static_cast<double>(gaps) * mtbf;

  int in_window = 0;
  for (int i = 0; i < gaps; ++i) {
    const Seconds g = w.sample(rng);
    if (g > hours(2.0) && g <= hours(6.0)) ++in_window;
  }
  const double expected = m.failures_in_window(t_total, hours(2.0), hours(6.0));
  EXPECT_NEAR(static_cast<double>(in_window) / expected, 1.0, 0.02);
}

TEST(FailureWindow, RejectsBadArguments) {
  EXPECT_THROW(FailureWindowModel(0.0, 0.6), InvalidArgument);
  EXPECT_THROW(FailureWindowModel(hours(5.0), 0.0), InvalidArgument);
  const FailureWindowModel m(hours(5.0), 0.6);
  EXPECT_THROW(m.failures_in_window(-1.0, 0.0, 1.0), InvalidArgument);
  EXPECT_THROW(m.failures_in_window(100.0, 2.0, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace shiraz::core
