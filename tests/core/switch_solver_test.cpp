#include "core/switch_solver.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace shiraz::core {
namespace {

ShirazModel make_model(double mtbf_hours) {
  ModelConfig cfg;
  cfg.mtbf = hours(mtbf_hours);
  cfg.t_total = hours(1000.0);
  return ShirazModel(cfg);
}

AppSpec heavy() { return {"hw", hours(0.5), 1}; }
AppSpec light(double delta_factor) { return {"lw", hours(0.5) / delta_factor, 1}; }

// -----------------------------------------------------------------------
// Table 2 reproduction: the paper's model switch points, tolerance +-1
// (the paper itself reports model-vs-sim differences up to 2).
// -----------------------------------------------------------------------

struct Table2Case {
  double mtbf_hours;
  double delta_factor;
  int paper_k;
};

class Table2SwitchPoint : public ::testing::TestWithParam<Table2Case> {};

TEST_P(Table2SwitchPoint, ModelMatchesPaper) {
  const auto [mtbf_hours, factor, paper_k] = GetParam();
  const ShirazModel model = make_model(mtbf_hours);
  const SwitchSolution sol = solve_switch_point(model, light(factor), heavy());
  ASSERT_TRUE(sol.beneficial());
  EXPECT_NEAR(*sol.k, paper_k, 1.0)
      << "MTBF=" << mtbf_hours << "h, delta-factor=" << factor;
}

INSTANTIATE_TEST_SUITE_P(PaperScenarios, Table2SwitchPoint,
                         ::testing::Values(Table2Case{5.0, 5.0, 6},
                                           Table2Case{5.0, 25.0, 13},
                                           Table2Case{5.0, 100.0, 26},
                                           Table2Case{5.0, 1000.0, 81},
                                           Table2Case{20.0, 5.0, 12},
                                           Table2Case{20.0, 25.0, 26},
                                           Table2Case{20.0, 100.0, 51},
                                           Table2Case{20.0, 1000.0, 161}));

// -----------------------------------------------------------------------
// Structural properties of the solver.
// -----------------------------------------------------------------------

TEST(Solver, DeltaLwMonotoneUpDeltaHwMonotoneDown) {
  const ShirazModel model = make_model(5.0);
  SolverOptions opts;
  opts.max_k = 60;
  const SwitchSolution sol = solve_switch_point(model, light(100.0), heavy(), opts);
  ASSERT_GE(sol.sweep.size(), 40u);
  for (std::size_t i = 1; i < sol.sweep.size(); ++i) {
    EXPECT_GE(sol.sweep[i].delta_lw, sol.sweep[i - 1].delta_lw - 1.0);
    EXPECT_LE(sol.sweep[i].delta_hw, sol.sweep[i - 1].delta_hw + 1.0);
  }
}

TEST(Solver, FairPointBalancesGains) {
  const ShirazModel model = make_model(20.0);
  const SwitchSolution sol = solve_switch_point(model, light(25.0), heavy());
  ASSERT_TRUE(sol.beneficial());
  // At the fair point the two gains are within ~a segment of each other.
  EXPECT_NEAR(sol.delta_lw, sol.delta_hw,
              0.15 * std::max(sol.delta_lw, sol.delta_hw) +
                  model.segment(light(25.0)));
}

TEST(Solver, RegionOfInterestBracketsTheFairPoint) {
  // Fig 10: at MTBF 5h, delta-factor 100, the region of interest is k in
  // [24, 28] and the fair point 26.
  const ShirazModel model = make_model(5.0);
  const SwitchSolution sol = solve_switch_point(model, light(100.0), heavy());
  ASSERT_TRUE(sol.beneficial());
  ASSERT_TRUE(sol.region_lo.has_value());
  ASSERT_TRUE(sol.region_hi.has_value());
  EXPECT_LE(*sol.region_lo, *sol.k);
  EXPECT_GE(*sol.region_hi, *sol.k);
  EXPECT_GE(*sol.region_lo, 22);
  EXPECT_LE(*sol.region_hi, 30);
}

TEST(Solver, TotalImprovementGrowsWithDeltaFactor) {
  // Paper observation (2) on Fig 11.
  const ShirazModel model = make_model(5.0);
  double prev = 0.0;
  for (const double factor : {25.0, 100.0, 1000.0}) {
    const SwitchSolution sol = solve_switch_point(model, light(factor), heavy());
    ASSERT_TRUE(sol.beneficial()) << factor;
    EXPECT_GT(sol.delta_total, prev) << factor;
    prev = sol.delta_total;
  }
}

TEST(Solver, ImprovementLargerAtLowerMtbf) {
  // Paper: 19h (petascale) -> 33h (exascale) at delta-factor 100; check the
  // ordering and rough magnitudes.
  const SwitchSolution exa =
      solve_switch_point(make_model(5.0), light(100.0), heavy());
  const SwitchSolution peta =
      solve_switch_point(make_model(20.0), light(100.0), heavy());
  ASSERT_TRUE(exa.beneficial());
  ASSERT_TRUE(peta.beneficial());
  EXPECT_GT(exa.delta_total, peta.delta_total);
  EXPECT_NEAR(as_hours(exa.delta_total), 33.0, 12.0);
  EXPECT_NEAR(as_hours(peta.delta_total), 19.0, 8.0);
}

TEST(Solver, SwitchPointGrowsWithMtbf) {
  // Paper observation (3): k* increases from 6 to 12 as exa -> peta at
  // delta-factor 5.
  const SwitchSolution exa = solve_switch_point(make_model(5.0), light(5.0), heavy());
  const SwitchSolution peta = solve_switch_point(make_model(20.0), light(5.0), heavy());
  ASSERT_TRUE(exa.beneficial());
  ASSERT_TRUE(peta.beneficial());
  EXPECT_GT(*peta.k, *exa.k);
}

TEST(Solver, SwitchTimeExceedsMtbf) {
  // Paper: switching happens *after* the MTBF (6.6h at 5h MTBF; 25.2h at 20h)
  // — the insight that a naive MTBF/2 switch is far too early.
  for (const double mtbf_hours : {5.0, 20.0}) {
    const ShirazModel model = make_model(mtbf_hours);
    const SwitchSolution sol = solve_switch_point(model, light(5.0), heavy());
    ASSERT_TRUE(sol.beneficial());
    EXPECT_GT(model.switch_time(light(5.0), *sol.k), hours(mtbf_hours));
  }
}

TEST(Solver, IdenticalAppsYieldNoBenefit) {
  // Equal checkpoint costs leave nothing to exploit; Shiraz must return the
  // "no beneficial switch" sentinel rather than a fake optimum.
  const ShirazModel model = make_model(5.0);
  const AppSpec a{"a", hours(0.5), 1};
  const AppSpec b{"b", hours(0.5), 1};
  const SwitchSolution sol = solve_switch_point(model, a, b);
  EXPECT_FALSE(sol.beneficial());
}

TEST(Solver, EvaluateSwitchPointConsistentWithSweep) {
  const ShirazModel model = make_model(5.0);
  const SwitchSolution sol = solve_switch_point(model, light(25.0), heavy());
  ASSERT_TRUE(sol.beneficial());
  const SwitchCandidate c = evaluate_switch_point(model, light(25.0), heavy(), *sol.k);
  EXPECT_NEAR(c.delta_lw, sol.delta_lw, 1e-6);
  EXPECT_NEAR(c.delta_hw, sol.delta_hw, 1e-6);
}

TEST(Solver, KeepSweepFalseStillFindsSameK) {
  const ShirazModel model = make_model(20.0);
  SolverOptions with;
  with.keep_sweep = true;
  SolverOptions without;
  without.keep_sweep = false;
  const SwitchSolution a = solve_switch_point(model, light(100.0), heavy(), with);
  const SwitchSolution b = solve_switch_point(model, light(100.0), heavy(), without);
  ASSERT_TRUE(a.beneficial());
  ASSERT_TRUE(b.beneficial());
  EXPECT_EQ(*a.k, *b.k);
  EXPECT_TRUE(b.sweep.empty());
}

TEST(Solver, RejectsBadOptions) {
  const ShirazModel model = make_model(5.0);
  SolverOptions opts;
  opts.max_k = 0;
  EXPECT_THROW(solve_switch_point(model, light(5.0), heavy(), opts), InvalidArgument);
}

}  // namespace
}  // namespace shiraz::core
