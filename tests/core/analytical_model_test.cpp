#include "core/analytical_model.h"

#include <limits>

#include <gtest/gtest.h>

#include "common/error.h"

namespace shiraz::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ModelConfig exascale_config() {
  ModelConfig cfg;
  cfg.mtbf = hours(5.0);
  cfg.t_total = hours(1000.0);
  return cfg;
}

TEST(Model, IntervalUsesYoungConventionByDefault) {
  // The convention that reproduces the paper's numbers: OCI = sqrt(2 M delta),
  // so for M = 5h, delta = 0.1h the segment is exactly 1.1h (6 segments ->
  // the 6.6h switch time quoted in Section 5).
  const ShirazModel model(exascale_config());
  const AppSpec app{"a", hours(0.1), 1};
  EXPECT_NEAR(model.interval(app), hours(1.0), 1e-9);
  EXPECT_NEAR(model.segment(app), hours(1.1), 1e-9);
  EXPECT_NEAR(model.switch_time(app, 6), hours(6.6), 1e-9);
}

TEST(Model, StretchMultipliesInterval) {
  const ShirazModel model(exascale_config());
  const AppSpec base{"a", hours(0.5), 1};
  const AppSpec stretched{"a", hours(0.5), 3};
  EXPECT_NEAR(model.interval(stretched), 3.0 * model.interval(base), 1e-9);
  // The checkpoint cost inside the segment does not stretch.
  EXPECT_NEAR(model.segment(stretched) - model.interval(stretched), hours(0.5), 1e-9);
}

TEST(Model, BaselineUsefulPlusOverheadsStayWithinExposure) {
  const ShirazModel model(exascale_config());
  const AppSpec app{"a", 300.0, 1};
  const Components base = model.baseline(app);
  EXPECT_GT(base.useful, 0.0);
  EXPECT_GT(base.io, 0.0);
  EXPECT_GT(base.lost, 0.0);
  // The app is exposed for t_total / 2; the epsilon lost-work approximation
  // can overshoot the exact budget by a percent or so.
  EXPECT_LT(base.useful + base.io + base.lost, hours(500.0) * 1.02);
  EXPECT_GT(base.useful + base.io + base.lost, hours(450.0));
}

TEST(Model, FirstAppUsefulGrowsWithSwitchTime) {
  const ShirazModel model(exascale_config());
  const AppSpec app{"a", 300.0, 1};
  double prev = 0.0;
  for (int k = 1; k <= 8; ++k) {
    const Components c =
        model.first_app(app, model.switch_time(app, k), hours(1000.0));
    EXPECT_GT(c.useful, prev);
    prev = c.useful;
  }
}

TEST(Model, FirstAppAtInfinityEqualsBaselineShape) {
  // Baseline is defined as first_app with infinite switch time over half the
  // campaign; doubling the exposure must exactly double every component.
  const ShirazModel model(exascale_config());
  const AppSpec app{"a", 300.0, 1};
  const Components base = model.baseline(app);
  const Components full = model.first_app(app, kInf, hours(1000.0));
  EXPECT_NEAR(full.useful, 2.0 * base.useful, 1e-6);
  EXPECT_NEAR(full.io, 2.0 * base.io, 1e-6);
  EXPECT_NEAR(full.lost, 2.0 * base.lost, 1e-6);
}

TEST(Model, SecondAppUsefulShrinksWithLaterStart) {
  const ShirazModel model(exascale_config());
  const AppSpec app{"a", 300.0, 1};
  double prev = kInf;
  for (const double frac : {0.0, 0.2, 0.5, 1.0, 2.0}) {
    const Components c = model.second_app(app, frac * hours(5.0), hours(1000.0));
    EXPECT_LT(c.useful, prev);
    prev = c.useful;
  }
}

TEST(Model, SecondAppAtZeroEqualsFirstAppAtInfinity) {
  // Starting at the failure and running to the next failure is the same
  // execution shape as never being switched out.
  const ShirazModel model(exascale_config());
  const AppSpec app{"a", 300.0, 1};
  const Components second = model.second_app(app, 0.0, hours(1000.0));
  const Components first = model.first_app(app, kInf, hours(1000.0));
  EXPECT_NEAR(second.useful, first.useful, first.useful * 1e-6);
  EXPECT_NEAR(second.io, first.io, first.io * 1e-6);
  EXPECT_NEAR(second.lost, first.lost, first.lost * 1e-6);
}

TEST(Model, SecondAppLostWorkScalesWithTailMass) {
  // Lost work for the second app is epsilon * segment * gaps * S(t_start).
  const ShirazModel model(exascale_config());
  const AppSpec app{"a", 300.0, 1};
  const Components c = model.second_app(app, hours(5.0), hours(1000.0));
  const double expected = 0.45 * model.segment(app) * 200.0 *
                          model.failures().survival(hours(5.0));
  EXPECT_NEAR(c.lost, expected, 1e-6);
}

TEST(Model, HeavierAppLosesMorePerFailure) {
  // Fig 5's point: larger OCI -> larger average lost work per failure.
  const ShirazModel model(exascale_config());
  const AppSpec light{"lw", 30.0, 1};
  const AppSpec heavy{"hw", 1800.0, 1};
  const Components lb = model.baseline(light);
  const Components hb = model.baseline(heavy);
  EXPECT_GT(hb.lost, lb.lost);
}

TEST(Model, ShirazComponentsAddUpAcrossRoles) {
  // LW time share + HW time share + lost + io + useful must stay within the
  // campaign: useful+io+lost <= t_total for the pair (some gap time is spent
  // on partial segments already accounted as lost).
  const ShirazModel model(exascale_config());
  const AppSpec lw{"lw", 18.0, 1};
  const AppSpec hw{"hw", 1800.0, 1};
  const PairOutcome out = model.shiraz(lw, hw, 26);
  const double total = out.total_useful() + out.total_io() + out.total_lost();
  EXPECT_LT(total, hours(1000.0) * 1.02);
  EXPECT_GT(total, hours(800.0));
}

TEST(Model, ShirazAtZeroGivesLwNothing) {
  const ShirazModel model(exascale_config());
  const AppSpec lw{"lw", 18.0, 1};
  const AppSpec hw{"hw", 1800.0, 1};
  const PairOutcome out = model.shiraz(lw, hw, 0);
  EXPECT_DOUBLE_EQ(out.lw.useful, 0.0);
  EXPECT_DOUBLE_EQ(out.lw.io, 0.0);
  EXPECT_DOUBLE_EQ(out.lw.lost, 0.0);
  EXPECT_GT(out.hw.useful, 0.0);
}

TEST(Model, LwLostVanishesForHugeK) {
  // With the switch point deep in the Weibull tail, almost every failure
  // strikes while LW runs, so HW's lost work goes to ~0 and LW's lost work
  // approaches the all-failures value.
  const ShirazModel model(exascale_config());
  const AppSpec lw{"lw", 18.0, 1};
  const AppSpec hw{"hw", 1800.0, 1};
  const PairOutcome out = model.shiraz(lw, hw, 2000);
  EXPECT_LT(out.hw.lost, 1.0);
  EXPECT_LT(out.hw.useful, 1.0);
}

TEST(Model, EpsilonScalesLostWorkLinearly) {
  ModelConfig a = exascale_config();
  ModelConfig b = exascale_config();
  a.epsilon = 0.3;
  b.epsilon = 0.6;
  const AppSpec app{"a", 300.0, 1};
  const Components ca = ShirazModel(a).baseline(app);
  const Components cb = ShirazModel(b).baseline(app);
  EXPECT_NEAR(cb.lost / ca.lost, 2.0, 1e-9);
  EXPECT_NEAR(cb.useful, ca.useful, 1e-9);  // epsilon only affects lost work
}

TEST(Model, RejectsBadConfigAndArguments) {
  ModelConfig bad = exascale_config();
  bad.epsilon = 1.5;
  EXPECT_THROW(ShirazModel{bad}, InvalidArgument);
  ModelConfig bad2 = exascale_config();
  bad2.t_total = 0.0;
  EXPECT_THROW(ShirazModel{bad2}, InvalidArgument);

  const ShirazModel model(exascale_config());
  const AppSpec app{"a", 300.0, 1};
  EXPECT_THROW(model.first_app(app, -1.0, hours(10.0)), InvalidArgument);
  EXPECT_THROW(model.second_app(app, -1.0, hours(10.0)), InvalidArgument);
  EXPECT_THROW(model.switch_time(app, -1), InvalidArgument);
  const AppSpec zero_stretch{"a", 300.0, 0};
  EXPECT_THROW(model.interval(zero_stretch), InvalidArgument);
}

TEST(Model, OciFormulaSelectionChangesSegments) {
  ModelConfig young = exascale_config();
  ModelConfig daly = exascale_config();
  daly.oci_formula = checkpoint::OciFormula::kDalyFirstOrder;
  const AppSpec app{"a", hours(0.1), 1};
  EXPECT_GT(ShirazModel(young).interval(app), ShirazModel(daly).interval(app));
}

}  // namespace
}  // namespace shiraz::core
