#include "core/shiraz_plus.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace shiraz::core {
namespace {

ShirazModel make_model(double mtbf_hours) {
  ModelConfig cfg;
  cfg.mtbf = hours(mtbf_hours);
  cfg.t_total = hours(1000.0);
  return ShirazModel(cfg);
}

AppSpec heavy() { return {"hw", hours(0.5), 1}; }
AppSpec light(double factor) { return {"lw", hours(0.5) / factor, 1}; }

TEST(ShirazPlus, IoReductionGrowsWithStretchFactor) {
  const ShirazModel model = make_model(5.0);
  const auto outcomes = evaluate_shiraz_plus(model, light(25.0), heavy(), {2, 3, 4});
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_GT(outcomes[0].io_reduction, 0.15);
  EXPECT_GT(outcomes[1].io_reduction, outcomes[0].io_reduction);
  EXPECT_GT(outcomes[2].io_reduction, outcomes[1].io_reduction);
}

TEST(ShirazPlus, AveragesRoughly40PercentIoReductionAcrossScenarios) {
  // Paper Fig 13 headline: "The average reduction in checkpointing overhead is
  // approximately 40%" over stretch factors 2-4, MTBF {5,20}, factor {5..1000}.
  double total = 0.0;
  int n = 0;
  for (const double mtbf_hours : {5.0, 20.0}) {
    for (const double factor : {5.0, 25.0, 100.0, 1000.0}) {
      const ShirazModel model = make_model(mtbf_hours);
      for (const auto& o :
           evaluate_shiraz_plus(model, light(factor), heavy(), {2, 3, 4})) {
        total += o.io_reduction;
        ++n;
      }
    }
  }
  EXPECT_NEAR(total / n, 0.40, 0.15);
}

TEST(ShirazPlus, StretchOneReproducesPlainShiraz) {
  const ShirazModel model = make_model(5.0);
  const auto outcomes = evaluate_shiraz_plus(model, light(100.0), heavy(), {1});
  ASSERT_EQ(outcomes.size(), 1u);
  const SwitchSolution shiraz = solve_switch_point(model, light(100.0), heavy());
  ASSERT_TRUE(shiraz.beneficial());
  EXPECT_EQ(outcomes[0].k, *shiraz.k);
  EXPECT_NEAR(outcomes[0].delta_lw, shiraz.delta_lw, 1e-6);
  EXPECT_NEAR(outcomes[0].delta_hw, shiraz.delta_hw, 1e-6);
  EXPECT_NEAR(outcomes[0].io_reduction, 0.0, 0.12);  // Shiraz itself moves io a bit
}

TEST(ShirazPlus, PerformanceDegradationStaysSmall) {
  // Paper: at 3x/4x the maximum degradation over baseline stays below ~5%.
  for (const double mtbf_hours : {5.0, 20.0}) {
    const ShirazModel model = make_model(mtbf_hours);
    for (const double factor : {25.0, 100.0}) {
      for (const auto& o :
           evaluate_shiraz_plus(model, light(factor), heavy(), {2, 3, 4})) {
        EXPECT_GT(o.useful_improvement, -0.05)
            << "mtbf=" << mtbf_hours << " factor=" << factor << " s=" << o.stretch;
      }
    }
  }
}

TEST(ShirazPlus, TwoXStretchKeepsPartOfShirazGain) {
  // Paper: "using a 2x OCI-stretch always keeps a part of the performance
  // improvement obtained by Shiraz".
  for (const double mtbf_hours : {5.0, 20.0}) {
    const ShirazModel model = make_model(mtbf_hours);
    for (const double factor : {25.0, 100.0, 1000.0}) {
      const auto outcomes = evaluate_shiraz_plus(model, light(factor), heavy(), {2});
      EXPECT_GT(outcomes[0].useful_improvement, 0.0)
          << "mtbf=" << mtbf_hours << " factor=" << factor;
    }
  }
}

TEST(ShirazPlus, LightWeightAppUnaffectedByStretch) {
  // Shiraz+ only touches the heavy-weight schedule (paper Section 3).
  const ShirazModel model = make_model(5.0);
  const auto outcomes = evaluate_shiraz_plus(model, light(100.0), heavy(), {1, 2, 3, 4});
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_NEAR(outcomes[i].shiraz_plus.lw.useful, outcomes[0].shiraz_plus.lw.useful,
                1e-6);
    EXPECT_NEAR(outcomes[i].shiraz_plus.lw.io, outcomes[0].shiraz_plus.lw.io, 1e-6);
  }
}

TEST(ShirazPlus, HwCheckpointCountDropsRoughlyByStretch) {
  const ShirazModel model = make_model(20.0);
  const auto outcomes = evaluate_shiraz_plus(model, light(100.0), heavy(), {1, 4});
  const double io1 = outcomes[0].shiraz_plus.hw.io;
  const double io4 = outcomes[1].shiraz_plus.hw.io;
  // Stretching 4x lengthens segments ~4x, so checkpoint I/O falls steeply
  // (not exactly 4x: longer segments complete less often under failures).
  EXPECT_LT(io4, 0.45 * io1);
}

TEST(ShirazPlus, RejectsPreStretchedSpecs) {
  const ShirazModel model = make_model(5.0);
  AppSpec hw = heavy();
  hw.stretch = 2;
  EXPECT_THROW(evaluate_shiraz_plus(model, light(25.0), hw, {2}), InvalidArgument);
}

TEST(ShirazPlus, RejectsPairWithoutBeneficialSwitch) {
  const ShirazModel model = make_model(5.0);
  const AppSpec a{"a", hours(0.5), 1};
  const AppSpec b{"b", hours(0.5), 1};
  EXPECT_THROW(evaluate_shiraz_plus(model, a, b, {2}), InvalidArgument);
}

TEST(ShirazPlus, RejectsZeroStretch) {
  const ShirazModel model = make_model(5.0);
  EXPECT_THROW(evaluate_shiraz_plus(model, light(25.0), heavy(), {0}), InvalidArgument);
}

}  // namespace
}  // namespace shiraz::core
