// Parameterized sweeps over the window_app primitive — the building block
// every scheduling shape reduces to (see docs/MODEL.md §2).
#include <gtest/gtest.h>

#include "core/analytical_model.h"

namespace shiraz::core {
namespace {

struct WindowCase {
  double mtbf_hours;
  double beta;
  double delta_seconds;
};

std::string window_name(const ::testing::TestParamInfo<WindowCase>& info) {
  return "mtbf" + std::to_string(static_cast<int>(info.param.mtbf_hours)) +
         "_beta" + std::to_string(static_cast<int>(info.param.beta * 10)) +
         "_delta" + std::to_string(static_cast<int>(info.param.delta_seconds));
}

class WindowSweep : public ::testing::TestWithParam<WindowCase> {
 protected:
  WindowSweep() : model_(make_config()) {}

  ModelConfig make_config() const {
    ModelConfig cfg;
    cfg.mtbf = hours(GetParam().mtbf_hours);
    cfg.weibull_shape = GetParam().beta;
    cfg.t_total = hours(1000.0);
    return cfg;
  }

  AppSpec app() const { return {"a", GetParam().delta_seconds, 1}; }

  ShirazModel model_;
};

TEST_P(WindowSweep, UsefulMonotoneInWindowLength) {
  double prev = -1.0;
  for (int k = 0; k <= 24; k += 3) {
    const Components c = model_.window_app(app(), hours(0.5), k, hours(1000.0));
    EXPECT_GE(c.useful, prev);
    prev = c.useful;
  }
}

TEST_P(WindowSweep, UsefulDecreasesWithLaterStart) {
  double prev = 1e300;
  for (const double start_frac : {0.0, 0.25, 0.75, 1.5, 3.0}) {
    const Components c = model_.window_app(
        app(), start_frac * model_.config().mtbf, 10, hours(1000.0));
    EXPECT_LE(c.useful, prev + 1e-9);
    prev = c.useful;
  }
}

TEST_P(WindowSweep, AdjacentWindowsComposeExactly) {
  // Splitting a 12-checkpoint window into two back-to-back 6-checkpoint
  // windows changes nothing: the second window's re-zeroed credit ladder is
  // exactly compensated by the first window's tail credit (telescoping sum —
  // see docs/MODEL.md §2). All three components must match to rounding.
  const Seconds seg = model_.segment(app());
  const Components whole = model_.window_app(app(), 0.0, 12, hours(1000.0));
  const Components first = model_.window_app(app(), 0.0, 6, hours(1000.0));
  const Components second =
      model_.window_app(app(), 6.0 * seg, 6, hours(1000.0));
  EXPECT_NEAR(first.useful + second.useful, whole.useful, 1e-6);
  EXPECT_NEAR(first.io + second.io, whole.io, 1e-6);
  EXPECT_NEAR(first.lost + second.lost, whole.lost, 1e-6);
}

TEST_P(WindowSweep, IoIsDeltaPerOciOfUseful) {
  // Per completed segment the app banks OCI useful and delta of I/O, so the
  // ratio is fixed by construction.
  const Components c = model_.window_app(app(), hours(1.0), 15, hours(1000.0));
  if (c.useful > 0.0) {
    EXPECT_NEAR(c.io / c.useful, app().delta / model_.interval(app()), 1e-9);
  }
}

TEST_P(WindowSweep, LostWorkBoundedByWindowExposure) {
  const Seconds t0 = hours(0.5);
  const int k = 10;
  const Components c = model_.window_app(app(), t0, k, hours(1000.0));
  const double max_failures = model_.failures().failures_in_window(
      hours(1000.0), t0, t0 + k * model_.segment(app()));
  EXPECT_LE(c.lost,
            model_.config().epsilon * model_.segment(app()) * max_failures + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WindowSweep,
    ::testing::Values(WindowCase{5.0, 0.6, 30.0}, WindowCase{5.0, 0.6, 300.0},
                      WindowCase{20.0, 0.6, 300.0}, WindowCase{20.0, 0.4, 120.0},
                      WindowCase{10.0, 0.8, 60.0}, WindowCase{2.0, 0.5, 20.0}),
    window_name);

}  // namespace
}  // namespace shiraz::core
