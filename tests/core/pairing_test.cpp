#include "core/pairing.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "apps/catalog.h"
#include "common/error.h"

namespace shiraz::core {
namespace {

std::vector<apps::AppProfile> ten_apps() {
  // The paper's Fig 14 mix: Table 1's nine applications plus a tenth drawn
  // from the light end, giving an even count.
  auto catalog = apps::table1_catalog();
  catalog.push_back(apps::AppProfile{"CoMD-like proxy", 3.0, "Materials", "local"});
  return catalog;
}

TEST(Pairing, ExtremePairsHeaviestWithLightest) {
  Rng rng(1);
  const auto pairs = make_pairs(ten_apps(), PairingStrategy::kExtreme, rng);
  ASSERT_EQ(pairs.size(), 5u);
  EXPECT_DOUBLE_EQ(pairs[0].light.checkpoint_cost, 1.5);
  EXPECT_DOUBLE_EQ(pairs[0].heavy.checkpoint_cost, 2700.0);
  EXPECT_DOUBLE_EQ(pairs[1].light.checkpoint_cost, 2.0);
  EXPECT_DOUBLE_EQ(pairs[1].heavy.checkpoint_cost, 2000.0);
}

TEST(Pairing, EveryAppAppearsExactlyOnce) {
  for (const auto strategy : {PairingStrategy::kExtreme, PairingStrategy::kRandom}) {
    Rng rng(2);
    const auto pairs = make_pairs(ten_apps(), strategy, rng);
    std::multiset<std::string> names;
    for (const auto& p : pairs) {
      names.insert(p.light.name);
      names.insert(p.heavy.name);
    }
    EXPECT_EQ(names.size(), 10u);
    for (const auto& app : ten_apps()) EXPECT_EQ(names.count(app.name), 1u) << app.name;
  }
}

TEST(Pairing, PairsOrderedLightToHeavy) {
  Rng rng(3);
  for (const auto strategy : {PairingStrategy::kExtreme, PairingStrategy::kRandom}) {
    const auto pairs = make_pairs(ten_apps(), strategy, rng);
    for (const auto& p : pairs) {
      EXPECT_LE(p.light.checkpoint_cost, p.heavy.checkpoint_cost);
      EXPECT_GE(p.delta_factor(), 1.0);
    }
  }
}

TEST(Pairing, ExtremeMaximizesAverageDeltaFactor) {
  // The paper's stated intuition: extreme pairing maximizes the average of
  // checkpoint-cost ratios. Compare against many random pairings.
  Rng rng(4);
  Rng extreme_rng(4);
  const auto extreme = make_pairs(ten_apps(), PairingStrategy::kExtreme, extreme_rng);
  const double extreme_avg = average_delta_factor(extreme);
  for (int trial = 0; trial < 50; ++trial) {
    const auto random = make_pairs(ten_apps(), PairingStrategy::kRandom, rng);
    EXPECT_GE(extreme_avg, average_delta_factor(random) - 1e-9);
  }
}

TEST(Pairing, RandomPairingIsSeedDeterministic) {
  Rng a(5);
  Rng b(5);
  const auto pa = make_pairs(ten_apps(), PairingStrategy::kRandom, a);
  const auto pb = make_pairs(ten_apps(), PairingStrategy::kRandom, b);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].light.name, pb[i].light.name);
    EXPECT_EQ(pa[i].heavy.name, pb[i].heavy.name);
  }
}

TEST(Pairing, SolvePairsFillsSwitchPoints) {
  ModelConfig cfg;
  cfg.mtbf = hours(5.0);
  cfg.t_total = hours(1000.0);
  const ShirazModel model(cfg);
  Rng rng(6);
  auto pairs = make_pairs(ten_apps(), PairingStrategy::kExtreme, rng);
  solve_pairs(model, pairs);
  int beneficial = 0;
  for (const auto& p : pairs) {
    if (p.k) {
      ++beneficial;
      EXPECT_GE(*p.k, 1);
      EXPECT_GT(p.model_delta_total, 0.0);
    }
  }
  // Table 1's spread is so large that most extreme pairs benefit.
  EXPECT_GE(beneficial, 4);
}

TEST(Pairing, RejectsOddOrTinyCatalogs) {
  Rng rng(7);
  std::vector<apps::AppProfile> one{{"a", 1.0, "d", "m"}};
  EXPECT_THROW(make_pairs(one, PairingStrategy::kExtreme, rng), InvalidArgument);
  auto odd = ten_apps();
  odd.pop_back();
  EXPECT_THROW(make_pairs(odd, PairingStrategy::kRandom, rng), InvalidArgument);
}

TEST(Pairing, AverageDeltaFactorRejectsEmpty) {
  EXPECT_THROW(average_delta_factor({}), InvalidArgument);
}

}  // namespace
}  // namespace shiraz::core
