#include "core/energy.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace shiraz::core {
namespace {

TEST(Energy, PaperPetascaleNumbers) {
  // Section 5: 57 hours/year of recovered useful work on a 10 MW petascale
  // machine at $0.1/kWh -> $57,000/year -> $285,000 over 5 years.
  EnergyModelConfig cfg;
  cfg.system_power_megawatts = 10.0;
  const EnergySavings s = energy_savings(57.0, cfg);
  EXPECT_NEAR(s.megawatt_hours_per_year, 570.0, 1e-9);
  EXPECT_NEAR(s.dollars_per_year, 57'000.0, 1e-6);
  EXPECT_NEAR(s.dollars_over_lifetime, 285'000.0, 1e-6);
}

TEST(Energy, PaperExascaleNumbers) {
  // 89 hours/year on a 20 MW exascale machine -> $178,000/year -> $890,000
  // over 5 years.
  EnergyModelConfig cfg;
  cfg.system_power_megawatts = 20.0;
  const EnergySavings s = energy_savings(89.0, cfg);
  EXPECT_NEAR(s.dollars_per_year, 178'000.0, 1e-6);
  EXPECT_NEAR(s.dollars_over_lifetime, 890'000.0, 1e-6);
}

TEST(Energy, ScalesLinearlyInEveryInput) {
  EnergyModelConfig cfg;
  const EnergySavings base = energy_savings(10.0, cfg);
  EXPECT_NEAR(energy_savings(20.0, cfg).dollars_per_year, 2.0 * base.dollars_per_year,
              1e-9);
  cfg.system_power_megawatts *= 3.0;
  EXPECT_NEAR(energy_savings(10.0, cfg).dollars_per_year, 3.0 * base.dollars_per_year,
              1e-9);
}

TEST(Energy, ZeroGainZeroSavings) {
  const EnergySavings s = energy_savings(0.0, EnergyModelConfig{});
  EXPECT_DOUBLE_EQ(s.dollars_per_year, 0.0);
  EXPECT_DOUBLE_EQ(s.dollars_over_lifetime, 0.0);
}

TEST(Energy, RejectsBadConfig) {
  EnergyModelConfig bad;
  bad.system_power_megawatts = 0.0;
  EXPECT_THROW(energy_savings(1.0, bad), InvalidArgument);
  EnergyModelConfig bad2;
  bad2.dollars_per_kwh = -0.1;
  EXPECT_THROW(energy_savings(1.0, bad2), InvalidArgument);
}

TEST(BurstBuffer, PaperPetabyteCostsFiveMillion) {
  // 1 PB at 0.2 GB per total dollar -> $5M.
  EXPECT_NEAR(burst_buffer_cost(BurstBufferConfig{}), 5.0e6, 1e-3);
}

TEST(BurstBuffer, PaybackFractionMatchesPaper) {
  // $285k of savings pays 5.7% of the petascale burst buffer.
  EXPECT_NEAR(burst_buffer_payback_fraction(285'000.0, BurstBufferConfig{}), 0.057,
              1e-9);
}

TEST(BurstBuffer, CostScalesWithCapacity) {
  BurstBufferConfig cfg;
  cfg.capacity_petabytes = 2.0;
  EXPECT_NEAR(burst_buffer_cost(cfg), 1.0e7, 1e-3);
}

TEST(BurstBuffer, RejectsBadConfig) {
  BurstBufferConfig bad;
  bad.gigabytes_per_dollar = 0.0;
  EXPECT_THROW(burst_buffer_cost(bad), InvalidArgument);
}

}  // namespace
}  // namespace shiraz::core
