// SolverCache: memoized switch-point solutions shared between the workload
// manager and the serve daemon. The contracts under test:
//   - a cached solution is bit-identical to a direct solve_switch_point call
//   - hit/miss counters are EXACT: hits + misses == solve() calls and
//     misses == distinct keys, under any interleaving (the Hammer suite runs
//     under TSan in CI — see the -R filter in ci.yml)
#include "core/solver_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/units.h"
#include "core/switch_solver.h"
#include "obs/metrics.h"

namespace shiraz::core {
namespace {

SolverCacheKey key_for(double delta_lw, double delta_hw, unsigned stretch = 1) {
  SolverCacheKey key;
  key.mtbf = hours(5.0);
  key.weibull_shape = 0.6;
  key.epsilon = 0.45;
  key.t_total = hours(1000.0);
  key.oci_formula = checkpoint::OciFormula::kYoung;
  key.delta_lw = delta_lw;
  key.delta_hw = delta_hw;
  key.hw_stretch = stretch;
  return key;
}

SwitchSolution direct_solve(const SolverCacheKey& key) {
  ModelConfig cfg;
  cfg.mtbf = key.mtbf;
  cfg.weibull_shape = key.weibull_shape;
  cfg.epsilon = key.epsilon;
  cfg.t_total = key.t_total;
  cfg.oci_formula = key.oci_formula;
  const ShirazModel model(cfg);
  SolverOptions opts;
  opts.keep_sweep = false;
  return solve_switch_point(model, AppSpec{"lw", key.delta_lw, 1},
                            AppSpec{"hw", key.delta_hw, key.hw_stretch}, opts);
}

TEST(SolverCacheTest, MatchesDirectSolveBitForBit) {
  SolverCache cache;
  for (const double delta_hw : {600.0, 1800.0, 7200.0}) {
    const SolverCacheKey key = key_for(18.0, delta_hw);
    const CachedSolution cached = cache.solve(key);
    const SwitchSolution direct = direct_solve(key);
    ASSERT_EQ(cached.k.has_value(), direct.k.has_value());
    if (direct.k) EXPECT_EQ(*cached.k, *direct.k);
    EXPECT_EQ(cached.delta_lw, direct.delta_lw);
    EXPECT_EQ(cached.delta_hw, direct.delta_hw);
    EXPECT_EQ(cached.delta_total, direct.delta_total);
  }
}

TEST(SolverCacheTest, ExactHitMissAccounting) {
  SolverCache cache;
  EXPECT_EQ(cache.stats().lookups(), 0u);
  EXPECT_EQ(cache.size(), 0u);

  cache.solve(key_for(18.0, 1800.0));   // miss
  cache.solve(key_for(18.0, 1800.0));   // hit
  cache.solve(key_for(72.0, 1800.0));   // miss
  cache.solve(key_for(18.0, 1800.0));   // hit
  cache.solve(key_for(18.0, 1800.0, 2));  // stretch is part of the key: miss

  const SolverCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.lookups(), 5u);
  EXPECT_DOUBLE_EQ(s.hit_ratio(), 2.0 / 5.0);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(SolverCacheTest, RepeatedSolvesReturnIdenticalSolutions) {
  SolverCache cache;
  const CachedSolution first = cache.solve(key_for(18.0, 1800.0));
  const CachedSolution again = cache.solve(key_for(18.0, 1800.0));
  ASSERT_TRUE(first.k.has_value());
  EXPECT_EQ(*first.k, *again.k);
  EXPECT_EQ(first.delta_lw, again.delta_lw);
  EXPECT_EQ(first.delta_hw, again.delta_hw);
  EXPECT_EQ(first.delta_total, again.delta_total);
}

TEST(SolverCacheTest, ClearResetsEntriesAndStats) {
  SolverCache cache;
  cache.solve(key_for(18.0, 1800.0));
  cache.solve(key_for(18.0, 1800.0));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().lookups(), 0u);
  cache.solve(key_for(18.0, 1800.0));
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SolverCacheTest, SharedRegistryFoldsCountersIntoTheSnapshot) {
  // A cache built on a shared registry publishes its accounting there —
  // same exact Stats contract, but visible in a process-wide snapshot.
  auto registry = std::make_shared<obs::MetricsRegistry>();
  SolverCache cache(registry);
  EXPECT_EQ(cache.metrics().get(), registry.get());

  cache.solve(key_for(18.0, 1800.0));  // miss
  cache.solve(key_for(18.0, 1800.0));  // hit
  EXPECT_EQ(registry->counter("shiraz_solver_cache_misses_total").value(), 1u);
  EXPECT_EQ(registry->counter("shiraz_solver_cache_hits_total").value(), 1u);
  EXPECT_EQ(registry->gauge("shiraz_solver_cache_entries").value(), 1.0);

  const SolverCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);

  cache.clear();
  EXPECT_EQ(registry->counter("shiraz_solver_cache_misses_total").value(), 0u);
  EXPECT_EQ(registry->gauge("shiraz_solver_cache_entries").value(), 0.0);
}

TEST(SolverCacheTest, NoBeneficialPairCachesEmptyK) {
  SolverCache cache;
  // Equal deltas: no switch point helps; the cache must store that verdict
  // rather than re-solving.
  const CachedSolution sol = cache.solve(key_for(1800.0, 1800.0));
  EXPECT_FALSE(sol.beneficial());
  cache.solve(key_for(1800.0, 1800.0));
  EXPECT_EQ(cache.stats().hits, 1u);
}

// TSan-covered hammer: N threads pound a small key set concurrently. The
// counters must come out exact — not approximately — because a miss is
// "this call inserted the entry" under the map lock, never a data race.
TEST(SolverCacheHammer, ConcurrentSolvesKeepExactCountersAndIdenticalResults) {
  SolverCache cache;
  const std::vector<SolverCacheKey> keys = {
      key_for(18.0, 1800.0), key_for(72.0, 1800.0),  key_for(18.0, 7200.0),
      key_for(6.0, 600.0),   key_for(36.0, 3600.0),
  };
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kCallsPerThread = 40;

  std::vector<std::vector<CachedSolution>> seen(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        seen[t].reserve(kCallsPerThread);
        for (std::size_t i = 0; i < kCallsPerThread; ++i) {
          seen[t].push_back(cache.solve(keys[(t + i) % keys.size()]));
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }

  const SolverCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, keys.size());
  EXPECT_EQ(s.lookups(), kThreads * kCallsPerThread);
  EXPECT_EQ(s.hits, kThreads * kCallsPerThread - keys.size());
  EXPECT_EQ(cache.size(), keys.size());

  // Every thread observed the same solution per key, and it is the direct
  // solver's solution bit for bit.
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kCallsPerThread; ++i) {
      const SolverCacheKey& key = keys[(t + i) % keys.size()];
      const SwitchSolution direct = direct_solve(key);
      const CachedSolution& got = seen[t][i];
      ASSERT_EQ(got.k.has_value(), direct.k.has_value());
      if (direct.k) ASSERT_EQ(*got.k, *direct.k);
      ASSERT_EQ(got.delta_lw, direct.delta_lw);
      ASSERT_EQ(got.delta_hw, direct.delta_hw);
      ASSERT_EQ(got.delta_total, direct.delta_total);
    }
  }
}

}  // namespace
}  // namespace shiraz::core
