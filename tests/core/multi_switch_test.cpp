#include "core/multi_switch.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/switch_solver.h"
#include "reliability/weibull.h"
#include "sim/engine.h"

namespace shiraz::core {
namespace {

ShirazModel make_model(double mtbf_hours) {
  ModelConfig cfg;
  cfg.mtbf = hours(mtbf_hours);
  cfg.t_total = hours(1000.0);
  return ShirazModel(cfg);
}

TEST(WindowApp, ReproducesFirstAppAtZeroStart) {
  const ShirazModel model = make_model(5.0);
  const AppSpec app{"a", 300.0, 1};
  for (const int k : {1, 4, 9}) {
    const Components w = model.window_app(app, 0.0, k, hours(1000.0));
    const Components f =
        model.first_app(app, model.switch_time(app, k), hours(1000.0));
    EXPECT_NEAR(w.useful, f.useful, 1e-6) << k;
    EXPECT_NEAR(w.io, f.io, 1e-6) << k;
    EXPECT_NEAR(w.lost, f.lost, 1e-6) << k;
  }
}

TEST(WindowApp, ApproachesSecondAppForLargeK) {
  const ShirazModel model = make_model(5.0);
  const AppSpec app{"a", 300.0, 1};
  const Seconds t0 = hours(2.0);
  const Components w = model.window_app(app, t0, 100'000, hours(1000.0));
  const Components s = model.second_app(app, t0, hours(1000.0));
  EXPECT_NEAR(w.useful, s.useful, 1.0);
  EXPECT_NEAR(w.lost, s.lost, 1.0);
}

TEST(WindowApp, ZeroCheckpointsContributeNothing) {
  const ShirazModel model = make_model(5.0);
  const AppSpec app{"a", 300.0, 1};
  const Components w = model.window_app(app, hours(1.0), 0, hours(1000.0));
  EXPECT_DOUBLE_EQ(w.useful, 0.0);
  EXPECT_DOUBLE_EQ(w.io, 0.0);
  EXPECT_DOUBLE_EQ(w.lost, 0.0);
}

TEST(WindowApp, LaterWindowsSeeFewerFailures) {
  const ShirazModel model = make_model(5.0);
  const AppSpec app{"a", 300.0, 1};
  const Components early = model.window_app(app, 0.0, 5, hours(1000.0));
  const Components late = model.window_app(app, hours(8.0), 5, hours(1000.0));
  EXPECT_GT(early.lost, late.lost);
  // But the late window also completes its 5 segments less often... per-gap
  // useful of the late window is *higher* because fewer failures interrupt it,
  // yet the exposure mass is smaller; lost dominates the comparison above.
}

TEST(ChainSolver, TwoAppChainMatchesPairSolver) {
  const ShirazModel model = make_model(5.0);
  const std::vector<AppSpec> apps{{"lw", 18.0, 1}, {"hw", 1800.0, 1}};
  const ChainSolution chain = solve_chain(model, apps);
  const SwitchSolution pair = solve_switch_point(model, apps[0], apps[1]);
  ASSERT_TRUE(chain.beneficial);
  ASSERT_TRUE(pair.beneficial());
  // Max-min fairness and the crossing criterion land on (nearly) the same k.
  EXPECT_NEAR(chain.ks[0], *pair.k, 2.0);
  EXPECT_NEAR(chain.total_delta, pair.delta_total, 0.25 * pair.delta_total);
}

TEST(ChainSolver, ThreeAppChainBenefitsEveryApp) {
  const ShirazModel model = make_model(5.0);
  const std::vector<AppSpec> apps{
      {"light", 10.0, 1}, {"mid", 300.0, 1}, {"heavy", 1800.0, 1}};
  const ChainSolution sol = solve_chain(model, apps);
  ASSERT_TRUE(sol.beneficial);
  ASSERT_EQ(sol.deltas.size(), 3u);
  // Max-min fairness: integer switch counts can leave one app slightly below
  // baseline (the same ~-9h discreteness the pair solver tolerates at the
  // paper's own factor-5 point), but never by a material fraction.
  for (const double d : sol.deltas) {
    EXPECT_GT(d, -hours(12.0));
  }
  EXPECT_GT(sol.total_delta, hours(5.0));
  EXPECT_GT(*std::max_element(sol.deltas.begin(), sol.deltas.end()), 0.0);
}

TEST(ChainSolver, ChainGainConfirmedBySimulation) {
  const ShirazModel model = make_model(5.0);
  const std::vector<AppSpec> apps{
      {"light", 10.0, 1}, {"mid", 300.0, 1}, {"heavy", 1800.0, 1}};
  const ChainSolution sol = solve_chain(model, apps);
  ASSERT_TRUE(sol.beneficial);

  sim::EngineConfig ecfg;
  ecfg.t_total = hours(1000.0);
  const sim::Engine engine(reliability::Weibull::from_mtbf(0.6, hours(5.0)), ecfg);
  const std::vector<sim::SimJob> jobs{
      sim::SimJob::at_oci("light", 10.0, hours(5.0)),
      sim::SimJob::at_oci("mid", 300.0, hours(5.0)),
      sim::SimJob::at_oci("heavy", 1800.0, hours(5.0))};
  const sim::SimResult base =
      engine.run_many(jobs, sim::AlternateAtFailure{}, 24, 77);
  const sim::SimResult chain = engine.run_many(
      jobs, sim::MultiSwitchScheduler{sol.ks}, 24, 77);
  EXPECT_GT(chain.total_useful(), base.total_useful());
}

TEST(ChainSolver, IdenticalAppsAreNotBeneficial) {
  const ShirazModel model = make_model(5.0);
  const std::vector<AppSpec> apps{{"a", 300.0, 1}, {"b", 300.0, 1}, {"c", 300.0, 1}};
  const ChainSolution sol = solve_chain(model, apps);
  EXPECT_FALSE(sol.beneficial);
}

TEST(ChainSolver, RejectsBadInput) {
  const ShirazModel model = make_model(5.0);
  EXPECT_THROW(solve_chain(model, {{"only", 300.0, 1}}), InvalidArgument);
  // Unsorted by checkpoint cost.
  EXPECT_THROW(solve_chain(model, {{"hw", 1800.0, 1}, {"lw", 18.0, 1}}),
               InvalidArgument);
  EXPECT_THROW(
      evaluate_chain(model, {{"a", 18.0, 1}, {"b", 1800.0, 1}}, {1, 2}),
      InvalidArgument);
  EXPECT_THROW(evaluate_chain(model, {{"a", 18.0, 1}, {"b", 1800.0, 1}}, {-1}),
               InvalidArgument);
}

}  // namespace
}  // namespace shiraz::core
