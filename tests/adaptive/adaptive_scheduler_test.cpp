#include "adaptive/adaptive_scheduler.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/switch_solver.h"
#include "reliability/weibull.h"
#include "sim/engine.h"

namespace shiraz::adaptive {
namespace {

core::AppSpec light() { return {"lw", 18.0, 1}; }
core::AppSpec heavy() { return {"hw", 1800.0, 1}; }

AdaptiveConfig config_with_prior(Seconds prior_mtbf) {
  AdaptiveConfig cfg;
  cfg.estimator.prior_mtbf = prior_mtbf;
  cfg.estimator.min_samples = 16;
  // Wide window: the Weibull MLE over heavy-tailed gaps is noisy, and k
  // jitter costs fairness; 256 gaps is ~2 months of an MTBF-5h machine.
  cfg.estimator.window = 256;
  return cfg;
}

TEST(AdaptiveScheduler, StartsFromThePriorSolution) {
  const AdaptiveShirazScheduler sched(light(), heavy(),
                                      config_with_prior(hours(5.0)));
  core::ModelConfig mcfg;
  mcfg.mtbf = hours(5.0);
  const core::ShirazModel model(mcfg);
  core::SolverOptions opts;
  opts.keep_sweep = false;
  const core::SwitchSolution sol = solve_switch_point(model, light(), heavy(), opts);
  ASSERT_TRUE(sol.beneficial());
  EXPECT_EQ(sched.current_k(), *sol.k);
  EXPECT_EQ(sched.resolves(), 1u);
}

TEST(AdaptiveScheduler, LearnsTheTrueMtbfFromAWrongPrior) {
  // Prior says 20h but the machine fails every 5h: after enough observed
  // gaps the controller's k must move toward the 5h solution (k ~ 26) and
  // away from the 20h one (k ~ 50).
  const AdaptiveShirazScheduler sched(light(), heavy(),
                                      config_with_prior(hours(20.0)));
  const int k_prior = sched.current_k();

  sim::EngineConfig ecfg;
  ecfg.t_total = hours(2000.0);
  const sim::Engine engine(reliability::Weibull::from_mtbf(0.6, hours(5.0)), ecfg);
  const std::vector<sim::SimJob> jobs{sim::SimJob::at_oci("lw", 18.0, hours(5.0)),
                                      sim::SimJob::at_oci("hw", 1800.0, hours(5.0))};
  Rng rng(11);
  (void)engine.run(jobs, sched, rng);

  EXPECT_GT(sched.resolves(), 1u);
  EXPECT_LT(sched.current_k(), k_prior);
  EXPECT_NEAR(sched.current_k(), 26, 8);
  EXPECT_NEAR(sched.current_estimate().mtbf / hours(5.0), 1.0, 0.3);
}

TEST(AdaptiveScheduler, ResetRestoresThePrior) {
  const AdaptiveShirazScheduler sched(light(), heavy(),
                                      config_with_prior(hours(20.0)));
  const int k_prior = sched.current_k();
  sim::EngineConfig ecfg;
  ecfg.t_total = hours(1000.0);
  const sim::Engine engine(reliability::Weibull::from_mtbf(0.6, hours(5.0)), ecfg);
  const std::vector<sim::SimJob> jobs{sim::SimJob::at_oci("lw", 18.0, hours(5.0)),
                                      sim::SimJob::at_oci("hw", 1800.0, hours(5.0))};
  Rng rng(13);
  (void)engine.run(jobs, sched, rng);
  EXPECT_NE(sched.current_k(), k_prior);
  sched.reset();
  EXPECT_EQ(sched.current_k(), k_prior);
  EXPECT_EQ(sched.resolves(), 1u);
}

TEST(AdaptiveScheduler, RestoresFairnessUnderAMisconfiguredMtbf) {
  // When the operator's nominal MTBF is wrong by 4x, the static switch point
  // (k ~ 50 instead of ~26) over-serves the light app: the *total* can even
  // rise, but the heavy app is cheated out of its share — precisely the
  // unfairness Shiraz's constraint exists to prevent. The adaptive controller
  // must restore the fair split: its worst-served app does far better than
  // the miscalibrated static one's, and close to the oracle's.
  sim::EngineConfig ecfg;
  ecfg.t_total = hours(4000.0);
  const sim::Engine engine(reliability::Weibull::from_mtbf(0.6, hours(5.0)), ecfg);
  const std::vector<sim::SimJob> jobs{sim::SimJob::at_oci("lw", 18.0, hours(5.0)),
                                      sim::SimJob::at_oci("hw", 1800.0, hours(5.0))};

  core::SolverOptions opts;
  opts.keep_sweep = false;
  core::ModelConfig wrong;
  wrong.mtbf = hours(20.0);
  const core::SwitchSolution miscal =
      solve_switch_point(core::ShirazModel(wrong), light(), heavy(), opts);
  ASSERT_TRUE(miscal.beneficial());
  const sim::ShirazPairScheduler static_wrong(*miscal.k);

  core::ModelConfig right;
  right.mtbf = hours(5.0);
  const core::SwitchSolution oracle =
      solve_switch_point(core::ShirazModel(right), light(), heavy(), opts);
  const sim::ShirazPairScheduler static_right(*oracle.k);

  const AdaptiveShirazScheduler adaptive(light(), heavy(),
                                         config_with_prior(hours(20.0)));

  const std::size_t reps = 16;
  const sim::AlternateAtFailure baseline;
  const sim::SimResult r_base = engine.run_many(jobs, baseline, reps, 3);
  const sim::SimResult r_wrong = engine.run_many(jobs, static_wrong, reps, 3);
  const sim::SimResult r_adapt = engine.run_many(jobs, adaptive, reps, 3);
  const sim::SimResult r_right = engine.run_many(jobs, static_right, reps, 3);

  auto min_gain = [&](const sim::SimResult& r) {
    return std::min(r.apps[0].useful - r_base.apps[0].useful,
                    r.apps[1].useful - r_base.apps[1].useful);
  };
  EXPECT_GT(min_gain(r_adapt), min_gain(r_wrong) + hours(5.0));
  // Learning costs something (the prior governs until the window warms up and
  // the estimate keeps jittering afterwards): demand half the oracle's
  // fairness gain, not parity.
  EXPECT_GT(min_gain(r_adapt), 0.5 * min_gain(r_right));
  // And the adaptive schedule still improves the system overall.
  EXPECT_GT(r_adapt.total_useful(), r_base.total_useful());
}

TEST(AdaptiveScheduler, FallsBackToAlternationWhenNoBenefit) {
  // Identical apps: no beneficial k at any estimate -> alternate at failures.
  const core::AppSpec a{"a", 300.0, 1};
  const core::AppSpec b{"b", 300.0, 1};
  const AdaptiveShirazScheduler sched(a, b, config_with_prior(hours(5.0)));
  EXPECT_EQ(sched.current_k(), 0);

  std::vector<std::size_t> ckpts{0, 0};
  sim::SchedContext ctx;
  ctx.num_apps = 2;
  ctx.checkpoints_this_gap = &ckpts;
  ctx.failures_so_far = 0;
  EXPECT_EQ(*sched.on_gap_start(ctx).app, 0u);
  ctx.failures_so_far = 1;
  EXPECT_EQ(*sched.on_gap_start(ctx).app, 1u);
}

TEST(AdaptiveScheduler, RejectsBadConstruction) {
  AdaptiveConfig cfg;
  cfg.resolve_threshold = -0.1;
  EXPECT_THROW(AdaptiveShirazScheduler(light(), heavy(), cfg), InvalidArgument);
  EXPECT_THROW(
      AdaptiveShirazScheduler(core::AppSpec{"z", 0.0, 1}, heavy(), AdaptiveConfig{}),
      InvalidArgument);
}

}  // namespace
}  // namespace shiraz::adaptive
