#include "adaptive/online_estimator.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "reliability/weibull.h"

namespace shiraz::adaptive {
namespace {

EstimatorConfig small_config() {
  EstimatorConfig cfg;
  cfg.window = 64;
  cfg.min_samples = 8;
  cfg.prior_mtbf = hours(20.0);
  cfg.prior_shape = 0.6;
  return cfg;
}

TEST(OnlineEstimator, ReturnsPriorBeforeWarmup) {
  OnlineWeibullEstimator est(small_config());
  for (int i = 0; i < 7; ++i) est.observe(hours(1.0) + i);
  const FailureEstimate e = est.estimate();
  EXPECT_EQ(e.samples, 0u);
  EXPECT_DOUBLE_EQ(e.mtbf, hours(20.0));
  EXPECT_DOUBLE_EQ(e.shape, 0.6);
}

TEST(OnlineEstimator, ConvergesToTrueParameters) {
  const reliability::Weibull truth =
      reliability::Weibull::from_mtbf(0.6, hours(5.0));
  EstimatorConfig cfg = small_config();
  cfg.window = 512;
  OnlineWeibullEstimator est(cfg);
  Rng rng(5);
  for (int i = 0; i < 512; ++i) est.observe(truth.sample(rng));
  const FailureEstimate e = est.estimate();
  EXPECT_EQ(e.samples, 512u);
  EXPECT_NEAR(e.mtbf / hours(5.0), 1.0, 0.15);
  EXPECT_NEAR(e.shape, 0.6, 0.1);
}

TEST(OnlineEstimator, SlidingWindowTracksDrift) {
  // Feed gaps from MTBF 20h, then from MTBF 5h: the estimate must follow.
  const reliability::Weibull before = reliability::Weibull::from_mtbf(0.6, hours(20.0));
  const reliability::Weibull after = reliability::Weibull::from_mtbf(0.6, hours(5.0));
  OnlineWeibullEstimator est(small_config());
  Rng rng(9);
  for (int i = 0; i < 64; ++i) est.observe(before.sample(rng));
  const Seconds early = est.estimate().mtbf;
  for (int i = 0; i < 64; ++i) est.observe(after.sample(rng));
  const Seconds late = est.estimate().mtbf;
  EXPECT_GT(early, 2.0 * late);
}

TEST(OnlineEstimator, WindowCapsMemory) {
  OnlineWeibullEstimator est(small_config());
  for (int i = 0; i < 1000; ++i) est.observe(100.0 + i);
  EXPECT_EQ(est.observed(), 64u);
}

TEST(OnlineEstimator, DegenerateWindowFallsBackToPrior) {
  OnlineWeibullEstimator est(small_config());
  for (int i = 0; i < 20; ++i) est.observe(3600.0);  // identical gaps: MLE undefined
  const FailureEstimate e = est.estimate();
  EXPECT_DOUBLE_EQ(e.mtbf, hours(20.0));
  EXPECT_EQ(e.samples, 0u);
}

TEST(OnlineEstimator, ResetDropsHistory) {
  OnlineWeibullEstimator est(small_config());
  Rng rng(3);
  const reliability::Weibull truth = reliability::Weibull::from_mtbf(0.6, hours(5.0));
  for (int i = 0; i < 64; ++i) est.observe(truth.sample(rng));
  est.reset();
  EXPECT_EQ(est.observed(), 0u);
  EXPECT_DOUBLE_EQ(est.estimate().mtbf, hours(20.0));
}

TEST(OnlineEstimator, RejectsBadConfigAndGaps) {
  EstimatorConfig bad = small_config();
  bad.window = 1;
  EXPECT_THROW(OnlineWeibullEstimator{bad}, InvalidArgument);
  EstimatorConfig bad2 = small_config();
  bad2.min_samples = 100;  // exceeds window
  EXPECT_THROW(OnlineWeibullEstimator{bad2}, InvalidArgument);
  OnlineWeibullEstimator est(small_config());
  EXPECT_THROW(est.observe(0.0), InvalidArgument);
}

}  // namespace
}  // namespace shiraz::adaptive
