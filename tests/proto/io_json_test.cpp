// IoCounters::write_json: byte counts must round-trip as exact integers so
// CI trend diffs of the prototype benches' telemetry are bit-stable.
#include <string>

#include <gtest/gtest.h>

#include "common/json.h"
#include "proto/io_metrics.h"
#include "common/json_parse.h"

namespace shiraz::proto {
namespace {

using shiraz::JsonValue;
using shiraz::parse_json;

TEST(IoJson, CountersRoundTripExactly) {
  IoCounters c;
  c.record_write({2.0, 1'073'741'824});  // 1 GiB in 2 s
  c.record_write({1.0, 536'870'912});
  c.record_restore({0.5, 268'435'456});

  JsonWriter w(0);
  c.write_json(w);
  const JsonValue doc = parse_json(w.str());

  EXPECT_EQ(doc.at("writes").number, 2.0);
  EXPECT_EQ(doc.at("restores").number, 1.0);
  EXPECT_EQ(doc.at("bytes_written").number, 1'610'612'736.0);
  EXPECT_EQ(doc.at("bytes_read").number, 268'435'456.0);
  EXPECT_DOUBLE_EQ(doc.at("write_seconds").number, 3.0);
  EXPECT_DOUBLE_EQ(doc.at("read_seconds").number, 0.5);
  EXPECT_DOUBLE_EQ(doc.at("effective_write_bandwidth_bps").number,
                   1'610'612'736.0 / 3.0);
  EXPECT_DOUBLE_EQ(doc.at("effective_read_bandwidth_bps").number,
                   268'435'456.0 / 0.5);

  // Byte counts render as integer literals, not scientific notation.
  EXPECT_NE(w.str().find("\"bytes_written\":1610612736"), std::string::npos);
}

TEST(IoJson, EmptyCountersAreAllZero) {
  const IoCounters c;
  JsonWriter w(0);
  c.write_json(w);
  const JsonValue doc = parse_json(w.str());
  EXPECT_EQ(doc.at("writes").number, 0.0);
  EXPECT_EQ(doc.at("bytes_written").number, 0.0);
  EXPECT_EQ(doc.at("effective_write_bandwidth_bps").number, 0.0);
  EXPECT_EQ(doc.at("effective_read_bandwidth_bps").number, 0.0);
}

TEST(IoJson, NestsInsideALargerDocument) {
  IoCounters c;
  c.record_write({1.0, 100});
  JsonWriter w(0);
  w.begin_object();
  w.key("io");
  c.write_json(w);
  w.end_object();
  const JsonValue doc = parse_json(w.str());
  EXPECT_EQ(doc.at("io").at("writes").number, 1.0);
  EXPECT_EQ(doc.at("io").at("bytes_written").number, 100.0);
}

}  // namespace
}  // namespace shiraz::proto
