#include "proto/runtime.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/scheduler.h"

namespace shiraz::proto {
namespace {

using apps::ProxyApp;
using apps::ProxyKind;

// Synthetic rates chosen for easy arithmetic: one step = 1s, checkpoint
// write = exactly 0.5s, restore = 0.25s (for the CoMD config-1 state size).
SyntheticBackend::Rates unit_rates() {
  const ProxyApp probe(ProxyKind::kCoMD, 1);
  SyntheticBackend::Rates rates;
  rates.step_duration = 1.0;
  rates.fixed_latency = 0.0;
  rates.write_bandwidth_bps = static_cast<double>(probe.state_bytes()) / 0.5;
  rates.read_bandwidth_bps = static_cast<double>(probe.state_bytes()) / 0.25;
  return rates;
}

ProtoJob comd_job(const std::string& name, Seconds interval) {
  return ProtoJob(name, ProxyApp(ProxyKind::kCoMD, 1), interval);
}

TEST(Runtime, FailureFreeRunSealsAllSegments) {
  SyntheticBackend backend(unit_rates());
  CheckpointStore store = CheckpointStore::make_temporary("rt1");
  Runtime runtime(backend, store);
  const sim::AlternateAtFailure policy;
  // Segment = 2 steps (2s) + 0.5s write = 2.5s; horizon 25s -> 10 segments.
  const ProtoResult res =
      runtime.run({comd_job("a", 2.0)}, policy, /*failure_times=*/{}, 25.0);
  EXPECT_EQ(res.failures, 0u);
  EXPECT_EQ(res.jobs[0].checkpoints, 10u);
  EXPECT_NEAR(res.jobs[0].useful, 20.0, 1e-9);
  EXPECT_NEAR(res.jobs[0].io, 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(res.jobs[0].lost, 0.0);
  EXPECT_EQ(res.jobs[0].steps, 20u);
  // Byte accounting: 10 committed writes, no restores.
  const apps::ProxyApp probe(ProxyKind::kCoMD, 1);
  EXPECT_EQ(res.jobs[0].io_counters.writes, 10u);
  EXPECT_EQ(res.jobs[0].bytes_written(), 10u * probe.state_bytes());
  EXPECT_EQ(res.jobs[0].io_counters.restores, 0u);
  EXPECT_EQ(res.total_bytes_read(), 0u);
}

TEST(Runtime, FailureDuringComputeWipesUnsealedWork) {
  SyntheticBackend backend(unit_rates());
  CheckpointStore store = CheckpointStore::make_temporary("rt2");
  Runtime runtime(backend, store);
  const sim::AlternateAtFailure policy;
  // First segment runs [0, 2] + write [2, 2.5]. Failure at t = 3.4 strikes
  // during the second segment's compute (one step in).
  const ProtoResult res = runtime.run({comd_job("a", 2.0)}, policy, {3.4}, 10.0);
  EXPECT_EQ(res.failures, 1u);
  EXPECT_EQ(res.jobs[0].failures_hit, 1u);
  // One sealed segment before the failure, the 1s step after it is lost.
  EXPECT_GE(res.jobs[0].checkpoints, 2u);
  EXPECT_NEAR(res.jobs[0].lost, 1.0, 0.51);
  EXPECT_EQ(res.jobs[0].restores, 1u);  // restored from the t=2.5 checkpoint
}

TEST(Runtime, TornCheckpointRollsBackToPreviousOne) {
  SyntheticBackend backend(unit_rates());
  CheckpointStore store = CheckpointStore::make_temporary("rt3");
  Runtime runtime(backend, store);
  const sim::AlternateAtFailure policy;
  // Segment 1: [0,2]+write[2,2.5] commits. Segment 2: [2.5,4.5]+write[4.5,5].
  // Failure at t = 4.7 tears the second write.
  const ProtoResult res = runtime.run({comd_job("a", 2.0)}, policy, {4.7}, 12.0);
  EXPECT_EQ(res.failures, 1u);
  // Torn write discarded: compute (2s) + write time (0.5s) lost.
  EXPECT_NEAR(res.jobs[0].lost, 2.5, 1e-9);
  // The job restores from the first (committed) checkpoint.
  EXPECT_EQ(res.jobs[0].restores, 1u);
}

TEST(Runtime, FailureBeforeFirstCheckpointRestartsFromScratch) {
  SyntheticBackend backend(unit_rates());
  CheckpointStore store = CheckpointStore::make_temporary("rt4");
  Runtime runtime(backend, store);
  const sim::AlternateAtFailure policy;
  // Failure at t = 1.5: inside the very first segment; no checkpoint exists.
  const ProtoResult res = runtime.run({comd_job("a", 2.0)}, policy, {1.5}, 8.0);
  EXPECT_EQ(res.failures, 1u);
  EXPECT_EQ(res.jobs[0].restores, 0u);
  EXPECT_DOUBLE_EQ(res.jobs[0].restart, 0.0);
  EXPECT_GT(res.jobs[0].checkpoints, 0u);  // recovers and makes progress after
}

TEST(Runtime, TimeAccountingCoversTheHorizon) {
  SyntheticBackend backend(unit_rates());
  CheckpointStore store = CheckpointStore::make_temporary("rt5");
  Runtime runtime(backend, store);
  const sim::AlternateAtFailure policy;
  const std::vector<Seconds> failures{3.0, 7.0, 13.0, 20.0};
  const ProtoResult res = runtime.run({comd_job("a", 2.0)}, policy, failures, 30.0);
  const Seconds accounted = res.jobs[0].useful + res.jobs[0].io + res.jobs[0].lost +
                            res.jobs[0].restart + res.idle + res.truncated;
  EXPECT_NEAR(accounted, res.wall, 1.01);  // last op may overshoot the horizon
}

TEST(Runtime, ShirazPolicySwitchesAfterKCheckpoints) {
  SyntheticBackend backend(unit_rates());
  CheckpointStore store = CheckpointStore::make_temporary("rt6");
  Runtime runtime(backend, store);
  const sim::ShirazPairScheduler policy(2);
  std::vector<ProtoJob> jobs;
  jobs.push_back(comd_job("lw", 1.0));
  jobs.push_back(ProtoJob("hw", ProxyApp(ProxyKind::kMiniFE, 1), 4.0));
  // No failures: LW takes 2 checkpoints (2 * 1.5s = 3s), then HW runs out the
  // horizon. HW's write costs ~19.5s (39x the CoMD state at the same
  // bandwidth), so its segments are ~23.5s: the third one *starts* before the
  // horizon and is allowed to finish (in-flight operations complete), giving
  // three checkpoints.
  const ProtoResult res = runtime.run(std::move(jobs), policy, {}, 60.0);
  EXPECT_EQ(res.job("lw").checkpoints, 2u);
  EXPECT_EQ(res.job("hw").checkpoints, 3u);
  EXPECT_NEAR(res.job("hw").useful, 12.0, 1e-6);
}

TEST(Runtime, RealBackendEndToEndSmoke) {
  RealBackend backend;
  CheckpointStore store = CheckpointStore::make_temporary("rt7");
  Runtime runtime(backend, store);
  const sim::AlternateAtFailure policy;
  std::vector<ProtoJob> jobs;
  jobs.push_back(ProtoJob("a", ProxyApp(ProxyKind::kCoMD, 1), 0.002));
  // Virtual horizon 0.1s of real execution with two injected failures.
  const ProtoResult res = runtime.run(std::move(jobs), policy, {0.03, 0.07}, 0.1);
  EXPECT_GT(res.jobs[0].checkpoints, 0u);
  EXPECT_GT(res.jobs[0].useful, 0.0);
  EXPECT_EQ(res.failures, 2u);
  EXPECT_GT(res.jobs[0].steps, 0u);
}

TEST(Runtime, RejectsBadInputs) {
  SyntheticBackend backend(unit_rates());
  CheckpointStore store = CheckpointStore::make_temporary("rt8");
  Runtime runtime(backend, store);
  const sim::AlternateAtFailure policy;
  EXPECT_THROW(runtime.run({}, policy, {}, 10.0), InvalidArgument);
  EXPECT_THROW(runtime.run({comd_job("a", 0.0)}, policy, {}, 10.0), InvalidArgument);
  EXPECT_THROW(runtime.run({comd_job("a", 1.0)}, policy, {}, 0.0), InvalidArgument);
  EXPECT_THROW(runtime.run({comd_job("a", 1.0)}, policy, {5.0, 2.0}, 10.0),
               InvalidArgument);
}

TEST(Runtime, JobLookupByName) {
  SyntheticBackend backend(unit_rates());
  CheckpointStore store = CheckpointStore::make_temporary("rt9");
  Runtime runtime(backend, store);
  const sim::AlternateAtFailure policy;
  const ProtoResult res = runtime.run({comd_job("alpha", 2.0)}, policy, {}, 5.0);
  EXPECT_EQ(res.job("alpha").name, "alpha");
  EXPECT_THROW(res.job("beta"), InvalidArgument);
}

TEST(MeasureCheckpointCost, SyntheticMatchesModeledCost) {
  SyntheticBackend backend(unit_rates());
  CheckpointStore store = CheckpointStore::make_temporary("rt10");
  const ProxyApp app(ProxyKind::kCoMD, 1);
  const IoResult cost = measure_checkpoint_cost(backend, app, store, 3);
  EXPECT_NEAR(cost.duration, 0.5, 1e-9);
  EXPECT_EQ(cost.bytes, app.state_bytes());
  // Every probe write lands in the store's lifetime counters.
  EXPECT_EQ(store.counters().writes, 3u);
  EXPECT_EQ(store.counters().bytes_written, 3u * app.state_bytes());
}

TEST(MeasureCheckpointCost, RealRatioTracksStateSize) {
  // Asserted on bytes, not durations: the byte ratio is exact every run,
  // while wall-clock ratios jitter with machine load (the seed's 3x time
  // assertion here was the same flakiness as the old backend cost test).
  RealBackend backend;
  CheckpointStore store = CheckpointStore::make_temporary("rt11");
  const ProxyApp light(ProxyKind::kCoMD, 1);
  const ProxyApp heavy(ProxyKind::kMiniFE, 1);
  const IoResult lc = measure_checkpoint_cost(backend, light, store, 5);
  const IoResult hc = measure_checkpoint_cost(backend, heavy, store, 5);
  EXPECT_EQ(lc.bytes, light.state_bytes());
  EXPECT_EQ(hc.bytes, heavy.state_bytes());
  EXPECT_GT(static_cast<double>(hc.bytes) / static_cast<double>(lc.bytes), 30.0);
  EXPECT_GT(lc.duration, 0.0);
  EXPECT_GT(hc.duration, 0.0);
}

// Wraps another backend and remembers every IoResult it returned, so tests
// can reconcile campaign totals against the exact per-operation values.
class RecordingBackend final : public ExecutionBackend {
 public:
  explicit RecordingBackend(ExecutionBackend& inner) : inner_(inner) {}

  Seconds run_step(apps::ProxyApp& app) override { return inner_.run_step(app); }

  IoResult write_checkpoint(const apps::ProxyApp& app,
                            const std::filesystem::path& path) override {
    const IoResult io = inner_.write_checkpoint(app, path);
    writes.push_back(io);
    return io;
  }

  IoResult restore_checkpoint(apps::ProxyApp& app,
                              const std::filesystem::path& path) override {
    const IoResult io = inner_.restore_checkpoint(app, path);
    restores.push_back(io);
    return io;
  }

  std::string name() const override { return "Recording(" + inner_.name() + ")"; }

  std::vector<IoResult> writes;
  std::vector<IoResult> restores;

 private:
  ExecutionBackend& inner_;
};

TEST(Runtime, TotalBytesReconcileWithPerWriteIoResults) {
  // Campaign-wide totals must equal the sum of the individual IoResults the
  // backend reported — including torn writes and restores. Failures at 3.4
  // and 4.7 (cf. the tests above) exercise both a wiped compute phase with a
  // restore and a torn checkpoint write.
  SyntheticBackend inner(unit_rates());
  RecordingBackend backend(inner);
  CheckpointStore store = CheckpointStore::make_temporary("rt12");
  Runtime runtime(backend, store);
  const sim::AlternateAtFailure policy;
  const ProtoResult res =
      runtime.run({comd_job("a", 2.0)}, policy, {3.4, 10.9}, 25.0);

  Bytes written = 0;
  for (const IoResult& io : backend.writes) written += io.bytes;
  Bytes read = 0;
  for (const IoResult& io : backend.restores) read += io.bytes;

  const IoCounters totals = res.total_io_counters();
  EXPECT_EQ(totals.writes, backend.writes.size());
  EXPECT_EQ(totals.restores, backend.restores.size());
  EXPECT_EQ(res.total_bytes_written(), written);
  EXPECT_EQ(res.total_bytes_read(), read);
  EXPECT_GT(totals.restores, 0u) << "the scenario must exercise restores";

  // The store observed the same traffic the backend reported.
  EXPECT_EQ(store.counters().writes, totals.writes);
  EXPECT_EQ(store.counters().bytes_written, written);
  EXPECT_EQ(store.counters().restores, totals.restores);
  EXPECT_EQ(store.counters().bytes_read, read);
}

}  // namespace
}  // namespace shiraz::proto
