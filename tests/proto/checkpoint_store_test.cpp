#include "proto/checkpoint_store.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace shiraz::proto {
namespace {

namespace fs = std::filesystem;

void touch(const fs::path& path, const std::string& content = "x") {
  std::ofstream out(path);
  out << content;
}

TEST(CheckpointStore, CreatesAndCleansUpItsDirectory) {
  fs::path dir;
  {
    const CheckpointStore store = CheckpointStore::make_temporary("unit");
    dir = store.dir();
    EXPECT_TRUE(fs::exists(dir));
    touch(store.path_for("job"));
  }
  EXPECT_FALSE(fs::exists(dir)) << "owned store must remove its directory";
}

TEST(CheckpointStore, UnownedStoreLeavesFiles) {
  const fs::path dir = fs::temp_directory_path() / "shiraz-store-unowned-test";
  {
    const CheckpointStore store(dir, /*owned=*/false);
    touch(store.path_for("job"));
  }
  EXPECT_TRUE(fs::exists(dir));
  fs::remove_all(dir);
}

TEST(CheckpointStore, PathSanitizesJobNames) {
  const CheckpointStore store = CheckpointStore::make_temporary("sanitize");
  const fs::path p = store.path_for("weird name/with:chars");
  EXPECT_EQ(p.parent_path(), store.dir());
  EXPECT_EQ(p.filename().string().find('/'), std::string::npos);
  EXPECT_EQ(p.filename().string().find(':'), std::string::npos);
}

TEST(CheckpointStore, HasCheckpointTracksFiles) {
  const CheckpointStore store = CheckpointStore::make_temporary("has");
  EXPECT_FALSE(store.has_checkpoint("job"));
  touch(store.path_for("job"));
  EXPECT_TRUE(store.has_checkpoint("job"));
  store.remove("job");
  EXPECT_FALSE(store.has_checkpoint("job"));
}

TEST(CheckpointStore, PendingCommitMakesCheckpointVisible) {
  const CheckpointStore store = CheckpointStore::make_temporary("commit");
  touch(store.pending_path_for("job"), "v1");
  EXPECT_FALSE(store.has_checkpoint("job")) << "pending must not be visible";
  store.commit_pending("job");
  EXPECT_TRUE(store.has_checkpoint("job"));
  EXPECT_FALSE(fs::exists(store.pending_path_for("job")));
}

TEST(CheckpointStore, DiscardPendingPreservesCommitted) {
  const CheckpointStore store = CheckpointStore::make_temporary("discard");
  touch(store.path_for("job"), "committed");
  touch(store.pending_path_for("job"), "torn-write");
  store.discard_pending("job");
  ASSERT_TRUE(store.has_checkpoint("job"));
  std::ifstream in(store.path_for("job"));
  std::string content;
  in >> content;
  EXPECT_EQ(content, "committed") << "torn write must not clobber the old checkpoint";
}

TEST(CheckpointStore, CommitOverwritesOlderCheckpoint) {
  const CheckpointStore store = CheckpointStore::make_temporary("overwrite");
  touch(store.path_for("job"), "old");
  touch(store.pending_path_for("job"), "new");
  store.commit_pending("job");
  std::ifstream in(store.path_for("job"));
  std::string content;
  in >> content;
  EXPECT_EQ(content, "new");
}

TEST(CheckpointStore, CommitAndDiscardAreNoOpsWithoutPending) {
  const CheckpointStore store = CheckpointStore::make_temporary("noop");
  EXPECT_NO_THROW(store.commit_pending("job"));
  EXPECT_NO_THROW(store.discard_pending("job"));
}

TEST(CheckpointStore, BytesStoredSumsFiles) {
  const CheckpointStore store = CheckpointStore::make_temporary("bytes");
  EXPECT_EQ(store.bytes_stored(), 0u);
  touch(store.path_for("a"), "12345");
  touch(store.path_for("b"), "123");
  EXPECT_EQ(store.bytes_stored(), 8u);
}

TEST(CheckpointStore, CountersAggregateRecordedIo) {
  CheckpointStore store = CheckpointStore::make_temporary("counters");
  EXPECT_EQ(store.counters().writes, 0u);
  store.record_write({0.5, 1000});
  store.record_write({0.5, 3000});
  store.record_restore({0.25, 1000});
  EXPECT_EQ(store.counters().writes, 2u);
  EXPECT_EQ(store.counters().restores, 1u);
  EXPECT_EQ(store.counters().bytes_written, 4000u);
  EXPECT_EQ(store.counters().bytes_read, 1000u);
  EXPECT_DOUBLE_EQ(store.counters().effective_write_bandwidth_bps(), 4000.0);
  EXPECT_DOUBLE_EQ(store.counters().effective_read_bandwidth_bps(), 4000.0);
  store.reset_counters();
  EXPECT_EQ(store.counters().writes, 0u);
  EXPECT_EQ(store.counters().bytes_written, 0u);
}

TEST(CheckpointStore, CountersCountTrafficNotResidency) {
  // bytes_stored() reflects files on disk; counters() reflect traffic, so a
  // discarded pending write still appears in the counters.
  CheckpointStore store = CheckpointStore::make_temporary("traffic");
  touch(store.pending_path_for("job"), "torn");
  store.record_write({0.1, 4});
  store.discard_pending("job");
  EXPECT_EQ(store.bytes_stored(), 0u);
  EXPECT_EQ(store.counters().bytes_written, 4u);
}

TEST(CheckpointStore, MoveTransfersOwnership) {
  fs::path dir;
  {
    CheckpointStore original = CheckpointStore::make_temporary("move");
    dir = original.dir();
    const CheckpointStore moved = std::move(original);
    EXPECT_EQ(moved.dir(), dir);
  }
  EXPECT_FALSE(fs::exists(dir));
}

}  // namespace
}  // namespace shiraz::proto
