#include "proto/backend.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "proto/checkpoint_store.h"

namespace shiraz::proto {
namespace {

TEST(RealBackend, StepAdvancesAppAndReportsPositiveDuration) {
  RealBackend backend;
  apps::ProxyApp app(apps::ProxyKind::kCoMD, 1);
  const Seconds dur = backend.run_step(app);
  EXPECT_GT(dur, 0.0);
  EXPECT_EQ(app.steps_completed(), 1u);
}

TEST(RealBackend, CheckpointRestoreRoundTripsThroughDisk) {
  RealBackend backend;
  const CheckpointStore store = CheckpointStore::make_temporary("backend");
  apps::ProxyApp app(apps::ProxyKind::kCoMD, 1);
  backend.run_step(app);
  backend.run_step(app);
  const auto checksum = app.checksum();

  const IoResult write = backend.write_checkpoint(app, store.path_for("job"));
  EXPECT_GT(write.duration, 0.0);
  EXPECT_EQ(write.bytes, app.state_bytes());
  EXPECT_GT(write.bandwidth_bps(), 0.0);

  backend.run_step(app);  // diverge
  EXPECT_NE(app.checksum(), checksum);

  const IoResult restore = backend.restore_checkpoint(app, store.path_for("job"));
  EXPECT_GT(restore.duration, 0.0);
  EXPECT_EQ(restore.bytes, app.state_bytes());
  EXPECT_EQ(app.checksum(), checksum);
  EXPECT_EQ(app.steps_completed(), 2u);
}

TEST(RealBackend, LargerStateCostsMoreToWrite) {
  // The Fig 3 premise restated in its stable form: checkpoint cost tracks
  // state size, and the *byte* ratio is exact every run. The seed version of
  // this test asserted a 3x wall-clock ratio, which open/flush overhead and
  // machine load made non-deterministic for page-cache writes — the exact
  // load-sensitivity CLAUDE.md flags for fig03/fig16. Durations only get a
  // weak positivity check here.
  RealBackend backend;
  const CheckpointStore store = CheckpointStore::make_temporary("cost");
  const apps::ProxyApp small(apps::ProxyKind::kCoMD, 1);
  const apps::ProxyApp large(apps::ProxyKind::kMiniFE, 1);
  const IoResult small_io = backend.write_checkpoint(small, store.path_for("s"));
  const IoResult large_io = backend.write_checkpoint(large, store.path_for("l"));

  EXPECT_EQ(small_io.bytes, small.state_bytes());
  EXPECT_EQ(large_io.bytes, large.state_bytes());
  const double ratio = static_cast<double>(large_io.bytes) /
                       static_cast<double>(small_io.bytes);
  EXPECT_DOUBLE_EQ(ratio, static_cast<double>(large.state_bytes()) /
                              static_cast<double>(small.state_bytes()));
  EXPECT_NEAR(ratio, 39.0, 3.0)
      << "miniFE:CoMD byte ratio must stay near the paper's ~30x time ratio";
  EXPECT_GT(small_io.duration, 0.0);
  EXPECT_GT(large_io.duration, 0.0);
}

TEST(RealBackend, FsyncModeMovesIdenticalBytesAndRoundTrips) {
  // The opt-in durability mode changes what durations *mean* (device I/O vs
  // page-cache copy) but must not change what is written.
  RealBackend cached(RealBackend::Durability::kPageCache);
  RealBackend durable(RealBackend::Durability::kFsync);
  EXPECT_EQ(durable.durability(), RealBackend::Durability::kFsync);
  const CheckpointStore store = CheckpointStore::make_temporary("fsync");
  apps::ProxyApp app(apps::ProxyKind::kCoMD, 1);
  cached.run_step(app);
  const auto checksum = app.checksum();

  const IoResult a = cached.write_checkpoint(app, store.path_for("cached"));
  const IoResult b = durable.write_checkpoint(app, store.path_for("durable"));
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_GT(b.duration, 0.0);

  cached.run_step(app);  // diverge
  const IoResult r = cached.restore_checkpoint(app, store.path_for("durable"));
  EXPECT_EQ(r.bytes, app.state_bytes());
  EXPECT_EQ(app.checksum(), checksum);
}

TEST(RealBackend, RestoreFromMissingFileThrows) {
  RealBackend backend;
  apps::ProxyApp app(apps::ProxyKind::kCoMD, 1);
  EXPECT_THROW(backend.restore_checkpoint(app, "/nonexistent/ckpt.bin"), IoError);
}

TEST(RealBackend, WriteToInvalidPathThrows) {
  RealBackend backend;
  const apps::ProxyApp app(apps::ProxyKind::kCoMD, 1);
  EXPECT_THROW(backend.write_checkpoint(app, "/nonexistent-dir/ckpt.bin"), IoError);
}

TEST(SyntheticBackend, DurationsAndBytesAreDeterministic) {
  SyntheticBackend::Rates rates;
  rates.step_duration = 0.5;
  rates.write_bandwidth_bps = 1.0e6;
  rates.fixed_latency = 0.25;
  rates.read_bandwidth_bps = 2.0e6;
  SyntheticBackend backend(rates);
  apps::ProxyApp app(apps::ProxyKind::kCoMD, 1);
  EXPECT_DOUBLE_EQ(backend.run_step(app), 0.5);
  const double bytes = static_cast<double>(app.state_bytes());
  const IoResult write = backend.write_checkpoint(app, "unused");
  EXPECT_DOUBLE_EQ(write.duration, 0.25 + bytes / 1.0e6);
  EXPECT_EQ(write.bytes, app.state_bytes());
  const IoResult restore = backend.restore_checkpoint(app, "unused");
  EXPECT_DOUBLE_EQ(restore.duration, bytes / 2.0e6);
  EXPECT_EQ(restore.bytes, app.state_bytes());
}

TEST(SyntheticBackend, DoesNotTouchTheApp) {
  SyntheticBackend backend(SyntheticBackend::Rates{});
  apps::ProxyApp app(apps::ProxyKind::kCoMD, 1);
  const auto checksum = app.checksum();
  backend.run_step(app);
  backend.write_checkpoint(app, "unused");
  EXPECT_EQ(app.checksum(), checksum);
  EXPECT_EQ(app.steps_completed(), 0u);
}

TEST(SyntheticBackend, RejectsBadRates) {
  SyntheticBackend::Rates bad;
  bad.step_duration = 0.0;
  EXPECT_THROW(SyntheticBackend{bad}, InvalidArgument);
  SyntheticBackend::Rates bad2;
  bad2.write_bandwidth_bps = -1.0;
  EXPECT_THROW(SyntheticBackend{bad2}, InvalidArgument);
}

TEST(IoResult, BandwidthHandlesZeroDuration) {
  EXPECT_DOUBLE_EQ((IoResult{0.0, 100}.bandwidth_bps()), 0.0);
  EXPECT_DOUBLE_EQ((IoResult{2.0, 100}.bandwidth_bps()), 50.0);
}

TEST(IoCounters, AggregatesAndDiffs) {
  IoCounters counters;
  counters.record_write({0.5, 1000});
  counters.record_write({1.5, 3000});
  counters.record_restore({0.5, 1000});
  EXPECT_EQ(counters.writes, 2u);
  EXPECT_EQ(counters.restores, 1u);
  EXPECT_EQ(counters.bytes_written, 4000u);
  EXPECT_EQ(counters.bytes_read, 1000u);
  EXPECT_DOUBLE_EQ(counters.effective_write_bandwidth_bps(), 2000.0);
  EXPECT_DOUBLE_EQ(counters.effective_read_bandwidth_bps(), 2000.0);

  IoCounters later = counters;
  later.record_write({1.0, 500});
  const IoCounters delta = later.since(counters);
  EXPECT_EQ(delta.writes, 1u);
  EXPECT_EQ(delta.bytes_written, 500u);
  EXPECT_EQ(delta.restores, 0u);

  IoCounters sum;
  sum += counters;
  sum += delta;
  EXPECT_EQ(sum.writes, later.writes);
  EXPECT_EQ(sum.bytes_written, later.bytes_written);
}

TEST(IoCounters, EmptyCountersReportZeroBandwidth) {
  const IoCounters counters;
  EXPECT_DOUBLE_EQ(counters.effective_write_bandwidth_bps(), 0.0);
  EXPECT_DOUBLE_EQ(counters.effective_read_bandwidth_bps(), 0.0);
}

}  // namespace
}  // namespace shiraz::proto
