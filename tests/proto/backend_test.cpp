#include "proto/backend.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "proto/checkpoint_store.h"

namespace shiraz::proto {
namespace {

TEST(RealBackend, StepAdvancesAppAndReportsPositiveDuration) {
  RealBackend backend;
  apps::ProxyApp app(apps::ProxyKind::kCoMD, 1);
  const Seconds dur = backend.run_step(app);
  EXPECT_GT(dur, 0.0);
  EXPECT_EQ(app.steps_completed(), 1u);
}

TEST(RealBackend, CheckpointRestoreRoundTripsThroughDisk) {
  RealBackend backend;
  const CheckpointStore store = CheckpointStore::make_temporary("backend");
  apps::ProxyApp app(apps::ProxyKind::kCoMD, 1);
  backend.run_step(app);
  backend.run_step(app);
  const auto checksum = app.checksum();

  const Seconds wdur = backend.write_checkpoint(app, store.path_for("job"));
  EXPECT_GT(wdur, 0.0);

  backend.run_step(app);  // diverge
  EXPECT_NE(app.checksum(), checksum);

  const Seconds rdur = backend.restore_checkpoint(app, store.path_for("job"));
  EXPECT_GT(rdur, 0.0);
  EXPECT_EQ(app.checksum(), checksum);
  EXPECT_EQ(app.steps_completed(), 2u);
}

TEST(RealBackend, LargerStateCostsMoreToWrite) {
  // The Fig 3 premise: checkpoint cost tracks state size. Take the median of
  // several samples to ride out scheduler noise.
  RealBackend backend;
  const CheckpointStore store = CheckpointStore::make_temporary("cost");
  const apps::ProxyApp small(apps::ProxyKind::kCoMD, 1);
  const apps::ProxyApp large(apps::ProxyKind::kMiniFE, 1);
  std::vector<Seconds> small_durs;
  std::vector<Seconds> large_durs;
  for (int i = 0; i < 5; ++i) {
    small_durs.push_back(backend.write_checkpoint(small, store.path_for("s")));
    large_durs.push_back(backend.write_checkpoint(large, store.path_for("l")));
  }
  std::sort(small_durs.begin(), small_durs.end());
  std::sort(large_durs.begin(), large_durs.end());
  EXPECT_GT(large_durs[2], small_durs[2] * 3.0)
      << "a ~28x larger state must be clearly slower to checkpoint";
}

TEST(RealBackend, RestoreFromMissingFileThrows) {
  RealBackend backend;
  apps::ProxyApp app(apps::ProxyKind::kCoMD, 1);
  EXPECT_THROW(backend.restore_checkpoint(app, "/nonexistent/ckpt.bin"), IoError);
}

TEST(RealBackend, WriteToInvalidPathThrows) {
  RealBackend backend;
  const apps::ProxyApp app(apps::ProxyKind::kCoMD, 1);
  EXPECT_THROW(backend.write_checkpoint(app, "/nonexistent-dir/ckpt.bin"), IoError);
}

TEST(SyntheticBackend, DurationsAreDeterministic) {
  SyntheticBackend::Rates rates;
  rates.step_duration = 0.5;
  rates.write_bandwidth_bps = 1.0e6;
  rates.fixed_latency = 0.25;
  rates.read_bandwidth_bps = 2.0e6;
  SyntheticBackend backend(rates);
  apps::ProxyApp app(apps::ProxyKind::kCoMD, 1);
  EXPECT_DOUBLE_EQ(backend.run_step(app), 0.5);
  const double bytes = static_cast<double>(app.state_bytes());
  EXPECT_DOUBLE_EQ(backend.write_checkpoint(app, "unused"), 0.25 + bytes / 1.0e6);
  EXPECT_DOUBLE_EQ(backend.restore_checkpoint(app, "unused"), bytes / 2.0e6);
}

TEST(SyntheticBackend, DoesNotTouchTheApp) {
  SyntheticBackend backend(SyntheticBackend::Rates{});
  apps::ProxyApp app(apps::ProxyKind::kCoMD, 1);
  const auto checksum = app.checksum();
  backend.run_step(app);
  backend.write_checkpoint(app, "unused");
  EXPECT_EQ(app.checksum(), checksum);
  EXPECT_EQ(app.steps_completed(), 0u);
}

TEST(SyntheticBackend, RejectsBadRates) {
  SyntheticBackend::Rates bad;
  bad.step_duration = 0.0;
  EXPECT_THROW(SyntheticBackend{bad}, InvalidArgument);
  SyntheticBackend::Rates bad2;
  bad2.write_bandwidth_bps = -1.0;
  EXPECT_THROW(SyntheticBackend{bad2}, InvalidArgument);
}

}  // namespace
}  // namespace shiraz::proto
