// Property-based suites: invariants that must hold across wide parameter
// grids and randomized configurations, not just at the paper's working
// points.
#include <cmath>

#include <gtest/gtest.h>

#include "core/analytical_model.h"
#include "core/switch_solver.h"
#include "reliability/exponential.h"
#include "reliability/weibull.h"
#include "sim/engine.h"

namespace shiraz {
namespace {

// ---------------------------------------------------------------------------
// Engine invariants over a (mtbf, delta, policy) grid.
// ---------------------------------------------------------------------------

struct GridPoint {
  double mtbf_hours;
  double delta_seconds;
  int policy;  // 0 = alternate, 1 = shiraz k=8, 2 = naive half-MTBF
};

std::string grid_name(const ::testing::TestParamInfo<GridPoint>& info) {
  const auto& p = info.param;
  std::string policy = p.policy == 0 ? "alt" : (p.policy == 1 ? "shiraz" : "naive");
  return "mtbf" + std::to_string(static_cast<int>(p.mtbf_hours)) + "_delta" +
         std::to_string(static_cast<int>(p.delta_seconds)) + "_" + policy;
}

class EngineInvariants : public ::testing::TestWithParam<GridPoint> {};

TEST_P(EngineInvariants, AccountingAndSanity) {
  const GridPoint p = GetParam();
  sim::EngineConfig cfg;
  cfg.t_total = hours(400.0);
  const sim::Engine engine(
      reliability::Weibull::from_mtbf(0.6, hours(p.mtbf_hours)), cfg);
  const std::vector<sim::SimJob> jobs{
      sim::SimJob::at_oci("lw", p.delta_seconds, hours(p.mtbf_hours)),
      sim::SimJob::at_oci("hw", p.delta_seconds * 20.0, hours(p.mtbf_hours))};

  const sim::AlternateAtFailure alt;
  const sim::ShirazPairScheduler shiraz(8);
  const sim::NaiveTimeSwitchScheduler naive(hours(p.mtbf_hours) / 2.0);
  const sim::Scheduler& policy =
      p.policy == 0 ? static_cast<const sim::Scheduler&>(alt)
                    : (p.policy == 1 ? static_cast<const sim::Scheduler&>(shiraz)
                                     : static_cast<const sim::Scheduler&>(naive));

  Rng rng(1234);
  const sim::SimResult res = engine.run(jobs, policy, rng);

  // 1. Exact time conservation.
  EXPECT_NEAR(res.accounted(), hours(400.0), 1e-6);
  // 2. Non-negative components everywhere.
  for (const auto& app : res.apps) {
    EXPECT_GE(app.useful, 0.0);
    EXPECT_GE(app.io, 0.0);
    EXPECT_GE(app.lost, 0.0);
    // 3. Useful work is an exact multiple of the (fixed) interval.
    const Seconds oci =
        checkpoint::optimal_interval(hours(p.mtbf_hours), app.name == "lw"
                                                              ? p.delta_seconds
                                                              : p.delta_seconds * 20.0);
    const double segments = app.useful / oci;
    EXPECT_NEAR(segments, std::round(segments), 1e-6) << app.name;
    // 4. I/O is checkpoint count times delta.
    EXPECT_NEAR(app.io,
                static_cast<double>(app.checkpoints) *
                    (app.name == "lw" ? p.delta_seconds : p.delta_seconds * 20.0),
                1e-6);
  }
  // 5. Every failure hit at most one app.
  std::size_t hits = 0;
  for (const auto& app : res.apps) hits += app.failures_hit;
  EXPECT_LE(hits, res.failures);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineInvariants,
    ::testing::Values(GridPoint{2.0, 30.0, 0}, GridPoint{2.0, 30.0, 1},
                      GridPoint{2.0, 30.0, 2}, GridPoint{5.0, 90.0, 0},
                      GridPoint{5.0, 90.0, 1}, GridPoint{5.0, 90.0, 2},
                      GridPoint{20.0, 300.0, 0}, GridPoint{20.0, 300.0, 1},
                      GridPoint{20.0, 300.0, 2}, GridPoint{50.0, 600.0, 0},
                      GridPoint{50.0, 600.0, 1}, GridPoint{50.0, 600.0, 2}),
    grid_name);

// ---------------------------------------------------------------------------
// Randomized ("fuzz") invariants: random parameters, fixed seeds.
// ---------------------------------------------------------------------------

class RandomizedInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedInvariants, EngineConservesTimeUnderRandomConfigs) {
  Rng meta(GetParam());
  const double mtbf_hours = meta.uniform(0.5, 60.0);
  const double delta_lw = meta.uniform(1.0, 600.0);
  const double delta_hw = delta_lw * meta.uniform(1.0, 100.0);
  const double restart = meta.uniform(0.0, 300.0);
  const int k = static_cast<int>(meta.uniform_int(0, 60));

  sim::EngineConfig cfg;
  cfg.t_total = hours(meta.uniform(50.0, 400.0));
  cfg.restart_cost = restart;
  const sim::Engine engine(
      reliability::Weibull::from_mtbf(meta.uniform(0.4, 1.0), hours(mtbf_hours)),
      cfg);
  const std::vector<sim::SimJob> jobs{
      sim::SimJob::at_oci("lw", delta_lw, hours(mtbf_hours)),
      sim::SimJob::at_oci("hw", delta_hw, hours(mtbf_hours))};
  const sim::ShirazPairScheduler policy(k);
  Rng rng(GetParam() * 977 + 1);
  const sim::SimResult res = engine.run(jobs, policy, rng);
  EXPECT_NEAR(res.accounted(), cfg.t_total, 1e-6)
      << "mtbf=" << mtbf_hours << " dlw=" << delta_lw << " dhw=" << delta_hw
      << " k=" << k << " restart=" << restart;
}

TEST_P(RandomizedInvariants, ModelComponentsNonNegativeAndBounded) {
  Rng meta(GetParam() + 5000);
  core::ModelConfig cfg;
  cfg.mtbf = hours(meta.uniform(0.5, 60.0));
  cfg.weibull_shape = meta.uniform(0.3, 1.2);
  cfg.epsilon = meta.uniform(0.2, 0.8);
  cfg.t_total = hours(meta.uniform(100.0, 5000.0));
  const core::ShirazModel model(cfg);
  // Stay inside the model's validity regime (segment length well below the
  // MTBF): the epsilon lost-work approximation overcharges when a single
  // segment rivals the mean gap, exactly as the paper's own 4x-stretch
  // exascale corner does.
  const core::AppSpec app{"a", cfg.mtbf * meta.uniform(2e-4, 0.02),
                          static_cast<unsigned>(meta.uniform_int(1, 2))};

  const Seconds t_switch = meta.uniform(0.0, 4.0) * cfg.mtbf;
  const core::Components first = model.first_app(app, t_switch, cfg.t_total);
  const core::Components second = model.second_app(app, t_switch, cfg.t_total);
  for (const core::Components& c : {first, second}) {
    EXPECT_GE(c.useful, 0.0);
    EXPECT_GE(c.io, 0.0);
    EXPECT_GE(c.lost, 0.0);
    EXPECT_LE(c.useful + c.io + c.lost, cfg.t_total * 1.25);
  }
  // Roles partition the gap: together they can at most fill the campaign.
  EXPECT_LE(first.useful + second.useful, cfg.t_total * 1.01);
}

TEST_P(RandomizedInvariants, SolverSweepMonotonicity) {
  Rng meta(GetParam() + 9000);
  core::ModelConfig cfg;
  cfg.mtbf = hours(meta.uniform(2.0, 30.0));
  cfg.t_total = hours(1000.0);
  const core::ShirazModel model(cfg);
  const double delta_hw = meta.uniform(600.0, 3600.0);
  const core::AppSpec lw{"lw", delta_hw / meta.uniform(3.0, 200.0), 1};
  const core::AppSpec hw{"hw", delta_hw, 1};
  core::SolverOptions opts;
  opts.max_k = 64;
  const core::SwitchSolution sol = solve_switch_point(model, lw, hw, opts);
  for (std::size_t i = 1; i < sol.sweep.size(); ++i) {
    EXPECT_GE(sol.sweep[i].delta_lw, sol.sweep[i - 1].delta_lw - 1e-6);
    EXPECT_LE(sol.sweep[i].delta_hw, sol.sweep[i - 1].delta_hw + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedInvariants,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Cross-distribution property: with memoryless (exponential) failures there
// is no reliability zone, so Shiraz's advantage should collapse.
// ---------------------------------------------------------------------------

TEST(MemorylessFailures, FairShirazAdvantageCollapses) {
  // With memoryless (exponential) failures there is no within-gap
  // reliability zone: shifting time toward the light app still moves *total*
  // useful work, but only by taking it from the heavy app. At the fairness
  // crossing the shares are even and the gain must vanish — so the solver
  // reports "no beneficial switch" for beta = 1 while the same pair benefits
  // handsomely at beta = 0.6.
  const core::AppSpec lw{"lw", 18.0, 1};
  const core::AppSpec hw{"hw", 1800.0, 1};
  core::SolverOptions opts;
  opts.keep_sweep = false;

  core::ModelConfig weib;
  weib.mtbf = hours(5.0);
  weib.weibull_shape = 0.6;
  weib.t_total = hours(1000.0);
  const core::SwitchSolution weib_sol =
      solve_switch_point(core::ShirazModel(weib), lw, hw, opts);
  ASSERT_TRUE(weib_sol.beneficial());
  EXPECT_GT(weib_sol.delta_total, hours(10.0));

  core::ModelConfig expo = weib;
  expo.weibull_shape = 1.0;  // exponential inter-arrivals
  const core::SwitchSolution expo_sol =
      solve_switch_point(core::ShirazModel(expo), lw, hw, opts);
  if (expo_sol.beneficial()) {
    EXPECT_LT(expo_sol.delta_total, 0.2 * weib_sol.delta_total);
  }

  // Simulation cross-check: running the Weibull-fair k = 26 on a memoryless
  // machine cheats one of the two apps (no free gain to split).
  sim::EngineConfig cfg;
  cfg.t_total = hours(1000.0);
  const std::vector<sim::SimJob> jobs{sim::SimJob::at_oci("lw", 18.0, hours(5.0)),
                                      sim::SimJob::at_oci("hw", 1800.0, hours(5.0))};
  const sim::Engine engine(reliability::Exponential(hours(5.0)), cfg);
  const sim::AlternateAtFailure alt;
  const sim::ShirazPairScheduler policy(*weib_sol.k);
  const sim::SimResult base = engine.run_many(jobs, alt, 32, 99);
  const sim::SimResult sz = engine.run_many(jobs, policy, 32, 99);
  const double min_gain = std::min(sz.apps[0].useful - base.apps[0].useful,
                                   sz.apps[1].useful - base.apps[1].useful);
  EXPECT_LT(min_gain, 0.0);
}

}  // namespace
}  // namespace shiraz
