// End-to-end checks of the paper's headline evaluation claims (Section 5),
// with the simulator as ground truth.
#include <gtest/gtest.h>

#include "core/energy.h"
#include "core/shiraz_plus.h"
#include "core/switch_solver.h"
#include "reliability/weibull.h"
#include "sim/engine.h"
#include "sim/optimizer.h"

namespace shiraz {
namespace {

core::ShirazModel make_model(double mtbf_hours) {
  core::ModelConfig cfg;
  cfg.mtbf = hours(mtbf_hours);
  cfg.t_total = hours(1000.0);
  return core::ShirazModel(cfg);
}

sim::Engine make_engine(double mtbf_hours) {
  sim::EngineConfig cfg;
  cfg.t_total = hours(1000.0);
  return sim::Engine(reliability::Weibull::from_mtbf(0.6, hours(mtbf_hours)), cfg);
}

TEST(Table2, SimOptimumConfirmsModelOptimum) {
  // One representative row per system scale (the full 8-row sweep is the
  // bench's job; here we verify the model-sim agreement property itself).
  struct Row {
    double mtbf_hours;
    double factor;
  };
  for (const Row row : {Row{5.0, 25.0}, Row{20.0, 5.0}}) {
    const core::ShirazModel model = make_model(row.mtbf_hours);
    const core::AppSpec lw{"lw", hours(0.5) / row.factor, 1};
    const core::AppSpec hw{"hw", hours(0.5), 1};
    core::SolverOptions opts;
    opts.keep_sweep = false;
    const core::SwitchSolution ms = solve_switch_point(model, lw, hw, opts);
    ASSERT_TRUE(ms.beneficial());

    const sim::Engine engine = make_engine(row.mtbf_hours);
    const sim::SimJob lwj =
        sim::SimJob::at_oci("lw", lw.delta, hours(row.mtbf_hours));
    const sim::SimJob hwj =
        sim::SimJob::at_oci("hw", hw.delta, hours(row.mtbf_hours));
    const int lo = std::max(1, *ms.k - 5);
    const sim::SimSwitchSolution ss =
        sim::find_fair_k_by_simulation(engine, lwj, hwj, lo, *ms.k + 5, 32, 2718);
    ASSERT_TRUE(ss.beneficial());
    EXPECT_NEAR(*ss.k, *ms.k, 2.0)
        << "MTBF=" << row.mtbf_hours << " factor=" << row.factor;
  }
}

TEST(Fig10, SimConfirmsPositiveTotalGainAtModelOptimum) {
  // At the Fig 10 working point the model claims ~33h of extra useful work at
  // k = 26; the simulation must confirm a comparable gain at that k.
  const sim::Engine engine = make_engine(5.0);
  const sim::SimJob lw = sim::SimJob::at_oci("lw", 18.0, hours(5.0));
  const sim::SimJob hw = sim::SimJob::at_oci("hw", 1800.0, hours(5.0));
  const sim::SimSwitchCandidate c = simulate_switch_point(engine, lw, hw, 26, 48, 555);
  EXPECT_GT(c.delta_total, hours(15.0));
  EXPECT_LT(c.delta_total, hours(55.0));
}

TEST(Fig10, SwitchingMuchTooLateHurtsTheHeavyApp) {
  const sim::Engine engine = make_engine(5.0);
  const sim::SimJob lw = sim::SimJob::at_oci("lw", 18.0, hours(5.0));
  const sim::SimJob hw = sim::SimJob::at_oci("hw", 1800.0, hours(5.0));
  const sim::SimSwitchCandidate c =
      simulate_switch_point(engine, lw, hw, 120, 24, 555);
  EXPECT_LT(c.delta_hw, 0.0);
}

TEST(Fig10, SwitchingMuchTooSoonHurtsTheLightApp) {
  const sim::Engine engine = make_engine(5.0);
  const sim::SimJob lw = sim::SimJob::at_oci("lw", 18.0, hours(5.0));
  const sim::SimJob hw = sim::SimJob::at_oci("hw", 1800.0, hours(5.0));
  const sim::SimSwitchCandidate c = simulate_switch_point(engine, lw, hw, 4, 24, 555);
  EXPECT_LT(c.delta_lw, 0.0);
}

TEST(Fig13, SimulatedShirazPlusCutsIoWithSmallPerfCost) {
  // Run Shiraz+ in the simulator: HW at 2x stretch, at the model's fair k.
  const double mtbf_hours = 5.0;
  const core::ShirazModel model = make_model(mtbf_hours);
  const core::AppSpec lw{"lw", hours(0.02), 1};
  const core::AppSpec hw{"hw", hours(0.5), 1};
  core::SolverOptions opts;
  opts.keep_sweep = false;
  const core::SwitchSolution sol = solve_switch_point(model, lw, hw, opts);
  ASSERT_TRUE(sol.beneficial());

  const sim::Engine engine = make_engine(mtbf_hours);
  const std::vector<sim::SimJob> plain{
      sim::SimJob::at_oci("lw", lw.delta, hours(mtbf_hours)),
      sim::SimJob::at_oci("hw", hw.delta, hours(mtbf_hours))};
  const std::vector<sim::SimJob> stretched{
      sim::SimJob::at_oci("lw", lw.delta, hours(mtbf_hours)),
      sim::SimJob::at_oci("hw", hw.delta, hours(mtbf_hours), /*stretch=*/2)};
  const sim::AlternateAtFailure baseline;
  const sim::ShirazPairScheduler shiraz(*sol.k);

  const sim::SimResult base = engine.run_many(plain, baseline, 40, 777);
  const sim::SimResult plus = engine.run_many(stretched, shiraz, 40, 777);

  // Checkpoint I/O drops substantially versus the baseline...
  EXPECT_LT(plus.total_io(), 0.75 * base.total_io());
  // ...while total useful work does not degrade (Shiraz+ spends part of the
  // Shiraz gain, so it must stay at least at baseline level).
  EXPECT_GE(plus.total_useful(), 0.99 * base.total_useful());
}

TEST(Fig13, StretchFourCutsIoDeeperThanStretchTwo) {
  const core::ShirazModel model = make_model(20.0);
  const core::AppSpec lw{"lw", hours(0.02), 1};
  const core::AppSpec hw{"hw", hours(0.5), 1};
  core::SolverOptions opts;
  opts.keep_sweep = false;
  const core::SwitchSolution sol = solve_switch_point(model, lw, hw, opts);
  ASSERT_TRUE(sol.beneficial());

  const sim::Engine engine = make_engine(20.0);
  const sim::ShirazPairScheduler shiraz(*sol.k);
  auto stretched = [&](unsigned s) {
    return std::vector<sim::SimJob>{
        sim::SimJob::at_oci("lw", lw.delta, hours(20.0)),
        sim::SimJob::at_oci("hw", hw.delta, hours(20.0), s)};
  };
  const sim::SimResult s2 = engine.run_many(stretched(2), shiraz, 32, 888);
  const sim::SimResult s4 = engine.run_many(stretched(4), shiraz, 32, 888);
  EXPECT_LT(s4.apps[1].io, s2.apps[1].io);
}

TEST(EnergyPipeline, SimulatedGainTranslatesToDollars) {
  // Wire a simulated throughput gain through the energy model, petascale.
  const sim::Engine engine = make_engine(20.0);
  const sim::SimJob lw = sim::SimJob::at_oci("lw", hours(0.1), hours(20.0));
  const sim::SimJob hw = sim::SimJob::at_oci("hw", hours(0.5), hours(20.0));
  const sim::SimSwitchCandidate c = simulate_switch_point(engine, lw, hw, 11, 32, 999);
  ASSERT_GT(c.delta_total, 0.0);
  const double gain_per_year = as_hours(c.delta_total) * (kHoursPerYear / 1000.0);
  core::EnergyModelConfig ecfg;
  ecfg.system_power_megawatts = 10.0;
  const core::EnergySavings savings = core::energy_savings(gain_per_year, ecfg);
  EXPECT_GT(savings.dollars_per_year, 10'000.0);
  EXPECT_LT(savings.dollars_per_year, 300'000.0);
}

}  // namespace
}  // namespace shiraz
