// Cross-integration: the adaptive Shiraz controller driving the prototype
// runtime — the same policy object that runs in the simulator schedules real
// (synthetic-backend) executions, learning the failure process from the gaps
// the runtime reports.
#include <gtest/gtest.h>

#include "adaptive/adaptive_scheduler.h"
#include "apps/proxy_app.h"
#include "checkpoint/oci.h"
#include "proto/backend.h"
#include "proto/checkpoint_store.h"
#include "proto/runtime.h"
#include "reliability/trace.h"
#include "reliability/weibull.h"

namespace shiraz {
namespace {

using apps::ProxyApp;
using apps::ProxyKind;

proto::SyntheticBackend::Rates fast_rates() {
  const ProxyApp probe(ProxyKind::kCoMD, 1);
  proto::SyntheticBackend::Rates rates;
  rates.step_duration = 0.02;
  rates.fixed_latency = 0.0;
  // CoMD checkpoint = 0.05 s; miniFE (39x state) = ~1.95 s.
  rates.write_bandwidth_bps = static_cast<double>(probe.state_bytes()) / 0.05;
  rates.read_bandwidth_bps = rates.write_bandwidth_bps * 2.0;
  return rates;
}

std::vector<proto::ProtoJob> pair_jobs(Seconds mtbf, unsigned stretch = 1) {
  const ProxyApp comd(ProxyKind::kCoMD, 1);
  const ProxyApp minife(ProxyKind::kMiniFE, 1);
  const double ratio = static_cast<double>(minife.state_bytes()) /
                       static_cast<double>(comd.state_bytes());
  std::vector<proto::ProtoJob> jobs;
  jobs.emplace_back("CoMD", comd, checkpoint::optimal_interval(mtbf, 0.05));
  jobs.emplace_back("miniFE", minife,
                    checkpoint::optimal_interval(mtbf, 0.05 * ratio) * stretch);
  return jobs;
}

TEST(AdaptiveProto, ControllerLearnsFromRuntimeGaps) {
  const Seconds mtbf = 60.0;  // accelerated failures
  const Seconds horizon = 240.0 * 60.0;

  adaptive::AdaptiveConfig cfg;
  cfg.estimator.prior_mtbf = 10.0 * mtbf;  // badly wrong prior
  cfg.estimator.min_samples = 8;
  cfg.estimator.window = 64;
  cfg.model_horizon = horizon;
  const adaptive::AdaptiveShirazScheduler controller(
      core::AppSpec{"CoMD", 0.05, 1}, core::AppSpec{"miniFE", 1.95, 1}, cfg);
  const int k_prior = controller.current_k();

  proto::SyntheticBackend backend(fast_rates());
  proto::CheckpointStore store = proto::CheckpointStore::make_temporary("adpt");
  proto::Runtime runtime(backend, store);
  Rng rng(101);
  const auto trace = reliability::FailureTrace::generate(
      reliability::Weibull::from_mtbf(0.6, mtbf), horizon, rng);
  ASSERT_GT(trace.size(), 100u);

  const proto::ProtoResult res =
      runtime.run(pair_jobs(mtbf), controller, trace.times(), horizon);

  EXPECT_GT(res.total_useful(), 0.0);
  EXPECT_GT(controller.resolves(), 1u) << "controller must have re-solved";
  EXPECT_NE(controller.current_k(), k_prior) << "k must move off the wrong prior";
  EXPECT_NEAR(controller.current_estimate().mtbf / mtbf, 1.0, 0.35);
}

TEST(AdaptiveProto, RuntimeResetsControllerBetweenCampaigns) {
  const Seconds mtbf = 60.0;
  adaptive::AdaptiveConfig cfg;
  cfg.estimator.prior_mtbf = 5.0 * mtbf;
  cfg.estimator.min_samples = 8;
  cfg.model_horizon = 7200.0;
  const adaptive::AdaptiveShirazScheduler controller(
      core::AppSpec{"CoMD", 0.05, 1}, core::AppSpec{"miniFE", 1.95, 1}, cfg);

  proto::SyntheticBackend backend(fast_rates());
  proto::CheckpointStore store = proto::CheckpointStore::make_temporary("adpt2");
  proto::Runtime runtime(backend, store);
  Rng rng(202);
  const auto trace = reliability::FailureTrace::generate(
      reliability::Weibull::from_mtbf(0.6, mtbf), 7200.0, rng);

  (void)runtime.run(pair_jobs(mtbf), controller, trace.times(), 7200.0);
  const std::size_t first_resolves = controller.resolves();
  EXPECT_GE(first_resolves, 1u);
  // A second campaign through the same controller starts fresh (Runtime calls
  // reset()), so the resolve counter restarts rather than accumulating.
  (void)runtime.run(pair_jobs(mtbf), controller, trace.times(), 7200.0);
  EXPECT_EQ(controller.resolves(), first_resolves);
}

TEST(AdaptiveProto, AdaptiveMatchesOracleStaticOnRealExecution) {
  // On the prototype runtime, the learned schedule should approach the
  // oracle-static one (solved against the true MTBF) in total useful work.
  const Seconds mtbf = 60.0;
  const Seconds horizon = 200.0 * 60.0;
  proto::SyntheticBackend backend(fast_rates());
  proto::CheckpointStore store = proto::CheckpointStore::make_temporary("adpt3");
  proto::Runtime runtime(backend, store);
  Rng rng(303);
  const auto trace = reliability::FailureTrace::generate(
      reliability::Weibull::from_mtbf(0.6, mtbf), horizon, rng);

  core::ModelConfig mcfg;
  mcfg.mtbf = mtbf;
  mcfg.t_total = horizon;
  core::SolverOptions opts;
  opts.keep_sweep = false;
  const core::SwitchSolution oracle = core::solve_switch_point(
      core::ShirazModel(mcfg), core::AppSpec{"CoMD", 0.05, 1},
      core::AppSpec{"miniFE", 1.95, 1}, opts);
  ASSERT_TRUE(oracle.beneficial());
  const sim::ShirazPairScheduler static_policy(*oracle.k);

  adaptive::AdaptiveConfig acfg;
  acfg.estimator.prior_mtbf = 8.0 * mtbf;
  acfg.estimator.min_samples = 8;
  acfg.estimator.window = 128;
  acfg.model_horizon = horizon;
  const adaptive::AdaptiveShirazScheduler adaptive_policy(
      core::AppSpec{"CoMD", 0.05, 1}, core::AppSpec{"miniFE", 1.95, 1}, acfg);

  const proto::ProtoResult st =
      runtime.run(pair_jobs(mtbf), static_policy, trace.times(), horizon);
  const proto::ProtoResult ad =
      runtime.run(pair_jobs(mtbf), adaptive_policy, trace.times(), horizon);
  EXPECT_GT(ad.total_useful(), 0.93 * st.total_useful());
}

}  // namespace
}  // namespace shiraz
