// Multi-application Shiraz (paper Section 5, Fig 14): pair rotation across a
// real-world application mix, simulated end to end.
#include <gtest/gtest.h>

#include "apps/catalog.h"
#include "core/pairing.h"
#include "reliability/weibull.h"
#include "sim/engine.h"

namespace shiraz {
namespace {

std::vector<apps::AppProfile> ten_apps() {
  auto catalog = apps::table1_catalog();
  catalog.push_back(apps::AppProfile{"CoMD-like proxy", 3.0, "Materials", "local"});
  return catalog;
}

struct Campaign {
  sim::SimResult baseline;
  sim::SimResult shiraz;
};

Campaign run_campaign(double mtbf_hours, Seconds horizon, std::size_t reps,
                      std::uint64_t seed) {
  const Seconds mtbf = hours(mtbf_hours);
  core::ModelConfig cfg;
  cfg.mtbf = mtbf;
  cfg.t_total = horizon;
  const core::ShirazModel model(cfg);

  Rng rng(seed);
  auto pairs = core::make_pairs(ten_apps(), core::PairingStrategy::kExtreme, rng);
  core::solve_pairs(model, pairs);

  std::vector<sim::SimJob> jobs;
  std::vector<std::optional<int>> ks;
  for (const auto& p : pairs) {
    jobs.push_back(sim::SimJob::at_oci(p.light.name, p.light.checkpoint_cost, mtbf));
    jobs.push_back(sim::SimJob::at_oci(p.heavy.name, p.heavy.checkpoint_cost, mtbf));
    ks.push_back(p.k);
  }

  sim::EngineConfig ecfg;
  ecfg.t_total = horizon;
  const sim::Engine engine(reliability::Weibull::from_mtbf(0.6, mtbf), ecfg);
  Campaign c;
  c.baseline = engine.run_many(jobs, sim::AlternateAtFailure{}, reps, seed);
  c.shiraz = engine.run_many(jobs, sim::PairRotationScheduler{ks}, reps, seed);
  return c;
}

TEST(MultiApp, ShirazBeatsBaselineOnExascale) {
  const Campaign c = run_campaign(5.0, hours(2000.0), 12, 42);
  EXPECT_GT(c.shiraz.total_useful(), c.baseline.total_useful());
}

TEST(MultiApp, ShirazBeatsBaselineOnPetascale) {
  const Campaign c = run_campaign(20.0, hours(4000.0), 12, 43);
  EXPECT_GT(c.shiraz.total_useful(), c.baseline.total_useful());
}

TEST(MultiApp, NoApplicationStarves) {
  // Fig 14's fairness claim: every application keeps making progress under
  // pair rotation, and none loses more than a sliver vs the baseline.
  const Campaign c = run_campaign(5.0, hours(4000.0), 16, 44);
  for (std::size_t i = 0; i < c.shiraz.apps.size(); ++i) {
    EXPECT_GT(c.shiraz.apps[i].useful, 0.0) << c.shiraz.apps[i].name;
    EXPECT_GT(c.shiraz.apps[i].useful, 0.90 * c.baseline.apps[i].useful)
        << c.shiraz.apps[i].name;
  }
}

TEST(MultiApp, EveryPairRunsBetweenFailures) {
  // Over many gaps, each of the 5 pairs must have been scheduled: all 10 apps
  // accumulate checkpoints.
  const Campaign c = run_campaign(5.0, hours(2000.0), 8, 45);
  for (const auto& app : c.shiraz.apps) {
    EXPECT_GT(app.checkpoints, 0u) << app.name;
  }
}

TEST(MultiApp, FortyJobConservativeMixStillGains) {
  // The paper's conservative experiment: 5 heavy + 35 light jobs. We model it
  // as the same pair-rotation scheme over 20 pairs (5 heavy-light extreme
  // pairs plus 15 light-light pairs that fall back to alternation).
  const Seconds mtbf = hours(5.0);
  const Seconds horizon = hours(2000.0);
  core::ModelConfig cfg;
  cfg.mtbf = mtbf;
  cfg.t_total = horizon;
  const core::ShirazModel model(cfg);

  const auto catalog = apps::table1_catalog();
  const auto heavy5 = apps::heaviest(catalog, 5);
  const auto light3 = apps::lightest(catalog, 3);
  std::vector<apps::AppProfile> mix = heavy5;
  Rng pick(46);
  for (int i = 0; i < 35; ++i) {
    auto app = light3[static_cast<std::size_t>(pick.uniform_int(0, 2))];
    app.name += "#" + std::to_string(i);
    mix.push_back(app);
  }
  Rng rng(47);
  auto pairs = core::make_pairs(mix, core::PairingStrategy::kExtreme, rng);
  core::solve_pairs(model, pairs);

  std::vector<sim::SimJob> jobs;
  std::vector<std::optional<int>> ks;
  for (const auto& p : pairs) {
    jobs.push_back(sim::SimJob::at_oci(p.light.name, p.light.checkpoint_cost, mtbf));
    jobs.push_back(sim::SimJob::at_oci(p.heavy.name, p.heavy.checkpoint_cost, mtbf));
    ks.push_back(p.k);
  }
  sim::EngineConfig ecfg;
  ecfg.t_total = horizon;
  const sim::Engine engine(reliability::Weibull::from_mtbf(0.6, mtbf), ecfg);
  const sim::SimResult base = engine.run_many(jobs, sim::AlternateAtFailure{}, 8, 48);
  const sim::SimResult sz =
      engine.run_many(jobs, sim::PairRotationScheduler{ks}, 8, 48);
  EXPECT_GT(sz.total_useful(), base.total_useful());
}

TEST(MultiApp, ExtremePairingGainsAtLeastAsMuchAsRandomOnAverage) {
  const Seconds mtbf = hours(5.0);
  const Seconds horizon = hours(2000.0);
  core::ModelConfig cfg;
  cfg.mtbf = mtbf;
  cfg.t_total = horizon;
  const core::ShirazModel model(cfg);

  auto run_with = [&](core::PairingStrategy strategy, std::uint64_t seed) {
    Rng rng(seed);
    auto pairs = core::make_pairs(ten_apps(), strategy, rng);
    core::solve_pairs(model, pairs);
    std::vector<sim::SimJob> jobs;
    std::vector<std::optional<int>> ks;
    for (const auto& p : pairs) {
      jobs.push_back(sim::SimJob::at_oci(p.light.name, p.light.checkpoint_cost, mtbf));
      jobs.push_back(sim::SimJob::at_oci(p.heavy.name, p.heavy.checkpoint_cost, mtbf));
      ks.push_back(p.k);
    }
    sim::EngineConfig ecfg;
    ecfg.t_total = horizon;
    const sim::Engine engine(reliability::Weibull::from_mtbf(0.6, mtbf), ecfg);
    const sim::SimResult base =
        engine.run_many(jobs, sim::AlternateAtFailure{}, 10, seed);
    const sim::SimResult sz =
        engine.run_many(jobs, sim::PairRotationScheduler{ks}, 10, seed);
    return sz.total_useful() - base.total_useful();
  };

  const double extreme_gain = run_with(core::PairingStrategy::kExtreme, 50);
  double random_gain_sum = 0.0;
  for (std::uint64_t s = 51; s < 55; ++s) {
    random_gain_sum += run_with(core::PairingStrategy::kRandom, s);
  }
  EXPECT_GE(extreme_gain, random_gain_sum / 4.0 - hours(5.0));
}

}  // namespace
}  // namespace shiraz
