// Section 4 of the paper, as executable assertions: the analytical model's
// useful-work and checkpoint-overhead estimates must match the discrete-event
// simulator across MTBFs, checkpoint costs, and switch times.
#include <gtest/gtest.h>

#include "core/analytical_model.h"
#include "reliability/weibull.h"
#include "sim/engine.h"

namespace shiraz {
namespace {

struct Fig9Scenario {
  double mtbf_hours;
  double delta_seconds;
};

class ModelVsSim : public ::testing::TestWithParam<Fig9Scenario> {
 protected:
  ModelVsSim()
      : mtbf_(hours(GetParam().mtbf_hours)),
        delta_(GetParam().delta_seconds),
        model_(make_config()),
        engine_(reliability::Weibull::from_mtbf(0.6, mtbf_), make_engine_config()) {}

  core::ModelConfig make_config() const {
    core::ModelConfig cfg;
    cfg.mtbf = hours(GetParam().mtbf_hours);
    cfg.t_total = hours(1000.0);
    return cfg;
  }

  sim::EngineConfig make_engine_config() const {
    sim::EngineConfig cfg;
    cfg.t_total = hours(1000.0);
    return cfg;
  }

  Seconds mtbf_;
  Seconds delta_;
  core::ShirazModel model_;
  sim::Engine engine_;
};

TEST_P(ModelVsSim, FirstAppUsefulAndIoMatch) {
  const core::AppSpec app{"a", delta_, 1};
  const sim::SimJob job = sim::SimJob::at_oci("a", delta_, mtbf_);
  const int max_k = static_cast<int>(mtbf_ / model_.segment(app)) + 2;
  for (int k = 1; k <= max_k; k += std::max(1, max_k / 4)) {
    const core::Components m =
        model_.first_app(app, model_.switch_time(app, k), hours(1000.0));
    const sim::FirstAppScheduler policy(k);
    const sim::SimResult s = engine_.run_many({job}, policy, 40, 1234);
    // Paper reports average differences of ~2-3 hours on these components
    // over a 1000h campaign; allow 5% relative + a small absolute floor.
    EXPECT_NEAR(s.apps[0].useful, m.useful, 0.05 * m.useful + hours(3.0)) << "k=" << k;
    EXPECT_NEAR(s.apps[0].io, m.io, 0.05 * m.io + hours(0.5)) << "k=" << k;
  }
}

TEST_P(ModelVsSim, SecondAppUsefulAndIoMatch) {
  const core::AppSpec app{"a", delta_, 1};
  const sim::SimJob job = sim::SimJob::at_oci("a", delta_, mtbf_);
  for (const double frac : {0.1, 0.4, 0.7, 1.0}) {
    const Seconds t0 = frac * mtbf_;
    const core::Components m = model_.second_app(app, t0, hours(1000.0));
    const sim::SecondAppScheduler policy(t0);
    const sim::SimResult s = engine_.run_many({job}, policy, 40, 917);
    EXPECT_NEAR(s.apps[0].useful, m.useful, 0.05 * m.useful + hours(3.0))
        << "frac=" << frac;
    EXPECT_NEAR(s.apps[0].io, m.io, 0.05 * m.io + hours(0.5)) << "frac=" << frac;
  }
}

TEST_P(ModelVsSim, LostWorkAgreesWithEpsilonModel) {
  // Lost work uses the paper's epsilon = 0.45 approximation; agreement is
  // looser (the true conditional loss fraction varies with segment length).
  const core::AppSpec app{"a", delta_, 1};
  const sim::SimJob job = sim::SimJob::at_oci("a", delta_, mtbf_);
  const core::Components m =
      model_.second_app(app, 0.3 * mtbf_, hours(1000.0));
  const sim::SecondAppScheduler policy(0.3 * mtbf_);
  const sim::SimResult s = engine_.run_many({job}, policy, 40, 4242);
  EXPECT_NEAR(s.apps[0].lost, m.lost, 0.30 * m.lost + hours(2.0));
}

std::string fig9_name(const ::testing::TestParamInfo<Fig9Scenario>& info) {
  return "mtbf" + std::to_string(static_cast<int>(info.param.mtbf_hours)) +
         "h_delta" + std::to_string(static_cast<int>(info.param.delta_seconds)) + "s";
}

INSTANTIATE_TEST_SUITE_P(
    Fig9Grid, ModelVsSim,
    ::testing::Values(Fig9Scenario{5.0, 30.0}, Fig9Scenario{5.0, 300.0},
                      Fig9Scenario{20.0, 30.0}, Fig9Scenario{20.0, 300.0}),
    fig9_name);

TEST(ModelVsSimPair, ShirazOutcomeMatchesAtPaperOptimum) {
  // The full Shiraz pair at the Fig 10 working point (MTBF 5h, factor 100,
  // k = 26): model and simulation must agree on every component within a few
  // percent, for both roles.
  core::ModelConfig cfg;
  cfg.mtbf = hours(5.0);
  cfg.t_total = hours(1000.0);
  const core::ShirazModel model(cfg);
  const core::AppSpec lw{"lw", 18.0, 1};
  const core::AppSpec hw{"hw", 1800.0, 1};
  const core::PairOutcome m = model.shiraz(lw, hw, 26);

  sim::EngineConfig ecfg;
  ecfg.t_total = hours(1000.0);
  const sim::Engine engine(reliability::Weibull::from_mtbf(0.6, hours(5.0)), ecfg);
  const std::vector<sim::SimJob> jobs{sim::SimJob::at_oci("lw", 18.0, hours(5.0)),
                                      sim::SimJob::at_oci("hw", 1800.0, hours(5.0))};
  const sim::ShirazPairScheduler policy(26);
  const sim::SimResult s = engine.run_many(jobs, policy, 60, 31337);

  EXPECT_NEAR(s.apps[0].useful, m.lw.useful, 0.04 * m.lw.useful);
  EXPECT_NEAR(s.apps[1].useful, m.hw.useful, 0.05 * m.hw.useful);
  EXPECT_NEAR(s.apps[0].io, m.lw.io, 0.05 * m.lw.io);
  EXPECT_NEAR(s.apps[1].io, m.hw.io, 0.05 * m.hw.io);
}

TEST(ModelVsSimPair, BaselineOutcomeMatches) {
  core::ModelConfig cfg;
  cfg.mtbf = hours(20.0);
  cfg.t_total = hours(1000.0);
  const core::ShirazModel model(cfg);
  const core::AppSpec lw{"lw", 72.0, 1};
  const core::AppSpec hw{"hw", 1800.0, 1};
  const core::PairOutcome m = model.baseline_pair(lw, hw);

  sim::EngineConfig ecfg;
  ecfg.t_total = hours(1000.0);
  const sim::Engine engine(reliability::Weibull::from_mtbf(0.6, hours(20.0)), ecfg);
  const std::vector<sim::SimJob> jobs{sim::SimJob::at_oci("lw", 72.0, hours(20.0)),
                                      sim::SimJob::at_oci("hw", 1800.0, hours(20.0))};
  const sim::AlternateAtFailure policy;
  const sim::SimResult s = engine.run_many(jobs, policy, 60, 5150);

  EXPECT_NEAR(s.apps[0].useful, m.lw.useful, 0.05 * m.lw.useful);
  EXPECT_NEAR(s.apps[1].useful, m.hw.useful, 0.06 * m.hw.useful);
}

}  // namespace
}  // namespace shiraz
