#include "common/counting_stream.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace shiraz {
namespace {

TEST(CountingStreambuf, CountsBlockWrites) {
  std::ostringstream sink;
  CountingStreambuf counter(*sink.rdbuf());
  std::ostream out(&counter);
  const std::string payload = "0123456789";
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  EXPECT_EQ(counter.bytes_written(), payload.size());
  EXPECT_EQ(sink.str(), payload);
}

TEST(CountingStreambuf, CountsSingleCharacterWrites) {
  std::ostringstream sink;
  CountingStreambuf counter(*sink.rdbuf());
  std::ostream out(&counter);
  out.put('a');
  out.put('b');
  out << 'c';
  EXPECT_EQ(counter.bytes_written(), 3u);
  EXPECT_EQ(sink.str(), "abc");
}

TEST(CountingStreambuf, CountsBlockReads) {
  std::istringstream source("0123456789");
  CountingStreambuf counter(*source.rdbuf());
  std::istream in(&counter);
  char buf[4] = {};
  in.read(buf, 4);
  EXPECT_EQ(counter.bytes_read(), 4u);
  EXPECT_EQ(std::string(buf, 4), "0123");
  in.read(buf, 4);
  EXPECT_EQ(counter.bytes_read(), 8u);
}

TEST(CountingStreambuf, CountsSingleCharacterReadsButNotPeeks) {
  std::istringstream source("xyz");
  CountingStreambuf counter(*source.rdbuf());
  std::istream in(&counter);
  EXPECT_EQ(in.peek(), 'x');
  EXPECT_EQ(counter.bytes_read(), 0u) << "a peek consumes nothing";
  EXPECT_EQ(in.get(), 'x');
  EXPECT_EQ(in.get(), 'y');
  EXPECT_EQ(counter.bytes_read(), 2u);
}

TEST(CountingStreambuf, ShortReadsCountOnlyDeliveredBytes) {
  std::istringstream source("ab");
  CountingStreambuf counter(*source.rdbuf());
  std::istream in(&counter);
  char buf[8] = {};
  in.read(buf, 8);
  EXPECT_TRUE(in.eof());
  EXPECT_EQ(in.gcount(), 2);
  EXPECT_EQ(counter.bytes_read(), 2u);
}

TEST(CountingStreambuf, TracksReadsAndWritesIndependently) {
  std::stringstream both;
  CountingStreambuf counter(*both.rdbuf());
  std::ostream out(&counter);
  out << "hello";
  std::istream in(&counter);
  char buf[5] = {};
  in.read(buf, 5);
  EXPECT_EQ(counter.bytes_written(), 5u);
  EXPECT_EQ(counter.bytes_read(), 5u);
  EXPECT_EQ(std::string(buf, 5), "hello");
}

TEST(CountingStreambuf, FlushForwardsToInnerBuffer) {
  std::ostringstream sink;
  CountingStreambuf counter(*sink.rdbuf());
  std::ostream out(&counter);
  out << "data" << std::flush;
  EXPECT_TRUE(out.good());
  EXPECT_EQ(counter.bytes_written(), 4u);
}

TEST(CountingStreambuf, LargePayloadCountsExactly) {
  std::ostringstream sink;
  CountingStreambuf counter(*sink.rdbuf());
  std::ostream out(&counter);
  const std::string chunk(64 * 1024, 'z');
  for (int i = 0; i < 16; ++i) {
    out.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  }
  EXPECT_EQ(counter.bytes_written(), 16u * 64u * 1024u);
  EXPECT_EQ(sink.str().size(), 16u * 64u * 1024u);
}

}  // namespace
}  // namespace shiraz
