#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace shiraz {
namespace {

TEST(Histogram, BinsCoverRangeEvenly) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, CountsLandInCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0 (inclusive lower edge)
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OverflowBinCatchesValuesAtOrAboveHi) {
  Histogram h(0.0, 10.0, 5);
  h.add(10.0);
  h.add(1e9);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, UnderflowClampsIntoFirstBin) {
  Histogram h(5.0, 10.0, 5);
  h.add(-3.0);
  EXPECT_EQ(h.count(0), 1u);
}

TEST(Histogram, FractionsSumToOne) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) / 100.0);
  double sum = 0.0;
  for (std::size_t b = 0; b <= h.bin_count(); ++b) sum += h.fraction(b);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, CumulativeFractionIsMonotone) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 1000; ++i) h.add(static_cast<double>(i % 97) / 100.0);
  double prev = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    const double c = h.cumulative_fraction(b);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(h.cumulative_fraction(h.bin_count()), 1.0, 1e-12);
}

TEST(Histogram, AddAllMatchesIndividualAdds) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  const std::vector<double> xs{1.0, 3.0, 3.5, 7.0, 12.0};
  a.add_all(xs);
  for (const double x : xs) b.add(x);
  for (std::size_t i = 0; i <= a.bin_count(); ++i) EXPECT_EQ(a.count(i), b.count(i));
}

TEST(Histogram, RenderShowsEveryBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  const std::string text = h.render();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(Histogram, BinAccessorsRejectOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.count(3), InvalidArgument);
  EXPECT_THROW(h.bin_lo(3), InvalidArgument);
}

}  // namespace
}  // namespace shiraz
