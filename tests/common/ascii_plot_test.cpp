#include "common/ascii_plot.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "common/error.h"

namespace shiraz {
namespace {

TEST(AsciiPlot, RendersSeriesGlyphsAndLegend) {
  Series s;
  s.label = "ramp";
  s.glyph = '*';
  for (int i = 0; i < 20; ++i) s.ys.push_back(static_cast<double>(i));
  const std::string plot = render_plot({s});
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("* = ramp"), std::string::npos);
}

TEST(AsciiPlot, ExtremesLandOnTopAndBottomRows) {
  Series s;
  s.label = "updown";
  s.ys = {0.0, 10.0};
  PlotOptions opts;
  opts.height = 6;
  opts.zero_line = false;
  const std::string plot = render_plot({s}, opts);
  std::vector<std::string> lines;
  std::istringstream in(plot);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  // First canvas row holds the max, last canvas row the min.
  EXPECT_NE(lines[0].find('*'), std::string::npos);
  EXPECT_NE(lines[5].find('*'), std::string::npos);
}

TEST(AsciiPlot, ZeroLineDrawnWhenRangeSpansZero) {
  Series s;
  s.label = "signed";
  s.ys = {-5.0, 5.0};
  const std::string with = render_plot({s});
  EXPECT_NE(with.find("---"), std::string::npos);

  Series positive;
  positive.label = "pos";
  positive.ys = {1.0, 5.0};
  PlotOptions opts;
  const std::string without = render_plot({positive}, opts);
  // The only long dash run should be the bottom border, prefixed by '+'.
  const auto first_dashes = without.find("----");
  ASSERT_NE(first_dashes, std::string::npos);
  EXPECT_EQ(without[first_dashes - 1], '+');
}

TEST(AsciiPlot, MultipleSeriesShareTheScale) {
  Series a;
  a.label = "low";
  a.glyph = 'a';
  a.ys = {1.0, 1.0, 1.0};
  Series b;
  b.label = "high";
  b.glyph = 'b';
  b.ys = {9.0, 9.0, 9.0};
  const std::string plot = render_plot({a, b});
  // 'b' must appear above 'a' in the rendering.
  EXPECT_LT(plot.find('b'), plot.find('a'));
}

TEST(AsciiPlot, ConstantSeriesGetsArtificialRange) {
  Series s;
  s.label = "flat";
  s.ys = {3.0, 3.0, 3.0};
  EXPECT_NO_THROW(render_plot({s}));
}

TEST(AsciiPlot, RejectsBadInput) {
  EXPECT_THROW(render_plot({}), InvalidArgument);
  Series empty;
  empty.label = "empty";
  EXPECT_THROW(render_plot({empty}), InvalidArgument);
  Series nan_series;
  nan_series.label = "nan";
  nan_series.ys = {std::nan("")};
  EXPECT_THROW(render_plot({nan_series}), InvalidArgument);
  Series ok;
  ok.label = "ok";
  ok.ys = {1.0};
  PlotOptions tiny;
  tiny.width = 2;
  EXPECT_THROW(render_plot({ok}, tiny), InvalidArgument);
}

}  // namespace
}  // namespace shiraz
