#include "common/cli.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace shiraz {
namespace {

Flags make_flags(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, ParsesKeyValuePairs) {
  const Flags f = make_flags({"--reps=50", "--name=fig10"});
  EXPECT_TRUE(f.has("reps"));
  EXPECT_EQ(f.get_int("reps", 0), 50);
  EXPECT_EQ(f.get("name", ""), "fig10");
}

TEST(Flags, BareFlagIsBooleanTrue) {
  const Flags f = make_flags({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, DefaultsReturnedWhenAbsent) {
  const Flags f = make_flags({});
  EXPECT_FALSE(f.has("reps"));
  EXPECT_EQ(f.get_int("reps", 17), 17);
  EXPECT_DOUBLE_EQ(f.get_double("mtbf", 2.5), 2.5);
  EXPECT_EQ(f.get("name", "dflt"), "dflt");
  EXPECT_TRUE(f.get_bool("flag", true));
}

TEST(Flags, ParsesDoublesAndSeeds) {
  const Flags f = make_flags({"--mtbf=5.5", "--seed=18446744073709551615"});
  EXPECT_DOUBLE_EQ(f.get_double("mtbf", 0.0), 5.5);
  EXPECT_EQ(f.get_seed("seed", 0), 18446744073709551615ULL);
}

TEST(Flags, BoolRecognizesCommonSpellings) {
  EXPECT_TRUE(make_flags({"--a=true"}).get_bool("a", false));
  EXPECT_TRUE(make_flags({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(make_flags({"--a=yes"}).get_bool("a", false));
  EXPECT_FALSE(make_flags({"--a=false"}).get_bool("a", true));
}

TEST(Flags, RejectsPositionalArguments) {
  EXPECT_THROW(make_flags({"positional"}), InvalidArgument);
}

TEST(Flags, LastValueWinsOnRepeat) {
  const Flags f = make_flags({"--k=1", "--k=2"});
  EXPECT_EQ(f.get_int("k", 0), 2);
}

TEST(Flags, EmptyValueAllowed) {
  const Flags f = make_flags({"--tag="});
  EXPECT_TRUE(f.has("tag"));
  EXPECT_EQ(f.get("tag", "x"), "");
}

}  // namespace
}  // namespace shiraz
