#include "common/cli.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace shiraz {
namespace {

Flags make_flags(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, ParsesKeyValuePairs) {
  const Flags f = make_flags({"--reps=50", "--name=fig10"});
  EXPECT_TRUE(f.has("reps"));
  EXPECT_EQ(f.get_int("reps", 0), 50);
  EXPECT_EQ(f.get("name", ""), "fig10");
}

TEST(Flags, BareFlagIsBooleanTrue) {
  const Flags f = make_flags({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, DefaultsReturnedWhenAbsent) {
  const Flags f = make_flags({});
  EXPECT_FALSE(f.has("reps"));
  EXPECT_EQ(f.get_int("reps", 17), 17);
  EXPECT_DOUBLE_EQ(f.get_double("mtbf", 2.5), 2.5);
  EXPECT_EQ(f.get("name", "dflt"), "dflt");
  EXPECT_TRUE(f.get_bool("flag", true));
}

TEST(Flags, ParsesDoublesAndSeeds) {
  const Flags f = make_flags({"--mtbf=5.5", "--seed=18446744073709551615"});
  EXPECT_DOUBLE_EQ(f.get_double("mtbf", 0.0), 5.5);
  EXPECT_EQ(f.get_seed("seed", 0), 18446744073709551615ULL);
}

TEST(Flags, BoolRecognizesCommonSpellings) {
  EXPECT_TRUE(make_flags({"--a=true"}).get_bool("a", false));
  EXPECT_TRUE(make_flags({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(make_flags({"--a=yes"}).get_bool("a", false));
  EXPECT_FALSE(make_flags({"--a=false"}).get_bool("a", true));
}

TEST(Flags, RejectsPositionalArguments) {
  EXPECT_THROW(make_flags({"positional"}), InvalidArgument);
}

TEST(Flags, RejectsMalformedNumericValues) {
  EXPECT_THROW(make_flags({"--jobs=abc"}).get_int("jobs", 1), InvalidArgument);
  EXPECT_THROW(make_flags({"--jobs="}).get_int("jobs", 1), InvalidArgument);
  EXPECT_THROW(make_flags({"--reps=12x"}).get_int("reps", 1), InvalidArgument);
  EXPECT_THROW(make_flags({"--mtbf=5..5"}).get_double("mtbf", 1.0),
               InvalidArgument);
  EXPECT_THROW(make_flags({"--mtbf=five"}).get_double("mtbf", 1.0),
               InvalidArgument);
  // A bare `--jobs` parses as the boolean "true" — still not a number.
  EXPECT_THROW(make_flags({"--jobs"}).get_int("jobs", 1), InvalidArgument);
}

TEST(Flags, RejectsOutOfRangeNumericValues) {
  EXPECT_THROW(make_flags({"--reps=99999999999999999999"}).get_int("reps", 1),
               InvalidArgument);
  EXPECT_THROW(
      make_flags({"--seed=99999999999999999999"}).get_seed("seed", 1),
      InvalidArgument);
}

TEST(Flags, CountRejectsNegativesButKeepsZero) {
  EXPECT_THROW(make_flags({"--reps=-3"}).get_count("reps", 1), InvalidArgument);
  EXPECT_THROW(make_flags({"--jobs=-1"}).get_count("jobs", 1), InvalidArgument);
  EXPECT_EQ(make_flags({"--jobs=0"}).get_count("jobs", 1), 0u);
  EXPECT_EQ(make_flags({"--reps=8"}).get_count("reps", 1), 8u);
  EXPECT_EQ(make_flags({}).get_count("reps", 17), 17u);
}

TEST(Flags, SeedRejectsNegatives) {
  // strtoull would silently wrap -1 to 2^64-1; that is never an intended seed.
  EXPECT_THROW(make_flags({"--seed=-1"}).get_seed("seed", 1), InvalidArgument);
}

TEST(Flags, BoolRejectsUnknownSpellings) {
  EXPECT_THROW(make_flags({"--csv=maybe"}).get_bool("csv", false),
               InvalidArgument);
}

TEST(Flags, LastValueWinsOnRepeat) {
  const Flags f = make_flags({"--k=1", "--k=2"});
  EXPECT_EQ(f.get_int("k", 0), 2);
}

TEST(Flags, EmptyValueAllowed) {
  const Flags f = make_flags({"--tag="});
  EXPECT_TRUE(f.has("tag"));
  EXPECT_EQ(f.get("tag", "x"), "");
}

}  // namespace
}  // namespace shiraz
