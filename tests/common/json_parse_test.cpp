// common/json_parse.h — the read side of common/json.h. Round-tripping
// writer output through the parser is the promoted contract (this parser
// started life as the tests' support/mini_json.h); strict rejection of
// malformed documents is what the scenario loader's validation rests on.
#include <string>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/json.h"
#include "common/json_parse.h"

namespace shiraz {
namespace {

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "shiraz-bench-v1");
  w.kv("reps", std::uint64_t{64});
  w.kv("wall_seconds", 1.25);
  w.kv("ok", true);
  w.key("metrics").begin_array();
  w.begin_object();
  w.kv("name", "useful_hours");
  w.kv("mean", 644.3);
  w.end_object();
  w.end_array();
  w.end_object();

  const JsonValue doc = parse_json(w.str());
  EXPECT_EQ(doc.at("schema").string, "shiraz-bench-v1");
  EXPECT_EQ(doc.at("reps").number, 64.0);
  EXPECT_EQ(doc.at("wall_seconds").number, 1.25);
  EXPECT_TRUE(doc.at("ok").boolean);
  ASSERT_EQ(doc.at("metrics").array.size(), 1u);
  EXPECT_EQ(doc.at("metrics").at(0).at("name").string, "useful_hours");
  EXPECT_EQ(doc.at("metrics").at(0).at("mean").number, 644.3);
}

TEST(JsonParse, RoundTripsEscapedStrings) {
  JsonWriter w;
  w.begin_object();
  w.kv("s", std::string("quote\" backslash\\ tab\t newline\n ctrl\x01"));
  w.end_object();
  const JsonValue doc = parse_json(w.str());
  EXPECT_EQ(doc.at("s").string, "quote\" backslash\\ tab\t newline\n ctrl\x01");
}

TEST(JsonParse, ScalarsAndNull) {
  EXPECT_EQ(parse_json("42").number, 42.0);
  EXPECT_EQ(parse_json("-1.5e3").number, -1500.0);
  EXPECT_EQ(parse_json("\"hi\"").string, "hi");
  EXPECT_TRUE(parse_json("true").boolean);
  EXPECT_FALSE(parse_json("false").boolean);
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("[]").array.empty());
  EXPECT_TRUE(parse_json("{}").object.empty());
}

TEST(JsonParse, MalformedDocumentsThrowInvalidArgument) {
  EXPECT_THROW(parse_json(""), InvalidArgument);
  EXPECT_THROW(parse_json("{"), InvalidArgument);
  EXPECT_THROW(parse_json("[1, 2"), InvalidArgument);
  EXPECT_THROW(parse_json("{\"a\": }"), InvalidArgument);
  EXPECT_THROW(parse_json("\"unterminated"), InvalidArgument);
  EXPECT_THROW(parse_json("tru"), InvalidArgument);
  EXPECT_THROW(parse_json("{} trailing"), InvalidArgument);
}

TEST(JsonParse, ErrorsNameTheByteOffset) {
  try {
    parse_json("{\"a\": 1} x");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  }
}

TEST(JsonParse, StrictAccessorsThrowOnMissing) {
  const JsonValue doc = parse_json("{\"present\": [1]}");
  EXPECT_TRUE(doc.has("present"));
  EXPECT_FALSE(doc.has("absent"));
  EXPECT_THROW(doc.at("absent"), InvalidArgument);
  EXPECT_EQ(doc.at("present").at(0).number, 1.0);
  EXPECT_THROW(doc.at("present").at(1), InvalidArgument);
}

}  // namespace
}  // namespace shiraz
