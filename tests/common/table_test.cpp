#include "common/table.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace shiraz {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string text = t.render();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);  // header+rule+2 rows
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"h", "x"});
  t.add_row({"longer-cell", "1"});
  const std::string text = t.render();
  // Header line must be padded to the width of "longer-cell".
  const auto first_newline = text.find('\n');
  const auto rule_end = text.find('\n', first_newline + 1);
  EXPECT_EQ(first_newline, rule_end - first_newline - 1);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), InvalidArgument);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), InvalidArgument);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"k", "v"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table t({"k"});
  t.add_row({"plain"});
  EXPECT_EQ(t.render_csv(), "k\nplain\n");
}

TEST(Fmt, RoundsToRequestedDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.005, 1), "-1.0");
}

TEST(FmtPercent, SignedWithPercentSign) {
  EXPECT_EQ(fmt_percent(0.123, 1), "+12.3%");
  EXPECT_EQ(fmt_percent(-0.05, 1), "-5.0%");
  EXPECT_EQ(fmt_percent(0.0, 1), "+0.0%");
}

}  // namespace
}  // namespace shiraz
