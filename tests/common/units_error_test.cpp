#include "common/error.h"
#include "common/units.h"

#include <gtest/gtest.h>

namespace shiraz {
namespace {

TEST(Units, TimeConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(hours(1.0), 3600.0);
  EXPECT_DOUBLE_EQ(minutes(90.0), hours(1.5));
  EXPECT_DOUBLE_EQ(days(1.0), hours(24.0));
  EXPECT_DOUBLE_EQ(weeks(2.0), days(14.0));
  EXPECT_DOUBLE_EQ(as_hours(hours(7.25)), 7.25);
  EXPECT_DOUBLE_EQ(as_minutes(minutes(42.0)), 42.0);
  EXPECT_DOUBLE_EQ(as_days(days(3.0)), 3.0);
  EXPECT_DOUBLE_EQ(as_weeks(weeks(5.0)), 5.0);
}

TEST(Units, PaperYearIs8700Hours) {
  // Section 5 simulates "one calendar year (8,700 hours)".
  EXPECT_DOUBLE_EQ(as_hours(years(1.0)), 8700.0);
  EXPECT_DOUBLE_EQ(as_years(hours(8700.0)), 1.0);
}

TEST(Units, ByteConversions) {
  EXPECT_EQ(kib(1.0), 1024ULL);
  EXPECT_EQ(mib(1.0), 1024ULL * 1024ULL);
  EXPECT_EQ(gib(1.0), 1024ULL * 1024ULL * 1024ULL);
  EXPECT_DOUBLE_EQ(as_mib(mib(37.0)), 37.0);
  EXPECT_DOUBLE_EQ(as_gib(gib(2.0)), 2.0);
}

TEST(Error, RequireThrowsWithContext) {
  try {
    SHIRAZ_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("units_error_test.cpp"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(SHIRAZ_REQUIRE(true, "never"));
}

TEST(Error, HierarchyCatchableAsBase) {
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw IoError("y"), Error);
  EXPECT_THROW(throw Error("z"), std::runtime_error);
}

}  // namespace
}  // namespace shiraz
