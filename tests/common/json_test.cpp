// JsonWriter: the single JSON emitter behind the bench telemetry and the
// Perfetto traces. Structure is checked by round-tripping documents through
// the tests' minimal parser; the grammar-validation contract (malformed
// documents throw, never render) is pinned directly.
#include "common/json.h"

#include <cmath>
#include <cstdint>
#include <iterator>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/json_parse.h"

namespace shiraz {
namespace {


TEST(JsonWriter, EmptyContainers) {
  JsonWriter obj;
  obj.begin_object().end_object();
  EXPECT_EQ(obj.str(), "{}");

  JsonWriter arr;
  arr.begin_array().end_array();
  EXPECT_EQ(arr.str(), "[]");
}

TEST(JsonWriter, CompactAndPrettyParseIdentically) {
  const auto build = [](JsonWriter& w) {
    w.begin_object();
    w.kv("name", "shiraz");
    w.key("ks").begin_array().value(1).value(2).value(3).end_array();
    w.key("nested").begin_object().kv("ok", true).end_object();
    w.end_object();
  };
  JsonWriter compact(0);
  build(compact);
  JsonWriter pretty(2);
  build(pretty);
  EXPECT_EQ(compact.str().find('\n'), std::string::npos);
  EXPECT_NE(pretty.str().find('\n'), std::string::npos);

  const JsonValue a = parse_json(compact.str());
  const JsonValue b = parse_json(pretty.str());
  EXPECT_EQ(a.at("name").string, "shiraz");
  EXPECT_EQ(b.at("name").string, "shiraz");
  ASSERT_EQ(a.at("ks").array.size(), 3u);
  EXPECT_EQ(a.at("ks").at(2).number, 3.0);
  EXPECT_EQ(b.at("ks").at(2).number, 3.0);
  EXPECT_TRUE(a.at("nested").at("ok").boolean);
  EXPECT_TRUE(b.at("nested").at("ok").boolean);
}

TEST(JsonWriter, EscapesControlCharactersAndRoundTrips) {
  const std::string nasty = "quote \" backslash \\ newline \n tab \t bell \x07";
  JsonWriter w(0);
  w.begin_object().kv("s", nasty).end_object();
  // The raw document must not contain a bare control character or an
  // unescaped quote inside the string body.
  const std::string& doc = w.str();
  for (const char c : doc) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << "raw control byte";
  }
  EXPECT_EQ(parse_json(doc).at("s").string, nasty);
}

TEST(JsonWriter, EscapeStaticMatchesWriter) {
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("\n"), "\\n");
}

TEST(JsonWriter, DoublesRoundTripExactly) {
  // std::to_chars shortest form: strtod of the rendering must recover the
  // original bits for every value, including awkward ones.
  const double values[] = {0.1,     1.0 / 3.0, 1e-9, 6.02214076e23,
                           -2.5e-8, 1234.5678, 0.0};
  JsonWriter w(0);
  w.begin_array();
  for (const double v : values) w.value(v);
  w.end_array();
  const JsonValue parsed = parse_json(w.str());
  ASSERT_EQ(parsed.array.size(), std::size(values));
  for (std::size_t i = 0; i < std::size(values); ++i) {
    EXPECT_EQ(parsed.at(i).number, values[i]) << "i=" << i;
  }
}

TEST(JsonWriter, IntegersRenderExactly) {
  JsonWriter w(0);
  w.begin_object();
  w.kv("u64max", std::numeric_limits<std::uint64_t>::max());
  w.kv("i64min", std::numeric_limits<std::int64_t>::min());
  w.kv("neg", -42);
  w.end_object();
  const std::string& doc = w.str();
  // Exact decimal digits in the document — integers must not go through a
  // double (u64 max is not representable as one).
  EXPECT_NE(doc.find("18446744073709551615"), std::string::npos);
  EXPECT_NE(doc.find("-9223372036854775808"), std::string::npos);
  EXPECT_NE(doc.find("-42"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesRenderAsNull) {
  JsonWriter w(0);
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.end_array();
  const JsonValue parsed = parse_json(w.str());
  ASSERT_EQ(parsed.array.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(parsed.at(i).is_null()) << "i=" << i;
  }
}

TEST(JsonWriter, GrammarViolationsThrow) {
  {  // value directly inside an object without a key
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), InvalidArgument);
  }
  {  // key inside an array
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), InvalidArgument);
  }
  {  // second top-level value
    JsonWriter w;
    w.value(1);
    EXPECT_THROW(w.value(2), InvalidArgument);
  }
  {  // mismatched closers
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), InvalidArgument);
  }
  {  // key must be followed by a value, not a closer
    JsonWriter w;
    w.begin_object();
    w.key("dangling");
    EXPECT_THROW(w.end_object(), InvalidArgument);
  }
}

TEST(JsonWriter, StrRequiresCompleteDocument) {
  {  // nothing written
    JsonWriter w;
    EXPECT_THROW(w.str(), InvalidArgument);
  }
  {  // unclosed container
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), InvalidArgument);
  }
  {  // complete scalar document is fine
    JsonWriter w;
    w.value(true);
    EXPECT_EQ(w.str(), "true");
  }
}

TEST(MiniJson, RejectsMalformedInput) {
  // The test parser itself must not accept garbage, or the structural tests
  // above prove nothing.
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("{} extra"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(parse_json("nul"), std::runtime_error);
}

}  // namespace
}  // namespace shiraz
