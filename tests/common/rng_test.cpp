#include "common/rng.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace shiraz {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10'000; ++i) seen.insert(rng.uniform_int(1, 6));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(Rng, UniformMeanIsOneHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng rng(17);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, ForksAreIndependentAndReproducible) {
  Rng master(99);
  Rng f0 = master.fork(0);
  Rng f1 = master.fork(1);
  EXPECT_NE(f0.uniform(), f1.uniform());

  // Forking again yields identical sub-streams.
  Rng g0 = master.fork(0);
  Rng h0 = Rng(99).fork(0);
  EXPECT_DOUBLE_EQ(g0.uniform(), h0.uniform());
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(5);
  Rng b(5);
  (void)a.fork(3);
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, SeedAccessorReturnsConstructorValue) {
  EXPECT_EQ(Rng(12345).seed(), 12345u);
}

// Regression for the parallel campaign layer: repetition r draws from
// fork(r), so adjacent fork indices must yield streams whose prefixes never
// collide — a raw-engine collision would mean two "independent" repetitions
// partially replay each other's failure history.
TEST(Rng, AdjacentForkStreamsShareNoPrefixValues) {
  const Rng master(20182018);
  constexpr std::uint64_t kStreams = 9;
  constexpr int kPrefix = 16;
  std::set<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < kStreams; ++s) {
    Rng fork = master.fork(s);
    for (int i = 0; i < kPrefix; ++i) seen.insert(fork.engine()());
  }
  EXPECT_EQ(seen.size(), kStreams * kPrefix);
}

}  // namespace
}  // namespace shiraz
