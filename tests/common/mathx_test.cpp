#include "common/mathx.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"

namespace shiraz::mathx {
namespace {

TEST(ApproxEqual, ExactValuesMatch) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
}

TEST(ApproxEqual, RelativeToleranceScalesWithMagnitude) {
  EXPECT_TRUE(approx_equal(1e12, 1e12 + 1.0, 1e-9));
  EXPECT_FALSE(approx_equal(1.0, 1.001, 1e-9));
}

TEST(GammaFn, MatchesFactorialOnIntegers) {
  EXPECT_DOUBLE_EQ(gamma_fn(1.0), 1.0);
  EXPECT_DOUBLE_EQ(gamma_fn(5.0), 24.0);
}

TEST(GammaFn, HalfIntegerValue) {
  EXPECT_NEAR(gamma_fn(0.5), std::sqrt(M_PI), 1e-12);
}

TEST(GammaFn, RejectsNonPositive) {
  EXPECT_THROW(gamma_fn(0.0), InvalidArgument);
  EXPECT_THROW(gamma_fn(-1.0), InvalidArgument);
}

TEST(LogGamma, ConsistentWithGamma) {
  for (const double x : {0.3, 1.7, 4.2, 9.9}) {
    EXPECT_NEAR(log_gamma(x), std::log(gamma_fn(x)), 1e-10);
  }
}

TEST(IncompleteGamma, BoundaryValues) {
  EXPECT_DOUBLE_EQ(reg_lower_incomplete_gamma(2.0, 0.0), 0.0);
  EXPECT_NEAR(reg_lower_incomplete_gamma(2.0, 1e3), 1.0, 1e-12);
}

TEST(IncompleteGamma, MatchesExponentialCdfForShapeOne) {
  // P(1, x) = 1 - e^-x.
  for (const double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(reg_lower_incomplete_gamma(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(IncompleteGamma, MatchesErlangCdfForShapeTwo) {
  // P(2, x) = 1 - e^-x (1 + x).
  for (const double x : {0.2, 1.0, 4.0, 9.0}) {
    EXPECT_NEAR(reg_lower_incomplete_gamma(2.0, x),
                1.0 - std::exp(-x) * (1.0 + x), 1e-12);
  }
}

TEST(IncompleteGamma, UpperPlusLowerIsOne) {
  for (const double a : {0.4, 1.0, 3.5}) {
    for (const double x : {0.2, 2.0, 8.0}) {
      EXPECT_NEAR(reg_lower_incomplete_gamma(a, x) + reg_upper_incomplete_gamma(a, x),
                  1.0, 1e-12);
    }
  }
}

TEST(Integrate, PolynomialIsExact) {
  const double got = integrate([](double x) { return 3.0 * x * x; }, 0.0, 2.0);
  EXPECT_NEAR(got, 8.0, 1e-9);
}

TEST(Integrate, ReversedBoundsNegate) {
  const double fwd = integrate([](double x) { return x; }, 0.0, 1.0);
  const double rev = integrate([](double x) { return x; }, 1.0, 0.0);
  EXPECT_NEAR(fwd, -rev, 1e-12);
}

TEST(Integrate, GaussianMass) {
  const double got = integrate(
      [](double x) { return std::exp(-x * x / 2.0) / std::sqrt(2.0 * M_PI); }, -8.0,
      8.0, 1e-12);
  EXPECT_NEAR(got, 1.0, 1e-9);
}

TEST(Integrate, EmptyIntervalIsZero) {
  EXPECT_DOUBLE_EQ(integrate([](double) { return 42.0; }, 1.0, 1.0), 0.0);
}

TEST(Bisect, FindsSquareRoot) {
  const double root = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(root, std::sqrt(2.0), 1e-9);
}

TEST(Bisect, AcceptsRootAtEndpoint) {
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
}

TEST(Bisect, RejectsNonBracketingInterval) {
  EXPECT_THROW(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               InvalidArgument);
}

TEST(Newton, ConvergesQuadratically) {
  const double root = newton([](double x) { return x * x - 2.0; },
                             [](double x) { return 2.0 * x; }, 1.0, 0.0, 2.0);
  EXPECT_NEAR(root, std::sqrt(2.0), 1e-9);
}

TEST(Newton, FallsBackWhenDerivativeVanishes) {
  // f(x) = x^3 has f'(0) = 0; start exactly there.
  const double root = newton([](double x) { return x * x * x; },
                             [](double x) { return 3.0 * x * x; }, 0.0, -1.0, 1.0);
  EXPECT_NEAR(root, 0.0, 1e-6);
}

TEST(KahanSum, RecoversSmallTermsNextToLargeOnes) {
  KahanSum sum;
  sum.add(1e16);
  for (int i = 0; i < 10'000; ++i) sum.add(1.0);
  sum.add(-1e16);
  EXPECT_DOUBLE_EQ(sum.value(), 10'000.0);
}

TEST(KahanSum, EmptySumIsZero) {
  KahanSum sum;
  EXPECT_DOUBLE_EQ(sum.value(), 0.0);
}

}  // namespace
}  // namespace shiraz::mathx
