#include "common/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"

namespace shiraz::common {
namespace {

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
}

TEST(ThreadPool, ReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPool, SubmitReturnsTaskValue) {
  ThreadPool pool(2);
  std::future<int> f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.submit([]() -> void { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, RunsManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([i, &done] {
      done.fetch_add(1, std::memory_order_relaxed);
      return i * i;
    }));
  }
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(futures[i].get(), i * i);
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, TasksCanSubmitNestedTasks) {
  // A task enqueues a follow-up without blocking on it; both futures must
  // complete even on a single-worker pool (the worker drains the queue).
  ThreadPool pool(1);
  std::future<int> inner_value;
  std::future<void> outer = pool.submit([&pool, &inner_value] {
    inner_value = pool.submit([] { return 7; });
  });
  outer.get();
  EXPECT_EQ(inner_value.get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueuedTasksAndJoins) {
  std::atomic<int> done{0};
  constexpr int kTasks = 64;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      (void)pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ParallelForIndexed, ZeroTasksIsANoOp) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(
      parallel_for_indexed(pool, 0, [](std::size_t) { FAIL() << "called"; }));
}

TEST(ParallelForIndexed, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for_indexed(pool, kN, [&visits](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelForIndexed, RethrowsAfterAllTasksComplete) {
  // The rethrown exception must not race ahead of still-running tasks that
  // capture the same locals: every index is visited even when some throw.
  ThreadPool pool(4);
  constexpr std::size_t kN = 32;
  std::atomic<int> visited{0};
  EXPECT_THROW(parallel_for_indexed(pool, kN,
                                    [&visited](std::size_t i) {
                                      visited.fetch_add(
                                          1, std::memory_order_relaxed);
                                      if (i % 7 == 3)
                                        throw std::runtime_error("task failed");
                                    }),
               std::runtime_error);
  EXPECT_EQ(visited.load(), static_cast<int>(kN));
}

}  // namespace
}  // namespace shiraz::common
