#include "common/statistics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace shiraz {
namespace {

TEST(RunningStats, EmptyIsAllZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, NeverNaN) {
  // The degenerate accumulator states feed straight into bench telemetry
  // (MetricSummary, BENCH_*.json); none of them may poison a mean with NaN.
  RunningStats empty;
  EXPECT_FALSE(std::isnan(empty.mean()));
  EXPECT_FALSE(std::isnan(empty.stddev()));

  RunningStats one;
  one.add(7.0);
  EXPECT_FALSE(std::isnan(one.stddev()));
  EXPECT_DOUBLE_EQ(one.stddev(), 0.0);

  // Identical samples: Welford's m2 must stay exactly 0, never a tiny
  // negative that sqrt() would turn into NaN.
  RunningStats same;
  for (int i = 0; i < 100; ++i) same.add(0.1);
  EXPECT_EQ(same.variance(), 0.0);
  EXPECT_EQ(same.stddev(), 0.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSingleStream) {
  Rng rng(3);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3.0 + 1.0;
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
}

TEST(Percentile, UnsortedInputHandled) {
  std::vector<double> xs{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.3), 7.0);
}

TEST(Percentile, RejectsEmptyAndBadQ) {
  EXPECT_THROW(percentile({}, 0.5), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 1.5), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, -0.1), InvalidArgument);
}

TEST(Summarize, FieldsAreConsistent) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-12);
  EXPECT_LT(s.p25, s.median);
  EXPECT_LT(s.median, s.p75);
  EXPECT_LT(s.p75, s.p95);
}

TEST(Summarize, RejectsEmpty) {
  EXPECT_THROW(summarize({}), InvalidArgument);
}

TEST(Ci95, ShrinksWithSampleSize) {
  Rng rng(5);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 100; ++i) small.add(rng.normal());
  for (int i = 0; i < 10'000; ++i) large.add(rng.normal());
  EXPECT_GT(ci95_halfwidth(small), ci95_halfwidth(large));
}

TEST(Ci95, ZeroForTinySamples) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(ci95_halfwidth(s), 0.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(ci95_halfwidth(s), 0.0);
}

TEST(Ci95, CoversTrueMeanUsually) {
  // 95% CI should cover the true mean in roughly 95% of repetitions.
  Rng master(21);
  int covered = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    Rng rng = master.fork(t);
    RunningStats s;
    for (int i = 0; i < 50; ++i) s.add(rng.normal());
    if (std::fabs(s.mean()) <= ci95_halfwidth(s)) ++covered;
  }
  EXPECT_GT(covered, trials * 85 / 100);
  EXPECT_LT(covered, trials);
}

TEST(EmpiricalCdf, StepsThroughSample) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(empirical_cdf(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(empirical_cdf(xs, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(empirical_cdf(xs, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(empirical_cdf(xs, 10.0), 1.0);
}

TEST(EmpiricalCdf, RejectsEmpty) {
  EXPECT_THROW(empirical_cdf({}, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace shiraz
