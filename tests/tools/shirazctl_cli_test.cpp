// End-to-end CLI regression tests for shirazctl. The binary path is injected
// by CMake as SHIRAZCTL_PATH; each test spawns the real executable, so the
// exit-code and usage contracts scripts rely on are pinned here.
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include <gtest/gtest.h>

#include "common/json_parse.h"

namespace {

using shiraz::JsonValue;
using shiraz::parse_json;

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout and stderr interleaved
};

/// Runs a shell snippet via popen (which already invokes `sh -c`), merging
/// stderr into the captured output. Snippets may freely use single quotes —
/// there is no extra quoting layer to fight.
CommandResult run_script(const std::string& script) {
  const std::string cmd = "{ " + script + " ; } 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  CommandResult r;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

CommandResult run_binary(const std::string& binary, const std::string& args) {
  return run_script(binary + " " + args);
}

CommandResult run_command(const std::string& args) {
  return run_binary(SHIRAZCTL_PATH, args);
}

TEST(ShirazctlCli, UnknownCommandExitsTwoWithUsage) {
  const CommandResult r = run_command("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown command 'frobnicate'"), std::string::npos);
  EXPECT_NE(r.output.find("shirazctl <solve|"), std::string::npos)
      << "usage must follow the error";
}

TEST(ShirazctlCli, NoCommandExitsTwoWithUsage) {
  const CommandResult r = run_command("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("shirazctl <solve|"), std::string::npos);
}

TEST(ShirazctlCli, UsageListsTheTraceSubcommand) {
  const CommandResult r = run_command("frobnicate");
  EXPECT_NE(r.output.find("|trace|"), std::string::npos);
  EXPECT_NE(r.output.find("trace: --out="), std::string::npos);
}

TEST(ShirazctlCli, BadFlagValueExitsOne) {
  const CommandResult r = run_command("trace --reps=0");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("shirazctl:"), std::string::npos);
}

TEST(ShirazctlCli, TraceWritesALoadablePerfettoFile) {
  namespace fs = std::filesystem;
  const std::string out =
      (fs::temp_directory_path() / "shirazctl_cli_trace_test.json").string();
  fs::remove(out);

  const CommandResult r = run_command(
      "trace --k=26 --reps=2 --width=40 --t-total-hours=100 --out=" + out);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("legend:"), std::string::npos)
      << "trace prints the ASCII timeline";
  EXPECT_NE(r.output.find("Wrote " + out), std::string::npos);

  std::ifstream in(out);
  ASSERT_TRUE(in.good()) << "trace file missing";
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = parse_json(buf.str());
  ASSERT_TRUE(doc.has("traceEvents"));
  EXPECT_FALSE(doc.at("traceEvents").array.empty());
  // Both repetitions render as Perfetto processes.
  bool saw_rep0 = false;
  bool saw_rep1 = false;
  for (const auto& entry : doc.at("traceEvents").array) {
    if (entry->at("ph").string != "M") continue;
    if (entry->at("name").string != "process_name") continue;
    const std::string& label = entry->at("args").at("name").string;
    saw_rep0 |= label == "rep 0";
    saw_rep1 |= label == "rep 1";
  }
  EXPECT_TRUE(saw_rep0);
  EXPECT_TRUE(saw_rep1);
  fs::remove(out);
}

TEST(ShirazctlCli, UsageListsTheScenariosSubcommand) {
  const CommandResult r = run_command("frobnicate");
  EXPECT_NE(r.output.find("|scenarios|"), std::string::npos);
  EXPECT_NE(r.output.find("scenarios: --dir="), std::string::npos);
}

TEST(ShirazctlCli, ScenariosListsTheShippedCorpus) {
  const CommandResult r =
      run_command("scenarios --dir=" SHIRAZ_TESTDATA_SCENARIOS);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  for (const char* id : {"baseline-weibull", "bathtub-wearout", "burst-storm",
                         "cascade-groups", "drifting-beta", "hetero-pools",
                         "markov-burst"}) {
    EXPECT_NE(r.output.find(id), std::string::npos) << id;
  }
  EXPECT_NE(r.output.find("mean gap (h)"), std::string::npos);
}

TEST(ShirazctlCli, ScenariosValidateReportsEveryFile) {
  const CommandResult r =
      run_command("scenarios --validate --dir=" SHIRAZ_TESTDATA_SCENARIOS);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("OK baseline-weibull"), std::string::npos);
  EXPECT_NE(r.output.find("7 scenarios valid (shiraz-scenario-v1)"),
            std::string::npos);
}

TEST(ShirazctlCli, ScenariosDescribePrintsTheRegimeDetail) {
  const CommandResult r = run_command(
      "scenarios --describe=markov-burst --dir=" SHIRAZ_TESTDATA_SCENARIOS);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("markov-burst"), std::string::npos);
  EXPECT_NE(r.output.find("long-run mean gap (h)"), std::string::npos);
}

TEST(ShirazctlCli, ScenariosUnknownIdExitsOne) {
  const CommandResult r = run_command(
      "scenarios --describe=no-such-id --dir=" SHIRAZ_TESTDATA_SCENARIOS);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("no scenario with id 'no-such-id'"),
            std::string::npos);
}

TEST(ShirazctlCli, ScenariosBadDirExitsTwoWithUsage) {
  const CommandResult r = run_command("scenarios --dir=/nonexistent-scenarios");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("does not exist"), std::string::npos);
  EXPECT_NE(r.output.find("shirazctl <solve|"), std::string::npos);
}

#ifdef SCENARIO_MATRIX_PATH
// Smoke the scenario-matrix bench end to end: a zero exit is a full
// InvariantAuditor pass over every (scheduler x scenario) cell plus the
// cross-worker bit-identity check, and --json must emit a valid
// shiraz-bench-v1 document.
TEST(ScenarioMatrixBench, MatrixRunsCleanAndEmitsBenchJson) {
  namespace fs = std::filesystem;
  const std::string out =
      (fs::temp_directory_path() / "shirazctl_cli_scenario_matrix.json")
          .string();
  fs::remove(out);

  const CommandResult r = run_binary(
      SCENARIO_MATRIX_PATH, "--reps=2 --jobs=2 --dir=" SHIRAZ_TESTDATA_SCENARIOS
                            " --json=" + out);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("All cells audited clean"), std::string::npos);

  std::ifstream in(out);
  ASSERT_TRUE(in.good()) << "bench json missing";
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = parse_json(buf.str());
  EXPECT_EQ(doc.at("schema").string, "shiraz-bench-v1");
  EXPECT_EQ(doc.at("bench").string, "exp_scenario_matrix");
  EXPECT_EQ(doc.at("reps").number, 2.0);
  EXPECT_EQ(doc.at("config").at("scenarios").number, 7.0);

  bool saw_all_ok = false;
  for (const auto& m : doc.at("metrics").array) {
    if (m->at("name").string == "matrix.all_ok") {
      EXPECT_EQ(m->at("mean").number, 1.0);
      saw_all_ok = true;
    }
  }
  EXPECT_TRUE(saw_all_ok);
  fs::remove(out);
}
#endif  // SCENARIO_MATRIX_PATH

TEST(ShirazctlCli, PredictiveTracePassesItsOwnAudit) {
  namespace fs = std::filesystem;
  const std::string out =
      (fs::temp_directory_path() / "shirazctl_cli_predict_trace.json").string();
  fs::remove(out);

  // cmd_trace audits every repetition against its reported totals before
  // writing, so a zero exit is an InvariantAuditor pass on the alarm path.
  const CommandResult r = run_command(
      "trace --predict --k=26 --t-total-hours=100 --width=40 --out=" + out);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  std::ifstream in(out);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_FALSE(parse_json(buf.str()).at("traceEvents").array.empty());
  fs::remove(out);
}

TEST(ShirazctlCli, UsageListsTheServeAndQuerySubcommands) {
  const CommandResult r = run_command("frobnicate");
  EXPECT_NE(r.output.find("|serve|query|metrics>"), std::string::npos);
  EXPECT_NE(r.output.find("serve: --socket="), std::string::npos);
  EXPECT_NE(r.output.find("query: --socket="), std::string::npos);
}

TEST(ShirazctlCli, ServeWithoutSocketExitsTwoWithUsage) {
  const CommandResult r = run_command("serve");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("serve requires --socket=PATH"), std::string::npos);
  EXPECT_NE(r.output.find("shirazctl <solve|"), std::string::npos)
      << "usage must follow the error";
}

TEST(ShirazctlCli, ServeUnwritableSocketExitsTwoWithUsage) {
  const CommandResult r =
      run_command("serve --socket=/nonexistent-dir/shiraz.sock");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("bind"), std::string::npos);
  EXPECT_NE(r.output.find("shirazctl <solve|"), std::string::npos);
}

TEST(ShirazctlCli, ServeBadThreadsExitsTwoWithUsage) {
  const CommandResult r = run_command("serve --socket=/tmp/x.sock --threads=0");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--threads must be >= 1"), std::string::npos);
}

TEST(ShirazctlCli, QueryWithoutSocketExitsTwoWithUsage) {
  const CommandResult r = run_command("query");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("query requires --socket=PATH"), std::string::npos);
}

TEST(ShirazctlCli, QueryWithoutDaemonExitsOne) {
  const CommandResult r =
      run_command("query --socket=/tmp/shiraz-no-daemon.sock --timeout-s=0.1"
                  " < /dev/null");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("no daemon answering"), std::string::npos);
}

TEST(ShirazctlCli, UsageListsTheMetricsSubcommand) {
  const CommandResult r = run_command("frobnicate");
  EXPECT_NE(r.output.find("metrics>"), std::string::npos);
  EXPECT_NE(r.output.find("metrics: --socket="), std::string::npos);
}

TEST(ShirazctlCli, MetricsWithoutSocketExitsTwoWithUsage) {
  const CommandResult r = run_command("metrics");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("metrics requires --socket=PATH"), std::string::npos);
}

TEST(ShirazctlCli, MetricsSnapshotsALiveDaemon) {
  namespace fs = std::filesystem;
  const std::string sock =
      (fs::temp_directory_path() / "shirazctl_cli_metrics_test.sock").string();
  fs::remove(sock);

  // Boot the daemon, serve one solve over `query`, then snapshot the
  // registry three ways (table, --prometheus, --json) before shutting down.
  const std::string ctl = SHIRAZCTL_PATH;
  const std::string script =
      ctl + " serve --socket=" + sock + " --threads=2 & SERVER=$!; " +
      "printf '%s\\n' '{\"op\":\"solve_k\",\"delta_lw_s\":18,\"delta_hw_s\":1800}' | " +
      ctl + " query --socket=" + sock + " > /dev/null; " +
      ctl + " metrics --socket=" + sock + "; " +
      ctl + " metrics --socket=" + sock + " --prometheus; " +
      ctl + " metrics --socket=" + sock + " --json; " +
      "printf '%s\\n' '{\"op\":\"shutdown\"}' | " +
      ctl + " query --socket=" + sock + " > /dev/null; wait $SERVER";
  const CommandResult r = run_script(script);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  // Table mode names the per-op counter bumped by the session's own solve.
  EXPECT_NE(r.output.find("shiraz_serve_op_solve_k_total"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("shiraz_solver_cache_misses_total"),
            std::string::npos);
  // Prometheus mode emits the text exposition.
  EXPECT_NE(r.output.find("# TYPE shiraz_serve_requests_total counter"),
            std::string::npos);
  // Raw mode prints the shiraz-metrics-v1 response line.
  EXPECT_NE(r.output.find("\"schema\":\"shiraz-metrics-v1\""),
            std::string::npos);
  EXPECT_FALSE(fs::exists(sock));
}

TEST(ShirazctlCli, QueryStreamsSubscribeFramesBeforeTheResponse) {
  namespace fs = std::filesystem;
  const std::string sock =
      (fs::temp_directory_path() / "shirazctl_cli_subscribe_test.sock").string();
  fs::remove(sock);

  const std::string ctl = SHIRAZCTL_PATH;
  const std::string script =
      ctl + " serve --socket=" + sock + " --threads=2 & SERVER=$!; " +
      "printf '%s\\n' "
      "'{\"op\":\"subscribe\",\"delta_lw_s\":18,\"delta_hw_s\":1800,"
      "\"k\":26,\"reps\":2,\"seed\":3}' "
      "'{\"op\":\"shutdown\"}' | " +
      ctl + " query --socket=" + sock + "; CLIENT=$?; wait $SERVER; "
      "exit $((CLIENT + $?))";
  const CommandResult r = run_script(script);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("{\"stream\":\"event\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"op\":\"subscribe\""), std::string::npos);
  EXPECT_NE(r.output.find("\"events\":"), std::string::npos);
}

TEST(ShirazctlCli, QueryAfterShutdownExitsTwoWithDiagnostic) {
  namespace fs = std::filesystem;
  const std::string sock =
      (fs::temp_directory_path() / "shirazctl_cli_shutdown_test.sock").string();
  fs::remove(sock);

  // A request after the shutdown op finds the connection closed: the client
  // must say so and exit 2 — not die on an unexplained I/O error.
  const std::string ctl = SHIRAZCTL_PATH;
  const std::string script =
      ctl + " serve --socket=" + sock + " --threads=2 & SERVER=$!; " +
      "printf '%s\\n' '{\"op\":\"shutdown\"}' '{\"op\":\"stats\"}' | " +
      ctl + " query --socket=" + sock + "; CLIENT=$?; wait $SERVER; "
      "exit $CLIENT";
  const CommandResult r = run_script(script);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("server is shutting down"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"stopping\":true"), std::string::npos)
      << "the shutdown response itself must still print";
}

TEST(ShirazctlCli, ServeAnswersAScriptedQuerySession) {
  namespace fs = std::filesystem;
  const std::string sock =
      (fs::temp_directory_path() / "shirazctl_cli_serve_test.sock").string();
  fs::remove(sock);

  // Boot the daemon in the background, drive a full session through
  // `shirazctl query` (which polls until the socket accepts), and end with
  // a shutdown op so the daemon exits on its own.
  const std::string script =
      std::string(SHIRAZCTL_PATH) + " serve --socket=" + sock +
      " --threads=2 & SERVER=$!; "
      "printf '%s\\n' "
      "'{\"op\":\"solve_k\",\"id\":1,\"delta_lw_s\":18,\"delta_hw_s\":1800}' "
      "'{\"op\":\"oci\",\"delta_s\":60}' "
      "'{\"op\":\"stats\"}' "
      "'{\"op\":\"shutdown\"}' "
      "| " + std::string(SHIRAZCTL_PATH) + " query --socket=" + sock +
      "; CLIENT=$?; wait $SERVER; exit $((CLIENT + $?))";
  const CommandResult r = run_script(script);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"op\":\"solve_k\",\"id\":1,\"k\":26"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"op\":\"oci\""), std::string::npos);
  EXPECT_NE(r.output.find("\"protocol\":\"shiraz-serve-v1\""),
            std::string::npos);
  EXPECT_NE(r.output.find("\"stopping\":true"), std::string::npos);
  EXPECT_NE(r.output.find("shutdown complete"), std::string::npos);
  EXPECT_FALSE(fs::exists(sock)) << "daemon must remove its socket on exit";
}

}  // namespace
