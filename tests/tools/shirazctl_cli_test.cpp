// End-to-end CLI regression tests for shirazctl. The binary path is injected
// by CMake as SHIRAZCTL_PATH; each test spawns the real executable, so the
// exit-code and usage contracts scripts rely on are pinned here.
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include <gtest/gtest.h>

#include "../support/mini_json.h"

namespace {

using shiraz::testing::JsonValue;
using shiraz::testing::parse_json;

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout and stderr interleaved
};

CommandResult run_command(const std::string& args) {
  const std::string cmd = std::string(SHIRAZCTL_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  CommandResult r;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

TEST(ShirazctlCli, UnknownCommandExitsTwoWithUsage) {
  const CommandResult r = run_command("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown command 'frobnicate'"), std::string::npos);
  EXPECT_NE(r.output.find("shirazctl <solve|"), std::string::npos)
      << "usage must follow the error";
}

TEST(ShirazctlCli, NoCommandExitsTwoWithUsage) {
  const CommandResult r = run_command("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("shirazctl <solve|"), std::string::npos);
}

TEST(ShirazctlCli, UsageListsTheTraceSubcommand) {
  const CommandResult r = run_command("frobnicate");
  EXPECT_NE(r.output.find("|trace>"), std::string::npos);
  EXPECT_NE(r.output.find("trace: --out="), std::string::npos);
}

TEST(ShirazctlCli, BadFlagValueExitsOne) {
  const CommandResult r = run_command("trace --reps=0");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("shirazctl:"), std::string::npos);
}

TEST(ShirazctlCli, TraceWritesALoadablePerfettoFile) {
  namespace fs = std::filesystem;
  const std::string out =
      (fs::temp_directory_path() / "shirazctl_cli_trace_test.json").string();
  fs::remove(out);

  const CommandResult r = run_command(
      "trace --k=26 --reps=2 --width=40 --t-total-hours=100 --out=" + out);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("legend:"), std::string::npos)
      << "trace prints the ASCII timeline";
  EXPECT_NE(r.output.find("Wrote " + out), std::string::npos);

  std::ifstream in(out);
  ASSERT_TRUE(in.good()) << "trace file missing";
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = parse_json(buf.str());
  ASSERT_TRUE(doc.has("traceEvents"));
  EXPECT_FALSE(doc.at("traceEvents").array.empty());
  // Both repetitions render as Perfetto processes.
  bool saw_rep0 = false;
  bool saw_rep1 = false;
  for (const auto& entry : doc.at("traceEvents").array) {
    if (entry->at("ph").string != "M") continue;
    if (entry->at("name").string != "process_name") continue;
    const std::string& label = entry->at("args").at("name").string;
    saw_rep0 |= label == "rep 0";
    saw_rep1 |= label == "rep 1";
  }
  EXPECT_TRUE(saw_rep0);
  EXPECT_TRUE(saw_rep1);
  fs::remove(out);
}

TEST(ShirazctlCli, PredictiveTracePassesItsOwnAudit) {
  namespace fs = std::filesystem;
  const std::string out =
      (fs::temp_directory_path() / "shirazctl_cli_predict_trace.json").string();
  fs::remove(out);

  // cmd_trace audits every repetition against its reported totals before
  // writing, so a zero exit is an InvariantAuditor pass on the alarm path.
  const CommandResult r = run_command(
      "trace --predict --k=26 --t-total-hours=100 --width=40 --out=" + out);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  std::ifstream in(out);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_FALSE(parse_json(buf.str()).at("traceEvents").array.empty());
  fs::remove(out);
}

}  // namespace
