// The metrics purity contract on the campaign path (DESIGN.md §11): arming
// an obs::MetricsRegistry is bit-identical to an unarmed run for every
// policy family and every worker count — metrics are observations, never
// participants — and the registry's *contents* are themselves worker-count
// invariant (per-repetition increments buffer and merge in rep order, and
// every count is an exact u64 sum).
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "reliability/weibull.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace shiraz::obs {
namespace {

constexpr std::uint64_t kSeed = 20180888;
constexpr std::size_t kReps = 12;
constexpr double kMtbfHours = 5.0;

sim::Engine make_engine() {
  sim::EngineConfig cfg;
  cfg.t_total = hours(200.0);
  return sim::Engine(reliability::Weibull::from_mtbf(0.6, hours(kMtbfHours)),
                     cfg);
}

void expect_identical(const sim::SimResult& a, const sim::SimResult& b) {
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].useful, b.apps[i].useful) << "app " << i;
    EXPECT_EQ(a.apps[i].io, b.apps[i].io) << "app " << i;
    EXPECT_EQ(a.apps[i].lost, b.apps[i].lost) << "app " << i;
    EXPECT_EQ(a.apps[i].restart, b.apps[i].restart) << "app " << i;
    EXPECT_EQ(a.apps[i].checkpoints, b.apps[i].checkpoints) << "app " << i;
    EXPECT_EQ(a.apps[i].failures_hit, b.apps[i].failures_hit) << "app " << i;
  }
  EXPECT_EQ(a.wall, b.wall);
  EXPECT_EQ(a.idle, b.idle);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.switches, b.switches);
}

void expect_equal_snapshots(const MetricsSnapshot& a,
                            const MetricsSnapshot& b) {
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    const MetricsSnapshot::Entry& x = a.entries[i];
    const MetricsSnapshot::Entry& y = b.entries[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.count, y.count) << x.name;
    EXPECT_EQ(x.value, y.value) << x.name;
    EXPECT_EQ(x.edges, y.edges) << x.name;
    EXPECT_EQ(x.buckets, y.buckets) << x.name;
  }
}

enum class Policy { kBaseline, kShiraz, kShirazPlus };

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kBaseline: return "Baseline";
    case Policy::kShiraz: return "Shiraz";
    case Policy::kShirazPlus: return "ShirazPlus";
  }
  return "?";
}

struct Campaign {
  std::vector<sim::SimJob> jobs;
  std::unique_ptr<sim::Scheduler> scheduler;
};

Campaign make_campaign(Policy policy) {
  const Seconds mtbf = hours(kMtbfHours);
  Campaign c;
  c.jobs = {sim::SimJob::at_oci("lw", 18.0, mtbf),
            sim::SimJob::at_oci("hw", 1800.0, mtbf)};
  switch (policy) {
    case Policy::kBaseline:
      c.scheduler = std::make_unique<sim::AlternateAtFailure>();
      break;
    case Policy::kShiraz:
      c.scheduler = std::make_unique<sim::ShirazPairScheduler>(26);
      break;
    case Policy::kShirazPlus:
      c.jobs[1] = sim::SimJob::at_oci("hw", 1800.0, mtbf, /*stretch=*/3);
      c.scheduler = std::make_unique<sim::ShirazPairScheduler>(26);
      break;
  }
  return c;
}

class MetricsCampaignTest
    : public ::testing::TestWithParam<std::tuple<Policy, std::size_t>> {};

// Armed run == unarmed run, bit for bit, for sampled and replayed campaigns.
TEST_P(MetricsCampaignTest, ArmedRunIsBitIdentical) {
  const auto [policy, workers] = GetParam();
  const sim::Engine engine = make_engine();
  const Campaign c = make_campaign(policy);

  sim::CampaignOptions unarmed;
  unarmed.workers = workers;
  const sim::SimResult want =
      engine.run_many(c.jobs, *c.scheduler, kReps, kSeed, unarmed);

  MetricsRegistry registry;
  sim::CampaignOptions armed = unarmed;
  armed.metrics = &registry;
  const sim::SimResult got =
      engine.run_many(c.jobs, *c.scheduler, kReps, kSeed, armed);
  expect_identical(want, got);
  EXPECT_EQ(registry.counter("shiraz_sim_reps_total").value(), kReps);

  // Replay path (flat kernel eligible): still bit-identical, still counted.
  const sim::TraceStore traces(engine, kSeed);
  MetricsRegistry replay_registry;
  sim::CampaignOptions replay = unarmed;
  replay.traces = &traces;
  replay.metrics = &replay_registry;
  const sim::SimResult replayed =
      engine.run_many(c.jobs, *c.scheduler, kReps, kSeed, replay);
  expect_identical(want, replayed);
  EXPECT_EQ(replay_registry.counter("shiraz_sim_reps_total").value(), kReps);
  EXPECT_EQ(replay_registry.counter("shiraz_sim_kernel_replays_total").value(),
            kReps);
  EXPECT_EQ(replay_registry.counter("shiraz_sim_event_loop_runs_total").value(),
            0u);
}

// The registry contents match the jobs=1 reference exactly: buffered
// per-repetition increments merge in repetition order on every worker count.
TEST_P(MetricsCampaignTest, SnapshotMatchesSerialReference) {
  const auto [policy, workers] = GetParam();
  const sim::Engine engine = make_engine();
  const Campaign c = make_campaign(policy);

  auto run_armed = [&](std::size_t n_workers) {
    MetricsRegistry registry;
    sim::TraceStore traces(engine, kSeed);
    traces.set_metrics(&registry);
    sim::CampaignOptions copts;
    copts.workers = n_workers;
    copts.traces = &traces;
    copts.metrics = &registry;
    (void)engine.run_many(c.jobs, *c.scheduler, kReps, kSeed, copts);
    return registry.snapshot();
  };

  const MetricsSnapshot serial = run_armed(1);
  const MetricsSnapshot parallel = run_armed(workers);
  expect_equal_snapshots(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndWorkers, MetricsCampaignTest,
    ::testing::Combine(::testing::Values(Policy::kBaseline, Policy::kShiraz,
                                         Policy::kShirazPlus),
                       ::testing::Values(std::size_t{1}, std::size_t{4})),
    [](const auto& info) {
      return std::string(policy_name(std::get<0>(info.param))) + "_jobs" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace shiraz::obs
