// MetricsRegistry contract (DESIGN.md §11): typed get-or-create metrics with
// exact sharded counts, Prometheus-grammar name validation, deterministic
// name-sorted snapshots, and two expositions (shiraz-metrics-v1 JSON and the
// Prometheus text format) that are pure functions of the snapshot. The
// 8-thread hammer pins down the exactness claim the sharding design makes:
// unsigned sums are commutative, so concurrent add()s never lose counts.
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/json_parse.h"
#include "obs/metrics.h"

namespace shiraz::obs {
namespace {

TEST(MetricsRegistry, CounterCountsExactly) {
  MetricsRegistry reg;
  Counter& c = reg.counter("shiraz_test_total", "a test counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsRegistry, GaugeSetAndDelta) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("shiraz_test_gauge");
  g.set(3.5);
  EXPECT_EQ(g.value(), 3.5);
  g.add(-1.5);
  EXPECT_EQ(g.value(), 2.0);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(MetricsRegistry, GetOrCreateReturnsSameInstance) {
  MetricsRegistry reg;
  Counter& a = reg.counter("shiraz_test_total", "help set on first call");
  Counter& b = reg.counter("shiraz_test_total");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("shiraz_test_total");
  EXPECT_THROW(reg.gauge("shiraz_test_total"), InvalidArgument);
  EXPECT_THROW(reg.histogram("shiraz_test_total", {1.0}), InvalidArgument);
}

TEST(MetricsRegistry, InvalidNameThrows) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter(""), InvalidArgument);
  EXPECT_THROW(reg.counter("0starts_with_digit"), InvalidArgument);
  EXPECT_THROW(reg.counter("has-dash"), InvalidArgument);
  EXPECT_THROW(reg.counter("has space"), InvalidArgument);
  EXPECT_TRUE(valid_metric_name("shiraz:ns_total"));
  EXPECT_TRUE(valid_metric_name("_leading_underscore"));
  EXPECT_FALSE(valid_metric_name("trailing!"));
}

TEST(MetricsRegistry, HistogramEdgeMismatchThrows) {
  MetricsRegistry reg;
  reg.histogram("shiraz_test_seconds", {0.1, 1.0});
  EXPECT_NO_THROW(reg.histogram("shiraz_test_seconds", {0.1, 1.0}));
  EXPECT_THROW(reg.histogram("shiraz_test_seconds", {0.1, 2.0}),
               InvalidArgument);
}

TEST(MetricsRegistry, HistogramRejectsBadEdges) {
  EXPECT_THROW(Histogram({}), InvalidArgument);
  EXPECT_THROW(Histogram({1.0, 1.0}), InvalidArgument);
  EXPECT_THROW(Histogram({2.0, 1.0}), InvalidArgument);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Histogram({1.0, inf}), InvalidArgument);
}

TEST(MetricsRegistry, HistogramBinEdgesAreLeInclusive) {
  // Prometheus `le` semantics: an observation equal to an edge lands in that
  // edge's bucket; strictly greater spills to the next (or +Inf) bucket.
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1.0
  h.observe(1.0);    // == edge -> bucket 0
  h.observe(1.0000000001);  // just past -> bucket 1
  h.observe(10.0);   // == edge -> bucket 1
  h.observe(100.0);  // == edge -> bucket 2
  h.observe(100.5);  // overflow
  EXPECT_EQ(h.count(), 6u);
  const std::vector<std::uint64_t> want{2, 2, 1, 1};
  EXPECT_EQ(h.bucket_counts(), want);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.0000000001 + 10.0 + 100.0 + 100.5, 1e-9);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
  MetricsRegistry reg;
  reg.counter("zeta_total").add(1);
  reg.gauge("alpha_gauge").set(2.0);
  reg.histogram("mid_seconds", {1.0}).observe(0.5);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "alpha_gauge");
  EXPECT_EQ(snap.entries[1].name, "mid_seconds");
  EXPECT_EQ(snap.entries[2].name, "zeta_total");
  EXPECT_EQ(snap.entries[0].kind, MetricsSnapshot::Kind::kGauge);
  EXPECT_EQ(snap.entries[1].kind, MetricsSnapshot::Kind::kHistogram);
  EXPECT_EQ(snap.entries[2].kind, MetricsSnapshot::Kind::kCounter);
  EXPECT_EQ(snap.entries[2].count, 1u);
}

TEST(MetricsRegistry, RegistryResetZeroesEverything) {
  MetricsRegistry reg;
  reg.counter("a_total").add(5);
  reg.gauge("b_gauge").set(7.0);
  reg.histogram("c_seconds", {1.0}).observe(0.5);
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);  // registrations survive
  EXPECT_EQ(snap.entries[0].count, 0u);
  EXPECT_EQ(snap.entries[1].value, 0.0);
  EXPECT_EQ(snap.entries[2].count, 0u);
}

TEST(MetricsRegistry, PrometheusGoldenOutput) {
  MetricsRegistry reg;
  reg.counter("shiraz_reqs_total", "requests served").add(42);
  reg.gauge("shiraz_conns", "open connections").set(3.0);
  Histogram& h = reg.histogram("shiraz_latency_seconds", {0.1, 1.0}, "latency");
  h.observe(0.05);
  h.observe(0.5);
  h.observe(0.5);
  h.observe(2.0);
  const std::string got = prometheus_render(reg.snapshot());
  const std::string want =
      "# HELP shiraz_conns open connections\n"
      "# TYPE shiraz_conns gauge\n"
      "shiraz_conns 3\n"
      "# HELP shiraz_latency_seconds latency\n"
      "# TYPE shiraz_latency_seconds histogram\n"
      "shiraz_latency_seconds_bucket{le=\"0.1\"} 1\n"
      "shiraz_latency_seconds_bucket{le=\"1\"} 3\n"
      "shiraz_latency_seconds_bucket{le=\"+Inf\"} 4\n"
      "shiraz_latency_seconds_sum 3.05\n"
      "shiraz_latency_seconds_count 4\n"
      "# HELP shiraz_reqs_total requests served\n"
      "# TYPE shiraz_reqs_total counter\n"
      "shiraz_reqs_total 42\n";
  EXPECT_EQ(got, want);
}

TEST(MetricsRegistry, JsonExpositionRoundTrips) {
  MetricsRegistry reg;
  reg.counter("shiraz_reqs_total", "requests").add(9);
  reg.gauge("shiraz_conns").set(1.5);
  reg.histogram("shiraz_latency_seconds", {0.1, 1.0}).observe(0.5);
  const std::string doc = metrics_json(reg.snapshot());

  const JsonValue v = parse_json(doc);
  EXPECT_EQ(v.at("schema").string, kMetricsSchema);
  const auto& metrics = v.at("metrics").array;
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[0]->at("name").string, "shiraz_conns");
  EXPECT_EQ(metrics[0]->at("type").string, "gauge");
  EXPECT_EQ(metrics[0]->at("value").number, 1.5);
  EXPECT_EQ(metrics[1]->at("name").string, "shiraz_latency_seconds");
  EXPECT_EQ(metrics[1]->at("type").string, "histogram");
  EXPECT_EQ(metrics[1]->at("count").number, 1.0);
  ASSERT_EQ(metrics[1]->at("edges").array.size(), 2u);
  ASSERT_EQ(metrics[1]->at("buckets").array.size(), 3u);
  EXPECT_EQ(metrics[1]->at("buckets").array[1]->number, 1.0);
  EXPECT_EQ(metrics[2]->at("name").string, "shiraz_reqs_total");
  EXPECT_EQ(metrics[2]->at("type").string, "counter");
  EXPECT_EQ(metrics[2]->at("value").number, 9.0);
  EXPECT_EQ(metrics[2]->at("help").string, "requests");
}

// The sharding exactness claim under real contention: 8 threads hammering the
// same counter and histogram must lose nothing — u64 shard sums commute.
TEST(MetricsRegistry, ShardMergeHammer) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  MetricsRegistry reg;
  Counter& c = reg.counter("hammer_total");
  Histogram& h = reg.histogram("hammer_seconds", {0.25, 0.5, 0.75});
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add();
        // Cycle the four buckets deterministically per thread.
        h.observe(0.125 + 0.25 * static_cast<double>((i + t) % 4));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  for (const std::uint64_t b : buckets) {
    EXPECT_EQ(b, kThreads * kPerThread / 4);  // each residue class hit evenly
  }
}

}  // namespace
}  // namespace shiraz::obs
