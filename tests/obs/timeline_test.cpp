// ASCII timeline renderer: lane layout, glyph priorities, repetition
// filtering, and the legend/scale footer.
#include "obs/timeline.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "obs/event.h"

namespace shiraz::obs {
namespace {

Event make_event(EventKind kind, Seconds time, Seconds duration = 0.0,
                 std::int32_t app = kNoApp, Seconds value = 0.0,
                 std::uint32_t rep = 0) {
  Event e;
  e.kind = kind;
  e.time = time;
  e.duration = duration;
  e.app = app;
  e.value = value;
  e.rep = rep;
  return e;
}

std::vector<std::string> lines_of(const std::string& s) {
  std::vector<std::string> lines;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(Timeline, RendersLanesGlyphsAndFooter) {
  // 100 s horizon on 50 cells: 2 s per cell. One committed segment, one
  // failure that wipes the next segment, a restart, and an alarm.
  const std::vector<Event> events{
      // commit at t=40: compute [10, 38], checkpoint write [38, 40]
      make_event(EventKind::kCheckpointCommit, 40.0, 2.0, 0, 28.0),
      make_event(EventKind::kFailure, 60.0, 0.0, 0),
      make_event(EventKind::kSegmentWiped, 40.0, 20.0, 0),
      make_event(EventKind::kRestart, 60.0, 4.0, 0),
      make_event(EventKind::kAlarmDelivered, 80.0, 0.0, 0, 600.0),
  };
  TimelineOptions opts;
  opts.width = 50;
  opts.wall = 100.0;
  opts.app_names = {"lw"};
  const std::string out = render_timeline(events, opts);

  const std::vector<std::string> lines = lines_of(out);
  // events lane + 1 app lane + scale + legend
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0].substr(0, 6), "events");
  EXPECT_EQ(lines[1].substr(0, 2), "lw");
  EXPECT_NE(lines[0].find('|'), std::string::npos);
  EXPECT_NE(lines[0].find('!'), std::string::npos);
  EXPECT_NE(lines[1].find('='), std::string::npos);
  EXPECT_NE(lines[1].find('C'), std::string::npos);
  EXPECT_NE(lines[1].find('x'), std::string::npos);
  EXPECT_NE(lines[1].find('r'), std::string::npos);
  EXPECT_NE(lines[1].find('.'), std::string::npos);
  EXPECT_NE(lines[2].find("0h"), std::string::npos);
  EXPECT_EQ(lines[3].substr(0, 7), "legend:");
}

TEST(Timeline, GlyphPriorityKeepsLossesVisible) {
  // A wiped span painted before a compute span over the same cells: the 'x'
  // outranks '=' and must survive.
  const std::vector<Event> events{
      make_event(EventKind::kSegmentWiped, 0.0, 50.0, 0),
      make_event(EventKind::kCheckpointCommit, 100.0, 2.0, 0, 98.0),
  };
  TimelineOptions opts;
  opts.width = 10;
  opts.wall = 100.0;
  opts.legend = false;
  const std::string out = render_timeline(events, opts);
  const std::vector<std::string> lines = lines_of(out);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find('x'), std::string::npos)
      << "lost work must not be painted over by compute";
}

TEST(Timeline, FiltersToTheRequestedRepetition) {
  const std::vector<Event> events{
      make_event(EventKind::kFailure, 10.0, 0.0, kNoApp, 0.0, /*rep=*/0),
      make_event(EventKind::kFailure, 50.0, 0.0, kNoApp, 0.0, /*rep=*/1),
  };
  TimelineOptions opts;
  opts.width = 10;
  opts.wall = 100.0;
  opts.legend = false;
  opts.rep = 1;
  const std::string out = render_timeline(events, opts);
  const std::vector<std::string> lines = lines_of(out);
  // Rep 1's failure lands mid-lane; rep 0's (cell 1) must be absent.
  const std::string& lane = lines[0];
  ASSERT_NE(lane.find('|'), std::string::npos);
  EXPECT_EQ(lane.find('|'), lane.rfind('|')) << "exactly one failure glyph";
}

TEST(Timeline, EventsPastTheWallClampIntoTheLastCell) {
  const std::vector<Event> events{
      make_event(EventKind::kFailure, 250.0, 0.0),
  };
  TimelineOptions opts;
  opts.width = 10;
  opts.wall = 100.0;
  opts.legend = false;
  const std::string out = render_timeline(events, opts);
  const std::string lane = lines_of(out)[0];
  EXPECT_EQ(lane.back(), '|');
}

TEST(Timeline, LegendFlagControlsFooter) {
  const std::vector<Event> events{make_event(EventKind::kFailure, 10.0)};
  TimelineOptions opts;
  opts.width = 20;
  opts.wall = 100.0;
  opts.legend = false;
  EXPECT_EQ(render_timeline(events, opts).find("legend:"), std::string::npos);
  opts.legend = true;
  EXPECT_NE(render_timeline(events, opts).find("legend:"), std::string::npos);
}

TEST(Timeline, UnnamedAppsGetPlaceholderLabels) {
  const std::vector<Event> events{
      make_event(EventKind::kAppSwitch, 10.0, 0.0, 2),
  };
  TimelineOptions opts;
  opts.width = 10;
  opts.wall = 100.0;
  opts.legend = false;
  const std::string out = render_timeline(events, opts);
  const std::vector<std::string> lines = lines_of(out);
  // Apps 0..2 all get lanes; 2 is labelled "app 2" with no names given.
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[3].substr(0, 5), "app 2");
}

TEST(Timeline, ValidatesItsOptions) {
  const std::vector<Event> events;
  TimelineOptions opts;
  opts.wall = 0.0;
  EXPECT_THROW(render_timeline(events, opts), InvalidArgument);
  opts.wall = 100.0;
  opts.width = 4;
  EXPECT_THROW(render_timeline(events, opts), InvalidArgument);
}

}  // namespace
}  // namespace shiraz::obs
