// InvariantAuditor: every headline aggregate recomputed from the event
// stream must match the engine's reported SimResult — across policies,
// restart/switch costs, and alarm-driven proactive checkpointing — and a
// corrupted stream must be detected, not silently absorbed.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "obs/audit.h"
#include "obs/audit_sim.h"
#include "obs/event.h"
#include "predict/oracle.h"
#include "predict/policies.h"
#include "reliability/weibull.h"
#include "sim/engine.h"

namespace shiraz::obs {
namespace {

constexpr std::uint64_t kSeed = 20180666;
constexpr double kMtbfHours = 5.0;

struct TracedRun {
  sim::SimResult result;
  std::vector<Event> events;
};

/// One traced Shiraz-pair run under the given engine config; predictive=true
/// swaps in the alarm-aware policy plus an oracle predictor so the stream
/// contains alarm and proactive-checkpoint events.
TracedRun traced_run(sim::EngineConfig cfg, bool predictive = false) {
  const Seconds mtbf = hours(kMtbfHours);
  EventRecorder recorder;
  cfg.sink = &recorder;
  const sim::Engine engine(reliability::Weibull::from_mtbf(0.6, mtbf), cfg);
  const std::vector<sim::SimJob> jobs{sim::SimJob::at_oci("lw", 18.0, mtbf),
                                      sim::SimJob::at_oci("hw", 1800.0, mtbf)};
  Rng rng = Rng(kSeed).fork(0);
  TracedRun run;
  if (predictive) {
    predict::OracleConfig ocfg;
    ocfg.precision = 0.9;
    ocfg.recall = 0.8;
    ocfg.lead = minutes(10.0);
    ocfg.mtbf = mtbf;
    const predict::OraclePredictor oracle(ocfg);
    const predict::PredictiveShirazScheduler policy(26);
    run.result = engine.run(jobs, policy, rng, &oracle);
  } else {
    const sim::ShirazPairScheduler policy(26);
    run.result = engine.run(jobs, policy, rng);
  }
  run.events = recorder.events();
  return run;
}

void audit(const std::vector<Event>& events, const sim::SimResult& result) {
  InvariantAuditor auditor;
  for (const Event& e : events) auditor.on_event(e);
  verify_against(auditor, result);
}

TEST(InvariantAudit, PassesOnPlainRun) {
  sim::EngineConfig cfg;
  cfg.t_total = hours(200.0);
  const TracedRun run = traced_run(cfg);
  ASSERT_FALSE(run.events.empty());
  EXPECT_NO_THROW(audit(run.events, run.result));
}

TEST(InvariantAudit, PassesWithRestartAndSwitchCosts) {
  sim::EngineConfig cfg;
  cfg.t_total = hours(200.0);
  cfg.restart_cost = 120.0;
  cfg.switch_cost = 30.0;
  const TracedRun run = traced_run(cfg);
  EXPECT_NO_THROW(audit(run.events, run.result));
}

TEST(InvariantAudit, PassesOnPredictiveRunWithAlarmsAndProactiveWrites) {
  sim::EngineConfig cfg;
  cfg.t_total = hours(200.0);
  const TracedRun run = traced_run(cfg, /*predictive=*/true);
  EXPECT_GT(run.result.alarms, 0u) << "scenario must actually deliver alarms";
  EXPECT_GT(run.result.proactive_checkpoints, 0u)
      << "scenario must actually checkpoint proactively";
  EXPECT_NO_THROW(audit(run.events, run.result));
}

TEST(InvariantAudit, DetectsTamperedCommitValue) {
  sim::EngineConfig cfg;
  cfg.t_total = hours(200.0);
  TracedRun run = traced_run(cfg);
  for (Event& e : run.events) {
    if (e.kind == EventKind::kCheckpointCommit) {
      e.value += 100.0;  // inflate the sealed compute of one segment
      break;
    }
  }
  EXPECT_THROW(audit(run.events, run.result), AuditError);
}

TEST(InvariantAudit, DetectsDroppedFailureEvent) {
  sim::EngineConfig cfg;
  cfg.t_total = hours(200.0);
  TracedRun run = traced_run(cfg);
  for (std::size_t i = 0; i < run.events.size(); ++i) {
    if (run.events[i].kind == EventKind::kFailure) {
      run.events.erase(run.events.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  EXPECT_THROW(audit(run.events, run.result), AuditError);
}

TEST(InvariantAudit, DetectsMissingCheckpointBegins) {
  sim::EngineConfig cfg;
  cfg.t_total = hours(200.0);
  TracedRun run = traced_run(cfg);
  // Dropping a single begin can hide behind the extra begins that wiped
  // writes legitimately leave, so corrupt harder: a stream with commits but
  // no begins at all violates begins >= commits unambiguously.
  std::vector<Event> stripped;
  for (const Event& e : run.events) {
    if (e.kind != EventKind::kCheckpointBegin) stripped.push_back(e);
  }
  ASSERT_LT(stripped.size(), run.events.size());
  EXPECT_THROW(audit(stripped, run.result), AuditError);
}

TEST(InvariantAudit, DetectsMisreportedIdle) {
  sim::EngineConfig cfg;
  cfg.t_total = hours(200.0);
  const TracedRun run = traced_run(cfg);
  InvariantAuditor auditor;
  for (const Event& e : run.events) auditor.on_event(e);
  ExpectedTotals expected = expected_totals(run.result);
  expected.idle += 1.0;  // the decomposition no longer tiles the wall
  EXPECT_THROW(auditor.verify(expected), AuditError);
}

TEST(InvariantAudit, DetectsStreamNamingAppBeyondLayout) {
  sim::EngineConfig cfg;
  cfg.t_total = hours(200.0);
  TracedRun run = traced_run(cfg);
  Event rogue;
  rogue.kind = EventKind::kSegmentWiped;
  rogue.app = static_cast<std::int32_t>(run.result.apps.size());
  run.events.push_back(rogue);
  EXPECT_THROW(audit(run.events, run.result), AuditError);
}

TEST(InvariantAudit, ClearResetsForTheNextRun) {
  sim::EngineConfig cfg;
  cfg.t_total = hours(200.0);
  const TracedRun run = traced_run(cfg);
  InvariantAuditor auditor;
  for (const Event& e : run.events) auditor.on_event(e);
  EXPECT_EQ(auditor.events_seen(), run.events.size());
  EXPECT_NO_THROW(verify_against(auditor, run.result));

  // Without clear() the second pass double-counts and must fail ...
  for (const Event& e : run.events) auditor.on_event(e);
  EXPECT_THROW(verify_against(auditor, run.result), AuditError);

  // ... and after clear() the same stream audits cleanly again.
  auditor.clear();
  EXPECT_EQ(auditor.events_seen(), 0u);
  for (const Event& e : run.events) auditor.on_event(e);
  EXPECT_NO_THROW(verify_against(auditor, run.result));
}

TEST(InvariantAudit, RejectsInvalidConstructionAndInput) {
  EXPECT_THROW(InvariantAuditor(-1.0), InvalidArgument);
  InvariantAuditor auditor;
  Event negative_app;
  negative_app.kind = EventKind::kRestart;
  negative_app.app = kNoApp;
  EXPECT_THROW(auditor.on_event(negative_app), InvalidArgument);
  ExpectedTotals no_wall;
  EXPECT_THROW(auditor.verify(no_wall), InvalidArgument);
}

}  // namespace
}  // namespace shiraz::obs
