// The event-tracing contract (DESIGN.md "Observability"): arming an
// EventSink is bit-identical to an untraced run — sinks are pure observers
// with no RNG access — and campaign streams merge in repetition order, so
// the trace is identical for every --jobs value. Checked for every policy
// family the repo ships: baseline, Shiraz, Shiraz+, and predictive Shiraz
// with a live alarm source.
#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "obs/event.h"
#include "predict/oracle.h"
#include "predict/policies.h"
#include "reliability/weibull.h"
#include "sim/engine.h"

namespace shiraz::obs {
namespace {

constexpr std::uint64_t kSeed = 20180555;
constexpr std::size_t kReps = 8;
constexpr double kMtbfHours = 5.0;

sim::Engine make_engine() {
  sim::EngineConfig cfg;
  cfg.t_total = hours(200.0);
  return sim::Engine(reliability::Weibull::from_mtbf(0.6, hours(kMtbfHours)),
                     cfg);
}

void expect_identical(const sim::SimResult& a, const sim::SimResult& b) {
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].useful, b.apps[i].useful) << "app " << i;
    EXPECT_EQ(a.apps[i].io, b.apps[i].io) << "app " << i;
    EXPECT_EQ(a.apps[i].lost, b.apps[i].lost) << "app " << i;
    EXPECT_EQ(a.apps[i].restart, b.apps[i].restart) << "app " << i;
    EXPECT_EQ(a.apps[i].checkpoints, b.apps[i].checkpoints) << "app " << i;
    EXPECT_EQ(a.apps[i].proactive_checkpoints, b.apps[i].proactive_checkpoints);
    EXPECT_EQ(a.apps[i].failures_hit, b.apps[i].failures_hit) << "app " << i;
  }
  EXPECT_EQ(a.wall, b.wall);
  EXPECT_EQ(a.idle, b.idle);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.alarms, b.alarms);
  EXPECT_EQ(a.proactive_checkpoints, b.proactive_checkpoints);
}

enum class Policy { kBaseline, kShiraz, kShirazPlus, kPredictiveShiraz };

struct Campaign {
  std::vector<sim::SimJob> jobs;
  std::unique_ptr<sim::Scheduler> scheduler;
  std::unique_ptr<sim::AlarmSource> alarms;  // null unless predictive
};

Campaign make_campaign(Policy policy) {
  const Seconds mtbf = hours(kMtbfHours);
  Campaign c;
  c.jobs = {sim::SimJob::at_oci("lw", 18.0, mtbf),
            sim::SimJob::at_oci("hw", 1800.0, mtbf)};
  switch (policy) {
    case Policy::kBaseline:
      c.scheduler = std::make_unique<sim::AlternateAtFailure>();
      break;
    case Policy::kShiraz:
      c.scheduler = std::make_unique<sim::ShirazPairScheduler>(26);
      break;
    case Policy::kShirazPlus:
      c.jobs[1] = sim::SimJob::at_oci("hw", 1800.0, mtbf, /*stretch=*/3);
      c.scheduler = std::make_unique<sim::ShirazPairScheduler>(26);
      break;
    case Policy::kPredictiveShiraz: {
      predict::OracleConfig ocfg;
      ocfg.precision = 0.9;
      ocfg.recall = 0.8;
      ocfg.lead = minutes(10.0);
      ocfg.mtbf = mtbf;
      c.scheduler = std::make_unique<predict::PredictiveShirazScheduler>(26);
      c.alarms = std::make_unique<predict::OraclePredictor>(ocfg);
      break;
    }
  }
  return c;
}

std::vector<Event> traced_campaign(const sim::Engine& engine, const Campaign& c,
                                   std::size_t workers,
                                   sim::SimResult* result = nullptr) {
  EventRecorder recorder;
  sim::CampaignOptions opts;
  opts.workers = workers;
  opts.alarms = c.alarms.get();
  opts.sink = &recorder;
  const sim::SimResult r =
      engine.run_many(c.jobs, *c.scheduler, kReps, kSeed, opts);
  if (result != nullptr) *result = r;
  return recorder.events();
}

class EventTraceTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, Policy>> {};

TEST_P(EventTraceTest, ArmedSinkIsBitIdenticalToUntracedRun) {
  const auto [workers, policy] = GetParam();
  const sim::Engine engine = make_engine();
  const Campaign c = make_campaign(policy);

  const sim::SimResult untraced = engine.run_many(
      c.jobs, *c.scheduler, kReps, kSeed, workers, c.alarms.get());

  sim::SimResult traced;
  const std::vector<Event> events =
      traced_campaign(engine, c, workers, &traced);
  expect_identical(traced, untraced);
  EXPECT_FALSE(events.empty());
}

TEST_P(EventTraceTest, StreamIsIdenticalForEveryWorkerCount) {
  const auto [workers, policy] = GetParam();
  const sim::Engine engine = make_engine();
  const Campaign c = make_campaign(policy);

  const std::vector<Event> serial = traced_campaign(engine, c, 1);
  const std::vector<Event> at_param = traced_campaign(engine, c, workers);
  ASSERT_EQ(serial.size(), at_param.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], at_param[i]) << "event " << i;
  }
}

TEST_P(EventTraceTest, RepStampsArriveInRepetitionOrder) {
  const auto [workers, policy] = GetParam();
  const sim::Engine engine = make_engine();
  const Campaign c = make_campaign(policy);

  const std::vector<Event> events = traced_campaign(engine, c, workers);
  std::uint32_t last_rep = 0;
  std::vector<bool> seen(kReps, false);
  for (const Event& e : events) {
    EXPECT_GE(e.rep, last_rep) << "merge must deliver rep by rep";
    EXPECT_LT(e.rep, kReps);
    last_rep = e.rep;
    seen[e.rep] = true;
  }
  for (std::size_t r = 0; r < kReps; ++r) {
    EXPECT_TRUE(seen[r]) << "rep " << r << " produced no events";
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkerCountsAndPolicies, EventTraceTest,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{4}),
                       ::testing::Values(Policy::kBaseline, Policy::kShiraz,
                                         Policy::kShirazPlus,
                                         Policy::kPredictiveShiraz)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, Policy>>& info) {
      const Policy policy = std::get<1>(info.param);
      const char* name = policy == Policy::kBaseline     ? "Baseline"
                         : policy == Policy::kShiraz     ? "Shiraz"
                         : policy == Policy::kShirazPlus ? "ShirazPlus"
                                                         : "PredictiveShiraz";
      return std::string(name) + "Jobs" + std::to_string(std::get<0>(info.param));
    });

TEST(EventTrace, SingleRunConfigSinkStreamsAndStaysBitIdentical) {
  const Campaign c = make_campaign(Policy::kShiraz);

  sim::EngineConfig plain_cfg;
  plain_cfg.t_total = hours(200.0);
  const sim::Engine plain(
      reliability::Weibull::from_mtbf(0.6, hours(kMtbfHours)), plain_cfg);
  Rng rng_plain = Rng(kSeed).fork(0);
  const sim::SimResult untraced = plain.run(c.jobs, *c.scheduler, rng_plain);

  EventRecorder recorder;
  sim::EngineConfig traced_cfg = plain_cfg;
  traced_cfg.sink = &recorder;
  const sim::Engine traced(
      reliability::Weibull::from_mtbf(0.6, hours(kMtbfHours)), traced_cfg);
  Rng rng_traced = Rng(kSeed).fork(0);
  const sim::SimResult res = traced.run(c.jobs, *c.scheduler, rng_traced);

  expect_identical(res, untraced);
  ASSERT_FALSE(recorder.events().empty());
  for (const Event& e : recorder.events()) {
    EXPECT_EQ(e.rep, 0u) << "single runs never stamp a repetition";
  }
}

TEST(EventTrace, CampaignSinkOverridesConfigSink) {
  const Campaign c = make_campaign(Policy::kShiraz);
  EventRecorder config_sink;
  EventRecorder campaign_sink;

  sim::EngineConfig cfg;
  cfg.t_total = hours(200.0);
  cfg.sink = &config_sink;
  const sim::Engine engine(
      reliability::Weibull::from_mtbf(0.6, hours(kMtbfHours)), cfg);

  sim::CampaignOptions opts;
  opts.sink = &campaign_sink;
  engine.run_many(c.jobs, *c.scheduler, kReps, kSeed, opts);
  EXPECT_TRUE(config_sink.events().empty());
  EXPECT_FALSE(campaign_sink.events().empty());

  // Without an override the campaign falls back to the engine's sink, still
  // buffered and rep-stamped.
  sim::CampaignOptions fallback;
  engine.run_many(c.jobs, *c.scheduler, kReps, kSeed, fallback);
  EXPECT_EQ(config_sink.events().size(), campaign_sink.events().size());
}

TEST(EventTrace, RunCampaignDeliversTheSameMergedStream) {
  const Campaign c = make_campaign(Policy::kPredictiveShiraz);
  const sim::Engine engine = make_engine();

  const std::vector<Event> from_run_many = traced_campaign(engine, c, 4);

  EventRecorder recorder;
  sim::CampaignOptions opts;
  opts.workers = 4;
  opts.alarms = c.alarms.get();
  opts.sink = &recorder;
  engine.run_campaign(c.jobs, *c.scheduler, kReps, kSeed, opts);
  ASSERT_EQ(recorder.events().size(), from_run_many.size());
  for (std::size_t i = 0; i < from_run_many.size(); ++i) {
    EXPECT_EQ(recorder.events()[i], from_run_many[i]) << "event " << i;
  }
}

TEST(EventTrace, KindNamesAreStable) {
  EXPECT_STREQ(kind_name(EventKind::kFailure), "failure");
  EXPECT_STREQ(kind_name(EventKind::kCheckpointCommit), "checkpoint-commit");
  EXPECT_STREQ(kind_name(EventKind::kProactiveCheckpoint),
               "proactive-checkpoint");
}

}  // namespace
}  // namespace shiraz::obs
