// Perfetto export: the emitted trace_event JSON must be structurally valid
// (parsed with the tests' minimal parser — the same bar chrome://tracing and
// ui.perfetto.dev set) and must map the event taxonomy onto the documented
// track layout: pid = rep + 1, tid 0 = failures/alarms, tid = app + 1.
#include "obs/perfetto.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "obs/event.h"
#include "predict/oracle.h"
#include "predict/policies.h"
#include "reliability/weibull.h"
#include "sim/engine.h"
#include "common/json_parse.h"

namespace shiraz::obs {
namespace {


constexpr std::uint64_t kSeed = 20180777;

/// A short predictive campaign: two reps, alarms armed, so the stream covers
/// every track the exporter renders (spans, failure instants, alarms).
std::vector<Event> sample_stream() {
  const Seconds mtbf = hours(5.0);
  EventRecorder recorder;
  sim::EngineConfig cfg;
  cfg.t_total = hours(100.0);
  const sim::Engine engine(reliability::Weibull::from_mtbf(0.6, mtbf), cfg);
  const std::vector<sim::SimJob> jobs{sim::SimJob::at_oci("lw", 18.0, mtbf),
                                      sim::SimJob::at_oci("hw", 1800.0, mtbf)};
  predict::OracleConfig ocfg;
  ocfg.precision = 0.9;
  ocfg.recall = 0.8;
  ocfg.lead = minutes(10.0);
  ocfg.mtbf = mtbf;
  const predict::OraclePredictor oracle(ocfg);
  const predict::PredictiveShirazScheduler policy(26);

  sim::CampaignOptions opts;
  opts.alarms = &oracle;
  opts.sink = &recorder;
  engine.run_many(jobs, policy, /*reps=*/2, kSeed, opts);
  return recorder.events();
}

TEST(Perfetto, DocumentIsStructurallyValid) {
  const std::vector<Event> events = sample_stream();
  ASSERT_FALSE(events.empty());
  const JsonValue doc =
      parse_json(perfetto_trace_json(events, {"light", "heavy"}));

  ASSERT_TRUE(doc.has("traceEvents"));
  const JsonValue& entries = doc.at("traceEvents");
  ASSERT_EQ(entries.type, JsonValue::Type::kArray);
  ASSERT_FALSE(entries.array.empty());

  std::set<double> pids;
  std::set<std::string> phases;
  std::set<std::string> names;
  for (const auto& entry_ptr : entries.array) {
    const JsonValue& e = *entry_ptr;
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("pid"));
    const std::string ph = e.at("ph").string;
    phases.insert(ph);
    pids.insert(e.at("pid").number);
    if (ph == "X") {
      EXPECT_TRUE(e.has("tid"));
      EXPECT_TRUE(e.has("ts"));
      EXPECT_TRUE(e.has("dur"));
      EXPECT_GE(e.at("dur").number, 0.0);
      names.insert(e.at("name").string);
    } else if (ph == "i") {
      EXPECT_TRUE(e.has("tid"));
      EXPECT_TRUE(e.has("ts"));
      names.insert(e.at("name").string);
    } else {
      // Metadata names a process (no tid) or one of its tracks.
      EXPECT_EQ(ph, "M") << "only X, i, and M events are emitted";
    }
  }
  // Two reps render as processes 1 and 2.
  EXPECT_EQ(pids, (std::set<double>{1.0, 2.0}));
  EXPECT_TRUE(phases.count("X"));
  EXPECT_TRUE(phases.count("i"));
  EXPECT_TRUE(phases.count("M"));
  EXPECT_TRUE(names.count("compute"));
  EXPECT_TRUE(names.count("checkpoint"));
  EXPECT_TRUE(names.count("failure"));
}

TEST(Perfetto, MetadataNamesProcessesAndTracks) {
  const std::vector<Event> events = sample_stream();
  const JsonValue doc =
      parse_json(perfetto_trace_json(events, {"light", "heavy"}));
  std::set<std::string> labels;
  for (const auto& entry_ptr : doc.at("traceEvents").array) {
    const JsonValue& e = *entry_ptr;
    if (e.at("ph").string != "M") continue;
    EXPECT_TRUE(e.at("name").string == "process_name" ||
                e.at("name").string == "thread_name");
    labels.insert(e.at("args").at("name").string);
  }
  EXPECT_TRUE(labels.count("rep 0"));
  EXPECT_TRUE(labels.count("rep 1"));
  EXPECT_TRUE(labels.count("light"));
  EXPECT_TRUE(labels.count("heavy"));
  EXPECT_TRUE(labels.count("failures/alarms"));
}

TEST(Perfetto, UnnamedAppsGetPlaceholderTracks) {
  Event e;
  e.kind = EventKind::kCheckpointCommit;
  e.time = 100.0;
  e.duration = 10.0;
  e.value = 50.0;
  e.app = 1;
  const JsonValue doc = parse_json(perfetto_trace_json({e}));
  bool found = false;
  for (const auto& entry_ptr : doc.at("traceEvents").array) {
    const JsonValue& m = *entry_ptr;
    if (m.at("ph").string == "M" && m.at("name").string == "thread_name" &&
        m.at("args").at("name").string == "app 1") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Perfetto, TimestampsAreSimulatedMicroseconds) {
  Event commit;
  commit.kind = EventKind::kCheckpointCommit;
  commit.time = 2.0;       // seconds: write span [1, 2], compute [0.5, 1]
  commit.duration = 1.0;
  commit.value = 0.5;
  commit.app = 0;
  const JsonValue doc = parse_json(perfetto_trace_json({commit}));
  bool saw_checkpoint = false;
  for (const auto& entry_ptr : doc.at("traceEvents").array) {
    const JsonValue& e = *entry_ptr;
    if (e.at("ph").string == "X" && e.at("name").string == "checkpoint") {
      EXPECT_DOUBLE_EQ(e.at("ts").number, 1e6);
      EXPECT_DOUBLE_EQ(e.at("dur").number, 1e6);
      saw_checkpoint = true;
    }
    if (e.at("ph").string == "X" && e.at("name").string == "compute") {
      EXPECT_DOUBLE_EQ(e.at("ts").number, 0.5e6);
      EXPECT_DOUBLE_EQ(e.at("dur").number, 0.5e6);
    }
  }
  EXPECT_TRUE(saw_checkpoint);
}

TEST(Perfetto, WriteProducesALoadableFile) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "shiraz_perfetto_test.json").string();
  const std::vector<Event> events = sample_stream();
  write_perfetto_trace(path, events, {"light", "heavy"});

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = parse_json(buf.str());
  EXPECT_FALSE(doc.at("traceEvents").array.empty());
  fs::remove(path);

  EXPECT_THROW(
      write_perfetto_trace("/nonexistent-dir/trace.json", events), IoError);
}

TEST(Perfetto, SinkFormRecordsAndRenders) {
  PerfettoWriter writer({"a"});
  Event e;
  e.kind = EventKind::kFailure;
  e.time = 10.0;
  writer.on_event(e);
  EXPECT_EQ(writer.events().size(), 1u);
  const JsonValue doc = parse_json(writer.render());
  bool saw_failure = false;
  for (const auto& entry_ptr : doc.at("traceEvents").array) {
    if (entry_ptr->at("ph").string == "i" &&
        entry_ptr->at("name").string == "failure") {
      saw_failure = true;
      EXPECT_DOUBLE_EQ(entry_ptr->at("ts").number, 10e6);
      EXPECT_DOUBLE_EQ(entry_ptr->at("tid").number, 0.0);
    }
  }
  EXPECT_TRUE(saw_failure);
}

}  // namespace
}  // namespace shiraz::obs
