#include "sched/distribution.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/units.h"

namespace shiraz::sched {
namespace {

BatchJobRecord record(const std::string& name, Seconds submit,
                      Seconds completion) {
  BatchJobRecord rec;
  rec.name = name;
  rec.submit_time = submit;
  rec.completion_time = completion;
  if (completion >= 0.0) rec.start_time = submit;
  return rec;
}

TEST(DistSummary, KnownSamples) {
  // Percentiles interpolate at q * (n - 1) over the sorted sample.
  const DistSummary s = summarize_samples({40.0, 10.0, 30.0, 20.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 25.0);
  EXPECT_DOUBLE_EQ(s.max, 40.0);
  EXPECT_DOUBLE_EQ(s.p50, 25.0);
  EXPECT_DOUBLE_EQ(s.p95, 38.5);
  EXPECT_DOUBLE_EQ(s.p99, 39.7);
}

TEST(DistSummary, EmptyIsAllZero) {
  const DistSummary s = summarize_samples({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(DistSummary, SingleSample) {
  const DistSummary s = summarize_samples({7.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.p50, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(CampaignDistribution, HandmadeTwoRepBuild) {
  const std::vector<BatchJobSpec> jobs{{"short", 3600.0, 30.0, 0.0},
                                       {"long", 7200.0, 30.0, 1000.0}};

  CampaignStats rep0;
  rep0.jobs = {record("short", 0.0, 4000.0), record("long", 1000.0, 9000.0)};
  rep0.makespan = 9000.0;

  CampaignStats rep1;  // "long" hits the horizon unfinished
  rep1.jobs = {record("short", 0.0, 5000.0), record("long", 1000.0, -1.0)};
  rep1.makespan = 10'000.0;

  const CampaignDistribution dist = build_distribution(jobs, {rep0, rep1});
  EXPECT_EQ(dist.reps, 2u);
  EXPECT_EQ(dist.job_count, 2u);
  EXPECT_DOUBLE_EQ(dist.completion_rate, 0.75);

  // Turnaround samples in (rep, job) order: {4000, 8000, 5000}.
  EXPECT_EQ(dist.turnaround.count, 3u);
  EXPECT_DOUBLE_EQ(dist.turnaround.mean, 17'000.0 / 3.0);
  EXPECT_DOUBLE_EQ(dist.turnaround.p50, 5000.0);
  EXPECT_DOUBLE_EQ(dist.turnaround.max, 8000.0);

  // Slowdown divides each sample by its job's work requirement.
  EXPECT_DOUBLE_EQ(dist.slowdown.max, 5000.0 / 3600.0);

  // One makespan sample per repetition.
  EXPECT_EQ(dist.makespan.count, 2u);
  EXPECT_DOUBLE_EQ(dist.makespan.mean, 9500.0);
  EXPECT_DOUBLE_EQ(dist.makespan.max, 10'000.0);

  // The mean view is mean_of_reps of the same repetitions.
  EXPECT_DOUBLE_EQ(dist.mean.job("short").completion_time, 4500.0);
  EXPECT_EQ(dist.mean.job("short").completed_reps, 2u);
  EXPECT_DOUBLE_EQ(dist.mean.job("long").completion_time, 9000.0);
  EXPECT_EQ(dist.mean.job("long").completed_reps, 1u);
  EXPECT_DOUBLE_EQ(dist.mean.completion_rate(), 0.75);
}

TEST(MeanOfReps, StartAndCompletionAverageOverParticipatingRepsOnly) {
  CampaignStats rep0;
  rep0.jobs = {record("a", 0.0, 300.0), record("never", 0.0, -1.0)};
  rep0.jobs[0].start_time = 100.0;

  CampaignStats rep1;
  rep1.jobs = {record("a", 0.0, -1.0), record("never", 0.0, -1.0)};
  rep1.jobs[0].start_time = -1.0;  // "a" never even started in rep 1

  const CampaignStats mean = mean_of_reps({rep0, rep1});
  EXPECT_EQ(mean.reps, 2u);
  // start/completion average only the reps where the job started/completed.
  EXPECT_DOUBLE_EQ(mean.job("a").start_time, 100.0);
  EXPECT_EQ(mean.job("a").started_reps, 1u);
  EXPECT_DOUBLE_EQ(mean.job("a").completion_time, 300.0);
  EXPECT_EQ(mean.job("a").completed_reps, 1u);
  // A job that never ran keeps the sentinels.
  EXPECT_DOUBLE_EQ(mean.job("never").start_time, -1.0);
  EXPECT_DOUBLE_EQ(mean.job("never").completion_time, -1.0);
  EXPECT_EQ(mean.job("never").completed_reps, 0u);
}

TEST(MeanOfReps, RejectsBadInput) {
  EXPECT_THROW(mean_of_reps({}), InvalidArgument);
  CampaignStats one;
  one.jobs = {record("a", 0.0, 100.0)};
  CampaignStats two;
  two.jobs = {record("a", 0.0, 100.0), record("b", 0.0, 100.0)};
  EXPECT_THROW(mean_of_reps({one, two}), InvalidArgument);
}

}  // namespace
}  // namespace shiraz::sched
