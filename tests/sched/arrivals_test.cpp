#include "sched/arrivals.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"

namespace shiraz::sched {
namespace {

std::vector<JobClass> two_class_catalog() {
  return {{"light", hours(2.0), 10.0, 9.0, 0.25},
          {"heavy", hours(20.0), 2000.0, 1.0, 0.25}};
}

ArrivalConfig config_for(ArrivalRegime regime) {
  ArrivalConfig cfg;
  cfg.regime = regime;
  cfg.mean_interarrival = hours(10.0);
  return cfg;
}

/// Inter-arrival gaps of a generated stream (first gap measured from t = 0).
std::vector<Seconds> gaps_of(const std::vector<BatchJobSpec>& jobs) {
  std::vector<Seconds> gaps;
  gaps.reserve(jobs.size());
  Seconds prev = 0.0;
  for (const BatchJobSpec& job : jobs) {
    gaps.push_back(job.submit_time - prev);
    prev = job.submit_time;
  }
  return gaps;
}

TEST(Arrivals, GeneratesCountInSubmitOrder) {
  for (const ArrivalRegime regime :
       {ArrivalRegime::kPoisson, ArrivalRegime::kBursty}) {
    Rng rng(1);
    const auto jobs =
        generate_arrivals(two_class_catalog(), config_for(regime), 500, rng);
    ASSERT_EQ(jobs.size(), 500u) << to_string(regime);
    Seconds prev = 0.0;
    for (const BatchJobSpec& job : jobs) {
      EXPECT_GE(job.submit_time, prev);
      EXPECT_GT(job.work, 0.0);
      EXPECT_GT(job.checkpoint_cost, 0.0);
      EXPECT_FALSE(job.name.empty());
      prev = job.submit_time;
    }
  }
}

TEST(Arrivals, DeterministicPerSeed) {
  const auto catalog = two_class_catalog();
  const ArrivalConfig cfg = config_for(ArrivalRegime::kBursty);
  Rng r1(42);
  Rng r2(42);
  Rng r3(43);
  const auto a = generate_arrivals(catalog, cfg, 300, r1);
  const auto b = generate_arrivals(catalog, cfg, 300, r2);
  const auto c = generate_arrivals(catalog, cfg, 300, r3);
  ASSERT_EQ(a.size(), b.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_DOUBLE_EQ(a[i].work, b[i].work);
    EXPECT_EQ(a[i].name, b[i].name);
    any_diff = any_diff || a[i].submit_time != c[i].submit_time;
  }
  EXPECT_TRUE(any_diff);  // a different seed produces a different stream
}

TEST(Arrivals, RegimesAreLoadMatched) {
  // Both regimes must realize the same long-run arrival rate, so regime
  // comparisons isolate burstiness. 20k jobs pin the mean gap tightly for
  // Poisson; the bursty estimate is noisier (phase-length variance).
  const std::size_t n = 20'000;
  for (const ArrivalRegime regime :
       {ArrivalRegime::kPoisson, ArrivalRegime::kBursty}) {
    Rng rng(7);
    const auto jobs =
        generate_arrivals(two_class_catalog(), config_for(regime), n, rng);
    const double mean_gap =
        jobs.back().submit_time / static_cast<double>(n);
    EXPECT_NEAR(mean_gap, hours(10.0), 0.10 * hours(10.0)) << to_string(regime);
  }
}

TEST(Arrivals, BurstyGapsAreMoreVariable) {
  const std::size_t n = 20'000;
  auto cv = [&](ArrivalRegime regime) {
    Rng rng(11);
    const auto jobs =
        generate_arrivals(two_class_catalog(), config_for(regime), n, rng);
    const auto gaps = gaps_of(jobs);
    double mean = 0.0;
    for (const Seconds g : gaps) mean += g;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (const Seconds g : gaps) var += (g - mean) * (g - mean);
    var /= static_cast<double>(n - 1);
    return std::sqrt(var) / mean;
  };
  const double cv_poisson = cv(ArrivalRegime::kPoisson);
  const double cv_bursty = cv(ArrivalRegime::kBursty);
  EXPECT_NEAR(cv_poisson, 1.0, 0.1);  // exponential gaps
  EXPECT_GT(cv_bursty, 1.3 * cv_poisson);
}

TEST(Arrivals, WeightsBiasTheClassMix) {
  Rng rng(3);
  const auto jobs = generate_arrivals(two_class_catalog(),
                                      config_for(ArrivalRegime::kPoisson),
                                      5000, rng);
  const auto lights = std::count_if(
      jobs.begin(), jobs.end(), [](const BatchJobSpec& j) {
        return j.name.rfind("light", 0) == 0;
      });
  const auto heavies = static_cast<long>(jobs.size()) - lights;
  ASSERT_GT(heavies, 0);
  EXPECT_GT(lights, 5 * heavies);  // 9:1 weights, wide margin
}

TEST(Arrivals, WorkJitterStaysInBounds) {
  const auto catalog = two_class_catalog();
  Rng rng(5);
  const auto jobs = generate_arrivals(
      catalog, config_for(ArrivalRegime::kPoisson), 2000, rng);
  for (const BatchJobSpec& job : jobs) {
    const JobClass& cls =
        job.name.rfind("light", 0) == 0 ? catalog[0] : catalog[1];
    EXPECT_GE(job.work, 0.75 * cls.work) << job.name;
    EXPECT_LE(job.work, 1.25 * cls.work) << job.name;
  }

  // Zero jitter reproduces the class work exactly.
  std::vector<JobClass> exact = catalog;
  for (JobClass& cls : exact) cls.work_jitter = 0.0;
  Rng rng2(5);
  const auto fixed = generate_arrivals(
      exact, config_for(ArrivalRegime::kPoisson), 200, rng2);
  for (const BatchJobSpec& job : fixed) {
    const JobClass& cls =
        job.name.rfind("light", 0) == 0 ? exact[0] : exact[1];
    EXPECT_DOUBLE_EQ(job.work, cls.work);
  }
}

TEST(Arrivals, FleetCatalogSpansTableOne) {
  const auto catalog = fleet_catalog();
  ASSERT_EQ(catalog.size(), 9u);
  double min_delta = catalog.front().checkpoint_cost;
  double max_delta = min_delta;
  for (const JobClass& cls : catalog) {
    EXPECT_GT(cls.work, 0.0) << cls.name;
    EXPECT_GT(cls.weight, 0.0) << cls.name;
    min_delta = std::min(min_delta, cls.checkpoint_cost);
    max_delta = std::max(max_delta, cls.checkpoint_cost);
  }
  EXPECT_DOUBLE_EQ(min_delta, 1.5);     // cesm
  EXPECT_DOUBLE_EQ(max_delta, 2700.0);  // plasma

  // The catalog generates cleanly at fleet scale.
  Rng rng(9);
  const auto jobs = generate_arrivals(
      catalog, config_for(ArrivalRegime::kPoisson), 1000, rng);
  EXPECT_EQ(jobs.size(), 1000u);
}

TEST(Arrivals, RejectsBadInput) {
  Rng rng(1);
  const ArrivalConfig ok = config_for(ArrivalRegime::kPoisson);
  EXPECT_THROW(generate_arrivals({}, ok, 10, rng), InvalidArgument);

  ArrivalConfig zero_gap = ok;
  zero_gap.mean_interarrival = 0.0;
  EXPECT_THROW(generate_arrivals(two_class_catalog(), zero_gap, 10, rng),
               InvalidArgument);

  ArrivalConfig bad_phase = config_for(ArrivalRegime::kBursty);
  bad_phase.mean_on = 0.0;
  EXPECT_THROW(generate_arrivals(two_class_catalog(), bad_phase, 10, rng),
               InvalidArgument);

  auto zero_weight = two_class_catalog();
  zero_weight[0].weight = 0.0;
  EXPECT_THROW(generate_arrivals(zero_weight, ok, 10, rng), InvalidArgument);

  auto bad_jitter = two_class_catalog();
  bad_jitter[0].work_jitter = 1.0;
  EXPECT_THROW(generate_arrivals(bad_jitter, ok, 10, rng), InvalidArgument);

  auto zero_work = two_class_catalog();
  zero_work[0].work = 0.0;
  EXPECT_THROW(generate_arrivals(zero_work, ok, 10, rng), InvalidArgument);
}

}  // namespace
}  // namespace shiraz::sched
