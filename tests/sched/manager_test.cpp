#include "sched/manager.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "reliability/exponential.h"
#include "reliability/weibull.h"

namespace shiraz::sched {
namespace {

ManagerConfig exa_config() {
  ManagerConfig cfg;
  cfg.horizon = hours(5000.0);
  cfg.nominal_mtbf = hours(5.0);
  return cfg;
}

reliability::Weibull exa_failures() {
  return reliability::Weibull::from_mtbf(0.6, hours(5.0));
}

/// A calm machine: failures effectively never happen.
reliability::Exponential calm() { return reliability::Exponential(hours(1e9)); }

std::vector<BatchJobSpec> mixed_pair(Seconds work = hours(100.0)) {
  return {{"light", work, 18.0, 0.0}, {"heavy", work, 1800.0, 0.0}};
}

TEST(WorkloadManager, FailureFreeJobsCompleteWithExactWork) {
  const WorkloadManager mgr(calm(), exa_config());
  Rng rng(1);
  const CampaignStats stats =
      mgr.run(mixed_pair(hours(50.0)), Policy::kBaselineAlternate, rng);
  EXPECT_EQ(stats.completed_count(), 2u);
  for (const auto& job : stats.jobs) {
    EXPECT_NEAR(job.useful, hours(50.0), 1e-6) << job.name;
    EXPECT_DOUBLE_EQ(job.lost, 0.0) << job.name;
    EXPECT_TRUE(job.completed());
  }
  // With no failures the baseline never switches: the first job runs start to
  // finish, then the second.
  EXPECT_LT(stats.jobs[0].completion_time, stats.jobs[1].completion_time);
}

TEST(WorkloadManager, MakespanAccountsForCheckpointOverhead) {
  const WorkloadManager mgr(calm(), exa_config());
  Rng rng(2);
  const CampaignStats stats =
      mgr.run(mixed_pair(hours(50.0)), Policy::kBaselineAlternate, rng);
  EXPECT_GT(stats.makespan, hours(100.0));  // work + checkpoints
  EXPECT_NEAR(stats.makespan,
              hours(100.0) + stats.total_io(), 1.0);
}

TEST(WorkloadManager, ArrivalsAreRespected) {
  const WorkloadManager mgr(calm(), exa_config());
  std::vector<BatchJobSpec> jobs{{"early", hours(10.0), 60.0, 0.0},
                                 {"late", hours(10.0), 60.0, hours(500.0)}};
  Rng rng(3);
  const CampaignStats stats = mgr.run(jobs, Policy::kBaselineAlternate, rng);
  EXPECT_GE(stats.job("late").start_time, hours(500.0));
  EXPECT_GT(stats.idle, hours(400.0));  // machine idles between the jobs
}

TEST(WorkloadManager, FailuresCauseRollbacksAndLostWork) {
  const WorkloadManager mgr(exa_failures(), exa_config());
  Rng rng(4);
  const CampaignStats stats =
      mgr.run(mixed_pair(hours(200.0)), Policy::kBaselineAlternate, rng);
  EXPECT_GT(stats.failures, 0u);
  EXPECT_GT(stats.total_lost(), 0.0);
  // Completed jobs must still account exactly their required work as useful.
  for (const auto& job : stats.jobs) {
    if (job.completed()) EXPECT_NEAR(job.useful, hours(200.0), 1e-6);
  }
}

TEST(WorkloadManager, ShirazPairingBeatsBaselineThroughput) {
  // The paper's core claim carried into the batch setting: for a
  // heavy/light job mix, Shiraz pairing completes the same work sooner.
  ManagerConfig cfg = exa_config();
  cfg.horizon = hours(20'000.0);
  const WorkloadManager mgr(exa_failures(), cfg);
  std::vector<BatchJobSpec> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back({"light" + std::to_string(i), hours(400.0), 18.0, 0.0});
    jobs.push_back({"heavy" + std::to_string(i), hours(400.0), 1800.0, 0.0});
  }
  const CampaignStats base =
      mgr.run_many(jobs, Policy::kBaselineAlternate, 10, 2024);
  const CampaignStats shiraz = mgr.run_many(jobs, Policy::kShirazPairing, 10, 2024);
  EXPECT_LT(shiraz.total_lost(), base.total_lost());
  EXPECT_LE(shiraz.makespan, base.makespan * 1.01);
}

TEST(WorkloadManager, ShirazPlusStretchCutsIo) {
  ManagerConfig plain = exa_config();
  ManagerConfig plus = exa_config();
  plus.hw_stretch = 3;
  const WorkloadManager mgr_plain(exa_failures(), plain);
  const WorkloadManager mgr_plus(exa_failures(), plus);
  const auto jobs = mixed_pair(hours(500.0));
  const CampaignStats a = mgr_plain.run_many(jobs, Policy::kShirazPairing, 8, 7);
  const CampaignStats b = mgr_plus.run_many(jobs, Policy::kShirazPairing, 8, 7);
  EXPECT_LT(b.job("heavy").io, a.job("heavy").io);
}

TEST(WorkloadManager, HorizonCutsUnfinishedJobs) {
  ManagerConfig cfg = exa_config();
  cfg.horizon = hours(10.0);
  const WorkloadManager mgr(calm(), cfg);
  Rng rng(6);
  const CampaignStats stats =
      mgr.run(mixed_pair(hours(100.0)), Policy::kBaselineAlternate, rng);
  EXPECT_EQ(stats.completed_count(), 0u);
  EXPECT_DOUBLE_EQ(stats.makespan, hours(10.0));
}

TEST(WorkloadManager, SingleJobRunsAlone) {
  const WorkloadManager mgr(exa_failures(), exa_config());
  Rng rng(7);
  const CampaignStats stats = mgr.run({{"solo", hours(30.0), 300.0, 0.0}},
                                      Policy::kShirazPairing, rng);
  EXPECT_EQ(stats.completed_count(), 1u);
  EXPECT_NEAR(stats.job("solo").useful, hours(30.0), 1e-6);
}

TEST(WorkloadManager, QueueDrainsMoreThanTwoJobs) {
  const WorkloadManager mgr(calm(), exa_config());
  std::vector<BatchJobSpec> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back({"job" + std::to_string(i), hours(20.0), 120.0, 0.0});
  }
  Rng rng(8);
  const CampaignStats stats = mgr.run(jobs, Policy::kShirazPairing, rng);
  EXPECT_EQ(stats.completed_count(), 6u);
}

TEST(WorkloadManager, DeterministicPerSeed) {
  const WorkloadManager mgr(exa_failures(), exa_config());
  Rng r1(9);
  Rng r2(9);
  const CampaignStats a = mgr.run(mixed_pair(), Policy::kShirazPairing, r1);
  const CampaignStats b = mgr.run(mixed_pair(), Policy::kShirazPairing, r2);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_DOUBLE_EQ(a.total_lost(), b.total_lost());
}

TEST(WorkloadManager, RejectsBadInput) {
  const WorkloadManager mgr(calm(), exa_config());
  Rng rng(10);
  EXPECT_THROW(mgr.run({}, Policy::kBaselineAlternate, rng), InvalidArgument);
  EXPECT_THROW(mgr.run({{"bad", 0.0, 60.0, 0.0}}, Policy::kBaselineAlternate, rng),
               InvalidArgument);
  EXPECT_THROW(mgr.run({{"bad", hours(1.0), 0.0, 0.0}}, Policy::kBaselineAlternate,
                       rng),
               InvalidArgument);
  ManagerConfig bad;
  bad.horizon = 0.0;
  EXPECT_THROW(WorkloadManager(calm(), bad), InvalidArgument);
}

TEST(CampaignStats, TurnaroundHelpers) {
  CampaignStats stats;
  BatchJobRecord a;
  a.name = "a";
  a.submit_time = 0.0;
  a.completion_time = 100.0;
  BatchJobRecord b;
  b.name = "b";
  b.submit_time = 50.0;
  b.completion_time = 250.0;
  BatchJobRecord c;  // never completed
  c.name = "c";
  stats.jobs = {a, b, c};
  EXPECT_EQ(stats.completed_count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean_turnaround(), 150.0);
  EXPECT_DOUBLE_EQ(stats.max_turnaround(), 200.0);
  EXPECT_THROW(stats.job("missing"), InvalidArgument);
}

}  // namespace
}  // namespace shiraz::sched
