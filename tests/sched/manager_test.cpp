#include "sched/manager.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "checkpoint/oci.h"
#include "common/error.h"
#include "obs/metrics.h"
#include "reliability/exponential.h"
#include "reliability/weibull.h"

namespace shiraz::sched {
namespace {

ManagerConfig exa_config() {
  ManagerConfig cfg;
  cfg.horizon = hours(5000.0);
  cfg.nominal_mtbf = hours(5.0);
  return cfg;
}

reliability::Weibull exa_failures() {
  return reliability::Weibull::from_mtbf(0.6, hours(5.0));
}

/// A calm machine: failures effectively never happen.
reliability::Exponential calm() { return reliability::Exponential(hours(1e9)); }

/// Deterministic failure process replaying a fixed gap list, then going
/// quiet — lets edge-case tests put a failure at an exact instant.
class ScriptedGaps final : public reliability::Distribution {
 public:
  explicit ScriptedGaps(std::vector<Seconds> gaps) : gaps_(std::move(gaps)) {}

  Seconds sample(Rng& /*rng*/) const override {
    if (next_ < gaps_.size()) return gaps_[next_++];
    return hours(1e9);
  }
  double cdf(Seconds /*t*/) const override { return 0.0; }
  double pdf(Seconds /*t*/) const override { return 0.0; }
  Seconds mean() const override { return hours(1e9); }
  Seconds quantile(double /*u*/) const override { return hours(1e9); }
  std::string name() const override { return "ScriptedGaps"; }
  std::unique_ptr<reliability::Distribution> clone() const override {
    auto copy = std::make_unique<ScriptedGaps>(gaps_);
    copy->next_ = next_;
    return copy;
  }

 private:
  std::vector<Seconds> gaps_;
  mutable std::size_t next_ = 0;
};

Seconds young_interval(Seconds delta) {
  return checkpoint::optimal_interval(hours(5.0), delta,
                                      checkpoint::OciFormula::kYoung);
}

std::vector<BatchJobSpec> mixed_pair(Seconds work = hours(100.0)) {
  return {{"light", work, 18.0, 0.0}, {"heavy", work, 1800.0, 0.0}};
}

TEST(WorkloadManager, FailureFreeJobsCompleteWithExactWork) {
  const WorkloadManager mgr(calm(), exa_config());
  Rng rng(1);
  const CampaignStats stats =
      mgr.run(mixed_pair(hours(50.0)), Policy::kBaselineAlternate, rng);
  EXPECT_EQ(stats.completed_count(), 2u);
  for (const auto& job : stats.jobs) {
    EXPECT_NEAR(job.useful, hours(50.0), 1e-6) << job.name;
    EXPECT_DOUBLE_EQ(job.lost, 0.0) << job.name;
    EXPECT_TRUE(job.completed());
  }
  // With no failures the baseline never switches: the first job runs start to
  // finish, then the second.
  EXPECT_LT(stats.jobs[0].completion_time, stats.jobs[1].completion_time);
}

TEST(WorkloadManager, MakespanAccountsForCheckpointOverhead) {
  const WorkloadManager mgr(calm(), exa_config());
  Rng rng(2);
  const CampaignStats stats =
      mgr.run(mixed_pair(hours(50.0)), Policy::kBaselineAlternate, rng);
  EXPECT_GT(stats.makespan, hours(100.0));  // work + checkpoints
  EXPECT_NEAR(stats.makespan,
              hours(100.0) + stats.total_io(), 1.0);
}

TEST(WorkloadManager, ArrivalsAreRespected) {
  const WorkloadManager mgr(calm(), exa_config());
  std::vector<BatchJobSpec> jobs{{"early", hours(10.0), 60.0, 0.0},
                                 {"late", hours(10.0), 60.0, hours(500.0)}};
  Rng rng(3);
  const CampaignStats stats = mgr.run(jobs, Policy::kBaselineAlternate, rng);
  EXPECT_GE(stats.job("late").start_time, hours(500.0));
  EXPECT_GT(stats.idle, hours(400.0));  // machine idles between the jobs
}

TEST(WorkloadManager, MetricsCountJobsAndSolveRouteWithoutChangingResults) {
  const WorkloadManager plain(exa_failures(), exa_config());
  Rng rng_a(7);
  const CampaignStats want =
      plain.run(mixed_pair(hours(200.0)), Policy::kShirazPairing, rng_a);

  obs::MetricsRegistry registry;
  ManagerConfig armed = exa_config();
  armed.metrics = &registry;
  const WorkloadManager counted(exa_failures(), armed);
  Rng rng_b(7);
  const CampaignStats got =
      counted.run(mixed_pair(hours(200.0)), Policy::kShirazPairing, rng_b);

  // Pure observation: the campaign's numbers are untouched by the registry.
  EXPECT_EQ(want.makespan, got.makespan);
  EXPECT_EQ(want.total_useful(), got.total_useful());
  EXPECT_EQ(want.total_io(), got.total_io());
  EXPECT_EQ(want.failures, got.failures);

  EXPECT_EQ(registry.counter("shiraz_sched_jobs_submitted_total").value(), 2u);
  EXPECT_EQ(registry.counter("shiraz_sched_jobs_completed_total").value(),
            got.completed_count());
  // One pair signature, default config: the analytical SolverCache route,
  // solved exactly once thanks to the memo.
  EXPECT_EQ(registry.counter("shiraz_sched_solve_analytical_total").value(), 1u);
  EXPECT_EQ(registry.counter("shiraz_sched_solve_fixed_total").value(), 0u);
  EXPECT_EQ(registry.counter("shiraz_sched_solve_sim_total").value(), 0u);
}

TEST(WorkloadManager, FailuresCauseRollbacksAndLostWork) {
  const WorkloadManager mgr(exa_failures(), exa_config());
  Rng rng(4);
  const CampaignStats stats =
      mgr.run(mixed_pair(hours(200.0)), Policy::kBaselineAlternate, rng);
  EXPECT_GT(stats.failures, 0.0);
  EXPECT_GT(stats.total_lost(), 0.0);
  // Completed jobs must still account exactly their required work as useful.
  for (const auto& job : stats.jobs) {
    if (job.completed()) EXPECT_NEAR(job.useful, hours(200.0), 1e-6);
  }
}

TEST(WorkloadManager, ShirazPairingBeatsBaselineThroughput) {
  // The paper's core claim carried into the batch setting: for a
  // heavy/light job mix, Shiraz pairing completes the same work sooner.
  ManagerConfig cfg = exa_config();
  cfg.horizon = hours(20'000.0);
  const WorkloadManager mgr(exa_failures(), cfg);
  std::vector<BatchJobSpec> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back({"light" + std::to_string(i), hours(400.0), 18.0, 0.0});
    jobs.push_back({"heavy" + std::to_string(i), hours(400.0), 1800.0, 0.0});
  }
  const CampaignStats base =
      mgr.run_many(jobs, Policy::kBaselineAlternate, 10, 2024);
  const CampaignStats shiraz = mgr.run_many(jobs, Policy::kShirazPairing, 10, 2024);
  EXPECT_LT(shiraz.total_lost(), base.total_lost());
  EXPECT_LE(shiraz.makespan, base.makespan * 1.01);
}

TEST(WorkloadManager, ShirazPlusStretchCutsIo) {
  ManagerConfig plain = exa_config();
  ManagerConfig plus = exa_config();
  plus.hw_stretch = 3;
  const WorkloadManager mgr_plain(exa_failures(), plain);
  const WorkloadManager mgr_plus(exa_failures(), plus);
  const auto jobs = mixed_pair(hours(500.0));
  const CampaignStats a = mgr_plain.run_many(jobs, Policy::kShirazPairing, 8, 7);
  const CampaignStats b = mgr_plus.run_many(jobs, Policy::kShirazPairing, 8, 7);
  EXPECT_LT(b.job("heavy").io, a.job("heavy").io);
}

TEST(WorkloadManager, HorizonCutsUnfinishedJobs) {
  ManagerConfig cfg = exa_config();
  cfg.horizon = hours(10.0);
  const WorkloadManager mgr(calm(), cfg);
  Rng rng(6);
  const CampaignStats stats =
      mgr.run(mixed_pair(hours(100.0)), Policy::kBaselineAlternate, rng);
  EXPECT_EQ(stats.completed_count(), 0u);
  EXPECT_DOUBLE_EQ(stats.makespan, hours(10.0));
}

TEST(WorkloadManager, SingleJobRunsAlone) {
  const WorkloadManager mgr(exa_failures(), exa_config());
  Rng rng(7);
  const CampaignStats stats = mgr.run({{"solo", hours(30.0), 300.0, 0.0}},
                                      Policy::kShirazPairing, rng);
  EXPECT_EQ(stats.completed_count(), 1u);
  EXPECT_NEAR(stats.job("solo").useful, hours(30.0), 1e-6);
}

TEST(WorkloadManager, QueueDrainsMoreThanTwoJobs) {
  const WorkloadManager mgr(calm(), exa_config());
  std::vector<BatchJobSpec> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back({"job" + std::to_string(i), hours(20.0), 120.0, 0.0});
  }
  Rng rng(8);
  const CampaignStats stats = mgr.run(jobs, Policy::kShirazPairing, rng);
  EXPECT_EQ(stats.completed_count(), 6u);
}

TEST(WorkloadManager, DeterministicPerSeed) {
  const WorkloadManager mgr(exa_failures(), exa_config());
  Rng r1(9);
  Rng r2(9);
  const CampaignStats a = mgr.run(mixed_pair(), Policy::kShirazPairing, r1);
  const CampaignStats b = mgr.run(mixed_pair(), Policy::kShirazPairing, r2);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_DOUBLE_EQ(a.total_lost(), b.total_lost());
}

TEST(WorkloadManager, RejectsBadInput) {
  const WorkloadManager mgr(calm(), exa_config());
  Rng rng(10);
  EXPECT_THROW(mgr.run({}, Policy::kBaselineAlternate, rng), InvalidArgument);
  EXPECT_THROW(mgr.run({{"bad", 0.0, 60.0, 0.0}}, Policy::kBaselineAlternate, rng),
               InvalidArgument);
  EXPECT_THROW(mgr.run({{"bad", hours(1.0), 0.0, 0.0}}, Policy::kBaselineAlternate,
                       rng),
               InvalidArgument);
  ManagerConfig bad;
  bad.horizon = 0.0;
  EXPECT_THROW(WorkloadManager(calm(), bad), InvalidArgument);
}

TEST(CampaignStats, TurnaroundHelpers) {
  CampaignStats stats;
  BatchJobRecord a;
  a.name = "a";
  a.submit_time = 0.0;
  a.completion_time = 100.0;
  BatchJobRecord b;
  b.name = "b";
  b.submit_time = 50.0;
  b.completion_time = 250.0;
  BatchJobRecord c;  // never completed
  c.name = "c";
  stats.jobs = {a, b, c};
  EXPECT_EQ(stats.completed_count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean_turnaround(), 150.0);
  EXPECT_DOUBLE_EQ(stats.max_turnaround(), 200.0);
  EXPECT_THROW(stats.job("missing"), InvalidArgument);
}

// --- run_many accounting regressions -------------------------------------
// run_many used to keep repetition 0's start_time forever, truncate count
// means to integers, and average completion times over all reps (dropping
// unfinished reps' absence into the mean). These pin the fixed semantics
// against manually averaged per-rep runs (rep r always draws
// Rng(seed).fork(r), the run_many contract).

TEST(WorkloadManager, RunManyAveragesStartTimesAcrossReps) {
  const WorkloadManager mgr(exa_failures(), exa_config());
  const std::vector<BatchJobSpec> jobs{{"a", hours(100.0), 60.0, 0.0},
                                       {"b", hours(100.0), 900.0, 0.0},
                                       {"late", hours(100.0), 300.0, 0.0}};
  Rng r0 = Rng(2024).fork(0);
  Rng r1 = Rng(2024).fork(1);
  const CampaignStats rep0 = mgr.run(jobs, Policy::kBaselineAlternate, r0);
  const CampaignStats rep1 = mgr.run(jobs, Policy::kBaselineAlternate, r1);
  const CampaignStats mean =
      mgr.run_many(jobs, Policy::kBaselineAlternate, 2, 2024);
  // "late" starts when the first slot frees, which depends on the failure
  // stream — so the two reps must disagree and the mean must average them.
  ASSERT_NE(rep0.job("late").start_time, rep1.job("late").start_time);
  EXPECT_DOUBLE_EQ(
      mean.job("late").start_time,
      0.5 * (rep0.job("late").start_time + rep1.job("late").start_time));
  EXPECT_EQ(mean.job("late").started_reps, 2u);
  EXPECT_EQ(mean.reps, 2u);
}

TEST(WorkloadManager, RunManyReportsFractionalCountMeans) {
  const WorkloadManager mgr(exa_failures(), exa_config());
  const auto jobs = mixed_pair(hours(150.0));
  Rng r0 = Rng(7).fork(0);
  Rng r1 = Rng(7).fork(1);
  const CampaignStats rep0 = mgr.run(jobs, Policy::kShirazPairing, r0);
  const CampaignStats rep1 = mgr.run(jobs, Policy::kShirazPairing, r1);
  const CampaignStats mean = mgr.run_many(jobs, Policy::kShirazPairing, 2, 7);
  EXPECT_DOUBLE_EQ(mean.failures, 0.5 * (rep0.failures + rep1.failures));
  EXPECT_DOUBLE_EQ(
      mean.job("light").checkpoints,
      0.5 * (rep0.job("light").checkpoints + rep1.job("light").checkpoints));
  EXPECT_DOUBLE_EQ(mean.job("heavy").failures_hit,
                   0.5 * (rep0.job("heavy").failures_hit +
                          rep1.job("heavy").failures_hit));
  // The point of the fix: an odd failure-count sum yields a .5 mean instead
  // of silently truncating to an integer (seed 7 gives an odd sum).
  ASSERT_NE(rep0.failures, rep1.failures);
  EXPECT_NE(mean.failures, std::floor(mean.failures));
}

TEST(WorkloadManager, CompletionTimeAveragesOnlyCompletedReps) {
  ManagerConfig cfg = exa_config();
  cfg.horizon = hours(36.0);
  const WorkloadManager mgr(exa_failures(), cfg);
  const std::vector<BatchJobSpec> jobs{{"solo", hours(30.0), 300.0, 0.0}};
  const std::size_t reps = 8;
  const std::uint64_t seed = 99;
  double sum = 0.0;
  std::size_t done = 0;
  for (std::size_t r = 0; r < reps; ++r) {
    Rng rng = Rng(seed).fork(r);
    const CampaignStats one = mgr.run(jobs, Policy::kBaselineAlternate, rng);
    if (one.job("solo").completed()) {
      sum += one.job("solo").completion_time;
      ++done;
    }
  }
  // The seed is chosen so the 36 h horizon splits the reps: some finish the
  // 30 h job, some are cut off — the dropout case the old mean biased.
  ASSERT_GT(done, 0u);
  ASSERT_LT(done, reps);
  const CampaignStats mean =
      mgr.run_many(jobs, Policy::kBaselineAlternate, reps, seed);
  EXPECT_EQ(mean.job("solo").completed_reps, done);
  EXPECT_DOUBLE_EQ(mean.job("solo").completion_time,
                   sum / static_cast<double>(done));
  EXPECT_DOUBLE_EQ(mean.completion_rate(),
                   static_cast<double>(done) / static_cast<double>(reps));
}

// --- restart cost ---------------------------------------------------------

TEST(WorkloadManager, RestartCostChargedAsLostTime) {
  const Seconds delta = 600.0;
  const std::vector<BatchJobSpec> jobs{{"solo", hours(10.0), delta, 0.0}};
  const ScriptedGaps gaps({2000.0});  // one mid-segment failure at t = 2000
  ManagerConfig free_cfg = exa_config();
  ManagerConfig paid_cfg = exa_config();
  paid_cfg.restart_cost = 600.0;
  Rng r1(1);
  Rng r2(1);
  const CampaignStats free_run =
      WorkloadManager(gaps, free_cfg).run(jobs, Policy::kBaselineAlternate, r1);
  const CampaignStats paid_run =
      WorkloadManager(gaps, paid_cfg).run(jobs, Policy::kBaselineAlternate, r2);
  // The failure destroys the 2000 s in flight; the paid config adds the
  // 600 s restart downtime on top, charged to the job that rolls back.
  EXPECT_DOUBLE_EQ(free_run.job("solo").lost, 2000.0);
  EXPECT_DOUBLE_EQ(paid_run.job("solo").lost, 2600.0);
  EXPECT_NEAR(paid_run.job("solo").completion_time,
              free_run.job("solo").completion_time + 600.0, 1e-6);
  EXPECT_DOUBLE_EQ(paid_run.job("solo").useful, free_run.job("solo").useful);
}

TEST(WorkloadManager, DefaultRestartCostKeepsOutputsBitIdentical) {
  ManagerConfig explicit_zero = exa_config();
  explicit_zero.restart_cost = 0.0;
  const WorkloadManager a(exa_failures(), exa_config());
  const WorkloadManager b(exa_failures(), explicit_zero);
  const CampaignStats sa = a.run_many(mixed_pair(), Policy::kShirazPairing, 4, 42);
  const CampaignStats sb = b.run_many(mixed_pair(), Policy::kShirazPairing, 4, 42);
  EXPECT_DOUBLE_EQ(sa.makespan, sb.makespan);
  EXPECT_DOUBLE_EQ(sa.total_lost(), sb.total_lost());
  EXPECT_DOUBLE_EQ(sa.total_io(), sb.total_io());
}

// --- event-tie and switch-window edge cases -------------------------------

TEST(WorkloadManager, FailureAtSegmentBoundaryDestroysNothing) {
  const Seconds delta = 600.0;
  const Seconds interval = young_interval(delta);
  const std::vector<BatchJobSpec> jobs{{"solo", 2.0 * interval, delta, 0.0}};
  // The failure lands exactly when the first checkpoint commits: the
  // checkpoint wins the tie, so nothing in flight is destroyed.
  const ScriptedGaps gaps({interval + delta});
  const WorkloadManager mgr(gaps, exa_config());
  Rng rng(1);
  const CampaignStats stats = mgr.run(jobs, Policy::kBaselineAlternate, rng);
  const BatchJobRecord& job = stats.job("solo");
  EXPECT_DOUBLE_EQ(job.lost, 0.0);
  EXPECT_DOUBLE_EQ(job.checkpoints, 1.0);
  EXPECT_DOUBLE_EQ(job.useful, 2.0 * interval);
  ASSERT_TRUE(job.completed());
  EXPECT_NEAR(job.completion_time, 2.0 * interval + delta, 1e-6);
  EXPECT_DOUBLE_EQ(stats.failures, 1.0);
  EXPECT_DOUBLE_EQ(job.failures_hit, 1.0);
}

TEST(WorkloadManager, ArrivalTiedWithFailureStartsImmediately) {
  const Seconds t_tie = 5000.0;
  const std::vector<BatchJobSpec> jobs{{"first", hours(8.0), 300.0, 0.0},
                                       {"tied", hours(8.0), 300.0, t_tie}};
  const ScriptedGaps gaps({t_tie});  // failure exactly at the arrival instant
  const WorkloadManager mgr(gaps, exa_config());
  Rng rng(1);
  const CampaignStats stats = mgr.run(jobs, Policy::kBaselineAlternate, rng);
  EXPECT_DOUBLE_EQ(stats.job("tied").start_time, t_tie);
  EXPECT_DOUBLE_EQ(stats.failures, 1.0);
  EXPECT_EQ(stats.completed_count(), 2u);
  EXPECT_DOUBLE_EQ(stats.idle, 0.0);
}

TEST(WorkloadManager, PairActivationResetsSwitchWindow) {
  const Seconds d_lw = 100.0;
  const Seconds d_hw = 2500.0;
  const Seconds seg = young_interval(d_lw) + d_lw;
  // The light job runs alone for three segments; the heavy job arrives mid
  // third segment and activates at that segment's boundary, 3 * seg.
  const std::vector<BatchJobSpec> jobs{
      {"light", 10.0 * young_interval(d_lw), d_lw, 0.0},
      {"heavy", hours(1.0), d_hw, 2.5 * seg}};
  ManagerConfig cfg = exa_config();
  cfg.fixed_pair_k = 3;
  const WorkloadManager mgr(calm(), cfg);
  Rng rng(1);
  const CampaignStats stats = mgr.run(jobs, Policy::kShirazPairing, rng);
  // The k-window opens at activation: the light job takes k = 3 *more*
  // checkpoints after 3 * seg before the heavy job first computes — the
  // three it took before the pair existed don't count against the window.
  EXPECT_NEAR(stats.job("heavy").start_time, 3.0 * seg, 1e-6);
  EXPECT_NEAR(stats.job("heavy").completion_time, 6.0 * seg + hours(1.0), 1e-6);
  EXPECT_DOUBLE_EQ(stats.job("heavy").lost, 0.0);
  EXPECT_EQ(stats.completed_count(), 2u);
}

TEST(WorkloadManager, ContrastSlotFillPairsExtremes) {
  // At t = 0 the occupant is "light" (head of queue); FCFS gives the free
  // slot to the older "mid", contrast to the farther-apart "heavy".
  const std::vector<BatchJobSpec> jobs{{"light", hours(20.0), 10.0, 0.0},
                                       {"mid", hours(20.0), 200.0, 0.0},
                                       {"heavy", hours(20.0), 3000.0, 0.0}};
  ManagerConfig contrast = exa_config();
  contrast.slot_fill = SlotFill::kContrast;
  Rng r1(5);
  Rng r2(5);
  const CampaignStats f = WorkloadManager(calm(), exa_config())
                              .run(jobs, Policy::kShirazPairing, r1);
  const CampaignStats c =
      WorkloadManager(calm(), contrast).run(jobs, Policy::kShirazPairing, r2);
  EXPECT_DOUBLE_EQ(f.job("mid").start_time, 0.0);
  EXPECT_GT(f.job("heavy").start_time, 0.0);
  EXPECT_DOUBLE_EQ(c.job("heavy").start_time, 0.0);
  EXPECT_GT(c.job("mid").start_time, 0.0);
  EXPECT_EQ(f.completed_count(), 3u);
  EXPECT_EQ(c.completed_count(), 3u);
}

// --- accounting invariant and worker-count invariance ----------------------

struct InvariantCase {
  Policy policy;
  std::size_t workers;
};

std::string invariant_name(const ::testing::TestParamInfo<InvariantCase>& info) {
  return std::string(info.param.policy == Policy::kBaselineAlternate
                         ? "baseline"
                         : "shiraz") +
         "_workers" + std::to_string(info.param.workers);
}

class AccountingInvariant : public ::testing::TestWithParam<InvariantCase> {
 protected:
  static std::vector<BatchJobSpec> jobs() {
    // Staggered arrivals with a long quiet stretch, so idle time shows up in
    // the books alongside useful/io/lost.
    return {{"a", hours(50.0), 60.0, 0.0},
            {"b", hours(50.0), 1200.0, hours(2.0)},
            {"c", hours(50.0), 300.0, hours(400.0)}};
  }
};

TEST_P(AccountingInvariant, TimeIsConservedAcrossReps) {
  const WorkloadManager mgr(exa_failures(), exa_config());
  const CampaignRunOptions opts{GetParam().workers, nullptr};
  const CampaignStats mean =
      mgr.run_many(jobs(), GetParam().policy, 5, 23, opts);
  const Seconds booked =
      mean.total_useful() + mean.total_io() + mean.total_lost() + mean.idle;
  EXPECT_NEAR(booked, mean.elapsed, 1e-6 * std::max(1.0, mean.elapsed));
}

TEST_P(AccountingInvariant, ElapsedIsMakespanOrHorizon) {
  // Drained queue: the campaign ends at the last completion.
  const WorkloadManager mgr(exa_failures(), exa_config());
  Rng r1(29);
  const CampaignStats drained = mgr.run(jobs(), GetParam().policy, r1);
  EXPECT_EQ(drained.completed_count(), jobs().size());
  EXPECT_DOUBLE_EQ(drained.elapsed, drained.makespan);
  EXPECT_LT(drained.elapsed, drained.horizon);

  // Horizon cut: the campaign (and the makespan of unfinished jobs) ends at
  // the horizon.
  ManagerConfig cut_cfg = exa_config();
  cut_cfg.horizon = hours(60.0);
  const WorkloadManager cut_mgr(exa_failures(), cut_cfg);
  Rng r2(29);
  const CampaignStats cut = cut_mgr.run(jobs(), GetParam().policy, r2);
  EXPECT_LT(cut.completed_count(), jobs().size());
  EXPECT_DOUBLE_EQ(cut.elapsed, hours(60.0));
  EXPECT_DOUBLE_EQ(cut.makespan, hours(60.0));
  const Seconds booked =
      cut.total_useful() + cut.total_io() + cut.total_lost() + cut.idle;
  EXPECT_NEAR(booked, cut.elapsed, 1e-6 * cut.elapsed);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByWorkers, AccountingInvariant,
    ::testing::Values(InvariantCase{Policy::kBaselineAlternate, 1},
                      InvariantCase{Policy::kBaselineAlternate, 4},
                      InvariantCase{Policy::kShirazPairing, 1},
                      InvariantCase{Policy::kShirazPairing, 4}),
    invariant_name);

TEST(WorkloadManager, RunManyBitIdenticalAcrossWorkerCounts) {
  const WorkloadManager mgr(exa_failures(), exa_config());
  std::vector<BatchJobSpec> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back({"job" + std::to_string(i), hours(60.0 + 10.0 * i),
                    30.0 * (i + 1), hours(5.0) * i});
  }
  const CampaignRunOptions serial{1, nullptr};
  const CampaignRunOptions wide{4, nullptr};
  const CampaignStats a = mgr.run_many(jobs, Policy::kShirazPairing, 6, 31, serial);
  const CampaignStats b = mgr.run_many(jobs, Policy::kShirazPairing, 6, 31, wide);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
  EXPECT_DOUBLE_EQ(a.failures, b.failures);
  EXPECT_DOUBLE_EQ(a.idle, b.idle);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_DOUBLE_EQ(a.jobs[j].useful, b.jobs[j].useful);
    EXPECT_DOUBLE_EQ(a.jobs[j].io, b.jobs[j].io);
    EXPECT_DOUBLE_EQ(a.jobs[j].lost, b.jobs[j].lost);
    EXPECT_DOUBLE_EQ(a.jobs[j].checkpoints, b.jobs[j].checkpoints);
    EXPECT_DOUBLE_EQ(a.jobs[j].start_time, b.jobs[j].start_time);
    EXPECT_DOUBLE_EQ(a.jobs[j].completion_time, b.jobs[j].completion_time);
    EXPECT_EQ(a.jobs[j].completed_reps, b.jobs[j].completed_reps);
  }

  const CampaignDistribution da =
      mgr.run_distribution(jobs, Policy::kShirazPairing, 6, 31, serial);
  const CampaignDistribution db =
      mgr.run_distribution(jobs, Policy::kShirazPairing, 6, 31, wide);
  EXPECT_DOUBLE_EQ(da.completion_rate, db.completion_rate);
  EXPECT_DOUBLE_EQ(da.turnaround.p50, db.turnaround.p50);
  EXPECT_DOUBLE_EQ(da.turnaround.p99, db.turnaround.p99);
  EXPECT_DOUBLE_EQ(da.turnaround.max, db.turnaround.max);
  EXPECT_DOUBLE_EQ(da.slowdown.p95, db.slowdown.p95);
  EXPECT_DOUBLE_EQ(da.makespan.mean, db.makespan.mean);
}

TEST(WorkloadManager, RejectsBadConfigKnobs) {
  ManagerConfig negative_restart;
  negative_restart.restart_cost = -1.0;
  EXPECT_THROW(WorkloadManager(calm(), negative_restart), InvalidArgument);
  ManagerConfig negative_k;
  negative_k.fixed_pair_k = -1;
  EXPECT_THROW(WorkloadManager(calm(), negative_k), InvalidArgument);
  ManagerConfig zero_sim_max_k;
  zero_sim_max_k.sim_solve_max_k = 0;
  EXPECT_THROW(WorkloadManager(calm(), zero_sim_max_k), InvalidArgument);
}

TEST(WorkloadManager, SimSolveRunsPairsAndStaysWorkerInvariant) {
  // Sim-backed switch-point solves (flat replay kernel under the hood) must
  // produce a working pairing campaign whose outputs are bit-identical for
  // every worker count — the memoized solve is deterministic and draws from
  // its own seed, never from the campaign's failure stream.
  ManagerConfig cfg = exa_config();
  cfg.horizon = hours(2000.0);
  cfg.sim_solve_reps = 8;
  const WorkloadManager mgr(exa_failures(), cfg);
  const std::vector<BatchJobSpec> jobs = mixed_pair(hours(50.0));

  const CampaignStats serial =
      mgr.run_many(jobs, Policy::kShirazPairing, 4, 77, {.workers = 1});
  const CampaignStats wide =
      mgr.run_many(jobs, Policy::kShirazPairing, 4, 77, {.workers = 4});
  EXPECT_EQ(serial.total_useful(), wide.total_useful());
  EXPECT_EQ(serial.makespan, wide.makespan);
  EXPECT_EQ(serial.failures, wide.failures);
  for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
    EXPECT_EQ(serial.jobs[i].useful, wide.jobs[i].useful) << "job " << i;
    EXPECT_EQ(serial.jobs[i].checkpoints, wide.jobs[i].checkpoints);
  }
  EXPECT_GT(serial.total_useful(), 0.0);
  // The analytical cache was bypassed: no signature ever hit it.
  EXPECT_EQ(mgr.solver_cache()->stats().lookups(), 0u);
}

TEST(WorkloadManager, FixedPairKTakesPrecedenceOverSimSolve) {
  ManagerConfig cfg = exa_config();
  cfg.horizon = hours(2000.0);
  cfg.sim_solve_reps = 8;
  cfg.fixed_pair_k = 7;
  ManagerConfig fixed_only = cfg;
  fixed_only.sim_solve_reps = 0;
  const WorkloadManager with_sim(exa_failures(), cfg);
  const WorkloadManager without_sim(exa_failures(), fixed_only);
  const std::vector<BatchJobSpec> jobs = mixed_pair(hours(50.0));
  const CampaignStats a = with_sim.run_many(jobs, Policy::kShirazPairing, 3, 11);
  const CampaignStats b =
      without_sim.run_many(jobs, Policy::kShirazPairing, 3, 11);
  EXPECT_EQ(a.total_useful(), b.total_useful());
  EXPECT_EQ(a.makespan, b.makespan);
}

}  // namespace
}  // namespace shiraz::sched
