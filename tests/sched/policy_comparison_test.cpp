// Parameterized comparisons of the workload-manager policies across machine
// scales and job mixes — the batch-setting analogue of the paper's Fig 11
// sweep.
#include <gtest/gtest.h>

#include "reliability/weibull.h"
#include "sched/manager.h"

namespace shiraz::sched {
namespace {

struct MixCase {
  double mtbf_hours;
  double delta_factor;  // heavy delta = 1800 s, light = 1800 / factor
};

std::string mix_name(const ::testing::TestParamInfo<MixCase>& info) {
  return "mtbf" + std::to_string(static_cast<int>(info.param.mtbf_hours)) +
         "_factor" + std::to_string(static_cast<int>(info.param.delta_factor));
}

class PolicyComparison : public ::testing::TestWithParam<MixCase> {
 protected:
  WorkloadManager make_manager(unsigned stretch = 1) const {
    ManagerConfig cfg;
    cfg.horizon = hours(30'000.0);
    cfg.nominal_mtbf = hours(GetParam().mtbf_hours);
    cfg.hw_stretch = stretch;
    return WorkloadManager(
        reliability::Weibull::from_mtbf(0.6, hours(GetParam().mtbf_hours)), cfg);
  }

  std::vector<BatchJobSpec> jobs() const {
    std::vector<BatchJobSpec> out;
    for (int i = 0; i < 2; ++i) {
      out.push_back({"light" + std::to_string(i), hours(500.0),
                     1800.0 / GetParam().delta_factor, 0.0});
      out.push_back({"heavy" + std::to_string(i), hours(500.0), 1800.0, 0.0});
    }
    return out;
  }
};

TEST_P(PolicyComparison, BothPoliciesCompleteTheWorkload) {
  const WorkloadManager mgr = make_manager();
  const CampaignStats base = mgr.run_many(jobs(), Policy::kBaselineAlternate, 6, 11);
  const CampaignStats sz = mgr.run_many(jobs(), Policy::kShirazPairing, 6, 11);
  EXPECT_EQ(base.completed_count(), jobs().size());
  EXPECT_EQ(sz.completed_count(), jobs().size());
}

TEST_P(PolicyComparison, CompletedWorkIsConservedAcrossPolicies) {
  // Same jobs, same requirement: total useful work at completion must be
  // identical under any policy — only waste and timing differ.
  const WorkloadManager mgr = make_manager();
  const CampaignStats base = mgr.run_many(jobs(), Policy::kBaselineAlternate, 6, 13);
  const CampaignStats sz = mgr.run_many(jobs(), Policy::kShirazPairing, 6, 13);
  EXPECT_NEAR(base.total_useful(), sz.total_useful(), 1.0);
  EXPECT_NEAR(base.total_useful(), 4.0 * hours(500.0), 1.0);
}

TEST_P(PolicyComparison, ShirazDoesNotLoseMoreWork) {
  const WorkloadManager mgr = make_manager();
  const CampaignStats base = mgr.run_many(jobs(), Policy::kBaselineAlternate, 8, 17);
  const CampaignStats sz = mgr.run_many(jobs(), Policy::kShirazPairing, 8, 17);
  // Shiraz converts lost work into completed work; allow a whisker of noise.
  EXPECT_LT(sz.total_lost(), base.total_lost() * 1.05);
}

TEST_P(PolicyComparison, StretchReducesHeavyCheckpointCount) {
  const WorkloadManager plain = make_manager(1);
  const WorkloadManager stretched = make_manager(3);
  const CampaignStats a = plain.run_many(jobs(), Policy::kShirazPairing, 6, 19);
  const CampaignStats b = stretched.run_many(jobs(), Policy::kShirazPairing, 6, 19);
  double heavy_a = 0.0;
  double heavy_b = 0.0;
  for (const auto& j : a.jobs) {
    if (j.name.rfind("heavy", 0) == 0) heavy_a += j.checkpoints;
  }
  for (const auto& j : b.jobs) {
    if (j.name.rfind("heavy", 0) == 0) heavy_b += j.checkpoints;
  }
  EXPECT_LT(heavy_b, heavy_a);
}

INSTANTIATE_TEST_SUITE_P(Scales, PolicyComparison,
                         ::testing::Values(MixCase{5.0, 25.0}, MixCase{5.0, 100.0},
                                           MixCase{20.0, 25.0},
                                           MixCase{20.0, 100.0}),
                         mix_name);

}  // namespace
}  // namespace shiraz::sched
