#include "sim/optimizer.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "reliability/weibull.h"

namespace shiraz::sim {
namespace {

Engine make_engine(double mtbf_hours) {
  EngineConfig cfg;
  cfg.t_total = hours(1000.0);
  return Engine(reliability::Weibull::from_mtbf(0.6, hours(mtbf_hours)), cfg);
}

TEST(Optimizer, CandidateDeltasAreConsistent) {
  const Engine engine = make_engine(5.0);
  const SimJob lw = SimJob::at_oci("lw", hours(0.02), hours(5.0));
  const SimJob hw = SimJob::at_oci("hw", hours(0.5), hours(5.0));
  const SimSwitchCandidate c = simulate_switch_point(engine, lw, hw, 13, 16, 7);
  EXPECT_NEAR(c.delta_total, c.delta_lw + c.delta_hw, 1e-9);
  EXPECT_EQ(c.k, 13);
}

TEST(Optimizer, SimulatedFairPointNearModelPrediction) {
  // Table 2 exascale, delta-factor 25: model predicts k = 13; the simulated
  // fair point must land within the paper's reported tolerance of 2.
  const Engine engine = make_engine(5.0);
  const SimJob lw = SimJob::at_oci("lw", hours(0.02), hours(5.0));
  const SimJob hw = SimJob::at_oci("hw", hours(0.5), hours(5.0));
  const SimSwitchSolution sol = find_fair_k_by_simulation(engine, lw, hw, 8, 19, 24, 3);
  ASSERT_TRUE(sol.beneficial());
  EXPECT_NEAR(*sol.k, 13, 2.0);
  EXPECT_GT(sol.delta_total, 0.0);
}

TEST(Optimizer, SweepCoversRequestedRange) {
  const Engine engine = make_engine(5.0);
  const SimJob lw = SimJob::at_oci("lw", hours(0.02), hours(5.0));
  const SimJob hw = SimJob::at_oci("hw", hours(0.5), hours(5.0));
  const SimSwitchSolution sol = find_fair_k_by_simulation(engine, lw, hw, 5, 9, 4, 3);
  ASSERT_EQ(sol.sweep.size(), 5u);
  EXPECT_EQ(sol.sweep.front().k, 5);
  EXPECT_EQ(sol.sweep.back().k, 9);
}

TEST(Optimizer, DeltaLwIncreasesAcrossSweep) {
  const Engine engine = make_engine(5.0);
  const SimJob lw = SimJob::at_oci("lw", hours(0.02), hours(5.0));
  const SimJob hw = SimJob::at_oci("hw", hours(0.5), hours(5.0));
  const SimSwitchSolution sol =
      find_fair_k_by_simulation(engine, lw, hw, 4, 24, 16, 11);
  // With common random numbers the sim Delta curves inherit the model's
  // monotonicity up to residual noise.
  EXPECT_LT(sol.sweep.front().delta_lw, sol.sweep.back().delta_lw);
  EXPECT_GT(sol.sweep.front().delta_hw, sol.sweep.back().delta_hw);
}

TEST(Optimizer, RejectsBadRange) {
  const Engine engine = make_engine(5.0);
  const SimJob lw = SimJob::at_oci("lw", hours(0.02), hours(5.0));
  const SimJob hw = SimJob::at_oci("hw", hours(0.5), hours(5.0));
  EXPECT_THROW(find_fair_k_by_simulation(engine, lw, hw, 0, 5, 4, 3), InvalidArgument);
  EXPECT_THROW(find_fair_k_by_simulation(engine, lw, hw, 5, 4, 4, 3), InvalidArgument);
}

}  // namespace
}  // namespace shiraz::sim
