// The flat replay kernel contract (sim/kernel.h): for every closed-form-
// eligible configuration the kernel's result equals the event loop's bit for
// bit — across schedulers, the whole scenario-corpus regime catalog, and
// every worker count — and every ineligible configuration falls back to the
// event loop with identical behavior. Bit-identity here means EXPECT_EQ on
// doubles: the kernel is an optimization, never an approximation.
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "checkpoint/schedule.h"
#include "common/error.h"
#include "obs/event.h"
#include "predict/oracle.h"
#include "predict/predictor.h"
#include "reliability/weibull.h"
#include "scenario/scenario.h"
#include "sim/engine.h"
#include "sim/kernel.h"
#include "sim/optimizer.h"
#include "sim/trace.h"

#ifndef SHIRAZ_TESTDATA_SCENARIOS
#error "SHIRAZ_TESTDATA_SCENARIOS must point at testdata/scenarios"
#endif

namespace shiraz::sim {
namespace {

constexpr std::uint64_t kSeed = 20180909;
constexpr std::size_t kReps = 6;
constexpr double kDeltaLw = 18.0;
constexpr double kDeltaHw = 1800.0;

Engine make_engine(bool flat_kernel, Seconds t_total = hours(200.0),
                   Seconds mtbf = hours(5.0)) {
  EngineConfig cfg;
  cfg.t_total = t_total;
  cfg.flat_kernel = flat_kernel;
  return Engine(reliability::Weibull::from_mtbf(0.6, mtbf), cfg);
}

void expect_identical(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].name, b.apps[i].name);
    EXPECT_EQ(a.apps[i].useful, b.apps[i].useful) << "app " << i;
    EXPECT_EQ(a.apps[i].io, b.apps[i].io) << "app " << i;
    EXPECT_EQ(a.apps[i].lost, b.apps[i].lost) << "app " << i;
    EXPECT_EQ(a.apps[i].restart, b.apps[i].restart) << "app " << i;
    EXPECT_EQ(a.apps[i].checkpoints, b.apps[i].checkpoints) << "app " << i;
    EXPECT_EQ(a.apps[i].failures_hit, b.apps[i].failures_hit) << "app " << i;
  }
  EXPECT_EQ(a.wall, b.wall);
  EXPECT_EQ(a.idle, b.idle);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.switches, b.switches);
}

/// The three paper policies the corpus matrix exercises. Shiraz+ stretches
/// the heavy member's OCI by 4 (an arbitrary catalog-scale factor).
enum class PolicyKind { kBaseline, kShiraz, kShirazPlus };

const char* policy_name(PolicyKind p) {
  switch (p) {
    case PolicyKind::kBaseline: return "Baseline";
    case PolicyKind::kShiraz: return "Shiraz";
    case PolicyKind::kShirazPlus: return "ShirazPlus";
  }
  return "?";
}

struct PolicyCase {
  std::vector<SimJob> jobs;
  std::unique_ptr<Scheduler> scheduler;
};

PolicyCase make_policy(PolicyKind kind, Seconds nominal_mtbf) {
  PolicyCase c;
  const unsigned stretch = kind == PolicyKind::kShirazPlus ? 4 : 1;
  c.jobs = {SimJob::at_oci("lw", kDeltaLw, nominal_mtbf),
            SimJob::at_oci("hw", kDeltaHw, nominal_mtbf, stretch)};
  if (kind == PolicyKind::kBaseline) {
    c.scheduler = std::make_unique<AlternateAtFailure>();
  } else {
    c.scheduler = std::make_unique<ShirazPairScheduler>(26);
  }
  return c;
}

// ---------------------------------------------------------------------------
// Kernel vs event loop across the scenario corpus: every shipped failure
// regime (Markov bursts, cascades, pools, bathtub, drift, renewal controls)
// through every paper policy, serial and parallel.

using CorpusParam = std::tuple<std::string, PolicyKind>;

class FlatKernelCorpus : public ::testing::TestWithParam<CorpusParam> {};

const scenario::Scenario& corpus_scenario(const std::string& id) {
  static const std::vector<scenario::Scenario> all =
      scenario::load_dir(SHIRAZ_TESTDATA_SCENARIOS);
  for (const scenario::Scenario& s : all) {
    if (s.id == id) return s;
  }
  throw InvalidArgument("scenario not in corpus: " + id);
}

std::vector<std::string> corpus_ids() {
  std::vector<std::string> ids;
  for (const scenario::Scenario& s :
       scenario::load_dir(SHIRAZ_TESTDATA_SCENARIOS)) {
    ids.push_back(s.id);
  }
  return ids;
}

TEST_P(FlatKernelCorpus, BitIdenticalToEventLoopForEveryWorkerCount) {
  const auto& [id, kind] = GetParam();
  const scenario::Scenario& sc = corpus_scenario(id);
  const PolicyCase c = make_policy(kind, sc.nominal_mtbf);

  // Regime traces: the stateful-safe path (DESIGN.md §8). Both engines
  // replay the same store; only the dispatch differs.
  const reliability::FailureRegimePtr regime = sc.make_regime();
  const TraceStore traces(*regime, kSeed, sc.horizon);
  const Engine flat = make_engine(true, sc.horizon, sc.nominal_mtbf);
  const Engine loop = make_engine(false, sc.horizon, sc.nominal_mtbf);

  std::optional<SimResult> reference;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    CampaignOptions opts;
    opts.workers = workers;
    opts.traces = &traces;
    const SimResult via_kernel =
        flat.run_many(c.jobs, *c.scheduler, kReps, kSeed, opts);
    const SimResult via_loop =
        loop.run_many(c.jobs, *c.scheduler, kReps, kSeed, opts);
    expect_identical(via_kernel, via_loop);
    if (!reference) {
      reference = via_loop;
    } else {
      expect_identical(via_kernel, *reference);  // worker-count invariance
    }
  }
}

std::vector<CorpusParam> corpus_matrix() {
  std::vector<CorpusParam> params;
  for (const std::string& id : corpus_ids()) {
    for (const PolicyKind kind : {PolicyKind::kBaseline, PolicyKind::kShiraz,
                                  PolicyKind::kShirazPlus}) {
      params.emplace_back(id, kind);
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Corpus, FlatKernelCorpus,
                         ::testing::ValuesIn(corpus_matrix()),
                         [](const ::testing::TestParamInfo<CorpusParam>& info) {
                           std::string name = std::get<0>(info.param) +
                                              std::string("_") +
                                              policy_name(std::get<1>(info.param));
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Direct kernel calls vs Engine::replay on a renewal process.

TEST(FlatKernel, FlatReplayMatchesEngineReplay) {
  const Engine loop = make_engine(false);
  const TraceStore traces(loop, kSeed);
  traces.ensure(kReps);
  for (const PolicyKind kind :
       {PolicyKind::kBaseline, PolicyKind::kShiraz, PolicyKind::kShirazPlus}) {
    const PolicyCase c = make_policy(kind, hours(5.0));
    for (std::size_t r = 0; r < kReps; ++r) {
      const SimResult via_loop = loop.replay(c.jobs, *c.scheduler, traces.trace(r));
      const SimResult via_kernel =
          flat_replay(loop.config(), c.jobs, *c.scheduler, traces.trace(r));
      expect_identical(via_kernel, via_loop);
    }
  }
}

TEST(FlatKernel, MultiSwitchAndPairRotationFlatten) {
  const Engine flat = make_engine(true);
  const Engine loop = make_engine(false);
  const TraceStore traces(loop, kSeed);
  CampaignOptions opts;
  opts.traces = &traces;

  // Three-app multi-switch chain, including a zero count (skipped turn).
  {
    std::vector<SimJob> jobs{SimJob::at_oci("a", 12.0, hours(5.0)),
                             SimJob::at_oci("b", 120.0, hours(5.0)),
                             SimJob::at_oci("c", 1200.0, hours(5.0))};
    const MultiSwitchScheduler sched(std::vector<int>{9, 0});
    expect_identical(flat.run_many(jobs, sched, kReps, kSeed, opts),
                     loop.run_many(jobs, sched, kReps, kSeed, opts));
  }
  // Two rotating pairs: one solved k, one k-less (lead-alternating), plus a
  // k == 0 Shiraz pair (heavy only) as its own case.
  {
    std::vector<SimJob> jobs{SimJob::at_oci("lw0", 12.0, hours(5.0)),
                             SimJob::at_oci("hw0", 1200.0, hours(5.0)),
                             SimJob::at_oci("lw1", 30.0, hours(5.0)),
                             SimJob::at_oci("hw1", 3000.0, hours(5.0))};
    const PairRotationScheduler sched(
        std::vector<std::optional<int>>{14, std::nullopt});
    expect_identical(flat.run_many(jobs, sched, kReps, kSeed, opts),
                     loop.run_many(jobs, sched, kReps, kSeed, opts));
  }
  {
    const PolicyCase c = make_policy(PolicyKind::kShiraz, hours(5.0));
    const ShirazPairScheduler k0(0);
    expect_identical(flat.run_many(c.jobs, k0, kReps, kSeed, opts),
                     loop.run_many(c.jobs, k0, kReps, kSeed, opts));
  }
}

TEST(FlatKernel, SweepMatchesEventLoopSweep) {
  const Engine flat = make_engine(true);
  const Engine loop = make_engine(false);
  const TraceStore traces(loop, kSeed);
  const SimJob lw = SimJob::at_oci("lw", kDeltaLw, hours(5.0));
  const SimJob hw = SimJob::at_oci("hw", kDeltaHw, hours(5.0));
  const std::vector<SweepUseful> a =
      replay_pair_sweep(flat, lw, hw, 20, 32, kReps, traces, 1, nullptr);
  const std::vector<SweepUseful> b =
      replay_pair_sweep(loop, lw, hw, 20, 32, kReps, traces, 1, nullptr);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lw, b[i].lw) << "k = " << 20 + i;
    EXPECT_EQ(a[i].hw, b[i].hw) << "k = " << 20 + i;
  }
}

// ---------------------------------------------------------------------------
// Eligibility: every fallback rule, and that the dispatcher actually takes
// the event loop (identical results, policy errors preserved) when one fails.

TEST(FlatKernel, EligibilityRules) {
  const PolicyCase c = make_policy(PolicyKind::kShiraz, hours(5.0));
  EngineConfig cfg;
  cfg.t_total = hours(200.0);

  auto reason = [&](const EngineConfig& config, const std::vector<SimJob>& jobs,
                    const Scheduler& sched, const AlarmSource* alarms = nullptr,
                    const obs::EventSink* sink = nullptr) {
    const KernelEligibility e =
        flat_kernel_eligibility(config, jobs, sched, alarms, sink);
    EXPECT_FALSE(e.eligible);
    return std::string(e.reason);
  };

  EXPECT_TRUE(flat_kernel_eligibility(cfg, c.jobs, *c.scheduler, nullptr, nullptr)
                  .eligible);

  EngineConfig restart = cfg;
  restart.restart_cost = 30.0;
  EXPECT_EQ(reason(restart, c.jobs, *c.scheduler), "restart cost is not free");

  EngineConfig switching = cfg;
  switching.switch_cost = 10.0;
  EXPECT_EQ(reason(switching, c.jobs, *c.scheduler), "switch cost is not free");

  obs::EventRecorder recorder;
  EngineConfig traced = cfg;
  traced.sink = &recorder;
  EXPECT_EQ(reason(traced, c.jobs, *c.scheduler),
            "an event sink observes the run");
  EXPECT_EQ(reason(cfg, c.jobs, *c.scheduler, nullptr, &recorder),
            "an event sink observes the run");

  const predict::NullPredictor no_alarms;
  EXPECT_EQ(reason(cfg, c.jobs, *c.scheduler, &no_alarms),
            "an alarm source is armed");

  EXPECT_EQ(reason(cfg, {}, *c.scheduler), "no jobs");

  // Lazy Checkpointing is aperiodic: period() is nullopt by contract.
  std::vector<SimJob> lazy_jobs{SimJob::lazy("lazy", kDeltaLw, hours(5.0), 0.6),
                                SimJob::at_oci("hw", kDeltaHw, hours(5.0))};
  EXPECT_EQ(reason(cfg, lazy_jobs, *c.scheduler),
            "job schedule is not periodic");

  // Pair policies with the wrong app count fall back (and the event loop
  // then raises the policy's own error, tested below).
  std::vector<SimJob> three{SimJob::at_oci("a", 12.0, hours(5.0)),
                            SimJob::at_oci("b", 120.0, hours(5.0)),
                            SimJob::at_oci("c", 1200.0, hours(5.0))};
  EXPECT_EQ(reason(cfg, three, *c.scheduler),
            "ShirazPairScheduler needs exactly two apps");
  const MultiSwitchScheduler multi(std::vector<int>{3, 4});
  EXPECT_EQ(reason(cfg, c.jobs, multi),
            "MultiSwitchScheduler app count must be one more than its ks");
}

TEST(FlatKernel, FlatReplayThrowsOnIneligibleConfiguration) {
  const PolicyCase c = make_policy(PolicyKind::kShiraz, hours(5.0));
  const Engine loop = make_engine(false);
  const TraceStore traces(loop, kSeed);
  EngineConfig cfg = loop.config();
  cfg.switch_cost = 10.0;
  EXPECT_THROW(flat_replay(cfg, c.jobs, *c.scheduler, traces.trace(0)),
               InvalidArgument);
}

TEST(FlatKernel, IneligibleConfigurationsFallBackToTheEventLoop) {
  // flat_kernel on vs off must agree even where the kernel cannot run: the
  // dispatcher takes the event loop, so arming the flag is always safe.
  const TraceStore traces(make_engine(false), kSeed);
  CampaignOptions opts;
  opts.traces = &traces;

  EngineConfig cfg;
  cfg.t_total = hours(200.0);
  cfg.switch_cost = 10.0;  // ineligible: the hand-off costs time
  const reliability::Weibull dist =
      reliability::Weibull::from_mtbf(0.6, hours(5.0));
  cfg.flat_kernel = true;
  const Engine flat(dist, cfg);
  cfg.flat_kernel = false;
  const Engine loop(dist, cfg);

  const PolicyCase c = make_policy(PolicyKind::kShiraz, hours(5.0));
  expect_identical(flat.run_many(c.jobs, *c.scheduler, kReps, kSeed, opts),
                   loop.run_many(c.jobs, *c.scheduler, kReps, kSeed, opts));

  // Wrong app count: the fallback preserves the policy's own error.
  std::vector<SimJob> three{SimJob::at_oci("a", 12.0, hours(5.0)),
                            SimJob::at_oci("b", 120.0, hours(5.0)),
                            SimJob::at_oci("c", 1200.0, hours(5.0))};
  const Engine eligible_engine = make_engine(true);
  EXPECT_THROW(
      eligible_engine.replay(three, *c.scheduler, traces.trace(0)),
      InvalidArgument);
}

TEST(FlatKernel, PredictiveReplayFallsBackAndMatches) {
  // An armed alarm source is ineligible; the predictive replay must be
  // untouched by the dispatcher.
  const TraceStore traces(make_engine(false), kSeed);
  const Engine flat = make_engine(true);
  const Engine loop = make_engine(false);
  const PolicyCase c = make_policy(PolicyKind::kShiraz, hours(5.0));
  const predict::OraclePredictor oracle(
      predict::OracleConfig{0.7, 0.2, minutes(20.0), hours(5.0)});
  Rng rng_a(kSeed);
  Rng rng_b(kSeed);
  const SimResult a =
      flat.replay(c.jobs, *c.scheduler, traces.trace(0), rng_a, &oracle);
  const SimResult b =
      loop.replay(c.jobs, *c.scheduler, traces.trace(0), rng_b, &oracle);
  expect_identical(a, b);
}

// ---------------------------------------------------------------------------
// The prefix-sum cache on FailureTrace (the kernel's SoA substrate).

TEST(FlatKernel, FailureTracePrefixSumsMatchSequentialAddition) {
  const Engine loop = make_engine(false);
  const TraceStore traces(loop, kSeed);
  const FailureTrace& trace = traces.trace(0);
  ASSERT_EQ(trace.fail_times().size(), trace.gaps().size());
  Seconds t = 0.0;
  for (std::size_t i = 0; i < trace.gaps().size(); ++i) {
    t += trace.gaps()[i];  // the exact accumulation a live clock performs
    EXPECT_EQ(trace.fail_time(i), t) << "draw " << i;
  }
  EXPECT_THROW(trace.fail_time(trace.gaps().size()), InvalidArgument);
}

}  // namespace
}  // namespace shiraz::sim
