#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "reliability/weibull.h"
#include "sim/engine.h"

namespace shiraz::sim {
namespace {

SchedContext make_ctx(std::size_t num_apps, std::size_t failures,
                      const std::vector<std::size_t>& ckpts, std::size_t current = 0,
                      Seconds now = 0.0, Seconds gap_start = 0.0) {
  SchedContext ctx;
  ctx.now = now;
  ctx.gap_start = gap_start;
  ctx.num_apps = num_apps;
  ctx.current = current;
  ctx.checkpoints_this_gap = &ckpts;
  ctx.failures_so_far = failures;
  return ctx;
}

TEST(AlternateAtFailure, RotatesThroughApps) {
  const AlternateAtFailure s;
  const std::vector<std::size_t> ckpts(3, 0);
  EXPECT_EQ(*s.on_gap_start(make_ctx(3, 0, ckpts)).app, 0u);
  EXPECT_EQ(*s.on_gap_start(make_ctx(3, 1, ckpts)).app, 1u);
  EXPECT_EQ(*s.on_gap_start(make_ctx(3, 2, ckpts)).app, 2u);
  EXPECT_EQ(*s.on_gap_start(make_ctx(3, 3, ckpts)).app, 0u);
}

TEST(AlternateAtFailure, KeepsRunningBetweenFailures) {
  const AlternateAtFailure s;
  const std::vector<std::size_t> ckpts{4, 0};
  EXPECT_EQ(*s.on_checkpoint(make_ctx(2, 1, ckpts, 1)).app, 1u);
}

TEST(ShirazPair, LightRunsFirstThenHeavy) {
  const ShirazPairScheduler s(3);
  std::vector<std::size_t> ckpts{0, 0};
  EXPECT_EQ(*s.on_gap_start(make_ctx(2, 0, ckpts)).app, 0u);
  ckpts[0] = 2;
  EXPECT_EQ(*s.on_checkpoint(make_ctx(2, 0, ckpts, 0)).app, 0u);
  ckpts[0] = 3;
  EXPECT_EQ(*s.on_checkpoint(make_ctx(2, 0, ckpts, 0)).app, 1u);
}

TEST(ShirazPair, HeavyKeepsRunningAfterSwitch) {
  const ShirazPairScheduler s(3);
  const std::vector<std::size_t> ckpts{3, 5};
  EXPECT_EQ(*s.on_checkpoint(make_ctx(2, 0, ckpts, 1)).app, 1u);
}

TEST(ShirazPair, KZeroRunsHeavyOnly) {
  const ShirazPairScheduler s(0);
  const std::vector<std::size_t> ckpts{0, 0};
  EXPECT_EQ(*s.on_gap_start(make_ctx(2, 0, ckpts)).app, 1u);
}

TEST(ShirazPair, RequiresExactlyTwoApps) {
  const ShirazPairScheduler s(3);
  const std::vector<std::size_t> ckpts(3, 0);
  EXPECT_THROW(s.on_gap_start(make_ctx(3, 0, ckpts)), InvalidArgument);
}

TEST(ShirazPair, RejectsNegativeK) {
  EXPECT_THROW(ShirazPairScheduler(-1), InvalidArgument);
}

TEST(FirstApp, IdlesAfterCountCheckpoints) {
  const FirstAppScheduler s(2);
  std::vector<std::size_t> ckpts{1};
  EXPECT_TRUE(s.on_checkpoint(make_ctx(1, 0, ckpts, 0)).app.has_value());
  ckpts[0] = 2;
  EXPECT_FALSE(s.on_checkpoint(make_ctx(1, 0, ckpts, 0)).app.has_value());
}

TEST(FirstApp, CountZeroNeverRuns) {
  const FirstAppScheduler s(0);
  const std::vector<std::size_t> ckpts{0};
  EXPECT_FALSE(s.on_gap_start(make_ctx(1, 0, ckpts)).app.has_value());
}

TEST(SecondApp, DelaysStartAfterGap) {
  const SecondAppScheduler s(hours(2.0));
  const std::vector<std::size_t> ckpts{0};
  const Decision d = s.on_gap_start(make_ctx(1, 0, ckpts));
  ASSERT_TRUE(d.app.has_value());
  EXPECT_DOUBLE_EQ(d.not_before_elapsed, hours(2.0));
}

TEST(NaiveTimeSwitch, SwitchesAtThreshold) {
  const NaiveTimeSwitchScheduler s(hours(2.5));
  const std::vector<std::size_t> ckpts{5, 0};
  // Before the threshold: keep the light app.
  EXPECT_EQ(*s.on_checkpoint(make_ctx(2, 0, ckpts, 0, hours(2.0), 0.0)).app, 0u);
  // At/after the threshold: switch to the heavy app.
  EXPECT_EQ(*s.on_checkpoint(make_ctx(2, 0, ckpts, 0, hours(2.5), 0.0)).app, 1u);
}

TEST(PairRotation, RotatesPairsAcrossFailures) {
  const PairRotationScheduler s({std::optional<int>{2}, std::optional<int>{3}});
  const std::vector<std::size_t> ckpts(4, 0);
  EXPECT_EQ(*s.on_gap_start(make_ctx(4, 0, ckpts)).app, 0u);  // pair 0 light
  EXPECT_EQ(*s.on_gap_start(make_ctx(4, 1, ckpts)).app, 2u);  // pair 1 light
  EXPECT_EQ(*s.on_gap_start(make_ctx(4, 2, ckpts)).app, 0u);  // pair 0 again
}

TEST(PairRotation, SwitchesWithinTheActivePair) {
  const PairRotationScheduler s({std::optional<int>{2}, std::optional<int>{3}});
  std::vector<std::size_t> ckpts(4, 0);
  ckpts[2] = 3;  // pair 1's light app reached its k
  EXPECT_EQ(*s.on_checkpoint(make_ctx(4, 1, ckpts, 2)).app, 3u);
  ckpts[0] = 1;  // pair 0's light app has not reached its k = 2
  EXPECT_EQ(*s.on_checkpoint(make_ctx(4, 0, ckpts, 0)).app, 0u);
}

TEST(PairRotation, NonBeneficialPairAlternatesItsLead) {
  const PairRotationScheduler s({std::nullopt});
  const std::vector<std::size_t> ckpts(2, 0);
  EXPECT_EQ(*s.on_gap_start(make_ctx(2, 0, ckpts)).app, 0u);
  EXPECT_EQ(*s.on_gap_start(make_ctx(2, 1, ckpts)).app, 1u);
  EXPECT_EQ(*s.on_gap_start(make_ctx(2, 2, ckpts)).app, 0u);
}

TEST(PairRotation, ValidatesConstruction) {
  EXPECT_THROW(PairRotationScheduler({}), InvalidArgument);
  EXPECT_THROW(PairRotationScheduler({std::optional<int>{-2}}), InvalidArgument);
}

TEST(NaiveVsShiraz, NaiveHalfMtbfUnderperformsInSimulation) {
  // Section 5: "A naive strategy to switch applications at half of the MTBF
  // ... will lead to a significant decrease in the overall useful work."
  const auto dist = reliability::Weibull::from_mtbf(0.6, hours(5.0));
  EngineConfig cfg;
  cfg.t_total = hours(1000.0);
  const Engine engine(dist, cfg);
  const std::vector<SimJob> jobs{SimJob::at_oci("lw", hours(0.1), hours(5.0)),
                                 SimJob::at_oci("hw", hours(0.5), hours(5.0))};
  const NaiveTimeSwitchScheduler naive(hours(2.5));
  const ShirazPairScheduler shiraz(6);
  const SimResult n = engine.run_many(jobs, naive, 24, 99);
  const SimResult s = engine.run_many(jobs, shiraz, 24, 99);
  EXPECT_GT(s.total_useful(), n.total_useful());
}

}  // namespace
}  // namespace shiraz::sim
