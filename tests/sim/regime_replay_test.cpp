// Correlated failure regimes through the replay machinery: a TraceStore
// built from a reliability::FailureRegime must replay bit-identically to the
// regime's own live serial sampler, campaigns over regime traces must be
// bit-identical for every worker count, and every repetition's event stream
// must satisfy the invariant auditor — the same guarantees the renewal
// distributions enjoy, extended to non-renewal processes (DESIGN.md §8).
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "obs/audit_sim.h"
#include "obs/event.h"
#include "reliability/bathtub.h"
#include "reliability/regimes.h"
#include "reliability/weibull.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace shiraz::sim {
namespace {

using reliability::FailureRegimePtr;

constexpr std::uint64_t kSeed = 20180815;
constexpr std::size_t kReps = 8;
constexpr Seconds kHorizon = hours(400.0);

struct RegimeCase {
  std::string label;
  std::function<FailureRegimePtr()> make;
};

std::vector<RegimeCase> all_cases() {
  return {
      {"RenewalWeibull",
       [] {
         return std::make_unique<reliability::RenewalRegime>(
             std::make_unique<reliability::Weibull>(
                 reliability::Weibull::from_mtbf(0.7, hours(12.0))));
       }},
      {"Bathtub",
       [] {
         return std::make_unique<reliability::RenewalRegime>(
             std::make_unique<reliability::BathtubWeibull>(0.5, hours(8.0), 2.5,
                                                           hours(72.0)));
       }},
      {"MarkovBurst",
       [] {
         reliability::MarkovBurstRegime::Config c;
         c.calm_mtbf = hours(18.0);
         c.calm_shape = 0.7;
         c.burst_mtbf = hours(1.0);
         c.burst_shape = 1.0;
         c.p_calm_to_burst = 0.1;
         c.p_burst_to_calm = 0.3;
         return std::make_unique<reliability::MarkovBurstRegime>(c);
       }},
      {"ClusterOutage",
       [] {
         reliability::ClusterOutageRegime::Config c;
         c.primary_mtbf = hours(36.0);
         c.primary_shape = 0.7;
         c.group_size_mean = 2.0;
         c.spread = hours(0.5);
         return std::make_unique<reliability::ClusterOutageRegime>(c);
       }},
      {"HeteroPools",
       [] {
         return std::make_unique<reliability::HeterogeneousPoolsRegime>(
             std::vector<reliability::HeterogeneousPoolsRegime::Pool>{
                 {0.6, hours(10.0)}, {0.7, hours(30.0)}, {1.2, hours(80.0)}});
       }},
      {"DriftingWeibull",
       [] {
         reliability::DriftingWeibullRegime::Config c;
         c.beta_start = 0.95;
         c.beta_end = 0.55;
         c.mtbf_start = hours(20.0);
         c.mtbf_end = hours(10.0);
         c.ramp = hours(200.0);
         return std::make_unique<reliability::DriftingWeibullRegime>(c);
       }},
  };
}

void expect_identical(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].name, b.apps[i].name);
    EXPECT_EQ(a.apps[i].useful, b.apps[i].useful) << "app " << i;
    EXPECT_EQ(a.apps[i].io, b.apps[i].io) << "app " << i;
    EXPECT_EQ(a.apps[i].lost, b.apps[i].lost) << "app " << i;
    EXPECT_EQ(a.apps[i].restart, b.apps[i].restart) << "app " << i;
    EXPECT_EQ(a.apps[i].checkpoints, b.apps[i].checkpoints) << "app " << i;
    EXPECT_EQ(a.apps[i].failures_hit, b.apps[i].failures_hit) << "app " << i;
  }
  EXPECT_EQ(a.wall, b.wall);
  EXPECT_EQ(a.idle, b.idle);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.switches, b.switches);
}

std::vector<SimJob> make_jobs() {
  return {SimJob::at_oci("lw", 18.0, hours(12.0)),
          SimJob::at_oci("hw", 1800.0, hours(12.0))};
}

class RegimeReplay : public ::testing::TestWithParam<RegimeCase> {};

TEST_P(RegimeReplay, StoreReplayMatchesLiveSerialSampler) {
  const FailureRegimePtr regime = GetParam().make();
  EngineConfig cfg;
  cfg.t_total = kHorizon;
  // The live engine draws through the regime's serial cursor adapter; the
  // replay engine walks the store. Both must agree bit for bit.
  const Engine engine(regime->sampler(kHorizon), cfg);
  const TraceStore traces(*regime, kSeed, kHorizon);
  const std::vector<SimJob> jobs = make_jobs();
  const ShirazPairScheduler shiraz(8);

  for (const std::size_t rep : {std::size_t{0}, std::size_t{3}}) {
    Rng live_rng = Rng(kSeed).fork(rep);
    const SimResult live = engine.run(jobs, shiraz, live_rng);
    const SimResult replayed = engine.replay(jobs, shiraz, traces.trace(rep));
    expect_identical(replayed, live);
  }
}

TEST_P(RegimeReplay, CampaignIsBitIdenticalForEveryWorkerCount) {
  const FailureRegimePtr regime = GetParam().make();
  EngineConfig cfg;
  cfg.t_total = kHorizon;
  const Engine engine(regime->sampler(kHorizon), cfg);
  const TraceStore traces(*regime, kSeed, kHorizon);
  const std::vector<SimJob> jobs = make_jobs();
  const AlternateAtFailure baseline;

  CampaignOptions opts;
  opts.traces = &traces;
  opts.workers = 1;
  const CampaignSummary ref =
      engine.run_campaign(jobs, baseline, kReps, kSeed, opts);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    opts.workers = workers;
    const CampaignSummary got =
        engine.run_campaign(jobs, baseline, kReps, kSeed, opts);
    expect_identical(got.mean, ref.mean);
    EXPECT_EQ(got.total_useful.stddev, ref.total_useful.stddev)
        << "workers=" << workers;
    EXPECT_EQ(got.total_lost.ci95, ref.total_lost.ci95) << "workers=" << workers;
  }
}

TEST_P(RegimeReplay, EveryRepetitionPassesTheInvariantAuditor) {
  const FailureRegimePtr regime = GetParam().make();
  obs::EventRecorder recorder;
  EngineConfig cfg;
  cfg.t_total = kHorizon;
  cfg.sink = &recorder;
  const Engine engine(regime->sampler(kHorizon), cfg);
  const TraceStore traces(*regime, kSeed, kHorizon);
  const std::vector<SimJob> jobs = make_jobs();
  const ShirazPairScheduler shiraz(8);

  for (std::size_t rep = 0; rep < kReps; ++rep) {
    recorder.clear();
    const SimResult res = engine.replay(jobs, shiraz, traces.trace(rep));
    obs::InvariantAuditor auditor;
    for (const obs::Event& e : recorder.events()) auditor.on_event(e);
    EXPECT_NO_THROW(obs::verify_against(auditor, res)) << "rep " << rep;
  }
}

TEST_P(RegimeReplay, StoreMaterializationIsIndependentOfAccessOrder) {
  const FailureRegimePtr regime = GetParam().make();
  const TraceStore fwd(*regime, kSeed, kHorizon);
  const TraceStore rev(*regime, kSeed, kHorizon);
  for (std::size_t r = 0; r < 4; ++r) (void)fwd.trace(r);
  for (std::size_t r = 4; r-- > 0;) (void)rev.trace(r);
  for (std::size_t r = 0; r < 4; ++r) {
    const FailureTrace& a = fwd.trace(r);
    const FailureTrace& b = rev.trace(r);
    ASSERT_EQ(a.size(), b.size()) << "rep " << r;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.gap(i), b.gap(i)) << "rep " << r << " gap " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegimes, RegimeReplay,
                         ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<RegimeCase>& info) {
                           return info.param.label;
                         });

TEST(RegimeReplayEdge, RegimeStoreEnforcesSeedAndHorizonContracts) {
  const auto regime = std::make_unique<reliability::RenewalRegime>(
      std::make_unique<reliability::Weibull>(
          reliability::Weibull::from_mtbf(0.7, hours(12.0))));
  EXPECT_THROW(TraceStore(*regime, kSeed, 0.0), InvalidArgument);

  EngineConfig cfg;
  cfg.t_total = kHorizon;
  const Engine engine(regime->sampler(kHorizon), cfg);
  const TraceStore traces(*regime, kSeed, kHorizon);
  const std::vector<SimJob> jobs = make_jobs();
  const AlternateAtFailure baseline;
  CampaignOptions opts;
  opts.traces = &traces;
  // Seed mismatch between the store and the campaign is rejected.
  EXPECT_THROW(engine.run_many(jobs, baseline, kReps, kSeed + 1, opts),
               InvalidArgument);
  // A store whose horizon stops short of the engine's is rejected.
  EngineConfig long_cfg;
  long_cfg.t_total = kHorizon * 2.0;
  const Engine long_engine(regime->sampler(kHorizon * 2.0), long_cfg);
  EXPECT_THROW(long_engine.run_many(jobs, baseline, kReps, kSeed, opts),
               InvalidArgument);
}

}  // namespace
}  // namespace shiraz::sim
