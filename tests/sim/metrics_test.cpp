#include "sim/metrics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"

namespace shiraz::sim {
namespace {

SimResult make_result(double scale) {
  SimResult r;
  r.wall = 100.0 * scale;
  r.idle = 4.0 * scale;
  r.truncated = 1.0 * scale;
  r.failures = static_cast<std::size_t>(2.0 * scale);
  r.switches = static_cast<std::size_t>(6.0 * scale);
  AppMetrics a;
  a.name = "a";
  a.useful = 60.0 * scale;
  a.io = 10.0 * scale;
  a.lost = 20.0 * scale;
  a.restart = 5.0 * scale;
  a.checkpoints = static_cast<std::size_t>(10.0 * scale);
  a.failures_hit = static_cast<std::size_t>(2.0 * scale);
  r.apps.push_back(a);
  return r;
}

TEST(Metrics, TotalsSumOverApps) {
  SimResult r = make_result(1.0);
  AppMetrics b;
  b.name = "b";
  b.useful = 40.0;
  b.io = 5.0;
  b.lost = 2.0;
  r.apps.push_back(b);
  EXPECT_DOUBLE_EQ(r.total_useful(), 100.0);
  EXPECT_DOUBLE_EQ(r.total_io(), 15.0);
  EXPECT_DOUBLE_EQ(r.total_lost(), 22.0);
}

TEST(Metrics, AccountedSumsBusyIdleTruncated) {
  const SimResult r = make_result(1.0);
  EXPECT_DOUBLE_EQ(r.accounted(), 60.0 + 10.0 + 20.0 + 5.0 + 4.0 + 1.0);
}

TEST(Metrics, BusyIsPerAppSum) {
  // Bind the result, not apps[0] of a temporary: operator[] defeats lifetime
  // extension, so a reference would dangle (caught by the ASan CI job).
  const SimResult r = make_result(1.0);
  EXPECT_DOUBLE_EQ(r.apps[0].busy(), 95.0);
}

TEST(Metrics, AppLookupByName) {
  const SimResult r = make_result(1.0);
  EXPECT_EQ(r.app("a").name, "a");
  EXPECT_THROW(r.app("nope"), InvalidArgument);
}

TEST(Metrics, AverageIsElementWiseMean) {
  const SimResult avg = average({make_result(1.0), make_result(3.0)});
  EXPECT_DOUBLE_EQ(avg.apps[0].useful, 120.0);
  EXPECT_DOUBLE_EQ(avg.apps[0].io, 20.0);
  EXPECT_DOUBLE_EQ(avg.idle, 8.0);
  EXPECT_DOUBLE_EQ(avg.truncated, 2.0);
  EXPECT_EQ(avg.failures, 4u);
  EXPECT_EQ(avg.switches, 12u);
  EXPECT_DOUBLE_EQ(avg.wall, 200.0);
}

TEST(Metrics, AverageOfOneIsIdentity) {
  const SimResult one = make_result(2.0);
  const SimResult avg = average({one});
  EXPECT_DOUBLE_EQ(avg.apps[0].useful, one.apps[0].useful);
  EXPECT_EQ(avg.failures, one.failures);
}

TEST(Metrics, AverageRejectsEmptyAndMismatched) {
  EXPECT_THROW(average({}), InvalidArgument);
  SimResult two_apps = make_result(1.0);
  AppMetrics b;
  b.name = "b";
  two_apps.apps.push_back(b);
  EXPECT_THROW(average({make_result(1.0), two_apps}), InvalidArgument);
}

TEST(Metrics, SummarizeCampaignMeanMatchesAverage) {
  const std::vector<SimResult> per_rep{make_result(1.0), make_result(3.0)};
  const CampaignSummary s = summarize_campaign(per_rep);
  const SimResult avg = average(per_rep);
  EXPECT_EQ(s.reps, 2u);
  EXPECT_EQ(s.mean.apps[0].useful, avg.apps[0].useful);
  EXPECT_EQ(s.mean.idle, avg.idle);
  EXPECT_EQ(s.mean.failures, avg.failures);
  EXPECT_DOUBLE_EQ(s.total_useful.mean, 120.0);
  EXPECT_DOUBLE_EQ(s.total_useful.min, 60.0);
  EXPECT_DOUBLE_EQ(s.total_useful.max, 180.0);
  // Unbiased sample stddev of {60, 180} and its 95% normal half-width.
  const double stddev = std::sqrt((60.0 * 60.0) * 2.0);
  EXPECT_DOUBLE_EQ(s.total_useful.stddev, stddev);
  EXPECT_DOUBLE_EQ(s.total_useful.ci95, 1.96 * stddev / std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(s.app("a").useful.mean, 120.0);
  EXPECT_THROW(s.app("nope"), InvalidArgument);
}

TEST(Metrics, SummarizeCampaignSingleRepHasZeroSpread) {
  const CampaignSummary s = summarize_campaign({make_result(2.0)});
  EXPECT_EQ(s.reps, 1u);
  EXPECT_DOUBLE_EQ(s.total_useful.mean, 120.0);
  EXPECT_EQ(s.total_useful.stddev, 0.0);
  EXPECT_EQ(s.total_useful.ci95, 0.0);
  EXPECT_FALSE(std::isnan(s.apps[0].lost.stddev));
  EXPECT_EQ(s.apps[0].lost.ci95, 0.0);
  EXPECT_EQ(s.total_useful.min, s.total_useful.max);
}

TEST(Metrics, SummarizeCampaignIdenticalRepsHaveExactlyZeroSpread) {
  // Identical repetitions must summarize to stddev == ci95 == 0 exactly —
  // not a rounding-noise residual, and certainly not NaN — so JSON telemetry
  // of deterministic campaigns is bit-stable across runs.
  const std::vector<SimResult> per_rep{make_result(2.0), make_result(2.0),
                                       make_result(2.0)};
  const CampaignSummary s = summarize_campaign(per_rep);
  EXPECT_EQ(s.total_useful.stddev, 0.0);
  EXPECT_EQ(s.total_useful.ci95, 0.0);
  EXPECT_EQ(s.idle.stddev, 0.0);
  EXPECT_EQ(s.apps[0].useful.stddev, 0.0);
  EXPECT_EQ(s.total_useful.min, s.total_useful.max);
  EXPECT_FALSE(std::isnan(s.failures.stddev));
}

TEST(Metrics, SummarizeCampaignRejectsEmpty) {
  EXPECT_THROW(summarize_campaign({}), InvalidArgument);
}

}  // namespace
}  // namespace shiraz::sim
