#include <gtest/gtest.h>

#include "common/error.h"
#include "reliability/exponential.h"
#include "reliability/weibull.h"
#include "sim/engine.h"

namespace shiraz::sim {
namespace {

std::vector<SimJob> pair_jobs() {
  return {SimJob::at_oci("lw", 18.0, hours(5.0)),
          SimJob::at_oci("hw", 1800.0, hours(5.0))};
}

TEST(SwitchCost, CountedOncePerWithinGapHandoff) {
  // A failure-free run with Shiraz(k): exactly one light -> heavy hand-off.
  const reliability::Exponential calm(hours(1e9));
  EngineConfig cfg;
  cfg.t_total = hours(100.0);
  const Engine engine(calm, cfg);
  const ShirazPairScheduler policy(5);
  Rng rng(1);
  const SimResult res = engine.run(pair_jobs(), policy, rng);
  EXPECT_EQ(res.switches, 1u);
}

TEST(SwitchCost, BaselineNeverSwitchesWithinGaps) {
  EngineConfig cfg;
  cfg.t_total = hours(500.0);
  const Engine engine(reliability::Weibull::from_mtbf(0.6, hours(5.0)), cfg);
  const AlternateAtFailure policy;
  Rng rng(2);
  const SimResult res = engine.run(pair_jobs(), policy, rng);
  EXPECT_EQ(res.switches, 0u);
}

TEST(SwitchCost, ChargedToTheIncomingApp) {
  const reliability::Exponential calm(hours(1e9));
  EngineConfig cfg;
  cfg.t_total = hours(100.0);
  cfg.switch_cost = 120.0;
  const Engine engine(calm, cfg);
  const ShirazPairScheduler policy(3);
  Rng rng(3);
  const SimResult res = engine.run(pair_jobs(), policy, rng);
  EXPECT_EQ(res.switches, 1u);
  EXPECT_DOUBLE_EQ(res.apps[1].restart, 120.0);  // heavy pays the hand-off
  EXPECT_DOUBLE_EQ(res.apps[0].restart, 0.0);
  EXPECT_NEAR(res.accounted(), hours(100.0), 1e-6);
}

TEST(SwitchCost, ZeroCostStillCountsSwitches) {
  EngineConfig cfg;
  cfg.t_total = hours(1000.0);
  const Engine engine(reliability::Weibull::from_mtbf(0.6, hours(5.0)), cfg);
  const ShirazPairScheduler policy(26);
  Rng rng(4);
  const SimResult res = engine.run(pair_jobs(), policy, rng);
  EXPECT_GE(res.switches, 40u);  // roughly one per long-enough gap
  EXPECT_DOUBLE_EQ(res.apps[1].restart, 0.0);
}

TEST(SwitchCost, ErodesShirazGainMonotonically) {
  const std::vector<SimJob> jobs = pair_jobs();
  const AlternateAtFailure baseline;
  const ShirazPairScheduler shiraz(26);
  double prev_gain = 1e18;
  for (const double cost : {0.0, 300.0, 1800.0}) {
    EngineConfig cfg;
    cfg.t_total = hours(1000.0);
    cfg.switch_cost = cost;
    const Engine engine(reliability::Weibull::from_mtbf(0.6, hours(5.0)), cfg);
    const SimResult base = engine.run_many(jobs, baseline, 16, 5);
    const SimResult sz = engine.run_many(jobs, shiraz, 16, 5);
    const double gain = sz.total_useful() - base.total_useful();
    EXPECT_LT(gain, prev_gain);
    prev_gain = gain;
  }
}

TEST(SwitchCost, AccountingHoldsUnderCostAndFailures) {
  EngineConfig cfg;
  cfg.t_total = hours(700.0);
  cfg.switch_cost = 240.0;
  cfg.restart_cost = 60.0;
  const Engine engine(reliability::Weibull::from_mtbf(0.6, hours(5.0)), cfg);
  const ShirazPairScheduler policy(13);
  Rng rng(6);
  const SimResult res = engine.run(pair_jobs(), policy, rng);
  EXPECT_NEAR(res.accounted(), hours(700.0), 1e-6);
}

TEST(SwitchCost, RejectsNegative) {
  EngineConfig cfg;
  cfg.switch_cost = -1.0;
  EXPECT_THROW(Engine(reliability::Weibull::from_mtbf(0.6, hours(5.0)), cfg),
               InvalidArgument);
}

}  // namespace
}  // namespace shiraz::sim
