#include "sim/engine.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "reliability/exponential.h"
#include "reliability/weibull.h"

namespace shiraz::sim {
namespace {

reliability::Weibull exa_failures() {
  return reliability::Weibull::from_mtbf(0.6, hours(5.0));
}

Engine make_engine(Seconds horizon = hours(1000.0)) {
  EngineConfig cfg;
  cfg.t_total = horizon;
  return Engine(exa_failures(), cfg);
}

TEST(Engine, TimeAccountingIsExact) {
  // Invariant: useful + io + lost + restart + idle + truncated == horizon.
  const Engine engine = make_engine();
  const std::vector<SimJob> jobs{SimJob::at_oci("lw", 18.0, hours(5.0)),
                                 SimJob::at_oci("hw", 1800.0, hours(5.0))};
  const AlternateAtFailure policy;
  Rng rng(1);
  const SimResult res = engine.run(jobs, policy, rng);
  EXPECT_NEAR(res.accounted(), hours(1000.0), 1e-6);
  EXPECT_DOUBLE_EQ(res.idle, 0.0);  // baseline never idles
}

TEST(Engine, SingleAppRunsTheWholeCampaign) {
  const Engine engine = make_engine();
  const std::vector<SimJob> jobs{SimJob::at_oci("a", 300.0, hours(5.0))};
  const AlternateAtFailure policy;
  Rng rng(2);
  const SimResult res = engine.run(jobs, policy, rng);
  EXPECT_NEAR(res.apps[0].busy() + res.truncated, hours(1000.0), 1e-6);
  EXPECT_GT(res.apps[0].useful, hours(700.0));
  EXPECT_GT(res.failures, 100u);  // ~200 expected at MTBF 5h
  EXPECT_LT(res.failures, 320u);
}

TEST(Engine, SameSeedSameFailureStreamAcrossPolicies) {
  // The engine draws failures identically regardless of policy — the
  // common-random-numbers property the optimizer depends on.
  const Engine engine = make_engine(hours(200.0));
  const std::vector<SimJob> jobs{SimJob::at_oci("lw", 18.0, hours(5.0)),
                                 SimJob::at_oci("hw", 1800.0, hours(5.0))};
  Rng r1(7);
  Rng r2(7);
  const SimResult a = engine.run(jobs, AlternateAtFailure{}, r1);
  const SimResult b = engine.run(jobs, ShirazPairScheduler{10}, r2);
  EXPECT_EQ(a.failures, b.failures);
}

TEST(Engine, DeterministicForFixedSeed) {
  const Engine engine = make_engine(hours(500.0));
  const std::vector<SimJob> jobs{SimJob::at_oci("a", 300.0, hours(5.0))};
  Rng r1(9);
  Rng r2(9);
  const SimResult a = engine.run(jobs, AlternateAtFailure{}, r1);
  const SimResult b = engine.run(jobs, AlternateAtFailure{}, r2);
  EXPECT_DOUBLE_EQ(a.apps[0].useful, b.apps[0].useful);
  EXPECT_DOUBLE_EQ(a.apps[0].lost, b.apps[0].lost);
  EXPECT_EQ(a.apps[0].checkpoints, b.apps[0].checkpoints);
}

TEST(Engine, UsefulWorkMatchesCheckpointCount) {
  // Every unit of useful work is sealed by a checkpoint at a fixed interval.
  const Engine engine = make_engine(hours(300.0));
  const std::vector<SimJob> jobs{SimJob::at_oci("a", 300.0, hours(5.0))};
  Rng rng(11);
  const SimResult res = engine.run(jobs, AlternateAtFailure{}, rng);
  const Seconds oci = checkpoint::optimal_interval(hours(5.0), 300.0);
  EXPECT_NEAR(res.apps[0].useful,
              static_cast<double>(res.apps[0].checkpoints) * oci, 1e-6);
  EXPECT_NEAR(res.apps[0].io, static_cast<double>(res.apps[0].checkpoints) * 300.0,
              1e-6);
}

TEST(Engine, NoFailuresMeansNoLostWork) {
  // A failure distribution whose samples exceed the horizon.
  const reliability::Exponential calm(hours(1.0e9));
  EngineConfig cfg;
  cfg.t_total = hours(100.0);
  const Engine engine(calm, cfg);
  const std::vector<SimJob> jobs{SimJob::at_oci("a", 300.0, hours(5.0))};
  Rng rng(13);
  const SimResult res = engine.run(jobs, AlternateAtFailure{}, rng);
  EXPECT_EQ(res.failures, 0u);
  EXPECT_DOUBLE_EQ(res.apps[0].lost, 0.0);
  EXPECT_GT(res.apps[0].useful, hours(90.0));
}

TEST(Engine, FrequentFailuresWipeMostWork) {
  // MTBF far below the segment length: almost nothing completes.
  const reliability::Exponential storm(60.0);
  EngineConfig cfg;
  cfg.t_total = hours(10.0);
  const Engine engine(storm, cfg);
  const std::vector<SimJob> jobs{SimJob::at_oci("a", 1800.0, hours(5.0))};
  Rng rng(17);
  const SimResult res = engine.run(jobs, AlternateAtFailure{}, rng);
  EXPECT_LT(res.apps[0].useful, hours(1.0));
  EXPECT_GT(res.apps[0].lost, hours(8.0));
}

TEST(Engine, RestartCostChargedPerFailure) {
  EngineConfig cfg;
  cfg.t_total = hours(500.0);
  cfg.restart_cost = 120.0;
  const Engine engine(exa_failures(), cfg);
  const std::vector<SimJob> jobs{SimJob::at_oci("a", 300.0, hours(5.0))};
  Rng rng(19);
  const SimResult res = engine.run(jobs, AlternateAtFailure{}, rng);
  EXPECT_GT(res.failures, 0u);
  // Each failure is followed by (up to) one full restart window; short gaps
  // can clip a window when the next failure strikes during the restart.
  EXPECT_LE(res.apps[0].restart, static_cast<double>(res.failures) * 120.0 + 1e-9);
  EXPECT_GE(res.apps[0].restart, 0.85 * static_cast<double>(res.failures) * 120.0);
  EXPECT_NEAR(res.accounted(), hours(500.0), 1e-6);
}

TEST(Engine, LazyScheduleCheckpointsLessOftenThanOci) {
  const Engine engine = make_engine(hours(1000.0));
  const std::vector<SimJob> oci_jobs{SimJob::at_oci("a", 300.0, hours(5.0))};
  const std::vector<SimJob> lazy_jobs{SimJob::lazy("a", 300.0, hours(5.0), 0.6)};
  Rng r1(23);
  Rng r2(23);
  const SimResult oci_res = engine.run(oci_jobs, AlternateAtFailure{}, r1);
  const SimResult lazy_res = engine.run(lazy_jobs, AlternateAtFailure{}, r2);
  EXPECT_LT(lazy_res.apps[0].checkpoints, oci_res.apps[0].checkpoints);
  EXPECT_LT(lazy_res.apps[0].io, oci_res.apps[0].io);
}

TEST(Engine, RunManyAveragesOverIndependentStreams) {
  const Engine engine = make_engine(hours(200.0));
  const std::vector<SimJob> jobs{SimJob::at_oci("a", 300.0, hours(5.0))};
  const SimResult one = engine.run_many(jobs, AlternateAtFailure{}, 1, 5);
  const SimResult many = engine.run_many(jobs, AlternateAtFailure{}, 16, 5);
  // Averaging keeps the scale but not the exact value of a single stream.
  EXPECT_NEAR(many.apps[0].useful / one.apps[0].useful, 1.0, 0.2);
  EXPECT_NEAR(many.accounted(), hours(200.0), 1e-6);
}

TEST(Engine, RejectsBadInputs) {
  const Engine engine = make_engine();
  Rng rng(1);
  EXPECT_THROW(engine.run({}, AlternateAtFailure{}, rng), InvalidArgument);
  std::vector<SimJob> bad{SimJob::at_oci("a", 300.0, hours(5.0))};
  bad[0].delta = 0.0;
  EXPECT_THROW(engine.run(bad, AlternateAtFailure{}, rng), InvalidArgument);
  std::vector<SimJob> no_schedule{SimJob{}};
  no_schedule[0].name = "x";
  no_schedule[0].delta = 1.0;
  EXPECT_THROW(engine.run(no_schedule, AlternateAtFailure{}, rng), InvalidArgument);

  EngineConfig bad_cfg;
  bad_cfg.t_total = 0.0;
  EXPECT_THROW(Engine(exa_failures(), bad_cfg), InvalidArgument);
}

TEST(Engine, ResultLookupByName) {
  const Engine engine = make_engine(hours(50.0));
  const std::vector<SimJob> jobs{SimJob::at_oci("alpha", 300.0, hours(5.0)),
                                 SimJob::at_oci("beta", 600.0, hours(5.0))};
  Rng rng(29);
  const SimResult res = engine.run(jobs, AlternateAtFailure{}, rng);
  EXPECT_EQ(res.app("alpha").name, "alpha");
  EXPECT_THROW(res.app("gamma"), InvalidArgument);
}

}  // namespace
}  // namespace shiraz::sim
