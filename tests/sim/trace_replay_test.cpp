// The trace-replay contract: a campaign replayed from a sim::TraceStore is
// bit-identical to the same campaign sampling its failure streams live — for
// every policy, every worker count, with and without an alarm source, and for
// non-stationary GapSampler processes. The fast-path sweep evaluator
// (replay_pair_sweep) must match per-candidate Engine campaigns bit for bit.
#include <cmath>
#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "predict/oracle.h"
#include "predict/policies.h"
#include "reliability/weibull.h"
#include "sim/engine.h"
#include "sim/optimizer.h"
#include "sim/trace.h"

namespace shiraz::sim {
namespace {

constexpr std::uint64_t kSeed = 20180404;
constexpr std::size_t kReps = 10;
constexpr double kMtbfHours = 5.0;

Engine make_engine(Seconds t_total = hours(200.0)) {
  EngineConfig cfg;
  cfg.t_total = t_total;
  return Engine(reliability::Weibull::from_mtbf(0.6, hours(kMtbfHours)), cfg);
}

void expect_identical(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].name, b.apps[i].name);
    EXPECT_EQ(a.apps[i].useful, b.apps[i].useful) << "app " << i;
    EXPECT_EQ(a.apps[i].io, b.apps[i].io) << "app " << i;
    EXPECT_EQ(a.apps[i].lost, b.apps[i].lost) << "app " << i;
    EXPECT_EQ(a.apps[i].restart, b.apps[i].restart) << "app " << i;
    EXPECT_EQ(a.apps[i].checkpoints, b.apps[i].checkpoints) << "app " << i;
    EXPECT_EQ(a.apps[i].failures_hit, b.apps[i].failures_hit) << "app " << i;
  }
  EXPECT_EQ(a.wall, b.wall);
  EXPECT_EQ(a.idle, b.idle);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.alarms, b.alarms);
  EXPECT_EQ(a.proactive_checkpoints, b.proactive_checkpoints);
}

enum class Policy { kBaseline, kShiraz, kShirazPlus, kPredictiveShiraz };

struct Campaign {
  std::vector<SimJob> jobs;
  std::unique_ptr<Scheduler> scheduler;
  std::unique_ptr<AlarmSource> alarms;  // null for the non-predictive policies
};

Campaign make_campaign(Policy policy) {
  const Seconds mtbf = hours(kMtbfHours);
  Campaign c;
  c.jobs = {SimJob::at_oci("lw", 18.0, mtbf), SimJob::at_oci("hw", 1800.0, mtbf)};
  switch (policy) {
    case Policy::kBaseline:
      c.scheduler = std::make_unique<AlternateAtFailure>();
      break;
    case Policy::kShiraz:
      c.scheduler = std::make_unique<ShirazPairScheduler>(26);
      break;
    case Policy::kShirazPlus:
      c.jobs[1] = SimJob::at_oci("hw", 1800.0, mtbf, /*stretch=*/3);
      c.scheduler = std::make_unique<ShirazPairScheduler>(26);
      break;
    case Policy::kPredictiveShiraz: {
      predict::OracleConfig ocfg;
      ocfg.precision = 0.9;
      ocfg.recall = 0.8;
      ocfg.lead = minutes(10.0);
      ocfg.mtbf = mtbf;
      c.scheduler = std::make_unique<predict::PredictiveShirazScheduler>(26);
      c.alarms = std::make_unique<predict::OraclePredictor>(ocfg);
      break;
    }
  }
  return c;
}

class TraceReplayTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, Policy>> {};

TEST_P(TraceReplayTest, ReplayedCampaignMatchesSampledBitForBit) {
  const auto [workers, policy] = GetParam();
  const Engine engine = make_engine();
  const Campaign c = make_campaign(policy);

  const SimResult live = engine.run_many(c.jobs, *c.scheduler, kReps, kSeed,
                                         workers, c.alarms.get());

  const TraceStore traces(engine, kSeed);
  CampaignOptions opts;
  opts.workers = workers;
  opts.alarms = c.alarms.get();
  opts.traces = &traces;
  const SimResult replayed =
      engine.run_many(c.jobs, *c.scheduler, kReps, kSeed, opts);
  expect_identical(replayed, live);

  const CampaignSummary live_summary = engine.run_campaign(
      c.jobs, *c.scheduler, kReps, kSeed, workers, c.alarms.get());
  const CampaignSummary replayed_summary =
      engine.run_campaign(c.jobs, *c.scheduler, kReps, kSeed, opts);
  EXPECT_EQ(replayed_summary.reps, live_summary.reps);
  expect_identical(replayed_summary.mean, live_summary.mean);
  EXPECT_EQ(replayed_summary.total_useful.stddev,
            live_summary.total_useful.stddev);
  EXPECT_EQ(replayed_summary.total_useful.ci95, live_summary.total_useful.ci95);
}

INSTANTIATE_TEST_SUITE_P(
    WorkerCountsAndPolicies, TraceReplayTest,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{4}),
                       ::testing::Values(Policy::kBaseline, Policy::kShiraz,
                                         Policy::kShirazPlus,
                                         Policy::kPredictiveShiraz)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, Policy>>& info) {
      const Policy policy = std::get<1>(info.param);
      const char* name = policy == Policy::kBaseline     ? "Baseline"
                         : policy == Policy::kShiraz     ? "Shiraz"
                         : policy == Policy::kShirazPlus ? "ShirazPlus"
                                                         : "PredictiveShiraz";
      return std::string(name) + "Jobs" + std::to_string(std::get<0>(info.param));
    });

TEST(TraceReplay, SingleRunReplayMatchesLive) {
  const Engine engine = make_engine();
  const Campaign c = make_campaign(Policy::kShiraz);
  const TraceStore traces(engine, kSeed);
  for (const std::size_t rep : {std::size_t{0}, std::size_t{3}}) {
    Rng live_rng = Rng(kSeed).fork(rep);
    const SimResult live = engine.run(c.jobs, *c.scheduler, live_rng);
    const SimResult replayed = engine.replay(c.jobs, *c.scheduler, traces.trace(rep));
    expect_identical(replayed, live);
  }
}

TEST(TraceReplay, SingleRunReplayWithAlarmsMatchesLive) {
  const Engine engine = make_engine();
  const Campaign c = make_campaign(Policy::kPredictiveShiraz);
  const TraceStore traces(engine, kSeed);
  Rng live_rng = Rng(kSeed).fork(1);
  const SimResult live = engine.run(c.jobs, *c.scheduler, live_rng, c.alarms.get());
  Rng replay_rng = Rng(kSeed).fork(1);
  const SimResult replayed = engine.replay(c.jobs, *c.scheduler, traces.trace(1),
                                           replay_rng, c.alarms.get());
  expect_identical(replayed, live);
}

TEST(TraceReplay, NonStationarySamplerReplaysBitForBit) {
  // Aging system: the mean gap shrinks as the campaign progresses. Gap starts
  // are policy-independent prefix sums, so memoizing the sampled gaps is
  // sound even though the sampler consults absolute time.
  GapSampler aging = [](Rng& rng, Seconds gap_start) {
    const Seconds mtbf = hours(kMtbfHours) / (1.0 + gap_start / hours(50.0));
    return -mtbf * std::log1p(-rng.uniform());
  };
  EngineConfig cfg;
  cfg.t_total = hours(200.0);
  const Engine engine(aging, cfg);
  const Campaign c = make_campaign(Policy::kShiraz);

  const SimResult live = engine.run_many(c.jobs, *c.scheduler, kReps, kSeed, 1);

  const TraceStore traces(engine, kSeed);
  CampaignOptions opts;
  opts.traces = &traces;
  const SimResult replayed =
      engine.run_many(c.jobs, *c.scheduler, kReps, kSeed, opts);
  expect_identical(replayed, live);
}

TEST(TraceReplay, StoreMaterializesLazily) {
  const Engine engine = make_engine();
  const TraceStore traces(engine, kSeed);
  EXPECT_EQ(traces.materialized(), 0u);
  EXPECT_EQ(traces.total_gaps(), 0u);

  const FailureTrace& t3 = traces.trace(3);
  EXPECT_EQ(traces.materialized(), 1u);
  EXPECT_GT(t3.size(), 0u);

  traces.ensure(2);
  EXPECT_EQ(traces.materialized(), 3u);
  EXPECT_GE(traces.total_gaps(), t3.size());

  // ensure() below the high-water mark is a no-op; repeated access is stable.
  traces.ensure(2);
  EXPECT_EQ(traces.materialized(), 3u);
  EXPECT_EQ(&traces.trace(3), &t3);
}

TEST(TraceReplay, TraceEndsAtFirstGapCrossingHorizon) {
  const Engine engine = make_engine();
  const TraceStore traces(engine, kSeed);
  const FailureTrace& t = traces.trace(0);
  Seconds sum = 0.0;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) sum += t.gap(i);
  EXPECT_LT(sum, t.horizon());                 // all but the last stay inside
  EXPECT_GE(sum + t.gap(t.size() - 1), t.horizon());  // the last crosses
  EXPECT_THROW(t.gap(t.size()), InvalidArgument);
}

TEST(TraceReplay, FailureTraceValidatesItsHorizon) {
  EXPECT_NO_THROW(FailureTrace({4.0, 7.0}, 10.0));
  // Stops short: the running sum never reaches the horizon.
  EXPECT_THROW(FailureTrace({4.0, 5.0}, 10.0), InvalidArgument);
  // Over-sampled: a gap after the first horizon crossing.
  EXPECT_THROW(FailureTrace({4.0, 7.0, 1.0}, 10.0), InvalidArgument);
}

TEST(TraceReplay, LongerStoreHorizonServesShorterEngines) {
  // One store can back engines with shorter horizons (e.g. cost ablations
  // that share a failure process): replay just stops at the engine horizon.
  const Engine long_engine = make_engine(hours(400.0));
  const Engine short_engine = make_engine(hours(200.0));
  const TraceStore traces(long_engine, kSeed);
  const Campaign c = make_campaign(Policy::kBaseline);

  const SimResult live =
      short_engine.run_many(c.jobs, *c.scheduler, kReps, kSeed, 1);
  CampaignOptions opts;
  opts.traces = &traces;
  const SimResult replayed =
      short_engine.run_many(c.jobs, *c.scheduler, kReps, kSeed, opts);
  expect_identical(replayed, live);
}

TEST(TraceReplay, ShortStoreHorizonIsRejected) {
  const Engine short_engine = make_engine(hours(100.0));
  const Engine long_engine = make_engine(hours(200.0));
  const TraceStore traces(short_engine, kSeed);
  const Campaign c = make_campaign(Policy::kBaseline);
  CampaignOptions opts;
  opts.traces = &traces;
  EXPECT_THROW(long_engine.run_many(c.jobs, *c.scheduler, kReps, kSeed, opts),
               InvalidArgument);
  EXPECT_THROW(
      long_engine.replay(c.jobs, *c.scheduler, traces.trace(0)),
      InvalidArgument);
}

TEST(TraceReplay, SeedMismatchIsRejected) {
  const Engine engine = make_engine();
  const TraceStore traces(engine, kSeed);
  const Campaign c = make_campaign(Policy::kBaseline);
  CampaignOptions opts;
  opts.traces = &traces;
  EXPECT_THROW(engine.run_many(c.jobs, *c.scheduler, kReps, kSeed + 1, opts),
               InvalidArgument);
}

// A source that never raises an alarm must reproduce the alarm-free run bit
// for bit — this pins the fast path that skips the prediction-stream fork
// entirely when no source is armed.
class SilentSource final : public AlarmSource {
 public:
  std::vector<Alarm> alarms_in_gap(Seconds, Seconds, Rng&) const override {
    return {};
  }
  std::string name() const override { return "silent"; }
};

TEST(TraceReplay, NullAlarmSourceMatchesSilentSource) {
  const Engine engine = make_engine();
  const Campaign c = make_campaign(Policy::kShiraz);
  const SilentSource silent;

  Rng rng_null = Rng(kSeed).fork(0);
  const SimResult without = engine.run(c.jobs, *c.scheduler, rng_null, nullptr);
  Rng rng_silent = Rng(kSeed).fork(0);
  const SimResult with = engine.run(c.jobs, *c.scheduler, rng_silent, &silent);
  expect_identical(without, with);

  const SimResult many_null =
      engine.run_many(c.jobs, *c.scheduler, kReps, kSeed, 4, nullptr);
  const SimResult many_silent =
      engine.run_many(c.jobs, *c.scheduler, kReps, kSeed, 4, &silent);
  expect_identical(many_null, many_silent);
}

TEST(TraceReplay, PairSweepMatchesPerCandidateCampaignsBitForBit) {
  const Engine engine = make_engine();
  const Seconds mtbf = hours(kMtbfHours);
  const SimJob lw = SimJob::at_oci("lw", 18.0, mtbf);
  const SimJob hw = SimJob::at_oci("hw", 1800.0, mtbf);
  const std::vector<SimJob> jobs{lw, hw};
  constexpr int kLo = 1;
  constexpr int kHi = 9;

  const TraceStore traces(engine, kSeed);
  const std::vector<SweepUseful> sweep =
      replay_pair_sweep(engine, lw, hw, kLo, kHi, kReps, traces);
  ASSERT_EQ(sweep.size(), static_cast<std::size_t>(kHi - kLo + 1));

  CampaignOptions opts;
  opts.traces = &traces;
  for (int k = kLo; k <= kHi; ++k) {
    const ShirazPairScheduler shiraz(k);
    const SimResult ref = engine.run_many(jobs, shiraz, kReps, kSeed, opts);
    const SweepUseful& u = sweep[static_cast<std::size_t>(k - kLo)];
    EXPECT_EQ(u.lw, ref.apps[0].useful) << "k=" << k;
    EXPECT_EQ(u.hw, ref.apps[1].useful) << "k=" << k;
  }
}

TEST(TraceReplay, PairSweepIsWorkerCountInvariant) {
  const Engine engine = make_engine();
  const Seconds mtbf = hours(kMtbfHours);
  const SimJob lw = SimJob::at_oci("lw", 18.0, mtbf);
  const SimJob hw = SimJob::at_oci("hw", 1800.0, mtbf);
  const TraceStore traces(engine, kSeed);

  const std::vector<SweepUseful> serial =
      replay_pair_sweep(engine, lw, hw, 1, 9, kReps, traces, 1);
  const std::vector<SweepUseful> parallel =
      replay_pair_sweep(engine, lw, hw, 1, 9, kReps, traces, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].lw, parallel[i].lw) << "i=" << i;
    EXPECT_EQ(serial[i].hw, parallel[i].hw) << "i=" << i;
  }
}

TEST(TraceReplay, PairSweepRequiresFreeRestartsAndSwitches) {
  EngineConfig cfg;
  cfg.t_total = hours(200.0);
  cfg.switch_cost = 30.0;
  const Engine engine(
      reliability::Weibull::from_mtbf(0.6, hours(kMtbfHours)), cfg);
  const Seconds mtbf = hours(kMtbfHours);
  const SimJob lw = SimJob::at_oci("lw", 18.0, mtbf);
  const SimJob hw = SimJob::at_oci("hw", 1800.0, mtbf);
  const TraceStore traces(engine, kSeed);
  EXPECT_THROW(replay_pair_sweep(engine, lw, hw, 1, 4, kReps, traces),
               InvalidArgument);
}

TEST(TraceReplay, OptimizerFindsSameSolutionWithCostlySwitches) {
  // With a non-zero switch cost the optimizer falls back to per-candidate
  // replayed campaigns; the result must still be worker-count invariant and
  // bit-identical to the free-switch fast path's contract on its own terms.
  EngineConfig cfg;
  cfg.t_total = hours(200.0);
  cfg.switch_cost = 30.0;
  const Engine engine(
      reliability::Weibull::from_mtbf(0.6, hours(kMtbfHours)), cfg);
  const Seconds mtbf = hours(kMtbfHours);
  const SimJob lw = SimJob::at_oci("lw", 18.0, mtbf);
  const SimJob hw = SimJob::at_oci("hw", 1800.0, mtbf);

  const SimSwitchSolution serial =
      find_fair_k_by_simulation(engine, lw, hw, 1, 8, 6, kSeed, 1);
  const SimSwitchSolution parallel =
      find_fair_k_by_simulation(engine, lw, hw, 1, 8, 6, kSeed, 4);
  EXPECT_EQ(serial.k, parallel.k);
  EXPECT_EQ(serial.delta_total, parallel.delta_total);
  ASSERT_EQ(serial.sweep.size(), parallel.sweep.size());
  for (std::size_t i = 0; i < serial.sweep.size(); ++i) {
    EXPECT_EQ(serial.sweep[i].delta_lw, parallel.sweep[i].delta_lw);
    EXPECT_EQ(serial.sweep[i].delta_hw, parallel.sweep[i].delta_hw);
  }
}

}  // namespace
}  // namespace shiraz::sim
