// Determinism of the parallel Monte-Carlo layer: repetition r always draws
// from Rng(seed).fork(r) and results merge in repetition order, so run_many /
// run_campaign must be bit-identical for every worker count — and workers == 1
// must reproduce the historical serial loop exactly.
#include <cmath>
#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "adaptive/adaptive_scheduler.h"
#include "reliability/weibull.h"
#include "sim/engine.h"
#include "sim/optimizer.h"

namespace shiraz::sim {
namespace {

constexpr std::uint64_t kSeed = 20180707;
constexpr std::size_t kReps = 12;
constexpr double kMtbfHours = 5.0;

Engine make_engine() {
  EngineConfig cfg;
  cfg.t_total = hours(200.0);
  return Engine(reliability::Weibull::from_mtbf(0.6, hours(kMtbfHours)), cfg);
}

// The pre-thread-pool serial run_many, kept verbatim as the reference.
SimResult serial_reference(const Engine& engine, const std::vector<SimJob>& jobs,
                           const Scheduler& scheduler, std::size_t reps,
                           std::uint64_t seed) {
  const Rng master(seed);
  std::vector<SimResult> results;
  results.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    Rng rng = master.fork(r);
    results.push_back(engine.run(jobs, scheduler, rng));
  }
  return average(results);
}

void expect_identical(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].name, b.apps[i].name);
    EXPECT_EQ(a.apps[i].useful, b.apps[i].useful) << "app " << i;
    EXPECT_EQ(a.apps[i].io, b.apps[i].io) << "app " << i;
    EXPECT_EQ(a.apps[i].lost, b.apps[i].lost) << "app " << i;
    EXPECT_EQ(a.apps[i].restart, b.apps[i].restart) << "app " << i;
    EXPECT_EQ(a.apps[i].checkpoints, b.apps[i].checkpoints) << "app " << i;
    EXPECT_EQ(a.apps[i].failures_hit, b.apps[i].failures_hit) << "app " << i;
  }
  EXPECT_EQ(a.wall, b.wall);
  EXPECT_EQ(a.idle, b.idle);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.switches, b.switches);
}

enum class Policy { kBaseline, kShiraz, kShirazPlus };

struct Campaign {
  std::vector<SimJob> jobs;
  std::unique_ptr<Scheduler> scheduler;
};

Campaign make_campaign(Policy policy) {
  const Seconds mtbf = hours(kMtbfHours);
  Campaign c;
  switch (policy) {
    case Policy::kBaseline:
      c.jobs = {SimJob::at_oci("lw", 18.0, mtbf), SimJob::at_oci("hw", 1800.0, mtbf)};
      c.scheduler = std::make_unique<AlternateAtFailure>();
      break;
    case Policy::kShiraz:
      c.jobs = {SimJob::at_oci("lw", 18.0, mtbf), SimJob::at_oci("hw", 1800.0, mtbf)};
      c.scheduler = std::make_unique<ShirazPairScheduler>(26);
      break;
    case Policy::kShirazPlus:
      c.jobs = {SimJob::at_oci("lw", 18.0, mtbf),
                SimJob::at_oci("hw", 1800.0, mtbf, /*stretch=*/3)};
      c.scheduler = std::make_unique<ShirazPairScheduler>(26);
      break;
  }
  return c;
}

class ParallelCampaignTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, Policy>> {};

TEST_P(ParallelCampaignTest, RunManyMatchesSerialReferenceBitForBit) {
  const auto [workers, policy] = GetParam();
  const Engine engine = make_engine();
  const Campaign c = make_campaign(policy);
  const SimResult reference =
      serial_reference(engine, c.jobs, *c.scheduler, kReps, kSeed);

  const SimResult parallel =
      engine.run_many(c.jobs, *c.scheduler, kReps, kSeed, workers);
  expect_identical(parallel, reference);

  const CampaignSummary summary =
      engine.run_campaign(c.jobs, *c.scheduler, kReps, kSeed, workers);
  EXPECT_EQ(summary.reps, kReps);
  expect_identical(summary.mean, reference);
}

INSTANTIATE_TEST_SUITE_P(
    WorkerCountsAndPolicies, ParallelCampaignTest,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}, std::size_t{8}),
                       ::testing::Values(Policy::kBaseline, Policy::kShiraz,
                                         Policy::kShirazPlus)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, Policy>>& info) {
      const Policy policy = std::get<1>(info.param);
      const char* name = policy == Policy::kBaseline ? "Baseline"
                         : policy == Policy::kShiraz ? "Shiraz"
                                                     : "ShirazPlus";
      return std::string(name) + "Jobs" + std::to_string(std::get<0>(info.param));
    });

TEST(ParallelCampaign, SummarySpreadIsWorkerCountInvariant) {
  const Engine engine = make_engine();
  const Campaign c = make_campaign(Policy::kShiraz);
  const CampaignSummary serial =
      engine.run_campaign(c.jobs, *c.scheduler, kReps, kSeed, 1);
  const CampaignSummary parallel =
      engine.run_campaign(c.jobs, *c.scheduler, kReps, kSeed, 4);
  EXPECT_EQ(serial.total_useful.mean, parallel.total_useful.mean);
  EXPECT_EQ(serial.total_useful.stddev, parallel.total_useful.stddev);
  EXPECT_EQ(serial.total_useful.ci95, parallel.total_useful.ci95);
  EXPECT_EQ(serial.total_useful.min, parallel.total_useful.min);
  EXPECT_EQ(serial.total_useful.max, parallel.total_useful.max);
  ASSERT_EQ(serial.apps.size(), parallel.apps.size());
  for (std::size_t i = 0; i < serial.apps.size(); ++i) {
    EXPECT_EQ(serial.apps[i].useful.stddev, parallel.apps[i].useful.stddev);
    EXPECT_EQ(serial.apps[i].io.ci95, parallel.apps[i].io.ci95);
  }
}

TEST(ParallelCampaign, MoreWorkersThanRepsIsFine) {
  const Engine engine = make_engine();
  const Campaign c = make_campaign(Policy::kBaseline);
  const SimResult reference = serial_reference(engine, c.jobs, *c.scheduler, 3, kSeed);
  expect_identical(engine.run_many(c.jobs, *c.scheduler, 3, kSeed, 16), reference);
}

TEST(ParallelCampaign, SingleRepSummaryIsDegenerateNotNaN) {
  const Engine engine = make_engine();
  const Campaign c = make_campaign(Policy::kBaseline);
  const Rng master(kSeed);
  Rng rng = master.fork(0);
  const SimResult only = engine.run(c.jobs, *c.scheduler, rng);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    const CampaignSummary s =
        engine.run_campaign(c.jobs, *c.scheduler, 1, kSeed, workers);
    EXPECT_EQ(s.reps, 1u);
    expect_identical(s.mean, only);
    EXPECT_EQ(s.total_useful.mean, only.total_useful());
    EXPECT_EQ(s.total_useful.stddev, 0.0);
    EXPECT_EQ(s.total_useful.ci95, 0.0);
    EXPECT_EQ(s.total_useful.min, s.total_useful.max);
    for (const AppSummary& app : s.apps) {
      EXPECT_FALSE(std::isnan(app.useful.stddev));
      EXPECT_EQ(app.useful.stddev, 0.0);
      EXPECT_EQ(app.useful.ci95, 0.0);
    }
  }
}

TEST(ParallelCampaign, OptimizerSweepIsWorkerCountInvariant) {
  const Engine engine = make_engine();
  const Seconds mtbf = hours(kMtbfHours);
  const SimJob lw = SimJob::at_oci("lw", 18.0, mtbf);
  const SimJob hw = SimJob::at_oci("hw", 1800.0, mtbf);

  const SimSwitchSolution serial =
      find_fair_k_by_simulation(engine, lw, hw, 1, 12, 6, kSeed, 1);
  const SimSwitchSolution parallel =
      find_fair_k_by_simulation(engine, lw, hw, 1, 12, 6, kSeed, 4);

  EXPECT_EQ(serial.k, parallel.k);
  EXPECT_EQ(serial.delta_lw, parallel.delta_lw);
  EXPECT_EQ(serial.delta_hw, parallel.delta_hw);
  EXPECT_EQ(serial.delta_total, parallel.delta_total);
  ASSERT_EQ(serial.sweep.size(), parallel.sweep.size());
  for (std::size_t i = 0; i < serial.sweep.size(); ++i) {
    EXPECT_EQ(serial.sweep[i].k, parallel.sweep[i].k);
    EXPECT_EQ(serial.sweep[i].delta_lw, parallel.sweep[i].delta_lw);
    EXPECT_EQ(serial.sweep[i].delta_hw, parallel.sweep[i].delta_hw);
    EXPECT_EQ(serial.sweep[i].delta_total, parallel.sweep[i].delta_total);
  }
}

TEST(ParallelCampaign, StatefulSchedulerCloneKeepsDiagnosticsSerial) {
  // The adaptive policy mutates run state; parallel repetitions must each get
  // a private clone, and the caller's instance runs the last repetition so
  // post-campaign diagnostics (current_k, resolves) match the serial path.
  const Engine engine = make_engine();
  const Seconds mtbf = hours(kMtbfHours);
  const std::vector<SimJob> jobs{SimJob::at_oci("lw", 18.0, mtbf),
                                 SimJob::at_oci("hw", 1800.0, mtbf)};
  const core::AppSpec lw{"lw", 18.0, 1};
  const core::AppSpec hw{"hw", 1800.0, 1};
  adaptive::AdaptiveConfig acfg;
  acfg.estimator.prior_mtbf = hours(20.0);
  acfg.estimator.window = 64;
  acfg.estimator.min_samples = 8;

  const adaptive::AdaptiveShirazScheduler serial_policy(lw, hw, acfg);
  const SimResult serial = engine.run_many(jobs, serial_policy, kReps, kSeed, 1);

  const adaptive::AdaptiveShirazScheduler parallel_policy(lw, hw, acfg);
  const SimResult parallel =
      engine.run_many(jobs, parallel_policy, kReps, kSeed, 4);

  expect_identical(parallel, serial);
  EXPECT_EQ(parallel_policy.current_k(), serial_policy.current_k());
  EXPECT_EQ(parallel_policy.resolves(), serial_policy.resolves());
}

}  // namespace
}  // namespace shiraz::sim
